package netdecomp_test

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	netdecomp "netdecomp"
)

// TestServingFacade drives the serving surface through the root package:
// boot a server, register a workload, decompose cold and warm, and check
// the debug mux is mounted.
func TestServingFacade(t *testing.T) {
	s := netdecomp.NewServer(netdecomp.ServerOptions{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path string, body string, out any) {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	var gi struct {
		Fingerprint string `json:"fingerprint"`
	}
	post("/v1/graphs", `{"family":"gnp","n":128,"seed":3}`, &gi)
	var pi struct {
		Plan string `json:"plan"`
	}
	post("/v1/plans", `{"algorithm":"elkin-neiman","forceComplete":true}`, &pi)
	req := `{"graph":"` + gi.Fingerprint + `","plan":"` + pi.Plan + `"}`
	var cold, warm struct {
		CacheHit bool `json:"cacheHit"`
	}
	post("/v1/decompose", req, &cold)
	post("/v1/decompose", req, &warm)
	if cold.CacheHit || !warm.CacheHit {
		t.Fatalf("cold=%v warm=%v", cold.CacheHit, warm.CacheHit)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
}

// TestSnapshotFacade round-trips an empty snapshot through the exported
// codec and checks corruption is surfaced as ErrCorruptSnapshot.
func TestSnapshotFacade(t *testing.T) {
	var buf bytes.Buffer
	if err := netdecomp.WriteSnapshot(&buf, netdecomp.SessionSnapshot{Meta: []byte("m")}); err != nil {
		t.Fatal(err)
	}
	snap, err := netdecomp.ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if string(snap.Meta) != "m" {
		t.Fatalf("meta: %q", snap.Meta)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 1
	if _, err := netdecomp.ReadSnapshot(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}
