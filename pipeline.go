package netdecomp

import (
	"context"

	"netdecomp/internal/graph"
	"netdecomp/internal/pipeline"
)

// The pipeline orchestration API: compose compiled Plans and
// derived-structure builders into a validated, typed stage DAG and
// execute it level-parallel through a Session.
//
//	pl, _ := netdecomp.Compile("elkin-neiman", netdecomp.WithForceComplete())
//	p, err := netdecomp.NewPipeline().
//	    AddStage("dec", netdecomp.DecomposeStage(pl)).
//	    AddStage("re", netdecomp.RecolorStage()).
//	    AddStage("mis", netdecomp.MISStage()).
//	    AddStage("sp", netdecomp.SpannerStage()).
//	    AddEdge("dec", "re").
//	    AddEdge("re", "mis").
//	    AddEdge("dec", "sp").
//	    Build()
//	res, err := netdecomp.RunPipeline(ctx, p, g, netdecomp.PipelineSession(s))
//	mis := res.Stage("mis").MIS
//
// Edges are typed data dependencies (a recolor stage consumes exactly one
// partition; a spanner's skeleton is graph-valued and can feed another
// decompose), cycles and arity violations are Build errors, and execution
// is deterministic: stages dispatch in sorted-ID order per DAG level, so
// results are bit-identical for any worker count. With a session
// attached, every decompose stage rides its cache — re-running after one
// upstream change recomputes only the stages downstream of it. See
// internal/pipeline for the full semantics.

// PipelineBuilder accumulates stages and edges fluently; Build validates
// the DAG (typed edges, arity, acyclicity) and freezes it.
type PipelineBuilder = pipeline.Builder

// Pipeline is a validated, immutable stage DAG, safe for concurrent Runs.
type Pipeline = pipeline.Pipeline

// PipelineStage is one DAG node. The stage set is closed; construct with
// DecomposeStage, RecolorStage, MISStage, ColoringStage, MatchingStage,
// SpannerStage and CoverStage.
type PipelineStage = pipeline.Stage

// PipelineSpec is the JSON wire form of a pipeline (the POST /v1/pipeline
// document); ParsePipelineSpec decodes one and Spec.Build compiles it.
type PipelineSpec = pipeline.Spec

// PipelineResult is one execution's outcome: per-stage typed results,
// cache-hit counts and the deterministic execution order.
type PipelineResult = pipeline.Result

// PipelineStageResult is one completed stage's outcome.
type PipelineStageResult = pipeline.StageResult

// PipelineStageEvent is one streamed stage lifecycle record (see
// PipelineObserver).
type PipelineStageEvent = pipeline.StageEvent

// StageStatus is the lifecycle phase a PipelineStageEvent reports.
type StageStatus = pipeline.StageStatus

// Stage lifecycle phases.
const (
	StageStart StageStatus = pipeline.StageStart
	StageDone  StageStatus = pipeline.StageDone
	StageError StageStatus = pipeline.StageError
)

// PipelineExecutor runs pipelines; build one with NewPipelineExecutor to
// reuse options across runs, or use RunPipeline for one-shot execution.
type PipelineExecutor = pipeline.Executor

// PipelineOption configures pipeline execution.
type PipelineOption = pipeline.ExecOption

// NewPipeline returns an empty fluent pipeline builder.
func NewPipeline() *PipelineBuilder { return pipeline.NewBuilder() }

// ParsePipelineSpec decodes a JSON pipeline document (strict: unknown
// fields are errors).
func ParsePipelineSpec(data []byte) (PipelineSpec, error) { return pipeline.ParseSpec(data) }

// NewPipelineExecutor builds a reusable executor from the options.
func NewPipelineExecutor(opts ...PipelineOption) *PipelineExecutor {
	return pipeline.NewExecutor(opts...)
}

// RunPipeline executes p on g with a one-shot executor.
func RunPipeline(ctx context.Context, p *Pipeline, g graph.Interface, opts ...PipelineOption) (*PipelineResult, error) {
	return pipeline.Run(ctx, p, g, opts...)
}

// PipelineSession threads a Session through execution: decompose stages
// (and cover stages' power-graph decompositions) are served through its
// cache and singleflight.
func PipelineSession(s *Session) PipelineOption { return pipeline.WithSession(s) }

// PipelineWorkers caps concurrently executing stages (0 = level width).
func PipelineWorkers(n int) PipelineOption { return pipeline.WithWorkers(n) }

// PipelineRecorder attaches a telemetry recorder: per-stage spans,
// latency histograms and cache-hit counters under the pipeline.* names.
func PipelineRecorder(rec *Recorder) PipelineOption { return pipeline.WithRecorder(rec) }

// PipelineObserver streams stage start/done/error events as the DAG
// executes (calls are serialized; fn must not block).
func PipelineObserver(fn func(PipelineStageEvent)) PipelineOption {
	return pipeline.WithObserver(fn)
}

// DecomposeStage returns a stage executing a compiled Plan on the
// pipeline input graph or an upstream spanner's skeleton (0 or 1
// in-edges).
func DecomposeStage(pl *Plan) PipelineStage { return pipeline.Decompose(pl) }

// RecolorStage adapts an upstream partition into an application input
// (exactly 1 in-edge).
func RecolorStage() PipelineStage { return pipeline.Recolor() }

// MISStage computes a maximal independent set from an upstream recolor
// stage.
func MISStage() PipelineStage { return pipeline.MIS() }

// ColoringStage computes a (Δ+1)-coloring from an upstream recolor stage.
func ColoringStage() PipelineStage { return pipeline.Coloring() }

// MatchingStage computes a maximal matching from an upstream recolor
// stage.
func MatchingStage() PipelineStage { return pipeline.Matching() }

// SpannerStage builds the sparse skeleton of an upstream partition; its
// graph-valued result can feed a downstream decompose or cover stage.
func SpannerStage() PipelineStage { return pipeline.Spanner() }

// CoverStage builds a W-neighborhood cover of its input graph (pipeline
// input or upstream spanner skeleton; 0 or 1 in-edges). The options
// Session field is overridden by the executor's session.
func CoverStage(o CoverOptions) PipelineStage { return pipeline.Cover(o) }
