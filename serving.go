package netdecomp

import (
	"context"
	"io"
	"net/http"

	"netdecomp/internal/obs"
	"netdecomp/internal/resilience"
	"netdecomp/internal/serve"
	"netdecomp/internal/session"
)

// The serving daemon API: the HTTP/JSON front door over the session layer
// (package internal/serve, command netdecompd). Register graphs and
// compiled plans, decompose through the cache and singleflight, stream
// per-round statistics over SSE, and — with a store path — persist the
// completed-partition cache across restarts behind an integrity-hashed
// snapshot.
//
//	s := netdecomp.NewServer(netdecomp.ServerOptions{
//		StorePath: "netdecomp.snap",
//	})
//	defer s.Close()
//	http.ListenAndServe(":8080", s.Handler())
//
// See DESIGN.md §12 for the API surface and the persistence format.

// Server is the HTTP serving daemon: session + graph/plan registries +
// persistent result store.
type Server = serve.Server

// ServerOptions configures NewServer.
type ServerOptions = serve.Options

// NewServer builds a serving daemon: it starts the session, recovers the
// persistent store when configured (a corrupt snapshot boots cold, never
// fails), and wires the API routes. Close it to flush and shut down.
func NewServer(opts ServerOptions) *Server { return serve.New(opts) }

// LoadOptions shapes one RunLoad invocation.
type LoadOptions = serve.LoadOptions

// LoadReport is the outcome of one RunLoad run.
type LoadReport = serve.LoadReport

// RunLoad replays a Zipf repeat/fresh request mix against the daemon at
// baseURL with N concurrent clients — the load-generator harness behind
// netdecompd -loadgen and BENCH_serve.json.
func RunLoad(ctx context.Context, baseURL string, opt LoadOptions) (*LoadReport, error) {
	return serve.RunLoad(ctx, baseURL, opt)
}

// MountDebug adds the shared observability routes — /metrics (Prometheus
// text), /debug/vars (expvar) and /debug/pprof/ — to mux, serving reg.
func MountDebug(mux *http.ServeMux, reg *obs.Registry) { serve.MountDebug(mux, reg) }

// SessionSnapshot is a portable image of a session's completed-partition
// cache plus an opaque metadata blob.
type SessionSnapshot = session.Snapshot

// SessionCacheEntry is one (key, partition) pair of a SessionSnapshot.
type SessionCacheEntry = session.CacheEntry

// ErrCorruptSnapshot is wrapped by snapshot reads that fail the integrity
// hash or structural checks; recovery treats it as "boot cold".
var ErrCorruptSnapshot = session.ErrCorruptSnapshot

// WriteSnapshot writes snap with the netdecomp snapshot framing: magic,
// SHA-256 integrity hash, gzip-compressed gob payload.
func WriteSnapshot(w io.Writer, snap SessionSnapshot) error {
	return session.WriteSnapshot(w, snap)
}

// ReadSnapshot reads and verifies a snapshot; corruption of any byte
// yields an error wrapping ErrCorruptSnapshot, never partial data.
func ReadSnapshot(r io.Reader) (SessionSnapshot, error) {
	return session.ReadSnapshot(r)
}

// The resilience layer: admission control, load shedding, per-request
// deadlines, bounded retry, graceful drain, and deterministic fault
// injection (package internal/resilience, wired through ServerOptions).
// The zero ResilienceOptions disables every limit, so embedding it is
// always safe. See DESIGN.md §14 for the full ladder and the HTTP status
// mapping (429 saturated/shed, 503 draining, 504 budget expired).

// ResilienceOptions bounds a server: per-class admission gates, the shed
// watermark past which cold-miss work is rejected while cache hits keep
// serving, and the per-request deadline policy.
type ResilienceOptions = resilience.Options

// GateConfig shapes one admission gate: concurrent slots, bounded FIFO
// wait queue, and the Retry-After hint returned on saturation.
type GateConfig = resilience.GateConfig

// DeadlinePolicy resolves per-request budgets: a client ask (JSON field
// or X-Deadline-Ms header), defaulted when absent, clamped by Max.
type DeadlinePolicy = resilience.DeadlinePolicy

// RetryBackoff bounds a retry loop: attempts, exponential base delay,
// and deterministic jitter. The snapshot-flush path rides it.
type RetryBackoff = resilience.Backoff

// ResilienceStats is a point-in-time snapshot of the admission governor,
// reported under "resilience" on /v1/stats.
type ResilienceStats = resilience.Stats

// ErrSaturated reports an admission gate whose slots and wait queue are
// both full; the serve layer maps it to HTTP 429 with Retry-After.
var ErrSaturated = resilience.ErrSaturated

// ErrDraining reports an admission attempt after drain began; the serve
// layer maps it to HTTP 503 with Retry-After.
var ErrDraining = resilience.ErrDraining

// FaultInjector delivers deterministic faults — latency spikes, errors,
// panics, snapshot-write failures, each by rate from one seeded PRNG —
// into the session runner and the snapshot writer. Wire one through
// ServerOptions.Injector to reproduce a chaos episode exactly;
// `netdecompd -chaos` drives a full prime/episode/recovery cycle on it.
type FaultInjector = resilience.Injector

// FaultInjectorConfig seeds a FaultInjector with per-fault rates.
type FaultInjectorConfig = resilience.InjectorConfig

// NewFaultInjector builds a deterministic fault injector; it starts
// enabled and can be toggled at runtime with SetEnabled.
func NewFaultInjector(cfg FaultInjectorConfig) *FaultInjector {
	return resilience.NewInjector(cfg)
}
