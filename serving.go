package netdecomp

import (
	"context"
	"io"
	"net/http"

	"netdecomp/internal/obs"
	"netdecomp/internal/serve"
	"netdecomp/internal/session"
)

// The serving daemon API: the HTTP/JSON front door over the session layer
// (package internal/serve, command netdecompd). Register graphs and
// compiled plans, decompose through the cache and singleflight, stream
// per-round statistics over SSE, and — with a store path — persist the
// completed-partition cache across restarts behind an integrity-hashed
// snapshot.
//
//	s := netdecomp.NewServer(netdecomp.ServerOptions{
//		StorePath: "netdecomp.snap",
//	})
//	defer s.Close()
//	http.ListenAndServe(":8080", s.Handler())
//
// See DESIGN.md §12 for the API surface and the persistence format.

// Server is the HTTP serving daemon: session + graph/plan registries +
// persistent result store.
type Server = serve.Server

// ServerOptions configures NewServer.
type ServerOptions = serve.Options

// NewServer builds a serving daemon: it starts the session, recovers the
// persistent store when configured (a corrupt snapshot boots cold, never
// fails), and wires the API routes. Close it to flush and shut down.
func NewServer(opts ServerOptions) *Server { return serve.New(opts) }

// LoadOptions shapes one RunLoad invocation.
type LoadOptions = serve.LoadOptions

// LoadReport is the outcome of one RunLoad run.
type LoadReport = serve.LoadReport

// RunLoad replays a Zipf repeat/fresh request mix against the daemon at
// baseURL with N concurrent clients — the load-generator harness behind
// netdecompd -loadgen and BENCH_serve.json.
func RunLoad(ctx context.Context, baseURL string, opt LoadOptions) (*LoadReport, error) {
	return serve.RunLoad(ctx, baseURL, opt)
}

// MountDebug adds the shared observability routes — /metrics (Prometheus
// text), /debug/vars (expvar) and /debug/pprof/ — to mux, serving reg.
func MountDebug(mux *http.ServeMux, reg *obs.Registry) { serve.MountDebug(mux, reg) }

// SessionSnapshot is a portable image of a session's completed-partition
// cache plus an opaque metadata blob.
type SessionSnapshot = session.Snapshot

// SessionCacheEntry is one (key, partition) pair of a SessionSnapshot.
type SessionCacheEntry = session.CacheEntry

// ErrCorruptSnapshot is wrapped by snapshot reads that fail the integrity
// hash or structural checks; recovery treats it as "boot cold".
var ErrCorruptSnapshot = session.ErrCorruptSnapshot

// WriteSnapshot writes snap with the netdecomp snapshot framing: magic,
// SHA-256 integrity hash, gzip-compressed gob payload.
func WriteSnapshot(w io.Writer, snap SessionSnapshot) error {
	return session.WriteSnapshot(w, snap)
}

// ReadSnapshot reads and verifies a snapshot; corruption of any byte
// yields an error wrapping ErrCorruptSnapshot, never partial data.
func ReadSnapshot(r io.Reader) (SessionSnapshot, error) {
	return session.ReadSnapshot(r)
}
