// Command benchdiff compares a fresh `go test -bench -benchmem` run
// against a checked-in benchmark baseline JSON (BENCH_baseline.json or the
// before/after BENCH_csr.json) and prints a benchstat-style delta table:
// one row per benchmark with old/new ns/op, B/op, allocs/op and relative
// change. CI runs it on every PR so perf regressions from refactors are
// visible as an artifact without any external tooling.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchdiff -baseline BENCH_csr.json
//	go run ./cmd/benchdiff -baseline BENCH_baseline.json bench-output.txt
//
// Exit status is 0 even when benchmarks regressed (the tool informs, CI
// gates on tests); -threshold makes it exit 1 when some benchmark's ns/op
// grew by more than the given fraction, -allocthreshold does the same for
// allocs/op, and every offending benchmark is named on stderr. CI runs the
// gate against BENCH_hotpath.json so hot-path regressions fail the bench
// job instead of hiding in an artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
)

// metrics is one benchmark measurement.
type metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// baselineFile covers both checked-in schemas: flat measurements
// (netdecomp-bench/v1) and before/after pairs (netdecomp-bench-compare/v1,
// where the "after" numbers are the baseline going forward).
type baselineFile struct {
	Schema     string `json:"schema"`
	Benchmarks []struct {
		Name string `json:"name"`
		metrics
		After *metrics `json:"after"`
	} `json:"benchmarks"`
}

func loadBaseline(path string) (map[string]metrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]metrics, len(bf.Benchmarks))
	for _, b := range bf.Benchmarks {
		m := b.metrics
		if b.After != nil {
			m = *b.After
		}
		out[b.Name] = m
	}
	return out, nil
}

// parseBench extracts "BenchmarkName  iters  X ns/op [Y B/op  Z allocs/op]"
// lines from go test output. Names are trimmed of the -CPUS suffix.
func parseBench(r io.Reader) (map[string]metrics, []string, error) {
	out := map[string]metrics{}
	var order []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var m metrics
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = val
			case "B/op":
				m.BytesPerOp = val
			case "allocs/op":
				m.AllocsPerOp = val
			}
		}
		if m.NsPerOp == 0 {
			continue
		}
		if _, dup := out[name]; !dup {
			order = append(order, name)
		}
		out[name] = m
	}
	return out, order, sc.Err()
}

func delta(old, new float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(new-old)/old)
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline JSON to compare against")
	threshold := flag.Float64("threshold", 0, "exit 1 when some ns/op grows by more than this fraction (0 disables)")
	allocThreshold := flag.Float64("allocthreshold", 0, "exit 1 when some allocs/op grows by more than this fraction (0 disables)")
	flag.Parse()

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	current, order, err := parseBench(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines in input")
		os.Exit(2)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintf(w, "benchmark\told ns/op\tnew ns/op\tdelta\told allocs\tnew allocs\tdelta\n")
	var nsOffenders, allocOffenders []string
	matched := 0
	for _, name := range order {
		cur := current[name]
		old, ok := base[name]
		if !ok {
			fmt.Fprintf(w, "%s\t-\t%.0f\tnew\t-\t%.0f\tnew\n", name, cur.NsPerOp, cur.AllocsPerOp)
			continue
		}
		matched++
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%s\t%.0f\t%.0f\t%s\n",
			name, old.NsPerOp, cur.NsPerOp, delta(old.NsPerOp, cur.NsPerOp),
			old.AllocsPerOp, cur.AllocsPerOp, delta(old.AllocsPerOp, cur.AllocsPerOp))
		if *threshold > 0 && old.NsPerOp > 0 && cur.NsPerOp > old.NsPerOp*(1+*threshold) {
			nsOffenders = append(nsOffenders, fmt.Sprintf("%s (%s ns/op)", name, delta(old.NsPerOp, cur.NsPerOp)))
		}
		if *allocThreshold > 0 && old.AllocsPerOp > 0 && cur.AllocsPerOp > old.AllocsPerOp*(1+*allocThreshold) {
			allocOffenders = append(allocOffenders, fmt.Sprintf("%s (%s allocs/op)", name, delta(old.AllocsPerOp, cur.AllocsPerOp)))
		}
	}
	w.Flush()
	if (*threshold > 0 || *allocThreshold > 0) && matched == 0 {
		// A gate that compared nothing must not pass: this catches a bench
		// regex that rotted away from the baseline's benchmark names.
		fmt.Fprintln(os.Stderr, "benchdiff: regression gate enabled but no current benchmark matched the baseline")
		os.Exit(1)
	}
	for _, o := range nsOffenders {
		fmt.Fprintf(os.Stderr, "benchdiff: ns/op regression beyond %.0f%% threshold: %s\n", *threshold*100, o)
	}
	for _, o := range allocOffenders {
		fmt.Fprintf(os.Stderr, "benchdiff: allocs/op regression beyond %.0f%% threshold: %s\n", *allocThreshold*100, o)
	}
	if len(nsOffenders)+len(allocOffenders) > 0 {
		os.Exit(1)
	}
}
