// Command graphgen emits a generated workload graph as a plain edge list
// ("n m" header line, then one "u v" pair per line), the interchange
// format other tools and scripts can consume.
//
// Example:
//
//	graphgen -family ringofcliques -n 512 -seed 7 > roc.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"netdecomp/internal/gen"
	"netdecomp/internal/graphio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	family := fs.String("family", "gnp", "graph family (see gen.ParseFamily)")
	n := fs.Int("n", 1024, "approximate number of vertices")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fam, err := gen.ParseFamily(*family)
	if err != nil {
		return err
	}
	g, err := gen.Build(fam, *n, *seed)
	if err != nil {
		return err
	}
	return graphio.Write(w, g)
}
