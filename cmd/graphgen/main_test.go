package main

import (
	"bytes"
	"strings"
	"testing"

	"netdecomp/internal/graphio"
)

func TestRunEmitsParsableGraph(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-family", "grid", "-n", "64", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	g, err := graphio.Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 64 {
		t.Fatalf("emitted graph has n=%d", g.N())
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-family", "gnp", "-n", "100", "-seed", "9"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-family", "gnp", "-n", "100", "-seed", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed emitted different graphs")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-family", "nope"}, &out); err == nil {
		t.Fatal("unknown family accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
	if !strings.Contains(out.String(), "") {
		t.Fatal("unreachable")
	}
}
