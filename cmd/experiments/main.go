// Command experiments regenerates the tables and figures of
// EXPERIMENTS.md: every theorem, lemma and claim of the paper is mapped to
// one experiment (see DESIGN.md section 6), and this command runs them and
// prints the measured values next to the bounds.
//
// Examples:
//
//	experiments                 # all experiments at small scale
//	experiments -full           # the EXPERIMENTS.md numbers (slower)
//	experiments -run T5,F3      # a subset
//	experiments -run T1 -csv    # machine-readable output
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"netdecomp/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	full := fs.Bool("full", false, "run at full scale (EXPERIMENTS.md numbers)")
	runList := fs.String("run", "all", "comma-separated experiment IDs (T1..T10, F1..F3) or 'all'")
	seed := fs.Uint64("seed", 1, "master seed")
	trials := fs.Int("trials", 0, "override trials per configuration (0 = scale default)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := harness.Config{Scale: harness.ScaleSmall, Seed: *seed, Trials: *trials}
	if *full {
		cfg.Scale = harness.ScaleFull
	}

	wanted := map[string]bool{}
	all := strings.EqualFold(*runList, "all")
	if !all {
		for _, id := range strings.Split(*runList, ",") {
			wanted[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	ran := 0
	for _, e := range harness.Experiments() {
		if !all && !wanted[e.ID] {
			continue
		}
		start := time.Now()
		tab, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *csv {
			if err := tab.CSV(w); err != nil {
				return err
			}
		} else {
			if err := tab.Render(w); err != nil {
				return err
			}
			fmt.Fprintf(w, "(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches -run=%q", *runList)
	}
	return nil
}
