package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "A1", "-trials", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "== A1") {
		t.Fatalf("missing table header:\n%s", out.String())
	}
}

func TestRunSubsetAndCSV(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "t6", "-trials", "2", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.HasPrefix(s, "c,") {
		t.Fatalf("csv output wrong:\n%s", s)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "T99"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}
