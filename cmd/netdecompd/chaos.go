package main

// The chaos harness: `netdecompd -chaos` boots the daemon in-process with
// the deterministic fault injector wired into the session runner and the
// snapshot writer, then drives it through three phases:
//
//	prime    — faults off: register the default workload, warm a small
//	           working set of seeds.
//	episode  — faults on: concurrent clients replay a warm/cold mix while
//	           the injector delivers latency spikes, decomposer errors,
//	           panics, and flush failures. Every response is classified;
//	           a warm hit that fails, or a 5xx without an injected cause,
//	           is a violation.
//	recovery — faults off: wait for degradation to clear, flush the
//	           store, and verify the snapshot's integrity hash by reading
//	           it back.
//
// The run ends with a graceful drain and prints `violations: 0` and
// `clean drain` on success — the two markers the CI chaos-smoke job
// greps for. SIGTERM mid-episode skips ahead to recovery: the harness
// still converges to a verified snapshot and a clean drain.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"netdecomp/internal/resilience"
	"netdecomp/internal/serve"
	"netdecomp/internal/session"
)

// chaosConfig shapes one chaos run.
type chaosConfig struct {
	duration time.Duration
	drain    time.Duration
	inject   resilience.InjectorConfig
}

const chaosWarmSeeds = 4

// chaosDefaults fills serving limits a chaos run needs when the user set
// none: without a bounded gate and a watermark there is nothing to shed,
// and without a deadline a latency spike could pin a worker forever.
func chaosDefaults(opts serve.Options) serve.Options {
	r := &opts.Resilience
	if r.Decompose.Slots == 0 {
		r.Decompose = resilience.GateConfig{Slots: 8, Queue: 16}
	}
	if r.ShedWatermark == 0 {
		r.ShedWatermark = 4
	}
	if r.Deadline.Default == 0 {
		r.Deadline.Default = 5 * time.Second
	}
	return opts
}

func runChaos(ctx context.Context, w io.Writer, opts serve.Options, cfg chaosConfig) error {
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts = chaosDefaults(opts)
	if opts.StorePath == "" {
		dir, err := os.MkdirTemp("", "netdecomp-chaos-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		opts.StorePath = filepath.Join(dir, "chaos.snap")
	}
	inj := resilience.NewInjector(cfg.inject)
	inj.SetEnabled(false) // the prime phase runs clean
	opts.Injector = inj
	if opts.FlushRetry.Attempts == 0 {
		opts.FlushRetry = resilience.Backoff{Attempts: 4, Base: 5 * time.Millisecond}
	}

	s := serve.New(opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(w, "netdecompd: chaos harness on %s (store %s)\n", base, opts.StorePath)

	// Prime.
	gk, pk, err := serve.RegisterDefaultWorkload(ctx, base)
	if err != nil {
		s.Close()
		return fmt.Errorf("chaos prime: %w", err)
	}
	client := &http.Client{}
	for seed := uint64(1); seed <= chaosWarmSeeds; seed++ {
		code, _, err := chaosDecompose(ctx, client, base, gk, pk, seed)
		if err != nil || code != http.StatusOK {
			s.Close()
			return fmt.Errorf("chaos prime seed %d: status %d err %v", seed, code, err)
		}
	}
	fmt.Fprintf(w, "chaos    : primed %d warm keys (graph=%s plan=%s)\n", chaosWarmSeeds, gk, pk)

	// Episode.
	inj.SetEnabled(true)
	fmt.Fprintf(w, "chaos    : episode: %v of injected faults (seed %d)\n", cfg.duration, cfg.inject.Seed)
	var (
		warmOK, coldOK, shed, timeouts, explained atomic.Int64
		violations                                atomic.Int64
		sawDegraded                               atomic.Bool
		coldSeed                                  atomic.Uint64
	)
	coldSeed.Store(1 << 32)
	epCtx, epCancel := context.WithTimeout(ctx, cfg.duration)
	defer epCancel()
	go func() {
		for epCtx.Err() == nil {
			if s.Degraded() {
				sawDegraded.Store(true)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	const chaosClients = 8
	var wg sync.WaitGroup
	for c := 0; c < chaosClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; epCtx.Err() == nil; i++ {
				if c%2 == 0 {
					// Warm lane: cache hits must survive every fault.
					code, body, err := chaosDecompose(epCtx, client, base, gk, pk, uint64(1+(c+i)%chaosWarmSeeds))
					if err != nil {
						break // episode over, transport tear-down
					}
					if code != http.StatusOK {
						violations.Add(1)
						fmt.Fprintf(w, "chaos    : VIOLATION: warm hit answered %d (%s)\n", code, body)
						continue
					}
					warmOK.Add(1)
					continue
				}
				// Cold lane: succeed, shed, time out, or fail explained.
				code, body, err := chaosDecompose(epCtx, client, base, gk, pk, coldSeed.Add(1))
				if err != nil {
					break
				}
				switch code {
				case http.StatusOK:
					coldOK.Add(1)
				case http.StatusTooManyRequests:
					shed.Add(1)
				case http.StatusGatewayTimeout:
					timeouts.Add(1)
				case http.StatusInternalServerError:
					if strings.Contains(body, "inject") || strings.Contains(body, "panicked") {
						explained.Add(1)
					} else {
						violations.Add(1)
						fmt.Fprintf(w, "chaos    : VIOLATION: unexplained 500: %s\n", body)
					}
				default:
					violations.Add(1)
					fmt.Fprintf(w, "chaos    : VIOLATION: unexpected status %d: %s\n", code, body)
				}
			}
		}(c)
	}
	wg.Wait()
	epCancel()
	st := inj.Stats()
	fmt.Fprintf(w, "chaos    : episode done: warm=%d cold-ok=%d shed=%d timeouts=%d explained-5xx=%d\n",
		warmOK.Load(), coldOK.Load(), shed.Load(), timeouts.Load(), explained.Load())
	fmt.Fprintf(w, "chaos    : faults delivered: latencies=%d errors=%d panics=%d flushErrors=%d\n",
		st.Latencies, st.Errors, st.Panics, st.FlushErrors)
	fmt.Fprintf(w, "chaos    : degraded observed: %v\n", sawDegraded.Load())

	// Recovery.
	inj.SetEnabled(false)
	recovered := false
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
		if !s.Degraded() && s.Governor().InFlight() == 0 {
			recovered = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !recovered {
		violations.Add(1)
		fmt.Fprintf(w, "chaos    : VIOLATION: degradation did not clear after the episode\n")
	}
	n, err := s.Flush()
	if err != nil {
		violations.Add(1)
		fmt.Fprintf(w, "chaos    : VIOLATION: post-episode flush: %v\n", err)
	} else if vn, verr := chaosVerifySnapshot(opts.StorePath); verr != nil {
		violations.Add(1)
		fmt.Fprintf(w, "chaos    : VIOLATION: snapshot verification: %v\n", verr)
	} else {
		fmt.Fprintf(w, "chaos    : snapshot verified: %d entries (flush reported %d)\n", vn, n)
	}
	fmt.Fprintf(w, "chaos    : violations: %d\n", violations.Load())

	// Drain: load is gone, so this must be clean.
	completed, abandoned := s.Drain(cfg.drain)
	fmt.Fprintf(w, "netdecompd: drained: %d in-flight completed, %d abandoned\n", completed, abandoned)
	if abandoned == 0 {
		fmt.Fprintf(w, "netdecompd: clean drain\n")
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(shCtx)
	if cerr := s.Close(); cerr != nil {
		return cerr
	}
	if v := violations.Load(); v != 0 {
		return fmt.Errorf("chaos: %d violations", v)
	}
	return nil
}

// chaosDecompose posts one decompose request, returning status and body.
func chaosDecompose(ctx context.Context, client *http.Client, base, gk, pk string, seed uint64) (int, string, error) {
	payload, _ := json.Marshal(map[string]any{"graph": gk, "plan": pk, "seed": seed})
	req, err := http.NewRequestWithContext(ctx, "POST", base+"/v1/decompose", bytes.NewReader(payload))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body), nil
}

// chaosVerifySnapshot re-reads the snapshot through the integrity hash.
func chaosVerifySnapshot(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	snap, err := session.ReadSnapshot(f)
	if err != nil {
		return 0, err
	}
	return len(snap.Entries), nil
}
