package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// lineWriter hands each written line to a channel so the test can wait
// for the daemon's startup banner (which carries the bound address).
type lineWriter struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	lines chan string
}

func newLineWriter() *lineWriter {
	return &lineWriter{lines: make(chan string, 64)}
}

func (lw *lineWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	lw.buf.Write(p)
	sc := bufio.NewScanner(bytes.NewReader(p))
	for sc.Scan() {
		select {
		case lw.lines <- sc.Text():
		default:
		}
	}
	return len(p), nil
}

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL plus a shutdown function that waits for a clean exit.
func startDaemon(t *testing.T, extraArgs ...string) (base string, shutdown func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	lw := newLineWriter()
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, extraArgs...), lw)
	}()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case line := <-lw.lines:
			if strings.Contains(line, "serving http://") {
				at := strings.Index(line, "http://")
				base = strings.Fields(line[at:])[0]
				return base, func() error {
					cancel()
					select {
					case err := <-errCh:
						return err
					case <-time.After(15 * time.Second):
						return fmt.Errorf("daemon did not shut down")
					}
				}
			}
		case err := <-errCh:
			t.Fatalf("daemon exited early: %v", err)
		case <-deadline:
			cancel()
			t.Fatal("daemon never printed its address")
		}
	}
}

func postJSON(t *testing.T, url string, in, out any) {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("%s: status %d: %s", url, resp.StatusCode, msg)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDaemonEndToEnd boots the daemon, registers a workload, runs a cold
// and a warm decompose, and checks /metrics reflects the hit.
func TestDaemonEndToEnd(t *testing.T) {
	base, shutdown := startDaemon(t)

	var health map[string]string
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("healthz: %v", health)
	}

	var gi struct {
		Fingerprint string `json:"fingerprint"`
	}
	postJSON(t, base+"/v1/graphs", map[string]any{"family": "gnp", "n": 256, "seed": 5}, &gi)
	var pi struct {
		Plan string `json:"plan"`
	}
	postJSON(t, base+"/v1/plans", map[string]any{"algorithm": "elkin-neiman", "forceComplete": true}, &pi)

	req := map[string]any{"graph": gi.Fingerprint, "plan": pi.Plan}
	var cold, warm struct {
		CacheHit bool `json:"cacheHit"`
	}
	postJSON(t, base+"/v1/decompose", req, &cold)
	postJSON(t, base+"/v1/decompose", req, &warm)
	if cold.CacheHit || !warm.CacheHit {
		t.Fatalf("cold=%v warm=%v", cold.CacheHit, warm.CacheHit)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(prom), "session_hits 1") {
		t.Fatalf("/metrics does not show the hit:\n%s", prom)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestDaemonStoreSurvivesRestart: the acceptance restart cycle through the
// real binary entry point — fill, shut down (flushes), boot again, warm.
func TestDaemonStoreSurvivesRestart(t *testing.T) {
	store := filepath.Join(t.TempDir(), "nd.snap")

	base, shutdown := startDaemon(t, "-store", store)
	var gi struct {
		Fingerprint string `json:"fingerprint"`
	}
	postJSON(t, base+"/v1/graphs", map[string]any{"family": "gnp", "n": 256, "seed": 5}, &gi)
	var pi struct {
		Plan string `json:"plan"`
	}
	postJSON(t, base+"/v1/plans", map[string]any{"algorithm": "elkin-neiman", "forceComplete": true}, &pi)
	req := map[string]any{"graph": gi.Fingerprint, "plan": pi.Plan}
	var dr struct {
		CacheHit bool `json:"cacheHit"`
	}
	postJSON(t, base+"/v1/decompose", req, &dr)
	if err := shutdown(); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}

	base2, shutdown2 := startDaemon(t, "-store", store)
	defer shutdown2()
	var warm struct {
		CacheHit bool `json:"cacheHit"`
	}
	postJSON(t, base2+"/v1/decompose", req, &warm)
	if !warm.CacheHit {
		t.Fatal("restarted daemon missed the persisted cache")
	}
}

// TestDaemonLoadgenMode drives a served daemon with the -loadgen entry
// point and checks the report reaches the output.
func TestDaemonLoadgenMode(t *testing.T) {
	base, shutdown := startDaemon(t)
	defer shutdown()

	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-loadgen", base, "-clients", "2", "-requests", "24", "-seeds", "4",
	}, &out)
	if err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out.String())
	}
	for _, want := range []string{"loadgen  : registered graph=", "requests / 2 clients", "warm hits"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("loadgen output missing %q:\n%s", want, out.String())
		}
	}
}

// TestDaemonDrainAccounting pins the graceful-shutdown path: SIGTERM (via
// context cancel) drains within -drain-timeout and logs the completed/
// abandoned split plus the clean-drain marker the CI smoke job greps.
func TestDaemonDrainAccounting(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	lw := newLineWriter()
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain-timeout", "2s"}, lw)
	}()
	var base string
	for base == "" {
		select {
		case line := <-lw.lines:
			if strings.Contains(line, "serving http://") {
				base = strings.Fields(line[strings.Index(line, "http://"):])[0]
			}
		case err := <-errCh:
			t.Fatalf("daemon exited early: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("daemon never printed its address")
		}
	}
	// /readyz serves while healthy.
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("readyz: %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	lw.mu.Lock()
	out := lw.buf.String()
	lw.mu.Unlock()
	for _, want := range []string{"draining for up to 2s", "drained: 0 in-flight completed, 0 abandoned", "clean drain"} {
		if !strings.Contains(out, want) {
			t.Fatalf("shutdown log missing %q:\n%s", want, out)
		}
	}
}

// TestDaemonDefaultDeadline pins the -default-deadline flag end to end: a
// cold decompose whose budget cannot fit answers 504. The 1ns budget is
// expired before the execution's first context check, so the outcome
// does not race the decomposition speed.
func TestDaemonDefaultDeadline(t *testing.T) {
	base, shutdown := startDaemon(t, "-default-deadline", "1ns")
	defer shutdown()
	var gi struct {
		Fingerprint string `json:"fingerprint"`
	}
	postJSON(t, base+"/v1/graphs", map[string]any{"family": "gnp", "n": 4096, "seed": 5}, &gi)
	var pi struct {
		Plan string `json:"plan"`
	}
	postJSON(t, base+"/v1/plans", map[string]any{"algorithm": "elkin-neiman", "forceComplete": true}, &pi)
	body, _ := json.Marshal(map[string]any{"graph": gi.Fingerprint, "plan": pi.Plan})
	resp, err := http.Post(base+"/v1/decompose", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("cold decompose under 1ms budget: status %d, want 504", resp.StatusCode)
	}
}

// TestDaemonChaosSmoke runs a short chaos episode through the real entry
// point and checks the harness converges: zero violations, verified
// snapshot, clean drain.
func TestDaemonChaosSmoke(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-chaos",
		"-chaos-duration", "700ms",
		"-chaos-latency", "10ms",
		"-store", filepath.Join(t.TempDir(), "chaos.snap"),
	}, &out)
	if err != nil {
		t.Fatalf("chaos run: %v\n%s", err, out.String())
	}
	for _, want := range []string{"violations: 0", "snapshot verified:", "clean drain"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("chaos output missing %q:\n%s", want, out.String())
		}
	}
}

// TestDaemonBadFlags: flag errors and unusable addresses fail fast.
func TestDaemonBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, io.Discard); err == nil {
		t.Fatal("bad -addr must fail")
	}
	if err := run(context.Background(), []string{"-no-such-flag"}, io.Discard); err == nil {
		t.Fatal("unknown flag must fail")
	}
}
