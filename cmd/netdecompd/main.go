// Command netdecompd is the network-decomposition serving daemon: the
// internal/serve HTTP/JSON API over a persistent session. Clients register
// graphs (generator specs or edge-list uploads), compile plans, and submit
// decompose requests that ride the session cache and singleflight;
// per-round statistics stream over SSE, telemetry is live on /metrics, and
// with -store the completed-partition cache (plus the graph/plan
// registries) survives restarts behind an integrity-hashed snapshot.
//
// Examples:
//
//	netdecompd -addr :8080
//	netdecompd -addr :8080 -store /var/lib/netdecomp/netdecomp.snap
//	netdecompd -addr :8080 -store nd.snap -flush-interval 30s -workers 8
//
//	curl -s localhost:8080/v1/graphs -H 'Content-Type: application/json' \
//	     -d '{"family":"gnp","n":4096,"seed":1}'
//	curl -s localhost:8080/v1/plans -H 'Content-Type: application/json' \
//	     -d '{"algorithm":"elkin-neiman","forceComplete":true}'
//	curl -s localhost:8080/v1/decompose -d '{"graph":"<fp>","plan":"<key>"}'
//
// Pipelines compose multiple stages into one request: a typed DAG of
// decompose plans and derived-structure builders (recolor, MIS, coloring,
// matching, spanner, cover) executes level-parallel through the session,
// so a re-post after one upstream edit recomputes only the affected
// stages. The stream variant emits per-stage start/done events over SSE:
//
//	curl -s localhost:8080/v1/pipeline -d '{"graph":"<fp>","pipeline":{
//	  "stages":[{"id":"dec","decompose":{"algorithm":"elkin-neiman","forceComplete":true}},
//	            {"id":"re","recolor":{}},{"id":"mis","mis":{}},{"id":"sp","spanner":{}}],
//	  "edges":[{"from":"dec","to":"re"},{"from":"re","to":"mis"},{"from":"dec","to":"sp"}]}}'
//	curl -sN localhost:8080/v1/pipeline/stream -d @pipeline.json
//
// The built-in load generator replays a Zipf repeat/fresh mix against a
// running daemon and prints hit/miss counts with warm-path latency
// quantiles (the numbers BENCH_serve.json records):
//
//	netdecompd -loadgen http://localhost:8080 -clients 8 -requests 512
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netdecomp/internal/serve"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netdecompd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("netdecompd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address for the API (and /metrics, /debug)")
	store := fs.String("store", "", "persistent result store path (empty = in-memory only)")
	flushInterval := fs.Duration("flush-interval", time.Minute, "periodic snapshot cadence with -store (0 = flush only on shutdown and /v1/store/flush)")
	workers := fs.Int("workers", 0, "session worker pool size (0 = GOMAXPROCS)")
	cache := fs.Int("cache", 0, "completed-result LRU capacity (0 = session default)")
	loadgen := fs.String("loadgen", "", "run as a load generator against this base URL instead of serving")
	clients := fs.Int("clients", 8, "with -loadgen: concurrent clients")
	requests := fs.Int("requests", 256, "with -loadgen: total request count")
	seeds := fs.Int("seeds", 16, "with -loadgen: hot-set size (Zipf over seeds 0..N-1)")
	zipfS := fs.Float64("zipf", 1.3, "with -loadgen: Zipf skew (>1; larger = hotter head)")
	fresh := fs.Float64("fresh", 0.05, "with -loadgen: fraction of requests using a brand-new seed")
	lgGraph := fs.String("graph", "", "with -loadgen: registered graph fingerprint (empty = register gnp n=1024 seed=1)")
	lgPlan := fs.String("plan", "", "with -loadgen: registered plan key (empty = register elkin-neiman forced-complete)")
	lgSeed := fs.Uint64("seed", 1, "with -loadgen: generator randomness seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *loadgen != "" {
		return runLoadgen(ctx, w, *loadgen, serve.LoadOptions{
			Clients:       *clients,
			Requests:      *requests,
			Graph:         *lgGraph,
			Plan:          *lgPlan,
			Seeds:         *seeds,
			ZipfS:         *zipfS,
			FreshFraction: *fresh,
			Seed:          *lgSeed,
		})
	}
	return runServer(ctx, w, serve.Options{
		Workers:       *workers,
		CacheSize:     *cache,
		StorePath:     *store,
		FlushInterval: *flushInterval,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(w, format+"\n", args...)
		},
	}, *addr)
}

// runServer boots the daemon and serves until the context is cancelled or
// a SIGINT/SIGTERM arrives; shutdown flushes the store before exit.
func runServer(ctx context.Context, w io.Writer, opts serve.Options, addr string) error {
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	s := serve.New(opts)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		s.Close()
		return fmt.Errorf("-addr %s: %w", addr, err)
	}
	// The bound address is printed (not just the flag) so -addr :0 works
	// for tests and the CI smoke job.
	fmt.Fprintf(w, "netdecompd: serving http://%s (API, /metrics, /debug)\n", ln.Addr())
	if opts.StorePath != "" {
		fmt.Fprintf(w, "netdecompd: result store at %s (flush every %v)\n", opts.StorePath, opts.FlushInterval)
	}

	srv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintf(w, "netdecompd: shutting down\n")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(shCtx)
		return s.Close() // final store flush rides Close
	case err := <-errCh:
		s.Close()
		return err
	}
}

// runLoadgen drives a running daemon, registering the default workload
// when no graph/plan keys were provided.
func runLoadgen(ctx context.Context, w io.Writer, baseURL string, opt serve.LoadOptions) error {
	if opt.Graph == "" || opt.Plan == "" {
		gk, pk, err := serve.RegisterDefaultWorkload(ctx, baseURL)
		if err != nil {
			return fmt.Errorf("registering default workload: %w", err)
		}
		if opt.Graph == "" {
			opt.Graph = gk
		}
		if opt.Plan == "" {
			opt.Plan = pk
		}
		fmt.Fprintf(w, "loadgen  : registered graph=%s plan=%s\n", opt.Graph, opt.Plan)
	}
	rep, err := serve.RunLoad(ctx, baseURL, opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, rep)
	return nil
}
