// Command netdecompd is the network-decomposition serving daemon: the
// internal/serve HTTP/JSON API over a persistent session. Clients register
// graphs (generator specs or edge-list uploads), compile plans, and submit
// decompose requests that ride the session cache and singleflight;
// per-round statistics stream over SSE, telemetry is live on /metrics, and
// with -store the completed-partition cache (plus the graph/plan
// registries) survives restarts behind an integrity-hashed snapshot.
//
// Examples:
//
//	netdecompd -addr :8080
//	netdecompd -addr :8080 -store /var/lib/netdecomp/netdecomp.snap
//	netdecompd -addr :8080 -store nd.snap -flush-interval 30s -workers 8
//
//	curl -s localhost:8080/v1/graphs -H 'Content-Type: application/json' \
//	     -d '{"family":"gnp","n":4096,"seed":1}'
//	curl -s localhost:8080/v1/plans -H 'Content-Type: application/json' \
//	     -d '{"algorithm":"elkin-neiman","forceComplete":true}'
//	curl -s localhost:8080/v1/decompose -d '{"graph":"<fp>","plan":"<key>"}'
//
// Pipelines compose multiple stages into one request: a typed DAG of
// decompose plans and derived-structure builders (recolor, MIS, coloring,
// matching, spanner, cover) executes level-parallel through the session,
// so a re-post after one upstream edit recomputes only the affected
// stages. The stream variant emits per-stage start/done events over SSE:
//
//	curl -s localhost:8080/v1/pipeline -d '{"graph":"<fp>","pipeline":{
//	  "stages":[{"id":"dec","decompose":{"algorithm":"elkin-neiman","forceComplete":true}},
//	            {"id":"re","recolor":{}},{"id":"mis","mis":{}},{"id":"sp","spanner":{}}],
//	  "edges":[{"from":"dec","to":"re"},{"from":"re","to":"mis"},{"from":"dec","to":"sp"}]}}'
//	curl -sN localhost:8080/v1/pipeline/stream -d @pipeline.json
//
// The built-in load generator replays a Zipf repeat/fresh mix against a
// running daemon and prints hit/miss counts with warm-path latency
// quantiles (the numbers BENCH_serve.json records):
//
//	netdecompd -loadgen http://localhost:8080 -clients 8 -requests 512
//
// With -churn the mix includes graph mutation batches: a fraction of
// requests POST random edge insertions/deletions to the current graph
// version and swap the shared fingerprint for the returned one, so the
// decompose traffic chases a moving graph through the versioned-key API:
//
//	netdecompd -loadgen http://localhost:8080 -churn 0.05 -churn-batch 4
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netdecomp/internal/resilience"
	"netdecomp/internal/serve"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netdecompd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("netdecompd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address for the API (and /metrics, /debug)")
	store := fs.String("store", "", "persistent result store path (empty = in-memory only)")
	flushInterval := fs.Duration("flush-interval", time.Minute, "periodic snapshot cadence with -store (0 = flush only on shutdown and /v1/store/flush)")
	workers := fs.Int("workers", 0, "session worker pool size (0 = GOMAXPROCS)")
	cache := fs.Int("cache", 0, "completed-result LRU capacity (0 = session default)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget: how long in-flight requests may finish after SIGTERM")
	defaultDeadline := fs.Duration("default-deadline", 0, "server-side budget applied to requests that ask for none (0 = unlimited)")
	maxDeadline := fs.Duration("max-deadline", 0, "hard cap on any requested per-request budget (0 = uncapped)")
	admitDecompose := fs.Int("admit-decompose", 0, "concurrent decompose admissions (0 = unlimited)")
	admitPipeline := fs.Int("admit-pipeline", 0, "concurrent pipeline admissions (0 = unlimited)")
	admitRegister := fs.Int("admit-register", 0, "concurrent graph/plan registration admissions (0 = unlimited)")
	admitQueue := fs.Int("admit-queue", 0, "bounded FIFO wait queue depth per admission gate (0 = reject when busy)")
	shedWatermark := fs.Int("shed-watermark", 0, "heavy in-flight count past which cold-miss work is shed with 429 (0 = never)")
	chaos := fs.Bool("chaos", false, "run the deterministic chaos harness against an in-process daemon instead of serving")
	chaosDuration := fs.Duration("chaos-duration", 5*time.Second, "with -chaos: fault episode length")
	chaosSeed := fs.Uint64("chaos-seed", 42, "with -chaos: injector PRNG seed")
	chaosLatency := fs.Duration("chaos-latency", 50*time.Millisecond, "with -chaos: injected latency spike size")
	chaosLatencyRate := fs.Float64("chaos-latency-rate", 1.0, "with -chaos: fraction of executions hit by a latency spike")
	chaosErrorRate := fs.Float64("chaos-error-rate", 0.10, "with -chaos: fraction of executions failed with an injected error")
	chaosPanicRate := fs.Float64("chaos-panic-rate", 0.10, "with -chaos: fraction of executions killed by an injected panic")
	chaosFlushErrorRate := fs.Float64("chaos-flush-error-rate", 0.10, "with -chaos: fraction of snapshot writes failed")
	loadgen := fs.String("loadgen", "", "run as a load generator against this base URL instead of serving")
	clients := fs.Int("clients", 8, "with -loadgen: concurrent clients")
	requests := fs.Int("requests", 256, "with -loadgen: total request count")
	seeds := fs.Int("seeds", 16, "with -loadgen: hot-set size (Zipf over seeds 0..N-1)")
	zipfS := fs.Float64("zipf", 1.3, "with -loadgen: Zipf skew (>1; larger = hotter head)")
	fresh := fs.Float64("fresh", 0.05, "with -loadgen: fraction of requests using a brand-new seed")
	lgGraph := fs.String("graph", "", "with -loadgen: registered graph fingerprint (empty = register gnp n=1024 seed=1)")
	lgPlan := fs.String("plan", "", "with -loadgen: registered plan key (empty = register elkin-neiman forced-complete)")
	lgSeed := fs.Uint64("seed", 1, "with -loadgen: generator randomness seed")
	churn := fs.Float64("churn", 0, "with -loadgen: fraction of requests that post a mutation batch to the current graph version (0 = static graph)")
	churnBatch := fs.Int("churn-batch", 4, "with -loadgen -churn: mutations per batch")
	churnN := fs.Int("churn-n", 0, "with -loadgen -churn: vertex-id bound for random mutations (0 = default workload's 1024)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *loadgen != "" {
		return runLoadgen(ctx, w, *loadgen, serve.LoadOptions{
			Clients:       *clients,
			Requests:      *requests,
			Graph:         *lgGraph,
			Plan:          *lgPlan,
			Seeds:         *seeds,
			ZipfS:         *zipfS,
			FreshFraction: *fresh,
			Seed:          *lgSeed,
			ChurnFraction: *churn,
			ChurnBatch:    *churnBatch,
			ChurnN:        *churnN,
		})
	}
	opts := serve.Options{
		Workers:       *workers,
		CacheSize:     *cache,
		StorePath:     *store,
		FlushInterval: *flushInterval,
		Resilience: resilience.Options{
			Decompose:     resilience.GateConfig{Slots: *admitDecompose, Queue: *admitQueue},
			Pipeline:      resilience.GateConfig{Slots: *admitPipeline, Queue: *admitQueue},
			Register:      resilience.GateConfig{Slots: *admitRegister, Queue: *admitQueue},
			ShedWatermark: *shedWatermark,
			Deadline:      resilience.DeadlinePolicy{Default: *defaultDeadline, Max: *maxDeadline},
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(w, format+"\n", args...)
		},
	}
	if *chaos {
		return runChaos(ctx, w, opts, chaosConfig{
			duration: *chaosDuration,
			drain:    *drainTimeout,
			inject: resilience.InjectorConfig{
				Seed:           *chaosSeed,
				Latency:        *chaosLatency,
				LatencyRate:    *chaosLatencyRate,
				ErrorRate:      *chaosErrorRate,
				PanicRate:      *chaosPanicRate,
				FlushErrorRate: *chaosFlushErrorRate,
			},
		})
	}
	return runServer(ctx, w, opts, *addr, *drainTimeout)
}

// runServer boots the daemon and serves until the context is cancelled or
// a SIGINT/SIGTERM arrives. Shutdown is a graceful drain: /readyz flips
// to 503 and admissions stop immediately, in-flight requests get up to
// drainTimeout to finish (the completed-vs-abandoned split is logged),
// and the final store flush rides Close.
func runServer(ctx context.Context, w io.Writer, opts serve.Options, addr string, drainTimeout time.Duration) error {
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	s := serve.New(opts)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		s.Close()
		return fmt.Errorf("-addr %s: %w", addr, err)
	}
	// The bound address is printed (not just the flag) so -addr :0 works
	// for tests and the CI smoke job.
	fmt.Fprintf(w, "netdecompd: serving http://%s (API, /metrics, /debug)\n", ln.Addr())
	if opts.StorePath != "" {
		fmt.Fprintf(w, "netdecompd: result store at %s (flush every %v)\n", opts.StorePath, opts.FlushInterval)
	}

	srv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintf(w, "netdecompd: shutting down: draining for up to %v\n", drainTimeout)
		completed, abandoned := s.Drain(drainTimeout)
		fmt.Fprintf(w, "netdecompd: drained: %d in-flight completed, %d abandoned\n", completed, abandoned)
		if abandoned == 0 {
			fmt.Fprintf(w, "netdecompd: clean drain\n")
		}
		// The HTTP layer follows the application drain; its budget only
		// covers connection teardown, so keep it short.
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shCtx)
		return s.Close() // final store flush rides Close
	case err := <-errCh:
		s.Close()
		return err
	}
}

// runLoadgen drives a running daemon, registering the default workload
// when no graph/plan keys were provided.
func runLoadgen(ctx context.Context, w io.Writer, baseURL string, opt serve.LoadOptions) error {
	if opt.Graph == "" || opt.Plan == "" {
		gk, pk, err := serve.RegisterDefaultWorkload(ctx, baseURL)
		if err != nil {
			return fmt.Errorf("registering default workload: %w", err)
		}
		if opt.Graph == "" {
			opt.Graph = gk
		}
		if opt.Plan == "" {
			opt.Plan = pk
		}
		fmt.Fprintf(w, "loadgen  : registered graph=%s plan=%s\n", opt.Graph, opt.Plan)
	}
	rep, err := serve.RunLoad(ctx, baseURL, opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, rep)
	return nil
}
