package main

// The -pipeline mode: execute a JSON pipeline document (the same Spec
// POST /v1/pipeline accepts) against the loaded or generated graph,
// level-parallel through a serving session. -repeat re-runs the pipeline
// through the same session, so the second pass prints the cache flip:
// every decompose stage a hit, only derived stages recomputing.

import (
	"context"
	"fmt"
	"io"
	"os"

	"netdecomp/internal/graph"
	"netdecomp/internal/obs"
	"netdecomp/internal/pipeline"
	"netdecomp/internal/session"
)

// runPipelineFile executes the pipeline document at path on g.
func runPipelineFile(ctx context.Context, w io.Writer, rec *obs.Recorder, path string, g *graph.Graph, source string, repeat int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := pipeline.ParseSpec(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	p, err := spec.Build()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	s := session.New(session.WithRecorder(rec))
	defer s.Close()
	ex := pipeline.NewExecutor(pipeline.WithSession(s), pipeline.WithRecorder(rec))

	fmt.Fprintf(w, "graph    : %s (%s)\n", g, source)
	fmt.Fprintf(w, "pipeline : %s — %d stages over %d levels\n", path, len(p.Stages()), len(p.Levels()))
	for lvl, ids := range p.Levels() {
		fmt.Fprintf(w, "level %-3d: %v\n", lvl, ids)
	}
	for run := 0; run < repeat; run++ {
		res, err := ex.Run(ctx, p, g)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "run %-5d: elapsed=%.2fms cacheHits=%d/%d\n",
			run+1, float64(res.ElapsedNs)/1e6, res.CacheHits, len(res.Order))
		for _, sr := range res.SortedStages() {
			fmt.Fprintf(w, "  %-10s %-10s level=%d hit=%-5v %8.2fms  %s\n",
				sr.ID, sr.Kind, sr.Level, sr.CacheHit, float64(sr.LatencyNs)/1e6, stageSummary(sr))
		}
	}
	st := s.Stats()
	fmt.Fprintf(w, "session  : hits=%d misses=%d dedups=%d cached=%d\n",
		st.Hits, st.Misses, st.Dedups, st.Cached)
	return nil
}

// stageSummary renders one stage result's headline numbers.
func stageSummary(sr *pipeline.StageResult) string {
	switch sr.Kind {
	case pipeline.KindPartition:
		return fmt.Sprintf("clusters=%d colors=%d", len(sr.Partition.Clusters), sr.Partition.Colors)
	case pipeline.KindAppInput:
		return fmt.Sprintf("clusters=%d", len(sr.AppInput.Clusters))
	case pipeline.KindMIS:
		return fmt.Sprintf("size=%d rounds=%d", sr.MIS.Size, sr.MIS.Rounds)
	case pipeline.KindColoring:
		return fmt.Sprintf("colors=%d rounds=%d", sr.Coloring.NumColors, sr.Coloring.Rounds)
	case pipeline.KindMatching:
		return fmt.Sprintf("size=%d rounds=%d", sr.Matching.Size, sr.Matching.Rounds)
	case pipeline.KindSpanner:
		return fmt.Sprintf("edges=%d pieces=%d", sr.Spanner.Edges, sr.Spanner.Pieces)
	default:
		return fmt.Sprintf("sets=%d degree=%d w=%d", len(sr.Cover.Clusters), sr.Cover.Degree, sr.Cover.W)
	}
}
