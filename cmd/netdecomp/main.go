package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	rtpprof "runtime/pprof"
	"sort"
	"time"

	"netdecomp/internal/core"
	"netdecomp/internal/decomp"
	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/graphio"
	"netdecomp/internal/obs"
	"netdecomp/internal/serve"
	"netdecomp/internal/session"
	"netdecomp/internal/stats"
)

// Command netdecomp runs network decompositions on generated graphs,
// verifies them, and prints the measured parameters next to the theorem
// bounds. Any algorithm in the unified registry can drive it; the options
// are compiled once into a decomp.Plan, and the batch modes (-repeat,
// -sweep-seeds, -sweep) execute the plan through a serving session whose
// cache and dedup statistics are reported.
//
// Examples:
//
//	netdecomp -family gnp -n 4096 -k 8
//	netdecomp -family grid -n 1024 -variant t3 -lambda 3
//	netdecomp -family gnp -n 1024 -distributed -parallel
//	netdecomp -family gnp -n 1024 -algo linial-saks -timeout 30s
//	netdecomp -family grid -n 900 -algo mpx/dist -beta 0.4
//	netdecomp -family gnp -n 1024 -repeat 5            # cache hits
//	netdecomp -family gnp -n 1024 -sweep-seeds 8       # seed sweep, one plan
//	netdecomp -n 512 -sweep                            # every gen family
//	netdecomp -family gnp -n 1024 -pipeline dag.json -repeat 2  # typed stage DAG
//
// Observability: every run collects its telemetry (round counters,
// frontier/latency histograms, session cache statistics) in a unified
// registry. -metrics-addr serves it over HTTP as Prometheus text
// (/metrics), expvar JSON (/debug/vars) and live pprof endpoints
// (/debug/pprof/); -trace exports the run's span hierarchy — session job
// → plan run → phase → per-round instants — as Chrome trace-event JSON
// for chrome://tracing or Perfetto; -profile-cpu / -profile-mem write
// runtime/pprof profiles of the process itself.
//
//	netdecomp -family gnp -n 65536 -metrics-addr :8080 -linger 1m
//	netdecomp -family grid -n 4096 -trace run.json
//	netdecomp -family gnp -n 65536 -profile-cpu cpu.out -profile-mem heap.out
func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netdecomp:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("netdecomp", flag.ContinueOnError)
	algo := fs.String("algo", "elkin-neiman", "registry algorithm (elkin-neiman, linial-saks, mpx, mpx/dist, ball-carving, ...)")
	family := fs.String("family", "gnp", "graph family (see gen.Families: gnp, grid, torus, tree, path, cycle, hypercube, regular, ringofcliques, caterpillar, smallworld, powerlaw)")
	input := fs.String("input", "", "read the graph from an edge-list file instead of generating one")
	n := fs.Int("n", 1024, "approximate number of vertices")
	k := fs.Int("k", 0, "radius parameter (0 = algorithm default)")
	lambda := fs.Int("lambda", 2, "color budget for -variant t3")
	c := fs.Float64("c", 8, "confidence parameter (failure probability <= 3/c)")
	beta := fs.Float64("beta", 0, "MPX exponential rate (0 = default 0.3)")
	variantName := fs.String("variant", "t1", "theorem variant for elkin-neiman: t1, t2 or t3")
	seed := fs.Uint64("seed", 1, "random seed")
	mode := fs.String("mode", "cap", "radius mode: cap (paper) or exact")
	force := fs.Bool("force", false, "keep carving past the budget until complete")
	distributed := fs.Bool("distributed", false, "execute on the message-passing engine")
	parallel := fs.Bool("parallel", false, "with -distributed: use the goroutine-parallel scheduler")
	timeout := fs.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	repeat := fs.Int("repeat", 1, "submit the identical job this many times through a session (exercises the result cache)")
	pipelineFile := fs.String("pipeline", "", "execute a JSON pipeline document (the POST /v1/pipeline spec) on the graph instead of a single plan; -repeat re-runs it against the warm session")
	sweepSeeds := fs.Int("sweep-seeds", 0, "run seeds seed..seed+N-1 through a session as one streamed batch")
	sweep := fs.Bool("sweep", false, "run the algorithm on every graph family (no -input), one session")
	metricsAddr := fs.String("metrics-addr", "", "serve the telemetry registry on this address: /metrics (Prometheus text), /debug/vars (expvar), /debug/pprof (live profiling)")
	linger := fs.Duration("linger", 0, "with -metrics-addr: keep serving this long after the run completes (so scrapers see the final state)")
	tracePath := fs.String("trace", "", "write the run's span hierarchy as Chrome trace-event JSON to this file")
	cpuProfile := fs.String("profile-cpu", "", "write a CPU profile of the whole run to this file")
	memProfile := fs.String("profile-mem", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// One registry for the whole invocation; the tracer only exists when a
	// trace export was requested (spans are retained in memory).
	reg := obs.NewRegistry()
	var trc *obs.Tracer
	if *tracePath != "" {
		trc = obs.NewTracer()
	}
	rec := obs.New(reg, trc)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := rtpprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			rtpprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			if err := writeHeapProfile(*memProfile); err != nil {
				fmt.Fprintln(os.Stderr, "netdecomp: heap profile:", err)
			}
		}()
	}
	if *metricsAddr != "" {
		// The observability mux is shared with cmd/netdecompd (see
		// internal/serve/debug.go) so the two binaries expose identical
		// /metrics, /debug/vars and /debug/pprof surfaces.
		srv, ln, err := serve.ListenDebug(*metricsAddr, reg)
		if err != nil {
			return fmt.Errorf("-metrics-addr: %w", err)
		}
		fmt.Fprintf(w, "metrics  : serving http://%s/metrics /debug/vars /debug/pprof\n", ln.Addr())
		defer func() {
			if *linger > 0 {
				fmt.Fprintf(w, "metrics  : lingering %v on http://%s\n", *linger, ln.Addr())
				time.Sleep(*linger)
			}
			srv.Close()
		}()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// The Elkin–Neiman variants live under per-theorem registry names.
	name := *algo
	variant, err := core.ParseVariant(*variantName)
	if err != nil {
		return err
	}
	if name == "elkin-neiman" {
		name = "elkin-neiman/" + variant.String()
	}

	opts := []decomp.Option{
		decomp.WithK(*k),
		decomp.WithLambda(*lambda),
		decomp.WithC(*c),
		decomp.WithBeta(*beta),
		decomp.WithSeed(*seed),
	}
	switch *mode {
	case "cap":
	case "exact":
		opts = append(opts, decomp.WithExactRadius())
	default:
		return fmt.Errorf("unknown -mode %q (want cap or exact)", *mode)
	}
	if *force {
		opts = append(opts, decomp.WithForceComplete())
	}
	if *distributed {
		opts = append(opts, decomp.WithScheduler(*parallel, 0))
	}
	pl, err := decomp.Compile(name, opts...)
	if err != nil {
		return err
	}

	if *repeat < 1 {
		return fmt.Errorf("-repeat must be at least 1, got %d", *repeat)
	}
	if *sweepSeeds < 0 {
		return fmt.Errorf("-sweep-seeds must be non-negative, got %d", *sweepSeeds)
	}
	runErr := func() error {
		if *sweep {
			if *input != "" {
				return fmt.Errorf("-sweep generates its own graphs; drop -input")
			}
			return deadline(runFamilySweep(ctx, w, pl, rec, *n, *seed, *sweepSeeds), *timeout)
		}
		g, source, err := loadGraph(*input, *family, *n, *seed)
		if err != nil {
			return err
		}
		if *pipelineFile != "" {
			return deadline(runPipelineFile(ctx, w, rec, *pipelineFile, g, source, *repeat), *timeout)
		}
		if *sweepSeeds > 0 {
			return deadline(runSeedSweep(ctx, w, pl, rec, g, source, *seed, *sweepSeeds, *repeat), *timeout)
		}
		return deadline(runOnce(ctx, w, pl, rec, g, source, *algo, variant, *repeat), *timeout)
	}()

	if *tracePath != "" {
		if err := writeTraceFile(*tracePath, trc); err != nil {
			if runErr == nil {
				runErr = err
			}
		} else {
			fmt.Fprintf(w, "trace    : wrote %s (load in chrome://tracing or Perfetto)\n", *tracePath)
		}
	}
	return runErr
}

// writeTraceFile exports the tracer's event buffer as Chrome trace JSON.
func writeTraceFile(path string, trc *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trc.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}

// writeHeapProfile snapshots the heap after a final GC — the
// -profile-mem exit hook.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := rtpprof.Lookup("heap").WriteTo(f, 0); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}

// deadline converts a context deadline error into the actionable message
// the exit path prints, preserving other errors unchanged.
func deadline(err error, timeout time.Duration) error {
	if err != nil && errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("timed out after %v (raise -timeout or shrink the input): %w", timeout, err)
	}
	return err
}

// loadGraph reads -input or generates the named family.
func loadGraph(input, family string, n int, seed uint64) (*graph.Graph, string, error) {
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return nil, "", err
		}
		g, err := graphio.Read(f)
		closeErr := f.Close()
		if err != nil {
			return nil, "", fmt.Errorf("reading %s: %w", input, err)
		}
		if closeErr != nil {
			return nil, "", closeErr
		}
		return g, input, nil
	}
	fam, err := gen.ParseFamily(family)
	if err != nil {
		return nil, "", err
	}
	g, err := gen.Build(fam, n, seed)
	if err != nil {
		return nil, "", err
	}
	return g, fam.String(), nil
}

// runOnce is the classic single-job mode, optionally repeated through a
// session to demonstrate the result cache.
func runOnce(ctx context.Context, w io.Writer, pl *decomp.Plan, rec *obs.Recorder, g *graph.Graph, source, algo string, variant core.Variant, repeat int) error {
	var p *decomp.Partition
	var st session.Stats
	if repeat > 1 {
		s := session.New(session.WithRecorder(rec))
		defer s.Close()
		for i := 0; i < repeat; i++ {
			var err error
			p, err = s.Run(ctx, pl, g)
			if err != nil {
				return err
			}
		}
		st = s.Stats()
	} else {
		var err error
		p, err = pl.WithRecorder(rec).Run(ctx, g)
		if err != nil {
			return err
		}
	}

	cfg := pl.Config()
	fmt.Fprintf(w, "graph    : %s (%s)\n", g, source)
	fmt.Fprintf(w, "options  : algo=%s k=%s c=%v seed=%d plankey=%016x\n",
		pl.Name(), orAuto(cfg.K), cfg.C, cfg.Seed, pl.PlanKey())
	fmt.Fprintf(w, "result   : %s\n", p)
	fmt.Fprintf(w, "cost     : rounds=%d messages=%d words=%d maxMsgWords=%d\n",
		p.Metrics.Rounds, p.Metrics.Messages, p.Metrics.Words, p.Metrics.MaxMessageWords)
	printSizes(w, p)
	if repeat > 1 {
		fmt.Fprintf(w, "session  : repeat=%d hits=%d misses=%d dedups=%d cached=%d\n",
			repeat, st.Hits, st.Misses, st.Dedups, st.Cached)
	}

	rep := p.Verify(g)
	fmt.Fprintf(w, "verify   : valid=%v strongDiam=%d weakDiam=%d colors=%d coverage=%.3f\n",
		rep.Valid(), rep.MaxStrongDiameter, rep.MaxWeakDiameter, rep.Colors, rep.Coverage)

	// The theorem bounds apply to the Elkin–Neiman regimes.
	if algo == "elkin-neiman" {
		coreOpts := core.Options{Variant: variant, K: cfg.K, Lambda: cfg.Lambda, C: cfg.C, Seed: cfg.Seed}
		if dBound, err := core.TheoremDiameterBound(g.N(), coreOpts); err == nil {
			fmt.Fprintf(w, "bounds   : diameter<=%d", dBound)
			if cBound, err := core.TheoremColorBound(g.N(), coreOpts); err == nil {
				fmt.Fprintf(w, " colors<=%.1f", cBound)
			}
			if rBound, err := core.TheoremRoundBound(g.N(), coreOpts); err == nil {
				fmt.Fprintf(w, " rounds<=%.0f", rBound)
			}
			fmt.Fprintln(w)
		}
	}
	if !rep.Valid() {
		return rep.Err()
	}
	return nil
}

// runSeedSweep submits seeds base..base+count-1 (each repeated `repeat`
// times, so dedup and cache absorb the duplicates) as one streamed batch.
func runSeedSweep(ctx context.Context, w io.Writer, pl *decomp.Plan, rec *obs.Recorder, g *graph.Graph, source string, base uint64, count, repeat int) error {
	s := session.New(session.WithRecorder(rec))
	defer s.Close()
	reqs := make([]session.Request, 0, count*repeat)
	for r := 0; r < repeat; r++ {
		for i := 0; i < count; i++ {
			reqs = append(reqs, session.Request{Plan: pl.WithSeed(base + uint64(i)), Graph: g})
		}
	}
	type row struct {
		res session.Result
		p   *decomp.Partition
	}
	rows := make([]row, 0, len(reqs))
	for res := range s.SubmitAll(ctx, reqs) {
		if res.Err != nil {
			return res.Err
		}
		rows = append(rows, row{res: res, p: res.Partition})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].res.Index < rows[j].res.Index })
	fmt.Fprintf(w, "graph    : %s (%s)\n", g, source)
	fmt.Fprintf(w, "plan     : algo=%s plankey=%016x seeds=%d..%d repeat=%d\n",
		pl.Name(), pl.PlanKey(), base, base+uint64(count)-1, repeat)
	for _, r := range rows[:count] { // one line per distinct seed
		rep := r.p.Verify(g)
		fmt.Fprintf(w, "seed %-4d: clusters=%d colors=%d rounds=%d valid=%v\n",
			base+uint64(r.res.Index), len(r.p.Clusters), r.p.Colors, r.p.Metrics.Rounds, rep.Valid())
		if !rep.Valid() {
			return rep.Err()
		}
	}
	st := s.Stats()
	fmt.Fprintf(w, "session  : jobs=%d hits=%d misses=%d dedups=%d cached=%d\n",
		len(reqs), st.Hits, st.Misses, st.Dedups, st.Cached)
	return nil
}

// runFamilySweep runs the plan over every registered graph family — the
// gen.Families table is enumerated the same way the decomp registry is.
func runFamilySweep(ctx context.Context, w io.Writer, pl *decomp.Plan, rec *obs.Recorder, n int, seed uint64, seeds int) error {
	if seeds < 1 {
		seeds = 1
	}
	s := session.New(session.WithRecorder(rec))
	defer s.Close()
	fmt.Fprintf(w, "plan     : algo=%s plankey=%016x n≈%d seeds=%d\n", pl.Name(), pl.PlanKey(), n, seeds)
	for _, fam := range gen.Families() {
		g, err := gen.Build(fam, n, seed)
		if err != nil {
			return err
		}
		for i := 0; i < seeds; i++ {
			p, err := s.Run(ctx, pl.WithSeed(seed+uint64(i)), g)
			if err != nil {
				return fmt.Errorf("%s: %w", fam, err)
			}
			rep := p.Verify(g)
			fmt.Fprintf(w, "%-13s: n=%d m=%d seed=%d clusters=%d colors=%d rounds=%d valid=%v\n",
				fam, g.N(), g.M(), seed+uint64(i), len(p.Clusters), p.Colors, p.Metrics.Rounds, rep.Valid())
			if !rep.Valid() {
				return fmt.Errorf("%s: %w", fam, rep.Err())
			}
		}
	}
	st := s.Stats()
	fmt.Fprintf(w, "session  : hits=%d misses=%d dedups=%d cached=%d\n",
		st.Hits, st.Misses, st.Dedups, st.Cached)
	return nil
}

// orAuto renders a zero-valued parameter as its "algorithm default" form.
func orAuto(v int) string {
	if v == 0 {
		return "auto"
	}
	return fmt.Sprintf("%d", v)
}

// printSizes summarizes the cluster-size distribution.
func printSizes(w io.Writer, p *decomp.Partition) {
	if len(p.Clusters) == 0 {
		fmt.Fprintf(w, "clusters : 0 total\n")
		return
	}
	sizes := make([]float64, 0, len(p.Clusters))
	singletons := 0
	for i := range p.Clusters {
		sz := len(p.Clusters[i].Members)
		sizes = append(sizes, float64(sz))
		if sz == 1 {
			singletons++
		}
	}
	s := stats.Summarize(sizes)
	fmt.Fprintf(w, "clusters : %d total, %d singletons, mean %.1f, median %.0f, max %.0f\n",
		len(sizes), singletons, s.Mean, s.Median, s.Max)
}
