package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"netdecomp/internal/core"
	"netdecomp/internal/decomp"
	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/graphio"
	"netdecomp/internal/stats"
)

// Command netdecomp runs one network decomposition on a generated graph,
// verifies it, and prints the measured parameters next to the theorem
// bounds. Any algorithm in the unified registry can drive it.
//
// Examples:
//
//	netdecomp -family gnp -n 4096 -k 8
//	netdecomp -family grid -n 1024 -variant t3 -lambda 3
//	netdecomp -family gnp -n 1024 -distributed -parallel
//	netdecomp -family gnp -n 1024 -algo linial-saks
//	netdecomp -family grid -n 900 -algo mpx/dist -beta 0.4
func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netdecomp:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("netdecomp", flag.ContinueOnError)
	algo := fs.String("algo", "elkin-neiman", "registry algorithm (elkin-neiman, linial-saks, mpx, mpx/dist, ball-carving, ...)")
	family := fs.String("family", "gnp", "graph family (gnp, grid, torus, tree, path, cycle, hypercube, regular, ringofcliques, caterpillar, smallworld, powerlaw)")
	input := fs.String("input", "", "read the graph from an edge-list file instead of generating one")
	n := fs.Int("n", 1024, "approximate number of vertices")
	k := fs.Int("k", 0, "radius parameter (0 = algorithm default)")
	lambda := fs.Int("lambda", 2, "color budget for -variant t3")
	c := fs.Float64("c", 8, "confidence parameter (failure probability <= 3/c)")
	beta := fs.Float64("beta", 0, "MPX exponential rate (0 = default 0.3)")
	variantName := fs.String("variant", "t1", "theorem variant for elkin-neiman: t1, t2 or t3")
	seed := fs.Uint64("seed", 1, "random seed")
	mode := fs.String("mode", "cap", "radius mode: cap (paper) or exact")
	force := fs.Bool("force", false, "keep carving past the budget until complete")
	distributed := fs.Bool("distributed", false, "execute on the message-passing engine")
	parallel := fs.Bool("parallel", false, "with -distributed: use the goroutine-parallel scheduler")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *graph.Graph
	var source string
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		g, err = graphio.Read(f)
		closeErr := f.Close()
		if err != nil {
			return fmt.Errorf("reading %s: %w", *input, err)
		}
		if closeErr != nil {
			return closeErr
		}
		source = *input
	} else {
		fam, err := gen.ParseFamily(*family)
		if err != nil {
			return err
		}
		g, err = gen.Build(fam, *n, *seed)
		if err != nil {
			return err
		}
		source = fam.String()
	}

	// The Elkin–Neiman variants live under per-theorem registry names.
	name := *algo
	variant, err := core.ParseVariant(*variantName)
	if err != nil {
		return err
	}
	if name == "elkin-neiman" {
		name = "elkin-neiman/" + variant.String()
	}
	d, err := decomp.Get(name)
	if err != nil {
		return err
	}

	opts := []decomp.Option{
		decomp.WithK(*k),
		decomp.WithLambda(*lambda),
		decomp.WithC(*c),
		decomp.WithBeta(*beta),
		decomp.WithSeed(*seed),
	}
	switch *mode {
	case "cap":
	case "exact":
		opts = append(opts, decomp.WithExactRadius())
	default:
		return fmt.Errorf("unknown -mode %q (want cap or exact)", *mode)
	}
	if *force {
		opts = append(opts, decomp.WithForceComplete())
	}
	if *distributed {
		opts = append(opts, decomp.WithScheduler(*parallel, 0))
	}

	p, err := d.Decompose(context.Background(), g, opts...)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "graph    : %s (%s)\n", g, source)
	fmt.Fprintf(w, "options  : algo=%s k=%s c=%v seed=%d mode=%s\n",
		name, orAuto(*k), *c, *seed, *mode)
	fmt.Fprintf(w, "result   : %s\n", p)
	fmt.Fprintf(w, "cost     : rounds=%d messages=%d words=%d maxMsgWords=%d\n",
		p.Metrics.Rounds, p.Metrics.Messages, p.Metrics.Words, p.Metrics.MaxMessageWords)
	printSizes(w, p)

	rep := p.Verify(g)
	fmt.Fprintf(w, "verify   : valid=%v strongDiam=%d weakDiam=%d colors=%d coverage=%.3f\n",
		rep.Valid(), rep.MaxStrongDiameter, rep.MaxWeakDiameter, rep.Colors, rep.Coverage)

	// The theorem bounds apply to the Elkin–Neiman regimes.
	if *algo == "elkin-neiman" {
		coreOpts := core.Options{Variant: variant, K: *k, Lambda: *lambda, C: *c, Seed: *seed}
		if dBound, err := core.TheoremDiameterBound(g.N(), coreOpts); err == nil {
			fmt.Fprintf(w, "bounds   : diameter<=%d", dBound)
			if cBound, err := core.TheoremColorBound(g.N(), coreOpts); err == nil {
				fmt.Fprintf(w, " colors<=%.1f", cBound)
			}
			if rBound, err := core.TheoremRoundBound(g.N(), coreOpts); err == nil {
				fmt.Fprintf(w, " rounds<=%.0f", rBound)
			}
			fmt.Fprintln(w)
		}
	}
	if !rep.Valid() {
		return rep.Err()
	}
	return nil
}

// orAuto renders a zero-valued parameter as its "algorithm default" form.
func orAuto(v int) string {
	if v == 0 {
		return "auto"
	}
	return fmt.Sprintf("%d", v)
}

// printSizes summarizes the cluster-size distribution.
func printSizes(w io.Writer, p *decomp.Partition) {
	if len(p.Clusters) == 0 {
		fmt.Fprintf(w, "clusters : 0 total\n")
		return
	}
	sizes := make([]float64, 0, len(p.Clusters))
	singletons := 0
	for i := range p.Clusters {
		sz := len(p.Clusters[i].Members)
		sizes = append(sizes, float64(sz))
		if sz == 1 {
			singletons++
		}
	}
	s := stats.Summarize(sizes)
	fmt.Fprintf(w, "clusters : %d total, %d singletons, mean %.1f, median %.0f, max %.0f\n",
		len(sizes), singletons, s.Mean, s.Median, s.Max)
}
