// Command netdecomp runs one strong-diameter network decomposition on a
// generated graph, verifies it, and prints the measured parameters next to
// the theorem bounds.
//
// Examples:
//
//	netdecomp -family gnp -n 4096 -k 8
//	netdecomp -family grid -n 1024 -variant t3 -lambda 3
//	netdecomp -family gnp -n 1024 -distributed -parallel
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"netdecomp/internal/core"
	"netdecomp/internal/dist"
	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/graphio"
	"netdecomp/internal/verify"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netdecomp:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("netdecomp", flag.ContinueOnError)
	family := fs.String("family", "gnp", "graph family (gnp, grid, torus, tree, path, cycle, hypercube, regular, ringofcliques, caterpillar, smallworld)")
	input := fs.String("input", "", "read the graph from an edge-list file instead of generating one")
	n := fs.Int("n", 1024, "approximate number of vertices")
	k := fs.Int("k", 0, "radius parameter (0 = ceil(ln n))")
	lambda := fs.Int("lambda", 2, "color budget for -variant t3")
	c := fs.Float64("c", 8, "confidence parameter (failure probability <= 3/c)")
	variantName := fs.String("variant", "t1", "theorem variant: t1, t2 or t3")
	seed := fs.Uint64("seed", 1, "random seed")
	mode := fs.String("mode", "cap", "radius mode: cap (paper) or exact")
	force := fs.Bool("force", false, "keep carving past the budget until complete")
	distributed := fs.Bool("distributed", false, "execute on the message-passing engine")
	parallel := fs.Bool("parallel", false, "with -distributed: use the goroutine-parallel scheduler")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *graph.Graph
	var source string
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		g, err = graphio.Read(f)
		closeErr := f.Close()
		if err != nil {
			return fmt.Errorf("reading %s: %w", *input, err)
		}
		if closeErr != nil {
			return closeErr
		}
		source = *input
	} else {
		fam, err := gen.ParseFamily(*family)
		if err != nil {
			return err
		}
		g, err = gen.Build(fam, *n, *seed)
		if err != nil {
			return err
		}
		source = fam.String()
	}
	variant, err := core.ParseVariant(*variantName)
	if err != nil {
		return err
	}
	opts := core.Options{
		Variant:       variant,
		K:             *k,
		Lambda:        *lambda,
		C:             *c,
		Seed:          *seed,
		ForceComplete: *force,
	}
	switch *mode {
	case "cap":
		opts.RadiusMode = core.RadiusCap
	case "exact":
		opts.RadiusMode = core.RadiusExact
	default:
		return fmt.Errorf("unknown -mode %q (want cap or exact)", *mode)
	}

	var dec *core.Decomposition
	if *distributed {
		dec, err = core.RunDistributed(g, opts, dist.Options{Parallel: *parallel})
	} else {
		dec, err = core.Run(g, opts)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "graph    : %s (%s)\n", g, source)
	fmt.Fprintf(w, "options  : variant=%s k=%d c=%v seed=%d mode=%s\n",
		dec.Opts.Variant, dec.K, dec.Opts.C, dec.Opts.Seed, dec.Opts.RadiusMode)
	fmt.Fprintf(w, "result   : %s\n", dec)
	fmt.Fprintf(w, "cost     : rounds=%d messages=%d words=%d maxMsgWords=%d\n",
		dec.Rounds, dec.Messages, dec.MsgWords, dec.MaxMsgWords)
	fmt.Fprintf(w, "events   : truncations=%d centerViolations=%d\n",
		dec.TruncationEvents, dec.CenterViolations)
	sizes := dec.Sizes()
	fmt.Fprintf(w, "clusters : %d total, %d singletons, mean %.1f, median %d, max %d\n",
		sizes.Clusters, sizes.Singletons, sizes.Mean, sizes.Median, sizes.Max)

	clusters := make([][]int, len(dec.Clusters))
	colors := make([]int, len(dec.Clusters))
	for i := range dec.Clusters {
		clusters[i] = dec.Clusters[i].Members
		colors[i] = dec.Clusters[i].Color
	}
	rep := verify.Decomposition(g, clusters, colors, dec.Complete, true)
	fmt.Fprintf(w, "verify   : valid=%v strongDiam=%d weakDiam=%d colors=%d coverage=%.3f\n",
		rep.Valid(), rep.MaxStrongDiameter, rep.MaxWeakDiameter, rep.Colors, rep.Coverage)
	if dBound, err := core.TheoremDiameterBound(g.N(), opts); err == nil {
		fmt.Fprintf(w, "bounds   : diameter<=%d", dBound)
		if cBound, err := core.TheoremColorBound(g.N(), opts); err == nil {
			fmt.Fprintf(w, " colors<=%.1f", cBound)
		}
		if rBound, err := core.TheoremRoundBound(g.N(), opts); err == nil {
			fmt.Fprintf(w, " rounds<=%.0f", rBound)
		}
		fmt.Fprintln(w)
	}
	if !rep.Valid() {
		return rep.Err()
	}
	return nil
}
