package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBasic(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-family", "grid", "-n", "100", "-k", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"graph", "verify", "valid=true", "bounds"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunVariants(t *testing.T) {
	cases := [][]string{
		{"-family", "gnp", "-n", "128", "-variant", "t2", "-k", "3"},
		{"-family", "gnp", "-n", "128", "-variant", "t3", "-lambda", "2"},
		{"-family", "tree", "-n", "128", "-mode", "exact", "-force"},
		{"-family", "cycle", "-n", "64", "-distributed"},
		{"-family", "cycle", "-n", "64", "-distributed", "-parallel"},
		{"-family", "gnp", "-n", "128", "-algo", "linial-saks", "-force"},
		{"-family", "gnp", "-n", "128", "-algo", "mpx"},
		{"-family", "grid", "-n", "100", "-algo", "mpx/dist", "-beta", "0.4"},
		{"-family", "grid", "-n", "100", "-algo", "ball-carving", "-k", "4"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if !strings.Contains(out.String(), "valid=true") {
			t.Fatalf("%v: verification not reported valid:\n%s", args, out.String())
		}
	}
}

func TestRunInputFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("4 3\n0 1\n1 2\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-input", path, "-k", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "n=4") {
		t.Fatalf("input file not used:\n%s", out.String())
	}
}

func TestRunRepeatHitsCache(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-family", "gnp", "-n", "256", "-repeat", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "session  : repeat=4 hits=3 misses=1 dedups=0") {
		t.Fatalf("expected 3 cache hits out of 4 identical jobs:\n%s", s)
	}
	if !strings.Contains(s, "valid=true") {
		t.Fatalf("verification missing:\n%s", s)
	}
}

func TestRunSeedSweep(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-family", "gnp", "-n", "256", "-sweep-seeds", "3", "-repeat", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"seed 1", "seed 2", "seed 3", "jobs=6", "misses=3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunFamilySweep(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "64", "-k", "3", "-force", "-sweep"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"gnp", "grid", "powerlaw", "session  :"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "valid=false") {
		t.Fatalf("some family failed verification:\n%s", s)
	}
}

func TestRunTimeout(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-family", "gnp", "-n", "4096", "-force", "-timeout", "1ns"}, &out)
	if err == nil {
		t.Fatal("expected a deadline error with -timeout 1ns")
	}
	if !strings.Contains(err.Error(), "timed out after") {
		t.Fatalf("deadline error not actionable: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-family", "nope"},
		{"-variant", "nope"},
		{"-mode", "nope"},
		{"-input", "/nonexistent/file"},
		{"-c", "1"},
		{"-distributed", "-mode", "exact"},
		{"-algo", "no-such-algorithm"},
		{"-algo", "mpx", "-beta", "7"},
		{"-k", "-1"},
		{"-repeat", "0"},
		{"-sweep-seeds", "-2"},
		{"-sweep", "-input", "whatever"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Fatalf("%v accepted", args)
		}
	}
}
