package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netdecomp/internal/obs"
	"netdecomp/internal/serve"
)

// TestMetricsServerEndpoints boots the -metrics-addr surface on an
// ephemeral port and checks all three endpoints: Prometheus text,
// expvar JSON (including the published netdecomp registry), and the
// pprof index.
func TestMetricsServerEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("engine.rounds").Add(3)
	reg.Histogram("plan.test.ns").Observe(1000)
	srv, ln, err := serve.ListenDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{"engine_rounds 3", "plan_test_ns_count 1", `quantile="0.99"`} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	nd, ok := vars["netdecomp"]
	if !ok {
		t.Fatal("/debug/vars has no netdecomp var")
	}
	var ndMap map[string]any
	if err := json.Unmarshal(nd, &ndMap); err != nil {
		t.Fatalf("netdecomp var is not a JSON object: %v", err)
	}
	if ndMap["engine.rounds"] != float64(3) {
		t.Errorf("netdecomp expvar engine.rounds = %v, want 3", ndMap["engine.rounds"])
	}

	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Error("/debug/pprof/ index does not list profiles")
	}
}

// TestRunTraceExport runs the CLI with -trace and checks the output is a
// loadable Chrome trace: valid JSON with the plan span and round instants.
func TestRunTraceExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	var out bytes.Buffer
	if err := run([]string{"-family", "grid", "-n", "64", "-force", "-trace", path}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "trace    : wrote") {
		t.Errorf("output does not report the trace file:\n%s", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			TS   *float64 `json:"ts"`
			PID  *int64   `json:"pid"`
			TID  *int64   `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	var sawPlan, sawPhase, sawRound bool
	for _, e := range doc.TraceEvents {
		if e.TS == nil || e.PID == nil || e.TID == nil {
			t.Fatalf("event %q missing ts/pid/tid — chrome://tracing rejects it", e.Name)
		}
		switch {
		case strings.HasPrefix(e.Name, "plan/"):
			sawPlan = true
		case e.Name == "phase":
			sawPhase = true
		case e.Name == "round" && e.Ph == "i":
			sawRound = true
		}
	}
	if !sawPlan || !sawPhase || !sawRound {
		t.Errorf("trace lacks the span hierarchy: plan=%v phase=%v round=%v", sawPlan, sawPhase, sawRound)
	}
}

// TestRunProfiles runs the CLI with -profile-cpu / -profile-mem and
// checks both files are written and non-empty.
func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	var out bytes.Buffer
	if err := run([]string{"-family", "gnp", "-n", "512", "-force",
		"-profile-cpu", cpu, "-profile-mem", mem}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestRunMetricsAddr exercises the full flag path: the run prints the
// bound address and serves until the deferred close, so a bad address
// must fail and a good one must not.
func TestRunMetricsAddr(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-family", "grid", "-n", "64", "-metrics-addr", "127.0.0.1:0"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "metrics  : serving http://127.0.0.1:") {
		t.Errorf("output does not report the metrics address:\n%s", out.String())
	}
	if err := run([]string{"-family", "grid", "-n", "64", "-metrics-addr", "256.0.0.1:bad"}, io.Discard); err == nil {
		t.Error("bad -metrics-addr must fail")
	}
}
