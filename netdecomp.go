// Package netdecomp is the public facade of the repository: a Go
// implementation of distributed strong-diameter network decomposition
// after Elkin and Neiman (PODC 2016, arXiv:1602.05437), together with the
// Linial–Saks and Miller–Peng–Xu baselines, a synchronous CONGEST
// simulation runtime, symmetry-breaking applications (MIS, (Δ+1)-coloring,
// maximal matching) and validators.
//
// The primary surface is the unified Decomposer API: a string-keyed
// registry of algorithms, one Decompose entry point with functional
// options, and one Partition result type every downstream consumer
// accepts:
//
//	g := netdecomp.GnpConnected(netdecomp.NewRNG(42), 2048, 0.004)
//	d, _ := netdecomp.Get("elkin-neiman")        // or "linial-saks", "mpx", ...
//	p, err := d.Decompose(ctx, g,
//	        netdecomp.WithSeed(7),
//	        netdecomp.WithForceComplete(),
//	        netdecomp.WithObserver(func(r netdecomp.RoundStats) { ... }))
//	rep := netdecomp.VerifyPartition(g, p)
//	in, _ := netdecomp.AppInputFromPartition(g, p) // feeds MIS / Coloring / Matching
//	sp, _ := netdecomp.BuildSpannerFrom(g, p)
//
// Cancellation (ctx) stops runs between rounds or phases; WithObserver
// streams per-round CONGEST traffic as the run executes. The registered
// names are listed by Algorithms(); applications can add their own
// algorithms with RegisterDecomposer.
//
// For repeated or concurrent work, the Plan/Session layer compiles a
// configuration once (Compile → immutable Plan with a stable PlanKey) and
// serves executions through NewSession: a bounded worker pool with
// singleflight deduplication and an LRU cache of completed Partitions
// keyed on (GraphFingerprint, PlanKey, seed), returning defensive clones.
// See examples/session and DESIGN.md §10.
//
// The per-algorithm entry points below (Decompose, DecomposeDistributed,
// LinialSaks, MPX, MPXDistributed, BallCarving, AppInputFromDecomposition,
// Verify, BuildSpanner) predate the registry; they remain as thin
// deprecated shims that produce bit-identical results and now delegate to
// the same internals.
//
// See the examples/ directory for complete programs, README.md for the
// quickstart, and DESIGN.md for the architecture and experiment index.
package netdecomp

import (
	"io"

	"netdecomp/internal/apps"
	"netdecomp/internal/baseline"
	"netdecomp/internal/core"
	"netdecomp/internal/cover"
	"netdecomp/internal/decomp"
	"netdecomp/internal/dist"
	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/graphio"
	"netdecomp/internal/randx"
	"netdecomp/internal/spanner"
	"netdecomp/internal/verify"
)

// Graph is an immutable simple undirected graph in compressed-sparse-row
// storage (see internal/graph).
type Graph = graph.Graph

// GraphInterface is the read-only graph contract (N/Degree/Neighbors)
// accepted by every traversal primitive and decomposition algorithm:
// *Graph and *GraphView satisfy it, and it is the extension point for
// custom graph backends.
type GraphInterface = graph.Interface

// GraphView is a zero-copy induced subgraph of any GraphInterface,
// renumbered to a dense local id space (see internal/graph.View).
type GraphView = graph.View

// GraphBuilder accumulates edges into a Graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for a graph on n vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// FromEdges builds a graph on n vertices from an edge list.
func FromEdges(n int, edges [][2]int) *Graph { return graph.FromEdges(n, edges) }

// FromEdgeStream builds a graph on n vertices from a replayable edge
// stream via the two-pass CSR layout (no intermediate edge staging); the
// stream is invoked exactly twice and must yield identical edges both
// times.
func FromEdgeStream(n int, stream func(yield func(u, v int))) *Graph {
	return graph.FromStream(n, stream)
}

// InducedSubgraph returns the subgraph induced by the given vertices as a
// zero-copy view, with the local-to-original vertex mapping.
func InducedSubgraph(g GraphInterface, vertices []int) (*GraphView, []int, error) {
	return graph.Induced(g, vertices)
}

// ComponentOf returns the connected component of v as a zero-copy view.
func ComponentOf(g GraphInterface, v int) *GraphView { return graph.Component(g, v) }

// GraphFingerprint returns the stable 64-bit content digest of any graph
// backend — equal for structurally identical graphs however they were
// built — suitable as a cache key for decomposition results.
func GraphFingerprint(g GraphInterface) uint64 { return graph.Fingerprint(g) }

// Options configures a decomposition run (see core.Options for the full
// field documentation).
type Options = core.Options

// Decomposition is the result of a run, with clusters, colors and CONGEST
// cost metrics.
type Decomposition = core.Decomposition

// Cluster is one cluster of a decomposition.
type Cluster = core.Cluster

// Variant selects the theorem regime.
type Variant = core.Variant

// The three parameter regimes of the paper.
const (
	Theorem1 = core.Theorem1
	Theorem2 = core.Theorem2
	Theorem3 = core.Theorem3
)

// RadiusMode selects truncation semantics.
type RadiusMode = core.RadiusMode

// Radius modes: RadiusCap is the paper's k-round phases; RadiusExact never
// truncates broadcasts.
const (
	RadiusCap   = core.RadiusCap
	RadiusExact = core.RadiusExact
)

// Decompose runs the Elkin–Neiman algorithm on g as a message-accurate
// sequential simulation.
//
// Deprecated: use Get("elkin-neiman").Decompose, which returns the
// unified Partition; convert existing Decompositions with
// PartitionFromDecomposition.
func Decompose(g *Graph, o Options) (*Decomposition, error) { return core.Run(g, o) }

// EngineOptions configures the message-passing engine used by
// DecomposeDistributed.
type EngineOptions = dist.Options

// DecomposeDistributed runs the identical algorithm as a true node program
// on the synchronous message-passing engine (optionally on a goroutine
// pool). It produces the same clusters as Decompose for equal Options.
//
// Deprecated: use Get("elkin-neiman/dist").Decompose, or any elkin-neiman
// name with WithScheduler.
func DecomposeDistributed(g *Graph, o Options, e EngineOptions) (*Decomposition, error) {
	return core.RunDistributed(g, o, e)
}

// VerifyReport is the validation summary of a decomposition.
type VerifyReport = verify.Report

// Verify checks a decomposition against its graph: disjoint connected
// clusters, proper supergraph coloring, and measures diameters. Strong
// connectivity of clusters is required; completeness is required exactly
// when the run reported Complete.
//
// Deprecated: use VerifyPartition, which applies the right invariants to
// any registered algorithm's Partition.
func Verify(g *Graph, dec *Decomposition) *VerifyReport {
	clusters := make([][]int, len(dec.Clusters))
	colors := make([]int, len(dec.Clusters))
	for i := range dec.Clusters {
		clusters[i] = dec.Clusters[i].Members
		colors[i] = dec.Clusters[i].Color
	}
	return verify.Decomposition(g, clusters, colors, dec.Complete, true)
}

// Baseline re-exports.

// LSOptions configures the Linial–Saks baseline.
type LSOptions = baseline.LSOptions

// LSPartition is the Linial–Saks result.
type LSPartition = baseline.Partition

// LinialSaks runs the weak-diameter decomposition baseline.
//
// Deprecated: use Get("linial-saks").Decompose.
func LinialSaks(g *Graph, o LSOptions) (*LSPartition, error) { return baseline.LinialSaks(g, o) }

// MPXOptions configures the Miller–Peng–Xu partition.
type MPXOptions = baseline.MPXOptions

// MPXResult is the MPX padded partition.
type MPXResult = baseline.MPXResult

// MPX runs the shifted-exponential low-diameter partition.
//
// Deprecated: use Get("mpx").Decompose.
func MPX(g *Graph, o MPXOptions) (*MPXResult, error) { return baseline.MPX(g, o) }

// BCOptions configures the deterministic sequential ball-carving baseline.
type BCOptions = baseline.BCOptions

// BallCarving runs the classic deterministic sequential ball-carving
// decomposition — the existence yardstick the distributed algorithm is
// measured against.
//
// Deprecated: use Get("ball-carving").Decompose.
func BallCarving(g *Graph, o BCOptions) (*LSPartition, error) { return baseline.BallCarving(g, o) }

// Application re-exports.

// AppInput is a complete clustered view consumed by the applications.
type AppInput = apps.Input

// AppInputFromDecomposition adapts a complete decomposition for the
// applications (run Decompose with ForceComplete to guarantee coverage).
//
// Deprecated: use AppInputFromPartition, which accepts any registered
// algorithm's Partition.
func AppInputFromDecomposition(dec *Decomposition) (AppInput, error) { return apps.FromCore(dec) }

// MISResult is a maximal independent set with distributed cost.
type MISResult = apps.MISResult

// MIS computes a maximal independent set by the O(D·χ) color-class sweep.
func MIS(g GraphInterface, in AppInput) (*MISResult, error) { return apps.MIS(g, in) }

// ColoringResult is a (Δ+1)-coloring with distributed cost.
type ColoringResult = apps.ColoringResult

// Coloring computes a (Δ+1)-vertex-coloring by the color-class sweep.
func Coloring(g GraphInterface, in AppInput) (*ColoringResult, error) { return apps.Coloring(g, in) }

// MatchingResult is a maximal matching with distributed cost.
type MatchingResult = apps.MatchingResult

// Matching computes a maximal matching by the color-class sweep.
func Matching(g GraphInterface, in AppInput) (*MatchingResult, error) { return apps.Matching(g, in) }

// LubyMIS runs Luby's randomized MIS baseline.
func LubyMIS(g GraphInterface, seed uint64) (*MISResult, error) { return apps.LubyMIS(g, seed) }

// RandomColoring runs the randomized-trial (Δ+1)-coloring baseline.
func RandomColoring(g GraphInterface, seed uint64) (*ColoringResult, error) {
	return apps.RandomColoring(g, seed)
}

// Derived structures built on top of the decomposition.

// CoverOptions configures a neighborhood-cover construction.
type CoverOptions = cover.Options

// Cover is a W-neighborhood cover with quality measures.
type Cover = cover.Cover

// BuildCover constructs a W-neighborhood cover of g by decomposing the
// power graph G^{2W+1} and expanding clusters by W hops ([ABCP92]).
func BuildCover(g GraphInterface, o CoverOptions) (*Cover, error) { return cover.Build(g, o) }

// Spanner is a sparse skeleton subgraph with quality measures.
type Spanner = spanner.Spanner

// BuildSpanner constructs the cluster-tree-plus-bridges skeleton from a
// complete decomposition ([DMP+05]).
//
// Deprecated: use BuildSpannerFrom, which accepts any registered
// algorithm's Partition.
func BuildSpanner(g *Graph, dec *Decomposition) (*Spanner, error) {
	return spanner.Build(g, decomp.FromCore(dec))
}

// BuildSpannerFrom constructs the skeleton from any complete Partition —
// weak-diameter partitions are refined into connected pieces first.
func BuildSpannerFrom(g GraphInterface, p *Partition) (*Spanner, error) { return spanner.Build(g, p) }

// Graph interchange.

// WriteGraph emits g in the edge-list interchange format, streaming the
// edges (no [][2]int materialization).
func WriteGraph(w io.Writer, g GraphInterface) error { return graphio.Write(w, g) }

// ReadGraph parses an edge-list graph.
func ReadGraph(r io.Reader) (*Graph, error) { return graphio.Read(r) }

// MPXDistributed runs the round-based MPX implementation on the
// message-passing engine (identical clusters to MPX; rounds and messages
// from real engine accounting).
//
// Deprecated: use Get("mpx/dist").Decompose.
func MPXDistributed(g *Graph, o MPXOptions) (*MPXResult, error) {
	return baseline.MPXDistributed(g, o)
}

// Generator re-exports: the workload families used by the experiments.

// RNG is the deterministic generator threaded through the graph builders.
type RNG = randx.SplitMix64

// NewRNG returns a seeded deterministic generator.
func NewRNG(seed uint64) *RNG { return randx.New(seed) }

// Gnp returns an Erdős–Rényi G(n, p) sample.
func Gnp(rng *RNG, n int, p float64) *Graph { return gen.Gnp(rng, n, p) }

// GnpConnected returns a connected G(n, p) sample (random backbone added).
func GnpConnected(rng *RNG, n int, p float64) *Graph { return gen.GnpConnected(rng, n, p) }

// Grid returns the rows×cols mesh.
func Grid(rows, cols int) *Graph { return gen.Grid(rows, cols) }

// RandomTree returns a random labelled tree on n vertices.
func RandomTree(rng *RNG, n int) *Graph { return gen.RandomTree(rng, n) }

// RingOfCliques returns k s-cliques arranged in a ring.
func RingOfCliques(k, s int) *Graph { return gen.RingOfCliques(k, s) }

// Bound helpers re-exported for experiment code.

// TheoremDiameterBound returns the strong-diameter bound for the options.
func TheoremDiameterBound(n int, o Options) (int, error) { return core.TheoremDiameterBound(n, o) }

// TheoremColorBound returns the color bound for the options.
func TheoremColorBound(n int, o Options) (float64, error) { return core.TheoremColorBound(n, o) }

// TheoremRoundBound returns the round bound for the options.
func TheoremRoundBound(n int, o Options) (float64, error) { return core.TheoremRoundBound(n, o) }
