// bench_test.go holds one testing.B benchmark per reproduced table and
// figure (see DESIGN.md section 6 and EXPERIMENTS.md): each bench runs the
// corresponding harness driver at ScaleSmall, so `go test -bench=. -benchmem`
// regenerates a reduced version of the full experiment suite and reports
// its cost. cmd/experiments runs the same drivers at full scale.
package netdecomp_test

import (
	"io"
	"testing"

	"netdecomp"
	"netdecomp/internal/gen"
	"netdecomp/internal/harness"
	"netdecomp/internal/randx"
)

// benchDriver runs one harness experiment per iteration, varying the seed
// so the work is not trivially cacheable, and renders the table to io.Discard.
func benchDriver(b *testing.B, id string) {
	b.Helper()
	driver := harness.Lookup(id)
	if driver == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := driver(harness.Config{Scale: harness.ScaleSmall, Seed: uint64(i), Trials: 2})
		if err != nil {
			b.Fatal(err)
		}
		if err := tab.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT1Theorem1Sweep regenerates table T1: the Theorem 1 parameter
// sweep (strong diameter ≤ 2k−2, colors ≤ (cn)^{1/k}·ln(cn), rounds ≤
// k(cn)^{1/k}·ln(cn)).
func BenchmarkT1Theorem1Sweep(b *testing.B) { benchDriver(b, "T1") }

// BenchmarkT2Theorem2Staged regenerates table T2: the staged-β color
// improvement of Theorem 2 (colors ≤ 4k(cn)^{1/k}).
func BenchmarkT2Theorem2Staged(b *testing.B) { benchDriver(b, "T2") }

// BenchmarkT3HighRadius regenerates table T3: the high-radius regime of
// Theorem 3 (colors ≤ λ).
func BenchmarkT3HighRadius(b *testing.B) { benchDriver(b, "T3") }

// BenchmarkT4HeadlineScaling regenerates table T4: strong (O(log n),
// O(log n)) decomposition in O(log² n) rounds at k = ⌈ln n⌉.
func BenchmarkT4HeadlineScaling(b *testing.B) { benchDriver(b, "T4") }

// BenchmarkT5VersusLinialSaks regenerates table T5: strong-vs-weak
// head-to-head against Linial–Saks.
func BenchmarkT5VersusLinialSaks(b *testing.B) { benchDriver(b, "T5") }

// BenchmarkT6TruncationEvents regenerates table T6: the Lemma 1 truncation
// probability bound 2/c.
func BenchmarkT6TruncationEvents(b *testing.B) { benchDriver(b, "T6") }

// BenchmarkT7SurvivalDecay regenerates table T7: the Claim 6 geometric
// survival envelope and Corollary 7 exhaustion probability.
func BenchmarkT7SurvivalDecay(b *testing.B) { benchDriver(b, "T7") }

// BenchmarkT8MPXPartition regenerates table T8: MPX cut fraction O(β) and
// diameter O(log n / β).
func BenchmarkT8MPXPartition(b *testing.B) { benchDriver(b, "T8") }

// BenchmarkT9Applications regenerates table T9: MIS / coloring / matching
// in O(D·χ) rounds versus Luby.
func BenchmarkT9Applications(b *testing.B) { benchDriver(b, "T9") }

// BenchmarkT10CongestAccounting regenerates table T10: O(1)-word messages
// on the real message-passing engine.
func BenchmarkT10CongestAccounting(b *testing.B) { benchDriver(b, "T10") }

// BenchmarkT11NeighborhoodCovers regenerates table T11: W-neighborhood
// covers built from decompositions of power graphs (the [ABCP92]
// connection of Section 1.1).
func BenchmarkT11NeighborhoodCovers(b *testing.B) { benchDriver(b, "T11") }

// BenchmarkT12Spanners regenerates table T12: sparse skeleton spanners
// from cluster BFS trees plus bridges (the [DMP+05] connection).
func BenchmarkT12Spanners(b *testing.B) { benchDriver(b, "T12") }

// BenchmarkT13SequentialYardstick regenerates table T13: the distributed
// algorithm against the deterministic sequential ball-carving existence
// bound.
func BenchmarkT13SequentialYardstick(b *testing.B) { benchDriver(b, "T13") }

// BenchmarkA1ForwardingAblation regenerates ablation A1: top-2 forwarding
// is lossless, top-1 is not.
func BenchmarkA1ForwardingAblation(b *testing.B) { benchDriver(b, "A1") }

// BenchmarkF1SurvivalCurve regenerates figure F1: the per-phase survival
// curve against the geometric envelope.
func BenchmarkF1SurvivalCurve(b *testing.B) { benchDriver(b, "F1") }

// BenchmarkF2TradeoffFrontier regenerates figure F2: the diameter/colors
// frontier spanned by Theorems 1 and 3.
func BenchmarkF2TradeoffFrontier(b *testing.B) { benchDriver(b, "F2") }

// BenchmarkF3RoundsScaling regenerates figure F3: round growth versus n
// for Elkin–Neiman and Linial–Saks at k = ⌈ln n⌉.
func BenchmarkF3RoundsScaling(b *testing.B) { benchDriver(b, "F3") }

// --- CSR-core benchmarks -------------------------------------------------
//
// The benchmarks below target the graph layer itself rather than a paper
// table: construction from an edge list, single-source BFS, full edge
// materialization, and one end-to-end elkin-neiman decomposition. Their
// before/after numbers across the CSR redesign are recorded in
// BENCH_csr.json (compare with cmd/benchdiff).

func csrBenchEdges() (int, [][2]int) {
	g := netdecomp.GnpConnected(netdecomp.NewRNG(1), 4096, 8.0/4095)
	return g.N(), g.Edges()
}

// BenchmarkGraphBuild4096 measures Builder throughput: one FromEdges per
// iteration over a fixed ~16k-edge G(n,p) edge list.
func BenchmarkGraphBuild4096(b *testing.B) {
	n, edges := csrBenchEdges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := netdecomp.FromEdges(n, edges)
		if g.N() != n {
			b.Fatal("bad build")
		}
	}
}

// BenchmarkGraphBFS4096 measures single-source BFS over the whole graph,
// rotating the source so no run is trivially cached.
func BenchmarkGraphBFS4096(b *testing.B) {
	g := netdecomp.GnpConnected(netdecomp.NewRNG(1), 4096, 8.0/4095)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.BFS(i % g.N())
	}
}

// BenchmarkGraphEdges4096 measures full edge-list materialization.
func BenchmarkGraphEdges4096(b *testing.B) {
	g := netdecomp.GnpConnected(netdecomp.NewRNG(1), 4096, 8.0/4095)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(g.Edges()) != g.M() {
			b.Fatal("bad edges")
		}
	}
}

// BenchmarkElkinNeimanE2E2048 measures one full forced-complete
// elkin-neiman decomposition through the registry, seed varying per
// iteration.
func BenchmarkElkinNeimanE2E2048(b *testing.B) {
	g := netdecomp.GnpConnected(netdecomp.NewRNG(2), 2048, 8.0/2047)
	d := netdecomp.MustGet("elkin-neiman")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := d.Decompose(nil, g,
			netdecomp.WithSeed(uint64(i)), netdecomp.WithForceComplete())
		if err != nil {
			b.Fatal(err)
		}
		if !p.Complete {
			b.Fatal("incomplete")
		}
	}
}

// --- Hot-path benchmarks -------------------------------------------------
//
// Large-scale workloads targeting the two hot loops — the per-phase
// broadcast simulation (core/phaseRunner.run) and the CONGEST engine
// (internal/dist) — at sizes where O(n)-per-round scanning and
// per-envelope mailbox churn dominate. Before/after numbers across the
// frontier-sparse + arena-mailbox rebuild are recorded in
// BENCH_hotpath.json; CI regression-gates these with cmd/benchdiff
// -threshold.

// hotpathRun drives one registry algorithm over a fixed graph, varying the
// seed per iteration.
func hotpathRun(b *testing.B, algo string, g netdecomp.GraphInterface, opts ...netdecomp.DecomposeOption) {
	b.Helper()
	d := netdecomp.MustGet(algo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := d.Decompose(nil, g, append([]netdecomp.DecomposeOption{netdecomp.WithSeed(uint64(i))}, opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		if p.N != g.N() {
			b.Fatal("bad partition")
		}
	}
}

// BenchmarkHotpathSim65536 is the forced-complete sequential simulation on
// a 2^16-vertex G(n,p) with average degree ~8.
func BenchmarkHotpathSim65536(b *testing.B) {
	g := gen.GnpConnected(randx.New(3), 1<<16, 8.0/float64(1<<16-1))
	hotpathRun(b, "elkin-neiman", g, netdecomp.WithForceComplete())
}

// BenchmarkHotpathSim262144 scales the simulation to 2^18 vertices.
func BenchmarkHotpathSim262144(b *testing.B) {
	g := gen.GnpConnected(randx.New(4), 1<<18, 8.0/float64(1<<18-1))
	hotpathRun(b, "elkin-neiman", g, netdecomp.WithForceComplete())
}

// BenchmarkHotpathDist65536 runs the identical workload as a true node
// program on the message-passing engine ("elkin-neiman/dist").
func BenchmarkHotpathDist65536(b *testing.B) {
	g := gen.GnpConnected(randx.New(3), 1<<16, 8.0/float64(1<<16-1))
	hotpathRun(b, "elkin-neiman/dist", g, netdecomp.WithForceComplete())
}

// BenchmarkHotpathMPXDist65536 is the engine-backed MPX partition at 2^16.
func BenchmarkHotpathMPXDist65536(b *testing.B) {
	g := gen.GnpConnected(randx.New(3), 1<<16, 8.0/float64(1<<16-1))
	hotpathRun(b, "mpx/dist", g)
}

// BenchmarkHotpathGridSim65536 is the simulation on the 256×256 mesh —
// bounded degree, long phases, late-phase frontiers a tiny fraction of n.
func BenchmarkHotpathGridSim65536(b *testing.B) {
	g := gen.Grid(256, 256)
	hotpathRun(b, "elkin-neiman", g, netdecomp.WithForceComplete())
}

// BenchmarkHotpathPowerLawDist65536 is the engine run on a 2^16-vertex
// preferential-attachment graph: hub broadcasts fan out wide while the
// typical frontier stays small.
func BenchmarkHotpathPowerLawDist65536(b *testing.B) {
	g := gen.PowerLaw(randx.New(5), 1<<16, 4)
	hotpathRun(b, "elkin-neiman/dist", g, netdecomp.WithForceComplete())
}

// --- Telemetry overhead benchmarks ---------------------------------------
//
// The same hot-path workloads with a metrics recorder attached, against
// the recorder-less runs above. Named outside the BenchmarkHotpath*
// pattern so the hot-path regression gate keeps measuring the telemetry-
// off path alone; the off-vs-on pairs are recorded in BENCH_obs.json and
// CI gates the off path against it at -threshold 0.05 with a zero-growth
// allocs/op bound (disabled telemetry must cost one nil test, not
// allocations).

// BenchmarkObsHotpathSim65536 is BenchmarkHotpathSim65536 with per-round
// frontier/phase histograms and plan counters recording.
func BenchmarkObsHotpathSim65536(b *testing.B) {
	g := gen.GnpConnected(randx.New(3), 1<<16, 8.0/float64(1<<16-1))
	rec := netdecomp.NewRecorder(netdecomp.NewMetricsRegistry(), nil)
	hotpathRun(b, "elkin-neiman", g, netdecomp.WithForceComplete(), netdecomp.WithRecorder(rec))
}

// BenchmarkObsHotpathDist65536 is BenchmarkHotpathDist65536 with the
// engine reporting per-round message/word/active counters.
func BenchmarkObsHotpathDist65536(b *testing.B) {
	g := gen.GnpConnected(randx.New(3), 1<<16, 8.0/float64(1<<16-1))
	rec := netdecomp.NewRecorder(netdecomp.NewMetricsRegistry(), nil)
	hotpathRun(b, "elkin-neiman/dist", g, netdecomp.WithForceComplete(), netdecomp.WithRecorder(rec))
}

// --- Session benchmarks -------------------------------------------------
//
// The serving-layer pair: the cache-hit path (one fingerprint lookup plus
// a defensive Partition.Clone — the per-request cost a warm deployment
// pays) against the cold-miss path (a full decomposition per request).
// Before/after-free absolute numbers are recorded in BENCH_session.json;
// CI gates the hit path with cmd/benchdiff so it stays allocation-light.

// BenchmarkSessionCacheHit serves the identical (graph, plan, seed) job
// from a warm session: every iteration must be a cache hit.
func BenchmarkSessionCacheHit(b *testing.B) {
	g := netdecomp.GnpConnected(netdecomp.NewRNG(6), 2048, 8.0/2047)
	s := netdecomp.NewSession()
	defer s.Close()
	pl, err := netdecomp.Compile("elkin-neiman",
		netdecomp.WithSeed(7), netdecomp.WithForceComplete())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Run(nil, pl, g); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := s.Run(nil, pl, g)
		if err != nil {
			b.Fatal(err)
		}
		if !p.Complete {
			b.Fatal("incomplete")
		}
	}
	b.StopTimer()
	if st := s.Stats(); st.Hits != uint64(b.N) {
		b.Fatalf("expected %d hits, stats %+v", b.N, st)
	}
}

// BenchmarkSessionColdMiss varies the seed every iteration, so each job
// misses and runs a full decomposition through the session machinery —
// the denominator that shows what a hit saves.
func BenchmarkSessionColdMiss(b *testing.B) {
	g := netdecomp.GnpConnected(netdecomp.NewRNG(6), 2048, 8.0/2047)
	s := netdecomp.NewSession()
	defer s.Close()
	pl, err := netdecomp.Compile("elkin-neiman",
		netdecomp.WithSeed(7), netdecomp.WithForceComplete())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := s.Run(nil, pl.WithSeed(uint64(i)+1000), g)
		if err != nil {
			b.Fatal(err)
		}
		if !p.Complete {
			b.Fatal("incomplete")
		}
	}
	b.StopTimer()
	if st := s.Stats(); st.Hits != 0 {
		b.Fatalf("expected no hits, stats %+v", st)
	}
}
