package netdecomp

import (
	"netdecomp/internal/decomp"
	"netdecomp/internal/obs"
	"netdecomp/internal/session"
)

// The telemetry facade: the internal/obs instruments re-exported so
// applications can meter and trace decompositions through the public API.
//
//	reg := netdecomp.NewMetricsRegistry()
//	trc := netdecomp.NewTracer()
//	rec := netdecomp.NewRecorder(reg, trc)
//	p, _ := netdecomp.MustGet("elkin-neiman/dist").Decompose(ctx, g,
//		netdecomp.WithForceComplete(), netdecomp.WithRecorder(rec))
//	reg.WritePrometheus(os.Stdout)      // counters, gauges, quantiles
//	trc.WriteChromeTrace(traceFile)     // load in chrome://tracing
//
// Everything is optional and zero-cost when absent: runs without a
// recorder skip every telemetry branch on a single nil test.

// MetricsRegistry is a named collection of counters, gauges and
// log-bucketed histograms, safe for concurrent use. It exports itself as
// Prometheus text (WritePrometheus), an expvar-shaped map (ExpvarMap) or
// a point-in-time Snapshot.
type MetricsRegistry = obs.Registry

// Tracer collects span begin/end and instant events and writes them as
// Chrome trace-event JSON (WriteChromeTrace).
type Tracer = obs.Tracer

// Recorder bundles a MetricsRegistry with an optional Tracer and is the
// handle the execution layers report through; attach one to a run with
// WithRecorder or to a Session with WithSessionRecorder.
type Recorder = obs.Recorder

// MetricsSnapshot is a point-in-time copy of a MetricsRegistry.
type MetricsSnapshot = obs.Snapshot

// HistogramSnapshot is a point-in-time copy of one histogram, with
// Mean and Quantile accessors.
type HistogramSnapshot = obs.HistogramSnapshot

// TraceSpan is an open span started through a Recorder; End it to close.
type TraceSpan = obs.Span

// TraceEvent is one collected trace event.
type TraceEvent = obs.Event

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewRecorder bundles a registry with an optional tracer (nil disables
// tracing but keeps metrics).
func NewRecorder(reg *MetricsRegistry, trc *Tracer) *Recorder { return obs.New(reg, trc) }

// WithRecorder attaches telemetry to a run: per-plan spans and latency
// histograms, per-phase spans with frontier-size histograms, and
// per-round counters and trace instants from the execution engine. The
// recorder is excluded from the PlanKey — instrumented and plain runs of
// the same configuration are the same plan.
func WithRecorder(rec *Recorder) DecomposeOption { return decomp.WithRecorder(rec) }

// WithSessionRecorder attaches telemetry to a Session: hit/miss/dedup
// counters and latency histograms, per-job spans, and — for submitted
// plans that carry no recorder of their own — the full execution
// telemetry nested under each job span.
func WithSessionRecorder(rec *Recorder) SessionOption { return session.WithRecorder(rec) }
