package netdecomp

import (
	"context"

	"netdecomp/internal/decomp"
	"netdecomp/internal/dyn"
	"netdecomp/internal/graph"
)

// The dynamic-graph API: a mutable edge overlay over the immutable CSR
// core plus an incremental maintenance engine that keeps a compiled
// plan's decomposition current under mutation (package internal/dyn).
// Wrap a graph, apply insert/delete batches, Compact back to CSR, and
// hand the effective mutations to a Maintainer — which repairs only the
// damaged region when the plan supports certified repair, and falls back
// to a full recompute past a configurable damage fraction. The repaired
// partition is always content-identical to running the plan from scratch
// on the mutated graph.
//
//	m, _ := netdecomp.NewMaintainer(ctx, plan, g, netdecomp.MaintainerConfig{})
//	next, res, _ := netdecomp.WrapGraph(m.Graph()).Apply(batch)
//	part, rep, _ := m.Update(ctx, next.Compact(), res.Effective)
//
// See DESIGN.md §15 for the overlay layout, the damage-set derivation
// and the fallback policy.

// Mutation is one edge insertion or deletion.
type Mutation = dyn.Mutation

// MutationBatch is an ordered list of mutations applied atomically.
type MutationBatch = dyn.Batch

// Overlay is a mutable edge overlay over an immutable base graph.
type Overlay = dyn.Overlay

// MutationOp selects insert or delete.
type MutationOp = dyn.Op

// Mutation operations.
const (
	OpInsert = dyn.OpInsert
	OpDelete = dyn.OpDelete
)

// WrapGraph starts a mutation overlay over g (g is never modified).
func WrapGraph(g graph.Interface) *Overlay { return dyn.Wrap(g) }

// Maintainer keeps one compiled plan's decomposition current under
// mutation, repairing incrementally when the plan supports it.
type Maintainer = dyn.Maintainer

// MaintainerConfig configures NewMaintainer.
type MaintainerConfig = dyn.Config

// MaintainerReport describes what one Update did: repair, fallback or
// recompute, with damage/region accounting.
type MaintainerReport = dyn.UpdateReport

// NewMaintainer bootstraps a maintainer: it runs pl on g once (through
// the repair-state path when available) and is then ready for Update.
func NewMaintainer(ctx context.Context, pl *decomp.Plan, g graph.Interface, cfg MaintainerConfig) (*Maintainer, error) {
	return dyn.NewMaintainer(ctx, pl, g, cfg)
}

// EncodeMutations renders a batch as the JSON wire format accepted by
// POST /v1/graphs/{key}/mutate.
func EncodeMutations(b MutationBatch) ([]byte, error) { return dyn.EncodeBatch(b) }

// DecodeMutations parses the JSON wire format into a batch.
func DecodeMutations(data []byte) (MutationBatch, error) { return dyn.DecodeBatchBytes(data) }
