package netdecomp_test

import (
	"context"
	"testing"

	netdecomp "netdecomp"
)

// TestDynamicFacade exercises the root-package dynamic-graph exports
// end-to-end: overlay mutation, codec round trip, and a maintainer
// update whose result matches a from-scratch run.
func TestDynamicFacade(t *testing.T) {
	g := netdecomp.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})

	batch := netdecomp.MutationBatch{
		{Op: netdecomp.OpInsert, U: 0, V: 5},
		{Op: netdecomp.OpDelete, U: 2, V: 3},
	}
	data, err := netdecomp.EncodeMutations(batch)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := netdecomp.DecodeMutations(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(batch) || decoded[0] != batch[0] || decoded[1] != batch[1] {
		t.Fatalf("codec round trip: got %v want %v", decoded, batch)
	}

	next, res, err := netdecomp.WrapGraph(g).Apply(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Effective) != 2 {
		t.Fatalf("effective = %d, want 2", len(res.Effective))
	}
	mutated := next.Compact()
	if netdecomp.GraphFingerprint(mutated) == netdecomp.GraphFingerprint(g) {
		t.Fatal("mutation did not change the fingerprint")
	}

	ctx := context.Background()
	pl, err := netdecomp.Compile("elkin-neiman",
		netdecomp.WithSeed(3), netdecomp.WithForceComplete())
	if err != nil {
		t.Fatal(err)
	}
	m, err := netdecomp.NewMaintainer(ctx, pl, g, netdecomp.MaintainerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	part, rep, err := m.Update(ctx, mutated, res.Effective)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Repaired && !rep.FellBack && rep.Reason == "" {
		t.Fatalf("update report carries no outcome: %+v", rep)
	}
	want, err := pl.Run(ctx, mutated)
	if err != nil {
		t.Fatal(err)
	}
	if part.Colors != want.Colors || len(part.Clusters) != len(want.Clusters) {
		t.Fatalf("maintained partition differs from scratch run: %d/%d colors, %d/%d clusters",
			part.Colors, want.Colors, len(part.Clusters), len(want.Clusters))
	}
	for v := range part.ClusterOf {
		if part.ClusterOf[v] != want.ClusterOf[v] {
			t.Fatalf("ClusterOf[%d] = %d, want %d", v, part.ClusterOf[v], want.ClusterOf[v])
		}
	}
}
