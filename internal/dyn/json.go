package dyn

// The wire codec for mutation batches — the body of the daemon's
// POST /v1/graphs/{fp}/mutate. One document, stable field order:
//
//	{"mutations":[{"insert":{"u":1,"v":2}},{"delete":{"u":3,"v":4}}]}
//
// Decoding is strict: unknown fields are rejected, every entry must carry
// exactly one op, both endpoints are required, and trailing garbage after
// the document is an error. Malformed input errors, never panics
// (FuzzMutationBatch pins this).

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// batchDoc is the wire document.
type batchDoc struct {
	Mutations []entryDoc `json:"mutations"`
}

// entryDoc is one wire mutation: exactly one op key must be set.
type entryDoc struct {
	Insert *edgeDoc `json:"insert,omitempty"`
	Delete *edgeDoc `json:"delete,omitempty"`
}

// edgeDoc is an undirected edge reference. Endpoints are pointers so a
// missing field is distinguishable from vertex 0.
type edgeDoc struct {
	U *int32 `json:"u"`
	V *int32 `json:"v"`
}

// EncodeBatch renders the batch in the wire form DecodeBatch accepts.
func EncodeBatch(b Batch) ([]byte, error) {
	doc := batchDoc{Mutations: make([]entryDoc, 0, len(b))}
	for i, mut := range b {
		e := edgeDoc{U: ptr(mut.U), V: ptr(mut.V)}
		switch mut.Op {
		case OpInsert:
			doc.Mutations = append(doc.Mutations, entryDoc{Insert: &e})
		case OpDelete:
			doc.Mutations = append(doc.Mutations, entryDoc{Delete: &e})
		default:
			return nil, fmt.Errorf("dyn: mutation %d: unknown op %d", i, int(mut.Op))
		}
	}
	return json.Marshal(doc)
}

func ptr(v int32) *int32 { return &v }

// DecodeBatch parses one strict wire document from r. Structural
// validation happens here (exactly one op per entry, both endpoints
// present); semantic validation (range, self-loops) happens in
// Overlay.Apply, which knows the vertex count.
func DecodeBatch(r io.Reader) (Batch, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc batchDoc
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("dyn: decoding mutation batch: %w", err)
	}
	// One document per body: trailing content is an error, not ignored.
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return nil, errors.New("dyn: trailing data after mutation batch")
	}
	b := make(Batch, 0, len(doc.Mutations))
	for i, e := range doc.Mutations {
		var (
			op   Op
			edge *edgeDoc
		)
		switch {
		case e.Insert != nil && e.Delete != nil:
			return nil, fmt.Errorf("dyn: mutation %d: both insert and delete set", i)
		case e.Insert != nil:
			op, edge = OpInsert, e.Insert
		case e.Delete != nil:
			op, edge = OpDelete, e.Delete
		default:
			return nil, fmt.Errorf("dyn: mutation %d: exactly one of insert/delete required", i)
		}
		if edge.U == nil || edge.V == nil {
			return nil, fmt.Errorf("dyn: mutation %d: both u and v required", i)
		}
		b = append(b, Mutation{Op: op, U: *edge.U, V: *edge.V})
	}
	return b, nil
}

// DecodeBatchBytes is DecodeBatch over an in-memory document.
func DecodeBatchBytes(data []byte) (Batch, error) {
	return DecodeBatch(bytes.NewReader(data))
}
