package dyn

// The repair-vs-recompute benchmark pair behind BENCH_dynamic.json: one
// Maintainer on the repair path and one forced to full recompute, both fed
// identical balanced mutation batches (half deletions of present edges,
// half insertions of absent ones) at 0.1%, 1%, and 5% of the edge count on
// a torus of n=2^16 vertices. The torus is the honest family for this
// measurement: repair wins by exploiting locality, and a bounded-degree
// lattice is the regime where a mutation's influence ball is genuinely
// local. (On gnp at this size the diameter is ~6, so any batch's influence
// ball spans the whole graph and repair degrades to recompute — that
// regime is covered by the 5% row falling back.) CI gates the repair side
// with cmd/benchdiff; the recompute side is recorded so the checked-in
// baseline itself documents the speedup ratio.

import (
	"context"
	"fmt"
	"testing"

	"netdecomp/internal/decomp"
	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

const benchN = 1 << 16

// benchRates are the mutation-batch sizes as fractions of the edge count.
var benchRates = []struct {
	name string
	frac float64
}{
	{"0.1pct", 0.001},
	{"1pct", 0.01},
	{"5pct", 0.05},
}

// benchBatch builds a balanced batch of size edges against g: half
// deletions sampled from present edges (degree-biased, which is fine for a
// load model), half insertions of fresh random non-edges. Every mutation
// is effective, so the batch size is the damage driver it claims to be.
func benchBatch(rng *randx.SplitMix64, g graph.Interface, size int) Batch {
	n := g.N()
	muts := make([]Mutation, 0, size)
	for len(muts) < size/2 {
		u := rng.Intn(n)
		row := g.Neighbors(u)
		if len(row) == 0 {
			continue
		}
		muts = append(muts, Mutation{Op: OpDelete, U: int32(u), V: row[rng.Intn(len(row))]})
	}
	for len(muts) < size {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || rowHas(g.Neighbors(u), int32(v)) {
			continue
		}
		muts = append(muts, Mutation{Op: OpInsert, U: int32(u), V: int32(v)})
	}
	return Batch(muts)
}

// benchMaintainer bootstraps a Maintainer over the benchmark graph.
func benchMaintainer(b *testing.B, force bool) (*Maintainer, *randx.SplitMix64) {
	b.Helper()
	g, err := gen.Build(gen.FamilyTorus, benchN, 7)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := decomp.Compile("elkin-neiman", decomp.WithSeed(11), decomp.WithForceComplete())
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewMaintainer(context.Background(), pl, g, Config{ForceRecompute: force})
	if err != nil {
		b.Fatal(err)
	}
	return m, randx.New(0xbe7c4)
}

// runUpdates drives b.N mutation batches through m, generating each batch
// off the clock so only Update (repair or recompute) is measured.
func runUpdates(b *testing.B, m *Maintainer, rng *randx.SplitMix64, frac float64) {
	b.Helper()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		size := int(frac * float64(graph.EdgeCount(m.Graph())))
		batch := benchBatch(rng, m.Graph(), size)
		next, res, err := Wrap(m.Graph()).Apply(batch)
		if err != nil {
			b.Fatal(err)
		}
		// Compact off the clock too: the CSR rebuild is the ingest cost of
		// the new version, identical on both sides, not part of repair.
		c := next.Compact()
		b.StartTimer()
		if _, _, err := m.Update(ctx, c, res.Effective); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynRepair measures incremental repair per mutation batch. The
// balanced batches keep the edge count stable across iterations, so the
// steady state each iteration repairs from is statistically the bootstrap
// graph.
func BenchmarkDynRepair(b *testing.B) {
	for _, r := range benchRates {
		b.Run(fmt.Sprintf("rate=%s", r.name), func(b *testing.B) {
			m, rng := benchMaintainer(b, false)
			runUpdates(b, m, rng, r.frac)
		})
	}
}

// BenchmarkDynRecompute is the same workload with the repair path disabled
// — every batch pays a from-scratch plan run. Recorded in
// BENCH_dynamic.json as the denominator of the repair speedup.
func BenchmarkDynRecompute(b *testing.B) {
	for _, r := range benchRates {
		b.Run(fmt.Sprintf("rate=%s", r.name), func(b *testing.B) {
			m, rng := benchMaintainer(b, true)
			runUpdates(b, m, rng, r.frac)
		})
	}
}
