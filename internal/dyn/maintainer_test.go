package dyn

import (
	"context"
	"reflect"
	"testing"

	"netdecomp/internal/decomp"
	"netdecomp/internal/dist"
	"netdecomp/internal/gen"
	"netdecomp/internal/obs"
	"netdecomp/internal/randx"
)

// stripped zeroes the fields a repair is allowed to differ on: Metrics is
// the account of the producing execution, and a repair's own (much smaller)
// traffic IS the speedup. Everything else must match bit-for-bit.
func stripped(p *decomp.Partition) decomp.Partition {
	cp := p.Clone()
	cp.Metrics = dist.Metrics{}
	return *cp
}

func requireEquivalent(t *testing.T, got, want *decomp.Partition, msg string) {
	t.Helper()
	g, w := stripped(got), stripped(want)
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("%s: repaired partition differs from from-scratch run\n got: %+v\nwant: %+v", msg, g, w)
	}
}

// maintainerPlans covers every repairable configuration class: all three
// theorem regimes, the exact-radius mode, and forced completion.
func maintainerPlans(t *testing.T) []*decomp.Plan {
	t.Helper()
	specs := []struct {
		name string
		opts []decomp.Option
	}{
		{"elkin-neiman", nil},
		{"elkin-neiman", []decomp.Option{decomp.WithForceComplete()}},
		{"elkin-neiman/theorem2", []decomp.Option{decomp.WithForceComplete()}},
		{"elkin-neiman/theorem3", []decomp.Option{decomp.WithLambda(2), decomp.WithForceComplete()}},
		{"elkin-neiman", []decomp.Option{decomp.WithExactRadius(), decomp.WithForceComplete()}},
	}
	pls := make([]*decomp.Plan, 0, len(specs))
	for _, s := range specs {
		pl, err := decomp.Compile(s.name, append(s.opts, decomp.WithSeed(0xd15ea5e))...)
		if err != nil {
			t.Fatalf("compile %s: %v", s.name, err)
		}
		pls = append(pls, pl)
	}
	return pls
}

// TestMaintainerBitEquivalence is the tentpole property: across algorithms,
// random graphs, and successive random mutation batches, the repaired
// partition equals a from-scratch run on the mutated graph in every field
// except Metrics.
func TestMaintainerBitEquivalence(t *testing.T) {
	ctx := context.Background()
	rng := randx.New(0xbeef)
	graphs := []struct {
		name string
		n    int
		p    float64
	}{
		{"sparse", 96, 0.03},
		{"medium", 128, 0.06},
		{"dense", 64, 0.18},
	}
	for _, pl := range maintainerPlans(t) {
		for _, gs := range graphs {
			base := gen.GnpConnected(rng, gs.n, gs.p)
			o := Wrap(base)
			m, err := NewMaintainer(ctx, pl, o, Config{})
			if err != nil {
				t.Fatalf("%s/%s: NewMaintainer: %v", pl.Name(), gs.name, err)
			}
			if !m.Repairable() {
				t.Fatalf("%s: expected repairable plan", pl.Name())
			}
			// Bootstrap itself must match a plain Run.
			want, err := pl.Run(ctx, o)
			if err != nil {
				t.Fatal(err)
			}
			requireEquivalent(t, m.Partition(), want, pl.Name()+"/"+gs.name+"/bootstrap")

			model := modelOf(o)
			for round := 0; round < 4; round++ {
				batch := randomBatch(rng, model, gs.n, 1+rng.Intn(6))
				next, res, err := o.Apply(batch)
				if err != nil {
					t.Fatal(err)
				}
				for _, mut := range batch {
					model.apply(mut)
				}
				got, rep, err := m.Update(ctx, next, res.Effective)
				if err != nil {
					t.Fatalf("%s/%s round %d: Update: %v", pl.Name(), gs.name, round, err)
				}
				want, err := pl.Run(ctx, next)
				if err != nil {
					t.Fatal(err)
				}
				requireEquivalent(t, got, want,
					pl.Name()+"/"+gs.name)
				if !rep.Repaired && !rep.FellBack {
					t.Fatalf("%s: repairable plan neither repaired nor fell back: %+v", pl.Name(), rep)
				}
				o = next
			}
		}
	}
}

// TestMaintainerEmptyBatch pins that an Update with no effective mutations
// (all no-ops) still lands on the right graph version and partition.
func TestMaintainerEmptyBatch(t *testing.T) {
	ctx := context.Background()
	rng := randx.New(3)
	pl, err := decomp.Compile("elkin-neiman", decomp.WithForceComplete(), decomp.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	o := Wrap(gen.GnpConnected(rng, 64, 0.08))
	m, err := NewMaintainer(ctx, pl, o, Config{})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Partition()
	// Insert an edge that already exists: a pure no-op batch.
	u := int32(0)
	v := o.Neighbors(0)[0]
	next, res, err := o.Apply(Batch{{Op: OpInsert, U: u, V: v}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Noops != 1 || len(res.Effective) != 0 {
		t.Fatalf("expected pure no-op, got %+v", res)
	}
	got, rep, err := m.Update(ctx, next, res.Effective)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Repaired {
		t.Fatalf("no-op update should repair trivially: %+v", rep)
	}
	requireEquivalent(t, got, before, "no-op batch")
	if m.Graph() != next {
		t.Fatal("maintainer did not advance to the new graph version")
	}
}

// TestMaintainerFallback forces the damage-fraction guard and checks the
// fallback path still produces the from-scratch answer.
func TestMaintainerFallback(t *testing.T) {
	ctx := context.Background()
	rng := randx.New(17)
	pl, err := decomp.Compile("elkin-neiman", decomp.WithForceComplete(), decomp.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	o := Wrap(gen.GnpConnected(rng, 80, 0.08))
	// A fraction this small means any real damage overflows the region cap.
	m, err := NewMaintainer(ctx, pl, o, Config{MaxDamageFraction: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	model := modelOf(o)
	batch := randomBatch(rng, model, 80, 12)
	next, res, err := o.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := m.Update(ctx, next, res.Effective)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Effective) > 0 && !rep.FellBack {
		t.Fatalf("expected fallback under MaxDamageFraction=1e-9, got %+v", rep)
	}
	want, err := pl.Run(ctx, next)
	if err != nil {
		t.Fatal(err)
	}
	requireEquivalent(t, got, want, "fallback")
	// A fallback refreshes the repair state: the next small update must be
	// repairable again under a sane fraction... but this maintainer keeps
	// the tiny fraction, so just verify continued correctness.
	batch2 := randomBatch(rng, modelOf(next), 80, 2)
	next2, res2, err := next.Apply(batch2)
	if err != nil {
		t.Fatal(err)
	}
	got2, _, err := m.Update(ctx, next2, res2.Effective)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := pl.Run(ctx, next2)
	if err != nil {
		t.Fatal(err)
	}
	requireEquivalent(t, got2, want2, "post-fallback")
}

// TestMaintainerNonRepairable pins the recompute path for plans off the
// sequential core: updates still track the from-scratch answer.
func TestMaintainerNonRepairable(t *testing.T) {
	ctx := context.Background()
	rng := randx.New(29)
	pl, err := decomp.Compile("mpx", decomp.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	o := Wrap(gen.GnpConnected(rng, 64, 0.08))
	m, err := NewMaintainer(ctx, pl, o, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Repairable() {
		t.Fatal("mpx must not claim the repair path")
	}
	batch := randomBatch(rng, modelOf(o), 64, 6)
	next, res, err := o.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := m.Update(ctx, next, res.Effective)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired || rep.FellBack {
		t.Fatalf("non-repairable plan reported repair: %+v", rep)
	}
	want, err := pl.Run(ctx, next)
	if err != nil {
		t.Fatal(err)
	}
	requireEquivalent(t, got, want, "mpx recompute")
}

// TestMaintainerForceRecompute pins the benchmark baseline mode.
func TestMaintainerForceRecompute(t *testing.T) {
	ctx := context.Background()
	rng := randx.New(41)
	pl, err := decomp.Compile("elkin-neiman", decomp.WithForceComplete(), decomp.WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	o := Wrap(gen.GnpConnected(rng, 64, 0.08))
	m, err := NewMaintainer(ctx, pl, o, Config{ForceRecompute: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Repairable() {
		t.Fatal("ForceRecompute must disable the repair path")
	}
	batch := randomBatch(rng, modelOf(o), 64, 4)
	next, res, err := o.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := m.Update(ctx, next, res.Effective)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired || rep.Reason != "recompute forced" {
		t.Fatalf("got %+v", rep)
	}
	want, err := pl.Run(ctx, next)
	if err != nil {
		t.Fatal(err)
	}
	requireEquivalent(t, got, want, "forced recompute")
}

// TestMaintainerTelemetry checks the dyn.repair.* instruments move.
func TestMaintainerTelemetry(t *testing.T) {
	ctx := context.Background()
	rng := randx.New(53)
	rec := obs.New(obs.NewRegistry(), nil)
	pl, err := decomp.Compile("elkin-neiman", decomp.WithForceComplete(), decomp.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	o := Wrap(gen.GnpConnected(rng, 64, 0.08))
	m, err := NewMaintainer(ctx, pl, o, Config{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		batch := randomBatch(rng, modelOf(o), 64, 2)
		next, res, err := o.Apply(batch)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := m.Update(ctx, next, res.Effective); err != nil {
			t.Fatal(err)
		}
		o = next
	}
	repairs := rec.Counter("dyn.repair.repairs").Value()
	fallbacks := rec.Counter("dyn.repair.fallbacks").Value()
	if repairs+fallbacks != 3 {
		t.Fatalf("repairs=%d fallbacks=%d, want 3 total", repairs, fallbacks)
	}
	if got := rec.Histogram("dyn.repair.clusters.total").Snapshot().Count; got != 3 {
		t.Fatalf("dyn.repair.clusters.total count = %d, want 3", got)
	}
	nsCount := rec.Histogram("dyn.repair.ns").Snapshot().Count +
		rec.Histogram("dyn.repair.recompute.ns").Snapshot().Count
	if nsCount != 3 {
		t.Fatalf("latency histogram count = %d, want 3", nsCount)
	}
}
