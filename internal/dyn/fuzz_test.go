package dyn

import (
	"reflect"
	"testing"
)

// FuzzMutationBatch pins the codec's failure discipline: malformed input
// errors, never panics, and anything that decodes survives a lossless
// re-encode round trip.
func FuzzMutationBatch(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"mutations":[]}`,
		`{"mutations":null}`,
		`{"mutations":[{"insert":{"u":1,"v":2}}]}`,
		`{"mutations":[{"delete":{"u":0,"v":0}}]}`,
		`{"mutations":[{"insert":{"u":1,"v":2}},{"delete":{"u":3,"v":4}}]}`,
		`{"mutations":[{}]}`,
		`{"mutations":[{"insert":{"u":1,"v":2},"delete":{"u":1,"v":2}}]}`,
		`{"mutations":[{"insert":{"u":1}}]}`,
		`{"mutations":[{"insert":{"v":2}}]}`,
		`{"mutations":[{"upsert":{"u":1,"v":2}}]}`,
		`{"mutations":[],"extra":true}`,
		`{"mutations":[{"insert":{"u":-5,"v":99999999999}}]}`,
		`{"mutations":[]} trailing`,
		`[1,2,3]`,
		`null`,
		`"mutations"`,
		"\xff\xfe{",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatchBytes(data)
		if err != nil {
			return
		}
		// Whatever decoded is well-formed by construction: every mutation
		// has a known op, so EncodeBatch must succeed, and decoding the
		// encoding must reproduce the batch exactly.
		out, err := EncodeBatch(b)
		if err != nil {
			t.Fatalf("re-encoding decoded batch %+v: %v", b, err)
		}
		b2, err := DecodeBatchBytes(out)
		if err != nil {
			t.Fatalf("re-decoding %s: %v", out, err)
		}
		if len(b) == 0 && len(b2) == 0 {
			return
		}
		if !reflect.DeepEqual(b, b2) {
			t.Fatalf("round trip drift: %+v -> %+v", b, b2)
		}
	})
}
