package dyn

import (
	"fmt"
	"slices"
	"strings"
	"testing"

	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

// edgeSet is the reference model: the set of undirected edges as (u,v)
// pairs with u < v.
type edgeSet map[[2]int32]bool

func modelOf(g graph.Interface) edgeSet {
	s := make(edgeSet)
	for u, v := range graph.EdgeSeq(g) {
		s[[2]int32{int32(u), int32(v)}] = true
	}
	return s
}

func (s edgeSet) apply(mut Mutation) bool {
	k := [2]int32{mut.U, mut.V}
	if k[0] > k[1] {
		k[0], k[1] = k[1], k[0]
	}
	switch {
	case mut.Op == OpInsert && !s[k]:
		s[k] = true
		return true
	case mut.Op == OpDelete && s[k]:
		delete(s, k)
		return true
	}
	return false
}

// randomBatch draws size mutations over n vertices, roughly half deletes of
// present edges (when any exist) and half random inserts/deletes.
func randomBatch(rng *randx.SplitMix64, model edgeSet, n, size int) Batch {
	present := make([][2]int32, 0, len(model))
	for k := range model {
		present = append(present, k)
	}
	slices.SortFunc(present, func(a, b [2]int32) int {
		if a[0] != b[0] {
			return int(a[0] - b[0])
		}
		return int(a[1] - b[1])
	})
	b := make(Batch, 0, size)
	for len(b) < size {
		if len(present) > 0 && rng.Float64() < 0.4 {
			e := present[rng.Intn(len(present))]
			b = append(b, Mutation{Op: OpDelete, U: e[0], V: e[1]})
			continue
		}
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u == v {
			continue
		}
		op := OpInsert
		if rng.Intn(2) == 0 {
			op = OpDelete
		}
		b = append(b, Mutation{Op: op, U: u, V: v})
	}
	return b
}

func checkAgainstModel(t *testing.T, o *Overlay, model edgeSet) {
	t.Helper()
	if got := modelOf(o); len(got) != len(model) {
		t.Fatalf("edge count: overlay %d, model %d", len(got), len(model))
	} else {
		for k := range model {
			if !got[k] {
				t.Fatalf("edge {%d,%d} in model but not overlay", k[0], k[1])
			}
		}
	}
	if o.M() != len(model) {
		t.Fatalf("M() = %d, model has %d edges", o.M(), len(model))
	}
	// Rows must stay sorted and degree-consistent — the graph.Interface
	// contract every decomposer assumes.
	deg := 0
	for v := 0; v < o.N(); v++ {
		row := o.Neighbors(v)
		if !slices.IsSorted(row) {
			t.Fatalf("row %d not sorted: %v", v, row)
		}
		if len(row) != o.Degree(v) {
			t.Fatalf("vertex %d: len(Neighbors)=%d Degree=%d", v, len(row), o.Degree(v))
		}
		deg += len(row)
	}
	if deg != 2*o.M() {
		t.Fatalf("degree sum %d != 2*M %d", deg, 2*o.M())
	}
}

func TestOverlayApplyMatchesModel(t *testing.T) {
	rng := randx.New(0x0dd5)
	for trial := 0; trial < 8; trial++ {
		n := 16 + rng.Intn(48)
		base := gen.Gnp(rng, n, 0.12)
		model := modelOf(base)
		o := Wrap(base)
		for round := 0; round < 6; round++ {
			b := randomBatch(rng, model, n, 1+rng.Intn(12))
			next, res, err := o.Apply(b)
			if err != nil {
				t.Fatalf("trial %d round %d: %v", trial, round, err)
			}
			effective := 0
			for _, mut := range b {
				if model.apply(mut) {
					effective++
				}
			}
			if got := res.Inserted + res.Deleted; got != effective {
				t.Fatalf("effective count %d, model says %d", got, effective)
			}
			if len(res.Effective) != effective {
				t.Fatalf("len(Effective)=%d, want %d", len(res.Effective), effective)
			}
			if res.Noops != len(b)-effective {
				t.Fatalf("Noops=%d, want %d", res.Noops, len(b)-effective)
			}
			if next.Version() != o.Version()+1 {
				t.Fatalf("version %d after %d", next.Version(), o.Version())
			}
			if next.DeltaSize() != o.DeltaSize()+effective {
				t.Fatalf("delta %d, want %d", next.DeltaSize(), o.DeltaSize()+effective)
			}
			checkAgainstModel(t, next, model)
			o = next
		}
	}
}

// TestOverlayFunctional pins that Apply never modifies the receiver: the
// predecessor version still matches its own model after the successor is
// built and mutated further.
func TestOverlayFunctional(t *testing.T) {
	rng := randx.New(7)
	base := gen.GnpConnected(rng, 40, 0.1)
	baseModel := modelOf(base)
	o := Wrap(base)

	model1 := modelOf(o)
	v1, _, err := o.Apply(randomBatch(rng, model1, 40, 10))
	if err != nil {
		t.Fatal(err)
	}
	model2 := modelOf(v1)
	v2, _, err := v1.Apply(randomBatch(rng, model2, 40, 10))
	if err != nil {
		t.Fatal(err)
	}
	_ = v2
	checkAgainstModel(t, o, model1)
	checkAgainstModel(t, v1, model2)
	// The base CSR itself is untouched.
	if got := modelOf(base); len(got) != len(baseModel) {
		t.Fatalf("base graph mutated: %d edges, want %d", len(got), len(baseModel))
	}
}

func TestOverlayValidate(t *testing.T) {
	base := gen.Path(8)
	o := Wrap(base)
	cases := []struct {
		mut  Mutation
		want string
	}{
		{Mutation{Op: 0, U: 0, V: 1}, "unknown op"},
		{Mutation{Op: 9, U: 0, V: 1}, "unknown op"},
		{Mutation{Op: OpInsert, U: -1, V: 1}, "out of range"},
		{Mutation{Op: OpInsert, U: 0, V: 8}, "out of range"},
		{Mutation{Op: OpDelete, U: 3, V: 3}, "self-loop"},
	}
	for _, tc := range cases {
		_, _, err := o.Apply(Batch{{Op: OpInsert, U: 0, V: 2}, tc.mut})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("Apply(%+v): err %v, want %q", tc.mut, err, tc.want)
		}
	}
	// The whole batch was rejected: edge {0,2} must not have landed.
	if rowHas(o.Neighbors(0), 2) {
		t.Fatal("rejected batch partially applied")
	}
}

// TestOverlayFingerprintNeverAliasesBase is the satellite-1 regression: a
// mutated overlay must never return the base graph's cached digest.
func TestOverlayFingerprintNeverAliasesBase(t *testing.T) {
	rng := randx.New(0xfeed)
	base := gen.GnpConnected(rng, 64, 0.08)
	baseFP := base.Fingerprint()

	o := Wrap(base)
	if o.Fingerprint() != baseFP {
		t.Fatalf("unmutated wrap: fingerprint %x != base %x (same content must agree)",
			o.Fingerprint(), baseFP)
	}

	mutated, res, err := o.Apply(Batch{{Op: OpDelete, U: 0, V: base.Neighbors(0)[0]}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 1 {
		t.Fatalf("expected one deletion, got %+v", res)
	}
	if mutated.Fingerprint() == baseFP {
		t.Fatalf("mutated overlay aliases base fingerprint %x", baseFP)
	}
	// The digest is content-derived: the compacted CSR of the same edge set
	// agrees with the overlay.
	if got := mutated.Compact().Fingerprint(); got != mutated.Fingerprint() {
		t.Fatalf("compacted fingerprint %x != overlay %x", got, mutated.Fingerprint())
	}
	// Reverting the mutation restores the original content digest.
	reverted, _, err := mutated.Apply(Batch{{Op: OpInsert, U: 0, V: base.Neighbors(0)[0]}})
	if err != nil {
		t.Fatal(err)
	}
	if reverted.Fingerprint() != baseFP {
		t.Fatalf("reverted overlay fingerprint %x != base %x", reverted.Fingerprint(), baseFP)
	}
	// And the base's own cache was never clobbered.
	if base.Fingerprint() != baseFP {
		t.Fatal("base fingerprint changed")
	}
}

func TestOverlayCompact(t *testing.T) {
	rng := randx.New(21)
	base := gen.Gnp(rng, 50, 0.1)
	o := Wrap(base)
	model := modelOf(o)
	for i := 0; i < 4; i++ {
		var err error
		b := randomBatch(rng, model, 50, 8)
		o, _, err = o.Apply(b)
		if err != nil {
			t.Fatal(err)
		}
		for _, mut := range b {
			model.apply(mut)
		}
	}
	flat := o.Compact()
	if flat.N() != o.N() || flat.M() != o.M() {
		t.Fatalf("compact shape (%d,%d), overlay (%d,%d)", flat.N(), flat.M(), o.N(), o.M())
	}
	if got := modelOf(flat); fmt.Sprint(got) != fmt.Sprint(model) && len(got) != len(model) {
		t.Fatalf("compact edge count %d != model %d", len(got), len(model))
	}
	for v := 0; v < o.N(); v++ {
		if !slices.Equal(flat.Neighbors(v), o.Neighbors(v)) {
			t.Fatalf("row %d differs after compact", v)
		}
	}
	if flat.Fingerprint() != o.Fingerprint() {
		t.Fatalf("compact fingerprint %x != overlay %x", flat.Fingerprint(), o.Fingerprint())
	}
}

func TestWrapIdempotent(t *testing.T) {
	base := gen.Cycle(12)
	o := Wrap(base)
	if Wrap(o) != o {
		t.Fatal("Wrap of an Overlay must return it unchanged")
	}
	if o.Base() != base {
		t.Fatal("Base() lost the wrapped graph")
	}
	if o.Version() != 0 || o.DeltaSize() != 0 {
		t.Fatalf("fresh wrap: version=%d delta=%d", o.Version(), o.DeltaSize())
	}
}
