package dyn

// The incremental maintenance engine: a Maintainer owns one (plan, graph)
// pair and keeps its Partition current across mutation batches, repairing
// through core.Repair when the plan runs on the sequential core path and
// recomputing in full otherwise. Every Update yields exactly the partition
// a from-scratch plan.Run on the mutated graph would — repair is a
// performance path, never a semantic one.

import (
	"context"
	"time"

	"netdecomp/internal/core"
	"netdecomp/internal/decomp"
	"netdecomp/internal/graph"
	"netdecomp/internal/obs"
)

// Config tunes a Maintainer.
type Config struct {
	// MaxDamageFraction bounds the per-phase re-simulation region as a
	// fraction of n before repair falls back to full recompute (0 = the
	// core default 0.25).
	MaxDamageFraction float64
	// ForceRecompute disables the repair path entirely: every Update runs
	// the plan from scratch. The benchmark and churn-experiment baseline.
	ForceRecompute bool
	// Recorder receives the dyn.repair.* telemetry (nil = none).
	Recorder *obs.Recorder
}

// UpdateReport describes what one Update did.
type UpdateReport struct {
	// Repaired reports the incremental path ran to completion; FellBack
	// that it started and bailed (damage fraction, missing state), with
	// Reason naming why. Both false means the plan is not repairable (or
	// ForceRecompute is set) and a plain recompute ran.
	Repaired bool
	FellBack bool
	Reason   string
	// Damaged and Region total the per-phase damage sets and re-simulated
	// regions (repair path only).
	Damaged int
	Region  int
	// RepairedClusters counts result clusters that contain a damaged
	// vertex; TotalClusters is the cluster count of the result.
	RepairedClusters int
	TotalClusters    int
	// Duration is the wall-clock cost of the update.
	Duration time.Duration
}

// Maintainer keeps one plan's decomposition current under mutation.
// Not safe for concurrent use; callers serialize Updates (the serving
// layer's mutation path already does).
type Maintainer struct {
	pl         *decomp.Plan
	g          graph.Interface
	opts       core.Options
	repairable bool
	st         *core.RepairState
	part       *decomp.Partition
	cfg        Config

	hDamage    *obs.Histogram
	hRegion    *obs.Histogram
	hRepaired  *obs.Histogram
	hTotal     *obs.Histogram
	hRepairNs  *obs.Histogram
	hRecompNs  *obs.Histogram
	cRepairs   *obs.Counter
	cFallbacks *obs.Counter
	cRecomps   *obs.Counter
}

// NewMaintainer runs the initial decomposition of pl on g and returns the
// maintainer tracking it.
func NewMaintainer(ctx context.Context, pl *decomp.Plan, g graph.Interface, cfg Config) (*Maintainer, error) {
	rec := cfg.Recorder
	m := &Maintainer{
		pl:  pl,
		cfg: cfg,

		hDamage:    rec.Histogram("dyn.repair.damage"),
		hRegion:    rec.Histogram("dyn.repair.region"),
		hRepaired:  rec.Histogram("dyn.repair.clusters.repaired"),
		hTotal:     rec.Histogram("dyn.repair.clusters.total"),
		hRepairNs:  rec.Histogram("dyn.repair.ns"),
		hRecompNs:  rec.Histogram("dyn.repair.recompute.ns"),
		cRepairs:   rec.Counter("dyn.repair.repairs"),
		cFallbacks: rec.Counter("dyn.repair.fallbacks"),
		cRecomps:   rec.Counter("dyn.repair.recomputes"),
	}
	m.opts, m.repairable = pl.CoreOptions()
	if err := m.bootstrap(ctx, g); err != nil {
		return nil, err
	}
	return m, nil
}

// bootstrap establishes the partition (and repair state, when repairable)
// for a graph the maintainer has no prior state for.
func (m *Maintainer) bootstrap(ctx context.Context, g graph.Interface) error {
	if m.repairable && !m.cfg.ForceRecompute {
		dec, st, err := core.RunRepairable(g, m.opts)
		if err != nil {
			return err
		}
		m.st = st
		m.part = decomp.FromCore(dec)
	} else {
		part, err := m.pl.Run(ctx, g)
		if err != nil {
			return err
		}
		m.part = part
	}
	m.g = g
	return nil
}

// Partition returns the current decomposition. The caller must not modify
// it; Clone first if needed.
func (m *Maintainer) Partition() *decomp.Partition { return m.part }

// Graph returns the graph version the current partition describes.
func (m *Maintainer) Graph() graph.Interface { return m.g }

// Plan returns the maintained plan.
func (m *Maintainer) Plan() *decomp.Plan { return m.pl }

// Repairable reports whether the plan rides the incremental repair path.
func (m *Maintainer) Repairable() bool { return m.repairable && !m.cfg.ForceRecompute }

// Update moves the maintainer to the mutated graph g, with effective the
// edge mutations separating it from the previous graph (ApplyResult.
// Effective — no-ops excluded). It returns the new partition, identical in
// content to a from-scratch run of the plan on g.
func (m *Maintainer) Update(ctx context.Context, g graph.Interface, effective []Mutation) (*decomp.Partition, UpdateReport, error) {
	start := time.Now()
	var rep UpdateReport
	if !m.repairable || m.cfg.ForceRecompute {
		m.cRecomps.Inc()
		part, err := m.pl.Run(ctx, g)
		if err != nil {
			return nil, rep, err
		}
		m.g, m.part = g, part
		rep.Reason = "plan not repairable"
		if m.cfg.ForceRecompute {
			rep.Reason = "recompute forced"
		}
		rep.TotalClusters = len(part.Clusters)
		rep.Duration = time.Since(start)
		m.hRecompNs.Observe(rep.Duration.Nanoseconds())
		return part, rep, nil
	}

	changes := make([]core.EdgeChange, len(effective))
	for i, mut := range effective {
		changes[i] = core.EdgeChange{U: mut.U, V: mut.V, Insert: mut.Op == OpInsert}
	}
	dec, st, stats, err := core.Repair(g, m.opts, m.st, changes,
		core.RepairConfig{MaxDamageFraction: m.cfg.MaxDamageFraction})
	if err != nil {
		return nil, rep, err
	}
	m.g, m.st, m.part = g, st, decomp.FromCore(dec)

	rep.Repaired = !stats.FellBack
	rep.FellBack = stats.FellBack
	rep.Reason = stats.FallbackReason
	rep.Damaged = stats.DamagedVertices
	rep.Region = stats.RegionVertices
	rep.RepairedClusters = stats.RepairedClusters
	rep.TotalClusters = stats.TotalClusters
	rep.Duration = time.Since(start)

	m.hDamage.Observe(int64(rep.Damaged))
	m.hRegion.Observe(int64(rep.Region))
	m.hRepaired.Observe(int64(rep.RepairedClusters))
	m.hTotal.Observe(int64(rep.TotalClusters))
	if stats.FellBack {
		m.cFallbacks.Inc()
		m.cRecomps.Inc()
		m.hRecompNs.Observe(rep.Duration.Nanoseconds())
	} else {
		m.cRepairs.Inc()
		m.hRepairNs.Observe(rep.Duration.Nanoseconds())
	}
	return m.part, rep, nil
}
