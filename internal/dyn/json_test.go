package dyn

import (
	"reflect"
	"strings"
	"testing"
)

func TestBatchRoundTrip(t *testing.T) {
	b := Batch{
		{Op: OpInsert, U: 1, V: 2},
		{Op: OpDelete, U: 3, V: 4},
		{Op: OpInsert, U: 0, V: 7},
	}
	data, err := EncodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatchBytes(data)
	if err != nil {
		t.Fatalf("decoding %s: %v", data, err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("round trip: got %+v, want %+v", got, b)
	}
}

func TestEncodeBatchWireForm(t *testing.T) {
	data, err := EncodeBatch(Batch{{Op: OpInsert, U: 1, V: 2}, {Op: OpDelete, U: 3, V: 4}})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"mutations":[{"insert":{"u":1,"v":2}},{"delete":{"u":3,"v":4}}]}`
	if string(data) != want {
		t.Fatalf("wire form %s, want %s", data, want)
	}
}

func TestEncodeBatchUnknownOp(t *testing.T) {
	if _, err := EncodeBatch(Batch{{Op: 9, U: 1, V: 2}}); err == nil {
		t.Fatal("expected error for unknown op")
	}
}

func TestDecodeBatchStrict(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"garbage", `not json`, "decoding"},
		{"unknown field", `{"mutations":[],"extra":1}`, "decoding"},
		{"unknown op key", `{"mutations":[{"upsert":{"u":1,"v":2}}]}`, "decoding"},
		{"no op", `{"mutations":[{}]}`, "exactly one"},
		{"both ops", `{"mutations":[{"insert":{"u":1,"v":2},"delete":{"u":1,"v":2}}]}`, "both insert and delete"},
		{"missing u", `{"mutations":[{"insert":{"v":2}}]}`, "both u and v required"},
		{"missing v", `{"mutations":[{"delete":{"u":2}}]}`, "both u and v required"},
		{"trailing data", `{"mutations":[]}{"mutations":[]}`, "trailing data"},
		{"trailing token", `{"mutations":[]} 7`, "trailing data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeBatchBytes([]byte(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("DecodeBatch(%s): err %v, want %q", tc.in, err, tc.want)
			}
		})
	}
}

func TestDecodeBatchEmpty(t *testing.T) {
	for _, in := range []string{`{}`, `{"mutations":[]}`, `{"mutations":null}`} {
		b, err := DecodeBatchBytes([]byte(in))
		if err != nil {
			t.Fatalf("DecodeBatch(%s): %v", in, err)
		}
		if len(b) != 0 {
			t.Fatalf("DecodeBatch(%s): %d mutations", in, len(b))
		}
	}
}

// TestDecodeBatchVertexZero pins that vertex 0 decodes (the missing-field
// detection must not confuse an explicit 0 with absence).
func TestDecodeBatchVertexZero(t *testing.T) {
	b, err := DecodeBatchBytes([]byte(`{"mutations":[{"insert":{"u":0,"v":5}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 1 || b[0].U != 0 || b[0].V != 5 || b[0].Op != OpInsert {
		t.Fatalf("got %+v", b)
	}
}
