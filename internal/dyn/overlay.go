// Package dyn is the dynamic-graph subsystem: a mutable edge overlay over
// the immutable CSR core, and an incremental maintenance engine that keeps
// a decomposition current under edge churn without recomputing from
// scratch.
//
// The overlay is functional: Apply never modifies the receiver, it returns
// a new version sharing every untouched adjacency row with its
// predecessor. Each version is therefore immutable after construction and
// satisfies graph.Interface with the same sorted-row contract as *Graph,
// so every decomposer, traversal and serving layer works on it unchanged.
// Versions carry their own content fingerprint — recomputed from their own
// adjacency, never aliased from the base (see graph.Graph.Fingerprint's
// immutability contract) — so the session cache and serving registries key
// mutated graphs correctly for free.
//
// Past a delta threshold the overlay should be re-materialized into a flat
// CSR graph with Compact: reads through the patch map cost a lookup per
// row, and a long mutation history buys nothing once the damage is woven
// in.
//
// The maintenance engine (Maintainer, maintainer.go) pairs the overlay
// with internal/core's repair path: Elkin–Neiman ball growing has locally
// bounded influence — a changed edge can only affect vertices whose
// broadcast balls reach it — so a small mutation batch usually invalidates
// only a small damage region, which is re-simulated while every other
// cluster is reused bit-for-bit.
package dyn

import (
	"fmt"
	"slices"
	"sync/atomic"

	"netdecomp/internal/graph"
)

// Op is a mutation kind.
type Op uint8

// Mutation operations.
const (
	OpInsert Op = iota + 1
	OpDelete
)

// String returns the wire name of the op.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Mutation is one edge change: insert or delete the undirected edge {U,V}.
type Mutation struct {
	Op   Op
	U, V int32
}

// Batch is an ordered list of mutations applied atomically by Apply.
type Batch []Mutation

// ApplyResult reports what a batch actually did.
type ApplyResult struct {
	// Inserted and Deleted count the mutations that changed the edge set;
	// Noops counts the ones that didn't (inserting a present edge, deleting
	// an absent one).
	Inserted, Deleted, Noops int
	// Effective lists the mutations that changed the edge set, in batch
	// order — the damage sources the maintenance engine repairs from.
	// Noops are excluded: an edge that was already there damages nothing.
	Effective []Mutation
}

// Overlay is one immutable version of a mutable graph: a base CSR graph
// plus per-vertex patched adjacency rows for every vertex an applied
// mutation touched. It satisfies graph.Interface (sorted rows, stable
// slices) and is safe for concurrent use; Apply produces the next version
// without modifying the receiver.
type Overlay struct {
	base    *graph.Graph
	rows    map[int32][]int32 // patched rows, sorted ascending
	m       int               // current undirected edge count
	version uint64            // 0 for a freshly wrapped base
	delta   int               // effective mutations since the base CSR
	fp      atomic.Uint64     // cached digest of THIS version (0 = unset)
}

// Wrap presents g as overlay version 0. A *graph.Graph is wrapped
// directly; an *Overlay is returned as-is (it already is a version); any
// other backend is materialized into a flat CSR first.
func Wrap(g graph.Interface) *Overlay {
	switch t := g.(type) {
	case *Overlay:
		return t
	case *graph.Graph:
		return &Overlay{base: t, m: t.M()}
	}
	return &Overlay{base: Materialize(g), m: graph.EdgeCount(g)}
}

// N returns the number of vertices (fixed across versions: mutations
// change edges, never the vertex set).
func (o *Overlay) N() int { return o.base.N() }

// M returns the number of undirected edges of this version.
func (o *Overlay) M() int { return o.m }

// Degree returns the degree of vertex v in this version.
func (o *Overlay) Degree(v int) int {
	if row, ok := o.rows[int32(v)]; ok {
		return len(row)
	}
	return o.base.Degree(v)
}

// Neighbors returns the sorted adjacency row of v in this version. The
// slice is owned by the overlay and must not be modified.
func (o *Overlay) Neighbors(v int) []int32 {
	if row, ok := o.rows[int32(v)]; ok {
		return row
	}
	return o.base.Neighbors(v)
}

// Version is the number of Apply steps between the base CSR and this
// value.
func (o *Overlay) Version() uint64 { return o.version }

// DeltaSize is the number of effective mutations this version carries over
// the base CSR — the quantity compared against the compaction threshold.
func (o *Overlay) DeltaSize() int { return o.delta }

// Base returns the underlying immutable CSR graph.
func (o *Overlay) Base() *graph.Graph { return o.base }

// Fingerprint returns the content digest of this version, computed on
// first use and cached. Every version hashes its own adjacency — the
// digest is never inherited from the base, so a mutated overlay can never
// alias the base graph's cached fingerprint (the immutability contract
// graph.Graph.Fingerprint documents).
func (o *Overlay) Fingerprint() uint64 {
	if fp := o.fp.Load(); fp != 0 {
		return fp
	}
	fp := graph.FingerprintUncached(o)
	if fp == 0 {
		fp = 1 // reserve the sentinel; still deterministic
	}
	o.fp.Store(fp)
	return fp
}

// String summarizes the overlay version.
func (o *Overlay) String() string {
	return fmt.Sprintf("overlay{n=%d m=%d version=%d delta=%d}", o.N(), o.m, o.version, o.delta)
}

// validate rejects a malformed mutation before anything is applied.
func (o *Overlay) validate(mut Mutation) error {
	if mut.Op != OpInsert && mut.Op != OpDelete {
		return fmt.Errorf("dyn: unknown op %d", int(mut.Op))
	}
	n := int32(o.N())
	if mut.U < 0 || mut.U >= n || mut.V < 0 || mut.V >= n {
		return fmt.Errorf("dyn: %s{%d,%d} out of range [0,%d)", mut.Op, mut.U, mut.V, n)
	}
	if mut.U == mut.V {
		return fmt.Errorf("dyn: %s{%d,%d} is a self-loop", mut.Op, mut.U, mut.V)
	}
	return nil
}

// Apply produces the next version with the batch applied in order,
// leaving the receiver untouched. Inserting a present edge or deleting an
// absent one is a counted no-op, not an error — batches compose from
// concurrent sources and the edge set is the authority. A malformed
// mutation (unknown op, endpoint out of range, self-loop) rejects the
// whole batch: versions are all-or-nothing.
func (o *Overlay) Apply(b Batch) (*Overlay, ApplyResult, error) {
	var res ApplyResult
	for _, mut := range b {
		if err := o.validate(mut); err != nil {
			return nil, ApplyResult{}, err
		}
	}
	next := &Overlay{
		base:    o.base,
		rows:    make(map[int32][]int32, len(o.rows)+2*len(b)),
		m:       o.m,
		version: o.version + 1,
		delta:   o.delta,
	}
	for v, row := range o.rows {
		next.rows[v] = row
	}
	// Rows patched during THIS Apply are private copies and may be edited
	// in place on a later mutation of the same batch.
	touched := make(map[int32]bool, 2*len(b))
	for _, mut := range b {
		present := rowHas(next.Neighbors(int(mut.U)), mut.V)
		if (mut.Op == OpInsert) == present {
			res.Noops++
			continue
		}
		next.patchRow(mut.U, mut.V, mut.Op, touched)
		next.patchRow(mut.V, mut.U, mut.Op, touched)
		next.delta++
		if mut.Op == OpInsert {
			next.m++
			res.Inserted++
		} else {
			next.m--
			res.Deleted++
		}
		res.Effective = append(res.Effective, mut)
	}
	return next, res, nil
}

// patchRow inserts or removes w in u's adjacency row, copying the row
// first unless this Apply already owns it.
func (o *Overlay) patchRow(u, w int32, op Op, touched map[int32]bool) {
	row := o.Neighbors(int(u))
	if !touched[u] {
		row = slices.Clone(row)
		touched[u] = true
	}
	i, _ := slices.BinarySearch(row, w)
	if op == OpInsert {
		row = slices.Insert(row, i, w)
	} else {
		row = slices.Delete(row, i, i+1)
	}
	o.rows[u] = row
}

// rowHas reports whether w occurs in the sorted row.
func rowHas(row []int32, w int32) bool {
	_, ok := slices.BinarySearch(row, w)
	return ok
}

// Compact re-materializes this version into a flat immutable CSR graph
// with the same (n, edge set) — and therefore the same fingerprint. Call
// it once DeltaSize passes the serving layer's threshold: the compacted
// graph reads without the patch-map lookup and drops the mutation
// history.
func (o *Overlay) Compact() *graph.Graph { return Materialize(o) }

// Materialize builds a flat CSR copy of any graph backend via the
// two-pass stream path (no intermediate edge staging).
func Materialize(g graph.Interface) *graph.Graph {
	return graph.FromStream(g.N(), func(yield func(u, v int)) {
		for u, v := range graph.EdgeSeq(g) {
			yield(u, v)
		}
	})
}
