package gen

import (
	"math"
	"testing"

	"netdecomp/internal/randx"
)

func TestGnpEdgeCount(t *testing.T) {
	// Expected edge count is p * n(n-1)/2; check within 5 standard
	// deviations of the binomial.
	rng := randx.New(1)
	n, p := 500, 0.05
	g := Gnp(rng, n, p)
	mean := p * float64(n*(n-1)/2)
	sd := math.Sqrt(mean * (1 - p))
	if math.Abs(float64(g.M())-mean) > 5*sd {
		t.Fatalf("G(n,p) edge count %d too far from mean %.0f (sd %.1f)", g.M(), mean, sd)
	}
}

func TestGnpEdgeCases(t *testing.T) {
	rng := randx.New(2)
	if g := Gnp(rng, 0, 0.5); g.N() != 0 {
		t.Fatal("empty Gnp wrong")
	}
	if g := Gnp(rng, 10, 0); g.M() != 0 {
		t.Fatal("p=0 should have no edges")
	}
	if g := Gnp(rng, 10, 1); g.M() != 45 {
		t.Fatalf("p=1 should be complete, got m=%d", g.M())
	}
	if g := Gnp(rng, 1, 0.9); g.N() != 1 || g.M() != 0 {
		t.Fatal("single-vertex Gnp wrong")
	}
}

func TestGnpDeterministic(t *testing.T) {
	a := Gnp(randx.New(7), 200, 0.05)
	b := Gnp(randx.New(7), 200, 0.05)
	if a.M() != b.M() {
		t.Fatalf("same seed produced different graphs: %d vs %d edges", a.M(), b.M())
	}
}

func TestGnpConnected(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := GnpConnected(randx.New(seed), 300, 0.001)
		if !g.IsConnected() {
			t.Fatalf("seed %d: GnpConnected produced a disconnected graph", seed)
		}
	}
}

func TestPathShape(t *testing.T) {
	g := Path(10)
	if g.N() != 10 || g.M() != 9 {
		t.Fatalf("path(10): n=%d m=%d", g.N(), g.M())
	}
	if g.Diameter() != 9 {
		t.Fatalf("path diameter = %d", g.Diameter())
	}
}

func TestCycleShape(t *testing.T) {
	g := Cycle(10)
	if g.M() != 10 || g.MaxDegree() != 2 || g.Diameter() != 5 {
		t.Fatalf("cycle(10): m=%d maxdeg=%d diam=%d", g.M(), g.MaxDegree(), g.Diameter())
	}
	if g := Cycle(1); g.M() != 0 {
		t.Fatal("cycle(1) should have no edges")
	}
	if g := Cycle(2); g.M() != 1 {
		t.Fatalf("cycle(2) should be a single edge, got m=%d", g.M())
	}
}

func TestGridShape(t *testing.T) {
	g := Grid(4, 5)
	if g.N() != 20 {
		t.Fatalf("grid n=%d", g.N())
	}
	// Edges: 4*4 horizontal + 3*5 vertical = 31.
	if g.M() != 31 {
		t.Fatalf("grid m=%d, want 31", g.M())
	}
	if g.Diameter() != 3+4 {
		t.Fatalf("grid diameter = %d, want 7", g.Diameter())
	}
}

func TestTorusShape(t *testing.T) {
	g := Torus(4, 4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("torus: n=%d m=%d", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus vertex %d has degree %d", v, g.Degree(v))
		}
	}
}

func TestCompleteTreeShape(t *testing.T) {
	g := CompleteTree(2, 4) // 1+2+4+8 = 15 vertices
	if g.N() != 15 || g.M() != 14 {
		t.Fatalf("tree: n=%d m=%d", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Fatal("complete tree disconnected")
	}
	if g := CompleteTree(3, 0); g.N() != 0 {
		t.Fatal("zero-level tree should be empty")
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := RandomTree(randx.New(seed), 100)
		if g.M() != 99 || !g.IsConnected() {
			t.Fatalf("seed %d: not a tree: m=%d connected=%v", seed, g.M(), g.IsConnected())
		}
	}
}

func TestHypercubeShape(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("hypercube: n=%d m=%d", g.N(), g.M())
	}
	if g.Diameter() != 4 {
		t.Fatalf("hypercube diameter = %d", g.Diameter())
	}
}

func TestCompleteAndStar(t *testing.T) {
	if g := Complete(6); g.M() != 15 || g.Diameter() != 1 {
		t.Fatalf("K6 wrong: m=%d", g.M())
	}
	g := Star(6)
	if g.M() != 5 || g.Degree(0) != 5 || g.Diameter() != 2 {
		t.Fatalf("star wrong: m=%d", g.M())
	}
}

func TestRandomRegularDegrees(t *testing.T) {
	g := RandomRegular(randx.New(3), 100, 6)
	if !g.IsConnected() {
		t.Fatal("random regular graph disconnected (possible but should be rare at d=6)")
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) > 6 {
			t.Fatalf("vertex %d has degree %d > 6", v, g.Degree(v))
		}
	}
	// Average degree should be close to 6 (matchings may collide a little).
	avg := 2 * float64(g.M()) / float64(g.N())
	if avg < 5 {
		t.Fatalf("average degree %v too low", avg)
	}
}

func TestRingOfCliques(t *testing.T) {
	g := RingOfCliques(5, 4)
	if g.N() != 20 {
		t.Fatalf("n=%d", g.N())
	}
	// 5 cliques of 6 edges each + 5 bridges.
	if g.M() != 5*6+5 {
		t.Fatalf("m=%d, want 35", g.M())
	}
	if !g.IsConnected() {
		t.Fatal("ring of cliques disconnected")
	}
}

func TestRingOfCliquesSmall(t *testing.T) {
	g := RingOfCliques(1, 4)
	if g.M() != 6 {
		t.Fatalf("single clique m=%d", g.M())
	}
	g = RingOfCliques(2, 3)
	if !g.IsConnected() {
		t.Fatal("two cliques should be bridged")
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(5, 2)
	if g.N() != 15 || g.M() != 14 || !g.IsConnected() {
		t.Fatalf("caterpillar: n=%d m=%d", g.N(), g.M())
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(4, 3)
	if g.N() != 10 {
		t.Fatalf("barbell n=%d", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("barbell disconnected")
	}
	// Two K4s (6 edges each) plus a 3-edge bridge path.
	if g.M() != 15 {
		t.Fatalf("barbell m=%d, want 15", g.M())
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(randx.New(5), 200, 6, 0.1)
	if g.N() != 200 {
		t.Fatalf("n=%d", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("small world graph disconnected")
	}
}

func TestPowerLaw(t *testing.T) {
	g := PowerLaw(randx.New(9), 500, 4)
	if g.N() != 500 {
		t.Fatalf("n=%d", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("preferential-attachment graph disconnected")
	}
	// Every vertex v >= 1 attaches min(4, v) edges, some of which collide
	// and are deduped; the edge count must land between the tree lower
	// bound and the attachment upper bound.
	if g.M() < g.N()-1 || g.M() > 4*g.N() {
		t.Fatalf("m=%d out of range for n=%d, m0=4", g.M(), g.N())
	}
	// Heavy tail: the busiest hub must dominate the mean degree by a wide
	// margin (for BA with m0=4 the max degree grows like sqrt(n)).
	mean := 2 * float64(g.M()) / float64(g.N())
	if max := g.MaxDegree(); float64(max) < 4*mean {
		t.Fatalf("max degree %d not heavy-tailed (mean %.1f)", max, mean)
	}
}

func TestFamilyRoundTrip(t *testing.T) {
	for f := FamilyGnp; f <= FamilyPowerLaw; f++ {
		parsed, err := ParseFamily(f.String())
		if err != nil {
			t.Fatalf("ParseFamily(%q): %v", f.String(), err)
		}
		if parsed != f {
			t.Fatalf("round trip %v -> %v", f, parsed)
		}
	}
	if _, err := ParseFamily("nope"); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestBuildAllFamilies(t *testing.T) {
	for f := FamilyGnp; f <= FamilyPowerLaw; f++ {
		g, err := Build(f, 256, 42)
		if err != nil {
			t.Fatalf("Build(%v): %v", f, err)
		}
		if g.N() == 0 {
			t.Fatalf("Build(%v) produced empty graph", f)
		}
		if !g.IsConnected() {
			t.Fatalf("Build(%v) produced disconnected graph", f)
		}
	}
}

func TestBuildUnknownFamily(t *testing.T) {
	if _, err := Build(Family(99), 100, 1); err == nil {
		t.Fatal("unknown family accepted by Build")
	}
}

func TestBuildDeterministic(t *testing.T) {
	for f := FamilyGnp; f <= FamilyPowerLaw; f++ {
		a, err := Build(f, 200, 11)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(f, 200, 11)
		if err != nil {
			t.Fatal(err)
		}
		if a.N() != b.N() || a.M() != b.M() {
			t.Fatalf("%v: same seed produced different graphs", f)
		}
		ea, eb := a.Edges(), b.Edges()
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("%v: edge lists differ at %d", f, i)
			}
		}
	}
}

func TestGnpConnectedPreservesGnpEdges(t *testing.T) {
	// The backbone only adds edges; every Gnp edge for the same rng
	// prefix must survive the union.
	rng := randx.New(77)
	g := GnpConnected(rng, 150, 0.02)
	if !g.IsConnected() {
		t.Fatal("not connected")
	}
	if g.M() < 149 {
		t.Fatalf("fewer edges than a spanning backbone: %d", g.M())
	}
}
