package gen

import "math"

// log is a local alias so the skipping sampler in Gnp reads like the
// Batagelj–Brandes pseudocode.
func log(x float64) float64 { return math.Log(x) }

// logOneMinus returns ln(1-p) computed accurately for small p.
func logOneMinus(p float64) float64 { return math.Log1p(-p) }
