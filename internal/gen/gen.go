// Package gen provides the graph families used as workloads by the
// experiment harness: random graphs, meshes, trees, expanders and several
// adversarial shapes for the decomposition algorithms (long paths, rings of
// cliques, caterpillars).
//
// Every generator is deterministic in its randx seed so that experiments
// are reproducible and the sequential and parallel schedulers see identical
// inputs. Generators emit their edges as replayable streams into the
// two-pass graph.FromStream builder, so the CSR arrays are laid out
// directly — no intermediate adjacency or edge list is materialized.
// Randomized families snapshot their rng (randx.State/SetState) before the
// first pass and rewind for the second, which leaves the generator in
// exactly the state a single pass would have.
package gen

import (
	"fmt"

	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

// replayable wraps a randomized edge stream so both FromStream passes see
// identical draws: the rng is rewound to its entry state at the start of
// every pass.
func replayable(rng *randx.SplitMix64, stream func(yield func(u, v int))) func(yield func(u, v int)) {
	start := rng.State()
	return func(yield func(u, v int)) {
		rng.SetState(start)
		stream(yield)
	}
}

// gnpStream yields the Batagelj–Brandes edge sample of G(n, p) for
// 0 < p < 1: iterate over the slots (v, w) with w < v in row-major order,
// jumping a geometric(1-p) number of slots each step, so the cost is
// proportional to the number of edges generated.
func gnpStream(rng *randx.SplitMix64, n int, p float64, yield func(u, v int)) {
	logq := logOneMinus(p)
	v, w := 1, -1
	for v < n {
		r := rng.Float64Open()
		w += 1 + int(log(r)/logq)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			yield(v, w)
		}
	}
}

// Gnp returns an Erdős–Rényi random graph G(n, p): each of the n·(n-1)/2
// possible edges is present independently with probability p.
//
// For sparse p it uses geometric skipping, so the cost is proportional to
// the number of generated edges rather than n².
func Gnp(rng *randx.SplitMix64, n int, p float64) *graph.Graph {
	if p <= 0 || n < 2 {
		return graph.FromStream(n, func(func(u, v int)) {})
	}
	if p >= 1 {
		return Complete(n)
	}
	return graph.FromStream(n, replayable(rng, func(yield func(u, v int)) {
		gnpStream(rng, n, p, yield)
	}))
}

// GnpConnected returns a G(n,p) sample augmented with a uniformly random
// Hamiltonian-path backbone, guaranteeing connectivity while preserving the
// random-graph character. Decomposition experiments usually want connected
// inputs so that "graph exhausted" has a single meaning.
func GnpConnected(rng *randx.SplitMix64, n int, p float64) *graph.Graph {
	return graph.FromStream(n, replayable(rng, func(yield func(u, v int)) {
		if p > 0 && p < 1 && n >= 2 {
			gnpStream(rng, n, p, yield)
		} else if p >= 1 {
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					yield(u, v)
				}
			}
		}
		perm := rng.Perm(n)
		for i := 0; i+1 < n; i++ {
			yield(perm[i], perm[i+1])
		}
	}))
}

// Path returns the path graph on n vertices: 0-1-2-...-(n-1).
func Path(n int) *graph.Graph {
	return graph.FromStream(n, func(yield func(u, v int)) {
		for i := 0; i+1 < n; i++ {
			yield(i, i+1)
		}
	})
}

// Cycle returns the cycle graph on n vertices.
func Cycle(n int) *graph.Graph {
	return graph.FromStream(n, func(yield func(u, v int)) {
		if n >= 2 {
			for i := 0; i < n; i++ {
				yield(i, (i+1)%n)
			}
		}
	})
}

// Grid returns the rows×cols 2-dimensional mesh.
func Grid(rows, cols int) *graph.Graph {
	id := func(r, c int) int { return r*cols + c }
	return graph.FromStream(rows*cols, func(yield func(u, v int)) {
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if c+1 < cols {
					yield(id(r, c), id(r, c+1))
				}
				if r+1 < rows {
					yield(id(r, c), id(r+1, c))
				}
			}
		}
	})
}

// Torus returns the rows×cols 2-dimensional torus (grid with wraparound).
func Torus(rows, cols int) *graph.Graph {
	id := func(r, c int) int { return r*cols + c }
	return graph.FromStream(rows*cols, func(yield func(u, v int)) {
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				yield(id(r, c), id(r, (c+1)%cols))
				yield(id(r, c), id((r+1)%rows, c))
			}
		}
	})
}

// CompleteTree returns the complete b-ary tree with the given number of
// levels (a single root for levels == 1).
func CompleteTree(arity, levels int) *graph.Graph {
	if levels < 1 || arity < 1 {
		return graph.FromStream(0, func(func(u, v int)) {})
	}
	// Count nodes: 1 + b + b^2 + ... + b^(levels-1).
	n := 0
	width := 1
	for l := 0; l < levels; l++ {
		n += width
		width *= arity
	}
	return graph.FromStream(n, func(yield func(u, v int)) {
		for v := 1; v < n; v++ {
			yield((v-1)/arity, v)
		}
	})
}

// RandomTree returns a uniformly random labelled tree on n vertices via a
// random attachment process (each new vertex attaches to a uniformly
// random earlier vertex).
func RandomTree(rng *randx.SplitMix64, n int) *graph.Graph {
	return graph.FromStream(n, replayable(rng, func(yield func(u, v int)) {
		for v := 1; v < n; v++ {
			yield(v, rng.Intn(v))
		}
	}))
}

// Hypercube returns the dim-dimensional hypercube on 2^dim vertices.
func Hypercube(dim int) *graph.Graph {
	n := 1 << dim
	return graph.FromStream(n, func(yield func(u, v int)) {
		for v := 0; v < n; v++ {
			for d := 0; d < dim; d++ {
				if w := v ^ (1 << d); v < w {
					yield(v, w)
				}
			}
		}
	})
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	return graph.FromStream(n, func(yield func(u, v int)) {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				yield(u, v)
			}
		}
	})
}

// Star returns the star K_{1,n-1} with vertex 0 as the hub.
func Star(n int) *graph.Graph {
	return graph.FromStream(n, func(yield func(u, v int)) {
		for v := 1; v < n; v++ {
			yield(0, v)
		}
	})
}

// RandomRegular returns an approximately d-regular graph on n vertices
// built from d/2 superimposed random perfect matchings on 2 copies
// (configuration-model style with rejection of self-loops and duplicate
// edges, so some vertices may fall slightly short of degree d).
// It requires n > d.
func RandomRegular(rng *randx.SplitMix64, n, d int) *graph.Graph {
	if n <= d || d < 1 {
		return graph.FromStream(n, func(func(u, v int)) {})
	}
	// Union of d random near-perfect matchings of the vertex set: each is a
	// random permutation paired off. This yields a d-regular-ish expander.
	return graph.FromStream(n, replayable(rng, func(yield func(u, v int)) {
		for round := 0; round < d; round++ {
			perm := rng.Perm(n)
			for i := 0; i+1 < n; i += 2 {
				yield(perm[i], perm[i+1])
			}
		}
	}))
}

// RingOfCliques returns k cliques of size s arranged in a ring, with one
// bridge edge between consecutive cliques. This family is adversarial for
// weak-diameter decompositions: a cluster can pick up vertices of several
// cliques that are close in G but far (or disconnected) in the induced
// subgraph.
func RingOfCliques(k, s int) *graph.Graph {
	return graph.FromStream(k*s, func(yield func(u, v int)) {
		for c := 0; c < k; c++ {
			base := c * s
			for i := 0; i < s; i++ {
				for j := i + 1; j < s; j++ {
					yield(base+i, base+j)
				}
			}
			next := ((c + 1) % k) * s
			if k > 1 && (k > 2 || c == 0) {
				yield(base+s-1, next)
			}
		}
	})
}

// Caterpillar returns a path of length spine with legs pendant vertices
// attached to every spine vertex.
func Caterpillar(spine, legs int) *graph.Graph {
	n := spine + spine*legs
	return graph.FromStream(n, func(yield func(u, v int)) {
		for i := 0; i+1 < spine; i++ {
			yield(i, i+1)
		}
		next := spine
		for i := 0; i < spine; i++ {
			for l := 0; l < legs; l++ {
				yield(i, next)
				next++
			}
		}
	})
}

// Barbell returns two cliques of size s joined by a path of length
// bridgeLen (bridgeLen edges, bridgeLen-1 intermediate vertices).
func Barbell(s, bridgeLen int) *graph.Graph {
	inner := bridgeLen - 1
	if inner < 0 {
		inner = 0
	}
	n := 2*s + inner
	return graph.FromStream(n, func(yield func(u, v int)) {
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				yield(i, j)
				yield(s+inner+i, s+inner+j)
			}
		}
		// Path from vertex s-1 (in clique A) through the bridge to vertex
		// s+inner (first of clique B).
		prev := s - 1
		for i := 0; i < inner; i++ {
			yield(prev, s+i)
			prev = s + i
		}
		if n > s {
			yield(prev, s+inner)
		}
	})
}

// PowerLaw returns a Barabási–Albert preferential-attachment graph on n
// vertices: vertex v (v ≥ 1) attaches min(m, v) edges to earlier vertices
// chosen proportionally to their current degree (by sampling the flat
// endpoint list of the edges laid so far). The resulting degree sequence is
// heavy-tailed — a few hubs of very high degree over a low-degree bulk —
// which is the adversarial profile for frontier-sparse simulation: hub
// broadcasts touch huge neighborhoods while most rounds move tiny
// frontiers. The graph is connected by construction (every vertex attaches
// to an earlier one).
func PowerLaw(rng *randx.SplitMix64, n, m int) *graph.Graph {
	if m < 1 {
		m = 1
	}
	return graph.FromStream(n, replayable(rng, func(yield func(u, v int)) {
		// Flat multiset of edge endpoints; sampling it uniformly is
		// degree-proportional sampling. Rebuilt per pass, replayed by rng.
		targets := make([]int32, 0, 2*m*n)
		for v := 1; v < n; v++ {
			deg := m
			if v < m {
				deg = v
			}
			for e := 0; e < deg; e++ {
				w := 0
				if len(targets) > 0 {
					w = int(targets[rng.Intn(len(targets))])
				}
				yield(v, w) // duplicates are deduped by the CSR builder
				targets = append(targets, int32(w), int32(v))
			}
		}
	}))
}

// WattsStrogatz returns a small-world ring lattice on n vertices where each
// vertex connects to its k nearest ring neighbors and every edge is
// rewired to a random endpoint with probability beta.
func WattsStrogatz(rng *randx.SplitMix64, n, k int, beta float64) *graph.Graph {
	if n < 3 || k < 1 {
		return graph.FromStream(n, func(func(u, v int)) {})
	}
	half := k / 2
	if half < 1 {
		half = 1
	}
	return graph.FromStream(n, replayable(rng, func(yield func(u, v int)) {
		for v := 0; v < n; v++ {
			for j := 1; j <= half; j++ {
				w := (v + j) % n
				if rng.Float64() < beta {
					w = rng.Intn(n)
					for w == v {
						w = rng.Intn(n)
					}
				}
				yield(v, w)
			}
		}
	}))
}

// Family identifies a named workload family for CLI tools and the
// experiment harness.
type Family int

// Families supported by Build. Values start at 1 so the zero value is
// detectably invalid.
const (
	FamilyGnp Family = iota + 1
	FamilyGrid
	FamilyTorus
	FamilyTree
	FamilyPath
	FamilyCycle
	FamilyHypercube
	FamilyRegular
	FamilyRingOfCliques
	FamilyCaterpillar
	FamilySmallWorld
	FamilyPowerLaw
)

// Constructor builds a connected graph of about n vertices, deterministic
// in seed.
type Constructor func(n int, seed uint64) (*graph.Graph, error)

// familySpec registers one family: its enum value, CLI name and default
// constructor (the family-specific shape parameters live in the closure).
type familySpec struct {
	fam   Family
	name  string
	build Constructor
}

// familyTable is the name-keyed registry behind Families, ParseFamily and
// Build — the gen counterpart of the decomp algorithm registry, so sweep
// drivers enumerate workloads the same way they enumerate algorithms.
var familyTable = []familySpec{
	{FamilyGnp, "gnp", func(n int, seed uint64) (*graph.Graph, error) {
		// Average degree about 8, plus a backbone for connectivity.
		p := 8.0 / float64(max(n-1, 1))
		return GnpConnected(randx.New(seed), n, p), nil
	}},
	{FamilyGrid, "grid", func(n int, _ uint64) (*graph.Graph, error) {
		side := intSqrt(n)
		return Grid(side, side), nil
	}},
	{FamilyTorus, "torus", func(n int, _ uint64) (*graph.Graph, error) {
		side := intSqrt(n)
		return Torus(side, side), nil
	}},
	{FamilyTree, "tree", func(n int, seed uint64) (*graph.Graph, error) {
		return RandomTree(randx.New(seed), n), nil
	}},
	{FamilyPath, "path", func(n int, _ uint64) (*graph.Graph, error) {
		return Path(n), nil
	}},
	{FamilyCycle, "cycle", func(n int, _ uint64) (*graph.Graph, error) {
		return Cycle(n), nil
	}},
	{FamilyHypercube, "hypercube", func(n int, _ uint64) (*graph.Graph, error) {
		dim := 0
		for 1<<(dim+1) <= n {
			dim++
		}
		return Hypercube(dim), nil
	}},
	{FamilyRegular, "regular", func(n int, seed uint64) (*graph.Graph, error) {
		return RandomRegular(randx.New(seed), n, 6), nil
	}},
	{FamilyRingOfCliques, "ringofcliques", func(n int, _ uint64) (*graph.Graph, error) {
		s := 8
		k := max(n/s, 1)
		return RingOfCliques(k, s), nil
	}},
	{FamilyCaterpillar, "caterpillar", func(n int, _ uint64) (*graph.Graph, error) {
		legs := 3
		spine := max(n/(legs+1), 1)
		return Caterpillar(spine, legs), nil
	}},
	{FamilySmallWorld, "smallworld", func(n int, seed uint64) (*graph.Graph, error) {
		return WattsStrogatz(randx.New(seed), n, 6, 0.1), nil
	}},
	{FamilyPowerLaw, "powerlaw", func(n int, seed uint64) (*graph.Graph, error) {
		return PowerLaw(randx.New(seed), n, 4), nil
	}},
}

// Families enumerates every registered family in table (document) order —
// the workload-side analogue of decomp.Names, used by sweep drivers.
func Families() []Family {
	out := make([]Family, len(familyTable))
	for i, s := range familyTable {
		out[i] = s.fam
	}
	return out
}

// FamilyNames returns the CLI names of every registered family in table
// order.
func FamilyNames() []string {
	out := make([]string, len(familyTable))
	for i, s := range familyTable {
		out[i] = s.name
	}
	return out
}

// lookup returns the registration of f, or nil.
func (f Family) lookup() *familySpec {
	for i := range familyTable {
		if familyTable[i].fam == f {
			return &familyTable[i]
		}
	}
	return nil
}

// String returns the canonical CLI name of the family.
func (f Family) String() string {
	if s := f.lookup(); s != nil {
		return s.name
	}
	return fmt.Sprintf("family(%d)", int(f))
}

// Constructor returns the family's default workload constructor.
func (f Family) Constructor() (Constructor, error) {
	s := f.lookup()
	if s == nil {
		return nil, fmt.Errorf("gen: unknown graph family %v", f)
	}
	return s.build, nil
}

// ParseFamily converts a CLI name into a Family. The error lists the known
// names, so a typo in a flag is self-diagnosing.
func ParseFamily(s string) (Family, error) {
	for _, spec := range familyTable {
		if spec.name == s {
			return spec.fam, nil
		}
	}
	return 0, fmt.Errorf("gen: unknown graph family %q (known: %v)", s, FamilyNames())
}

// Build constructs a connected graph of about n vertices from the given
// family, using sensible family-specific shape parameters. It is the
// one-stop workload constructor used by the harness and CLIs.
func Build(f Family, n int, seed uint64) (*graph.Graph, error) {
	build, err := f.Constructor()
	if err != nil {
		return nil, err
	}
	return build(n, seed)
}

// intSqrt returns the integer square root of n.
func intSqrt(n int) int {
	if n < 0 {
		return 0
	}
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
