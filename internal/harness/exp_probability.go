package harness

import (
	"fmt"
	"math"

	"netdecomp/internal/core"
	"netdecomp/internal/gen"
	"netdecomp/internal/stats"
)

// T6TruncationEvents reproduces Lemma 1: the probability that any vertex
// ever draws a radius r ≥ k+1 (breaking the per-phase round budget) is at
// most 2/c, so it decays inversely with the confidence parameter.
func T6TruncationEvents(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	n := pick(cfg, 256, 1024)
	trials := cfg.trials(40, 200)
	g, err := gen.Build(gen.FamilyGnp, n, cfg.Seed+3)
	if err != nil {
		return nil, err
	}
	k := 4
	t := &Table{
		ID:    "T6",
		Title: fmt.Sprintf("Lemma 1 truncation events (Gnp n=%d, k=%d, %d trials/c)", g.N(), k, trials),
		Claim: "Pr[∃v,t: r_v^{(t)} ≥ k+1] ≤ 2/c",
		Columns: []string{"c", "runs w/ event", "empirical Pr", "95% CI", "bound 2/c",
			"events/run(mean)"},
	}
	for _, c := range []float64{4, 8, 16, 32} {
		bad := 0
		var events []float64
		for i := 0; i < trials; i++ {
			dec, err := core.Run(g, core.Options{K: k, C: c, Seed: cfg.Seed + uint64(i)*613})
			if err != nil {
				return nil, err
			}
			if dec.TruncationEvents > 0 {
				bad++
			}
			events = append(events, float64(dec.TruncationEvents))
		}
		lo, hi := stats.WilsonCI(bad, trials, 1.96)
		t.AddRow(fmtF(c), fmt.Sprintf("%d/%d", bad, trials),
			fmtF(float64(bad)/float64(trials)), fmt.Sprintf("[%.2f,%.2f]", lo, hi),
			fmtF(2/c), fmtF(stats.Summarize(events).Mean))
	}
	t.AddNote("the empirical probability must sit below (typically far below) the union-bound 2/c, halving as c doubles")
	return t, nil
}

// T7SurvivalDecay reproduces Claim 6 and Corollary 7: a vertex survives t
// phases with probability at most (1−(cn)^{−1/k})^t, so the graph is
// exhausted within (cn)^{1/k}·ln(cn) phases with probability ≥ 1−1/c.
func T7SurvivalDecay(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	n := pick(cfg, 384, 2048)
	trials := cfg.trials(10, 40)
	g, err := gen.Build(gen.FamilyGnp, n, cfg.Seed+4)
	if err != nil {
		return nil, err
	}
	k := 4
	c := 8.0
	cn := c * float64(g.N())
	q := 1 - math.Pow(cn, -1/float64(k)) // per-phase survival upper bound
	t := &Table{
		ID:      "T7",
		Title:   fmt.Sprintf("survival decay (Gnp n=%d, k=%d, c=%.0f, %d trials)", g.N(), k, c, trials),
		Claim:   "Pr[v ∈ G_{t+1}] ≤ (1−(cn)^{−1/k})^t; graph exhausted in (cn)^{1/k}ln(cn) phases w.p. ≥ 1−1/c",
		Columns: []string{"phase t", "alive frac(mean)", "envelope q^t", "ratio"},
	}
	// Collect per-phase alive fractions across trials.
	perPhase := map[int][]float64{}
	complete := 0
	maxPhase := 0
	for i := 0; i < trials; i++ {
		dec, err := core.Run(g, core.Options{K: k, C: c, Seed: cfg.Seed + uint64(i)*827})
		if err != nil {
			return nil, err
		}
		if dec.Complete {
			complete++
		}
		for p, alive := range dec.AlivePerPhase {
			perPhase[p] = append(perPhase[p], float64(alive)/float64(g.N()))
			if p > maxPhase {
				maxPhase = p
			}
		}
	}
	for _, p := range checkpoints(maxPhase) {
		if _, ok := perPhase[p]; !ok {
			continue
		}
		// Runs that finished before phase p have alive fraction 0.
		vals := perPhase[p]
		for len(vals) < trials {
			vals = append(vals, 0)
		}
		mean := stats.Summarize(vals).Mean
		env := math.Pow(q, float64(p))
		ratio := 0.0
		if env > 0 {
			ratio = mean / env
		}
		t.AddRow(fmtInt(p), fmt.Sprintf("%.4f", mean), fmt.Sprintf("%.4f", env), fmtF(ratio))
	}
	t.AddNote("completion within theorem budget: %d/%d runs (bound allows ≥ %.2f)", complete, trials, (1-1/c)*float64(trials))
	t.AddNote("ratio ≈ 1 means Claim 6's geometric envelope is essentially tight; deviations within ~5%% of 1 are sampling noise of correlated trials")
	return t, nil
}

// checkpoints returns the phases at which T7 reports: 0,1,2,4,8,... up to
// the maximum.
func checkpoints(max int) []int {
	var cp []int
	for p := 0; p <= max; {
		cp = append(cp, p)
		switch {
		case p == 0:
			p = 1
		default:
			p *= 2
		}
	}
	if len(cp) == 0 || cp[len(cp)-1] != max {
		cp = append(cp, max)
	}
	return cp
}

// F1SurvivalCurve is the figure-shaped variant of T7: the full per-phase
// survival curve of one configuration against the geometric envelope.
func F1SurvivalCurve(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	n := pick(cfg, 384, 2048)
	trials := cfg.trials(10, 40)
	g, err := gen.Build(gen.FamilyGnp, n, cfg.Seed+5)
	if err != nil {
		return nil, err
	}
	k := 5
	c := 8.0
	cn := c * float64(g.N())
	q := 1 - math.Pow(cn, -1/float64(k))
	t := &Table{
		ID:      "F1",
		Title:   fmt.Sprintf("survival fraction per phase (Gnp n=%d, k=%d, mean of %d runs)", g.N(), k, trials),
		Claim:   "the alive-fraction series decays at least geometrically with rate 1−(cn)^{−1/k}",
		Columns: []string{"phase", "alive frac", "envelope"},
	}
	sums := map[int]float64{}
	maxPhase := 0
	for i := 0; i < trials; i++ {
		dec, err := core.Run(g, core.Options{K: k, C: c, Seed: cfg.Seed + uint64(i)*173})
		if err != nil {
			return nil, err
		}
		for p, alive := range dec.AlivePerPhase {
			sums[p] += float64(alive) / float64(g.N())
			if p > maxPhase {
				maxPhase = p
			}
		}
	}
	for p := 0; p <= maxPhase; p++ {
		mean := sums[p] / float64(trials) // absent phases contribute 0 (graph already empty)
		t.AddRow(fmtInt(p), fmt.Sprintf("%.4f", mean), fmt.Sprintf("%.4f", math.Pow(q, float64(p))))
		if mean == 0 {
			break
		}
	}
	return t, nil
}
