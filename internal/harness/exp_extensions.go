package harness

import (
	"fmt"
	"math"

	"netdecomp/internal/baseline"
	"netdecomp/internal/core"
	"netdecomp/internal/cover"
	"netdecomp/internal/decomp"
	"netdecomp/internal/gen"
	"netdecomp/internal/spanner"
	"netdecomp/internal/stats"
)

// A1ForwardingAblation is the design-choice ablation behind the paper's
// CONGEST claim (end of Section 2): forwarding the top TWO shifted values
// per round is exactly sufficient. keep=2 must match the exact per-center
// broadcast on every join decision; keep=1 visibly corrupts them, because
// the join rule m₁−m₂ > 1 needs the runner-up value that top-1 forwarding
// prunes upstream.
func A1ForwardingAblation(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	n := pick(cfg, 300, 2048)
	trials := cfg.trials(5, 25)
	t := &Table{
		ID:    "A1",
		Title: fmt.Sprintf("top-k forwarding ablation (Gnp n≈%d, %d trials)", n, trials),
		Claim: "keep=2 is lossless (Section 2 CONGEST argument); keep=1 is not",
		Columns: []string{"keep", "beta", "decision mism(sum)", "center mism(sum)",
			"joined/exact(mean)"},
	}
	g, err := gen.Build(gen.FamilyGnp, n, cfg.Seed+21)
	if err != nil {
		return nil, err
	}
	for _, keep := range []int{2, 1} {
		for _, beta := range []float64{0.5, 0.9} {
			dm, cm := 0, 0
			var ratio []float64
			for i := 0; i < trials; i++ {
				res, err := core.TopKForwardingAblation(g, cfg.Seed+uint64(i)*97, beta, 6, keep)
				if err != nil {
					return nil, err
				}
				dm += res.DecisionMismatches
				cm += res.CenterMismatches
				if res.JoinedExact > 0 {
					ratio = append(ratio, float64(res.Joined)/float64(res.JoinedExact))
				}
			}
			t.AddRow(fmtInt(keep), fmtF(beta), fmtInt(dm), fmtInt(cm),
				fmtF(stats.Summarize(ratio).Mean))
		}
	}
	t.AddNote("keep=2 rows must show zero mismatches; keep=1 rows show the information loss the paper's rule avoids")
	return t, nil
}

// T11NeighborhoodCovers reproduces the Section 1.1 connection to sparse
// neighborhood covers [ABCP92, AP92]: decomposing the power graph G^{2W+1}
// and expanding clusters by W yields a W-neighborhood cover of degree ≤ χ.
func T11NeighborhoodCovers(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	n := pick(cfg, 200, 1024)
	trials := cfg.trials(3, 8)
	families := []gen.Family{gen.FamilyGnp, gen.FamilyGrid}
	t := &Table{
		ID:    "T11",
		Title: fmt.Sprintf("W-neighborhood covers from the decomposition (n≈%d, %d trials)", n, trials),
		Claim: "every ball B(v,W) inside one cover set; degree ≤ χ; sets connected with bounded diameter",
		Columns: []string{"family", "W", "sets(mean)", "degree(max)", "chi(mean)",
			"diam(max)", "valid"},
	}
	for _, fam := range families {
		g, err := gen.Build(fam, n, cfg.Seed+uint64(fam)*23)
		if err != nil {
			return nil, err
		}
		for _, w := range []int{1, 2} {
			var sets, chis, diams []float64
			degree := 0
			valid := true
			for i := 0; i < trials; i++ {
				c, err := cover.Build(g, cover.Options{W: w, K: 4, Seed: cfg.Seed + uint64(i)*389})
				if err != nil {
					return nil, err
				}
				d, err := c.Verify(g)
				if err != nil {
					valid = false
					continue
				}
				sets = append(sets, float64(len(c.Clusters)))
				chis = append(chis, float64(c.Colors))
				diams = append(diams, float64(d))
				if c.Degree > degree {
					degree = c.Degree
				}
			}
			t.AddRow(fam.String(), fmtInt(w), fmtF(stats.Summarize(sets).Mean),
				fmtInt(degree), fmtF(stats.Summarize(chis).Mean),
				fmtF(stats.Summarize(diams).Max), fmt.Sprintf("%v", valid))
		}
	}
	t.AddNote("degree(max) ≤ chi confirms the disjointness of same-color expansions")
	return t, nil
}

// T12Spanners reproduces the Section 1.1 connection to sparse spanners and
// skeletons [DMP+05]: cluster BFS trees plus one bridge per adjacent
// cluster pair give a connected subgraph whose sparsity and stretch are
// governed by (D, χ).
func T12Spanners(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	n := pick(cfg, 300, 2048)
	trials := cfg.trials(3, 8)
	families := []gen.Family{gen.FamilyGnp, gen.FamilyRegular, gen.FamilyRingOfCliques}
	t := &Table{
		ID:    "T12",
		Title: fmt.Sprintf("skeleton spanners from the decomposition (n≈%d, k=⌈ln n⌉, %d trials)", n, trials),
		Claim: "connected skeleton with < n tree edges + one bridge per adjacent cluster pair; stretch bounded via D",
		Columns: []string{"family", "m(G)", "edges(mean)", "tree", "bridges",
			"stretch max", "stretch mean"},
	}
	for _, fam := range families {
		g, err := gen.Build(fam, n, cfg.Seed+uint64(fam)*29)
		if err != nil {
			return nil, err
		}
		k := int(math.Ceil(math.Log(float64(g.N()))))
		var edges, trees, bridges, smax, smean []float64
		for i := 0; i < trials; i++ {
			dec, err := core.Run(g, core.Options{K: k, C: 8, Seed: cfg.Seed + uint64(i)*443, ForceComplete: true})
			if err != nil {
				return nil, err
			}
			sp, err := spanner.Build(g, decomp.FromCore(dec))
			if err != nil {
				return nil, err
			}
			mx, mn, err := sp.StretchSample(g, cfg.Seed+uint64(i), 40)
			if err != nil {
				return nil, err
			}
			edges = append(edges, float64(sp.Edges))
			trees = append(trees, float64(sp.TreeEdges))
			bridges = append(bridges, float64(sp.BridgeEdges))
			smax = append(smax, mx)
			smean = append(smean, mn)
		}
		t.AddRow(fam.String(), fmtInt(g.M()), fmtF(stats.Summarize(edges).Mean),
			fmtF(stats.Summarize(trees).Mean), fmtF(stats.Summarize(bridges).Mean),
			fmtF(stats.Summarize(smax).Max), fmtF(stats.Summarize(smean).Mean))
	}
	t.AddNote("on dense inputs the skeleton keeps a small fraction of m while staying connected with modest stretch")
	return t, nil
}

// T13SequentialYardstick compares the distributed Elkin–Neiman
// decomposition against the classic deterministic sequential ball-carving
// construction (the existence argument for strong (O(log n), O(log n))
// decompositions). The paper's point is exactly this gap: the sequential
// construction is easy but inherently global; EN achieves comparable
// quality in O(log² n) distributed rounds.
func T13SequentialYardstick(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	n := pick(cfg, 384, 2048)
	trials := cfg.trials(3, 10)
	families := []gen.Family{gen.FamilyGnp, gen.FamilyGrid, gen.FamilyTree}
	t := &Table{
		ID:    "T13",
		Title: fmt.Sprintf("EN (distributed) vs sequential ball carving (n≈%d, k=⌈ln n⌉, %d trials)", n, trials),
		Claim: "EN matches the sequential existence bound — strong O(log n) diameter, O(log n) colors — while running distributedly",
		Columns: []string{"family", "EN sdiam", "EN colors", "EN rounds", "BC sdiam", "BC colors",
			"BC bound 2k", "lnN"},
	}
	for _, fam := range families {
		g, err := gen.Build(fam, n, cfg.Seed+uint64(fam)*41)
		if err != nil {
			return nil, err
		}
		k := int(math.Ceil(math.Log(float64(g.N()))))
		var enD, enC, enR []float64
		for i := 0; i < trials; i++ {
			dec, err := core.Run(g, core.Options{K: k, C: 8, Seed: cfg.Seed + uint64(i)*577, ForceComplete: true})
			if err != nil {
				return nil, err
			}
			d, ok := dec.StrongDiameter(g)
			if !ok {
				return nil, fmt.Errorf("harness: EN cluster disconnected")
			}
			enD = append(enD, float64(d))
			enC = append(enC, float64(dec.Colors))
			enR = append(enR, float64(dec.Rounds))
		}
		bc, err := baseline.BallCarving(g, baseline.BCOptions{K: k})
		if err != nil {
			return nil, err
		}
		bcD, disc := bc.StrongDiameter(g)
		if disc != 0 {
			return nil, fmt.Errorf("harness: ball carving produced disconnected cluster")
		}
		t.AddRow(fam.String(), fmtF(stats.Summarize(enD).Max), fmtF(stats.Summarize(enC).Mean),
			fmtF(stats.Summarize(enR).Mean), fmtInt(bcD), fmtInt(bc.Colors),
			fmtInt(2*k), fmtF(math.Log(float64(g.N()))))
	}
	t.AddNote("BC is deterministic and sequential (rounds not comparable); EN pays O(log² n) rounds for the same quality class")
	return t, nil
}
