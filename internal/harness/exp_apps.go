package harness

import (
	"context"
	"fmt"
	"math"

	"netdecomp/internal/apps"
	"netdecomp/internal/core"
	"netdecomp/internal/decomp"
	"netdecomp/internal/dist"
	"netdecomp/internal/gen"
	"netdecomp/internal/obs"
	"netdecomp/internal/pipeline"
	"netdecomp/internal/stats"
	"netdecomp/internal/verify"
)

// t9Algorithms are the registry names the application framework is
// exercised on: the decomposition the paper builds, the weak-diameter
// baseline it competes with, and the MPX partition (recolored greedily by
// apps.FromPartition, since a single-color partition carries no proper
// supergraph coloring).
var t9Algorithms = []string{"elkin-neiman", "linial-saks", "mpx"}

// T9Applications reproduces the Section 1.1 application framework: with a
// (D, χ) decomposition in hand, MIS, (Δ+1)-coloring and maximal matching
// each complete within O(D·χ) rounds by sweeping color classes, and the
// results are verified maximal/proper. The driver loops over registry
// names — every registered algorithm's Partition feeds the same
// applications. Luby's MIS and randomized coloring are the
// non-decomposition baselines.
func T9Applications(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	ctx := context.Background()
	n := pick(cfg, 384, 2048)
	trials := cfg.trials(3, 10)
	families := []gen.Family{gen.FamilyGnp, gen.FamilyGrid}
	t := &Table{
		ID:    "T9",
		Title: fmt.Sprintf("applications via any registered decomposition (n≈%d, k=⌈ln n⌉, %d trials)", n, trials),
		Claim: "MIS / (Δ+1)-coloring / maximal matching solvable in O(D·χ) rounds given a (D,χ) decomposition — from any algorithm",
		Columns: []string{"family", "algo", "D", "chi", "D*chi", "MIS rounds", "color rounds",
			"match rounds", "Luby rounds", "randcol rounds", "all valid"},
	}
	for _, fam := range families {
		g, err := gen.Build(fam, n, cfg.Seed+uint64(fam)*17)
		if err != nil {
			return nil, err
		}
		k := int(math.Ceil(math.Log(float64(g.N()))))
		for _, algo := range t9Algorithms {
			// Compile once per algorithm; the trial loop derives per-seed
			// plans and runs them through the shared serving session.
			pl, err := decomp.Compile(algo,
				decomp.WithK(k), decomp.WithC(8), decomp.WithForceComplete())
			if err != nil {
				return nil, err
			}
			// The whole application chain — decompose → recolor →
			// {MIS, coloring, matching} — is one typed pipeline per trial,
			// and all trials fan out into a single DAG the executor runs
			// level-parallel through the shared session.
			b := pipeline.NewBuilder()
			sid := func(kind string, i int) string { return fmt.Sprintf("%s/%d", kind, i) }
			for i := 0; i < trials; i++ {
				seed := cfg.Seed + uint64(i)*431
				b.AddStage(sid("dec", i), pipeline.Decompose(pl.WithSeed(seed))).
					AddStage(sid("re", i), pipeline.Recolor()).
					AddStage(sid("mis", i), pipeline.MIS()).
					AddStage(sid("col", i), pipeline.Coloring()).
					AddStage(sid("mat", i), pipeline.Matching()).
					AddEdge(sid("dec", i), sid("re", i)).
					AddEdge(sid("re", i), sid("mis", i)).
					AddEdge(sid("re", i), sid("col", i)).
					AddEdge(sid("re", i), sid("mat", i))
			}
			pipe, err := b.Build()
			if err != nil {
				return nil, err
			}
			res, err := runPipeline(ctx, pipe, g)
			if err != nil {
				return nil, err
			}
			var dMax, chiMean, dchi, misR, colR, matR, lubyR, randR []float64
			valid := true
			for i := 0; i < trials; i++ {
				seed := cfg.Seed + uint64(i)*431
				p := res.Partition(sid("dec", i))
				in := *res.Stage(sid("re", i)).AppInput
				// The sweep cost is governed by the diameter notion the
				// algorithm bounds: strong where clusters are connected,
				// weak otherwise.
				diam, disc := p.StrongDiameter(g)
				if p.Mode == decomp.WeakDiameter && disc > 0 {
					if diam, _ = p.WeakDiameter(g); diam == 0 {
						diam = 1
					}
				} else if disc > 0 {
					return nil, fmt.Errorf("harness: %s produced disconnected cluster", algo)
				}
				chi := 0
				for _, c := range in.Colors {
					if c+1 > chi {
						chi = c + 1
					}
				}
				mis := res.Stage(sid("mis", i)).MIS
				col := res.Stage(sid("col", i)).Coloring
				mat := res.Stage(sid("mat", i)).Matching
				luby, err := apps.LubyMIS(g, seed)
				if err != nil {
					return nil, err
				}
				randCol, err := apps.RandomColoring(g, seed)
				if err != nil {
					return nil, err
				}
				if verify.MIS(g, mis.InSet) != nil ||
					verify.Coloring(g, col.Colors, g.MaxDegree()+1) != nil ||
					verify.Matching(g, mat.Mate) != nil ||
					verify.MIS(g, luby.InSet) != nil ||
					verify.Coloring(g, randCol.Colors, g.MaxDegree()+1) != nil {
					valid = false
				}
				dMax = append(dMax, float64(diam))
				chiMean = append(chiMean, float64(chi))
				dchi = append(dchi, float64(diam*chi))
				misR = append(misR, float64(mis.Rounds))
				colR = append(colR, float64(col.Rounds))
				matR = append(matR, float64(mat.Rounds))
				lubyR = append(lubyR, float64(luby.Rounds))
				randR = append(randR, float64(randCol.Rounds))
			}
			t.AddRow(fam.String(), algo, fmtF(stats.Summarize(dMax).Max), fmtF(stats.Summarize(chiMean).Mean),
				fmtF(stats.Summarize(dchi).Mean), fmtF(stats.Summarize(misR).Mean),
				fmtF(stats.Summarize(colR).Mean), fmtF(stats.Summarize(matR).Mean),
				fmtF(stats.Summarize(lubyR).Mean), fmtF(stats.Summarize(randR).Mean),
				fmt.Sprintf("%v", valid))
		}
	}
	t.AddNote("application rounds track D·χ (the framework's promise); Luby and random-palette coloring are the direct O(log n) baselines")
	return t, nil
}

// T10CongestAccounting reproduces the CONGEST claim at the end of Section
// 2: every message of the distributed execution carries O(1) words (at
// most two (center, value) entries), measured on the real message-passing
// engine with the goroutine-parallel scheduler. It also profiles the
// per-round activity the hot-path rebuild exploits: the mean fraction of
// nodes still live per round and the fraction of rounds that carry no
// messages at all — the sparsity that makes an O(frontier + messages)
// round loop pay off over an O(n) scan.
//
// The round profile is sourced from the telemetry registry: every run
// reports through a dist.Options.Recorder into the engine.round.*
// histograms, and the table's quantiles, means and quiet-round counts are
// read back out of the same instruments the /metrics endpoint would
// export — no hand-rolled observer aggregation.
func T10CongestAccounting(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	trials := cfg.trials(3, 10)
	ns := []int{256, pick(cfg, 512, 2048)}
	t := &Table{
		ID:    "T10",
		Title: fmt.Sprintf("CONGEST accounting and round profile on the message-passing engine (%d trials)", trials),
		Claim: "each message consists of O(1) words (≤ 2 entries of 2 words); totals grow with k·m per phase; most rounds move a tiny active frontier",
		Columns: []string{"n", "m", "k", "rounds(mean)", "messages(mean)", "words(mean)",
			"maxMsgWords", "msgs/(m·rounds)", "roundMsgs p50/p90/p99", "active/n(mean)", "quiet rounds"},
	}
	for _, n := range ns {
		g, err := gen.Build(gen.FamilyGnp, n, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		k := int(math.Ceil(math.Log(float64(g.N()))))
		// One registry per graph size; all trials accumulate into it.
		reg := obs.NewRegistry()
		rr := obs.New(reg, nil).Rounds()
		var rounds, msgs, words []float64
		maxWords := 0
		for i := 0; i < trials; i++ {
			dec, _, err := core.RunDistributedWithMetrics(context.Background(), g,
				core.Options{K: k, C: 8, Seed: cfg.Seed + uint64(i)*911},
				dist.Options{Parallel: true, Recorder: rr})
			if err != nil {
				return nil, err
			}
			rounds = append(rounds, float64(dec.Rounds))
			msgs = append(msgs, float64(dec.Messages))
			words = append(words, float64(dec.MsgWords))
			if dec.MaxMsgWords > maxWords {
				maxWords = dec.MaxMsgWords
			}
		}
		roundMsgs := reg.Histogram("engine.round.messages").Snapshot()
		roundActive := reg.Histogram("engine.round.active").Snapshot()
		totalRounds := reg.Counter("engine.rounds").Value()
		var quiet int64
		for _, b := range roundMsgs.Buckets {
			if b.Lo <= 0 { // bucket 0 collects the zero-message rounds
				quiet = b.Count
			}
		}
		rs, ms := stats.Summarize(rounds), stats.Summarize(msgs)
		density := ms.Mean / (float64(g.M()) * rs.Mean)
		t.AddRow(fmtInt(g.N()), fmtInt(g.M()), fmtInt(k), fmtF(rs.Mean), fmtF(ms.Mean),
			fmtF(stats.Summarize(words).Mean), fmtInt(maxWords), fmtF(density),
			fmtQuantiles(roundMsgs), fmtF(roundActive.Mean()/float64(g.N())),
			fmtF(float64(quiet)/float64(totalRounds)))
	}
	t.AddNote("maxMsgWords must be ≤ 4; msgs/(m·rounds) ≤ 2 shows the change-gated forwarding stays below one message per directed edge per round")
	t.AddNote("active/n and the quiet-round fraction profile the frontier sparsity the arena engine and worklist simulation exploit")
	t.AddNote("round profile read from the engine.round.* telemetry histograms (log-bucketed: quantiles within 2x)")
	return t, nil
}

// fmtQuantiles renders a histogram's p50/p90/p99 triple for a table cell.
func fmtQuantiles(s obs.HistogramSnapshot) string {
	return fmt.Sprintf("%s/%s/%s",
		fmtF(s.Quantile(0.5)), fmtF(s.Quantile(0.9)), fmtF(s.Quantile(0.99)))
}
