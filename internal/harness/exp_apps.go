package harness

import (
	"fmt"
	"math"

	"netdecomp/internal/apps"
	"netdecomp/internal/core"
	"netdecomp/internal/dist"
	"netdecomp/internal/gen"
	"netdecomp/internal/stats"
	"netdecomp/internal/verify"
)

// T9Applications reproduces the Section 1.1 application framework: with a
// (D, χ) decomposition in hand, MIS, (Δ+1)-coloring and maximal matching
// each complete within O(D·χ) rounds by sweeping color classes, and the
// results are verified maximal/proper. Luby's MIS is the
// non-decomposition baseline.
func T9Applications(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	n := pick(cfg, 384, 2048)
	trials := cfg.trials(3, 10)
	families := []gen.Family{gen.FamilyGnp, gen.FamilyGrid}
	t := &Table{
		ID:    "T9",
		Title: fmt.Sprintf("applications via decomposition (n≈%d, k=⌈ln n⌉, %d trials)", n, trials),
		Claim: "MIS / (Δ+1)-coloring / maximal matching solvable in O(D·χ) rounds given a (D,χ) decomposition",
		Columns: []string{"family", "D", "chi", "D*chi", "MIS rounds", "color rounds",
			"match rounds", "Luby rounds", "randcol rounds", "all valid"},
	}
	for _, fam := range families {
		g, err := gen.Build(fam, n, cfg.Seed+uint64(fam)*17)
		if err != nil {
			return nil, err
		}
		k := int(math.Ceil(math.Log(float64(g.N()))))
		var dMax, chiMean, dchi, misR, colR, matR, lubyR, randR []float64
		valid := true
		for i := 0; i < trials; i++ {
			seed := cfg.Seed + uint64(i)*431
			dec, err := core.Run(g, core.Options{K: k, C: 8, Seed: seed, ForceComplete: true})
			if err != nil {
				return nil, err
			}
			in, err := apps.FromCore(dec)
			if err != nil {
				return nil, err
			}
			diam, ok := dec.StrongDiameter(g)
			if !ok {
				return nil, fmt.Errorf("harness: disconnected cluster")
			}
			mis, err := apps.MIS(g, in)
			if err != nil {
				return nil, err
			}
			col, err := apps.Coloring(g, in)
			if err != nil {
				return nil, err
			}
			mat, err := apps.Matching(g, in)
			if err != nil {
				return nil, err
			}
			luby, err := apps.LubyMIS(g, seed)
			if err != nil {
				return nil, err
			}
			randCol, err := apps.RandomColoring(g, seed)
			if err != nil {
				return nil, err
			}
			if verify.MIS(g, mis.InSet) != nil ||
				verify.Coloring(g, col.Colors, g.MaxDegree()+1) != nil ||
				verify.Matching(g, mat.Mate) != nil ||
				verify.MIS(g, luby.InSet) != nil ||
				verify.Coloring(g, randCol.Colors, g.MaxDegree()+1) != nil {
				valid = false
			}
			dMax = append(dMax, float64(diam))
			chiMean = append(chiMean, float64(dec.Colors))
			dchi = append(dchi, float64(diam*dec.Colors))
			misR = append(misR, float64(mis.Rounds))
			colR = append(colR, float64(col.Rounds))
			matR = append(matR, float64(mat.Rounds))
			lubyR = append(lubyR, float64(luby.Rounds))
			randR = append(randR, float64(randCol.Rounds))
		}
		t.AddRow(fam.String(), fmtF(stats.Summarize(dMax).Max), fmtF(stats.Summarize(chiMean).Mean),
			fmtF(stats.Summarize(dchi).Mean), fmtF(stats.Summarize(misR).Mean),
			fmtF(stats.Summarize(colR).Mean), fmtF(stats.Summarize(matR).Mean),
			fmtF(stats.Summarize(lubyR).Mean), fmtF(stats.Summarize(randR).Mean),
			fmt.Sprintf("%v", valid))
	}
	t.AddNote("application rounds track D·χ (the framework's promise); Luby and random-palette coloring are the direct O(log n) baselines")
	return t, nil
}

// T10CongestAccounting reproduces the CONGEST claim at the end of Section
// 2: every message of the distributed execution carries O(1) words (at
// most two (center, value) entries), measured on the real message-passing
// engine with the goroutine-parallel scheduler.
func T10CongestAccounting(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	trials := cfg.trials(3, 10)
	ns := []int{256, pick(cfg, 512, 2048)}
	t := &Table{
		ID:    "T10",
		Title: fmt.Sprintf("CONGEST accounting on the message-passing engine (%d trials)", trials),
		Claim: "each message consists of O(1) words (≤ 2 entries of 2 words); totals grow with k·m per phase",
		Columns: []string{"n", "m", "k", "rounds(mean)", "messages(mean)", "words(mean)",
			"maxMsgWords", "msgs/(m·rounds)"},
	}
	for _, n := range ns {
		g, err := gen.Build(gen.FamilyGnp, n, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		k := int(math.Ceil(math.Log(float64(g.N()))))
		var rounds, msgs, words []float64
		maxWords := 0
		for i := 0; i < trials; i++ {
			dec, err := core.RunDistributed(g, core.Options{K: k, C: 8, Seed: cfg.Seed + uint64(i)*911},
				dist.Options{Parallel: true})
			if err != nil {
				return nil, err
			}
			rounds = append(rounds, float64(dec.Rounds))
			msgs = append(msgs, float64(dec.Messages))
			words = append(words, float64(dec.MsgWords))
			if dec.MaxMsgWords > maxWords {
				maxWords = dec.MaxMsgWords
			}
		}
		rs, ms := stats.Summarize(rounds), stats.Summarize(msgs)
		density := ms.Mean / (float64(g.M()) * rs.Mean)
		t.AddRow(fmtInt(g.N()), fmtInt(g.M()), fmtInt(k), fmtF(rs.Mean), fmtF(ms.Mean),
			fmtF(stats.Summarize(words).Mean), fmtInt(maxWords), fmtF(density))
	}
	t.AddNote("maxMsgWords must be ≤ 4; msgs/(m·rounds) ≤ 2 shows the change-gated forwarding stays below one message per directed edge per round")
	return t, nil
}
