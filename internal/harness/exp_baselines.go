package harness

import (
	"context"
	"fmt"
	"math"

	"netdecomp/internal/decomp"
	"netdecomp/internal/gen"
	"netdecomp/internal/pipeline"
	"netdecomp/internal/stats"
	"netdecomp/internal/verify"
)

// T5VersusLinialSaks reproduces the paper's central comparison: both
// algorithms deliver (O(log n), O(log n)) decompositions in polylog
// rounds, but Linial–Saks only bounds the *weak* diameter — its clusters
// can be disconnected in their induced subgraphs — while Elkin–Neiman
// bounds the strong diameter by 2k−2. Both contenders are pulled from the
// unified registry and measured through the one Partition type.
func T5VersusLinialSaks(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	ctx := context.Background()
	n := pick(cfg, 384, 2048)
	trials := cfg.trials(3, 10)
	families := []gen.Family{gen.FamilyGnp, gen.FamilyGrid, gen.FamilyRingOfCliques}
	t := &Table{
		ID:    "T5",
		Title: fmt.Sprintf("Elkin–Neiman vs Linial–Saks (n≈%d, k=⌈ln n⌉, %d trials)", n, trials),
		Claim: "EN strong diameter ≤ 2k−2 always; LS93 matches on weak diameter but its strong diameter is unbounded (disconnected clusters)",
		Columns: []string{"family", "EN sdiam", "EN colors", "EN rounds", "LS wdiam", "LS sdiam",
			"LS disc%", "LS colors", "LS rounds", "2k-2"},
	}
	for _, fam := range families {
		g, err := gen.Build(fam, n, cfg.Seed+uint64(fam)*5)
		if err != nil {
			return nil, err
		}
		k := int(math.Ceil(math.Log(float64(g.N()))))
		// One compile per contender; the seed sweep derives per-trial plans
		// and every execution goes through the shared serving session.
		opts := []decomp.Option{decomp.WithK(k), decomp.WithC(8), decomp.WithForceComplete()}
		en, err := decomp.Compile("elkin-neiman", opts...)
		if err != nil {
			return nil, err
		}
		ls, err := decomp.Compile("linial-saks", opts...)
		if err != nil {
			return nil, err
		}
		// Both contenders across all trials form one pipeline of mutually
		// independent decompose stages — a single level the executor runs
		// in parallel through the shared session.
		b := pipeline.NewBuilder()
		for i := 0; i < trials; i++ {
			seed := cfg.Seed + uint64(i)*271
			b.AddStage(fmt.Sprintf("en/%d", i), pipeline.Decompose(en.WithSeed(seed)))
			b.AddStage(fmt.Sprintf("ls/%d", i), pipeline.Decompose(ls.WithSeed(seed)))
		}
		p, err := b.Build()
		if err != nil {
			return nil, err
		}
		res, err := runPipeline(ctx, p, g)
		if err != nil {
			return nil, err
		}
		var enDiam, enColors, enRounds []float64
		var lsWeak, lsStrong, lsColors, lsRounds, lsDiscFrac []float64
		for i := 0; i < trials; i++ {
			enP := res.Partition(fmt.Sprintf("en/%d", i))
			d, disc := enP.StrongDiameter(g)
			if disc != 0 {
				return nil, fmt.Errorf("harness: EN cluster disconnected")
			}
			enDiam = append(enDiam, float64(d))
			enColors = append(enColors, float64(enP.Colors))
			enRounds = append(enRounds, float64(enP.Metrics.Rounds))

			lsP := res.Partition(fmt.Sprintf("ls/%d", i))
			wd, ok := lsP.WeakDiameter(g)
			if !ok {
				return nil, fmt.Errorf("harness: LS cluster spans components")
			}
			sd, lsDisc := lsP.StrongDiameter(g)
			lsWeak = append(lsWeak, float64(wd))
			lsStrong = append(lsStrong, float64(sd))
			lsDiscFrac = append(lsDiscFrac, 100*float64(lsDisc)/float64(len(lsP.Clusters)))
			lsColors = append(lsColors, float64(lsP.Colors))
			lsRounds = append(lsRounds, float64(lsP.Metrics.Rounds))
		}
		t.AddRow(fam.String(),
			fmtF(stats.Summarize(enDiam).Max), fmtF(stats.Summarize(enColors).Mean),
			fmtF(stats.Summarize(enRounds).Mean),
			fmtF(stats.Summarize(lsWeak).Max), fmtF(stats.Summarize(lsStrong).Max),
			fmtF(stats.Summarize(lsDiscFrac).Mean),
			fmtF(stats.Summarize(lsColors).Mean), fmtF(stats.Summarize(lsRounds).Mean),
			fmtInt(2*k-2))
	}
	t.AddNote("LS sdiam counts only LS93 clusters that happen to be connected; LS disc%% is the share with infinite strong diameter")
	return t, nil
}

// T8MPXPartition reproduces the Miller–Peng–Xu foundation: the cut-edge
// fraction scales linearly with β and cluster strong diameters stay within
// O(log n / β).
func T8MPXPartition(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	ctx := context.Background()
	n := pick(cfg, 400, 4096)
	trials := cfg.trials(5, 20)
	families := []gen.Family{gen.FamilyGnp, gen.FamilyGrid}
	t := &Table{
		ID:    "T8",
		Title: fmt.Sprintf("MPX shifted-exponential partition (n≈%d, %d trials)", n, trials),
		Claim: "Pr[edge cut] = O(β); strong cluster diameter O(log n / β) w.h.p.; clusters always connected; balls intersect few clusters",
		Columns: []string{"family", "beta", "cut(mean)", "cut/beta", "sdiam(max)",
			"sdiam·beta/lnN", "clusters(mean)", "disconnected", "ball∩(max)"},
	}
	for _, fam := range families {
		g, err := gen.Build(fam, n, cfg.Seed+uint64(fam)*11)
		if err != nil {
			return nil, err
		}
		lnN := math.Log(float64(g.N()))
		for _, beta := range []float64{0.1, 0.2, 0.3, 0.5} {
			// One plan per β; trials vary only the seed of the compiled plan.
			mpx, err := decomp.Compile("mpx", decomp.WithBeta(beta))
			if err != nil {
				return nil, err
			}
			// All trial seeds fan out as one single-level pipeline; the
			// executor runs them in parallel through the shared session.
			b := pipeline.NewBuilder()
			for i := 0; i < trials; i++ {
				b.AddStage(fmt.Sprintf("seed/%d", i), pipeline.Decompose(mpx.WithSeed(cfg.Seed+uint64(i)*523)))
			}
			pipe, err := b.Build()
			if err != nil {
				return nil, err
			}
			res, err := runPipeline(ctx, pipe, g)
			if err != nil {
				return nil, err
			}
			var cuts, diams, counts []float64
			disconnected := 0
			ballMax := 0
			for i := 0; i < trials; i++ {
				p := res.Partition(fmt.Sprintf("seed/%d", i))
				cuts = append(cuts, p.CutFraction)
				sd, disc := p.StrongDiameter(g)
				disconnected += disc
				diams = append(diams, float64(sd))
				counts = append(counts, float64(len(p.Clusters)))
				// Low-intersecting shape ([BEG15] connection): radius-1
				// balls should touch few clusters. Measure on the first
				// trial only (it is O(n·deg) work).
				if i == 0 {
					bm, _, err := verify.BallIntersections(g, p.ClusterOf, 1)
					if err != nil {
						return nil, err
					}
					ballMax = bm
				}
			}
			cs, ds := stats.Summarize(cuts), stats.Summarize(diams)
			t.AddRow(fam.String(), fmtF(beta), fmtF(cs.Mean), fmtF(cs.Mean/beta),
				fmtF(ds.Max), fmtF(ds.Max*beta/lnN), fmtF(stats.Summarize(counts).Mean),
				fmtInt(disconnected), fmtInt(ballMax))
		}
	}
	t.AddNote("cut/beta staying near a constant across β is the linear-in-β shape; disconnected must be 0")
	return t, nil
}
