package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:      "TX",
		Title:   "test table",
		Claim:   "something holds",
		Columns: []string{"a", "bb", "ccc"},
	}
	tab.AddRow("1", "2", "3")
	tab.AddRow("10", "20", "30")
	tab.AddNote("note %d", 1)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"TX", "test table", "something holds", "10", "note 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{ID: "TX", Columns: []string{"a", "b"}}
	tab.AddRow("1", `va"l,ue`)
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("csv header wrong: %q", out)
	}
	if !strings.Contains(out, `"va""l,ue"`) {
		t.Fatalf("csv quoting wrong: %q", out)
	}
}

func TestLookup(t *testing.T) {
	if Lookup("T1") == nil || Lookup("t10") == nil || Lookup("F3") == nil {
		t.Fatal("known experiment not found")
	}
	if Lookup("T99") != nil {
		t.Fatal("unknown experiment found")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.normalize()
	if c.Scale != ScaleSmall {
		t.Fatal("default scale wrong")
	}
	if c.trials(3, 10) != 3 {
		t.Fatal("small trials wrong")
	}
	c.Scale = ScaleFull
	if c.trials(3, 10) != 10 {
		t.Fatal("full trials wrong")
	}
	c.Trials = 7
	if c.trials(3, 10) != 7 {
		t.Fatal("override trials wrong")
	}
}

func TestCheckpoints(t *testing.T) {
	cp := checkpoints(10)
	want := []int{0, 1, 2, 4, 8, 10}
	if len(cp) != len(want) {
		t.Fatalf("checkpoints(10) = %v", cp)
	}
	for i := range want {
		if cp[i] != want[i] {
			t.Fatalf("checkpoints(10) = %v, want %v", cp, want)
		}
	}
	if cp := checkpoints(0); len(cp) != 1 || cp[0] != 0 {
		t.Fatalf("checkpoints(0) = %v", cp)
	}
}

// TestAllExperimentsRunSmall executes every driver at a reduced size; this
// is the integration test that the whole harness produces sane tables.
func TestAllExperimentsRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("harness integration test skipped in -short mode")
	}
	cfg := Config{Scale: ScaleSmall, Seed: 42, Trials: 2}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tab.ID != e.ID {
				t.Fatalf("driver %s returned table %s", e.ID, tab.ID)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("%s: row width %d != %d columns", e.ID, len(row), len(tab.Columns))
				}
			}
			var buf bytes.Buffer
			if err := tab.Render(&buf); err != nil {
				t.Fatal(err)
			}
			if err := tab.CSV(&buf); err != nil {
				t.Fatal(err)
			}
		})
	}
}
