// Package harness implements the experiment drivers that regenerate every
// table and figure of EXPERIMENTS.md. The paper is an extended abstract
// with no empirical section, so each experiment reproduces the *shape* of
// one theorem, lemma or claim (see DESIGN.md section 6 for the mapping):
// measured quantities are printed next to the bound the paper proves, and
// the recorded expectation is that the measurement respects the bound and
// scales the same way.
//
// Every driver is deterministic in Config.Seed and comes in two sizes:
// ScaleSmall (seconds; used by the bench_test.go targets and CI) and
// ScaleFull (the numbers recorded in EXPERIMENTS.md).
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Scale selects the experiment size.
type Scale int

// Experiment sizes. Values start at 1 so the zero value is detectable
// (Config.normalize defaults it to ScaleSmall).
const (
	ScaleSmall Scale = iota + 1
	ScaleFull
)

// Config parameterizes every experiment driver.
type Config struct {
	// Scale selects preset sizes; default ScaleSmall.
	Scale Scale
	// Seed makes the whole experiment reproducible; trial i of a driver
	// uses derived seed Seed+i.
	Seed uint64
	// Trials overrides the per-configuration repetition count when > 0.
	Trials int
}

// normalize applies defaults.
func (c Config) normalize() Config {
	if c.Scale == 0 {
		c.Scale = ScaleSmall
	}
	return c
}

// trials returns the repetition count: the explicit override, or the
// scale-dependent default.
func (c Config) trials(small, full int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Scale == ScaleFull {
		return full
	}
	return small
}

// pick returns the scale-appropriate value.
func pick[T any](c Config, small, full T) T {
	if c.Scale == ScaleFull {
		return full
	}
	return small
}

// Table is one reproduced table or figure: a titled grid of cells plus the
// paper claim it is checked against.
type Table struct {
	// ID is the experiment identifier (T1..T10, F1..F3).
	ID string
	// Title is the human-readable headline.
	Title string
	// Claim quotes the bound or behaviour the paper promises.
	Claim string
	// Columns and Rows hold the rendered grid.
	Columns []string
	Rows    [][]string
	// Notes hold derived observations (fitted exponents, violation
	// counts) appended below the grid.
	Notes []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a formatted note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, wdt := range widths {
		total += wdt + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (no claim/notes).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Driver runs one experiment.
type Driver func(Config) (*Table, error)

// Experiments enumerates every driver in document order; cmd/experiments
// and the benches iterate this registry.
func Experiments() []struct {
	ID   string
	Name string
	Run  Driver
} {
	return []struct {
		ID   string
		Name string
		Run  Driver
	}{
		{"T1", "Theorem 1 parameter sweep", T1Theorem1Sweep},
		{"T2", "Theorem 2 staged colors", T2Theorem2Staged},
		{"T3", "Theorem 3 high-radius regime", T3HighRadius},
		{"T4", "Headline (O(log n),O(log n)) scaling", T4HeadlineScaling},
		{"T5", "Strong vs weak: EN vs Linial–Saks", T5VersusLinialSaks},
		{"T6", "Lemma 1 truncation events", T6TruncationEvents},
		{"T7", "Claim 6 / Corollary 7 survival decay", T7SurvivalDecay},
		{"T8", "MPX padded partition", T8MPXPartition},
		{"T9", "Applications in O(D·chi) rounds", T9Applications},
		{"T10", "CONGEST message accounting", T10CongestAccounting},
		{"T11", "Neighborhood covers from decomposition", T11NeighborhoodCovers},
		{"T12", "Skeleton spanners from decomposition", T12Spanners},
		{"T13", "Sequential ball-carving yardstick", T13SequentialYardstick},
		{"T14", "Registry head-to-head sweep", T14RegistryHeadToHead},
		{"T15", "Dynamic churn repair vs recompute", T15ChurnRepair},
		{"F1", "Survival fraction curve", F1SurvivalCurve},
		{"F2", "Diameter/colors tradeoff frontier", F2TradeoffFrontier},
		{"F3", "Rounds scaling at k = ceil(ln n)", F3RoundsScaling},
		{"A1", "Top-k forwarding ablation", A1ForwardingAblation},
	}
}

// Lookup returns the driver with the given ID, or nil.
func Lookup(id string) Driver {
	for _, e := range Experiments() {
		if strings.EqualFold(e.ID, id) {
			return e.Run
		}
	}
	return nil
}

// fmtInt renders an int cell.
func fmtInt(v int) string { return fmt.Sprintf("%d", v) }

// fmtF renders a float cell with sensible precision.
func fmtF(v float64) string {
	if v == float64(int64(v)) && v < 1e9 && v > -1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}
