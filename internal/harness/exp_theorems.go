package harness

import (
	"fmt"
	"math"

	"netdecomp/internal/core"
	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/stats"
)

// enTrial is the per-run measurement extracted from one decomposition.
type enTrial struct {
	complete    bool
	truncations int
	strongDiam  int
	colors      int
	rounds      int
	phases      int
	messages    int64
}

// runEN executes one decomposition and measures it.
func runEN(g graph.Interface, o core.Options) (enTrial, error) {
	dec, err := core.Run(g, o)
	if err != nil {
		return enTrial{}, err
	}
	tr := enTrial{
		complete:    dec.Complete,
		truncations: dec.TruncationEvents,
		colors:      dec.Colors,
		rounds:      dec.Rounds,
		phases:      dec.PhasesUsed,
		messages:    dec.Messages,
	}
	diam, ok := dec.StrongDiameter(g)
	if !ok {
		return tr, fmt.Errorf("harness: decomposition produced a disconnected cluster")
	}
	tr.strongDiam = diam
	return tr, nil
}

// sweepEN aggregates trials of one configuration. diamsClean holds only
// the runs without truncation events — the conditioning under which the
// paper's 2k−2 bound is stated.
type sweepAgg struct {
	diams, colors, rounds []float64
	diamsClean            []float64
	truncatedRuns         int
	success               int
	trials                int
}

func aggregateEN(g graph.Interface, o core.Options, seed uint64, trials int) (sweepAgg, error) {
	var a sweepAgg
	a.trials = trials
	for i := 0; i < trials; i++ {
		o.Seed = seed + uint64(i)*7919
		tr, err := runEN(g, o)
		if err != nil {
			return a, err
		}
		if tr.complete {
			a.success++
		}
		a.diams = append(a.diams, float64(tr.strongDiam))
		if tr.truncations == 0 {
			a.diamsClean = append(a.diamsClean, float64(tr.strongDiam))
		} else {
			a.truncatedRuns++
		}
		a.colors = append(a.colors, float64(tr.colors))
		a.rounds = append(a.rounds, float64(tr.rounds))
	}
	return a, nil
}

// T1Theorem1Sweep reproduces Theorem 1: for each workload family and each
// radius parameter k, the measured strong diameter must stay within 2k−2,
// the color count within (cn)^{1/k}·ln(cn), and the round count within
// k·(cn)^{1/k}·ln(cn), with success probability ≥ 1 − 3/c.
func T1Theorem1Sweep(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	n := pick(cfg, 512, 4096)
	trials := cfg.trials(5, 20)
	families := []gen.Family{gen.FamilyGnp, gen.FamilyGrid, gen.FamilyTree}
	lnN := int(math.Ceil(math.Log(float64(n))))
	ks := []int{2, 3, 5, 8, lnN}

	t := &Table{
		ID:    "T1",
		Title: fmt.Sprintf("Theorem 1 sweep (n≈%d, c=8, %d trials)", n, trials),
		Claim: "strong (2k−2, (cn)^{1/k}·ln(cn)) decomposition in k·(cn)^{1/k}·ln(cn) rounds, w.p. ≥ 1−3/c",
		Columns: []string{"family", "k", "diam(clean)", "2k-2", "diam(all)", "trunc runs",
			"colors(mean)", "colorBound", "rounds(mean)", "roundBound", "success"},
	}
	cleanViolations := 0
	for _, fam := range families {
		g, err := gen.Build(fam, n, cfg.Seed+uint64(fam))
		if err != nil {
			return nil, err
		}
		for _, k := range ks {
			o := core.Options{Variant: core.Theorem1, K: k, C: 8}
			a, err := aggregateEN(g, o, cfg.Seed+uint64(k)*131, trials)
			if err != nil {
				return nil, err
			}
			dBound, err := core.TheoremDiameterBound(g.N(), o)
			if err != nil {
				return nil, err
			}
			cBound, err := core.TheoremColorBound(g.N(), o)
			if err != nil {
				return nil, err
			}
			rBound, err := core.TheoremRoundBound(g.N(), o)
			if err != nil {
				return nil, err
			}
			clean := stats.Summarize(a.diamsClean)
			if int(clean.Max) > dBound {
				cleanViolations++
			}
			t.AddRow(fam.String(), fmtInt(k), fmtF(clean.Max), fmtInt(dBound),
				fmtF(stats.Summarize(a.diams).Max), fmtInt(a.truncatedRuns),
				fmtF(stats.Summarize(a.colors).Mean), fmtF(cBound),
				fmtF(stats.Summarize(a.rounds).Mean), fmtF(rBound),
				fmt.Sprintf("%d/%d", a.success, a.trials))
		}
	}
	t.AddNote("diam(clean) is over runs without truncation events (Lemma 1's conditioning): bound violations there: %d (must be 0)", cleanViolations)
	t.AddNote("diam(all) includes the Pr ≤ 2/c truncated runs, where the bound may be exceeded — exactly the paper's failure mode")
	return t, nil
}

// T2Theorem2Staged reproduces Theorem 2: the staged β schedule brings the
// color count under 4k(cn)^{1/k} (beating Theorem 1's (cn)^{1/k}ln(cn) for
// small k) at the price of O(k²(cn)^{1/k}) rounds.
func T2Theorem2Staged(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	n := pick(cfg, 512, 4096)
	trials := cfg.trials(5, 20)
	g, err := gen.Build(gen.FamilyGnp, n, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "T2",
		Title: fmt.Sprintf("Theorem 2 staged schedule (Gnp n=%d, c=8, %d trials)", g.N(), trials),
		Claim: "strong (2k−2, 4k(cn)^{1/k}) decomposition in O(k²(cn)^{1/k}) rounds, w.p. ≥ 1−5/c",
		Columns: []string{"k", "diam(max)", "2k-2", "colors(mean)", "bound T2", "bound T1",
			"rounds(mean)", "roundBound", "success"},
	}
	for _, k := range []int{2, 3, 5, 8} {
		o2 := core.Options{Variant: core.Theorem2, K: k, C: 8}
		a, err := aggregateEN(g, o2, cfg.Seed+uint64(k)*977, trials)
		if err != nil {
			return nil, err
		}
		b2, err := core.TheoremColorBound(g.N(), o2)
		if err != nil {
			return nil, err
		}
		b1, err := core.TheoremColorBound(g.N(), core.Options{Variant: core.Theorem1, K: k, C: 8})
		if err != nil {
			return nil, err
		}
		r2, err := core.TheoremRoundBound(g.N(), o2)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtInt(k), fmtF(stats.Summarize(a.diams).Max), fmtInt(2*k-2),
			fmtF(stats.Summarize(a.colors).Mean), fmtF(b2), fmtF(b1),
			fmtF(stats.Summarize(a.rounds).Mean), fmtF(r2),
			fmt.Sprintf("%d/%d", a.success, a.trials))
	}
	t.AddNote("shape check: for small k the T2 color bound is far below T1's, and measured colors follow")
	return t, nil
}

// T3HighRadius reproduces Theorem 3 (Section 2.2): fixing the color budget
// λ and letting the radius grow as (cn)^{1/λ}·ln(cn).
func T3HighRadius(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	n := pick(cfg, 256, 2048)
	trials := cfg.trials(5, 15)
	g, err := gen.Build(gen.FamilyGnp, n, cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "T3",
		Title: fmt.Sprintf("Theorem 3 high-radius regime (Gnp n=%d, c=8, %d trials)", g.N(), trials),
		Claim: "strong (2(cn)^{1/λ}·ln(cn), λ) decomposition in λ(cn)^{1/λ}·ln(cn) rounds, w.p. ≥ 1−3/c",
		Columns: []string{"lambda", "colors(max)", "diam(max)", "diamBound", "rounds(mean)",
			"roundBound", "success"},
	}
	for _, lambda := range []int{1, 2, 3, 4} {
		o := core.Options{Variant: core.Theorem3, Lambda: lambda, C: 8}
		a, err := aggregateEN(g, o, cfg.Seed+uint64(lambda)*389, trials)
		if err != nil {
			return nil, err
		}
		dBound, err := core.TheoremDiameterBound(g.N(), o)
		if err != nil {
			return nil, err
		}
		rBound, err := core.TheoremRoundBound(g.N(), o)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtInt(lambda), fmtF(stats.Summarize(a.colors).Max),
			fmtF(stats.Summarize(a.diams).Max), fmtInt(dBound),
			fmtF(stats.Summarize(a.rounds).Mean), fmtF(rBound),
			fmt.Sprintf("%d/%d", a.success, a.trials))
	}
	t.AddNote("colors never exceed λ by construction; the cost moves into the diameter, inverse to T1")
	return t, nil
}

// T4HeadlineScaling reproduces the headline result: at k = ⌈ln n⌉ the
// decomposition is strong (O(log n), O(log n)) and the round count grows
// as O(log² n).
func T4HeadlineScaling(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	maxN := pick(cfg, 2048, 8192)
	trials := cfg.trials(3, 8)
	t := &Table{
		ID:    "T4",
		Title: fmt.Sprintf("headline scaling at k=⌈ln n⌉ (Gnp, %d trials)", trials),
		Claim: "strong (O(log n), O(log n)) network decomposition in O(log² n) rounds",
		Columns: []string{"n", "k", "diam(max)", "diam/lnN", "colors(mean)", "colors/lnN",
			"rounds(mean)", "rounds/ln²N", "success"},
	}
	var lnNs, rounds []float64
	for n := 256; n <= maxN; n *= 2 {
		g, err := gen.Build(gen.FamilyGnp, n, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		k := int(math.Ceil(math.Log(float64(n))))
		a, err := aggregateEN(g, core.Options{K: k, C: 8}, cfg.Seed+uint64(n)*13, trials)
		if err != nil {
			return nil, err
		}
		lnN := math.Log(float64(n))
		ds, cs, rs := stats.Summarize(a.diams), stats.Summarize(a.colors), stats.Summarize(a.rounds)
		t.AddRow(fmtInt(n), fmtInt(k), fmtF(ds.Max), fmtF(ds.Max/lnN),
			fmtF(cs.Mean), fmtF(cs.Mean/lnN), fmtF(rs.Mean), fmtF(rs.Mean/(lnN*lnN)),
			fmt.Sprintf("%d/%d", a.success, a.trials))
		lnNs = append(lnNs, lnN)
		rounds = append(rounds, rs.Mean)
	}
	if b, err := stats.LogLogSlope(lnNs, rounds); err == nil {
		t.AddNote("fitted exponent of rounds vs ln n: %.2f (the paper's O(log² n) is a ceiling; early exhaustion keeps the measured curve below exponent 2)", b)
	}
	return t, nil
}
