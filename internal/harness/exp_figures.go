package harness

import (
	"fmt"
	"math"

	"netdecomp/internal/baseline"
	"netdecomp/internal/core"
	"netdecomp/internal/gen"
	"netdecomp/internal/stats"
)

// F2TradeoffFrontier draws the diameter/colors tradeoff the two regimes
// span: Theorem 1 points (k sweep: tiny diameter, many colors) and
// Theorem 3 points (λ sweep: few colors, large diameter) on one graph.
func F2TradeoffFrontier(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	n := pick(cfg, 384, 2048)
	trials := cfg.trials(3, 10)
	g, err := gen.Build(gen.FamilyGnp, n, cfg.Seed+6)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "F2",
		Title:   fmt.Sprintf("diameter/colors frontier (Gnp n=%d, %d trials)", g.N(), trials),
		Claim:   "Theorems 1 and 3 are inverse tradeoffs: (2k−2, ~(cn)^{1/k}ln cn) vs (~2(cn)^{1/λ}ln cn, λ)",
		Columns: []string{"regime", "param", "diam(max)", "colors(mean)", "rounds(mean)", "success"},
	}
	for _, k := range []int{2, 3, 4, 6, 8} {
		a, err := aggregateEN(g, core.Options{Variant: core.Theorem1, K: k, C: 8}, cfg.Seed+uint64(k)*37, trials)
		if err != nil {
			return nil, err
		}
		t.AddRow("T1 k", fmtInt(k), fmtF(stats.Summarize(a.diams).Max),
			fmtF(stats.Summarize(a.colors).Mean), fmtF(stats.Summarize(a.rounds).Mean),
			fmt.Sprintf("%d/%d", a.success, a.trials))
	}
	for _, lambda := range []int{1, 2, 3, 4} {
		a, err := aggregateEN(g, core.Options{Variant: core.Theorem3, Lambda: lambda, C: 8}, cfg.Seed+uint64(lambda)*53, trials)
		if err != nil {
			return nil, err
		}
		t.AddRow("T3 λ", fmtInt(lambda), fmtF(stats.Summarize(a.diams).Max),
			fmtF(stats.Summarize(a.colors).Mean), fmtF(stats.Summarize(a.rounds).Mean),
			fmt.Sprintf("%d/%d", a.success, a.trials))
	}
	t.AddNote("reading down the rows, diameter rises as colors fall — the frontier the two theorems trace")
	return t, nil
}

// F3RoundsScaling compares the round growth of Elkin–Neiman and
// Linial–Saks at k=⌈ln n⌉ as n doubles: both are O(log² n), the paper's
// parity claim (EN achieves it with strong diameter).
func F3RoundsScaling(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	maxN := pick(cfg, 2048, 8192)
	trials := cfg.trials(3, 10)
	t := &Table{
		ID:      "F3",
		Title:   fmt.Sprintf("rounds vs n at k=⌈ln n⌉ (Gnp, %d trials)", trials),
		Claim:   "both algorithms run in O(log² n) rounds; EN additionally guarantees strong diameter",
		Columns: []string{"n", "k", "EN rounds", "LS rounds", "EN/ln²n", "LS/ln²n"},
	}
	var lnNs, enR, lsR []float64
	for n := 256; n <= maxN; n *= 2 {
		g, err := gen.Build(gen.FamilyGnp, n, cfg.Seed+uint64(n)*3)
		if err != nil {
			return nil, err
		}
		k := int(math.Ceil(math.Log(float64(g.N()))))
		var en, ls []float64
		for i := 0; i < trials; i++ {
			seed := cfg.Seed + uint64(i)*709
			dec, err := core.Run(g, core.Options{K: k, C: 8, Seed: seed, ForceComplete: true})
			if err != nil {
				return nil, err
			}
			en = append(en, float64(dec.Rounds))
			lsp, err := baseline.LinialSaks(g, baseline.LSOptions{K: k, C: 8, Seed: seed, ForceComplete: true})
			if err != nil {
				return nil, err
			}
			ls = append(ls, float64(lsp.Rounds))
		}
		lnN := math.Log(float64(n))
		es, lss := stats.Summarize(en), stats.Summarize(ls)
		t.AddRow(fmtInt(n), fmtInt(k), fmtF(es.Mean), fmtF(lss.Mean),
			fmtF(es.Mean/(lnN*lnN)), fmtF(lss.Mean/(lnN*lnN)))
		lnNs = append(lnNs, lnN)
		enR = append(enR, es.Mean)
		lsR = append(lsR, lss.Mean)
	}
	if b, err := stats.LogLogSlope(lnNs, enR); err == nil {
		t.AddNote("EN fitted exponent of rounds vs ln n: %.2f (O(log² n) ceiling; early exhaustion flattens the curve)", b)
	}
	if b, err := stats.LogLogSlope(lnNs, lsR); err == nil {
		t.AddNote("LS fitted exponent of rounds vs ln n: %.2f (same ceiling and same flattening)", b)
	}
	return t, nil
}
