package harness

import (
	"context"

	"netdecomp/internal/decomp"
	"netdecomp/internal/graph"
	"netdecomp/internal/pipeline"
	"netdecomp/internal/session"
)

// sharedSession is the one serving session every experiment driver
// executes compiled plans through. Sharing it across drivers is the point:
// trials that repeat a (graph, plan, seed) triple — across experiments,
// across bench iterations — are deduplicated and served from its result
// cache, the same way a production deployment would share one session
// across request handlers. Results are defensive clones, so drivers can
// slice and dice them freely.
var sharedSession = session.New(session.WithCacheSize(512))

// runPlan executes one compiled plan through the shared session.
func runPlan(ctx context.Context, pl *decomp.Plan, g graph.Interface) (*decomp.Partition, error) {
	return sharedSession.Run(ctx, pl, g)
}

// sharedExecutor runs stage pipelines through the shared session: every
// decompose stage of every experiment rides the same cache and dedup
// layer runPlan uses, and independent stages (trial fan-outs, contender
// pairs) execute level-parallel.
var sharedExecutor = pipeline.NewExecutor(pipeline.WithSession(sharedSession))

// runPipeline executes one validated stage DAG through the shared
// session.
func runPipeline(ctx context.Context, p *pipeline.Pipeline, g graph.Interface) (*pipeline.Result, error) {
	return sharedExecutor.Run(ctx, p, g)
}

// SessionStats exposes the shared session's counters, so callers (and the
// T14 table note) can report how much decomposition work the cache and
// dedup layer absorbed.
func SessionStats() session.Stats { return sharedSession.Stats() }
