package harness

// T15: dynamic churn. A serving-shaped workload against the internal/dyn
// maintenance engine: mutation batches arrive with Poisson-distributed
// sizes (mean lambda per batch), cluster-membership queries follow a Zipf
// law over vertex ids, and two Maintainers — one on the certified repair
// path, one forced to full recompute — consume identical batches. Each row
// checks the partitions stay bit-identical, reads repair and recompute
// latency quantiles from the dyn.repair.* histograms, and measures how
// often a hot vertex's cluster survives a batch untouched (assignment
// stability, the property that makes session caches worth invalidating
// narrowly).

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"

	"netdecomp/internal/decomp"
	"netdecomp/internal/dyn"
	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/obs"
)

// poissonDraw samples Poisson(lambda) via Knuth's product method —
// fine for the small means used here.
func poissonDraw(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// churnBatch builds a balanced batch: half deletions of present edges,
// half insertions of absent ones, every mutation effective.
func churnBatch(rng *rand.Rand, g graph.Interface, size int) dyn.Batch {
	n := g.N()
	muts := make([]dyn.Mutation, 0, size)
	for len(muts) < size/2 {
		u := rng.IntN(n)
		row := g.Neighbors(u)
		if len(row) == 0 {
			continue
		}
		muts = append(muts, dyn.Mutation{Op: dyn.OpDelete, U: int32(u), V: row[rng.IntN(len(row))]})
	}
	for len(muts) < size {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v || hasNeighbor(g, u, int32(v)) {
			continue
		}
		muts = append(muts, dyn.Mutation{Op: dyn.OpInsert, U: int32(u), V: int32(v)})
	}
	return dyn.Batch(muts)
}

func hasNeighbor(g graph.Interface, u int, v int32) bool {
	for _, w := range g.Neighbors(u) {
		if w == v {
			return true
		}
	}
	return false
}

// clusterID names v's cluster by its smallest member — stable across the
// index shuffling a repair may introduce, so it is the right notion of
// "same cluster" for the stability measurement.
func clusterID(p *decomp.Partition, v int) int {
	ci := p.ClusterOf[v]
	if ci < 0 {
		return -1
	}
	return p.Clusters[ci].Members[0]
}

// samePartition compares the observable content of two partitions.
func samePartition(a, b *decomp.Partition) bool {
	if a.Colors != b.Colors || a.Complete != b.Complete || len(a.ClusterOf) != len(b.ClusterOf) {
		return false
	}
	for v := range a.ClusterOf {
		if a.ClusterOf[v] != b.ClusterOf[v] {
			return false
		}
	}
	return true
}

// fmtMsQuantiles renders a nanosecond histogram's p50/p90/p99 in ms.
func fmtMsQuantiles(s obs.HistogramSnapshot) string {
	q := func(p float64) string { return fmt.Sprintf("%.2f", s.Quantile(p)/1e6) }
	return q(0.5) + "/" + q(0.9) + "/" + q(0.99)
}

// T15ChurnRepair runs the churn experiment.
func T15ChurnRepair(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	ctx := context.Background()
	n := pick(cfg, 1024, 4096)
	batches := cfg.trials(16, 40)
	queries := pick(cfg, 128, 512)
	lambdas := pick(cfg, []float64{2, 8, 32}, []float64{4, 16, 64})

	t := &Table{
		ID:    "T15",
		Title: "Dynamic churn: certified repair vs recompute",
		Claim: "Under Poisson mutation arrivals the incremental repair path stays " +
			"bit-identical to from-scratch decomposition while hot (Zipf-weighted) " +
			"cluster assignments survive most batches untouched.",
		Columns: []string{"lambda", "batches", "repairs", "fallbacks",
			"repair ms p50/p90/p99", "recomp ms p50/p90/p99", "speedup(p50)", "hot-stable"},
	}

	for _, lam := range lambdas {
		g, err := gen.Build(gen.FamilyTorus, n, cfg.Seed+61)
		if err != nil {
			return nil, err
		}
		pl, err := decomp.Compile("elkin-neiman",
			decomp.WithSeed(cfg.Seed+11), decomp.WithForceComplete())
		if err != nil {
			return nil, err
		}
		// Separate registries keep the histograms clean: a repair-side
		// fallback lands in its own dyn.repair.recompute.ns, not the
		// baseline's.
		regR, regC := obs.NewRegistry(), obs.NewRegistry()
		mr, err := dyn.NewMaintainer(ctx, pl, g, dyn.Config{Recorder: obs.New(regR, nil)})
		if err != nil {
			return nil, err
		}
		mc, err := dyn.NewMaintainer(ctx, pl, g, dyn.Config{
			ForceRecompute: true, Recorder: obs.New(regC, nil)})
		if err != nil {
			return nil, err
		}

		rng := rand.New(rand.NewPCG(uint64(cfg.Seed)+77, uint64(lam*1000)))
		zipf := rand.NewZipf(rng, 1.4, 1, uint64(n-1))
		cur := mr.Graph()
		stable, asked := 0, 0
		for b := 0; b < batches; b++ {
			size := poissonDraw(rng, lam)
			if size == 0 {
				size = 1
			}
			batch := churnBatch(rng, cur, size)
			next, res, err := dyn.Wrap(cur).Apply(batch)
			if err != nil {
				return nil, err
			}
			c := next.Compact()
			prev := mr.Partition()
			pR, _, err := mr.Update(ctx, c, res.Effective)
			if err != nil {
				return nil, err
			}
			pC, _, err := mc.Update(ctx, c, res.Effective)
			if err != nil {
				return nil, err
			}
			if !samePartition(pR, pC) {
				return nil, fmt.Errorf("T15: repair diverged from recompute at lambda=%g batch %d", lam, b)
			}
			// Zipf query mix: hot vertices dominate, so this measures the
			// stability a session cache actually experiences.
			for q := 0; q < queries; q++ {
				v := int(zipf.Uint64())
				if clusterID(prev, v) == clusterID(pR, v) {
					stable++
				}
				asked++
			}
			cur = c
		}

		hR := regR.Histogram("dyn.repair.ns").Snapshot()
		hC := regC.Histogram("dyn.repair.recompute.ns").Snapshot()
		repairs := int(regR.Counter("dyn.repair.repairs").Value())
		fallbacks := int(regR.Counter("dyn.repair.fallbacks").Value())
		speedup := "-"
		if repairs > 0 && hR.Quantile(0.5) > 0 {
			speedup = fmt.Sprintf("%.2fx", hC.Quantile(0.5)/hR.Quantile(0.5))
		}
		t.AddRow(fmtF(lam), fmtInt(batches), fmtInt(repairs), fmtInt(fallbacks),
			fmtMsQuantiles(hR), fmtMsQuantiles(hC), speedup,
			fmt.Sprintf("%.3f", float64(stable)/float64(asked)))
	}
	t.AddNote("torus n=%d, %d Zipf(1.4) queries per batch; batch sizes ~ Poisson(lambda), "+
		"balanced half-delete/half-insert; partitions verified bit-identical every batch", n, queries)
	return t, nil
}
