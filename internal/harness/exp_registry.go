package harness

import (
	"context"
	"fmt"
	"math"

	"netdecomp/internal/decomp"
	"netdecomp/internal/gen"
)

// T14RegistryHeadToHead is the unified-API sweep: every algorithm in the
// decomp registry decomposes the same graph under identical options, and
// the one Partition type reports completeness, quality and CONGEST cost
// side by side. New registrations appear in this table (and through it in
// cmd/experiments) with no harness changes — this is the head-to-head
// driver the registry redesign replaces the per-algorithm glue with.
func T14RegistryHeadToHead(cfg Config) (*Table, error) {
	cfg = cfg.normalize()
	ctx := context.Background()
	n := pick(cfg, 384, 2048)
	g, err := gen.Build(gen.FamilyGnp, n, cfg.Seed+51)
	if err != nil {
		return nil, err
	}
	k := int(math.Ceil(math.Log(float64(g.N()))))
	t := &Table{
		ID:    "T14",
		Title: fmt.Sprintf("registry head-to-head: every algorithm on Gnp n=%d (k=%d)", g.N(), k),
		Claim: "one Decompose call per registered name; one Partition type reports quality and cost for all of them",
		Columns: []string{"algo", "mode", "complete", "clusters", "colors", "sdiam", "disc",
			"wdiam", "rounds", "messages", "valid"},
	}
	for _, name := range decomp.Names() {
		pl, err := decomp.Compile(name,
			decomp.WithK(k), decomp.WithSeed(cfg.Seed), decomp.WithForceComplete())
		if err != nil {
			return nil, err
		}
		p, err := runPlan(ctx, pl, g)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		sd, disc := p.StrongDiameter(g)
		sdCell := fmtInt(sd)
		if disc > 0 {
			sdCell = "inf"
		}
		wdCell := "inf"
		if wd, ok := p.WeakDiameter(g); ok {
			wdCell = fmtInt(wd)
		}
		t.AddRow(name, p.Mode.String(), fmt.Sprintf("%v", p.Complete),
			fmtInt(len(p.Clusters)), fmtInt(p.Colors), sdCell, fmtInt(disc), wdCell,
			fmtInt(p.Metrics.Rounds), fmt.Sprintf("%d", p.Metrics.Messages),
			fmt.Sprintf("%v", p.Verify(g).Valid()))
	}
	t.AddNote("sdiam=inf marks weak-diameter algorithms with disconnected clusters; valid applies each mode's own invariants")
	st := SessionStats()
	t.AddNote("serving session to date: %d hits, %d misses, %d dedups (repeated (graph, plan, seed) work is cached)",
		st.Hits, st.Misses, st.Dedups)
	if h := sharedSession.Registry().Histogram("session.miss.ns").Snapshot(); h.Count > 0 {
		t.AddNote("session execution latency to date (ns, from the telemetry registry): p50/p90/p99 = %s over %d misses",
			fmtQuantiles(h), h.Count)
	}
	return t, nil
}
