package stats

import (
	"math"
	"testing"
	"testing/quick"

	"netdecomp/internal/randx"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if !almost(s.Std, math.Sqrt(2.5), 1e-12) {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary wrong: %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Fatalf("single summary wrong: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {0.25, 17.5}, {-1, 10}, {2, 40},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile not 0")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated input")
	}
}

func TestWilsonCI(t *testing.T) {
	lo, hi := WilsonCI(50, 100, 1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("CI [%v,%v] should straddle 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Fatalf("CI too wide: [%v,%v]", lo, hi)
	}
	lo, hi = WilsonCI(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Fatalf("empty CI = [%v,%v]", lo, hi)
	}
	lo, hi = WilsonCI(0, 50, 1.96)
	if lo != 0 || hi < 0.01 || hi > 0.2 {
		t.Fatalf("zero-success CI = [%v,%v]", lo, hi)
	}
	lo, hi = WilsonCI(50, 50, 1.96)
	if hi != 1 || lo > 0.99 || lo < 0.8 {
		t.Fatalf("all-success CI = [%v,%v]", lo, hi)
	}
}

func TestLogLogSlopeRecoversExponent(t *testing.T) {
	// y = 3 x^2.5 exactly.
	var xs, ys []float64
	for _, x := range []float64{2, 4, 8, 16, 32} {
		xs = append(xs, x)
		ys = append(ys, 3*math.Pow(x, 2.5))
	}
	b, err := LogLogSlope(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(b, 2.5, 1e-9) {
		t.Fatalf("slope = %v, want 2.5", b)
	}
}

func TestLogLogSlopeErrors(t *testing.T) {
	if _, err := LogLogSlope([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := LogLogSlope([]float64{-1, -2}, []float64{1, 2}); err == nil {
		t.Fatal("no positive points accepted")
	}
}

func TestSlope(t *testing.T) {
	b, err := Slope([]float64{0, 1, 2, 3}, []float64{5, 7, 9, 11})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(b, 2, 1e-12) {
		t.Fatalf("slope = %v, want 2", b)
	}
	if _, err := Slope([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("degenerate x accepted")
	}
	if _, err := Slope([]float64{1}, []float64{2}); err == nil {
		t.Fatal("single point accepted")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); !almost(g, 10, 1e-9) {
		t.Fatalf("geomean = %v, want 10", g)
	}
	if g := GeoMean([]float64{-5, 0}); g != 0 {
		t.Fatalf("geomean of nonpositive = %v", g)
	}
}

// TestQuickQuantileWithinRange: quantiles always lie within [min, max].
func TestQuickQuantileWithinRange(t *testing.T) {
	f := func(seed uint64, qRaw uint8) bool {
		rng := randx.New(seed)
		n := rng.Intn(50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*200 - 100
		}
		q := float64(qRaw) / 255
		v := Quantile(xs, q)
		s := Summarize(xs)
		return v >= s.Min-1e-9 && v <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWilsonOrdered: CI bounds are ordered and contain p-hat.
func TestQuickWilsonOrdered(t *testing.T) {
	f := func(kRaw, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		k := int(kRaw) % (n + 1)
		lo, hi := WilsonCI(k, n, 1.96)
		p := float64(k) / float64(n)
		return lo <= p+1e-9 && p <= hi+1e-9 && lo >= 0 && hi <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
