// Package stats provides the small statistical toolkit the experiment
// harness uses to aggregate repeated randomized runs: summary statistics,
// quantiles, binomial confidence intervals for success probabilities, and
// log-log regression for extracting empirical scaling exponents.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual aggregate statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. An empty sample yields the zero
// Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	ss := 0.0
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g std=%.3g min=%.3g med=%.3g max=%.3g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation on the sorted sample. It returns 0 for an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// WilsonCI returns the Wilson score confidence interval for a binomial
// proportion with successes k out of n trials at the given z (1.96 for
// 95%). It returns (0, 1) for n == 0.
func WilsonCI(k, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// LogLogSlope fits y = a·x^b by least squares on (ln x, ln y) and returns
// the exponent b. It requires at least two points with positive
// coordinates and returns an error otherwise. This is how the scaling
// experiments extract "rounds grow like log² n"-style exponents.
func LogLogSlope(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: mismatched lengths %d and %d", len(xs), len(ys))
	}
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return 0, fmt.Errorf("stats: need at least 2 positive points, have %d", len(lx))
	}
	return slope(lx, ly)
}

// Slope fits y = a + b·x by least squares and returns b.
func Slope(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: mismatched lengths %d and %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: need at least 2 points, have %d", len(xs))
	}
	return slope(xs, ys)
}

func slope(xs, ys []float64) (float64, error) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0, fmt.Errorf("stats: degenerate x values")
	}
	return (n*sxy - sx*sy) / denom, nil
}

// GeoMean returns the geometric mean of positive samples; zero and
// negative entries are ignored. It returns 0 when nothing remains.
func GeoMean(xs []float64) float64 {
	sum := 0.0
	count := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return math.Exp(sum / float64(count))
}
