package session

// Stable JSON for the session counters: hand-rolled with frozen field
// order so API responses and snapshot metadata are byte-diffable in tests
// (the decomp.Partition document follows the same convention; see
// internal/decomp/json.go).

import "strconv"

// MarshalJSON renders the stats with frozen field order: hits, misses,
// dedups, evictions, observerPanics, execPanics, inFlight, cached.
func (st Stats) MarshalJSON() ([]byte, error) {
	b := []byte{'{'}
	field := func(name string, v uint64, last bool) {
		b = strconv.AppendQuote(b, name)
		b = append(b, ':')
		b = strconv.AppendUint(b, v, 10)
		if !last {
			b = append(b, ',')
		}
	}
	field("hits", st.Hits, false)
	field("misses", st.Misses, false)
	field("dedups", st.Dedups, false)
	field("evictions", st.Evictions, false)
	field("observerPanics", st.ObserverPanics, false)
	field("execPanics", st.ExecPanics, false)
	field("inFlight", uint64(st.InFlight), false)
	field("cached", uint64(st.Cached), true)
	b = append(b, '}')
	return b, nil
}
