package session

import (
	"encoding/json"
	"testing"
)

// TestStatsJSONStable pins the stats document: frozen field order, plain
// integers, byte-diffable.
func TestStatsJSONStable(t *testing.T) {
	st := Stats{Hits: 5, Misses: 2, Dedups: 1, Evictions: 3, ObserverPanics: 0, ExecPanics: 6, InFlight: 4, Cached: 7}
	const want = `{"hits":5,"misses":2,"dedups":1,"evictions":3,"observerPanics":0,"execPanics":6,"inFlight":4,"cached":7}`
	got, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatalf("unstable marshal:\n got %s\nwant %s", got, want)
	}
	var m map[string]uint64
	if err := json.Unmarshal(got, &m); err != nil {
		t.Fatalf("document does not parse: %v", err)
	}
	if m["hits"] != 5 || m["cached"] != 7 {
		t.Fatalf("decoded document mangled: %v", m)
	}
}
