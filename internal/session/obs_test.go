package session_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"netdecomp/internal/decomp"
	"netdecomp/internal/dist"
	"netdecomp/internal/gen"
	"netdecomp/internal/obs"
	"netdecomp/internal/session"
)

// TestSessionObserverPanicIsolated pins the fan-out fault boundary: a
// panicking observer is quarantined and surfaced as an error to the job
// that attached it, while the shared execution completes, serves its
// other waiters, and still caches.
func TestSessionObserverPanicIsolated(t *testing.T) {
	gt := registerGate(t, "test/gate-obs-panic")
	g := gen.Grid(4, 4)
	s := session.New(session.WithWorkers(1))
	defer s.Close()
	pl, err := decomp.Compile(gt.name, decomp.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	jobA := s.SubmitObserved(ctx, pl, g, func(dist.RoundStats) { panic("observer bug") })
	<-gt.started
	seen := 0
	jobB := s.SubmitObserved(ctx, pl, g, func(dist.RoundStats) { seen++ })
	close(gt.release)

	if _, err := jobA.Wait(); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking observer's job returned err = %v, want observer-panic error", err)
	}
	p, err := jobB.Wait()
	if err != nil || p == nil {
		t.Fatalf("co-waiter got (%v, %v), want clean result", p, err)
	}
	// The gate emits two rounds; the healthy observer must see both (the
	// panicking one is disabled after its first call, not the fan-out).
	if seen != 2 {
		t.Fatalf("healthy observer saw %d rounds, want 2", seen)
	}
	st := s.Stats()
	if st.ObserverPanics != 1 {
		t.Fatalf("ObserverPanics = %d, want 1", st.ObserverPanics)
	}
	// The execution itself succeeded, so the partition is cached.
	rep := s.Submit(ctx, pl, g)
	if _, err := rep.Wait(); err != nil || !rep.CacheHit() {
		t.Fatalf("post-panic resubmit: err=%v hit=%v, want cached result", err, rep.CacheHit())
	}
}

// TestSessionRegistryMetrics checks that a session-served run lands its
// telemetry — session counters and latency histograms, plan latency,
// engine round counters, core phase histograms — in the session registry,
// and that the registry exports as Prometheus text.
func TestSessionRegistryMetrics(t *testing.T) {
	g, err := gen.Build(gen.FamilyGnp, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := session.New(session.WithWorkers(2))
	defer s.Close()
	pl, err := decomp.Compile("elkin-neiman", decomp.WithSeed(5), decomp.WithForceComplete())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Run(ctx, pl, g); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx, pl, g); err != nil { // cache hit
		t.Fatal(err)
	}

	reg := s.Registry()
	if reg == nil {
		t.Fatal("session registry is nil")
	}
	for name, want := range map[string]int64{
		"session.misses": 1,
		"session.hits":   1,
		"plan.runs":      1,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	for _, name := range []string{"engine.rounds", "engine.messages", "core.phases"} {
		if got := reg.Counter(name).Value(); got <= 0 {
			t.Errorf("%s = %d, want > 0", name, got)
		}
	}
	if h := reg.Histogram("session.miss.ns").Snapshot(); h.Count != 1 {
		t.Errorf("session.miss.ns count = %d, want 1", h.Count)
	}
	if h := reg.Histogram("session.hit.ns").Snapshot(); h.Count != 1 {
		t.Errorf("session.hit.ns count = %d, want 1", h.Count)
	}
	if h := reg.Histogram("plan.elkin-neiman.ns").Snapshot(); h.Count != 1 {
		t.Errorf("plan.elkin-neiman.ns count = %d, want 1", h.Count)
	}
	if h := reg.Histogram("core.round.frontier").Snapshot(); h.Count == 0 || h.Max > int64(g.N()) {
		t.Errorf("core.round.frontier = %+v, want non-empty with max <= n", h)
	}

	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"session_hits 1", "session_misses 1", "engine_rounds"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}

// TestSessionSharedRecorder checks WithRecorder: the session reports into
// the caller's registry/tracer, and a session-served job shows up as a
// job span with the plan span nested beneath it.
func TestSessionSharedRecorder(t *testing.T) {
	reg := obs.NewRegistry()
	trc := obs.NewTracer()
	s := session.New(session.WithWorkers(1), session.WithRecorder(obs.New(reg, trc)))
	defer s.Close()
	g := gen.Grid(6, 6)
	pl, err := decomp.Compile("elkin-neiman", decomp.WithSeed(2), decomp.WithForceComplete())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), pl, g); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("session.misses").Value(); got != 1 {
		t.Fatalf("shared registry session.misses = %d, want 1", got)
	}
	evs := trc.Events()
	if len(evs) < 4 {
		t.Fatalf("trace has %d events, want a job/plan/phase hierarchy", len(evs))
	}
	if evs[0].Name != "job" || evs[0].Ph != 'B' {
		t.Fatalf("first event = %+v, want job span begin", evs[0])
	}
	if evs[1].Name != "plan/elkin-neiman" || evs[1].TID != evs[0].TID {
		t.Fatalf("second event = %+v, want nested plan span on the job's thread", evs[1])
	}
	var phases, rounds int
	for _, e := range evs {
		switch {
		case e.Name == "phase" && e.Ph == 'B':
			phases++
		case e.Name == "round" && e.Ph == 'i':
			rounds++
		}
	}
	if phases == 0 || rounds == 0 {
		t.Fatalf("trace has %d phase spans and %d round events, want both > 0", phases, rounds)
	}
}
