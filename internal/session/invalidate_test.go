package session

import (
	"context"
	"testing"

	"netdecomp/internal/decomp"
	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

func TestInvalidateGraph(t *testing.T) {
	s := New(WithWorkers(2))
	defer s.Close()
	ctx := context.Background()

	pl, err := decomp.Compile("elkin-neiman", decomp.WithForceComplete(), decomp.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	g1 := gen.GnpConnected(randx.New(1), 60, 0.08)
	g2 := gen.GnpConnected(randx.New(2), 60, 0.08)

	// Warm the cache with both graphs under two seeds each.
	for _, g := range []*graph.Graph{g1, g2} {
		for seed := uint64(1); seed <= 2; seed++ {
			if _, err := s.Run(ctx, pl.WithSeed(seed), g); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := s.Stats().Cached; got != 4 {
		t.Fatalf("cached = %d, want 4", got)
	}

	removed := s.InvalidateGraph(graph.Fingerprint(g1))
	if removed != 2 {
		t.Fatalf("InvalidateGraph removed %d, want 2", removed)
	}
	if got := s.Stats().Cached; got != 2 {
		t.Fatalf("cached after invalidation = %d, want 2", got)
	}
	// The old-fingerprint entries are unreachable: resubmitting g1 is a
	// miss; g2's entries are untouched and still hit.
	before := s.Stats()
	if _, err := s.Run(ctx, pl.WithSeed(1), g1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx, pl.WithSeed(1), g2); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.Misses != before.Misses+1 {
		t.Fatalf("misses %d -> %d, want one new miss for the invalidated graph", before.Misses, after.Misses)
	}
	if after.Hits != before.Hits+1 {
		t.Fatalf("hits %d -> %d, want one hit for the untouched graph", before.Hits, after.Hits)
	}
	// Invalidation counts in its own counter, not evictions.
	if after.Evictions != 0 {
		t.Fatalf("evictions = %d, want 0", after.Evictions)
	}
	if got := s.Recorder().Counter("session.invalidations").Value(); got != 2 {
		t.Fatalf("session.invalidations = %d, want 2", got)
	}

	// Unknown fingerprints are a no-op.
	if got := s.InvalidateGraph(0xdeadbeef); got != 0 {
		t.Fatalf("InvalidateGraph(unknown) = %d, want 0", got)
	}
}
