package session

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"netdecomp/internal/decomp"
	"netdecomp/internal/dist"
	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

// fillSession runs seeds 0..seeds-1 of a small forced-complete plan
// through s and returns the plan, graph, and the partition served for each
// seed.
func fillSession(t *testing.T, s *Session, seeds int) (*decomp.Plan, []*decomp.Partition) {
	t.Helper()
	g := gen.Gnp(randx.New(11), 192, 0.05)
	pl, err := decomp.Compile("elkin-neiman", decomp.WithForceComplete())
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*decomp.Partition, seeds)
	for i := 0; i < seeds; i++ {
		p, err := s.Run(context.Background(), pl.WithSeed(uint64(i)), g)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = p
	}
	return pl, out
}

// sessionGraph rebuilds the deterministic graph fillSession decomposes.
func sessionGraph() *graph.Graph {
	return gen.Gnp(randx.New(11), 192, 0.05)
}

func TestSnapshotRoundTripProperty(t *testing.T) {
	// Random synthetic entries must survive Write → Read bit-for-bit
	// (reflect.DeepEqual on the decoded structures).
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		entries := make([]CacheEntry, rng.Intn(6)+1)
		for i := range entries {
			n := rng.Intn(40) + 2
			p := &decomp.Partition{
				Algorithm:    "synthetic",
				N:            n,
				ClusterOf:    make([]int, n),
				Colors:       rng.Intn(5) + 1,
				PhasesUsed:   rng.Intn(4),
				PhaseBudget:  rng.Intn(4) + 1,
				Complete:     rng.Intn(2) == 0,
				Mode:         decomp.StrongDiameter,
				ProperColors: true,
				CutEdges:     rng.Intn(10),
				CutFraction:  rng.Float64(),
			}
			p.Metrics.Rounds = rng.Intn(100)
			p.Metrics.Messages = rng.Int63n(1000)
			for r := 0; r < rng.Intn(4); r++ {
				p.Metrics.PerRound = append(p.Metrics.PerRound,
					dist.RoundStats{Round: r, Messages: rng.Int63n(50), Words: rng.Int63n(99), Active: rng.Intn(n)})
			}
			members := []int{}
			for v := 0; v < n; v++ {
				members = append(members, v)
				p.ClusterOf[v] = 0
			}
			p.Clusters = []decomp.Cluster{{Members: members, Center: rng.Intn(n), Color: rng.Intn(5)}}
			entries[i] = CacheEntry{
				Key:       Key{Graph: rng.Uint64(), Plan: rng.Uint64(), Seed: rng.Uint64()},
				Partition: p,
			}
		}
		meta := make([]byte, rng.Intn(64))
		rng.Read(meta)
		if len(meta) == 0 {
			meta = nil
		}
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, Snapshot{Entries: entries, Meta: meta}); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: read: %v", trial, err)
		}
		if !reflect.DeepEqual(got.Entries, entries) {
			t.Fatalf("trial %d: entries not restored equal", trial)
		}
		if !bytes.Equal(got.Meta, meta) {
			t.Fatalf("trial %d: meta not restored: got %x want %x", trial, got.Meta, meta)
		}
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	// Every single-byte corruption of a real snapshot must be rejected with
	// ErrCorruptSnapshot — never decoded into a served partition.
	s := New(WithWorkers(2), WithCacheSize(16))
	defer s.Close()
	fillSession(t, s, 3)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, Snapshot{Entries: s.ExportCache()}); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	if _, err := ReadSnapshot(bytes.NewReader(clean)); err != nil {
		t.Fatalf("clean snapshot rejected: %v", err)
	}
	// Flip one byte at a spread of offsets covering magic, hash and payload.
	offsets := []int{0, 5, 8, 20, 39, 40, 41, len(clean) / 2, len(clean) - 1}
	for _, off := range offsets {
		corrupt := append([]byte(nil), clean...)
		corrupt[off] ^= 0x40
		_, err := ReadSnapshot(bytes.NewReader(corrupt))
		if err == nil {
			t.Fatalf("offset %d: corruption not detected", off)
		}
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("offset %d: want ErrCorruptSnapshot, got %v", off, err)
		}
	}
	// Truncation at any point is also corruption.
	for _, cut := range []int{0, 4, 8, 39, 40, len(clean) - 1} {
		if _, err := ReadSnapshot(bytes.NewReader(clean[:cut])); !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("truncation at %d: want ErrCorruptSnapshot, got %v", cut, err)
		}
	}
}

func TestRecoverFromCorruptFileStartsCold(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	s := New(WithWorkers(2), WithCacheSize(16))
	fillSession(t, s, 2)
	if n, err := s.SnapshotToFile(path, []byte("meta")); err != nil || n != 2 {
		t.Fatalf("snapshot: n=%d err=%v", n, err)
	}
	s.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := New(WithWorkers(2), WithCacheSize(16))
	defer s2.Close()
	meta, restored, err := s2.RecoverFromFile(path)
	if !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("want ErrCorruptSnapshot, got %v", err)
	}
	if restored != 0 || meta != nil {
		t.Fatalf("corrupt recovery must restore nothing, got restored=%d meta=%q", restored, meta)
	}
	if st := s2.Stats(); st.Cached != 0 {
		t.Fatalf("session must start cold after corrupt snapshot, cached=%d", st.Cached)
	}
	// Cold but healthy: a fresh request is a miss that executes normally.
	pl, _ := decomp.Compile("elkin-neiman", decomp.WithForceComplete())
	if _, err := s2.Run(context.Background(), pl.WithSeed(0), sessionGraph()); err != nil {
		t.Fatalf("cold run after rejected snapshot: %v", err)
	}
	st := s2.Stats()
	if st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("want 0 hits / 1 miss after cold boot, got %+v", st)
	}
}

func TestRecoverMissingFileIsCleanColdStart(t *testing.T) {
	s := New(WithWorkers(1))
	defer s.Close()
	meta, n, err := s.RecoverFromFile(filepath.Join(t.TempDir(), "absent.bin"))
	if err != nil || n != 0 || meta != nil {
		t.Fatalf("missing file: meta=%q n=%d err=%v", meta, n, err)
	}
}

func TestSnapshotRestartServesIdenticalHits(t *testing.T) {
	// The acceptance-criteria shape at the session level: fill, snapshot,
	// "kill" (Close), reboot, re-request — every request is a cache hit
	// with a partition DeepEqual to the pre-restart serve.
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	const seeds = 4

	s := New(WithWorkers(2), WithCacheSize(32))
	pl, before := fillSession(t, s, seeds)
	if n, err := s.SnapshotToFile(path, nil); err != nil || n != seeds {
		t.Fatalf("snapshot: n=%d err=%v", n, err)
	}
	s.Close()

	s2 := New(WithWorkers(2), WithCacheSize(32))
	defer s2.Close()
	if _, restored, err := s2.RecoverFromFile(path); err != nil || restored != seeds {
		t.Fatalf("recover: restored=%d err=%v", restored, err)
	}
	g := gen.Gnp(randx.New(11), 192, 0.05)
	for i := 0; i < seeds; i++ {
		p, err := s2.Run(context.Background(), pl.WithSeed(uint64(i)), g)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, before[i]) {
			t.Fatalf("seed %d: restored partition differs from pre-restart serve", i)
		}
	}
	st := s2.Stats()
	if st.Hits != seeds || st.Misses != 0 {
		t.Fatalf("want %d hits / 0 misses after recovery, got hits=%d misses=%d", seeds, st.Hits, st.Misses)
	}
}

// TestSeedCacheRespectsLRUBound: a snapshot larger than the cache keeps
// only its most recently used tail.
func TestSeedCacheRespectsLRUBound(t *testing.T) {
	s := New(WithWorkers(1), WithCacheSize(2))
	defer s.Close()
	p := &decomp.Partition{Algorithm: "x", N: 1, ClusterOf: []int{0},
		Clusters: []decomp.Cluster{{Members: []int{0}}}}
	entries := []CacheEntry{
		{Key: Key{Seed: 1}, Partition: p},
		{Key: Key{Seed: 2}, Partition: p},
		{Key: Key{Seed: 3}, Partition: p},
		{Key: Key{Seed: 4}, Partition: nil}, // skipped
	}
	if n := s.SeedCache(entries); n != 3 {
		t.Fatalf("want 3 seeded, got %d", n)
	}
	if st := s.Stats(); st.Cached != 2 {
		t.Fatalf("want cache bounded at 2, got %d", st.Cached)
	}
	// The most recently seeded keys survive.
	s.mu.Lock()
	_, ok2 := s.items[Key{Seed: 2}]
	_, ok3 := s.items[Key{Seed: 3}]
	_, ok1 := s.items[Key{Seed: 1}]
	s.mu.Unlock()
	if ok1 || !ok2 || !ok3 {
		t.Fatalf("want seeds {2,3} cached, got 1=%v 2=%v 3=%v", ok1, ok2, ok3)
	}
}
