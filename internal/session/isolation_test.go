package session_test

// Failure-isolation and degraded-read contracts of the session: panicking
// executions become per-key errors instead of process crashes, WithRunner
// slots execution middleware under the cache, Peek serves cache-only
// reads, and deadline expiry resolves every deduplicated waiter without
// poisoning the cache.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netdecomp/internal/decomp"
	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/session"
)

// bomb is a registrable decomposer that waits for release, then panics.
// Registration is global and outlives the test (the golden-contract test
// later executes every registered algorithm), so the bomb is disarmed at
// test end and behaves as a well-formed deterministic decomposer after.
type bomb struct {
	name    string
	started chan struct{}
	release chan struct{}
	once    sync.Once
	armed   atomic.Bool
}

func registerBomb(t *testing.T, name string) *bomb {
	t.Helper()
	b := &bomb{name: name, started: make(chan struct{}), release: make(chan struct{})}
	b.armed.Store(true)
	t.Cleanup(func() { b.armed.Store(false) })
	decomp.Register(decomp.Func{AlgorithmName: name, Run: b.run})
	return b
}

func (b *bomb) run(ctx context.Context, g graph.Interface, cfg decomp.Config) (*decomp.Partition, error) {
	if !b.armed.Load() {
		members := make([]int, g.N())
		for v := range members {
			members[v] = v
		}
		return &decomp.Partition{
			Algorithm: b.name,
			N:         g.N(),
			Clusters:  []decomp.Cluster{{Members: members}},
			ClusterOf: make([]int, g.N()),
			Colors:    1,
			Complete:  true,
			Mode:      decomp.StrongDiameter,
		}, nil
	}
	b.once.Do(func() { close(b.started) })
	select {
	case <-b.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	panic("decomposer bug: slice out of range")
}

// TestSessionExecPanicIsolated pins the failure-isolation contract: a
// panicking decomposer resolves every waiter of the shared execution with
// an error, counts in ExecPanics, caches nothing, and leaves the session
// (and the process) fully serviceable.
func TestSessionExecPanicIsolated(t *testing.T) {
	b := registerBomb(t, "test/bomb-exec-panic")
	g := gen.Grid(4, 4)
	s := session.New(session.WithWorkers(2))
	defer s.Close()
	pl, err := decomp.Compile(b.name, decomp.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	first := s.Submit(ctx, pl, g)
	<-b.started
	const extra = 3
	jobs := make([]*session.Job, extra)
	for i := range jobs {
		jobs[i] = s.Submit(ctx, pl, g)
	}
	close(b.release)
	for i, j := range append([]*session.Job{first}, jobs...) {
		p, err := j.Wait()
		if err == nil || p != nil {
			t.Fatalf("waiter %d: p=%v err=%v, want execution-panic error", i, p, err)
		}
		if !strings.Contains(err.Error(), "execution panicked") {
			t.Fatalf("waiter %d: err = %v, want execution-panic error", i, err)
		}
	}
	st := s.Stats()
	if st.ExecPanics != 1 {
		t.Fatalf("ExecPanics = %d, want 1 (one shared execution)", st.ExecPanics)
	}
	if st.Cached != 0 {
		t.Fatalf("Cached = %d, want 0: a panicked execution must not cache", st.Cached)
	}
	// The session (and the worker that recovered) still serves real work.
	okPl, err := decomp.Compile("elkin-neiman", decomp.WithSeed(2), decomp.WithForceComplete())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx, okPl, g); err != nil {
		t.Fatalf("healthy run after panic: %v", err)
	}
}

// TestSessionWithRunner pins the middleware seam: a custom runner is
// invoked exactly once per execution (never per waiter, never on a cache
// hit), and a panicking runner is isolated like a panicking decomposer.
func TestSessionWithRunner(t *testing.T) {
	g := gen.Grid(5, 5)
	var mu sync.Mutex
	calls := 0
	s := session.New(session.WithRunner(func(ctx context.Context, pl *decomp.Plan, gr graph.Interface) (*decomp.Partition, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return pl.Run(ctx, gr)
	}))
	defer s.Close()
	pl, err := decomp.Compile("elkin-neiman", decomp.WithSeed(9), decomp.WithForceComplete())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cold, err := s.Run(ctx, pl, g)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.Run(ctx, pl, g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("cached result differs from the runner-produced one")
	}
	mu.Lock()
	got := calls
	mu.Unlock()
	if got != 1 {
		t.Fatalf("runner calls = %d, want 1 (cache hit must not re-run)", got)
	}

	boom := session.New(session.WithRunner(func(context.Context, *decomp.Plan, graph.Interface) (*decomp.Partition, error) {
		panic("injected")
	}))
	defer boom.Close()
	if _, err := boom.Run(ctx, pl, g); err == nil || !strings.Contains(err.Error(), "execution panicked") {
		t.Fatalf("panicking runner err = %v, want execution-panic error", err)
	}
	if st := boom.Stats(); st.ExecPanics != 1 {
		t.Fatalf("ExecPanics = %d, want 1", st.ExecPanics)
	}
}

// TestSessionPeek pins the cache-only read path: a miss schedules nothing
// and counts nothing, a hit clones and counts as a session hit.
func TestSessionPeek(t *testing.T) {
	g := gen.Grid(4, 4)
	s := session.New()
	defer s.Close()
	pl, err := decomp.Compile("elkin-neiman", decomp.WithSeed(4), decomp.WithForceComplete())
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := s.Peek(pl, g); ok || p != nil {
		t.Fatalf("Peek on cold cache = (%v, %v), want miss", p, ok)
	}
	st := s.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.InFlight != 0 {
		t.Fatalf("stats after cold Peek = %+v, want all zero (no scheduling, no miss)", st)
	}
	want, err := s.Run(context.Background(), pl, g)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := s.Peek(pl, g)
	if !ok {
		t.Fatal("Peek after Run missed")
	}
	if !reflect.DeepEqual(p, want) {
		t.Fatal("Peek result differs from the executed one")
	}
	// The clone is defensive: mutating it must not corrupt the cache.
	p.Colors = -1
	p2, _ := s.Peek(pl, g)
	if p2.Colors == -1 {
		t.Fatal("Peek returned a shared partition, want a clone")
	}
	if st := s.Stats(); st.Hits != 2 {
		t.Fatalf("Hits = %d, want 2 (two Peek hits)", st.Hits)
	}
	if p, ok := s.Peek(nil, g); ok || p != nil {
		t.Fatal("Peek(nil plan) must miss")
	}
	if p, ok := s.Peek(pl, nil); ok || p != nil {
		t.Fatal("Peek(nil graph) must miss")
	}
}

// TestSessionDeadlineExpiryAllWaiters is the cancellation-edge property
// test: N waiters dedup onto one in-flight execution whose budget
// expires; every waiter — the last one to abandon included — gets
// context.DeadlineExceeded, the poisoned key caches nothing, and the next
// submission of the same key executes fresh and succeeds.
func TestSessionDeadlineExpiryAllWaiters(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 4; trial++ {
		waiters := 2 + rng.Intn(4)
		t.Run(fmt.Sprintf("trial%d_waiters%d", trial, waiters), func(t *testing.T) {
			gt := registerGate(t, fmt.Sprintf("test/gate-deadline-%d", trial))
			g := gen.Grid(4, 4)
			s := session.New(session.WithWorkers(2))
			defer s.Close()
			pl, err := decomp.Compile(gt.name, decomp.WithSeed(uint64(trial)))
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			first := s.Submit(ctx, pl, g)
			<-gt.started // execution is in flight; everyone else dedups
			jobs := []*session.Job{first}
			for i := 1; i < waiters; i++ {
				jobs = append(jobs, s.Submit(ctx, pl, g))
			}
			var wg sync.WaitGroup
			errs := make([]error, waiters)
			for i, j := range jobs {
				wg.Add(1)
				go func(i int, j *session.Job) {
					defer wg.Done()
					_, errs[i] = j.Wait()
				}(i, j)
			}
			wg.Wait()
			for i, err := range errs {
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("waiter %d: err = %v, want context.DeadlineExceeded", i, err)
				}
			}
			st := s.Stats()
			if st.Misses != 1 || st.Dedups != uint64(waiters-1) {
				t.Fatalf("stats = %+v, want 1 miss and %d dedups", st, waiters-1)
			}
			if st.Cached != 0 {
				t.Fatalf("Cached = %d, want 0: an expired execution must not cache", st.Cached)
			}
			// The doomed flight's cancellation drains the gate; a fresh
			// submission of the same key must execute anew and succeed.
			close(gt.release)
			p, err := s.Run(context.Background(), pl, g)
			if err != nil || p == nil {
				t.Fatalf("fresh submission after expiry: p=%v err=%v", p, err)
			}
			if got := gt.runCount(); got != 2 {
				t.Fatalf("gate ran %d times, want 2 (expired + fresh)", got)
			}
		})
	}
}
