// Package session is the serving layer on top of compiled decomposition
// plans: a bounded worker pool that executes decomp.Plan jobs with
// singleflight deduplication of identical in-flight work and a
// size-bounded LRU cache of completed Partitions.
//
// The cache and dedup key is the triple
//
//	(graph.Fingerprint, Plan.PlanKey, seed)
//
// — the graph's content digest, the plan's semantic digest (every Config
// field except seed and observer), and the seed. Two submissions agreeing
// on the triple are guaranteed the same Partition (every algorithm is
// deterministic in its seed), so the session runs the work once: a second
// submission while the first is still executing attaches to it
// (deduplicated), and a submission after it completed is served from the
// cache. Served results are defensive Partition.Clone copies — callers can
// mutate what they receive without corrupting the cache or each other.
//
// Typical use:
//
//	s := session.New(session.WithWorkers(8), session.WithCacheSize(512))
//	defer s.Close()
//	pl, _ := decomp.Compile("elkin-neiman", decomp.WithForceComplete())
//	p, err := s.Run(ctx, pl.WithSeed(7), g)      // blocking
//	for r := range s.SubmitAll(ctx, reqs) { ... } // streaming batch
//	fmt.Println(s.Stats())                        // hits / misses / dedups
package session

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"netdecomp/internal/decomp"
	"netdecomp/internal/dist"
	"netdecomp/internal/graph"
	"netdecomp/internal/obs"
)

// ErrClosed is returned by submissions made after Close.
var ErrClosed = errors.New("session: closed")

// Key is the cache and dedup key triple: graph fingerprint × plan key ×
// seed. Distinct workloads collide with probability ~2⁻⁶⁴ per component
// (see graph.Fingerprint), which is the usual content-digest caching
// trade.
type Key struct {
	Graph uint64
	Plan  uint64
	Seed  uint64
}

// KeyFor returns the key a submission of pl on g would use.
func KeyFor(pl *decomp.Plan, g graph.Interface) Key {
	return Key{Graph: graph.Fingerprint(g), Plan: pl.PlanKey(), Seed: pl.Seed()}
}

// Stats is a point-in-time snapshot of the session counters. The same
// numbers — plus the latency histograms — live in the session's telemetry
// registry (Registry) under the session.* names; Stats remains as the
// programmatic convenience view.
type Stats struct {
	// Hits counts submissions served from the completed-result cache.
	Hits uint64
	// Misses counts submissions that scheduled a fresh execution.
	Misses uint64
	// Dedups counts submissions that attached to an identical in-flight
	// execution instead of scheduling their own.
	Dedups uint64
	// Evictions counts cache entries displaced by the LRU bound.
	Evictions uint64
	// ObserverPanics counts observer callbacks that panicked during the
	// round fan-out and were disabled (see SubmitObserved).
	ObserverPanics uint64
	// ExecPanics counts executions that panicked and were converted into
	// per-key errors instead of crashing the process (see WithRunner).
	ExecPanics uint64
	// InFlight is the number of executions currently scheduled or running.
	InFlight int
	// Cached is the number of completed results currently held.
	Cached int
}

// Option configures a Session.
type Option func(*Session)

// WithWorkers bounds the worker pool to n concurrent executions
// (default and minimum 1; the zero Session default is GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(s *Session) { s.workers = n }
}

// WithCacheSize bounds the completed-result LRU to n entries (default
// 256). n = 0 disables caching entirely — every submission either
// executes or dedups onto an in-flight execution.
func WithCacheSize(n int) Option {
	return func(s *Session) { s.cacheCap = n }
}

// Runner executes one compiled plan on one graph — the session's
// execution primitive. The default runner is Plan.Run; WithRunner
// replaces it, which is how the resilience layer's fault injector (and
// any other execution middleware) slots under the cache and dedup
// machinery: wrapped runs still dedup, still cache, still fan out
// observers.
type Runner func(ctx context.Context, pl *decomp.Plan, g graph.Interface) (*decomp.Partition, error)

// WithRunner replaces the execution primitive (nil keeps Plan.Run). The
// runner is invoked once per deduplicated execution, never per waiter,
// and runs panic-isolated: a panicking runner — injected fault or real
// decomposer bug — resolves that execution with an error for all its
// waiters, counts in session.exec.panics, and leaves the process alive.
func WithRunner(r Runner) Option {
	return func(s *Session) { s.runner = r }
}

// WithRecorder makes the session report into an externally owned
// telemetry recorder — typically obs.New(registry, tracer) shared with an
// exposition endpoint, so session counters, latency histograms and job
// spans land beside the engine metrics. Without this option the session
// creates a private metrics-only registry (no tracer); passing nil keeps
// that default.
func WithRecorder(rec *obs.Recorder) Option {
	return func(s *Session) { s.rec = rec }
}

// Session is the concurrent plan-execution service. It is safe for use by
// multiple goroutines; create one per process (or per tenant) and share
// it, so identical work is actually deduplicated.
type Session struct {
	workers  int
	cacheCap int
	runner   Runner // nil = Plan.Run

	// rec is the telemetry recorder; never nil after New. All session
	// instruments below are resolved once at construction so the submit
	// and execute paths never do a name lookup.
	rec         *obs.Recorder
	cHits       *obs.Counter
	cMisses     *obs.Counter
	cDedups     *obs.Counter
	cEvicted    *obs.Counter
	cPanics     *obs.Counter
	cExecPanics *obs.Counter
	cInvalid    *obs.Counter
	gInflight   *obs.Gauge
	gCached     *obs.Gauge
	hHit        *obs.Histogram
	hMiss       *obs.Histogram
	hDedup      *obs.Histogram

	wg sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond
	pending  []*flight
	closing  bool
	inflight map[Key]*flight
	items    map[Key]*list.Element
	order    *list.List // front = most recently used
}

// cacheEntry is one LRU slot.
type cacheEntry struct {
	key Key
	p   *decomp.Partition
}

// flight is one scheduled execution plus everyone waiting on it.
type flight struct {
	s    *Session
	key  Key
	plan *decomp.Plan
	g    graph.Interface

	runCtx context.Context
	cancel context.CancelFunc

	obsMu     sync.Mutex
	observers []*obsEntry

	waiters int // guarded by s.mu; at 0 the execution is cancelled

	done chan struct{}
	p    *decomp.Partition
	err  error
}

// obsEntry is one attached round observer plus the job it belongs to. The
// failed flag quarantines an observer that panicked: it is written and
// read only on the goroutine driving the execution (broadcast is called
// from the engine loop), so it needs no lock.
type obsEntry struct {
	fn     func(dist.RoundStats)
	job    *Job
	failed bool
}

// New starts a Session with the given options.
func New(opts ...Option) *Session {
	s := &Session{
		workers:  runtime.GOMAXPROCS(0),
		cacheCap: 256,
		inflight: map[Key]*flight{},
		items:    map[Key]*list.Element{},
		order:    list.New(),
	}
	for _, o := range opts {
		o(s)
	}
	if s.workers < 1 {
		s.workers = 1
	}
	if s.cacheCap < 0 {
		s.cacheCap = 0
	}
	if s.rec == nil {
		s.rec = obs.New(obs.NewRegistry(), nil)
	}
	s.cHits = s.rec.Counter("session.hits")
	s.cMisses = s.rec.Counter("session.misses")
	s.cDedups = s.rec.Counter("session.dedups")
	s.cEvicted = s.rec.Counter("session.evictions")
	s.cPanics = s.rec.Counter("session.observer.panics")
	s.cExecPanics = s.rec.Counter("session.exec.panics")
	s.cInvalid = s.rec.Counter("session.invalidations")
	s.gInflight = s.rec.Gauge("session.inflight")
	s.gCached = s.rec.Gauge("session.cached")
	s.hHit = s.rec.Histogram("session.hit.ns")
	s.hMiss = s.rec.Histogram("session.miss.ns")
	s.hDedup = s.rec.Histogram("session.dedup.ns")
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(s.workers)
	for i := 0; i < s.workers; i++ {
		go s.worker()
	}
	return s
}

// Close stops accepting submissions, lets already-accepted work finish,
// and waits for the workers to exit. It is idempotent.
func (s *Session) Close() {
	s.mu.Lock()
	s.closing = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}

// Run submits one job and blocks until its result (or ctx expiry).
func (s *Session) Run(ctx context.Context, pl *decomp.Plan, g graph.Interface) (*decomp.Partition, error) {
	return s.Submit(ctx, pl, g).Wait()
}

// Submit schedules pl on g and returns immediately with a Job handle.
// Identical completed work is served from cache; identical in-flight work
// is joined rather than repeated. ctx cancellation abandons only this
// job's wait — the shared execution is cancelled when its last waiter
// abandons it.
func (s *Session) Submit(ctx context.Context, pl *decomp.Plan, g graph.Interface) *Job {
	return s.SubmitObserved(ctx, pl, g, nil)
}

// SubmitObserved is Submit with a per-job round observer. All observers of
// one shared execution are fanned out to; an observer attached by a
// deduplicated submission sees only the rounds emitted after it attached,
// and a cache hit (no execution at all) emits nothing.
//
// Observers are panic-isolated: a callback that panics is disabled for
// the rest of the execution, counted in session.observer.panics, and
// surfaced as an error to the waiter that attached it — the shared
// execution itself keeps running, its result still caches, and every
// other waiter is unaffected.
func (s *Session) SubmitObserved(ctx context.Context, pl *decomp.Plan, g graph.Interface, fn func(dist.RoundStats)) *Job {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	j := &Job{ctx: ctx, start: start}
	switch {
	case pl == nil:
		j.err = errors.New("session: Submit with nil Plan")
		return j
	case g == nil:
		j.err = errors.New("session: Submit with nil graph")
		return j
	}
	key := KeyFor(pl, g)
	j.key = key

	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		j.err = ErrClosed
		return j
	}
	if p, ok := s.cacheGet(key); ok {
		s.cHits.Inc()
		s.mu.Unlock()
		j.p, j.hit = p, true
		s.hHit.Observe(time.Since(start).Nanoseconds())
		return j
	}
	// Attach only to a flight that still has waiters: once the last waiter
	// has abandoned one (observed under s.mu), its execution is doomed to
	// cancellation, and a fresh submission must not share its fate — it
	// schedules a replacement instead (the doomed flight only removes the
	// inflight entry if it is still its own, see execute).
	if fl, ok := s.inflight[key]; ok && fl.waiters > 0 {
		s.cDedups.Inc()
		fl.waiters++
		fl.addObservers(j, fn, pl.Config().Observer)
		s.mu.Unlock()
		j.fl = fl
		j.lat = s.hDedup
		return j
	}
	s.cMisses.Inc()
	runCtx, cancel := context.WithCancel(context.Background())
	fl := &flight{
		s: s, key: key, plan: pl, g: g,
		runCtx: runCtx, cancel: cancel,
		waiters: 1, done: make(chan struct{}),
	}
	// Observers attach before the flight becomes visible to workers, so
	// the initiating submission never misses a round.
	fl.addObservers(j, fn, pl.Config().Observer)
	s.inflight[key] = fl
	s.gInflight.Set(int64(len(s.inflight)))
	s.pending = append(s.pending, fl)
	s.mu.Unlock()
	s.cond.Signal()
	j.fl = fl
	j.lat = s.hMiss
	return j
}

// Request is one entry of a SubmitAll batch.
type Request struct {
	// Plan is the compiled plan to execute (derive per-seed copies with
	// Plan.WithSeed).
	Plan *decomp.Plan
	// Graph is the input graph.
	Graph graph.Interface
	// Observer optionally streams this job's per-round statistics (fanned
	// out when executions are shared; silent on cache hits).
	Observer func(dist.RoundStats)
}

// Result is one streamed SubmitAll outcome.
type Result struct {
	// Index is the position of the originating Request.
	Index int
	// Partition is the result clone (nil when Err is set).
	Partition *decomp.Partition
	// Err is the job error, ctx expiry included.
	Err error
	// CacheHit reports that the result was served without any execution.
	CacheHit bool
}

// SubmitAll submits the whole batch and streams results on the returned
// channel as jobs complete, in completion order (Result.Index ties each
// result back to its request). The channel is closed after the last
// result; the batch shares ctx.
func (s *Session) SubmitAll(ctx context.Context, reqs []Request) <-chan Result {
	out := make(chan Result, len(reqs))
	var wg sync.WaitGroup
	wg.Add(len(reqs))
	go func() {
		for i := range reqs {
			r := reqs[i]
			j := s.SubmitObserved(ctx, r.Plan, r.Graph, r.Observer)
			go func(i int, j *Job) {
				defer wg.Done()
				p, err := j.Wait()
				out <- Result{Index: i, Partition: p, Err: err, CacheHit: j.CacheHit()}
			}(i, j)
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// Stats returns a snapshot of the session counters.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:           uint64(s.cHits.Value()),
		Misses:         uint64(s.cMisses.Value()),
		Dedups:         uint64(s.cDedups.Value()),
		Evictions:      uint64(s.cEvicted.Value()),
		ObserverPanics: uint64(s.cPanics.Value()),
		ExecPanics:     uint64(s.cExecPanics.Value()),
		InFlight:       len(s.inflight),
		Cached:         s.order.Len(),
	}
}

// Peek serves pl-on-g from the completed-result cache alone: a defensive
// clone and true on a hit (counted as a session hit), nil and false
// otherwise — no execution is scheduled, no dedup attach happens, and a
// miss counts nothing. This is the degraded-mode read path: an
// overloaded or draining server can keep answering everything it already
// knows while admitting no new work.
func (s *Session) Peek(pl *decomp.Plan, g graph.Interface) (*decomp.Partition, bool) {
	if pl == nil || g == nil {
		return nil, false
	}
	start := time.Now()
	key := KeyFor(pl, g)
	s.mu.Lock()
	p, ok := s.cacheGet(key)
	if ok {
		s.cHits.Inc()
	}
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	s.hHit.Observe(time.Since(start).Nanoseconds())
	return p.Clone(), true
}

// InvalidateGraph drops every cached result keyed to the graph fingerprint
// fp and returns how many entries were removed. The narrow invalidation
// primitive for mutable graphs: when a graph is mutated in place behind one
// serving key, only the results of its old content version become wrong —
// every other graph's entries (and the mutated graph's new-fingerprint
// entries, which cannot exist yet) stay cached. Dropped entries count in
// session.invalidations, not session.evictions: they were removed for
// correctness, not displaced by the LRU bound.
//
// In-flight executions on the old content are left alone: they were keyed
// by the old fingerprint, so they complete, cache under the old key, and
// are simply never requested again (the serving layer retires the old
// fingerprint when it swaps the graph). Callers that re-expose the old
// fingerprint after an invalidation get recomputed — not stale — results.
func (s *Session) InvalidateGraph(fp uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for key, el := range s.items {
		if key.Graph != fp {
			continue
		}
		s.order.Remove(el)
		delete(s.items, key)
		removed++
	}
	if removed > 0 {
		s.cInvalid.Add(int64(removed))
		s.gCached.Set(int64(s.order.Len()))
	}
	return removed
}

// Recorder returns the session's telemetry recorder (never nil). Layers
// that want their own metrics beside the session's — harness experiments,
// exposition endpoints — resolve instruments through it.
func (s *Session) Recorder() *obs.Recorder { return s.rec }

// Registry returns the telemetry registry behind the session's recorder
// (nil only when the session was built over a metrics-less recorder).
func (s *Session) Registry() *obs.Registry { return s.rec.Registry() }

// WritePrometheus writes the session registry in Prometheus text format —
// the convenience form of Registry().WritePrometheus for HTTP handlers.
func (s *Session) WritePrometheus(w io.Writer) error {
	reg := s.Registry()
	if reg == nil {
		return nil
	}
	return reg.WritePrometheus(w)
}

// worker is one pool goroutine: pop, execute, repeat until the session
// drains after Close.
func (s *Session) worker() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		for len(s.pending) == 0 && !s.closing {
			s.cond.Wait()
		}
		if len(s.pending) == 0 {
			s.mu.Unlock()
			return
		}
		fl := s.pending[0]
		s.pending = s.pending[1:]
		s.mu.Unlock()
		s.execute(fl)
		s.mu.Lock()
	}
}

// execute runs one flight, stores the result, and wakes the waiters. The
// execution is wrapped in a "job" span carrying the cache key triple, and
// unless the plan brought its own recorder it inherits the session's,
// rooted at that span — so the plan, phase and round telemetry of a
// session-served run lands in the session registry.
func (s *Session) execute(fl *flight) {
	defer fl.cancel()
	var p *decomp.Partition
	err := fl.runCtx.Err() // all waiters may have abandoned while queued
	if err == nil {
		span := s.rec.Span("job",
			obs.KV{K: "graph", V: int64(fl.key.Graph)},
			obs.KV{K: "plan", V: int64(fl.key.Plan)},
			obs.KV{K: "seed", V: int64(fl.key.Seed)})
		pl := fl.plan.WithObserver(fl.broadcast)
		if pl.Recorder() == nil {
			pl = pl.WithRecorder(s.rec.Under(span))
		}
		p, err = s.runProtected(fl.runCtx, pl, fl.g)
		span.End()
	}
	s.mu.Lock()
	if err == nil {
		s.cacheAdd(fl.key, p)
	}
	// A doomed flight (all waiters abandoned) may have been replaced in
	// the inflight table by a fresh submission; only remove our own entry.
	if s.inflight[fl.key] == fl {
		delete(s.inflight, fl.key)
	}
	s.gInflight.Set(int64(len(s.inflight)))
	s.mu.Unlock()
	fl.p, fl.err = p, err
	close(fl.done)
}

// runProtected invokes the session's runner (default Plan.Run) with
// panic isolation: a panicking execution — a decomposer bug, an injected
// fault — becomes an error resolved to all the flight's waiters, counted
// in session.exec.panics. Nothing caches, the worker survives, and the
// process keeps serving.
func (s *Session) runProtected(ctx context.Context, pl *decomp.Plan, g graph.Interface) (p *decomp.Partition, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.cExecPanics.Inc()
			p, err = nil, fmt.Errorf("session: execution panicked: %v", r)
		}
	}()
	if s.runner != nil {
		return s.runner(ctx, pl, g)
	}
	return pl.Run(ctx, g)
}

// broadcast fans one round record out to every attached observer,
// isolating panics: a panicking observer is disabled for the rest of the
// execution, counted, and its error is pinned to the job that attached it
// (read by that job's Wait after fl.done closes, so the write is ordered
// by the channel close). Entries are only appended, never removed, and
// the slice header is copied under obsMu, so concurrent attaches from
// deduplicated submissions are safe.
func (fl *flight) broadcast(rs dist.RoundStats) {
	fl.obsMu.Lock()
	entries := fl.observers
	fl.obsMu.Unlock()
	for _, e := range entries {
		if !e.failed {
			fl.callObserver(e, rs)
		}
	}
}

// callObserver invokes one observer, converting a panic into quarantine.
func (fl *flight) callObserver(e *obsEntry, rs dist.RoundStats) {
	defer func() {
		if r := recover(); r != nil {
			e.failed = true
			fl.s.cPanics.Inc()
			if e.job != nil {
				e.job.obsErr = fmt.Errorf("session: round observer panicked: %v", r)
			}
		}
	}()
	e.fn(rs)
}

// addObservers attaches the non-nil observers to the flight on behalf of
// job j.
func (fl *flight) addObservers(j *Job, fns ...func(dist.RoundStats)) {
	fl.obsMu.Lock()
	for _, f := range fns {
		if f != nil {
			fl.observers = append(fl.observers, &obsEntry{fn: f, job: j})
		}
	}
	fl.obsMu.Unlock()
}

// cacheGet returns the cached partition for key, refreshing its LRU
// position. Caller holds s.mu.
func (s *Session) cacheGet(key Key) (*decomp.Partition, bool) {
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).p, true
}

// cacheAdd inserts (or refreshes) a completed result, evicting the least
// recently used entry past the bound. Caller holds s.mu.
func (s *Session) cacheAdd(key Key, p *decomp.Partition) {
	if s.cacheCap == 0 {
		return
	}
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).p = p
		s.order.MoveToFront(el)
		return
	}
	s.items[key] = s.order.PushFront(&cacheEntry{key: key, p: p})
	for s.order.Len() > s.cacheCap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
		s.cEvicted.Inc()
	}
	s.gCached.Set(int64(s.order.Len()))
}

// Job is the handle of one submission.
type Job struct {
	ctx context.Context
	key Key

	fl *flight // nil when resolved at submit time (cache hit or error)

	p   *decomp.Partition
	err error
	hit bool

	// obsErr is set when an observer this job attached panicked during the
	// fan-out. It is written on the execution goroutine before fl.done
	// closes and read by Wait only after, so the channel orders the access.
	obsErr error

	// start/lat feed the session's per-path latency histograms: lat is the
	// miss or dedup histogram (nil for submit-time resolutions, whose hit
	// latency is observed inline), and latOnce observes exactly once at
	// the first completed Wait.
	start   time.Time
	lat     *obs.Histogram
	latOnce sync.Once

	detachOnce sync.Once
}

// Key returns the cache key the job was routed by.
func (j *Job) Key() Key { return j.key }

// CacheHit reports whether the job was served from the completed-result
// cache at submit time.
func (j *Job) CacheHit() bool { return j.hit }

// Done returns a channel closed when the result is available. For jobs
// resolved at submit time (cache hits, submit errors) it is already
// closed.
func (j *Job) Done() <-chan struct{} {
	if j.fl != nil {
		return j.fl.done
	}
	ch := make(chan struct{})
	close(ch)
	return ch
}

// Wait blocks until the job resolves and returns a defensive clone of the
// result (safe to mutate). If the job's ctx expires first, Wait abandons
// the wait and returns the ctx error; the shared execution keeps running
// for its other waiters and is cancelled only when the last one abandons
// it. Wait may be called multiple times; each successful call returns a
// fresh clone.
//
// If an observer attached by this job panicked during the execution, Wait
// returns that error to this job alone: the shared execution completed,
// its result is cached, and the other waiters receive it normally.
func (j *Job) Wait() (*decomp.Partition, error) {
	if j.fl == nil {
		if j.err != nil {
			return nil, j.err
		}
		return j.p.Clone(), nil
	}
	select {
	case <-j.fl.done:
		return j.resolve()
	case <-j.ctx.Done():
		j.detach()
		// Completion may have raced the cancellation; prefer the result.
		select {
		case <-j.fl.done:
			return j.resolve()
		default:
		}
		return nil, j.ctx.Err()
	}
}

// resolve reads the completed flight's outcome for this job. Must only be
// called after j.fl.done is closed.
func (j *Job) resolve() (*decomp.Partition, error) {
	j.latOnce.Do(func() {
		j.lat.Observe(time.Since(j.start).Nanoseconds())
	})
	if j.fl.err != nil {
		return nil, j.fl.err
	}
	if j.obsErr != nil {
		return nil, j.obsErr
	}
	return j.fl.p.Clone(), nil
}

// detach removes this job from its flight's waiter count, cancelling the
// execution when nobody is left waiting on it.
func (j *Job) detach() {
	j.detachOnce.Do(func() {
		s := j.fl.s
		s.mu.Lock()
		j.fl.waiters--
		last := j.fl.waiters == 0
		s.mu.Unlock()
		if last {
			j.fl.cancel()
		}
	})
}
