package session

// Persistence: the completed-partition LRU survives restarts as a
// gob+gzip snapshot file guarded by an integrity hash.
//
// The on-disk layout is
//
//	magic    "NDSNAP01"                      (8 bytes)
//	hash     SHA-256 of everything after it  (32 bytes)
//	payload  gzip(gob(snapshotPayload))
//
// The hash covers the compressed payload byte-for-byte, so any damage —
// truncation, a flipped bit, a partial write — is detected before a single
// gob value is decoded, and recovery refuses the file rather than serve a
// corrupted partition (see recovery.go). The format is versioned inside
// the payload; readers reject snapshots written by an incompatible future
// layout instead of misinterpreting them.

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"netdecomp/internal/decomp"
)

// snapshotMagic identifies a netdecomp session snapshot file.
const snapshotMagic = "NDSNAP01"

// snapshotVersion is the gob payload schema version. Bump on incompatible
// changes to CacheEntry/Snapshot; readers reject other versions.
const snapshotVersion = 1

// ErrCorruptSnapshot reports a snapshot whose bytes do not match their
// recorded integrity hash (or whose framing is damaged). A store that
// returns it must be treated as absent: boot cold, never serve from it.
var ErrCorruptSnapshot = errors.New("session: corrupt snapshot")

// CacheEntry is one persisted LRU slot: the cache key triple and the
// completed partition it maps to.
type CacheEntry struct {
	Key       Key
	Partition *decomp.Partition
}

// Snapshot is the unit of persistence: the cache entries in LRU order
// (least recently used first, so replaying them in order reproduces the
// recency order), plus an opaque metadata blob the embedding layer may use
// for its own registries — the serving daemon stores its graph and plan
// tables there, the session itself never interprets it.
type Snapshot struct {
	// Entries are the cached results, least recently used first.
	Entries []CacheEntry
	// Meta is owned by the caller (opaque to the session layer).
	Meta []byte
}

// snapshotPayload is the versioned gob envelope inside the file.
type snapshotPayload struct {
	Version int
	Snap    Snapshot
}

// WriteSnapshot writes snap to w in the framed format above.
func WriteSnapshot(w io.Writer, snap Snapshot) error {
	var payload bytes.Buffer
	zw := gzip.NewWriter(&payload)
	if err := gob.NewEncoder(zw).Encode(snapshotPayload{Version: snapshotVersion, Snap: snap}); err != nil {
		return fmt.Errorf("session: encoding snapshot: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("session: compressing snapshot: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())
	if _, err := io.WriteString(w, snapshotMagic); err != nil {
		return err
	}
	if _, err := w.Write(sum[:]); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// ReadSnapshot reads one framed snapshot, verifying the integrity hash
// before any gob decoding. Damage of any kind — bad magic, truncation, a
// hash mismatch, an undecodable payload — is reported as (or wrapped
// around) ErrCorruptSnapshot; an unexpected payload version is its own
// error (the file is intact, just foreign).
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	header := make([]byte, len(snapshotMagic)+sha256.Size)
	if _, err := io.ReadFull(r, header); err != nil {
		return Snapshot{}, fmt.Errorf("%w: short header: %v", ErrCorruptSnapshot, err)
	}
	if string(header[:len(snapshotMagic)]) != snapshotMagic {
		return Snapshot{}, fmt.Errorf("%w: bad magic %q", ErrCorruptSnapshot, header[:len(snapshotMagic)])
	}
	payload, err := io.ReadAll(r)
	if err != nil {
		return Snapshot{}, fmt.Errorf("%w: reading payload: %v", ErrCorruptSnapshot, err)
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], header[len(snapshotMagic):]) {
		return Snapshot{}, fmt.Errorf("%w: integrity hash mismatch", ErrCorruptSnapshot)
	}
	zr, err := gzip.NewReader(bytes.NewReader(payload))
	if err != nil {
		return Snapshot{}, fmt.Errorf("%w: decompressing: %v", ErrCorruptSnapshot, err)
	}
	var p snapshotPayload
	if err := gob.NewDecoder(zr).Decode(&p); err != nil {
		return Snapshot{}, fmt.Errorf("%w: decoding: %v", ErrCorruptSnapshot, err)
	}
	if err := zr.Close(); err != nil {
		return Snapshot{}, fmt.Errorf("%w: decompressing: %v", ErrCorruptSnapshot, err)
	}
	if p.Version != snapshotVersion {
		return Snapshot{}, fmt.Errorf("session: snapshot version %d (want %d)", p.Version, snapshotVersion)
	}
	return p.Snap, nil
}

// ExportCache returns the completed-result cache as persistable entries in
// LRU order (least recently used first). Partitions are defensive clones,
// so a snapshot written from the export cannot alias live cache state.
func (s *Session) ExportCache() []CacheEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CacheEntry, 0, s.order.Len())
	for el := s.order.Back(); el != nil; el = el.Prev() {
		ce := el.Value.(*cacheEntry)
		out = append(out, CacheEntry{Key: ce.key, Partition: ce.p.Clone()})
	}
	return out
}

// SeedCache inserts recovered entries into the completed-result cache,
// oldest first, as if they had just completed: the LRU bound applies, so a
// snapshot larger than the cache keeps only its most recent entries.
// Seeding counts as neither hit nor miss; the number of entries actually
// inserted is returned and counted in session.restored. Entries with a nil
// partition are skipped.
func (s *Session) SeedCache(entries []CacheEntry) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cacheCap == 0 {
		return 0
	}
	n := 0
	for _, e := range entries {
		if e.Partition == nil {
			continue
		}
		s.cacheAdd(e.Key, e.Partition.Clone())
		n++
	}
	s.rec.Counter("session.restored").Add(int64(n))
	return n
}
