package session_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"netdecomp/internal/decomp"
	"netdecomp/internal/dist"
	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/session"
)

// gate is a registrable decomposer whose execution blocks until released —
// the tool for making dedup and cancellation windows deterministic.
type gate struct {
	name      string
	started   chan struct{}
	release   chan struct{}
	once      sync.Once
	runs      int32
	mu        sync.Mutex
	ignoreCtx bool // hold the gate through cancellation (keeps the flight in flight)
}

// registerGate registers a gated decomposer under a unique name.
func registerGate(t *testing.T, name string) *gate {
	t.Helper()
	gt := &gate{name: name, started: make(chan struct{}), release: make(chan struct{})}
	decomp.Register(decomp.Func{AlgorithmName: name, Run: gt.run})
	return gt
}

func (gt *gate) run(ctx context.Context, g graph.Interface, cfg decomp.Config) (*decomp.Partition, error) {
	gt.mu.Lock()
	gt.runs++
	gt.mu.Unlock()
	gt.once.Do(func() { close(gt.started) })
	if gt.ignoreCtx {
		<-gt.release
	} else {
		select {
		case <-gt.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if cfg.Observer != nil {
		cfg.Observer(dist.RoundStats{Round: 1, Messages: 1})
		cfg.Observer(dist.RoundStats{Round: 2, Messages: 2})
	}
	members := make([]int, g.N())
	for v := range members {
		members[v] = v
	}
	return &decomp.Partition{
		Algorithm: gt.name,
		N:         g.N(),
		Clusters:  []decomp.Cluster{{Members: members}},
		ClusterOf: make([]int, g.N()),
		Colors:    1,
		Complete:  true,
		Mode:      decomp.StrongDiameter,
	}, nil
}

func (gt *gate) runCount() int32 {
	gt.mu.Lock()
	defer gt.mu.Unlock()
	return gt.runs
}

// TestGoldenPartitionsThroughSession is the session half of the golden
// contract: for every registry algorithm, a Plan executed through a cold
// Session equals the direct one-shot Decompose bit for bit, and a warm
// Session serves the repeat from cache — no decomposition work, asserted
// via Stats — with the identical result again.
func TestGoldenPartitionsThroughSession(t *testing.T) {
	g, err := gen.Build(gen.FamilyGnp, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := session.New()
	defer s.Close()
	ctx := context.Background()
	wantMisses := uint64(0)
	for _, algo := range decomp.Names() {
		direct, err := decomp.MustGet(algo).Decompose(ctx, g,
			decomp.WithSeed(7), decomp.WithForceComplete())
		if err != nil {
			t.Fatalf("%s direct: %v", algo, err)
		}
		pl, err := decomp.Compile(algo, decomp.WithSeed(7), decomp.WithForceComplete())
		if err != nil {
			t.Fatalf("%s compile: %v", algo, err)
		}
		cold, err := s.Run(ctx, pl, g)
		if err != nil {
			t.Fatalf("%s session cold: %v", algo, err)
		}
		if !reflect.DeepEqual(direct, cold) {
			t.Errorf("%s: session result differs from direct Decompose", algo)
		}
		warmJob := s.Submit(ctx, pl, g)
		warm, err := warmJob.Wait()
		if err != nil {
			t.Fatalf("%s session warm: %v", algo, err)
		}
		if !warmJob.CacheHit() {
			t.Errorf("%s: repeat submission was not a cache hit", algo)
		}
		if !reflect.DeepEqual(direct, warm) {
			t.Errorf("%s: cached result differs from direct Decompose", algo)
		}
		wantMisses++
	}
	st := s.Stats()
	if st.Misses != wantMisses || st.Hits != wantMisses {
		t.Errorf("stats = %+v, want %d misses and %d hits", st, wantMisses, wantMisses)
	}
}

// TestSessionDedupSingleflight pins the singleflight contract: identical
// jobs submitted while the first is executing attach to it — one
// execution, N results, N-1 dedups.
func TestSessionDedupSingleflight(t *testing.T) {
	gt := registerGate(t, "test/gate-dedup")
	g := gen.Grid(4, 4)
	s := session.New(session.WithWorkers(2))
	defer s.Close()
	pl, err := decomp.Compile(gt.name, decomp.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	first := s.Submit(ctx, pl, g)
	<-gt.started // execution is underway and holds the key in-flight
	const extra = 5
	jobs := []*session.Job{first}
	for i := 0; i < extra; i++ {
		jobs = append(jobs, s.Submit(ctx, pl, g))
	}
	close(gt.release)
	var results []*decomp.Partition
	for i, j := range jobs {
		p, err := j.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		results = append(results, p)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("job %d result differs from job 0", i)
		}
		if &results[0].Clusters[0].Members[0] == &results[i].Clusters[0].Members[0] {
			t.Fatalf("job %d aliases job 0's member slice; want defensive clones", i)
		}
	}
	if n := gt.runCount(); n != 1 {
		t.Fatalf("decomposer ran %d times, want 1", n)
	}
	st := s.Stats()
	if st.Misses != 1 || st.Dedups != extra || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 1 miss and %d dedups", st, extra)
	}
}

// TestSessionConcurrentSubmitters hammers one session from many
// goroutines with overlapping jobs (run with -race): every submission is
// accounted exactly once as hit, miss or dedup, each distinct key
// executes at most once per... exactly once (the cache is large enough),
// and every result is bit-identical to a direct Decompose of its triple.
func TestSessionConcurrentSubmitters(t *testing.T) {
	g1, err := gen.Build(gen.FamilyGnp, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	g2 := gen.Grid(12, 12)
	graphs := []*graph.Graph{g1, g2}
	algos := []string{"elkin-neiman", "mpx", "ball-carving"}
	seeds := []uint64{1, 2}

	s := session.New(session.WithWorkers(4))
	defer s.Close()
	ctx := context.Background()

	type triple struct {
		gi   int
		algo string
		seed uint64
	}
	var triples []triple
	direct := map[triple]*decomp.Partition{}
	for gi := range graphs {
		for _, algo := range algos {
			for _, seed := range seeds {
				tr := triple{gi, algo, seed}
				triples = append(triples, tr)
				p, err := decomp.MustGet(algo).Decompose(ctx, graphs[gi],
					decomp.WithSeed(seed), decomp.WithForceComplete())
				if err != nil {
					t.Fatal(err)
				}
				direct[tr] = p
			}
		}
	}

	const goroutines = 8
	const perG = 30
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perG; i++ {
				tr := triples[rng.Intn(len(triples))]
				pl, err := decomp.Compile(tr.algo,
					decomp.WithSeed(tr.seed), decomp.WithForceComplete())
				if err != nil {
					errs <- err
					return
				}
				p, err := s.Run(ctx, pl, graphs[tr.gi])
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(p, direct[tr]) {
					errs <- fmt.Errorf("%v: session result differs from direct", tr)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	total := st.Hits + st.Misses + st.Dedups
	if total != goroutines*perG {
		t.Fatalf("hits+misses+dedups = %d, want %d: %+v", total, goroutines*perG, st)
	}
	if st.Misses > uint64(len(triples)) {
		t.Fatalf("%d misses for %d distinct keys (no evictions configured): %+v",
			st.Misses, len(triples), st)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight work left behind: %+v", st)
	}
}

// TestSessionLRUEviction pins the cache bound: with capacity 2, a third
// distinct key evicts the least recently used entry, and re-running the
// evicted key is a miss again.
func TestSessionLRUEviction(t *testing.T) {
	g := gen.Grid(8, 8)
	s := session.New(session.WithWorkers(1), session.WithCacheSize(2))
	defer s.Close()
	ctx := context.Background()
	pl, err := decomp.Compile("ball-carving", decomp.WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed uint64) {
		t.Helper()
		if _, err := s.Run(ctx, pl.WithSeed(seed), g); err != nil {
			t.Fatal(err)
		}
	}
	run(1)
	run(2)
	run(1) // refresh seed 1: seed 2 is now the LRU entry
	run(3) // evicts seed 2
	run(2) // miss again
	st := s.Stats()
	if st.Misses != 4 {
		t.Errorf("misses = %d, want 4 (seeds 1,2,3 cold + seed 2 re-executed after eviction)", st.Misses)
	}
	if st.Hits != 1 {
		t.Errorf("hits = %d, want 1 (the seed-1 refresh)", st.Hits)
	}
	if st.Evictions < 1 {
		t.Errorf("evictions = %d, want >= 1", st.Evictions)
	}
	if st.Cached > 2 {
		t.Errorf("cached = %d entries, bound is 2", st.Cached)
	}
}

// TestSessionCacheDisabled pins WithCacheSize(0): nothing is retained, so
// sequential repeats re-execute.
func TestSessionCacheDisabled(t *testing.T) {
	g := gen.Grid(6, 6)
	s := session.New(session.WithCacheSize(0))
	defer s.Close()
	pl, err := decomp.Compile("ball-carving", decomp.WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Run(context.Background(), pl, g); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Misses != 3 || st.Hits != 0 || st.Cached != 0 {
		t.Fatalf("stats = %+v, want 3 misses and an empty cache", st)
	}
}

// TestSessionHitEqualsMissProperty is the property test of the acceptance
// contract: over random (graph family, algorithm, seed) triples, the
// partition served from cache is deep-equal to the one computed on the
// cold miss, which in turn is deep-equal to a direct Plan.Run.
func TestSessionHitEqualsMissProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	algos := []string{"elkin-neiman", "linial-saks", "mpx", "ball-carving"}
	fams := []gen.Family{gen.FamilyGnp, gen.FamilyTree, gen.FamilyRingOfCliques}
	s := session.New()
	defer s.Close()
	ctx := context.Background()
	for trial := 0; trial < 12; trial++ {
		fam := fams[rng.Intn(len(fams))]
		algo := algos[rng.Intn(len(algos))]
		seed := rng.Uint64()
		n := 64 + rng.Intn(128)
		g, err := gen.Build(fam, n, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		pl, err := decomp.Compile(algo, decomp.WithSeed(seed), decomp.WithForceComplete())
		if err != nil {
			t.Fatal(err)
		}
		want, err := pl.Run(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		missJob := s.Submit(ctx, pl, g)
		miss, err := missJob.Wait()
		if err != nil {
			t.Fatal(err)
		}
		hitJob := s.Submit(ctx, pl, g)
		hit, err := hitJob.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if missJob.CacheHit() || !hitJob.CacheHit() {
			t.Fatalf("trial %d (%s on %s): cache flags wrong (miss=%v hit=%v)",
				trial, algo, fam, missJob.CacheHit(), hitJob.CacheHit())
		}
		if !reflect.DeepEqual(want, miss) || !reflect.DeepEqual(miss, hit) {
			t.Fatalf("trial %d (%s on %s seed %d): cache-hit partition differs from cache-miss/direct",
				trial, algo, fam, seed)
		}
	}
}

// TestSessionObserverFanout pins the observer plumbing: both the first
// submitter's and a deduplicated submitter's observers receive the shared
// execution's rounds, and a cache-hit job's observer receives nothing.
func TestSessionObserverFanout(t *testing.T) {
	gt := registerGate(t, "test/gate-observe")
	g := gen.Grid(3, 3)
	s := session.New(session.WithWorkers(2))
	defer s.Close()
	pl, err := decomp.Compile(gt.name)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var mu sync.Mutex
	counts := map[string]int{}
	obs := func(tag string) func(dist.RoundStats) {
		return func(dist.RoundStats) {
			mu.Lock()
			counts[tag]++
			mu.Unlock()
		}
	}
	first := s.SubmitObserved(ctx, pl, g, obs("first"))
	<-gt.started
	second := s.SubmitObserved(ctx, pl, g, obs("dedup"))
	close(gt.release)
	if _, err := first.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := second.Wait(); err != nil {
		t.Fatal(err)
	}
	third := s.SubmitObserved(ctx, pl, g, obs("hit"))
	if _, err := third.Wait(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if counts["first"] != 2 || counts["dedup"] != 2 {
		t.Errorf("observer rounds = %v, want 2 for both sharers (gate emits 2)", counts)
	}
	if counts["hit"] != 0 {
		t.Errorf("cache-hit observer saw %d rounds, want 0", counts["hit"])
	}
	if !third.CacheHit() {
		t.Error("third submission should have been a cache hit")
	}
}

// TestSessionContextCancel pins per-job cancellation: a waiter whose ctx
// expires abandons the wait with ctx.Err, and once every waiter has
// abandoned an execution its context is cancelled too.
func TestSessionContextCancel(t *testing.T) {
	gt := registerGate(t, "test/gate-cancel")
	g := gen.Grid(3, 3)
	s := session.New(session.WithWorkers(1))
	defer s.Close()
	pl, err := decomp.Compile(gt.name)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := s.Submit(ctx, pl, g)
	<-gt.started
	cancel()
	if _, err := j.Wait(); err != context.Canceled {
		t.Fatalf("Wait after cancel = %v, want context.Canceled", err)
	}
	// The sole waiter abandoned; the gated run's ctx.Done branch returns.
	deadline := time.After(5 * time.Second)
	for s.Stats().InFlight != 0 {
		select {
		case <-deadline:
			t.Fatal("execution not reaped after its last waiter cancelled")
		case <-time.After(time.Millisecond):
		}
	}
	// Cancelled executions are not cached, and the session still serves.
	close(gt.release)
	p, err := s.Run(context.Background(), pl, g)
	if err != nil || p.N != g.N() {
		t.Fatalf("session unusable after cancellation: %v", err)
	}
	st := s.Stats()
	if st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (cancelled run must not be cached)", st.Misses)
	}
}

// TestSessionAbandonedFlightNotJoined pins the doomed-flight rule: a
// fresh submission must not attach to an in-flight execution whose last
// waiter already abandoned it (that execution is fated to be cancelled) —
// it schedules a replacement and succeeds with a live result.
func TestSessionAbandonedFlightNotJoined(t *testing.T) {
	gt := registerGate(t, "test/gate-abandoned")
	gt.ignoreCtx = true // the run outlives its cancellation, pinning the window open
	g := gen.Grid(3, 3)
	s := session.New(session.WithWorkers(1), session.WithCacheSize(0))
	defer s.Close()
	pl, err := decomp.Compile(gt.name)
	if err != nil {
		t.Fatal(err)
	}
	ctxA, cancelA := context.WithCancel(context.Background())
	a := s.Submit(ctxA, pl, g)
	<-gt.started
	cancelA()
	if _, err := a.Wait(); err != context.Canceled {
		t.Fatalf("abandoned waiter got %v, want context.Canceled", err)
	}
	// The first execution is still blocked in the gate (it ignores its
	// cancelled ctx), so its flight is still in the in-flight table with
	// zero waiters. A fresh submission must not be chained to it.
	b := s.Submit(context.Background(), pl, g)
	close(gt.release) // lets the doomed run finish, then b's replacement run
	p, err := b.Wait()
	if err != nil {
		t.Fatalf("fresh submission inherited the abandoned flight's fate: %v", err)
	}
	if p.N != g.N() {
		t.Fatalf("bad result: %v", p)
	}
	if n := gt.runCount(); n != 2 {
		t.Fatalf("decomposer ran %d times, want 2 (doomed run + replacement)", n)
	}
	st := s.Stats()
	if st.Misses != 2 || st.Dedups != 0 {
		t.Fatalf("stats = %+v, want 2 misses and no dedup onto the doomed flight", st)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight table not cleaned up: %+v", st)
	}
}

// TestSessionSubmitAll pins the streaming batch API: every request gets
// exactly one result carrying its index, duplicates are absorbed by cache
// or dedup, and the channel closes.
func TestSessionSubmitAll(t *testing.T) {
	g, err := gen.Build(gen.FamilyGnp, 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := session.New(session.WithWorkers(3))
	defer s.Close()
	pl, err := decomp.Compile("elkin-neiman", decomp.WithForceComplete())
	if err != nil {
		t.Fatal(err)
	}
	const seeds, copies = 4, 3
	var reqs []session.Request
	for c := 0; c < copies; c++ {
		for i := 0; i < seeds; i++ {
			reqs = append(reqs, session.Request{Plan: pl.WithSeed(uint64(i)), Graph: g})
		}
	}
	got := map[int]*decomp.Partition{}
	for res := range s.SubmitAll(context.Background(), reqs) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if _, dup := got[res.Index]; dup {
			t.Fatalf("index %d delivered twice", res.Index)
		}
		got[res.Index] = res.Partition
	}
	if len(got) != len(reqs) {
		t.Fatalf("got %d results, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if !reflect.DeepEqual(got[i], got[i%seeds]) {
			t.Fatalf("request %d result differs from its seed twin %d", i, i%seeds)
		}
	}
	st := s.Stats()
	if st.Misses != seeds {
		t.Errorf("misses = %d, want %d (one execution per distinct seed)", st.Misses, seeds)
	}
	if st.Hits+st.Dedups != uint64(len(reqs)-seeds) {
		t.Errorf("hits+dedups = %d, want %d: %+v", st.Hits+st.Dedups, len(reqs)-seeds, st)
	}
}

// TestSessionClosed pins Close semantics: submissions after Close fail
// with ErrClosed and Close is idempotent.
func TestSessionClosed(t *testing.T) {
	s := session.New(session.WithWorkers(1))
	pl, err := decomp.Compile("ball-carving", decomp.WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Grid(3, 3)
	if _, err := s.Run(context.Background(), pl, g); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close()
	if _, err := s.Run(context.Background(), pl, g); err != session.ErrClosed {
		t.Fatalf("Run after Close = %v, want ErrClosed", err)
	}
}

// TestKeyForComponents pins the key anatomy: the three components move
// independently — graph, plan semantics and seed each change exactly one
// field, and observers change nothing.
func TestKeyForComponents(t *testing.T) {
	g1 := gen.Grid(4, 4)
	g2 := gen.Grid(5, 5)
	base, err := decomp.Compile("elkin-neiman", decomp.WithK(3), decomp.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	k := session.KeyFor(base, g1)
	if k2 := session.KeyFor(base, g2); k2.Graph == k.Graph || k2.Plan != k.Plan || k2.Seed != k.Seed {
		t.Errorf("graph change: %+v vs %+v", k, k2)
	}
	other, err := decomp.Compile("elkin-neiman", decomp.WithK(4), decomp.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if k2 := session.KeyFor(other, g1); k2.Plan == k.Plan || k2.Graph != k.Graph || k2.Seed != k.Seed {
		t.Errorf("plan change: %+v vs %+v", k, k2)
	}
	if k2 := session.KeyFor(base.WithSeed(9), g1); k2.Seed != 9 || k2.Plan != k.Plan || k2.Graph != k.Graph {
		t.Errorf("seed change: %+v vs %+v", k, k2)
	}
	observed := base.WithObserver(func(dist.RoundStats) {})
	if k2 := session.KeyFor(observed, g1); k2 != k {
		t.Errorf("observer changed the key: %+v vs %+v", k, k2)
	}
}
