package session

// Recovery: the boot-time half of persistence. A serving process snapshots
// its session to a file (periodically and on shutdown) and recovers it on
// the next boot, so the cache is warm the moment the listener opens.
// Recovery is strictly best-effort and fail-cold: a missing file is a
// normal first boot, and a damaged file is reported (ErrCorruptSnapshot)
// while the session stays empty — a partition whose bytes cannot be
// authenticated is never served.

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// SnapshotToFile atomically writes the session's cache (plus the caller's
// opaque metadata) to path: the snapshot is written to a temporary file in
// the same directory and renamed over path, so a crash mid-write leaves
// the previous snapshot intact. It returns the number of entries written.
func (s *Session) SnapshotToFile(path string, meta []byte) (int, error) {
	entries := s.ExportCache()
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, fmt.Errorf("session: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	err = WriteSnapshot(tmp, Snapshot{Entries: entries, Meta: meta})
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, fmt.Errorf("session: snapshot %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, fmt.Errorf("session: snapshot: %w", err)
	}
	return len(entries), nil
}

// RecoverFromFile loads the snapshot at path into the session cache and
// returns the caller metadata and the number of entries restored.
//
// A missing file is a clean cold start: (nil, 0, nil). A file that fails
// the integrity hash (or is otherwise undecodable) restores nothing and
// returns an error wrapping ErrCorruptSnapshot — the caller logs it and
// serves cold; it must never ignore the error and assume warmth.
func (s *Session) RecoverFromFile(path string) (meta []byte, restored int, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("session: recover %s: %w", path, err)
	}
	defer f.Close()
	snap, err := ReadSnapshot(f)
	if err != nil {
		return nil, 0, fmt.Errorf("session: recover %s: %w", path, err)
	}
	return snap.Meta, s.SeedCache(snap.Entries), nil
}
