package graph

import (
	"testing"

	"netdecomp/internal/randx"
)

// path builds a path 0-1-2-...-(n-1).
func path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

// cycle builds a cycle on n vertices.
func cycle(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph reports n=%d m=%d", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Fatal("empty graph should count as connected")
	}
	if d := g.Diameter(); d != 0 {
		t.Fatalf("empty graph diameter = %d", d)
	}
}

func TestZeroValueGraph(t *testing.T) {
	var g Graph
	if g.N() != 0 || g.M() != 0 || g.MaxDegree() != 0 {
		t.Fatal("zero-value Graph is not the empty graph")
	}
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop, dropped
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("expected 1 edge after dedup, got %d", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatalf("degrees wrong: %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range AddEdge did not panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestHasEdge(t *testing.T) {
	g := path(4)
	cases := []struct {
		u, v int
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {1, 2, true}, {0, 2, false}, {0, 3, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestEdgesListing(t *testing.T) {
	g := cycle(4)
	edges := g.Edges()
	if len(edges) != 4 {
		t.Fatalf("cycle(4) has %d edges, want 4", len(edges))
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not in canonical order", e)
		}
	}
}

func TestBFSPath(t *testing.T) {
	g := path(5)
	dist := g.BFS(0)
	for v := 0; v < 5; v++ {
		if dist[v] != v {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], v)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	dist := g.BFS(0)
	if dist[2] != Unreachable || dist[3] != Unreachable {
		t.Fatalf("distances to other component should be Unreachable, got %v", dist)
	}
}

func TestBFSWithinRadius(t *testing.T) {
	g := path(10)
	dist := g.BFSWithin(0, 3)
	for v := 0; v < 10; v++ {
		if v <= 3 && dist[v] != v {
			t.Fatalf("dist[%d] = %d inside radius", v, dist[v])
		}
		if v > 3 && dist[v] != Unreachable {
			t.Fatalf("dist[%d] = %d beyond radius", v, dist[v])
		}
	}
}

func TestBFSWithinZeroRadius(t *testing.T) {
	g := path(3)
	dist := g.BFSWithin(1, 0)
	if dist[1] != 0 || dist[0] != Unreachable || dist[2] != Unreachable {
		t.Fatalf("radius-0 BFS wrong: %v", dist)
	}
}

func TestBFSRestricted(t *testing.T) {
	g := path(5)
	alive := []bool{true, true, false, true, true}
	dist := g.BFSRestricted(0, alive, -1)
	if dist[0] != 0 || dist[1] != 1 {
		t.Fatalf("alive prefix distances wrong: %v", dist)
	}
	if dist[2] != Unreachable || dist[3] != Unreachable || dist[4] != Unreachable {
		t.Fatalf("dead vertex 2 should cut the path: %v", dist)
	}
}

func TestBFSRestrictedDeadSource(t *testing.T) {
	g := path(3)
	alive := []bool{false, true, true}
	dist := g.BFSRestricted(0, alive, -1)
	for v, d := range dist {
		if d != Unreachable {
			t.Fatalf("dead source should reach nothing, dist[%d]=%d", v, d)
		}
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	comp, count := g.Components()
	if count != 3 {
		t.Fatalf("want 3 components, got %d", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("0,1,2 should share a component")
	}
	if comp[3] != comp[4] {
		t.Fatal("3,4 should share a component")
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Fatal("5 should be isolated")
	}
}

func TestComponentsRestricted(t *testing.T) {
	g := path(5)
	alive := []bool{true, true, false, true, true}
	comp, count := g.ComponentsRestricted(alive)
	if count != 2 {
		t.Fatalf("want 2 restricted components, got %d", count)
	}
	if comp[2] != -1 {
		t.Fatal("dead vertex must have component -1")
	}
	if comp[0] != comp[1] || comp[3] != comp[4] || comp[0] == comp[3] {
		t.Fatalf("restricted components wrong: %v", comp)
	}
}

func TestComponentsOfSubset(t *testing.T) {
	g := path(6)
	comps := g.ComponentsOfSubset([]int{0, 1, 3, 4, 5})
	if len(comps) != 2 {
		t.Fatalf("want 2 subset components, got %d: %v", len(comps), comps)
	}
	if len(comps[0]) != 2 || comps[0][0] != 0 || comps[0][1] != 1 {
		t.Fatalf("first component wrong: %v", comps[0])
	}
	if len(comps[1]) != 3 || comps[1][0] != 3 {
		t.Fatalf("second component wrong: %v", comps[1])
	}
}

func TestInduced(t *testing.T) {
	g := cycle(6)
	sub, orig, err := g.Induced([]int{0, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 4 {
		t.Fatalf("induced n = %d", sub.N())
	}
	// Edges 0-1 and 1-2 survive; 4 is isolated in the induced graph.
	if sub.M() != 2 {
		t.Fatalf("induced m = %d, want 2", sub.M())
	}
	if orig[3] != 4 {
		t.Fatalf("orig mapping wrong: %v", orig)
	}
}

func TestInducedErrors(t *testing.T) {
	g := path(3)
	if _, _, err := g.Induced([]int{0, 0}); err == nil {
		t.Fatal("duplicate vertex not rejected")
	}
	if _, _, err := g.Induced([]int{5}); err == nil {
		t.Fatal("out-of-range vertex not rejected")
	}
}

func TestDiameter(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{path(1), 0},
		{path(2), 1},
		{path(7), 6},
		{cycle(8), 4},
		{cycle(9), 4},
	}
	for i, c := range cases {
		if got := c.g.Diameter(); got != c.want {
			t.Errorf("case %d: diameter = %d, want %d", i, got, c.want)
		}
	}
}

func TestEccentricity(t *testing.T) {
	g := path(5)
	if e := g.Eccentricity(2, nil); e != 2 {
		t.Fatalf("center eccentricity = %d, want 2", e)
	}
	if e := g.Eccentricity(0, nil); e != 4 {
		t.Fatalf("end eccentricity = %d, want 4", e)
	}
}

func TestSubsetStrongDiameter(t *testing.T) {
	g := path(6)
	// {1,2,3} is a connected sub-path of diameter 2.
	if d, ok := g.SubsetStrongDiameter([]int{1, 2, 3}); !ok || d != 2 {
		t.Fatalf("strong diameter = %d,%v want 2,true", d, ok)
	}
	// {0,1,4,5} is disconnected inside the induced subgraph.
	if _, ok := g.SubsetStrongDiameter([]int{0, 1, 4, 5}); ok {
		t.Fatal("disconnected subset reported as connected")
	}
	// Singletons and empty sets are fine.
	if d, ok := g.SubsetStrongDiameter([]int{3}); !ok || d != 0 {
		t.Fatalf("singleton strong diameter = %d,%v", d, ok)
	}
	if d, ok := g.SubsetStrongDiameter(nil); !ok || d != 0 {
		t.Fatalf("empty strong diameter = %d,%v", d, ok)
	}
}

func TestSubsetWeakVsStrong(t *testing.T) {
	// On a cycle, the subset {0, 2} has induced distance infinity (no edge)
	// but weak diameter 2 through vertex 1.
	g := cycle(6)
	if _, ok := g.SubsetStrongDiameter([]int{0, 2}); ok {
		t.Fatal("subset {0,2} should be disconnected in induced graph")
	}
	if d, ok := g.SubsetWeakDiameter([]int{0, 2}); !ok || d != 2 {
		t.Fatalf("weak diameter = %d,%v want 2,true", d, ok)
	}
}

func TestSubsetWeakDiameterDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	if _, ok := g.SubsetWeakDiameter([]int{0, 2}); ok {
		t.Fatal("cross-component weak diameter should report ok=false")
	}
}

// randomGraph builds a G(n,p)-style graph without importing internal/gen
// (which depends on this package).
func randomGraph(seed uint64, n int, p float64) *Graph {
	rng := randx.New(seed)
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// TestPropertyBFSTriangleInequality: d(s,v) <= d(s,u) + 1 for every edge
// {u,v} — the defining local consistency of BFS distances.
func TestPropertyBFSTriangleInequality(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		g := randomGraph(seed, 60, 0.08)
		dist := g.BFS(0)
		for _, e := range g.Edges() {
			du, dv := dist[e[0]], dist[e[1]]
			if du == Unreachable != (dv == Unreachable) {
				t.Fatalf("seed %d: edge %v half-reachable", seed, e)
			}
			if du != Unreachable && abs(du-dv) > 1 {
				t.Fatalf("seed %d: edge %v has dist gap %d,%d", seed, e, du, dv)
			}
		}
	}
}

// TestPropertyComponentsAgreeWithBFS: u and v share a component iff BFS
// from u reaches v.
func TestPropertyComponentsAgreeWithBFS(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g := randomGraph(seed, 40, 0.05)
		comp, _ := g.Components()
		dist := g.BFS(0)
		for v := 0; v < g.N(); v++ {
			sameComp := comp[v] == comp[0]
			reached := dist[v] != Unreachable
			if sameComp != reached {
				t.Fatalf("seed %d: vertex %d comp/BFS disagree", seed, v)
			}
		}
	}
}

// TestPropertyInducedPreservesAdjacency: the induced subgraph has exactly
// the edges of g between kept vertices.
func TestPropertyInducedPreservesAdjacency(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g := randomGraph(seed, 30, 0.15)
		rng := randx.New(seed + 1000)
		var subset []int
		for v := 0; v < g.N(); v++ {
			if rng.Float64() < 0.5 {
				subset = append(subset, v)
			}
		}
		sub, orig, err := g.Induced(subset)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < sub.N(); i++ {
			for j := i + 1; j < sub.N(); j++ {
				if sub.HasEdge(i, j) != g.HasEdge(orig[i], orig[j]) {
					t.Fatalf("seed %d: induced adjacency mismatch at %d,%d", seed, i, j)
				}
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func BenchmarkBFS4096(b *testing.B) {
	g := randomGraph(1, 4096, 0.002)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.BFS(i % g.N())
	}
}
