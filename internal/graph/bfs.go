package graph

// Unreachable is the distance value reported for vertices that a traversal
// cannot reach.
const Unreachable = -1

// BFS returns the vector of hop distances from src in g, with Unreachable
// (-1) for vertices in other connected components.
func BFS(g Interface, src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	bfsInto(g, src, dist, nil, -1)
	return dist
}

// BFS returns the vector of hop distances from src (see the package
// function BFS).
func (g *Graph) BFS(src int) []int { return BFS(g, src) }

// BFSWithin returns hop distances from src, exploring only vertices at
// distance at most radius. Vertices beyond the radius report Unreachable.
// A negative radius means unbounded.
func BFSWithin(g Interface, src, radius int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	bfsInto(g, src, dist, nil, radius)
	return dist
}

// BFSWithin returns radius-bounded hop distances from src (see the package
// function BFSWithin).
func (g *Graph) BFSWithin(src, radius int) []int { return BFSWithin(g, src, radius) }

// BFSRestricted returns hop distances from src in the subgraph induced by
// the vertices with alive[v] == true. src itself must be alive; otherwise
// every entry is Unreachable. A negative radius means unbounded.
//
// This is the traversal the per-phase algorithms use: the "current graph"
// G_t of Elkin–Neiman is exactly G restricted to the not-yet-clustered
// vertices.
func BFSRestricted(g Interface, src int, alive []bool, radius int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	if alive != nil && !alive[src] {
		return dist
	}
	bfsInto(g, src, dist, alive, radius)
	return dist
}

// BFSRestricted returns hop distances under an alive mask (see the package
// function BFSRestricted).
func (g *Graph) BFSRestricted(src int, alive []bool, radius int) []int {
	return BFSRestricted(g, src, alive, radius)
}

// bfsInto runs BFS from src writing into dist (pre-filled with
// Unreachable), honoring the optional alive mask and radius bound.
func bfsInto(g Interface, src int, dist []int, alive []bool, radius int) {
	queue := make([]int32, 0, 64)
	dist[src] = 0
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		if radius >= 0 && du >= radius {
			continue
		}
		for _, w := range g.Neighbors(int(u)) {
			if dist[w] != Unreachable {
				continue
			}
			if alive != nil && !alive[w] {
				continue
			}
			dist[w] = du + 1
			queue = append(queue, w)
		}
	}
}

// bfsScratch is a reusable BFS workspace that avoids re-allocating and
// re-initializing the distance vector on every call. The epoch trick marks
// visited vertices without clearing the array between traversals.
type bfsScratch struct {
	dist  []int
	stamp []int
	epoch int
	queue []int32
}

func newBFSScratch(n int) *bfsScratch {
	return &bfsScratch{
		dist:  make([]int, n),
		stamp: make([]int, n),
		queue: make([]int32, 0, n),
	}
}

// run performs a BFS from src under the alive mask and radius bound, then
// returns the scratch distance vector; entries are only valid for vertices
// v with s.seen(v). The result is invalidated by the next run call.
func (s *bfsScratch) run(g Interface, src int, alive []bool, radius int) {
	s.epoch++
	s.queue = s.queue[:0]
	if alive != nil && !alive[src] {
		return
	}
	s.dist[src] = 0
	s.stamp[src] = s.epoch
	s.queue = append(s.queue, int32(src))
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		du := s.dist[u]
		if radius >= 0 && du >= radius {
			continue
		}
		for _, w := range g.Neighbors(int(u)) {
			if s.stamp[w] == s.epoch {
				continue
			}
			if alive != nil && !alive[w] {
				continue
			}
			s.stamp[w] = s.epoch
			s.dist[w] = du + 1
			s.queue = append(s.queue, w)
		}
	}
}

// seen reports whether v was reached by the most recent run.
func (s *bfsScratch) seen(v int32) bool { return s.stamp[v] == s.epoch }

// Eccentricity returns the maximum distance from v to any vertex reachable
// from it, restricted to the optional alive mask.
func Eccentricity(g Interface, v int, alive []bool) int {
	dist := BFSRestricted(g, v, alive, -1)
	ecc := 0
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Eccentricity returns the maximum distance from v to any reachable vertex
// (see the package function Eccentricity).
func (g *Graph) Eccentricity(v int, alive []bool) int { return Eccentricity(g, v, alive) }
