package graph

import (
	"fmt"
	"iter"
	"slices"
	"sync"
)

// View is a zero-copy induced subgraph: a window onto a subset of a parent
// graph's vertices, renumbered to the dense local id space 0..N()-1. A
// View satisfies Interface, so every traversal primitive and decomposition
// algorithm runs on it directly.
//
// Construction is O(len(vertices)) and copies nothing from the parent. The
// local adjacency structure is materialized lazily — once, on first
// adjacency access, at cost proportional to the subset and its incident
// parent edges, never to the whole parent graph — and cached, so repeated
// traversals pay the CSR price of a concrete Graph. Views compose: the
// parent may itself be a View.
//
// Views are safe for concurrent use after construction (materialization is
// guarded), and remain valid as long as the parent does. The parent must
// not be mutated, which Graph guarantees by construction.
type View struct {
	parent Interface
	verts  []int32 // local id -> parent id, in caller order
	once   sync.Once
	local  *Graph // lazily materialized local CSR
}

// NewView returns the view of g induced by the given vertices, in the
// given order (local id i is vertices[i]). It panics if a vertex is out of
// range; duplicate vertices panic on first adjacency access. Use Induced
// for error-returning validation of untrusted subsets.
func NewView(g Interface, vertices []int) *View {
	n := g.N()
	verts := make([]int32, len(vertices))
	for i, v := range vertices {
		if v < 0 || v >= n {
			panic(fmt.Sprintf("graph: view vertex %d out of range [0,%d)", v, n))
		}
		verts[i] = int32(v)
	}
	return &View{parent: g, verts: verts}
}

// Induced returns the subgraph induced by the given vertices as a
// zero-copy View, together with the mapping from local vertex index to
// original vertex id. Duplicate entries in vertices are an error.
func Induced(g Interface, vertices []int) (*View, []int, error) {
	n := g.N()
	seen := make(map[int]struct{}, len(vertices))
	orig := make([]int, len(vertices))
	for i, v := range vertices {
		if v < 0 || v >= n {
			return nil, nil, fmt.Errorf("graph: induced vertex %d out of range [0,%d)", v, n)
		}
		if _, dup := seen[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in induced set", v)
		}
		seen[v] = struct{}{}
		orig[i] = v
	}
	return NewView(g, vertices), orig, nil
}

// Induced returns the view induced by the given vertices (see the package
// function Induced).
func (g *Graph) Induced(vertices []int) (*View, []int, error) { return Induced(g, vertices) }

// Component returns the connected component containing v as a zero-copy
// View, with members in ascending order.
func Component(g Interface, v int) *View {
	dist := BFS(g, v)
	members := make([]int, 0, 64)
	for u, d := range dist {
		if d != Unreachable {
			members = append(members, u)
		}
	}
	return NewView(g, members)
}

// Component returns the connected component of v as a View (see the
// package function Component).
func (g *Graph) Component(v int) *View { return Component(g, v) }

// mat returns the lazily materialized local CSR.
func (v *View) mat() *Graph {
	v.once.Do(func() {
		parent := v.parent
		k := len(v.verts)
		pn := parent.N()
		// Parent-id -> local-id lookup: dense for large subsets, hashed for
		// small ones so a tiny view of a huge graph stays O(subset).
		var localOf func(int32) int32
		if pn <= 8*k {
			dense := make([]int32, pn)
			for i := range dense {
				dense[i] = -1
			}
			for i, pv := range v.verts {
				if dense[pv] != -1 {
					panic(fmt.Sprintf("graph: duplicate vertex %d in view", pv))
				}
				dense[pv] = int32(i)
			}
			localOf = func(p int32) int32 { return dense[p] }
		} else {
			m := make(map[int32]int32, k)
			for i, pv := range v.verts {
				if _, dup := m[pv]; dup {
					panic(fmt.Sprintf("graph: duplicate vertex %d in view", pv))
				}
				m[pv] = int32(i)
			}
			localOf = func(p int32) int32 {
				if l, ok := m[p]; ok {
					return l
				}
				return -1
			}
		}
		ascending := true
		for i := 1; i < k; i++ {
			if v.verts[i] <= v.verts[i-1] {
				ascending = false
				break
			}
		}
		offsets := make([]int64, k+1)
		for i, pv := range v.verts {
			d := int64(0)
			for _, w := range parent.Neighbors(int(pv)) {
				if localOf(w) >= 0 {
					d++
				}
			}
			offsets[i+1] = offsets[i] + d
		}
		neighbors := make([]int32, offsets[k])
		for i, pv := range v.verts {
			pos := offsets[i]
			for _, w := range parent.Neighbors(int(pv)) {
				if l := localOf(w); l >= 0 {
					neighbors[pos] = l
					pos++
				}
			}
			if !ascending {
				// Parent rows are sorted by parent id; the remap is only
				// monotone when the view's vertex order is too.
				slices.Sort(neighbors[offsets[i]:pos])
			}
		}
		v.local = &Graph{offsets: offsets, neighbors: neighbors, m: int(offsets[k] / 2)}
	})
	return v.local
}

// Materialize returns the view's induced subgraph as a standalone
// immutable Graph in local ids (forcing materialization if it has not
// happened yet). The result shares no state with the parent.
func (v *View) Materialize() *Graph { return v.mat() }

// N returns the number of vertices in the view.
func (v *View) N() int { return len(v.verts) }

// M returns the number of undirected edges of the induced subgraph.
func (v *View) M() int { return v.mat().M() }

// Degree returns the induced degree of local vertex u.
func (v *View) Degree(u int) int { return v.mat().Degree(u) }

// Neighbors returns the sorted induced adjacency of local vertex u, in
// local ids.
func (v *View) Neighbors(u int) []int32 { return v.mat().Neighbors(u) }

// Orig returns the parent vertex id of local vertex u.
func (v *View) Orig(u int) int { return int(v.verts[u]) }

// Vertices returns the view's vertex set as parent ids in local-id order.
// The slice is owned by the view and must not be modified.
func (v *View) Vertices() []int32 { return v.verts }

// HasEdge reports whether the induced edge {u, w} (local ids) is present.
func (v *View) HasEdge(u, w int) bool { return HasEdge(v.mat(), u, w) }

// MaxDegree returns the maximum induced degree.
func (v *View) MaxDegree() int { return MaxDegree(v.mat()) }

// Edges returns the induced edges in local ids (see Graph.Edges).
func (v *View) Edges() [][2]int { return v.mat().Edges() }

// EdgeSeq iterates the induced edges in local ids (see Graph.EdgeSeq).
func (v *View) EdgeSeq() iter.Seq2[int, int] { return v.mat().EdgeSeq() }

// Fingerprint returns the content digest of the induced subgraph; it
// equals the Fingerprint of the materialized Graph by construction.
func (v *View) Fingerprint() uint64 { return v.mat().Fingerprint() }

// BFS returns hop distances from src in the view (local ids).
func (v *View) BFS(src int) []int { return BFS(v, src) }

// BFSWithin returns radius-bounded hop distances from src in the view.
func (v *View) BFSWithin(src, radius int) []int { return BFSWithin(v, src, radius) }

// BFSRestricted returns hop distances under an alive mask in the view.
func (v *View) BFSRestricted(src int, alive []bool, radius int) []int {
	return BFSRestricted(v, src, alive, radius)
}

// Eccentricity returns the eccentricity of local vertex u in the view.
func (v *View) Eccentricity(u int, alive []bool) int { return Eccentricity(v, u, alive) }

// Components returns per-vertex component indices of the view.
func (v *View) Components() ([]int, int) { return Components(v) }

// IsConnected reports whether the induced subgraph is connected.
func (v *View) IsConnected() bool { return IsConnected(v) }

// Diameter returns the exact diameter of the induced subgraph.
func (v *View) Diameter() int { return Diameter(v) }

// String summarizes the view for debugging output.
func (v *View) String() string {
	return fmt.Sprintf("view{n=%d of %d}", v.N(), v.parent.N())
}
