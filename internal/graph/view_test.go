package graph

import (
	"slices"
	"testing"

	"netdecomp/internal/randx"
)

// materializedInduced builds the induced subgraph of g the slow explicit
// way — filter the edge list and rebuild from scratch — as the reference
// the zero-copy View must match.
func materializedInduced(g *Graph, subset []int) *Graph {
	local := make(map[int]int, len(subset))
	for i, v := range subset {
		local[v] = i
	}
	b := NewBuilder(len(subset))
	for u, w := range g.EdgeSeq() {
		lu, okU := local[u]
		lw, okW := local[w]
		if okU && okW {
			b.AddEdge(lu, lw)
		}
	}
	return b.Build()
}

// randomSubset picks each vertex independently with probability p, in
// ascending order.
func randomSubset(rng *randx.SplitMix64, n int, p float64) []int {
	var subset []int
	for v := 0; v < n; v++ {
		if rng.Float64() < p {
			subset = append(subset, v)
		}
	}
	return subset
}

// TestPropertyViewMatchesInduced: on random graphs, a zero-copy View of a
// subset is indistinguishable from the materialized induced subgraph —
// same BFS layers from every source, same component structure, same
// Fingerprint. This is the contract that lets the algorithms recurse on
// views instead of copies.
func TestPropertyViewMatchesInduced(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		g := randomGraph(seed, 50, 0.08)
		rng := randx.New(seed + 500)
		subset := randomSubset(rng, g.N(), 0.5)
		view := NewView(g, subset)
		ref := materializedInduced(g, subset)

		if view.N() != ref.N() || view.M() != ref.M() {
			t.Fatalf("seed %d: view n=%d m=%d, ref n=%d m=%d", seed, view.N(), view.M(), ref.N(), ref.M())
		}
		for v := 0; v < view.N(); v++ {
			if view.Orig(v) != subset[v] {
				t.Fatalf("seed %d: Orig(%d) = %d, want %d", seed, v, view.Orig(v), subset[v])
			}
			if !slices.Equal(view.Neighbors(v), ref.Neighbors(v)) {
				t.Fatalf("seed %d: adjacency of %d differs: view %v, ref %v", seed, v, view.Neighbors(v), ref.Neighbors(v))
			}
			if !slices.Equal(view.BFS(v), ref.BFS(v)) {
				t.Fatalf("seed %d: BFS layers from %d differ", seed, v)
			}
		}
		vc, vn := view.Components()
		rc, rn := ref.Components()
		if vn != rn || !slices.Equal(vc, rc) {
			t.Fatalf("seed %d: components differ: view %v/%d, ref %v/%d", seed, vc, vn, rc, rn)
		}
		if view.Fingerprint() != ref.Fingerprint() {
			t.Fatalf("seed %d: view fingerprint %#x != induced fingerprint %#x", seed, view.Fingerprint(), ref.Fingerprint())
		}
		if view.Diameter() != ref.Diameter() {
			t.Fatalf("seed %d: diameters differ", seed)
		}
	}
}

// TestViewUnsortedOrder: a view over an arbitrarily ordered vertex list
// still presents sorted local adjacency, and matches the reference built
// in the same order.
func TestViewUnsortedOrder(t *testing.T) {
	g := randomGraph(3, 40, 0.12)
	subset := []int{17, 3, 29, 0, 11, 24, 5}
	view := NewView(g, subset)
	ref := materializedInduced(g, subset)
	if view.Fingerprint() != ref.Fingerprint() {
		t.Fatalf("unsorted view fingerprint %#x != ref %#x", view.Fingerprint(), ref.Fingerprint())
	}
	for v := 0; v < view.N(); v++ {
		row := view.Neighbors(v)
		if !slices.IsSorted(row) {
			t.Fatalf("view adjacency of %d not sorted: %v", v, row)
		}
	}
}

// TestViewOfView: views compose — a view of a view equals the view of the
// composed subset.
func TestViewOfView(t *testing.T) {
	g := randomGraph(7, 60, 0.1)
	outer := randomSubset(randx.New(1), g.N(), 0.6)
	inner := make([]int, 0, len(outer)/2)
	composed := make([]int, 0, len(outer)/2)
	for i := 0; i < len(outer); i += 2 {
		inner = append(inner, i)
		composed = append(composed, outer[i])
	}
	nested := NewView(NewView(g, outer), inner)
	direct := NewView(g, composed)
	if nested.Fingerprint() != direct.Fingerprint() {
		t.Fatalf("nested view fingerprint %#x != direct %#x", nested.Fingerprint(), direct.Fingerprint())
	}
}

// TestComponentView: Component returns exactly the BFS-reachable set, and
// the view is connected.
func TestComponentView(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	g := b.Build()
	c := g.Component(4)
	if c.N() != 3 || c.Orig(0) != 3 || c.Orig(1) != 4 || c.Orig(2) != 5 {
		t.Fatalf("component of 4 wrong: n=%d verts=%v", c.N(), c.Vertices())
	}
	if !c.IsConnected() {
		t.Fatal("component view must be connected")
	}
	if iso := g.Component(6); iso.N() != 1 || iso.M() != 0 {
		t.Fatalf("isolated component wrong: %v", iso)
	}
}

// TestFromStreamMatchesBuilder: the two-pass streaming build and the
// staged Builder produce Fingerprint-identical graphs, including under
// duplicate edges and self-loops in the stream.
func TestFromStreamMatchesBuilder(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}, {2, 0}, {1, 2}, {3, 3}, {4, 2}, {2, 4}}
	n := 6
	viaBuilder := FromEdges(n, edges)
	viaStream := FromStream(n, func(yield func(u, v int)) {
		for _, e := range edges {
			yield(e[0], e[1])
		}
	})
	if viaStream.N() != viaBuilder.N() || viaStream.M() != viaBuilder.M() {
		t.Fatalf("stream n=%d m=%d, builder n=%d m=%d", viaStream.N(), viaStream.M(), viaBuilder.N(), viaBuilder.M())
	}
	if viaStream.Fingerprint() != viaBuilder.Fingerprint() {
		t.Fatalf("stream fingerprint %#x != builder %#x", viaStream.Fingerprint(), viaBuilder.Fingerprint())
	}
}

// TestFingerprintDistinguishes: structurally different graphs get
// different digests; structurally equal ones built differently get equal
// digests.
func TestFingerprintDistinguishes(t *testing.T) {
	a := path(5)
	b := cycle(5)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("path(5) and cycle(5) share a fingerprint")
	}
	if path(5).Fingerprint() != a.Fingerprint() {
		t.Fatal("identical graphs disagree on fingerprint")
	}
	if Fingerprint(a) != a.Fingerprint() {
		t.Fatal("package function and cached method disagree")
	}
	// A graph differs from its vertex-count-padded copy.
	padded := FromStream(6, func(yield func(u, v int)) {
		for i := 0; i+1 < 5; i++ {
			yield(i, i+1)
		}
	})
	if padded.Fingerprint() == a.Fingerprint() {
		t.Fatal("padding an isolated vertex should change the fingerprint")
	}
}

// TestEdgeSeq: the iterator yields exactly Edges() in order and supports
// early termination.
func TestEdgeSeq(t *testing.T) {
	g := randomGraph(11, 30, 0.2)
	want := g.Edges()
	if len(want) != g.M() {
		t.Fatalf("Edges returned %d pairs for m=%d", len(want), g.M())
	}
	var got [][2]int
	for u, v := range g.EdgeSeq() {
		got = append(got, [2]int{u, v})
	}
	if !slices.Equal(want, got) {
		t.Fatalf("EdgeSeq differs from Edges")
	}
	count := 0
	for range g.EdgeSeq() {
		count++
		if count == 3 {
			break
		}
	}
	if count != 3 {
		t.Fatalf("early break failed, count=%d", count)
	}
}

// TestViewDegreeAndHasEdge: spot-check the remaining Interface surface of
// views against the reference.
func TestViewDegreeAndHasEdge(t *testing.T) {
	g := randomGraph(13, 40, 0.15)
	subset := randomSubset(randx.New(99), g.N(), 0.4)
	view := NewView(g, subset)
	ref := materializedInduced(g, subset)
	for v := 0; v < view.N(); v++ {
		if view.Degree(v) != ref.Degree(v) {
			t.Fatalf("degree of %d differs", v)
		}
		for w := 0; w < view.N(); w++ {
			if view.HasEdge(v, w) != ref.HasEdge(v, w) {
				t.Fatalf("HasEdge(%d,%d) differs", v, w)
			}
		}
	}
}
