package graph

import "sort"

// Components returns, for every vertex, the index of its connected
// component (components are numbered 0..count-1 in order of their smallest
// vertex), together with the number of components.
func Components(g Interface) ([]int, int) {
	return ComponentsRestricted(g, nil)
}

// Components returns per-vertex component indices (see the package
// function Components).
func (g *Graph) Components() ([]int, int) { return Components(g) }

// ComponentsRestricted computes connected components of the subgraph
// induced by the alive mask (nil means all vertices). Dead vertices get
// component index -1.
func ComponentsRestricted(g Interface, alive []bool) ([]int, int) {
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	count := 0
	queue := make([]int32, 0, 64)
	for v := 0; v < n; v++ {
		if comp[v] != -1 {
			continue
		}
		if alive != nil && !alive[v] {
			continue
		}
		comp[v] = count
		queue = append(queue[:0], int32(v))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, w := range g.Neighbors(int(u)) {
				if comp[w] != -1 {
					continue
				}
				if alive != nil && !alive[w] {
					continue
				}
				comp[w] = count
				queue = append(queue, w)
			}
		}
		count++
	}
	return comp, count
}

// ComponentsRestricted computes components under an alive mask (see the
// package function ComponentsRestricted).
func (g *Graph) ComponentsRestricted(alive []bool) ([]int, int) {
	return ComponentsRestricted(g, alive)
}

// ComponentsOfSubset computes the connected components of the subgraph
// induced by the given vertex subset (which must not contain duplicates).
// It returns the components as slices of original vertex ids, each sorted
// ascending, ordered by their first member in subset order.
//
// The walk runs directly on g under a dense membership mask rather than
// materializing an induced subgraph: the cost is one pass over the
// subset's incident edges plus one zeroed byte per graph vertex, which
// keeps the per-phase cluster extraction of a decomposition run cheap
// even when it is called once per phase on small join sets.
func ComponentsOfSubset(g Interface, subset []int) [][]int {
	if len(subset) == 0 {
		return nil
	}
	// 0 = outside the subset, 1 = member not yet reached, 2 = reached.
	state := make([]int8, g.N())
	for _, v := range subset {
		state[v] = 1
	}
	var comps [][]int
	queue := make([]int32, 0, 64)
	for _, s := range subset {
		if state[s] != 1 {
			continue
		}
		state[s] = 2
		queue = append(queue[:0], int32(s))
		members := []int{s}
		for head := 0; head < len(queue); head++ {
			for _, w := range g.Neighbors(int(queue[head])) {
				if state[w] == 1 {
					state[w] = 2
					queue = append(queue, w)
					members = append(members, int(w))
				}
			}
		}
		if len(members) > 32 {
			sort.Ints(members)
		} else {
			insertionSort(members)
		}
		comps = append(comps, members)
	}
	return comps
}

// ComponentsOfSubset computes components of a vertex subset (see the
// package function ComponentsOfSubset).
func (g *Graph) ComponentsOfSubset(subset []int) [][]int { return ComponentsOfSubset(g, subset) }

// insertionSort sorts small int slices in place; cluster member lists are
// usually tiny, so this beats sort.Ints on allocation and speed.
func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// IsConnected reports whether the graph is connected (the empty graph and
// singletons are considered connected).
func IsConnected(g Interface) bool {
	if g.N() <= 1 {
		return true
	}
	_, count := Components(g)
	return count == 1
}

// IsConnected reports whether the graph is connected (see the package
// function IsConnected).
func (g *Graph) IsConnected() bool { return IsConnected(g) }
