package graph

// Components returns, for every vertex, the index of its connected
// component (components are numbered 0..count-1 in order of their smallest
// vertex), together with the number of components.
func (g *Graph) Components() ([]int, int) {
	return g.ComponentsRestricted(nil)
}

// ComponentsRestricted computes connected components of the subgraph
// induced by the alive mask (nil means all vertices). Dead vertices get
// component index -1.
func (g *Graph) ComponentsRestricted(alive []bool) ([]int, int) {
	comp := make([]int, g.N())
	for i := range comp {
		comp[i] = -1
	}
	count := 0
	queue := make([]int32, 0, 64)
	for v := 0; v < g.N(); v++ {
		if comp[v] != -1 {
			continue
		}
		if alive != nil && !alive[v] {
			continue
		}
		comp[v] = count
		queue = append(queue[:0], int32(v))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, w := range g.adj[u] {
				if comp[w] != -1 {
					continue
				}
				if alive != nil && !alive[w] {
					continue
				}
				comp[w] = count
				queue = append(queue, w)
			}
		}
		count++
	}
	return comp, count
}

// ComponentsOfSubset computes the connected components of the subgraph
// induced by the given vertex subset (which must not contain duplicates).
// It returns the components as slices of original vertex ids, each sorted
// ascending, ordered by their smallest member.
func (g *Graph) ComponentsOfSubset(subset []int) [][]int {
	in := make(map[int]bool, len(subset))
	for _, v := range subset {
		in[v] = true
	}
	visited := make(map[int]bool, len(subset))
	var comps [][]int
	queue := make([]int, 0, len(subset))
	for _, v := range subset {
		if visited[v] {
			continue
		}
		visited[v] = true
		queue = append(queue[:0], v)
		comp := []int{}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			comp = append(comp, u)
			for _, w := range g.adj[u] {
				wi := int(w)
				if in[wi] && !visited[wi] {
					visited[wi] = true
					queue = append(queue, wi)
				}
			}
		}
		insertionSort(comp)
		comps = append(comps, comp)
	}
	return comps
}

// insertionSort sorts small int slices in place; cluster member lists are
// usually tiny, so this beats sort.Ints on allocation and speed.
func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// IsConnected reports whether the graph is connected (the empty graph and
// singletons are considered connected).
func (g *Graph) IsConnected() bool {
	if g.N() <= 1 {
		return true
	}
	_, count := g.Components()
	return count == 1
}
