// Package graph implements the static unweighted undirected graphs on which
// every algorithm in this repository operates, together with the traversal
// primitives (breadth-first search, connected components, induced
// subgraphs, diameters) that the decomposition algorithms and their
// validators are built from.
//
// Storage is compressed sparse row (CSR): one flat offsets array and one
// flat neighbors array for the whole graph, so a BFS touches two cache-
// friendly slices instead of chasing one heap allocation per vertex.
// Graphs are immutable once built: construct them with a Builder, the
// two-pass FromStream path, or one of the internal/gen generators, then
// share them freely across goroutines. Vertices are dense integers
// 0..N()-1, which is also the identifier space the distributed model
// assumes ("distinct identity numbers from the range {1..n}", Elkin–Neiman
// Section 1.1, shifted to 0-based here).
//
// The read-only Interface (N/Degree/Neighbors) is the contract every
// traversal primitive and decomposition algorithm accepts; *Graph and the
// zero-copy *View subgraphs both satisfy it, and external callers can plug
// in custom backends the same way.
package graph

import (
	"fmt"
	"iter"
	"slices"
	"sort"
	"sync/atomic"
)

// Interface is the read-only graph contract accepted by every traversal
// primitive (BFS, Components, Diameter, ...) and every decomposition
// algorithm in the repository. *Graph and *View satisfy it; custom
// backends can too.
//
// Implementations must present a simple undirected graph on the dense
// vertex set 0..N()-1 where Neighbors(v) returns v's adjacency sorted
// strictly ascending, without self-loops or duplicates, and the returned
// slice stays valid and unmodified for the lifetime of the value. The
// sorted order is load-bearing: the algorithms' traversal order — and
// therefore their bit-exact outputs — is a function of it.
type Interface interface {
	// N returns the number of vertices.
	N() int
	// Degree returns the degree of vertex v.
	Degree(v int) int
	// Neighbors returns the sorted adjacency list of v, owned by the
	// graph.
	Neighbors(v int) []int32
}

// Graph is an immutable simple undirected graph with vertices 0..n-1,
// stored in compressed sparse row form.
//
// The zero value is the empty graph with no vertices. All methods are safe
// for concurrent use because the structure is never mutated after
// construction.
type Graph struct {
	offsets   []int64 // len n+1; row v is neighbors[offsets[v]:offsets[v+1]]
	neighbors []int32 // concatenated sorted adjacency rows, len 2m
	m         int     // number of undirected edges
	fp        atomic.Uint64
}

// N returns the number of vertices.
func (g *Graph) N() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return int(g.offsets[v+1] - g.offsets[v]) }

// Neighbors returns the sorted adjacency list of v: a window into the
// graph's flat neighbor array. The returned slice is owned by the graph
// and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.neighbors[g.offsets[v]:g.offsets[v+1]] }

// CSR exposes the raw compressed-sparse-row arrays (offsets of length
// N()+1 and the concatenated neighbor rows). Both slices are owned by the
// graph and must not be modified; they exist for flat-iteration hot paths
// and zero-copy interop.
func (g *Graph) CSR() (offsets []int64, neighbors []int32) { return g.offsets, g.neighbors }

// HasEdge reports whether the edge {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool { return HasEdge(g, u, v) }

// MaxDegree returns the maximum vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int { return MaxDegree(g) }

// Edges returns all edges as pairs {u, v} with u < v, in lexicographic
// order. The result is freshly allocated on every call, sized exactly;
// prefer EdgeSeq when the materialized slice is not needed.
func (g *Graph) Edges() [][2]int {
	edges := make([][2]int, g.m)
	i := 0
	for u := 0; u < g.N(); u++ {
		for _, w := range g.Neighbors(u) {
			if int32(u) < w {
				edges[i] = [2]int{u, int(w)}
				i++
			}
		}
	}
	return edges
}

// EdgeSeq returns an iterator over all edges as pairs (u, v) with u < v,
// in lexicographic order, without materializing an edge list.
func (g *Graph) EdgeSeq() iter.Seq2[int, int] { return EdgeSeq(g) }

// Fingerprint returns the content digest of the graph (see the package
// function Fingerprint). It is computed on first use and cached.
//
// The cache is sound only because Graph is immutable: nothing may change
// offsets or neighbors after construction, so the digest of the adjacency
// structure is fixed for the value's lifetime. Every layer that keys on
// the fingerprint (the session cache, the serving registries, the
// persistent store) relies on this contract. Mutable wrappers — such as
// the edge overlay in internal/dyn — must therefore never alias this
// cached digest: each mutated version is a distinct logical graph and
// must carry its own fingerprint, recomputed from its own adjacency
// (graph.FingerprintUncached), never inherited from the base.
func (g *Graph) Fingerprint() uint64 {
	// The digest of an immutable graph never changes; recomputing on the
	// (extremely unlikely) sentinel collision is harmless, so a plain
	// atomic cache suffices and keeps Graph trivially copyable.
	if fp := g.fp.Load(); fp != 0 {
		return fp
	}
	fp := fingerprintOf(g)
	if fp == 0 {
		fp = 1 // reserve the sentinel; still deterministic
	}
	g.fp.Store(fp)
	return fp
}

// String summarizes the graph for debugging output.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.N(), g.M())
}

// Builder accumulates edges and produces an immutable CSR Graph.
// Duplicate edges and self-loops are silently dropped, so generators can
// be sloppy. Edges are staged as one flat pair list — no per-vertex
// allocation happens until Build lays out the final rows.
//
// The zero value is not usable; call NewBuilder with the vertex count.
type Builder struct {
	n     int
	pairs []int32 // interleaved endpoints u0,v0,u1,v1,...
}

// NewBuilder returns a builder for a graph on n vertices. It panics if n is
// negative (a caller bug, never a data condition).
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: NewBuilder called with negative vertex count")
	}
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u, v}. Self-loops are ignored.
// It panics if either endpoint is out of range.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	b.pairs = append(b.pairs, int32(u), int32(v))
}

// Grow reserves capacity for at least edges further AddEdge calls.
func (b *Builder) Grow(edges int) {
	b.pairs = slices.Grow(b.pairs, 2*edges)
}

// Build finalizes the builder into an immutable Graph: a two-pass counting
// layout into the flat CSR arrays, then per-row slices.Sort and
// slices.Compact to order and deduplicate. The builder must not be used
// after Build.
func (b *Builder) Build() *Graph {
	n := b.n
	offsets := make([]int64, n+1)
	for i := 0; i < len(b.pairs); i += 2 {
		offsets[b.pairs[i]+1]++
		offsets[b.pairs[i+1]+1]++
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	neighbors := make([]int32, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for i := 0; i < len(b.pairs); i += 2 {
		u, v := b.pairs[i], b.pairs[i+1]
		neighbors[cursor[u]] = v
		cursor[u]++
		neighbors[cursor[v]] = u
		cursor[v]++
	}
	b.pairs = nil
	return finishCSR(n, offsets, neighbors)
}

// finishCSR sorts and deduplicates every row of a raw (possibly
// duplicate-carrying) CSR layout in place, compacting rows leftward, and
// wraps the result in a Graph.
func finishCSR(n int, offsets []int64, neighbors []int32) *Graph {
	var write, start int64
	for v := 0; v < n; v++ {
		end := offsets[v+1]
		row := neighbors[start:end]
		slices.Sort(row)
		row = slices.Compact(row)
		offsets[v] = write
		copy(neighbors[write:], row)
		start = end
		write += int64(len(row))
	}
	offsets[n] = write
	return &Graph{offsets: offsets, neighbors: neighbors[:write:write], m: int(write / 2)}
}

// FromEdges builds a graph on n vertices from an edge list.
func FromEdges(n int, edges [][2]int) *Graph {
	b := NewBuilder(n)
	b.Grow(len(edges))
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// FromStream builds a graph on n vertices from a replayable edge stream,
// constructing the CSR arrays directly with no intermediate edge staging:
// stream is invoked exactly twice — once counting degrees, once filling
// rows — and must yield the same edges (any order-stable source: a
// deterministic generator replayed from a snapshotted rng, a buffered
// list, a file read twice). Self-loops are dropped and duplicates removed,
// exactly as with Builder; out-of-range endpoints panic.
//
// A stream that yields differently on its second invocation corrupts
// nothing — the fill pass panics on overflow or leaves short rows that
// finishCSR compacts — but the result is unspecified; streams must be
// replayable.
func FromStream(n int, stream func(yield func(u, v int))) *Graph {
	if n < 0 {
		panic("graph: FromStream called with negative vertex count")
	}
	offsets := make([]int64, n+1)
	stream(func(u, v int) {
		if u < 0 || u >= n || v < 0 || v >= n {
			panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, n))
		}
		if u == v {
			return
		}
		offsets[u+1]++
		offsets[v+1]++
	})
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	neighbors := make([]int32, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	stream(func(u, v int) {
		if u < 0 || u >= n || v < 0 || v >= n {
			panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, n))
		}
		if u == v {
			return
		}
		neighbors[cursor[u]] = int32(v)
		cursor[u]++
		neighbors[cursor[v]] = int32(u)
		cursor[v]++
	})
	return finishCSR(n, offsets, neighbors)
}

// Package-level primitives over Interface. Each mirrors a *Graph method so
// that algorithms written against Interface and call sites holding a
// concrete graph read the same.

// HasEdge reports whether the edge {u, v} is present, by binary search in
// u's sorted adjacency row.
func HasEdge(g Interface, u, v int) bool {
	list := g.Neighbors(u)
	i := sort.Search(len(list), func(i int) bool { return list[i] >= int32(v) })
	return i < len(list) && list[i] == int32(v)
}

// MaxDegree returns the maximum vertex degree, or 0 for an empty graph.
func MaxDegree(g Interface) int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// EdgeCount returns the number of undirected edges, using the backend's
// own count when it keeps one (as *Graph and *View do).
func EdgeCount(g Interface) int {
	if c, ok := g.(interface{ M() int }); ok {
		return c.M()
	}
	total := 0
	for v := 0; v < g.N(); v++ {
		total += g.Degree(v)
	}
	return total / 2
}

// Edges returns all edges of g as pairs {u, v} with u < v, in
// lexicographic order, sized exactly.
func Edges(g Interface) [][2]int {
	if gg, ok := g.(*Graph); ok {
		return gg.Edges()
	}
	edges := make([][2]int, 0, EdgeCount(g))
	for u, v := range EdgeSeq(g) {
		edges = append(edges, [2]int{u, v})
	}
	return edges
}

// EdgeSeq returns an iterator over the edges of g as pairs (u, v) with
// u < v, in lexicographic order, without materializing an edge list.
func EdgeSeq(g Interface) iter.Seq2[int, int] {
	return func(yield func(u, v int) bool) {
		for u := 0; u < g.N(); u++ {
			for _, w := range g.Neighbors(u) {
				if int32(u) < w {
					if !yield(u, int(w)) {
						return
					}
				}
			}
		}
	}
}
