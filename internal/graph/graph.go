// Package graph implements the static unweighted undirected graphs on which
// every algorithm in this repository operates, together with the traversal
// primitives (breadth-first search, connected components, induced
// subgraphs, diameters) that the decomposition algorithms and their
// validators are built from.
//
// Graphs are immutable once built: construct them with a Builder or one of
// the internal/gen generators, then share them freely across goroutines.
// Vertices are dense integers 0..N()-1, which is also the identifier space
// the distributed model assumes ("distinct identity numbers from the range
// {1..n}", Elkin–Neiman Section 1.1, shifted to 0-based here).
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph with vertices 0..n-1.
//
// The zero value is the empty graph with no vertices. All methods are safe
// for concurrent use because the structure is never mutated after
// construction.
type Graph struct {
	adj [][]int32 // sorted adjacency lists
	m   int       // number of undirected edges
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted adjacency list of v. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// HasEdge reports whether the edge {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	list := g.adj[u]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= int32(v) })
	return i < len(list) && list[i] == int32(v)
}

// MaxDegree returns the maximum vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := range g.adj {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// Edges returns all edges as pairs {u, v} with u < v, in lexicographic
// order. The result is freshly allocated on every call.
func (g *Graph) Edges() [][2]int {
	edges := make([][2]int, 0, g.m)
	for u := range g.adj {
		for _, w := range g.adj[u] {
			if int32(u) < w {
				edges = append(edges, [2]int{u, int(w)})
			}
		}
	}
	return edges
}

// String summarizes the graph for debugging output.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.N(), g.M())
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges and self-loops are silently dropped, so generators can be sloppy.
//
// The zero value is not usable; call NewBuilder with the vertex count.
type Builder struct {
	n   int
	adj [][]int32
}

// NewBuilder returns a builder for a graph on n vertices. It panics if n is
// negative (a caller bug, never a data condition).
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: NewBuilder called with negative vertex count")
	}
	return &Builder{n: n, adj: make([][]int32, n)}
}

// AddEdge records the undirected edge {u, v}. Self-loops are ignored.
// It panics if either endpoint is out of range.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	b.adj[u] = append(b.adj[u], int32(v))
	b.adj[v] = append(b.adj[v], int32(u))
}

// Build finalizes the builder into an immutable Graph, sorting adjacency
// lists and removing duplicate edges. The builder must not be used after
// Build.
func (b *Builder) Build() *Graph {
	g := &Graph{adj: b.adj}
	total := 0
	for v := range g.adj {
		list := g.adj[v]
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		// Deduplicate in place.
		out := list[:0]
		for i, w := range list {
			if i == 0 || w != list[i-1] {
				out = append(out, w)
			}
		}
		g.adj[v] = out
		total += len(out)
	}
	g.m = total / 2
	b.adj = nil
	return g
}

// FromEdges builds a graph on n vertices from an edge list.
func FromEdges(n int, edges [][2]int) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Induced returns the subgraph induced by the given vertices, together with
// the mapping from new vertex index to original vertex id. Duplicate
// entries in vertices are an error.
func (g *Graph) Induced(vertices []int) (*Graph, []int, error) {
	idx := make(map[int]int, len(vertices))
	orig := make([]int, len(vertices))
	for i, v := range vertices {
		if v < 0 || v >= g.N() {
			return nil, nil, fmt.Errorf("graph: induced vertex %d out of range [0,%d)", v, g.N())
		}
		if _, dup := idx[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in induced set", v)
		}
		idx[v] = i
		orig[i] = v
	}
	b := NewBuilder(len(vertices))
	for i, v := range vertices {
		for _, w := range g.adj[v] {
			if j, ok := idx[int(w)]; ok && i < j {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build(), orig, nil
}
