package graph

// FNV-1a parameters (64-bit).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvWord folds one little-endian 64-bit word into an FNV-1a state.
func fnvWord(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h
}

// Fingerprint returns a stable 64-bit content digest of g: FNV-1a over the
// vertex count followed by every adjacency row (degree, then the sorted
// neighbor ids) in vertex order. It is a pure function of the logical
// graph — identical for a Builder-built, stream-built, parsed, or
// View-materialized copy of the same (n, edge set) — which is what makes
// it usable as a cache key for decomposition results and derived
// structures. Distinct graphs collide with probability ~2⁻⁶⁴.
//
// *Graph and *View cache their digest, so repeated keying of the same
// value costs O(1) after the first call; other backends are rehashed every
// time.
func Fingerprint(g Interface) uint64 {
	switch t := g.(type) {
	case *Graph:
		return t.Fingerprint()
	case *View:
		return t.Fingerprint()
	}
	return fingerprintOf(g)
}

// fingerprintOf is the uncached digest computation behind Fingerprint.
func fingerprintOf(g Interface) uint64 {
	h := uint64(fnvOffset64)
	n := g.N()
	h = fnvWord(h, uint64(n))
	for v := 0; v < n; v++ {
		row := g.Neighbors(v)
		h = fnvWord(h, uint64(len(row)))
		for _, w := range row {
			h = fnvWord(h, uint64(uint32(w)))
		}
	}
	return h
}
