package graph

// FNV-1a parameters (64-bit).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvWord folds one little-endian 64-bit word into an FNV-1a state.
func fnvWord(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h
}

// Fingerprint returns a stable 64-bit content digest of g: FNV-1a over the
// vertex count followed by every adjacency row (degree, then the sorted
// neighbor ids) in vertex order. It is a pure function of the logical
// graph — identical for a Builder-built, stream-built, parsed, or
// View-materialized copy of the same (n, edge set) — which is what makes
// it usable as a cache key for decomposition results and derived
// structures. Distinct graphs collide with probability ~2⁻⁶⁴.
//
// Backends that keep their own digest cache expose it through a
// Fingerprint() method — *Graph and *View do, as does dyn.Overlay (which
// caches per immutable version) — and this function defers to it, so
// repeated keying of the same value costs O(1) after the first call.
// Other backends are rehashed every time. A backend's cached method must
// honor the same contract as FingerprintUncached: equal (n, edge set) ⇒
// equal digest, regardless of representation.
func Fingerprint(g Interface) uint64 {
	if c, ok := g.(interface{ Fingerprint() uint64 }); ok {
		return c.Fingerprint()
	}
	return fingerprintOf(g)
}

// FingerprintUncached recomputes the digest from the adjacency structure,
// bypassing any backend cache. Mutable-overlay backends use it to compute
// the digest of a fresh version without recursing into their own cached
// Fingerprint method.
func FingerprintUncached(g Interface) uint64 { return fingerprintOf(g) }

// fingerprintOf is the uncached digest computation behind Fingerprint.
func fingerprintOf(g Interface) uint64 {
	h := uint64(fnvOffset64)
	n := g.N()
	h = fnvWord(h, uint64(n))
	for v := 0; v < n; v++ {
		row := g.Neighbors(v)
		h = fnvWord(h, uint64(len(row)))
		for _, w := range row {
			h = fnvWord(h, uint64(uint32(w)))
		}
	}
	return h
}
