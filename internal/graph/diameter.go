package graph

// Diameter returns the exact diameter of the graph: the maximum distance
// between any pair of vertices in the same component. It returns 0 for
// graphs with at most one vertex and ignores pairs in different components
// (use IsConnected to detect that case). Cost is one BFS per vertex.
func Diameter(g Interface) int {
	n := g.N()
	diam := 0
	s := newBFSScratch(n)
	for v := 0; v < n; v++ {
		s.run(g, v, nil, -1)
		for w := 0; w < n; w++ {
			if s.seen(int32(w)) && s.dist[w] > diam {
				diam = s.dist[w]
			}
		}
	}
	return diam
}

// Diameter returns the exact diameter (see the package function Diameter).
func (g *Graph) Diameter() int { return Diameter(g) }

// SubsetStrongDiameter returns the diameter of the subgraph induced by the
// vertex subset — the "strong diameter" of a cluster in the sense of the
// paper: distances are measured inside G(C) only. It returns (diameter,
// true) when the induced subgraph is connected and (0, false) when it is
// not (a disconnected cluster has infinite strong diameter).
//
// The subset is wrapped in a zero-copy View and the diameter measured
// there, so the cost is one BFS per member over the view's local CSR —
// proportional to the cluster, not the host graph. This is the
// verification hot path of the scaling experiments.
func SubsetStrongDiameter(g Interface, subset []int) (int, bool) {
	if len(subset) == 0 {
		return 0, true
	}
	view := NewView(g, subset)
	n := view.N()
	diam := 0
	s := newBFSScratch(n)
	for v := 0; v < n; v++ {
		s.run(view, v, nil, -1)
		reached := 0
		for w := 0; w < n; w++ {
			if s.seen(int32(w)) {
				reached++
				if s.dist[w] > diam {
					diam = s.dist[w]
				}
			}
		}
		if reached != n {
			return 0, false
		}
	}
	return diam, true
}

// SubsetStrongDiameter returns the induced-subgraph diameter of a vertex
// subset (see the package function SubsetStrongDiameter).
func (g *Graph) SubsetStrongDiameter(subset []int) (int, bool) {
	return SubsetStrongDiameter(g, subset)
}

// SubsetWeakDiameter returns the maximum distance in the whole graph G
// between any two vertices of the subset — the "weak diameter" of a
// cluster. Pairs that are disconnected in G report ok=false.
func SubsetWeakDiameter(g Interface, subset []int) (int, bool) {
	if len(subset) <= 1 {
		return 0, true
	}
	diam := 0
	s := newBFSScratch(g.N())
	for _, src := range subset {
		s.run(g, src, nil, -1)
		for _, w := range subset {
			if !s.seen(int32(w)) {
				return 0, false
			}
			if s.dist[w] > diam {
				diam = s.dist[w]
			}
		}
	}
	return diam, true
}

// SubsetWeakDiameter returns the whole-graph diameter of a vertex subset
// (see the package function SubsetWeakDiameter).
func (g *Graph) SubsetWeakDiameter(subset []int) (int, bool) {
	return SubsetWeakDiameter(g, subset)
}
