package graph

// Diameter returns the exact diameter of the graph: the maximum distance
// between any pair of vertices in the same component. It returns 0 for
// graphs with at most one vertex and ignores pairs in different components
// (use IsConnected to detect that case). Cost is one BFS per vertex.
func (g *Graph) Diameter() int {
	diam := 0
	s := newBFSScratch(g.N())
	for v := 0; v < g.N(); v++ {
		s.run(g, v, nil, -1)
		for w := 0; w < g.N(); w++ {
			if s.seen(int32(w)) && s.dist[w] > diam {
				diam = s.dist[w]
			}
		}
	}
	return diam
}

// SubsetStrongDiameter returns the diameter of the subgraph induced by the
// vertex subset — the "strong diameter" of a cluster in the sense of the
// paper: distances are measured inside G(C) only. It returns (diameter,
// true) when the induced subgraph is connected and (0, false) when it is
// not (a disconnected cluster has infinite strong diameter).
//
// Cost is one restricted BFS per member over slice-based scratch, so large
// clusters (the verification hot path of the scaling experiments) stay
// allocation-free per BFS.
func (g *Graph) SubsetStrongDiameter(subset []int) (int, bool) {
	if len(subset) == 0 {
		return 0, true
	}
	in := make([]bool, g.N())
	for _, v := range subset {
		in[v] = true
	}
	diam := 0
	dist := make([]int, g.N())
	stamp := make([]int, g.N())
	epoch := 0
	queue := make([]int32, 0, len(subset))
	for _, src := range subset {
		epoch++
		queue = queue[:0]
		dist[src] = 0
		stamp[src] = epoch
		queue = append(queue, int32(src))
		reached := 1
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			du := dist[u]
			for _, w := range g.adj[u] {
				if !in[w] || stamp[w] == epoch {
					continue
				}
				stamp[w] = epoch
				dist[w] = du + 1
				queue = append(queue, w)
				reached++
				if du+1 > diam {
					diam = du + 1
				}
			}
		}
		if reached != len(subset) {
			return 0, false
		}
	}
	return diam, true
}

// SubsetWeakDiameter returns the maximum distance in the whole graph G
// between any two vertices of the subset — the "weak diameter" of a
// cluster. Pairs that are disconnected in G report ok=false.
func (g *Graph) SubsetWeakDiameter(subset []int) (int, bool) {
	if len(subset) <= 1 {
		return 0, true
	}
	diam := 0
	s := newBFSScratch(g.N())
	for _, src := range subset {
		s.run(g, src, nil, -1)
		for _, w := range subset {
			if !s.seen(int32(w)) {
				return 0, false
			}
			if s.dist[w] > diam {
				diam = s.dist[w]
			}
		}
	}
	return diam, true
}
