package obs

import (
	"math"
	"math/bits"
	"runtime"
	"sync/atomic"
)

// numBuckets covers the full int64 range: bucket 0 holds values ≤ 0 and
// bucket i (1 ≤ i ≤ 64) holds values in [2^(i−1), 2^i − 1].
const numBuckets = 65

// Histogram is a lock-free log-bucketed histogram of int64 observations
// (latencies in nanoseconds, message counts, frontier sizes). Buckets are
// powers of two, so Observe is two atomic adds and a CAS-bounded min/max
// update, concurrent-writer safe with no lock. Quantiles are estimated
// from the bucket counts by linear interpolation inside the bucket,
// clamped to the observed min/max — at most a factor-2 relative error,
// which is exactly the fidelity a latency summary needs.
//
// The zero value is ready to use; a nil *Histogram discards observations.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	// extrema holds 0 (min/max unset), 1 (the first observer is seeding
	// them) or 2 (seeded). The explicit state machine exists because 0 is
	// a legitimate minimum: a plain "count == 1 seeds" protocol would let
	// a concurrent second observer compare against the zero value and
	// skip its own update.
	extrema atomic.Int32
	min     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for h.extrema.Load() != 2 {
		if h.extrema.CompareAndSwap(0, 1) {
			h.min.Store(v)
			h.max.Store(v)
			h.extrema.Store(2)
			h.buckets[bucketOf(v)].Add(1)
			return
		}
		// Another goroutine is seeding; it finishes in two stores.
		runtime.Gosched()
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// Bucket is one non-empty histogram bucket in a snapshot: Count values
// fell in [Lo, Hi].
type Bucket struct {
	Lo, Hi int64
	Count  int64
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Min     int64
	Max     int64
	Buckets []Bucket // non-empty buckets, ascending
}

// Snapshot copies the histogram's current state. Counts are read bucket
// by bucket, so a snapshot taken under concurrent writes is a consistent
// histogram of *some* interleaving (totals may trail the bucket sum by
// in-flight observations — harmless for monitoring).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	if s.Count == 0 {
		return s
	}
	s.Sum = h.sum.Load()
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	for i := 0; i < numBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		lo, hi := int64(0), int64(0)
		if i > 0 {
			lo = int64(1) << (i - 1)
			if i < 64 {
				hi = int64(1)<<i - 1
			} else {
				hi = math.MaxInt64
			}
		}
		s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: hi, Count: c})
	}
	return s
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts:
// the bucket holding the rank is located and the value interpolated
// linearly inside its [Lo, Hi] range, clamped to the observed min/max.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count-1)
	seen := float64(0)
	for _, b := range s.Buckets {
		if rank < seen+float64(b.Count) {
			lo, hi := float64(b.Lo), float64(b.Hi)
			if lo < float64(s.Min) {
				lo = float64(s.Min)
			}
			if hi > float64(s.Max) {
				hi = float64(s.Max)
			}
			if hi <= lo || b.Count == 1 {
				return lo
			}
			frac := (rank - seen) / float64(b.Count-1)
			if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		seen += float64(b.Count)
	}
	return float64(s.Max)
}
