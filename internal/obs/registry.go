package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry is a name-keyed set of metrics. Metrics are created on first
// use (Counter/Gauge/Histogram return the existing instrument or register
// a new one), so independent layers agree on an instrument by agreeing on
// its name, and instrument handles can be resolved once and used lock-free
// on hot paths. A nil *Registry hands out nil instruments, which discard
// everything — the disabled path costs nothing past the nil test.
//
// Names are dotted paths ("engine.rounds", "session.hit.ns"); the ".ns"
// suffix marks nanosecond latency histograms by convention, and the
// Prometheus exposition maps dots and other non-identifier characters to
// underscores.
type Registry struct {
	mu     sync.RWMutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it on first
// use. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counts[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counts[name]; c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. A nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use. A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every registered metric, each kind
// sorted by name.
type Snapshot struct {
	Counters   []NamedValue
	Gauges     []NamedValue
	Histograms []NamedHistogram
}

// NamedValue is one counter or gauge reading.
type NamedValue struct {
	Name  string
	Value int64
}

// NamedHistogram is one histogram snapshot.
type NamedHistogram struct {
	Name string
	HistogramSnapshot
}

// Snapshot captures the registry. It is safe under concurrent writes;
// each metric is read atomically.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counts {
		s.Counters = append(s.Counters, NamedValue{name, c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, NamedValue{name, g.Value()})
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, NamedHistogram{name, h.Snapshot()})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// promName maps a dotted metric name onto the Prometheus identifier
// grammar: [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as summaries with quantile labels plus _sum and _count. A
// serving daemon's /metrics endpoint is exactly this call.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	for _, c := range s.Counters {
		n := promName(c.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		n := promName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", n); err != nil {
			return err
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %g\n", n, fmt.Sprintf("%g", q), h.Quantile(q)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", n, h.Sum, n, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// ExpvarMap renders the registry as the plain map expvar.Func expects:
// counters and gauges by name, histograms as {count, sum, min, max, p50,
// p90, p99}. Publishing it puts the whole registry on /debug/vars:
//
//	expvar.Publish("netdecomp", expvar.Func(func() any { return reg.ExpvarMap() }))
func (r *Registry) ExpvarMap() map[string]any {
	s := r.Snapshot()
	out := make(map[string]any, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for _, c := range s.Counters {
		out[c.Name] = c.Value
	}
	for _, g := range s.Gauges {
		out[g.Name] = g.Value
	}
	for _, h := range s.Histograms {
		out[h.Name] = map[string]any{
			"count": h.Count,
			"sum":   h.Sum,
			"min":   h.Min,
			"max":   h.Max,
			"p50":   h.Quantile(0.5),
			"p90":   h.Quantile(0.9),
			"p99":   h.Quantile(0.99),
		}
	}
	return out
}
