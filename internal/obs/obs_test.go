package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.Sum != 500500 {
		t.Fatalf("sum = %d, want 500500", s.Sum)
	}
	if s.Min != 1 || s.Max != 1000 {
		t.Fatalf("min/max = %d/%d, want 1/1000", s.Min, s.Max)
	}
	if m := s.Mean(); m != 500.5 {
		t.Fatalf("mean = %v, want 500.5", m)
	}
	// Log buckets give at most a factor-2 relative error on quantiles.
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 500}, {0.9, 900}, {0.99, 990},
	} {
		got := s.Quantile(tc.q)
		if got < tc.want/2 || got > tc.want*2 {
			t.Errorf("q%v = %v, want within 2x of %v", tc.q, got, tc.want)
		}
	}
	if q := s.Quantile(0); q != 1 {
		t.Errorf("q0 = %v, want 1", q)
	}
	if q := s.Quantile(1); q != 1000 {
		t.Errorf("q1 = %v, want 1000", q)
	}
}

func TestHistogramSingleAndNonPositive(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-5)
	h.Observe(64)
	s := h.Snapshot()
	if s.Count != 3 || s.Min != -5 || s.Max != 64 {
		t.Fatalf("snapshot = %+v", s)
	}
	if len(s.Buckets) != 2 {
		t.Fatalf("buckets = %+v, want 2 (non-positive + [64,127])", s.Buckets)
	}
	if q := s.Quantile(1); q != 64 {
		t.Fatalf("q1 = %v, want 64", q)
	}
	var empty Histogram
	if s := empty.Snapshot(); s.Count != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestRegistrySharing(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x.y")
	b := r.Counter("x.y")
	if a != b {
		t.Fatal("same name must return same counter")
	}
	a.Inc()
	if r.Counter("x.y").Value() != 1 {
		t.Fatal("shared counter lost its value")
	}
	r.Gauge("g").Set(3)
	r.Histogram("h.ns").Observe(100)
	s := r.Snapshot()
	if len(s.Counters) != 1 || len(s.Gauges) != 1 || len(s.Histograms) != 1 {
		t.Fatalf("snapshot sizes = %d/%d/%d", len(s.Counters), len(s.Gauges), len(s.Histograms))
	}
	if s.Counters[0].Name != "x.y" || s.Counters[0].Value != 1 {
		t.Fatalf("counter snapshot = %+v", s.Counters[0])
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.rounds").Add(12)
	r.Gauge("session.inflight").Set(2)
	for i := int64(1); i <= 100; i++ {
		r.Histogram("session.hit.ns").Observe(i * 1000)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE engine_rounds counter\nengine_rounds 12\n",
		"# TYPE session_inflight gauge\nsession_inflight 2\n",
		"# TYPE session_hit_ns summary\n",
		`session_hit_ns{quantile="0.5"}`,
		`session_hit_ns{quantile="0.99"}`,
		"session_hit_ns_sum 5050000\n",
		"session_hit_ns_count 100\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestExpvarMap(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(5)
	r.Histogram("h").Observe(10)
	m := r.ExpvarMap()
	if m["c"] != int64(5) {
		t.Fatalf("c = %v", m["c"])
	}
	hm, ok := m["h"].(map[string]any)
	if !ok || hm["count"] != int64(1) {
		t.Fatalf("h = %#v", m["h"])
	}
	if _, err := json.Marshal(m); err != nil {
		t.Fatalf("expvar map not JSON-marshalable: %v", err)
	}
}

func TestTracerSpansAndChromeExport(t *testing.T) {
	trc := NewTracer()
	job := trc.Start("job", KV{"key", 1})
	plan := job.Child("plan/elkin-neiman", KV{"seed", 7})
	plan.Event("round", KV{"round", 0}, KV{"messages", 10})
	plan.End()
	job.End()

	evs := trc.Events()
	wantPh := []byte{'B', 'B', 'i', 'E', 'E'}
	if len(evs) != len(wantPh) {
		t.Fatalf("%d events, want %d", len(evs), len(wantPh))
	}
	for i, e := range evs {
		if e.Ph != wantPh[i] {
			t.Errorf("event %d phase %c, want %c", i, e.Ph, wantPh[i])
		}
		if e.TID != 1 {
			t.Errorf("event %d tid %d, want 1 (same virtual thread)", i, e.TID)
		}
	}

	var buf bytes.Buffer
	if err := trc.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Ph   string           `json:"ph"`
			TID  int64            `json:"tid"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("chrome trace has %d events, want 5", len(doc.TraceEvents))
	}
	if doc.TraceEvents[2].Args["messages"] != 10 {
		t.Fatalf("instant args = %+v", doc.TraceEvents[2].Args)
	}
}

func TestRootSpansGetDistinctTIDs(t *testing.T) {
	trc := NewTracer()
	a := trc.Start("a")
	b := trc.Start("b")
	a.End()
	b.End()
	evs := trc.Events()
	if evs[0].TID == evs[1].TID {
		t.Fatal("root spans must land on distinct virtual threads")
	}
}

// TestNilSafety is the disabled-path contract: every operation on every
// nil instrument must be a silent no-op.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(1)
	_ = c.Value()
	var g *Gauge
	g.Set(1)
	g.Add(1)
	_ = g.Value()
	var h *Histogram
	h.Observe(1)
	_ = h.Snapshot()
	var reg *Registry
	if reg.Counter("x") != nil || reg.Gauge("x") != nil || reg.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	_ = reg.Snapshot()
	var trc *Tracer
	sp := trc.Start("x")
	if sp != nil {
		t.Fatal("nil tracer must return nil span")
	}
	sp.End()
	sp.Event("e")
	if sp.Child("c") != nil {
		t.Fatal("nil span must return nil child")
	}
	var rec *Recorder
	if New(nil, nil) != nil {
		t.Fatal("New(nil, nil) must be nil (disabled)")
	}
	if rec.Registry() != nil || rec.Tracer() != nil || rec.Counter("x") != nil ||
		rec.Gauge("x") != nil || rec.Histogram("x") != nil || rec.Span("x") != nil ||
		rec.Under(nil) != nil || rec.Rounds() != nil {
		t.Fatal("nil recorder must be fully inert")
	}
	var rr *RoundRecorder
	rr.Record(0, 1, 2, 3)
}

func TestRecorderUnderNesting(t *testing.T) {
	trc := NewTracer()
	rec := New(NewRegistry(), trc)
	job := rec.Span("job")
	inner := rec.Under(job)
	plan := inner.Span("plan")
	plan.End()
	job.End()
	evs := trc.Events()
	if len(evs) != 4 || evs[0].TID != evs[1].TID {
		t.Fatalf("plan span must share the job span's virtual thread: %+v", evs)
	}
}

func TestRoundRecorderRecords(t *testing.T) {
	reg := NewRegistry()
	trc := NewTracer()
	rec := New(reg, trc)
	span := rec.Span("plan")
	rr := rec.Under(span).Rounds()
	rr.Record(0, 10, 20, 5)
	rr.Record(1, 0, 0, 3)
	span.End()

	if got := reg.Counter("engine.rounds").Value(); got != 2 {
		t.Fatalf("engine.rounds = %d, want 2", got)
	}
	if got := reg.Counter("engine.messages").Value(); got != 10 {
		t.Fatalf("engine.messages = %d, want 10", got)
	}
	if got := reg.Counter("engine.words").Value(); got != 20 {
		t.Fatalf("engine.words = %d, want 20", got)
	}
	s := reg.Histogram("engine.round.active").Snapshot()
	if s.Count != 2 || s.Min != 3 || s.Max != 5 {
		t.Fatalf("engine.round.active = %+v", s)
	}
	evs := trc.Events()
	// span B, two round instants, span E.
	if len(evs) != 4 || evs[1].Name != "round" || evs[2].Name != "round" {
		t.Fatalf("trace = %+v", evs)
	}
	if evs[1].NArgs != 4 || evs[1].Args[1].V != 10 {
		t.Fatalf("round event args = %+v", evs[1].Args)
	}
}

// TestConcurrentRegistry hammers one registry from many goroutines; run
// under -race in CI it is the concurrent-writes half of the telemetry
// test matrix.
func TestConcurrentRegistry(t *testing.T) {
	reg := NewRegistry()
	trc := NewTracer()
	const goroutines, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := New(reg, trc)
			for i := 0; i < iters; i++ {
				reg.Counter("shared.counter").Inc()
				reg.Gauge("shared.gauge").Set(int64(i))
				reg.Histogram("shared.hist").Observe(int64(i%64 + 1))
				if i%100 == 0 {
					sp := rec.Span("work", KV{"worker", int64(w)})
					rr := rec.Under(sp).Rounds()
					rr.Record(i, int64(i), int64(2*i), w)
					sp.End()
					_ = reg.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("shared.counter").Value(); got != goroutines*iters {
		t.Fatalf("shared.counter = %d, want %d", got, goroutines*iters)
	}
	s := reg.Histogram("shared.hist").Snapshot()
	if s.Count != goroutines*iters {
		t.Fatalf("shared.hist count = %d, want %d", s.Count, goroutines*iters)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, s.Count)
	}
}
