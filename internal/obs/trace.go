package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// maxEventArgs is the fixed annotation capacity of one event; emission
// never allocates per event beyond the event slot itself.
const maxEventArgs = 4

// Event is one trace record: a span boundary ('B'/'E') or an instant
// ('i'). TS is nanoseconds since the tracer epoch; TID is the virtual
// thread — every root span gets its own, children inherit it, so
// chrome://tracing renders each concurrent job as its own stacked track.
type Event struct {
	Name  string
	Ph    byte
	TS    int64
	TID   int64
	Args  [maxEventArgs]KV
	NArgs int
}

// Tracer is an append-only trace-event log. Emission is a mutex-guarded
// append — spans live on cold paths (job, plan, phase) and once-per-round
// events, never per-message — and the log is exported with
// WriteChromeTrace. A nil *Tracer is fully disabled: Start returns a nil
// *Span and every span method on nil is a no-op.
type Tracer struct {
	epoch   time.Time
	nextTID atomic.Int64

	mu     sync.Mutex
	events []Event
}

// NewTracer returns an empty tracer whose timestamps count from now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// now returns nanoseconds since the epoch.
func (t *Tracer) now() int64 {
	return int64(time.Since(t.epoch))
}

// emit appends one event.
func (t *Tracer) emit(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of the log so far. Tests normalize the TS fields
// before comparing streams across schedulers; everything else — names,
// phases, tids, args, order — is deterministic for a deterministic run.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Span is one open trace region. End closes it; Child and Event hang
// nested regions and instants onto the same virtual thread. All methods
// are no-ops on a nil *Span, so a disabled tracer costs one nil test at
// each (cold) call site.
type Span struct {
	t    *Tracer
	name string
	tid  int64
}

// Start opens a root span on a fresh virtual thread.
func (t *Tracer) Start(name string, args ...KV) *Span {
	if t == nil {
		return nil
	}
	s := &Span{t: t, name: name, tid: t.nextTID.Add(1)}
	t.emit(spanEvent(name, 'B', t.now(), s.tid, args))
	return s
}

// Child opens a nested span on the same virtual thread.
func (s *Span) Child(name string, args ...KV) *Span {
	if s == nil {
		return nil
	}
	c := &Span{t: s.t, name: name, tid: s.tid}
	s.t.emit(spanEvent(name, 'B', s.t.now(), s.tid, args))
	return c
}

// Event records an instant inside the span.
func (s *Span) Event(name string, args ...KV) {
	if s == nil {
		return
	}
	s.t.emit(spanEvent(name, 'i', s.t.now(), s.tid, args))
}

// End closes the span. Close order is the caller's responsibility (last
// opened, first ended), matching the Chrome trace B/E pairing rule.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.emit(Event{Name: s.name, Ph: 'E', TS: s.t.now(), TID: s.tid})
}

// spanEvent builds an event from a variadic arg list, keeping the first
// maxEventArgs annotations.
func spanEvent(name string, ph byte, ts, tid int64, args []KV) Event {
	e := Event{Name: name, Ph: ph, TS: ts, TID: tid}
	for _, kv := range args {
		if e.NArgs == maxEventArgs {
			break
		}
		e.Args[e.NArgs] = kv
		e.NArgs++
	}
	return e
}

// chromeEvent is the JSON shape of one Chrome trace-event row.
type chromeEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	TS   float64          `json:"ts"` // microseconds
	PID  int              `json:"pid"`
	TID  int64            `json:"tid"`
	S    string           `json:"s,omitempty"` // instant scope
	Args map[string]int64 `json:"args,omitempty"`
}

// WriteChromeTrace exports the log in the Chrome trace-event JSON format
// ({"traceEvents": [...]}), loadable in chrome://tracing and Perfetto for
// flamegraph viewing. Timestamps are microseconds with nanosecond
// fraction preserved.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	rows := []chromeEvent{}
	for _, e := range t.Events() {
		ce := chromeEvent{
			Name: e.Name,
			Ph:   string(rune(e.Ph)),
			TS:   float64(e.TS) / 1e3,
			PID:  1,
			TID:  e.TID,
		}
		if e.Ph == 'i' {
			ce.S = "t" // thread-scoped instant
		}
		if e.NArgs > 0 {
			ce.Args = make(map[string]int64, e.NArgs)
			for i := 0; i < e.NArgs; i++ {
				ce.Args[e.Args[i].K] = e.Args[i].V
			}
		}
		rows = append(rows, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": rows})
}
