// Package obs is the repository's unified telemetry core: atomic counters
// and gauges, log-bucketed histograms with quantile summaries, and
// lightweight nesting spans that export to Chrome trace-event JSON — all
// dependency-free (standard library only) and safe for concurrent use.
//
// The package exists because the paper's headline claims are round and
// message complexity bounds: comparing algorithms, seeds and schedulers is
// only meaningful when every layer reports through one instrument. The
// layering is
//
//	Registry   — named Counters, Gauges and Histograms; Snapshot(),
//	             Prometheus-text and expvar exposition
//	Tracer     — append-only event log; Spans nest
//	             (session job → plan run → phase → round) and export to
//	             chrome://tracing / Perfetto
//	Recorder   — the {Registry, Tracer} bundle a run reports into,
//	             threaded engine → core → decomp.Plan → session
//
// Disabled-path contract: every method of every type in this package is
// nil-safe. A nil *Recorder, *Registry, *Tracer, *Span, *Counter, *Gauge,
// *Histogram or *RoundRecorder accepts every call as a no-op, so
// instrumented code needs no conditionals — and the hot paths (the engine
// commit loop, the phase runner's round loop) pay exactly one pointer
// test per round when telemetry is off. BENCH_obs.json records that the
// telemetry-off hot-path benchmarks are unchanged from BENCH_hotpath.json
// (within noise, zero extra allocations); CI gates it.
package obs

import "sync/atomic"

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter discards all updates.
type Counter struct {
	v atomic.Int64
}

// Add adds d to the counter.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc adds 1 to the counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to use;
// a nil *Gauge discards all updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d to the gauge.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// KV is one integer-valued span or event annotation. Trace args are
// integers by design: everything the layers report (round indices,
// message counts, frontier sizes, keys) is integral, and fixed-size args
// keep event emission allocation-free.
type KV struct {
	K string
	V int64
}
