package obs

// Recorder is the {Registry, Tracer} bundle one run reports into, plus
// the span new work nests under. It is what the layers hand each other:
// the session derives a per-job recorder under the job span, decomp's
// Plan.Run derives one under the plan span, and core's phase loop and the
// dist engine record through prebaked views so their hot loops never
// resolve a metric by name.
//
// A nil *Recorder is fully disabled: every method is a no-op returning
// nil instruments, so instrumented code is written unconditionally.
type Recorder struct {
	reg    *Registry
	trc    *Tracer
	parent *Span
}

// New bundles a registry and a tracer (either may be nil) into a
// recorder. New(nil, nil) returns nil — completely disabled.
func New(reg *Registry, trc *Tracer) *Recorder {
	if reg == nil && trc == nil {
		return nil
	}
	return &Recorder{reg: reg, trc: trc}
}

// Registry returns the recorder's registry (nil when disabled).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Tracer returns the recorder's tracer (nil when disabled or untraced).
func (r *Recorder) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.trc
}

// Counter resolves a counter in the recorder's registry.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.reg.Counter(name)
}

// Gauge resolves a gauge in the recorder's registry.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.reg.Gauge(name)
}

// Histogram resolves a histogram in the recorder's registry.
func (r *Recorder) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.reg.Histogram(name)
}

// Span opens a span: a child of the recorder's parent span when one is
// set (see Under), else a root span on the tracer. Returns nil (no-op)
// when the recorder has no tracer.
func (r *Recorder) Span(name string, args ...KV) *Span {
	if r == nil {
		return nil
	}
	if r.parent != nil {
		return r.parent.Child(name, args...)
	}
	return r.trc.Start(name, args...)
}

// Under returns a derived recorder whose spans nest beneath s: the same
// registry and tracer, re-rooted. Under(nil) drops the parent; a nil
// recorder stays nil. This is how the hierarchy
// session job → plan run → phase → round is threaded without any layer
// knowing its caller.
func (r *Recorder) Under(s *Span) *Recorder {
	if r == nil {
		return nil
	}
	return &Recorder{reg: r.reg, trc: r.trc, parent: s}
}

// RoundRecorder is the per-round hot-path view of a Recorder: the engine
// and the phase simulation call Record once per executed round, and all
// instruments are resolved ahead of time so the call is a handful of
// atomic adds — and exactly one pointer test when telemetry is off
// (nil *RoundRecorder).
type RoundRecorder struct {
	rounds   *Counter
	messages *Counter
	words    *Counter

	roundMsgs   *Histogram // messages per round
	roundActive *Histogram // active (live) nodes per round

	span *Span // round events attach here when tracing
}

// Rounds builds the engine-facing round recorder: counters
// engine.rounds/messages/words, histograms engine.round.messages and
// engine.round.active, with per-round instant events under the
// recorder's parent span when tracing. Returns nil when r is nil.
func (r *Recorder) Rounds() *RoundRecorder {
	if r == nil {
		return nil
	}
	return &RoundRecorder{
		rounds:      r.Counter("engine.rounds"),
		messages:    r.Counter("engine.messages"),
		words:       r.Counter("engine.words"),
		roundMsgs:   r.Histogram("engine.round.messages"),
		roundActive: r.Histogram("engine.round.active"),
		span:        r.parent,
	}
}

// Record accounts one executed round. It is the only telemetry call on
// the engine's per-round path; a nil receiver returns immediately.
func (rr *RoundRecorder) Record(round int, msgs, words int64, active int) {
	if rr == nil {
		return
	}
	rr.rounds.Inc()
	rr.messages.Add(msgs)
	rr.words.Add(words)
	rr.roundMsgs.Observe(msgs)
	rr.roundActive.Observe(int64(active))
	if rr.span != nil {
		var e Event
		e.Name = "round"
		e.Ph = 'i'
		e.TS = rr.span.t.now()
		e.TID = rr.span.tid
		e.Args = [maxEventArgs]KV{{"round", int64(round)}, {"messages", msgs}, {"words", words}, {"active", int64(active)}}
		e.NArgs = 4
		rr.span.t.emit(e)
	}
}
