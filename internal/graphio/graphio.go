// Package graphio reads and writes graphs in the plain edge-list
// interchange format used by cmd/graphgen and accepted by cmd/netdecomp:
// a header line "n m" followed by m lines "u v" (0-based endpoints,
// whitespace separated, '#' comments and blank lines ignored).
package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"netdecomp/internal/graph"
)

// Write emits g in edge-list format. It accepts any read-only graph
// backend and streams the edges through graph.EdgeSeq, so no [][2]int edge
// list is materialized however large the graph.
func Write(w io.Writer, g graph.Interface) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), graph.EdgeCount(g)); err != nil {
		return err
	}
	for u, v := range graph.EdgeSeq(g) {
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses an edge-list graph. The declared edge count is validated
// against the edges actually read (before deduplication).
func Read(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
	var b *graph.Builder
	n := 0
	declared := -1
	read := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graphio: line %d: want two fields, got %q", line, text)
		}
		a, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: %w", line, err)
		}
		c, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: %w", line, err)
		}
		if b == nil {
			// Header.
			if a < 0 || c < 0 {
				return nil, fmt.Errorf("graphio: line %d: negative header %d %d", line, a, c)
			}
			n = a
			b = graph.NewBuilder(n)
			declared = c
			continue
		}
		if a < 0 || a >= n || c < 0 || c >= n {
			return nil, fmt.Errorf("graphio: line %d: edge {%d,%d} out of range [0,%d)", line, a, c, n)
		}
		b.AddEdge(a, c)
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("graphio: empty input (missing header)")
	}
	if read != declared {
		return nil, fmt.Errorf("graphio: header declares %d edges, read %d", declared, read)
	}
	return b.Build(), nil
}
