package graphio

import (
	"bytes"
	"strings"
	"testing"

	"netdecomp/internal/gen"
	"netdecomp/internal/randx"
)

func TestRoundTrip(t *testing.T) {
	g := gen.GnpConnected(randx.New(1), 200, 0.02)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed shape: %v -> %v", g, g2)
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v lost in round trip", e)
		}
	}
}

func TestReadCommentsAndBlanks(t *testing.T) {
	in := `# a comment
3 2

0 1
# another
1 2
`
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("parsed wrong: %v", g)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad header":     "x y\n",
		"one field":      "3 1\n0\n",
		"non-numeric":    "3 1\n0 z\n",
		"out of range":   "3 1\n0 5\n",
		"negative n":     "-1 0\n",
		"count mismatch": "3 2\n0 1\n",
		"extra edges":    "3 1\n0 1\n1 2\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestReadEmptyGraph(t *testing.T) {
	g, err := Read(strings.NewReader("0 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph parse wrong: %v", g)
	}
}

func TestWriteFormat(t *testing.T) {
	g := gen.Path(3)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	want := "3 2\n0 1\n1 2\n"
	if buf.String() != want {
		t.Fatalf("Write output %q, want %q", buf.String(), want)
	}
}
