package graphio

import (
	"bytes"
	"strings"
	"testing"

	"netdecomp/internal/graph"
)

// FuzzRead hardens the edge-list parser: arbitrary input must either
// parse into a graph that round-trips through Write, or return an error —
// never panic, hang, or build an inconsistent graph.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"",
		"4 3\n0 1\n1 2\n2 3\n",
		"2 1\n0 1\n",
		"# comment\n\n3 1\n0 2\n",
		"3 2\n0 1\n",              // declared more edges than present
		"3 1\n0 1\n1 2\n",         // declared fewer
		"3 1\n0 5\n",              // out of range
		"-1 -1\n",                 // negative header
		"1 0\n",                   // lone vertex
		"a b\n",                   // non-numeric
		"3\n0 1\n",                // one-field line
		"3 1 9\n0 1\n",            // three-field line
		"999999999999999999999 0", // overflow
		"4 2\n0 1\n0 1\n",         // duplicate edge (dedup'd by builder)
		"2 1\n1 1\n",              // self loop
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			if g != nil {
				t.Fatal("error with non-nil graph")
			}
			return
		}
		if g.N() < 0 || g.M() < 0 {
			t.Fatalf("parsed graph has negative sizes: n=%d m=%d", g.N(), g.M())
		}
		for _, e := range g.Edges() {
			if e[0] < 0 || e[0] >= g.N() || e[1] < 0 || e[1] >= g.N() {
				t.Fatalf("edge %v out of range [0,%d)", e, g.N())
			}
		}
		// A successfully parsed graph must survive a write/read cycle.
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("re-encoding parsed graph: %v", err)
		}
		g2, err := Read(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("re-parsing encoded graph: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed the graph: n %d->%d, m %d->%d", g.N(), g2.N(), g.M(), g2.M())
		}
		if g2.Fingerprint() != g.Fingerprint() {
			t.Fatalf("round trip changed the fingerprint: %#x -> %#x", g.Fingerprint(), g2.Fingerprint())
		}
		// Replaying the parsed edges through the two-pass streaming builder
		// must reproduce the slice-built graph bit for bit: stream build and
		// builder build are fingerprint-identical on every parseable input.
		gs := graph.FromStream(g.N(), func(yield func(u, v int)) {
			for u, v := range g.EdgeSeq() {
				yield(u, v)
			}
		})
		if gs.Fingerprint() != g.Fingerprint() {
			t.Fatalf("stream rebuild changed the fingerprint: %#x -> %#x", g.Fingerprint(), gs.Fingerprint())
		}
	})
}
