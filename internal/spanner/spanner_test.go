package spanner

import (
	"context"
	"testing"

	"netdecomp/internal/core"
	"netdecomp/internal/decomp"
	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

func buildDec(t *testing.T, g *graph.Graph, k int, seed uint64) *core.Decomposition {
	t.Helper()
	dec, err := core.Run(g, core.Options{K: k, C: 8, Seed: seed, ForceComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

func TestSpannerIsSubgraphAndConnected(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"gnp":  gen.GnpConnected(randx.New(1), 300, 0.02),
		"grid": gen.Grid(15, 15),
		"roc":  gen.RingOfCliques(12, 6),
	}
	for name, g := range graphs {
		dec := buildDec(t, g, 4, 3)
		s, err := Build(g, decomp.FromCore(dec))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Subgraph: every spanner edge is a graph edge.
		for _, e := range s.G.Edges() {
			if !g.HasEdge(e[0], e[1]) {
				t.Fatalf("%s: spanner edge %v not in G", name, e)
			}
		}
		if !s.G.IsConnected() {
			t.Fatalf("%s: spanner disconnected", name)
		}
		if s.Edges != s.TreeEdges+s.BridgeEdges {
			t.Fatalf("%s: edge split inconsistent: %d != %d+%d", name, s.Edges, s.TreeEdges, s.BridgeEdges)
		}
	}
}

func TestSpannerSparsifiesDenseGraphs(t *testing.T) {
	// On a dense random graph the skeleton must drop most edges: tree
	// edges are < n and bridges are bounded by cluster adjacencies.
	g := gen.Gnp(randx.New(2), 300, 0.1) // ~4485 edges
	dec := buildDec(t, g, 4, 5)
	s, err := Build(g, decomp.FromCore(dec))
	if err != nil {
		t.Fatal(err)
	}
	if s.TreeEdges >= g.N() {
		t.Fatalf("tree edges %d should be < n=%d", s.TreeEdges, g.N())
	}
	if s.Edges >= g.M() {
		t.Fatalf("spanner has %d edges, input %d — no sparsification", s.Edges, g.M())
	}
}

func TestSpannerStretch(t *testing.T) {
	g := gen.GnpConnected(randx.New(3), 250, 0.02)
	dec := buildDec(t, g, 4, 7)
	s, err := Build(g, decomp.FromCore(dec))
	if err != nil {
		t.Fatal(err)
	}
	max, mean, err := s.StretchSample(g, 9, 60)
	if err != nil {
		t.Fatal(err)
	}
	if max < 1 || mean < 1 {
		t.Fatalf("stretch below 1: max=%v mean=%v", max, mean)
	}
	// A loose sanity ceiling: stretch is governed by cluster diameter and
	// the color sweep; for k=4 it should stay well below this.
	diam, ok := dec.StrongDiameter(g)
	if !ok {
		t.Fatal("disconnected cluster")
	}
	limit := float64(4*(diam+1) + 8)
	if max > limit {
		t.Fatalf("max stretch %v implausibly large (cluster diam %d)", max, diam)
	}
}

func TestSpannerOnTreeIsTree(t *testing.T) {
	g := gen.RandomTree(randx.New(4), 200)
	dec := buildDec(t, g, 3, 11)
	s, err := Build(g, decomp.FromCore(dec))
	if err != nil {
		t.Fatal(err)
	}
	// A spanning connected subgraph of a tree is the tree itself.
	if s.Edges != g.M() {
		t.Fatalf("tree spanner has %d edges, want %d", s.Edges, g.M())
	}
	max, _, err := s.StretchSample(g, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	if max != 1 {
		t.Fatalf("tree stretch = %v, want 1", max)
	}
}

func TestSpannerRejectsIncomplete(t *testing.T) {
	g := gen.GnpConnected(randx.New(5), 200, 0.02)
	dec, err := core.Run(g, core.Options{K: 3, C: 8, Seed: 1, PhaseBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Complete {
		t.Skip("single phase completed")
	}
	if _, err := Build(g, decomp.FromCore(dec)); err == nil {
		t.Fatal("incomplete decomposition accepted")
	}
}

func TestSpannerSingletonClusters(t *testing.T) {
	// k=1 yields singleton clusters: no tree edges, all bridges.
	g := gen.Cycle(24)
	dec, err := core.Run(g, core.Options{K: 1, C: 8, Seed: 2, ForceComplete: true, RadiusMode: core.RadiusExact})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(g, decomp.FromCore(dec))
	if err != nil {
		t.Fatal(err)
	}
	if !s.G.IsConnected() {
		t.Fatal("singleton-cluster spanner disconnected")
	}
}

func TestSpannerEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	dec, err := core.Run(g, core.Options{K: 2, C: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(g, decomp.FromCore(dec))
	if err != nil {
		t.Fatal(err)
	}
	if s.Edges != 0 {
		t.Fatal("empty spanner has edges")
	}
	if _, _, err := s.StretchSample(g, 1, 10); err != nil {
		t.Fatal(err)
	}
}

func TestSpannerFromWeakDiameterPartition(t *testing.T) {
	// Linial–Saks clusters can be disconnected; the piece refinement must
	// still yield a connected spanning skeleton.
	g := gen.GnpConnected(randx.New(6), 250, 0.02)
	d, err := decomp.MustGet("linial-saks").Decompose(context.Background(), g,
		decomp.WithK(4), decomp.WithSeed(3), decomp.WithForceComplete())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if !s.G.IsConnected() {
		t.Fatal("weak-diameter spanner disconnected")
	}
	if s.Pieces < len(d.Clusters) {
		t.Fatalf("refinement produced %d pieces for %d clusters", s.Pieces, len(d.Clusters))
	}
	for _, e := range s.G.Edges() {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("spanner edge %v not in G", e)
		}
	}
}
