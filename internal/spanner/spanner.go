// Package spanner builds sparse skeletons from network decompositions,
// after the application cited in Section 1.1 of the paper ("Dubhashi et
// al. [DMP+05] used network decompositions for computing sparse spanners
// and linear-size skeletons").
//
// The construction: keep a BFS tree of every cluster piece (rooted at its
// center, inside the piece's induced subgraph — this is where the
// *strong* diameter matters: the tree exists and has depth ≤ the cluster
// radius), plus one original edge for every pair of adjacent pieces. For a
// strong-diameter partition every cluster is one piece; a weak-diameter
// partition (Linial–Saks) is first refined into the connected components
// of each cluster's induced subgraph, so the skeleton stays connected even
// when clusters are not. The result has at most n − #pieces + #superedges
// edges, stays connected whenever the input is, and distances stretch by a
// factor governed by the piece diameter.
package spanner

import (
	"context"
	"fmt"

	"netdecomp/internal/decomp"
	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
	"netdecomp/internal/session"
)

// Spanner is a spanning subgraph with its quality measures.
type Spanner struct {
	// G is the spanner as a graph on the same vertex set.
	G *graph.Graph
	// Edges counts the spanner edges; TreeEdges and BridgeEdges split them
	// into intra-piece BFS tree edges and inter-piece bridges.
	Edges       int
	TreeEdges   int
	BridgeEdges int
	// Pieces counts the connected cluster pieces the skeleton was built
	// from (equals the cluster count for strong-diameter partitions).
	Pieces int
}

// BuildFromPlan decomposes g by the compiled plan and builds the skeleton
// from the result. When s is non-nil the decomposition runs through the
// serving session, so repeated spanner builds on the same (graph, plan,
// seed) are served from the session's result cache instead of
// re-decomposing; a nil session executes the plan directly. The plan must
// force completion (spanners need every vertex clustered).
func BuildFromPlan(ctx context.Context, g graph.Interface, s *session.Session, pl *decomp.Plan) (*Spanner, error) {
	if !pl.Config().ForceComplete {
		return nil, fmt.Errorf("spanner: plan %s does not force completion; compile with WithForceComplete", pl.Name())
	}
	var p *decomp.Partition
	var err error
	if s != nil {
		p, err = s.Run(ctx, pl, g)
	} else {
		p, err = pl.Run(ctx, g)
	}
	if err != nil {
		return nil, fmt.Errorf("spanner: decomposing: %w", err)
	}
	return Build(g, p)
}

// Build constructs the skeleton from any complete Partition of g — the
// output of every registered decomposition algorithm qualifies. The
// partition is only read during the call (no slices are retained), so the
// caller keeps ownership of it.
func Build(g graph.Interface, p *decomp.Partition) (*Spanner, error) {
	if !p.Complete {
		return nil, fmt.Errorf("spanner: partition incomplete; decompose with force-complete")
	}
	if p.N != g.N() {
		return nil, fmt.Errorf("spanner: partition is for %d vertices, graph has %d", p.N, g.N())
	}
	b := graph.NewBuilder(g.N())
	tree := 0
	// Refine clusters into induced connected components ("pieces") and
	// keep a BFS tree of each, rooted at the cluster center when the
	// center lies inside the piece, else at the smallest member. Each
	// piece is traversed through a zero-copy view of its members, so the
	// per-piece cost is the piece and its induced edges, never the host
	// graph.
	pieceOf := make([]int, g.N())
	pieces := 0
	for i := range p.Clusters {
		c := &p.Clusters[i]
		for _, members := range graph.ComponentsOfSubset(g, c.Members) {
			root := 0
			for li, v := range members {
				pieceOf[v] = pieces
				if v == c.Center {
					root = li
				}
			}
			tree += pieceTree(b, graph.NewView(g, members), root)
			pieces++
		}
	}
	// One bridge per adjacent piece pair: the lexicographically smallest
	// crossing edge, for determinism. Bridging pieces rather than clusters
	// keeps the skeleton connected for weak-diameter inputs, and is
	// identical to cluster bridging when every cluster is connected.
	type pair struct{ a, b int }
	bridges := make(map[pair][2]int)
	for u := 0; u < g.N(); u++ {
		cu := pieceOf[u]
		for _, w := range g.Neighbors(u) {
			cw := pieceOf[w]
			if cu == cw {
				continue
			}
			key := pair{cu, cw}
			if cu > cw {
				key = pair{cw, cu}
			}
			e := [2]int{u, int(w)}
			if e[0] > e[1] {
				e[0], e[1] = e[1], e[0]
			}
			if old, ok := bridges[key]; !ok || e[0] < old[0] || (e[0] == old[0] && e[1] < old[1]) {
				bridges[key] = e
			}
		}
	}
	for _, e := range bridges {
		b.AddEdge(e[0], e[1])
	}
	sg := b.Build()
	return &Spanner{
		G:           sg,
		Edges:       sg.M(),
		TreeEdges:   tree,
		BridgeEdges: sg.M() - tree,
		Pieces:      pieces,
	}, nil
}

// pieceTree adds the BFS-tree edges of one cluster piece to the spanner
// builder (in original vertex ids) and returns the number added. root is a
// local view id. Traversal order follows the view's sorted local
// adjacency, which for ascending member lists coincides with the global
// neighbor order the pre-view implementation used.
func pieceTree(b *graph.Builder, view *graph.View, root int) int {
	n := view.N()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[root] = -1
	queue := make([]int32, 1, n)
	queue[0] = int32(root)
	added := 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, w := range view.Neighbors(int(u)) {
			if parent[w] == -2 {
				parent[w] = u
				queue = append(queue, w)
				b.AddEdge(view.Orig(int(w)), view.Orig(int(u)))
				added++
			}
		}
	}
	return added
}

// StretchSample estimates the spanner's stretch: the maximum and mean of
// d_spanner(u,v)/d_G(u,v) over `samples` random connected vertex pairs.
func (s *Spanner) StretchSample(g graph.Interface, seed uint64, samples int) (max, mean float64, err error) {
	if g.N() < 2 || samples <= 0 {
		return 1, 1, nil
	}
	rng := randx.New(seed)
	total := 0.0
	count := 0
	for i := 0; i < samples; i++ {
		u := rng.Intn(g.N())
		dG := graph.BFS(g, u)
		dS := s.G.BFS(u)
		v := rng.Intn(g.N())
		if v == u || dG[v] <= 0 {
			continue
		}
		if dS[v] < 0 {
			return 0, 0, fmt.Errorf("spanner: pair (%d,%d) connected in G but not in spanner", u, v)
		}
		r := float64(dS[v]) / float64(dG[v])
		if r > max {
			max = r
		}
		total += r
		count++
	}
	if count == 0 {
		return 1, 1, nil
	}
	return max, total / float64(count), nil
}
