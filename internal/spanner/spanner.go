// Package spanner builds sparse skeletons from network decompositions,
// after the application cited in Section 1.1 of the paper ("Dubhashi et
// al. [DMP+05] used network decompositions for computing sparse spanners
// and linear-size skeletons").
//
// The construction: keep a BFS tree of every cluster (rooted at its
// center, inside the cluster's induced subgraph — this is where the
// *strong* diameter matters: the tree exists and has depth ≤ the cluster
// radius), plus one original edge for every pair of adjacent clusters.
// The result has at most n − #clusters + #superedges edges, stays
// connected whenever the input is, and distances stretch by a factor
// governed by the cluster diameter.
package spanner

import (
	"fmt"

	"netdecomp/internal/core"
	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

// Spanner is a spanning subgraph with its quality measures.
type Spanner struct {
	// G is the spanner as a graph on the same vertex set.
	G *graph.Graph
	// Edges counts the spanner edges; TreeEdges and BridgeEdges split them
	// into intra-cluster BFS tree edges and inter-cluster bridges.
	Edges       int
	TreeEdges   int
	BridgeEdges int
}

// Build constructs the skeleton from a complete decomposition of g.
func Build(g *graph.Graph, dec *core.Decomposition) (*Spanner, error) {
	if !dec.Complete {
		return nil, fmt.Errorf("spanner: decomposition incomplete; run with ForceComplete")
	}
	if dec.N != g.N() {
		return nil, fmt.Errorf("spanner: decomposition is for %d vertices, graph has %d", dec.N, g.N())
	}
	b := graph.NewBuilder(g.N())
	tree := 0
	// BFS tree of each cluster from its center, restricted to members.
	inCluster := make([]bool, g.N())
	for i := range dec.Clusters {
		c := &dec.Clusters[i]
		for _, v := range c.Members {
			inCluster[v] = true
		}
		root := c.Center
		if !inCluster[root] {
			// Defensive: with truncation events the recorded center can sit
			// outside the component; fall back to the smallest member.
			root = c.Members[0]
		}
		parent := bfsTree(g, root, inCluster)
		for _, v := range c.Members {
			if p := parent[v]; p >= 0 {
				b.AddEdge(v, p)
				tree++
			}
		}
		for _, v := range c.Members {
			inCluster[v] = false
		}
	}
	// One bridge per adjacent cluster pair: the lexicographically smallest
	// crossing edge, for determinism.
	type pair struct{ a, b int }
	bridges := make(map[pair][2]int)
	for u := 0; u < g.N(); u++ {
		cu := dec.ClusterOf[u]
		for _, w := range g.Neighbors(u) {
			cw := dec.ClusterOf[w]
			if cu == cw || cu < 0 || cw < 0 {
				continue
			}
			key := pair{cu, cw}
			if cu > cw {
				key = pair{cw, cu}
			}
			e := [2]int{u, int(w)}
			if e[0] > e[1] {
				e[0], e[1] = e[1], e[0]
			}
			if old, ok := bridges[key]; !ok || e[0] < old[0] || (e[0] == old[0] && e[1] < old[1]) {
				bridges[key] = e
			}
		}
	}
	for _, e := range bridges {
		b.AddEdge(e[0], e[1])
	}
	sg := b.Build()
	return &Spanner{
		G:           sg,
		Edges:       sg.M(),
		TreeEdges:   tree,
		BridgeEdges: sg.M() - tree,
	}, nil
}

// bfsTree returns the BFS parent of every vertex reachable from root
// within the mask (-1 for root and unreached vertices).
func bfsTree(g *graph.Graph, root int, in []bool) map[int]int {
	parent := map[int]int{root: -1}
	queue := []int{root}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, w := range g.Neighbors(u) {
			wi := int(w)
			if !in[wi] {
				continue
			}
			if _, seen := parent[wi]; seen {
				continue
			}
			parent[wi] = u
			queue = append(queue, wi)
		}
	}
	return parent
}

// StretchSample estimates the spanner's stretch: the maximum and mean of
// d_spanner(u,v)/d_G(u,v) over `samples` random connected vertex pairs.
func (s *Spanner) StretchSample(g *graph.Graph, seed uint64, samples int) (max, mean float64, err error) {
	if g.N() < 2 || samples <= 0 {
		return 1, 1, nil
	}
	rng := randx.New(seed)
	total := 0.0
	count := 0
	for i := 0; i < samples; i++ {
		u := rng.Intn(g.N())
		dG := g.BFS(u)
		dS := s.G.BFS(u)
		v := rng.Intn(g.N())
		if v == u || dG[v] <= 0 {
			continue
		}
		if dS[v] < 0 {
			return 0, 0, fmt.Errorf("spanner: pair (%d,%d) connected in G but not in spanner", u, v)
		}
		r := float64(dS[v]) / float64(dG[v])
		if r > max {
			max = r
		}
		total += r
		count++
	}
	if count == 0 {
		return 1, 1, nil
	}
	return max, total / float64(count), nil
}
