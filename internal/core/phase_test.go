package core

import (
	"testing"
)

func TestTopTwoMergeBasic(t *testing.T) {
	var s topTwo
	s.reset()
	if s.joins() {
		t.Fatal("empty state must not join")
	}
	if !s.merge(5, 3.0) {
		t.Fatal("first merge should change state")
	}
	if s.c1 != 5 || s.v1 != 3.0 {
		t.Fatalf("top slot wrong: %+v", s)
	}
	if s.second() != 0 {
		t.Fatalf("second() with one entry = %v, want 0", s.second())
	}
	// m1 - m2 = 3 > 1 → joins.
	if !s.joins() {
		t.Fatal("3 vs 0 should join")
	}
}

func TestTopTwoMergeOrderIndependent(t *testing.T) {
	// All permutations of three entries must yield the same top two.
	entries := []struct {
		c int
		m float64
	}{{1, 5.0}, {2, 7.5}, {3, 6.25}}
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, p := range perms {
		var s topTwo
		s.reset()
		for _, i := range p {
			s.merge(entries[i].c, entries[i].m)
		}
		if s.c1 != 2 || s.v1 != 7.5 || s.c2 != 3 || s.v2 != 6.25 {
			t.Fatalf("perm %v: wrong top two: %+v", p, s)
		}
	}
}

func TestTopTwoSameCenterDedup(t *testing.T) {
	var s topTwo
	s.reset()
	s.merge(4, 9.0)
	// A worse value for the same center must not occupy the second slot.
	if s.merge(4, 8.0) {
		t.Fatal("worse same-center value reported as a change")
	}
	if s.c2 != none {
		t.Fatalf("same center occupies both slots: %+v", s)
	}
	// A better value for the same center upgrades in place.
	if !s.merge(4, 10.0) || s.v1 != 10.0 {
		t.Fatalf("same-center improvement failed: %+v", s)
	}
}

func TestTopTwoSecondSlotPromotion(t *testing.T) {
	var s topTwo
	s.reset()
	s.merge(1, 10.0)
	s.merge(2, 5.0)
	// Center 2 improves beyond center 1: slots must swap.
	s.merge(2, 12.0)
	if s.c1 != 2 || s.v1 != 12.0 || s.c2 != 1 || s.v2 != 10.0 {
		t.Fatalf("promotion failed: %+v", s)
	}
}

func TestTopTwoTieBreaksBySmallerCenter(t *testing.T) {
	var a, b topTwo
	a.reset()
	b.reset()
	a.merge(7, 4.0)
	a.merge(3, 4.0)
	b.merge(3, 4.0)
	b.merge(7, 4.0)
	if a != b {
		t.Fatalf("tie merge order-dependent: %+v vs %+v", a, b)
	}
	if a.c1 != 3 {
		t.Fatalf("tie should prefer smaller center, got %+v", a)
	}
}

func TestTopTwoJoinRuleBoundary(t *testing.T) {
	// The rule is strict: m1 - m2 > 1, not >= 1.
	var s topTwo
	s.reset()
	s.merge(1, 2.0)
	s.merge(2, 1.0)
	if s.joins() {
		t.Fatal("difference exactly 1 must not join")
	}
	s.merge(1, 2.01)
	if !s.joins() {
		t.Fatal("difference 1.01 must join")
	}
}

func TestTopTwoThirdValueIgnored(t *testing.T) {
	var s topTwo
	s.reset()
	s.merge(1, 10)
	s.merge(2, 9)
	changed := s.merge(3, 8)
	if changed {
		t.Fatal("third-ranked value should not change state")
	}
	if s.c1 != 1 || s.c2 != 2 {
		t.Fatalf("third value displaced a slot: %+v", s)
	}
}
