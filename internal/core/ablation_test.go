package core

import (
	"testing"

	"netdecomp/internal/gen"
	"netdecomp/internal/randx"
)

func TestAblationTopTwoIsLossless(t *testing.T) {
	// The paper's CONGEST claim: forwarding the top two values loses
	// nothing. Across graphs, betas and seeds, keep=2 must agree with the
	// exact broadcast on every decision and every center.
	for seed := uint64(0); seed < 8; seed++ {
		g := gen.GnpConnected(randx.New(seed), 200, 0.02)
		res, err := TopKForwardingAblation(g, seed*31+1, 0.8, 5, 2)
		if err != nil {
			t.Fatal(err)
		}
		if res.DecisionMismatches != 0 || res.CenterMismatches != 0 {
			t.Fatalf("seed %d: keep=2 mismatched exact: %+v", seed, res)
		}
	}
}

func TestAblationTopOneLosesInformation(t *testing.T) {
	// keep=1 must corrupt some join decisions on dense-enough graphs: the
	// join rule needs the runner-up value, which top-1 forwarding prunes.
	total := 0
	for seed := uint64(0); seed < 10; seed++ {
		g := gen.GnpConnected(randx.New(seed+100), 250, 0.03)
		res, err := TopKForwardingAblation(g, seed*17+3, 0.8, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		total += res.DecisionMismatches + res.CenterMismatches
	}
	if total == 0 {
		t.Fatal("keep=1 never diverged from exact across 10 seeds; the ablation is not exercising the pruning")
	}
}

func TestAblationValidation(t *testing.T) {
	g := gen.Path(4)
	if _, err := TopKForwardingAblation(g, 1, 0.5, 3, 3); err == nil {
		t.Fatal("keep=3 accepted")
	}
	if _, err := TopKForwardingAblation(g, 1, 0, 3, 2); err == nil {
		t.Fatal("beta=0 accepted")
	}
	if _, err := TopKForwardingAblation(g, 1, 0.5, 0, 2); err == nil {
		t.Fatal("k=0 accepted")
	}
}
