package core

import (
	"reflect"
	"strings"
	"testing"

	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

// applyChanges materializes a new CSR graph = g with the changes applied.
// The reference mutation path for the repair tests — no overlay machinery,
// just an edge-set rebuild.
func applyChanges(g *graph.Graph, changes []EdgeChange) *graph.Graph {
	edges := make(map[[2]int32]bool)
	for u, v := range graph.EdgeSeq(g) {
		edges[[2]int32{int32(u), int32(v)}] = true
	}
	for _, ch := range changes {
		k := [2]int32{ch.U, ch.V}
		if k[0] > k[1] {
			k[0], k[1] = k[1], k[0]
		}
		if ch.Insert {
			edges[k] = true
		} else {
			delete(edges, k)
		}
	}
	b := graph.NewBuilder(g.N())
	for k := range edges {
		b.AddEdge(int(k[0]), int(k[1]))
	}
	return b.Build()
}

// randomChanges draws effective mutations against g: deletions of present
// edges and insertions of absent ones, never no-ops.
func randomChanges(rng *randx.SplitMix64, g *graph.Graph, count int) []EdgeChange {
	present := make(map[[2]int32]bool)
	for u, v := range graph.EdgeSeq(g) {
		present[[2]int32{int32(u), int32(v)}] = true
	}
	var flat [][2]int32
	for k := range present {
		flat = append(flat, k)
	}
	// Map iteration order is random at runtime but the test must be
	// reproducible: sort, then shuffle with the seeded rng.
	for i := 1; i < len(flat); i++ {
		for j := i; j > 0 && less(flat[j], flat[j-1]); j-- {
			flat[j], flat[j-1] = flat[j-1], flat[j]
		}
	}
	for i := len(flat) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		flat[i], flat[j] = flat[j], flat[i]
	}

	n := g.N()
	changes := make([]EdgeChange, 0, count)
	for len(changes) < count {
		if len(flat) > 0 && rng.Intn(2) == 0 {
			e := flat[len(flat)-1]
			flat = flat[:len(flat)-1]
			changes = append(changes, EdgeChange{U: e[0], V: e[1], Insert: false})
			delete(present, e)
			continue
		}
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u == v {
			continue
		}
		k := [2]int32{u, v}
		if k[0] > k[1] {
			k[0], k[1] = k[1], k[0]
		}
		if present[k] {
			continue
		}
		present[k] = true
		changes = append(changes, EdgeChange{U: u, V: v, Insert: true})
	}
	return changes
}

func less(a, b [2]int32) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// strippedDec zeroes the execution-account fields a repair is allowed to
// differ on. Everything else — clusters, colors, phase history, survivor
// counts, truncation events — must be bit-identical.
func strippedDec(d *Decomposition) Decomposition {
	cp := *d
	cp.Rounds, cp.Messages, cp.MsgWords, cp.MaxMsgWords = 0, 0, 0, 0
	cp.Trace = nil
	return cp
}

func requireRepairEquivalent(t *testing.T, got, want *Decomposition, msg string) {
	t.Helper()
	g, w := strippedDec(got), strippedDec(want)
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("%s: repaired decomposition differs from from-scratch run\n got: %+v\nwant: %+v", msg, g, w)
	}
}

// TestRepairEquivalence is the core property: for every variant and radius
// mode, Repair on (mutated graph, prior state, changes) equals RunWith from
// scratch on the mutated graph, across chained mutation batches.
func TestRepairEquivalence(t *testing.T) {
	rng := randx.New(0x5eed)
	opts := []Options{
		{Variant: Theorem1, K: 4, C: 4, Seed: 11, ForceComplete: true},
		{Variant: Theorem1, K: 4, C: 4, Seed: 11},
		{Variant: Theorem2, K: 4, C: 8, Seed: 23, ForceComplete: true},
		{Variant: Theorem3, K: 4, C: 4, Lambda: 2, Seed: 31, ForceComplete: true},
		{Variant: Theorem1, K: 4, C: 4, Seed: 47, RadiusMode: RadiusExact, ForceComplete: true},
	}
	for _, o := range opts {
		g := gen.GnpConnected(rng, 150, 0.03)
		dec, st, err := RunRepairable(g, o)
		if err != nil {
			t.Fatalf("%v: RunRepairable: %v", o.Variant, err)
		}
		ref, err := Run(g, o)
		if err != nil {
			t.Fatal(err)
		}
		requireRepairEquivalent(t, dec, ref, "bootstrap")

		for round := 0; round < 3; round++ {
			changes := randomChanges(rng, g, 1+rng.Intn(8))
			g2 := applyChanges(g, changes)
			got, st2, stats, err := Repair(g2, o, st, changes, RepairConfig{})
			if err != nil {
				t.Fatalf("variant %v round %d: %v", o.Variant, round, err)
			}
			want, err := Run(g2, o)
			if err != nil {
				t.Fatal(err)
			}
			requireRepairEquivalent(t, got, want, "repair")
			if stats.TotalClusters != len(got.Clusters) {
				t.Fatalf("TotalClusters=%d, clusters=%d", stats.TotalClusters, len(got.Clusters))
			}
			if stats.RepairedClusters > stats.TotalClusters {
				t.Fatalf("RepairedClusters %d > TotalClusters %d", stats.RepairedClusters, stats.TotalClusters)
			}
			g, st = g2, st2
		}
	}
}

// TestRepairStateChaining pins that the state returned by Repair supports
// further repairs indefinitely (state is self-renewing, not single-shot).
func TestRepairStateChaining(t *testing.T) {
	rng := randx.New(0xcafe)
	o := Options{Variant: Theorem1, K: 4, C: 4, Seed: 7, ForceComplete: true}
	g := gen.GnpConnected(rng, 120, 0.04)
	_, st, err := RunRepairable(g, o)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 8; round++ {
		changes := randomChanges(rng, g, 2)
		g2 := applyChanges(g, changes)
		got, st2, _, err := Repair(g2, o, st, changes, RepairConfig{})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want, err := Run(g2, o)
		if err != nil {
			t.Fatal(err)
		}
		requireRepairEquivalent(t, got, want, "chained repair")
		g, st = g2, st2
	}
}

// TestRepairNilStateFallsBack: with no prior state the repair degrades to
// a full recompute and reports why.
func TestRepairNilStateFallsBack(t *testing.T) {
	rng := randx.New(1)
	o := Options{Variant: Theorem1, K: 3, C: 4, Seed: 5, ForceComplete: true}
	g := gen.GnpConnected(rng, 60, 0.06)
	dec, st, stats, err := Repair(g, o, nil, nil, RepairConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FellBack || stats.FallbackReason == "" {
		t.Fatalf("expected fallback, got %+v", stats)
	}
	if st == nil {
		t.Fatal("fallback must return fresh repair state")
	}
	want, err := Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	requireRepairEquivalent(t, dec, want, "nil-state fallback")
}

// TestRepairDamageFractionFallback: a region cap below any real damage
// forces the fallback, which still produces the exact answer.
func TestRepairDamageFractionFallback(t *testing.T) {
	rng := randx.New(2)
	o := Options{Variant: Theorem1, K: 4, C: 4, Seed: 9, ForceComplete: true}
	g := gen.GnpConnected(rng, 100, 0.05)
	_, st, err := RunRepairable(g, o)
	if err != nil {
		t.Fatal(err)
	}
	changes := randomChanges(rng, g, 10)
	g2 := applyChanges(g, changes)
	got, _, stats, err := Repair(g2, o, st, changes, RepairConfig{MaxDamageFraction: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FellBack {
		t.Fatalf("expected damage-fraction fallback, got %+v", stats)
	}
	want, err := Run(g2, o)
	if err != nil {
		t.Fatal(err)
	}
	requireRepairEquivalent(t, got, want, "damage-fraction fallback")
}

// TestRepairValidatesChanges: malformed changes error out rather than
// corrupting state.
func TestRepairValidatesChanges(t *testing.T) {
	rng := randx.New(3)
	o := Options{Variant: Theorem1, K: 3, C: 4, Seed: 1, ForceComplete: true}
	g := gen.GnpConnected(rng, 40, 0.08)
	_, st, err := RunRepairable(g, o)
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]EdgeChange{
		{{U: -1, V: 2, Insert: true}},
		{{U: 0, V: 40, Insert: true}},
		{{U: 5, V: 5, Insert: false}},
	}
	for _, changes := range bad {
		if _, _, _, err := Repair(g, o, st, changes, RepairConfig{}); err == nil {
			t.Fatalf("Repair accepted malformed changes %+v", changes)
		}
	}
}

// TestNewRepairStateRequiresTrace: state can only be derived from a traced
// run.
func TestNewRepairStateRequiresTrace(t *testing.T) {
	rng := randx.New(4)
	o := Options{Variant: Theorem1, K: 3, C: 4, Seed: 1}
	g := gen.GnpConnected(rng, 40, 0.08)
	dec, err := Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRepairState(dec); err == nil || !strings.Contains(err.Error(), "CaptureTrace") {
		t.Fatalf("NewRepairState without trace: err %v", err)
	}
}

// TestRunRepairableStripsTrace: the returned decomposition looks exactly
// like a plain run (no trace attached, CaptureTrace not reported in Opts).
func TestRunRepairableStripsTrace(t *testing.T) {
	rng := randx.New(5)
	o := Options{Variant: Theorem1, K: 3, C: 4, Seed: 1, ForceComplete: true}
	g := gen.GnpConnected(rng, 50, 0.08)
	dec, st, err := RunRepairable(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Trace != nil {
		t.Fatal("RunRepairable leaked the capture trace")
	}
	if dec.Opts.CaptureTrace {
		t.Fatal("RunRepairable leaked CaptureTrace in Opts")
	}
	if st == nil {
		t.Fatal("nil repair state")
	}
	want, err := Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	requireRepairEquivalent(t, dec, want, "RunRepairable")
}
