package core
