package core

import (
	"context"
	"hash/fnv"
	"testing"

	"netdecomp/internal/dist"
	"netdecomp/internal/gen"
	"netdecomp/internal/randx"
)

// traceDigest folds a per-round statistics stream into one FNV-1a hash,
// field by field, so a golden value pins the stream bit-exactly.
func traceDigest(rows []dist.RoundStats) uint64 {
	h := fnv.New64a()
	w := func(x int64) {
		var buf [8]byte
		v := uint64(x)
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, r := range rows {
		w(int64(r.Round))
		w(r.Messages)
		w(r.Words)
		w(int64(r.Active))
	}
	return h.Sum64()
}

// TestEngineTraceGolden pins the exact per-round traffic of one seeded
// forced-complete elkin-neiman run across every execution path: the engine
// with the sequential and the goroutine-parallel scheduler, and the
// sequential simulation streaming through Exec.Observer. The golden values
// were recorded on the pre-arena engine (per-node []Envelope mailboxes,
// dense per-round scans); the arena mailboxes and the frontier-sparse
// simulation must reproduce them bit-for-bit.
func TestEngineTraceGolden(t *testing.T) {
	const (
		wantRounds = 85
		wantMsgs   = 2064
		wantWords  = 4706
		wantMaxW   = 4
		wantDigest = uint64(0x5b1c28cf0c115161) // recorded pre-arena, pre-frontier
	)
	g := gen.GnpConnected(randx.New(17), 96, 0.05)
	o := Options{K: 4, C: 8, Seed: 99, ForceComplete: true}

	check := func(t *testing.T, path string, rows []dist.RoundStats) {
		t.Helper()
		if len(rows) != wantRounds {
			t.Fatalf("%s: %d rounds, want %d", path, len(rows), wantRounds)
		}
		var msgs, words int64
		for _, r := range rows {
			msgs += r.Messages
			words += r.Words
		}
		if msgs != wantMsgs || words != wantWords {
			t.Fatalf("%s: totals %d msgs / %d words, want %d / %d", path, msgs, words, wantMsgs, wantWords)
		}
		if d := traceDigest(rows); d != wantDigest {
			t.Fatalf("%s: trace digest %#016x, want %#016x", path, d, wantDigest)
		}
	}

	t.Run("engine-sequential", func(t *testing.T) {
		_, m, err := RunDistributedWithMetrics(context.Background(), g, o, dist.Options{RecordRounds: true})
		if err != nil {
			t.Fatal(err)
		}
		if m.MaxMessageWords != wantMaxW {
			t.Fatalf("maxMsgWords %d, want %d", m.MaxMessageWords, wantMaxW)
		}
		check(t, "engine-sequential", m.PerRound)
	})
	t.Run("engine-parallel", func(t *testing.T) {
		for workers := 1; workers <= 4; workers++ {
			_, m, err := RunDistributedWithMetrics(context.Background(), g, o,
				dist.Options{RecordRounds: true, Parallel: true, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			check(t, "engine-parallel", m.PerRound)
		}
	})
	t.Run("sim-observer", func(t *testing.T) {
		var rows []dist.RoundStats
		_, err := RunWith(g, o, Exec{Observer: func(rs dist.RoundStats) { rows = append(rows, rs) }})
		if err != nil {
			t.Fatal(err)
		}
		check(t, "sim-observer", rows)
	})
}
