package core

import (
	"math"
	"reflect"
	"testing"

	"netdecomp/internal/dist"
	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

// checkPartition verifies the structural invariants every decomposition
// must satisfy regardless of randomness: clusters are disjoint, members
// match ClusterOf, colors are consistent, and the supergraph coloring is
// proper.
func checkPartition(t *testing.T, g *graph.Graph, dec *Decomposition) {
	t.Helper()
	seen := make([]bool, g.N())
	for ci, c := range dec.Clusters {
		if len(c.Members) == 0 {
			t.Fatalf("cluster %d is empty", ci)
		}
		for _, v := range c.Members {
			if seen[v] {
				t.Fatalf("vertex %d in two clusters", v)
			}
			seen[v] = true
			if dec.ClusterOf[v] != ci {
				t.Fatalf("ClusterOf[%d] = %d, want %d", v, dec.ClusterOf[v], ci)
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		if dec.Complete && !seen[v] {
			t.Fatalf("complete decomposition missing vertex %d", v)
		}
		if !seen[v] && dec.ClusterOf[v] != -1 {
			t.Fatalf("unclustered vertex %d has ClusterOf %d", v, dec.ClusterOf[v])
		}
	}
	// Proper supergraph coloring: adjacent vertices in different clusters
	// must have different colors.
	for _, e := range g.Edges() {
		cu, cv := dec.ClusterOf[e[0]], dec.ClusterOf[e[1]]
		if cu < 0 || cv < 0 || cu == cv {
			continue
		}
		if dec.Clusters[cu].Color == dec.Clusters[cv].Color {
			t.Fatalf("edge %v joins two clusters of color %d", e, dec.Clusters[cu].Color)
		}
	}
	// Clusters must be connected in their induced subgraph (they are
	// components of blocks by construction).
	for ci, c := range dec.Clusters {
		if _, ok := g.SubsetStrongDiameter(c.Members); !ok {
			t.Fatalf("cluster %d is disconnected in its induced subgraph", ci)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	g := gen.GnpConnected(randx.New(1), 300, 0.01)
	o := Options{K: 4, C: 8, Seed: 99}
	a, err := Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Clusters, b.Clusters) || a.Rounds != b.Rounds || a.Messages != b.Messages {
		t.Fatal("same options produced different decompositions")
	}
}

func TestRunPartitionInvariants(t *testing.T) {
	families := map[string]*graph.Graph{
		"gnp":   gen.GnpConnected(randx.New(2), 400, 0.008),
		"grid":  gen.Grid(20, 20),
		"tree":  gen.RandomTree(randx.New(3), 400),
		"cycle": gen.Cycle(128),
		"roc":   gen.RingOfCliques(16, 8),
	}
	for name, g := range families {
		for seed := uint64(0); seed < 3; seed++ {
			dec, err := Run(g, Options{K: 5, C: 8, Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			checkPartition(t, g, dec)
		}
	}
}

func TestStrongDiameterBoundWithoutTruncation(t *testing.T) {
	// Lemma 4: on runs without truncation events, every cluster has strong
	// diameter at most 2k-2 and a uniform center.
	ran, checked := 0, 0
	for seed := uint64(0); seed < 12; seed++ {
		g := gen.GnpConnected(randx.New(seed), 256, 0.01)
		dec, err := Run(g, Options{K: 5, C: 32, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ran++
		if dec.TruncationEvents > 0 {
			continue
		}
		checked++
		if dec.CenterViolations != 0 {
			t.Fatalf("seed %d: %d center violations without truncation", seed, dec.CenterViolations)
		}
		diam, ok := dec.StrongDiameter(g)
		if !ok {
			t.Fatalf("seed %d: disconnected cluster", seed)
		}
		if diam > 2*dec.K-2 {
			t.Fatalf("seed %d: strong diameter %d exceeds 2k-2 = %d", seed, diam, 2*dec.K-2)
		}
	}
	if checked == 0 {
		t.Fatalf("all %d runs had truncation events; expected almost none at c=32", ran)
	}
}

func TestRadiusExactAlwaysCenterUniform(t *testing.T) {
	// In RadiusExact mode Claim 3 holds unconditionally: members of every
	// cluster share one center, and shortest paths to it stay inside.
	for seed := uint64(0); seed < 6; seed++ {
		g := gen.GnpConnected(randx.New(seed+50), 200, 0.015)
		dec, err := Run(g, Options{K: 4, C: 4, Seed: seed, RadiusMode: RadiusExact, ForceComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Complete {
			t.Fatalf("seed %d: ForceComplete run incomplete", seed)
		}
		if dec.CenterViolations != 0 {
			t.Fatalf("seed %d: %d center violations in exact mode", seed, dec.CenterViolations)
		}
		checkPartition(t, g, dec)
	}
}

func TestClaim3PathContainment(t *testing.T) {
	// Claim 3: if y chose v at phase t, every vertex on a shortest path
	// from v to y in G_t also chose v. Equivalently: within the surviving
	// graph of the phase, d_cluster(v, y) == d_{G_t}(v, y).
	g := gen.GnpConnected(randx.New(77), 150, 0.02)
	dec, err := Run(g, Options{K: 4, C: 16, Seed: 5, RadiusMode: RadiusExact, ForceComplete: true, CaptureTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Trace == nil {
		t.Fatal("trace not captured")
	}
	for _, c := range dec.Clusters {
		if c.Phase >= len(dec.Trace.Alive) {
			t.Fatalf("phase %d missing from trace", c.Phase)
		}
		alive := dec.Trace.Alive[c.Phase]
		inCluster := make(map[int]bool, len(c.Members))
		for _, v := range c.Members {
			inCluster[v] = true
		}
		distGt := g.BFSRestricted(c.Center, alive, -1)
		// Distance from center within the cluster's induced subgraph.
		clusterAlive := make([]bool, g.N())
		for _, v := range c.Members {
			clusterAlive[v] = true
		}
		distCluster := g.BFSRestricted(c.Center, clusterAlive, -1)
		for _, y := range c.Members {
			if distGt[y] != distCluster[y] {
				t.Fatalf("phase %d center %d: vertex %d has d_Gt=%d but d_cluster=%d (shortest path leaves cluster)",
					c.Phase, c.Center, y, distGt[y], distCluster[y])
			}
		}
	}
}

func TestTopTwoForwardingMatchesExactBFS(t *testing.T) {
	// The paper's CONGEST claim: forwarding only the top two values per
	// round computes the same join decisions as the exact per-center
	// broadcast. Validate the phase engine against the independent BFS
	// implementation across graphs, betas and truncation caps.
	graphs := []*graph.Graph{
		gen.GnpConnected(randx.New(4), 200, 0.015),
		gen.Grid(14, 14),
		gen.RandomTree(randx.New(5), 150),
		gen.RingOfCliques(10, 6),
		gen.Path(64),
	}
	for gi, g := range graphs {
		runner := newPhaseRunner(g)
		alive := make([]bool, g.N())
		rng := randx.New(uint64(gi) + 123)
		for v := range alive {
			alive[v] = rng.Float64() < 0.8 // exercise restricted graphs too
		}
		for _, beta := range []float64{0.4, 0.9, 1.7} {
			for _, k := range []int{2, 4, 7} {
				drawRadii(uint64(gi*31+k), 0, alive, beta, runner.radius)
				res := runner.run(alive, k, nil)
				wantJoined, wantCenters := exactPhaseJoin(g, alive, runner.radius, k)
				if !reflect.DeepEqual(res.joined, wantJoined) {
					t.Fatalf("graph %d beta %v k %d: joined sets differ (%d vs %d)", gi, beta, k, len(res.joined), len(wantJoined))
				}
				for _, v := range res.joined {
					if res.centers[v] != wantCenters[v] {
						t.Fatalf("graph %d beta %v k %d: center of %d differs: %d vs %d", gi, beta, k, v, res.centers[v], wantCenters[v])
					}
				}
			}
		}
	}
}

func TestDistributedMatchesCentralized(t *testing.T) {
	graphs := []*graph.Graph{
		gen.GnpConnected(randx.New(6), 200, 0.015),
		gen.Grid(12, 12),
		gen.RingOfCliques(8, 6),
	}
	for gi, g := range graphs {
		for seed := uint64(0); seed < 3; seed++ {
			o := Options{K: 4, C: 8, Seed: seed}
			want, err := Run(g, o)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunDistributed(g, o, dist.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.Clusters, got.Clusters) {
				t.Fatalf("graph %d seed %d: clusters differ", gi, seed)
			}
			if want.Complete != got.Complete || want.Colors != got.Colors {
				t.Fatalf("graph %d seed %d: summary differs: %v vs %v", gi, seed, want, got)
			}
			if want.Messages != got.Messages || want.MsgWords != got.MsgWords {
				t.Fatalf("graph %d seed %d: message counts differ: %d/%d vs %d/%d",
					gi, seed, want.Messages, want.MsgWords, got.Messages, got.MsgWords)
			}
			if !reflect.DeepEqual(want.AlivePerPhase, got.AlivePerPhase) {
				t.Fatalf("graph %d seed %d: alive-per-phase differs: %v vs %v", gi, seed, want.AlivePerPhase, got.AlivePerPhase)
			}
		}
	}
}

func TestDistributedParallelSchedulerEquivalent(t *testing.T) {
	g := gen.GnpConnected(randx.New(8), 300, 0.01)
	o := Options{K: 4, C: 8, Seed: 17}
	seq, err := RunDistributed(g, o, dist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunDistributed(g, o, dist.Options{Parallel: true, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Clusters, par.Clusters) || seq.Messages != par.Messages || seq.Rounds != par.Rounds {
		t.Fatal("parallel scheduler changed the execution")
	}
}

func TestCongestMessageSize(t *testing.T) {
	g := gen.GnpConnected(randx.New(9), 200, 0.02)
	dec, err := RunDistributed(g, Options{K: 4, C: 8, Seed: 1}, dist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Top-two entries of two words each: at most 4 words per message.
	if dec.MaxMsgWords > 4 {
		t.Fatalf("max message size %d words; CONGEST bound is 4", dec.MaxMsgWords)
	}
}

func TestTheorem2ScheduleShape(t *testing.T) {
	n := 1000
	o, s, err := resolve(n, Options{Variant: Theorem2, K: 3, C: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Total budget must respect the paper's 4k(cn)^{1/k} bound (up to the
	// ceil in each stage, which adds at most one phase per stage).
	cn := o.C * float64(n)
	bound := 4*float64(o.K)*math.Pow(cn, 1/float64(o.K)) + math.Log(float64(n)) + 2
	if float64(s.budget) > bound {
		t.Fatalf("theorem2 budget %d exceeds %v", s.budget, bound)
	}
	// Rates must be non-increasing across stages.
	for i := 1; i < len(s.betas); i++ {
		if s.betas[i] > s.betas[i-1]+1e-12 {
			t.Fatalf("beta increased at phase %d: %v -> %v", i, s.betas[i-1], s.betas[i])
		}
	}
}

func TestTheorem2Runs(t *testing.T) {
	g := gen.GnpConnected(randx.New(10), 300, 0.01)
	dec, err := Run(g, Options{Variant: Theorem2, K: 4, C: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, g, dec)
	if dec.Complete {
		bound, err := TheoremColorBound(g.N(), dec.Opts)
		if err != nil {
			t.Fatal(err)
		}
		if float64(dec.Colors) > bound {
			t.Fatalf("theorem2 colors %d exceed bound %v", dec.Colors, bound)
		}
	}
}

func TestTheorem3FewColors(t *testing.T) {
	g := gen.GnpConnected(randx.New(11), 200, 0.02)
	for _, lambda := range []int{2, 3} {
		dec, err := Run(g, Options{Variant: Theorem3, Lambda: lambda, C: 8, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		checkPartition(t, g, dec)
		if dec.Colors > lambda {
			t.Fatalf("lambda=%d: used %d colors", lambda, dec.Colors)
		}
		if dec.PhaseBudget != lambda {
			t.Fatalf("lambda=%d: budget %d", lambda, dec.PhaseBudget)
		}
	}
}

func TestForceComplete(t *testing.T) {
	g := gen.GnpConnected(randx.New(12), 300, 0.01)
	// A tiny budget would normally leave survivors; ForceComplete must
	// extend until exhaustion.
	dec, err := Run(g, Options{K: 3, C: 8, Seed: 2, PhaseBudget: 2, ForceComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Complete {
		t.Fatal("ForceComplete left unclustered vertices")
	}
	if len(dec.Unassigned()) != 0 {
		t.Fatal("Unassigned non-empty on complete run")
	}
	checkPartition(t, g, dec)
}

func TestTinyGraphs(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	dec, err := Run(empty, Options{K: 2, C: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Complete || len(dec.Clusters) != 0 {
		t.Fatalf("empty graph decomposition wrong: %v", dec)
	}

	single := graph.NewBuilder(1).Build()
	dec, err = Run(single, Options{K: 2, C: 8, ForceComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Complete || len(dec.Clusters) != 1 || dec.Clusters[0].Members[0] != 0 {
		t.Fatalf("single vertex decomposition wrong: %v", dec)
	}

	pair := graph.FromEdges(2, [][2]int{{0, 1}})
	dec, err = Run(pair, Options{K: 2, C: 8, ForceComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Complete {
		t.Fatal("pair graph incomplete")
	}
	checkPartition(t, pair, dec)
}

func TestK1Degenerate(t *testing.T) {
	// k=1 means radius-0 clusters: every cluster must be a singleton
	// (strong diameter 2k-2 = 0).
	g := gen.Cycle(32)
	dec, err := Run(g, Options{K: 1, C: 8, Seed: 4, ForceComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, g, dec)
	if dec.TruncationEvents > 0 {
		// With truncation the radius can exceed 0; skip the shape check.
		return
	}
	for _, c := range dec.Clusters {
		if len(c.Members) != 1 {
			t.Fatalf("k=1 produced cluster of size %d", len(c.Members))
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	g := gen.Path(4)
	cases := []Options{
		{K: 2, C: 2},                          // C too small for Theorem1
		{Variant: Theorem2, K: 2, C: 4},       // C too small for Theorem2
		{Variant: Theorem3, C: 8},             // missing Lambda
		{Variant: Variant(42), K: 2, C: 8},    // unknown variant
		{K: -3, C: 8},                         // negative K
		{Variant: Theorem3, Lambda: -1, C: 8}, // negative Lambda
	}
	for i, o := range cases {
		if _, err := Run(g, o); err == nil {
			t.Fatalf("case %d: invalid options accepted: %+v", i, o)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	g := gen.GnpConnected(randx.New(13), 100, 0.03)
	dec, err := Run(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Opts.Variant != Theorem1 || dec.Opts.C != 8 || dec.Opts.RadiusMode != RadiusCap {
		t.Fatalf("defaults not applied: %+v", dec.Opts)
	}
	wantK := int(math.Ceil(math.Log(float64(g.N()))))
	if dec.K != wantK {
		t.Fatalf("default K = %d, want ceil(ln n) = %d", dec.K, wantK)
	}
}

func TestRunDistributedRejectsUnsupportedModes(t *testing.T) {
	g := gen.Path(8)
	if _, err := RunDistributed(g, Options{K: 2, C: 8, RadiusMode: RadiusExact}, dist.Options{}); err == nil {
		t.Fatal("RadiusExact accepted by RunDistributed")
	}
	if _, err := RunDistributed(g, Options{K: 2, C: 8, CaptureTrace: true}, dist.Options{}); err == nil {
		t.Fatal("CaptureTrace accepted by RunDistributed")
	}
}

func TestJoinProbabilityLowerBound(t *testing.T) {
	// Claim 6 (via Lemma 5): in any phase, each alive vertex joins with
	// probability at least e^{-beta} = (cn)^{-1/k}. Measure the first
	// phase's join fraction across seeds; it must not fall far below the
	// bound.
	g := gen.GnpConnected(randx.New(14), 400, 0.01)
	k := 4
	c := 8.0
	cn := c * float64(g.N())
	pLow := math.Pow(cn, -1/float64(k))
	beta := math.Log(cn) / float64(k)

	runner := newPhaseRunner(g)
	alive := make([]bool, g.N())
	for v := range alive {
		alive[v] = true
	}
	joins := 0
	trials := 0
	for seed := uint64(0); seed < 30; seed++ {
		drawRadii(seed, 0, alive, beta, runner.radius)
		res := runner.run(alive, k, nil)
		joins += len(res.joined)
		trials += g.N()
	}
	got := float64(joins) / float64(trials)
	// Allow 20% slack below the theoretical lower bound for sampling noise
	// (30*400 = 12000 Bernoulli trials, but correlated within a phase).
	if got < 0.8*pLow {
		t.Fatalf("empirical join probability %v below 0.8 * bound %v", got, pLow)
	}
}

func TestLemma1TruncationRate(t *testing.T) {
	// Lemma 1: Pr[any E_v] <= 2/c. Count runs with at least one
	// truncation event across seeds at c=8; the frequency must respect
	// the bound with generous sampling slack.
	g := gen.GnpConnected(randx.New(15), 200, 0.015)
	bad := 0
	const runs = 40
	for seed := uint64(0); seed < runs; seed++ {
		dec, err := Run(g, Options{K: 4, C: 8, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if dec.TruncationEvents > 0 {
			bad++
		}
	}
	// Bound is 2/c = 0.25 → expect <= 10 of 40; allow up to 18 (>5 sigma).
	if bad > 18 {
		t.Fatalf("truncation events in %d/%d runs; Lemma 1 bound is 2/c = 0.25", bad, runs)
	}
}

func TestCompletionProbability(t *testing.T) {
	// Corollary 7: the graph is exhausted within the phase budget with
	// probability >= 1 - 1/c. At c=8 failures should be rare.
	g := gen.GnpConnected(randx.New(16), 150, 0.02)
	fail := 0
	const runs = 30
	for seed := uint64(0); seed < runs; seed++ {
		dec, err := Run(g, Options{K: 4, C: 8, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Complete {
			fail++
		}
	}
	if fail > 10 {
		t.Fatalf("%d/%d runs incomplete; bound is 1/c = 0.125", fail, runs)
	}
}

func TestTraceShape(t *testing.T) {
	g := gen.GnpConnected(randx.New(17), 100, 0.03)
	dec, err := Run(g, Options{K: 3, C: 8, Seed: 5, CaptureTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Trace == nil {
		t.Fatal("trace missing")
	}
	if len(dec.Trace.Alive) != dec.PhasesUsed || len(dec.Trace.Beta) != dec.PhasesUsed {
		t.Fatalf("trace length %d != phases %d", len(dec.Trace.Alive), dec.PhasesUsed)
	}
	// AlivePerPhase must match the trace's alive counts.
	for p, aliveVec := range dec.Trace.Alive {
		count := 0
		for _, a := range aliveVec {
			if a {
				count++
			}
		}
		if count != dec.AlivePerPhase[p] {
			t.Fatalf("phase %d: trace alive %d != AlivePerPhase %d", p, count, dec.AlivePerPhase[p])
		}
	}
}

func TestAlivePerPhaseMonotone(t *testing.T) {
	g := gen.GnpConnected(randx.New(18), 200, 0.015)
	dec, err := Run(g, Options{K: 4, C: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(dec.AlivePerPhase); i++ {
		if dec.AlivePerPhase[i] > dec.AlivePerPhase[i-1] {
			t.Fatalf("alive count increased at phase %d: %v", i, dec.AlivePerPhase)
		}
	}
	if dec.Complete && dec.AlivePerPhase[len(dec.AlivePerPhase)-1] != 0 {
		t.Fatal("complete run must end with 0 alive")
	}
}

func TestBoundHelpers(t *testing.T) {
	n := 512
	o := Options{K: 4, C: 8}
	d, err := TheoremDiameterBound(n, o)
	if err != nil {
		t.Fatal(err)
	}
	if d != 6 {
		t.Fatalf("diameter bound = %d, want 6", d)
	}
	cb, err := TheoremColorBound(n, o)
	if err != nil {
		t.Fatal(err)
	}
	cn := 8.0 * float64(n)
	want := math.Pow(cn, 0.25) * math.Log(cn)
	if math.Abs(cb-want) > 1e-9 {
		t.Fatalf("color bound = %v, want %v", cb, want)
	}
	rb, err := TheoremRoundBound(n, o)
	if err != nil {
		t.Fatal(err)
	}
	if rb <= 0 {
		t.Fatalf("round bound = %v", rb)
	}
}

func TestVariantAndModeStrings(t *testing.T) {
	if Theorem1.String() != "theorem1" || Theorem3.String() != "theorem3" {
		t.Fatal("variant names wrong")
	}
	if RadiusCap.String() != "cap" || RadiusExact.String() != "exact" {
		t.Fatal("mode names wrong")
	}
	v, err := ParseVariant("t2")
	if err != nil || v != Theorem2 {
		t.Fatal("ParseVariant t2 failed")
	}
	if _, err := ParseVariant("bogus"); err == nil {
		t.Fatal("bogus variant accepted")
	}
}

func BenchmarkRunHeadline(b *testing.B) {
	g := gen.GnpConnected(randx.New(1), 2048, 0.004)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, Options{C: 8, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
