package core

import (
	"math"

	"netdecomp/internal/graph"
)

// exactTopTwo computes, for every alive vertex, the exact top-two shifted
// values m = r_v − d_{G_t}(y, v), by running an independent bounded BFS
// from every alive center. Broadcast reach is min(⌊r_v⌋, maxHops); a
// negative maxHops means unbounded (RadiusExact semantics).
//
// This is the O(Σ ball-size · degree) reference implementation against
// which the top-two forwarding discipline of phaseRunner.run (and of the
// message-passing program in distributed.go) is validated: the paper's
// CONGEST argument says forwarding only the two best values per round
// loses nothing, and the tests verify that claim computationally.
func exactTopTwo(g graph.Interface, alive []bool, radius []float64, maxHops int) []topTwo {
	n := g.N()
	states := make([]topTwo, n)
	for v := range states {
		states[v].reset()
	}
	// Reusable BFS scratch with an epoch stamp.
	dist := make([]int, n)
	stamp := make([]int, n)
	epoch := 0
	queue := make([]int32, 0, n)

	for v := 0; v < n; v++ {
		if !alive[v] {
			continue
		}
		r := radius[v]
		reach := int(math.Floor(r))
		if maxHops >= 0 && reach > maxHops {
			reach = maxHops
		}
		epoch++
		queue = queue[:0]
		dist[v] = 0
		stamp[v] = epoch
		queue = append(queue, int32(v))
		states[v].merge(v, r)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			du := dist[u]
			if du >= reach {
				continue
			}
			for _, w := range g.Neighbors(int(u)) {
				if stamp[w] == epoch || !alive[w] {
					continue
				}
				stamp[w] = epoch
				dist[w] = du + 1
				queue = append(queue, w)
				states[w].merge(v, r-float64(du+1))
			}
		}
	}
	return states
}

// exactPhaseJoin applies the join rule to exact top-two states and returns
// the block members (ascending) and the per-vertex chosen centers.
func exactPhaseJoin(g graph.Interface, alive []bool, radius []float64, maxHops int) (joined []int, centers []int) {
	states := exactTopTwo(g, alive, radius, maxHops)
	centers = make([]int, g.N())
	for v := range centers {
		centers[v] = none
	}
	for v := 0; v < g.N(); v++ {
		if alive[v] && states[v].joins() {
			joined = append(joined, v)
			centers[v] = states[v].c1
		}
	}
	return joined, centers
}
