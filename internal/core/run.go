package core

import (
	"fmt"

	"netdecomp/internal/graph"
)

// Run executes the Elkin–Neiman decomposition on g as a faithful
// round-by-round simulation of the distributed algorithm and returns the
// resulting decomposition with its cost metrics.
//
// The simulation is sequential but message-accurate: per phase it performs
// the k synchronous rounds of top-two forwarding prescribed by the paper
// and counts every point-to-point message a real execution would send. Use
// RunDistributed to execute the identical node program on the
// internal/dist engine; both return the same clusters for the same
// Options.Seed.
func Run(g *graph.Graph, o Options) (*Decomposition, error) {
	n := g.N()
	o2, sched, err := resolve(n, o)
	if err != nil {
		return nil, err
	}
	dec := &Decomposition{
		N:           n,
		Opts:        o2,
		K:           sched.k,
		ClusterOf:   make([]int, n),
		PhaseBudget: sched.budget,
	}
	for v := range dec.ClusterOf {
		dec.ClusterOf[v] = -1
	}
	if o2.CaptureTrace {
		dec.Trace = &Trace{}
	}

	alive := make([]bool, n)
	for v := range alive {
		alive[v] = true
	}
	aliveCount := n

	runner := newPhaseRunner(g)
	// ForceComplete may run past the theorem budget; this guard turns a
	// (probability ~0) runaway into an error instead of a hang.
	maxPhases := sched.budget
	if o2.ForceComplete {
		maxPhases = 64*sched.budget + 1024
	}

	for phase := 0; aliveCount > 0; phase++ {
		if phase >= sched.budget && !o2.ForceComplete {
			break
		}
		if phase >= maxPhases {
			return nil, fmt.Errorf("core: graph not exhausted after %d phases (n=%d, k=%d); this indicates a bug", phase, n, sched.k)
		}
		beta := sched.betas[len(sched.betas)-1]
		if phase < len(sched.betas) {
			beta = sched.betas[phase]
		}
		dec.AlivePerPhase = append(dec.AlivePerPhase, aliveCount)

		drawRadii(o2.Seed, phase, alive, beta, runner.radius)
		dec.TruncationEvents += countTruncations(alive, runner.radius, sched.k)
		rounds := sched.k
		if o2.RadiusMode == RadiusExact {
			rounds = maxFlooredRadius(alive, runner.radius)
		}
		res := runner.run(alive, rounds)

		dec.Rounds += res.rounds
		dec.Messages += res.messages
		dec.MsgWords += res.words
		if res.maxMsgWords > dec.MaxMsgWords {
			dec.MaxMsgWords = res.maxMsgWords
		}
		if dec.Trace != nil {
			aliveCopy := make([]bool, n)
			copy(aliveCopy, alive)
			radiusCopy := make([]float64, n)
			copy(radiusCopy, runner.radius)
			centerCopy := make([]int, n)
			copy(centerCopy, res.centers)
			dec.Trace.Alive = append(dec.Trace.Alive, aliveCopy)
			dec.Trace.Radius = append(dec.Trace.Radius, radiusCopy)
			dec.Trace.Center = append(dec.Trace.Center, centerCopy)
			dec.Trace.Beta = append(dec.Trace.Beta, beta)
		}

		if len(res.joined) > 0 {
			dec.buildClusters(g, res.joined, res.centers, phase, dec.Colors)
			dec.Colors++
			for _, v := range res.joined {
				alive[v] = false
			}
			aliveCount -= len(res.joined)
		}
		dec.PhasesUsed++
	}
	dec.AlivePerPhase = append(dec.AlivePerPhase, aliveCount)
	dec.Complete = aliveCount == 0
	return dec, nil
}
