package core

import (
	"context"
	"fmt"
	"runtime"

	"netdecomp/internal/dist"
	"netdecomp/internal/graph"
	"netdecomp/internal/obs"
)

// Exec bundles the execution-context concerns of a run — cancellation and
// round observation — kept separate from Options so Options stays pure,
// comparable algorithm configuration. The zero value means "no
// cancellation, no observer".
type Exec struct {
	// Ctx cancels the run between phases (sequential simulation) or
	// between rounds (engine execution); the run then returns Ctx.Err().
	// nil means context.Background().
	Ctx context.Context
	// Observer, when non-nil, streams per-round traffic statistics as the
	// run executes: one callback per budgeted broadcast round plus one per
	// phase decision round, with Round indices increasing monotonically
	// across phases — the same k+1 sub-round structure the engine path
	// reports through dist.Options.Observer.
	Observer func(dist.RoundStats)
	// Parallel executes each broadcast round on a receiver-sharded worker
	// pool. The result is bit-identical to the sequential simulation for
	// any worker count — the same contract the dist engine's schedulers
	// honor — so this is purely a wall-clock knob for large graphs.
	Parallel bool
	// Workers caps the worker pool of the parallel mode; 0 or negative
	// means GOMAXPROCS. Ignored unless Parallel is set.
	Workers int
	// phaseFinal, when non-nil, receives each phase's final top-two states
	// (the runner's full state array, valid on aliveList entries, read-only,
	// invalidated by the next phase) right after the phase's rounds run and
	// before the join rule prunes the alive set, together with the phase's
	// radius draws (same validity). The repair path captures these as the
	// reference states incremental delta simulation replays and certifies
	// against, plus the per-phase radius statistics it maintains
	// incrementally; unexported because topTwo is an internal of the phase
	// simulation.
	phaseFinal func(phase int, aliveList []int32, state []topTwo, radius []float64)
	// Recorder, when non-nil, reports the run into the telemetry layer:
	// one span per phase (nested under the recorder's parent span, which
	// decomp.Plan.Run roots at the plan span), the engine.* round counters
	// and histograms mirroring what the dist engine records for the same
	// workload, and the core.* histograms the phase runner fills
	// (per-round frontier sizes, per-phase active/quiet round counts).
	// With a nil Recorder the run performs zero telemetry work beyond one
	// nil test per round — the hot path stays allocation-free.
	Recorder *obs.Recorder
}

// ctx returns the effective context.
func (x Exec) ctx() context.Context {
	if x.Ctx == nil {
		return context.Background()
	}
	return x.Ctx
}

// Run executes the Elkin–Neiman decomposition on g as a faithful
// round-by-round simulation of the distributed algorithm and returns the
// resulting decomposition with its cost metrics.
//
// The simulation is sequential but message-accurate: per phase it performs
// the k synchronous rounds of top-two forwarding prescribed by the paper
// and counts every point-to-point message a real execution would send. Use
// RunDistributed to execute the identical node program on the
// internal/dist engine; both return the same clusters for the same
// Options.Seed.
func Run(g graph.Interface, o Options) (*Decomposition, error) {
	return RunWith(g, o, Exec{})
}

// RunWith is Run with an execution context: it honors x.Ctx between phases
// (returning x.Ctx.Err() when cancelled) and streams per-round statistics
// to x.Observer. For equal Options it produces exactly the same
// decomposition as Run.
func RunWith(g graph.Interface, o Options, x Exec) (*Decomposition, error) {
	n := g.N()
	o2, sched, err := resolve(n, o)
	if err != nil {
		return nil, err
	}
	ctx := x.ctx()
	dec := &Decomposition{
		N:           n,
		Opts:        o2,
		K:           sched.k,
		ClusterOf:   make([]int, n),
		PhaseBudget: sched.budget,
	}
	for v := range dec.ClusterOf {
		dec.ClusterOf[v] = -1
	}
	if o2.CaptureTrace {
		dec.Trace = &Trace{}
	}

	alive := make([]bool, n)
	aliveList := make([]int32, n)
	for v := range alive {
		alive[v] = true
		aliveList[v] = int32(v)
	}
	aliveCount := n

	runner := newPhaseRunner(g)
	if x.Parallel {
		runner.parallel = true
		runner.workers = x.Workers
		if runner.workers <= 0 {
			runner.workers = runtime.GOMAXPROCS(0)
		}
	}
	// ForceComplete may run past the theorem budget; this guard turns a
	// (probability ~0) runaway into an error instead of a hang.
	maxPhases := sched.budget
	if o2.ForceComplete {
		maxPhases = 64*sched.budget + 1024
	}

	rec := x.Recorder
	runner.obsFrontier = rec.Histogram("core.round.frontier")
	runner.obsPhaseActive = rec.Histogram("core.phase.rounds.active")
	runner.obsPhaseQuiet = rec.Histogram("core.phase.rounds.quiet")
	phases := rec.Counter("core.phases")

	// The observer sees a monotone global round index across phases. The
	// round recorder is re-derived per phase so its instant events nest
	// under that phase's span; with telemetry off it stays nil and emit is
	// only built for the observer (or not at all).
	roundIdx := 0
	var roundRec *obs.RoundRecorder
	var emit func(msgs, words int64)
	if x.Observer != nil || rec != nil {
		emit = func(msgs, words int64) {
			if x.Observer != nil {
				x.Observer(dist.RoundStats{
					Round:    roundIdx,
					Messages: msgs,
					Words:    words,
					Active:   aliveCount,
				})
			}
			roundRec.Record(roundIdx, msgs, words, aliveCount)
			roundIdx++
		}
	}

	for phase := 0; aliveCount > 0; phase++ {
		if phase >= sched.budget && !o2.ForceComplete {
			break
		}
		if phase >= maxPhases {
			return nil, fmt.Errorf("core: graph not exhausted after %d phases (n=%d, k=%d); this indicates a bug", phase, n, sched.k)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		beta := sched.betas[len(sched.betas)-1]
		if phase < len(sched.betas) {
			beta = sched.betas[phase]
		}
		dec.AlivePerPhase = append(dec.AlivePerPhase, aliveCount)

		var phaseSpan *obs.Span
		if rec != nil {
			phases.Inc()
			phaseSpan = rec.Span("phase", obs.KV{K: "phase", V: int64(phase)}, obs.KV{K: "alive", V: int64(aliveCount)})
			roundRec = rec.Under(phaseSpan).Rounds()
		}

		drawRadiiSparse(o2.Seed, phase, aliveList, beta, runner.radius)
		dec.TruncationEvents += countTruncationsSparse(aliveList, runner.radius, sched.k)
		rounds := sched.k
		if o2.RadiusMode == RadiusExact {
			rounds = maxFlooredRadiusSparse(aliveList, runner.radius)
		}
		res := runner.runSparse(alive, aliveList, rounds, emit)
		if x.phaseFinal != nil {
			x.phaseFinal(phase, aliveList, runner.state, runner.radius)
		}

		dec.Rounds += res.rounds
		dec.Messages += res.messages
		dec.MsgWords += res.words
		if res.maxMsgWords > dec.MaxMsgWords {
			dec.MaxMsgWords = res.maxMsgWords
		}
		if dec.Trace != nil {
			// The runner only maintains alive entries of radius and
			// centers; rebuild the dense per-phase views the trace pins
			// (dead vertices: radius 0, center none).
			aliveCopy := make([]bool, n)
			copy(aliveCopy, alive)
			radiusCopy := make([]float64, n)
			for _, v := range aliveList {
				radiusCopy[v] = runner.radius[v]
			}
			centerCopy := make([]int, n)
			for v := range centerCopy {
				centerCopy[v] = none
			}
			for _, v := range res.joined {
				centerCopy[v] = res.centers[v]
			}
			dec.Trace.Alive = append(dec.Trace.Alive, aliveCopy)
			dec.Trace.Radius = append(dec.Trace.Radius, radiusCopy)
			dec.Trace.Center = append(dec.Trace.Center, centerCopy)
			dec.Trace.Beta = append(dec.Trace.Beta, beta)
		}

		if len(res.joined) > 0 {
			dec.buildClusters(g, res.joined, res.centers, phase, dec.Colors)
			dec.Colors++
			for _, v := range res.joined {
				alive[v] = false
			}
			aliveCount -= len(res.joined)
			k := 0
			for _, v := range aliveList {
				if alive[v] {
					aliveList[k] = v
					k++
				}
			}
			aliveList = aliveList[:k]
		}
		phaseSpan.End()
		dec.PhasesUsed++
	}
	dec.AlivePerPhase = append(dec.AlivePerPhase, aliveCount)
	dec.Complete = aliveCount == 0
	return dec, nil
}
