package core

import (
	"fmt"

	"netdecomp/internal/graph"
)

// AblationResult reports how a restricted forwarding discipline changed
// the join decisions of one phase relative to the exact broadcast.
type AblationResult struct {
	// Keep is the number of values forwarded per round (1 or 2).
	Keep int
	// Joined is the block size under the restricted discipline;
	// JoinedExact under the exact per-center broadcast.
	Joined      int
	JoinedExact int
	// DecisionMismatches counts vertices whose join decision differs;
	// CenterMismatches counts joining vertices whose chosen center differs.
	DecisionMismatches int
	CenterMismatches   int
}

// TopKForwardingAblation runs a single decomposition phase on the full
// vertex set of g under a forwarding discipline that keeps only the best
// `keep` shifted values per vertex per round, and compares the resulting
// join decisions against the exact per-center broadcast.
//
// The paper's CONGEST argument (end of Section 2) claims keep=2 is
// lossless — "the third and onward values in v's list will not be used by
// any other vertex" — and experiment A1 confirms it computationally:
// keep=2 always yields zero mismatches, while keep=1 visibly corrupts
// decisions (a vertex needs the *gap* between its two best values, and the
// runner-up can be pruned upstream).
func TopKForwardingAblation(g graph.Interface, seed uint64, beta float64, k, keep int) (AblationResult, error) {
	if keep != 1 && keep != 2 {
		return AblationResult{}, fmt.Errorf("core: ablation keep must be 1 or 2, got %d", keep)
	}
	if beta <= 0 {
		return AblationResult{}, fmt.Errorf("core: ablation beta must be positive, got %v", beta)
	}
	if k < 1 {
		return AblationResult{}, fmt.Errorf("core: ablation k must be >= 1, got %d", k)
	}
	n := g.N()
	alive := make([]bool, n)
	for v := range alive {
		alive[v] = true
	}
	radius := make([]float64, n)
	drawRadii(seed, 0, alive, beta, radius)

	var joined []int
	var centers []int
	if keep == 2 {
		runner := newPhaseRunner(g)
		copy(runner.radius, radius)
		res := runner.run(alive, k, nil)
		joined, centers = res.joined, res.centers
	} else {
		joined, centers = runTopOnePhase(g, alive, radius, k)
	}
	exactJoined, exactCenters := exactPhaseJoin(g, alive, radius, k)

	res := AblationResult{Keep: keep, Joined: len(joined), JoinedExact: len(exactJoined)}
	inKeep := make([]bool, n)
	for _, v := range joined {
		inKeep[v] = true
	}
	inExact := make([]bool, n)
	for _, v := range exactJoined {
		inExact[v] = true
	}
	for v := 0; v < n; v++ {
		if inKeep[v] != inExact[v] {
			res.DecisionMismatches++
		} else if inKeep[v] && centers[v] != exactCenters[v] {
			res.CenterMismatches++
		}
	}
	return res, nil
}

// runTopOnePhase is the deliberately lossy keep=1 discipline: every vertex
// tracks and forwards only its single best (center, value) pair. The join
// rule still needs a second value, which is now only whatever happened to
// arrive — exactly the information the paper shows must be two-deep.
func runTopOnePhase(g graph.Interface, alive []bool, radius []float64, rounds int) (joined []int, centers []int) {
	n := g.N()
	state := make([]topTwo, n) // second slot records arrivals but is never forwarded
	changed := make([]bool, n)
	dirty := make([]bool, n)
	for v := 0; v < n; v++ {
		state[v].reset()
		if alive[v] {
			state[v].merge(v, radius[v])
			changed[v] = true
		}
	}
	snap := make([]topTwo, n)
	for round := 0; round < rounds; round++ {
		copy(snap, state)
		sent := false
		for v := 0; v < n; v++ {
			if !alive[v] || !changed[v] {
				continue
			}
			s := &snap[v]
			if s.c1 == none || s.v1 < 1 {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if !alive[w] {
					continue
				}
				if state[w].merge(s.c1, s.v1-1) {
					dirty[w] = true
				}
				sent = true
			}
		}
		changed, dirty = dirty, changed
		for v := range dirty {
			dirty[v] = false
		}
		if !sent {
			break
		}
	}
	centers = make([]int, n)
	for v := range centers {
		centers[v] = none
	}
	for v := 0; v < n; v++ {
		if alive[v] && state[v].joins() {
			joined = append(joined, v)
			centers[v] = state[v].c1
		}
	}
	return joined, centers
}
