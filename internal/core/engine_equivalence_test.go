package core

import (
	"context"
	"reflect"
	"testing"

	"netdecomp/internal/dist"
	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

// TestEngineSchedulerDeterminism pins the engine contract internal/randx
// documents: for a fixed seed, the sequential scheduler, the default
// parallel scheduler and every explicit worker count 1..8 produce the
// identical Decomposition — clusters, colors and CONGEST metrics alike.
func TestEngineSchedulerDeterminism(t *testing.T) {
	graphs := []*graph.Graph{
		gen.GnpConnected(randx.New(21), 250, 0.012),
		gen.RingOfCliques(12, 5),
	}
	for gi, g := range graphs {
		o := Options{K: 4, C: 8, Seed: 42}
		ref, err := RunDistributed(g, o, dist.Options{})
		if err != nil {
			t.Fatal(err)
		}
		engines := []dist.Options{{Parallel: true}}
		for w := 1; w <= 8; w++ {
			engines = append(engines, dist.Options{Parallel: true, Workers: w})
		}
		for _, e := range engines {
			got, err := RunDistributed(g, o, e)
			if err != nil {
				t.Fatalf("graph %d engine %+v: %v", gi, e, err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("graph %d engine %+v: decomposition diverged from sequential scheduler", gi, e)
			}
		}
	}
}

// badProgram violates the engine contract by addressing a node outside the
// graph; the engine must surface an error, not a panic.
type badProgram struct{ n int }

func (p badProgram) NumNodes() int { return p.n }

func (p badProgram) Step(node, round int, in []dist.Envelope[Msg]) ([]dist.Envelope[Msg], bool) {
	return []dist.Envelope[Msg]{{From: node, To: p.n + 7, Payload: Msg{Depart: true}}}, true
}

func TestEngineRejectsOutOfRangeMessages(t *testing.T) {
	if _, err := dist.Run[Msg](context.Background(), badProgram{n: 5}, dist.Options{}); err == nil {
		t.Fatal("engine accepted a message to an out-of-range node")
	}
}
