package core

// Incremental repair of a completed decomposition under edge mutations.
//
// The Elkin–Neiman phase is a distance-potential computation: after the
// broadcast rounds, a vertex's final top-two state is exactly the two best
// values r_c − d(c, v) over alive centers c with d(c, v) ≤ ⌊r_c⌋ (ties
// broken toward smaller center id), and the join decision and chosen
// center are pure functions of that state. Two properties make the phase
// repairable locally:
//
//  1. The radius draws are a pure function of (seed, phase, vertex),
//     independent of the alive set and the graph.
//  2. The broadcast is closed under top-two propagation: every value a
//     vertex ever forwards is dominated (in the beats order) by its final
//     top-two entries, so any entry of any vertex's final state is present
//     in the final state of every vertex along its shortest path.
//
// Repair replays the phase loop of RunWith keeping both runs' alive sets
// plus their difference. Per phase, the vertices whose state could have
// changed are found by certified delta simulation: grow a region around
// the divergence sources (diverged vertices and live changed-edge
// endpoints), re-simulate the region with its boundary shell frozen at the
// prior run's recorded final states (rebroadcast from round 0 — which, in
// the absence of radius truncation, reaches exactly the vertices the
// original timed arrivals reached), and accept the region iff every
// boundary vertex's simulated final state bit-matches the prior run's.
// Property 2 makes that certificate sound in both directions: a change
// escaping the region must alter a boundary final, and a prior-run value
// whose supporting path broke must vanish from a boundary final. On
// certificate failure the failing component's region grows by another
// hop and re-simulates; phases with no divergence
// sources reuse the prior outcome wholesale; phases with radius
// truncation (where the round budget, not the value gate, limits reach)
// fall back to the conservative ball bound; and past a configurable
// region fraction Repair abandons incrementality for a full recompute.
//
// The composed join set feeds the same buildClusters as a scratch run on
// the new graph, so cluster ordering, centers, colors, and
// center-violation accounting all match. The returned Decomposition is
// content-identical to Run(g, o) on the mutated graph — Clusters,
// ClusterOf, Colors, PhasesUsed, AlivePerPhase, Complete,
// TruncationEvents, CenterViolations all match — while the traffic metrics
// (Rounds, Messages, MsgWords, MaxMsgWords) account the repair's own, much
// smaller, simulation: that difference is the speedup being bought.

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

// phaseFinals pins one phase's converged broadcast states: the final
// top-two of every vertex alive in that phase, parallel to the ascending
// alive list. Immutable once built; repairs share unchanged snapshots.
type phaseFinals struct {
	// Flat snapshot: the phase's alive list (ascending) with parallel
	// final states. When base is non-nil this is instead a sparse overlay
	// snapshot — base's view plus the edits below — and alive/final/idx
	// are nil. Overlays are how repairs record phases that barely moved
	// without re-materializing megabytes of identical finals; overlayCap
	// bounds the chain depth, after which a repair records flat again.
	alive []int32
	final []topTwo
	idx   []int32 // lazy dense vertex→position index; -1 = not alive

	base    *phaseFinals
	depth   int
	over    []int32  // ascending: vertices whose final differs from base's view
	overSt  []topTwo // parallel states for over
	removed []int32  // ascending: alive in base's view, dead here

	// Radius statistics over the phase's alive set. Radii are pure
	// functions of (seed, phase, v), so a repair updates these from the
	// alive-set diff alone instead of re-drawing every alive vertex —
	// the draw (one exponential per vertex per phase) is the dominant
	// fixed cost of small repairs otherwise.
	trunc  int // draws at or past k+1 (truncation events)
	maxFl  int // max ⌊r_v⌋ over the alive set (at least 0)
	maxCnt int // alive vertices achieving maxFl
}

// overlayCap is the maximum overlay chain depth before a repair records a
// phase flat again, bounding both lookup cost and retained history.
const overlayCap = 2

// lookup returns v's recorded final state, if v was alive in the phase.
// Overlay layers are consulted newest-first; the flat base builds a dense
// index on first use since it sits on the delta simulation's per-vertex
// hot path (seeding, certification, recording).
func (pf *phaseFinals) lookup(v int32) (topTwo, bool) {
	p := pf
	for p.base != nil {
		if i, ok := slices.BinarySearch(p.over, v); ok {
			return p.overSt[i], true
		}
		if _, ok := slices.BinarySearch(p.removed, v); ok {
			return topTwo{}, false
		}
		p = p.base
	}
	if p.idx == nil {
		size := int32(0)
		if len(p.alive) > 0 {
			size = p.alive[len(p.alive)-1] + 1
		}
		idx := make([]int32, size)
		for i := range idx {
			idx[i] = -1
		}
		for i, u := range p.alive {
			idx[u] = int32(i)
		}
		p.idx = idx
	}
	if int(v) >= len(p.idx) || p.idx[v] < 0 {
		return topTwo{}, false
	}
	return p.final[p.idx[v]], true
}

// foldOverlay merges a child edit set — over (cOver/cSt) and removed
// (cRem), each ascending, both expressed against overlay p's full chain
// view — into p's own edit lists, returning the lists of a single overlay
// over p.base that reproduces the child chain's lookup results exactly.
// Child entries win conflicts; parent over entries the child removed are
// dropped, as are parent removed entries the child resurrected.
func foldOverlay(cOver []int32, cSt []topTwo, cRem []int32, p *phaseFinals) ([]int32, []topTwo, []int32) {
	over := make([]int32, 0, len(cOver)+len(p.over))
	st := make([]topTwo, 0, len(cOver)+len(p.over))
	i, j, r := 0, 0, 0
	for i < len(cOver) || j < len(p.over) {
		if j >= len(p.over) || (i < len(cOver) && cOver[i] <= p.over[j]) {
			if j < len(p.over) && p.over[j] == cOver[i] {
				j++
			}
			over = append(over, cOver[i])
			st = append(st, cSt[i])
			i++
			continue
		}
		v := p.over[j]
		for r < len(cRem) && cRem[r] < v {
			r++
		}
		if r >= len(cRem) || cRem[r] != v {
			over = append(over, v)
			st = append(st, p.overSt[j])
		}
		j++
	}
	removed := make([]int32, 0, len(cRem)+len(p.removed))
	i, j = 0, 0
	for i < len(cRem) || j < len(p.removed) {
		if j >= len(p.removed) || (i < len(cRem) && cRem[i] <= p.removed[j]) {
			if j < len(p.removed) && p.removed[j] == cRem[i] {
				j++
			}
			removed = append(removed, cRem[i])
			i++
			continue
		}
		v := p.removed[j]
		if _, ok := slices.BinarySearch(cOver, v); !ok {
			removed = append(removed, v)
		}
		j++
	}
	return over, st, removed
}

// RepairState pins the outcome of a completed run: the phase at which each
// vertex joined its cluster, the center it chose, and (when produced by
// RunRepairable) each phase's converged broadcast states. The per-phase
// states are what enable certified delta simulation; a state without them
// (NewRepairState) still repairs, via the conservative ball bound only.
type RepairState struct {
	n         int
	joinPhase []int32 // phase v joined at, or -1 (never clustered)
	center    []int32 // center v chose when it joined, or -1
	phases    []phaseFinals
	// The prior run's cluster list and vertex→cluster index (shared with
	// the Decomposition that produced them, immutable by convention).
	// Repair adopts clusters of untouched components wholesale — member
	// slices included — and rebuilds only components reached by membership
	// changes or changed edges, so steady-state cluster extraction costs
	// the damage, not the graph. nil (NewRepairState) disables adoption.
	clusters  []Cluster
	clusterOf []int
}

// NewRepairState extracts the repair state from a trace-captured run. The
// trace's per-phase center records carry each vertex's own choice, so the
// state is exact even for the rare truncation-induced clusters whose
// members chose different centers. The trace does not record broadcast
// states, so the resulting state drives only the conservative repair path;
// RunRepairable produces the full state.
func NewRepairState(dec *Decomposition) (*RepairState, error) {
	if dec.Trace == nil {
		return nil, errors.New("core: repair state requires a run with Options.CaptureTrace")
	}
	st := &RepairState{
		n:         dec.N,
		joinPhase: make([]int32, dec.N),
		center:    make([]int32, dec.N),
	}
	for v := range st.joinPhase {
		st.joinPhase[v] = -1
		st.center[v] = none
	}
	for t := range dec.Trace.Center {
		for v, c := range dec.Trace.Center[t] {
			if c != none && st.joinPhase[v] < 0 {
				st.joinPhase[v] = int32(t)
				st.center[v] = int32(c)
			}
		}
	}
	st.clusters = dec.Clusters
	st.clusterOf = dec.ClusterOf
	return st, nil
}

// RunRepairable executes a full decomposition and returns the repair state
// alongside it — the bootstrap (and fallback) path of incremental
// maintenance. The returned Decomposition carries no trace regardless of
// o.CaptureTrace's value; it is otherwise identical to Run(g, o).
func RunRepairable(g graph.Interface, o Options) (*Decomposition, *RepairState, error) {
	ot := o
	ot.CaptureTrace = true
	_, sched, err := resolve(g.N(), ot)
	if err != nil {
		return nil, nil, err
	}
	var finals []phaseFinals
	x := Exec{phaseFinal: func(phase int, aliveList []int32, state []topTwo, radius []float64) {
		pf := phaseFinals{alive: slices.Clone(aliveList), final: make([]topTwo, len(aliveList))}
		for i, v := range aliveList {
			pf.final[i] = state[v]
			r := radius[v]
			if r >= float64(sched.k)+1 {
				pf.trunc++
			}
			if fl := int(math.Floor(r)); fl > pf.maxFl {
				pf.maxFl, pf.maxCnt = fl, 1
			} else if fl == pf.maxFl {
				pf.maxCnt++
			}
		}
		finals = append(finals, pf)
	}}
	dec, err := RunWith(g, ot, x)
	if err != nil {
		return nil, nil, err
	}
	st, err := NewRepairState(dec)
	if err != nil {
		return nil, nil, err
	}
	st.phases = finals
	dec.Trace = nil
	dec.Opts.CaptureTrace = o.CaptureTrace
	return dec, st, nil
}

// EdgeChange is one effective edge mutation between the prior run's graph
// and the new one.
type EdgeChange struct {
	U, V int32
	// Insert reports the direction: true when {U,V} exists in the new
	// graph but not the old, false for a deletion.
	Insert bool
}

// RepairConfig tunes the repair path.
type RepairConfig struct {
	// MaxDamageFraction is the fraction of n the per-phase re-simulation
	// region may reach before Repair abandons incrementality and falls
	// back to a full recompute. 0 selects the default 0.25.
	MaxDamageFraction float64
}

// RepairStats reports what a repair did.
type RepairStats struct {
	// Phases counts replayed phases (equals the result's PhasesUsed unless
	// the repair fell back).
	Phases int
	// DamagedVertices totals the per-phase divergence sources (vertices
	// whose survival status differs between the runs plus live changed-edge
	// endpoints); RegionVertices totals the per-phase re-simulated regions
	// across all certificate attempts; MaxRegion is the largest
	// single-attempt region.
	DamagedVertices int
	RegionVertices  int
	MaxRegion       int
	// RepairedClusters counts result clusters containing at least one
	// region vertex; TotalClusters is len(Clusters).
	RepairedClusters int
	TotalClusters    int
	// FellBack reports a full recompute happened instead, with the reason.
	FellBack       bool
	FallbackReason string
}

// Repair produces the decomposition of the mutated graph g from the prior
// run's state st, re-simulating only the affected region of each phase. o
// must equal the Options of the run that produced st (same seed included);
// changes must list exactly the effective edge differences between the
// prior graph and g. It returns the new decomposition, the state pinning
// it (for the next repair), and the repair statistics.
func Repair(g graph.Interface, o Options, st *RepairState, changes []EdgeChange, cfg RepairConfig) (*Decomposition, *RepairState, RepairStats, error) {
	n := g.N()
	if st == nil || st.n != n {
		return repairFallback(g, o, RepairStats{}, "no prior state for this vertex count")
	}
	for _, c := range changes {
		if c.U < 0 || int(c.U) >= n || c.V < 0 || int(c.V) >= n || c.U == c.V {
			return nil, nil, RepairStats{}, fmt.Errorf("core: bad edge change {%d,%d} on %d vertices", c.U, c.V, n)
		}
	}
	o2, sched, err := resolve(n, o)
	if err != nil {
		return nil, nil, RepairStats{}, err
	}
	frac := cfg.MaxDamageFraction
	if frac == 0 {
		frac = 0.25
	}
	regionCap := int(frac * float64(n))
	if regionCap < 1 {
		regionCap = 1
	}

	var stats RepairStats

	// Deleted-edge adjacency patches: the union graph the region growth
	// walks is g plus these rows (edges that existed in the prior graph
	// only).
	delAdj := map[int32][]int32{}
	chg := make([]EdgeChange, 0, len(changes))
	for _, c := range changes {
		chg = append(chg, c)
		if !c.Insert {
			delAdj[c.U] = append(delAdj[c.U], c.V)
			delAdj[c.V] = append(delAdj[c.V], c.U)
		}
	}

	// The prior run's per-phase join sets, bucketed ascending.
	maxJoin := int32(-1)
	for _, p := range st.joinPhase {
		if p > maxJoin {
			maxJoin = p
		}
	}
	oldJoin := make([][]int32, maxJoin+1)
	for v, p := range st.joinPhase {
		if p >= 0 {
			oldJoin[p] = append(oldJoin[p], int32(v))
		}
	}
	oldJoinAt := func(phase int) []int32 {
		if phase < len(oldJoin) {
			return oldJoin[phase]
		}
		return nil
	}

	aliveOld := make([]bool, n)
	aliveNew := make([]bool, n)
	aliveNewList := make([]int32, n)
	for v := range aliveOld {
		aliveOld[v] = true
		aliveNew[v] = true
		aliveNewList[v] = int32(v)
	}
	aliveNewCount := n
	unionAlive := func(v int32) bool { return aliveOld[v] || aliveNew[v] }

	// diffList holds exactly the vertices where the two alive sets differ
	// (diffMask mirrors it for O(1) membership).
	diffMask := make([]bool, n)
	var diffList []int32

	// Scratch: rMask/rList hold the grown region R (union-alive);
	// simMask/simList the restricted simulation's alive set (R's new-alive
	// part plus the frozen shell); shellMask marks the shell within it.
	rMask := make([]bool, n)
	simMask := make([]bool, n)
	shellMask := make([]bool, n)
	trustMask := make([]bool, n)
	regionEver := make([]bool, n)
	compMask := make([]bool, n)
	var rList, simList, shellList, cur, nxt, srcList []int32
	var compList, visitedList, dirtySeeds, seedsBuf, failList []int32
	srcMask := make([]bool, n)
	centersArr := make([]int, n)

	// Cluster-adoption scratch: joinedMask marks the phase's join set,
	// assignedMask the members already placed into a cluster, dirtyMask the
	// prior clusters that cannot be adopted this phase.
	canPatch := st.clusters != nil && st.clusterOf != nil
	joinedMask := make([]bool, n)
	assignedMask := make([]bool, n)
	var dirtyMask []bool
	var dirtyList []int
	var clusterQueue []int32
	if canPatch {
		dirtyMask = make([]bool, len(st.clusters))
	}

	dec := &Decomposition{
		N:           n,
		Opts:        o2,
		K:           sched.k,
		ClusterOf:   make([]int, n),
		PhaseBudget: sched.budget,
		// The prior run's cluster count is a near-exact capacity estimate;
		// growing this slice inside emitCluster otherwise dominates the
		// small-batch repair floor (tens of thousands of Cluster appends).
		Clusters: make([]Cluster, 0, len(st.clusters)+16),
	}
	if canPatch {
		// Start from the prior run's assignment: adopted clusters whose
		// index did not shift then skip their per-member writes entirely,
		// which removes the last O(n) random-write pass from small repairs.
		// Vertices the new run leaves unclustered are fixed up after the
		// phase loop; every other vertex is covered by an emitCluster call.
		copy(dec.ClusterOf, st.clusterOf)
	} else {
		for v := range dec.ClusterOf {
			dec.ClusterOf[v] = -1
		}
	}
	newState := &RepairState{n: n, joinPhase: make([]int32, n), center: make([]int32, n)}
	for v := range newState.joinPhase {
		newState.joinPhase[v] = -1
		newState.center[v] = none
	}
	recordFinals := st.phases != nil

	runner := newPhaseRunner(g)
	maxPhases := sched.budget
	if o2.ForceComplete {
		maxPhases = 64*sched.budget + 1024
	}

	// patchClusters assembles a phase's clusters by adopting every prior
	// cluster whose component provably did not change and rebuilding the
	// rest with local searches over the join set. A prior cluster is
	// adoptable unless marked dirty: it lost a member, a changed edge
	// touches two of this phase's joined vertices in it, or a vertex that
	// newly joined this phase is adjacent to it — any edge between an
	// adoptable cluster and the rest of the join set would imply one of
	// those marks, so adoptable clusters are exactly the unchanged maximal
	// components. Clusters are emitted in ascending order of their smallest
	// member, the same order buildClusters derives from the ascending join
	// list, so the cluster list stays bit-identical to a scratch run's.
	// pc is the prior index of an adopted cluster (-1 for rebuilt ones);
	// when it equals the new index, ClusterOf already carries the right
	// value from the prior-assignment clone above.
	emitCluster := func(members []int, phase, pc int) {
		center := centersArr[members[0]]
		uniform := true
		for _, u := range members[1:] {
			if centersArr[u] != center {
				uniform = false
			}
		}
		if !uniform {
			dec.CenterViolations++
		}
		ci := len(dec.Clusters)
		dec.Clusters = append(dec.Clusters, Cluster{
			Members: members,
			Center:  center,
			Phase:   phase,
			Color:   dec.Colors,
		})
		if pc != ci {
			for _, u := range members {
				dec.ClusterOf[u] = ci
			}
		}
	}
	patchClusters := func(joined []int, phase int) {
		for _, v := range joined {
			joinedMask[v] = true
		}
		markDirty := func(v int32) {
			if st.joinPhase[v] == int32(phase) {
				if pc := st.clusterOf[v]; pc >= 0 && !dirtyMask[pc] {
					dirtyMask[pc] = true
					dirtyList = append(dirtyList, pc)
				}
			}
		}
		for _, v := range oldJoinAt(phase) {
			if !joinedMask[v] {
				markDirty(v)
			}
		}
		for _, v := range joined {
			if st.joinPhase[v] != int32(phase) {
				// Newly joined here: whatever it attaches to must merge.
				for _, w := range g.Neighbors(v) {
					if joinedMask[w] {
						markDirty(w)
					}
				}
			}
		}
		for _, c := range chg {
			if joinedMask[c.U] && joinedMask[c.V] {
				markDirty(c.U)
				markDirty(c.V)
			}
		}
		for _, v := range joined {
			if assignedMask[v] {
				continue
			}
			pc := -1
			if st.joinPhase[v] == int32(phase) {
				pc = st.clusterOf[v]
			}
			if pc >= 0 && !dirtyMask[pc] {
				members := st.clusters[pc].Members
				for _, u := range members {
					assignedMask[u] = true
				}
				emitCluster(members, phase, pc)
				continue
			}
			// Rebuild v's component over the join set. The search cannot
			// reach an adoptable cluster: a connecting edge would have
			// marked it dirty.
			clusterQueue = append(clusterQueue[:0], int32(v))
			assignedMask[v] = true
			members := []int{v}
			for head := 0; head < len(clusterQueue); head++ {
				for _, w := range g.Neighbors(int(clusterQueue[head])) {
					if joinedMask[w] && !assignedMask[w] {
						assignedMask[w] = true
						clusterQueue = append(clusterQueue, w)
						members = append(members, int(w))
					}
				}
			}
			slices.Sort(members)
			emitCluster(members, phase, -1)
		}
		for _, v := range joined {
			joinedMask[v] = false
			assignedMask[v] = false
		}
		for _, pc := range dirtyList {
			dirtyMask[pc] = false
		}
		dirtyList = dirtyList[:0]
	}

	for phase := 0; aliveNewCount > 0; phase++ {
		if phase >= sched.budget && !o2.ForceComplete {
			break
		}
		if phase >= maxPhases {
			return nil, nil, stats, fmt.Errorf("core: graph not exhausted after %d phases (n=%d, k=%d); this indicates a bug", phase, n, sched.k)
		}
		beta := sched.betas[len(sched.betas)-1]
		if phase < len(sched.betas) {
			beta = sched.betas[phase]
		}
		dec.AlivePerPhase = append(dec.AlivePerPhase, aliveNewCount)

		// Divergence sources this phase: vertices whose survival differs
		// between the runs, plus the endpoints of changed edges still live
		// in either run (chg is pruned below, so every entry qualifies).
		srcList = srcList[:0]
		for _, v := range diffList {
			if !srcMask[v] {
				srcMask[v] = true
				srcList = append(srcList, v)
			}
		}
		for _, c := range chg {
			for _, v := range [2]int32{c.U, c.V} {
				if unionAlive(v) && !srcMask[v] {
					srcMask[v] = true
					srcList = append(srcList, v)
				}
			}
		}
		stats.DamagedVertices += len(srcList)

		// Per-phase radius statistics: the truncation count and max floored
		// radius over the new alive set (with its achiever count), plus the
		// union-alive max that bounds propagation rounds. When the prior
		// state recorded this phase, they are maintained from the alive-set
		// diff alone — radii are pure functions of (seed, phase, v) — so the
		// full-graph draw (one exponential per alive vertex, the dominant
		// fixed cost of small repairs) happens only past the recorded
		// prefix. The simulation paths below draw radii for exactly the
		// vertices they touch.
		truncNew, maxFlNew, maxCntNew := 0, 0, 0
		unionMax := 0
		if phase < len(st.phases) {
			pf := &st.phases[phase]
			truncNew = pf.trunc
			deadMax, deadFl := 0, 0
			addedFl, addedCnt := -1, 0
			for _, v := range diffList {
				r := phaseRadius(o2.Seed, phase, v, beta)
				fl := int(math.Floor(r))
				if aliveNew[v] {
					if r >= float64(sched.k)+1 {
						truncNew++
					}
					if fl > addedFl {
						addedFl, addedCnt = fl, 1
					} else if fl == addedFl {
						addedCnt++
					}
				} else {
					if r >= float64(sched.k)+1 {
						truncNew--
					}
					if fl == pf.maxFl {
						deadMax++
					}
					if fl > deadFl {
						deadFl = fl
					}
				}
			}
			if deadMax >= pf.maxCnt {
				// Every prior achiever of the max died; rescan the new
				// alive set. Rare, since the diff is tiny relative to it.
				for _, v := range aliveNewList {
					if fl := int(math.Floor(phaseRadius(o2.Seed, phase, v, beta))); fl > maxFlNew {
						maxFlNew, maxCntNew = fl, 1
					} else if fl == maxFlNew {
						maxCntNew++
					}
				}
			} else {
				maxFlNew, maxCntNew = pf.maxFl, pf.maxCnt-deadMax
				if addedFl > maxFlNew {
					maxFlNew, maxCntNew = addedFl, addedCnt
				} else if addedFl == maxFlNew {
					maxCntNew += addedCnt
				}
			}
			unionMax = maxFlNew
			if deadFl > unionMax {
				unionMax = deadFl
			}
		} else {
			drawRadiiSparse(o2.Seed, phase, aliveNewList, beta, runner.radius)
			truncNew = countTruncationsSparse(aliveNewList, runner.radius, sched.k)
			for _, v := range aliveNewList {
				if fl := int(math.Floor(runner.radius[v])); fl > maxFlNew {
					maxFlNew, maxCntNew = fl, 1
				} else if fl == maxFlNew {
					maxCntNew++
				}
			}
			unionMax = maxFlNew
			for _, v := range diffList {
				if aliveOld[v] && !aliveNew[v] {
					if fl := int(math.Floor(phaseRadius(o2.Seed, phase, v, beta))); fl > unionMax {
						unionMax = fl
					}
				}
			}
		}
		dec.TruncationEvents += truncNew

		var joined []int
		var res phaseResult
		simulated := false
		if len(srcList) == 0 {
			// Both runs see the same graph and alive set from here on this
			// phase: reuse the prior outcome wholesale.
			for _, v := range oldJoinAt(phase) {
				joined = append(joined, int(v))
				centersArr[v] = int(st.center[v])
			}
			if recordFinals {
				if phase < len(st.phases) {
					newState.phases = append(newState.phases, st.phases[phase])
				} else {
					recordFinals = false
				}
			}
		} else {
			// unionMax (computed above) bounds ⌊r_v⌋ over every vertex alive
			// in either run: the rounds any value of either run needs to
			// fully propagate.
			// Delta simulation is exact only while the value gate, not the
			// round budget, limits reach: under RadiusCap a draw past k
			// (a truncation event) breaks that, so such phases take the
			// conservative ball path.
			useDelta := recordFinals && phase < len(st.phases) &&
				(o2.RadiusMode == RadiusExact || unionMax <= sched.k)

			var trusted []int32 // new-alive vertices whose sim outcome is exact
			var simJoined []int // ascending joiners among the simulated set
			var simCenters []int
			switch {
			case phase >= len(oldJoin) && int32(phase) > maxJoin && phase >= len(st.phases):
				// The prior run ended before this phase: every survivor is
				// diverged, so simulate the whole remaining graph — which is
				// exactly what a scratch run would do here.
				simRounds := sched.k
				if o2.RadiusMode == RadiusExact {
					simRounds = maxFlNew
				}
				res = runner.runSparse(aliveNew, aliveNewList, simRounds, nil)
				simulated = true
				simJoined, simCenters = res.joined, res.centers
				trusted = aliveNewList
				for _, v := range aliveNewList {
					trustMask[v] = true
					regionEver[v] = true
				}
				stats.RegionVertices += len(aliveNewList)
				if len(aliveNewList) > stats.MaxRegion {
					stats.MaxRegion = len(aliveNewList)
				}

			case useDelta:
				pf := &st.phases[phase]
				// R grows only where the certificate fails. Certification
				// is per connected component of R: a component whose boundary
				// matched once keeps its simulated states untouched in
				// runner.state and is only revisited when growth connects new
				// vertices to it, so converged damage sites stop costing
				// anything while stragglers keep growing.
				rList = rList[:0]
				dirtySeeds = dirtySeeds[:0]
				addR := func(v int32) {
					if unionAlive(v) && !rMask[v] {
						rMask[v] = true
						rList = append(rList, v)
						dirtySeeds = append(dirtySeeds, v)
					}
				}
				growFrom := func(v int32) {
					for _, w := range g.Neighbors(int(v)) {
						addR(w)
					}
					for _, w := range delAdj[v] {
						addR(w)
					}
				}
				// R starts at the sources alone: for most damage sites the
				// changed edge does not alter any converged state (gnp-style
				// graphs deliver values along many redundant paths), so the
				// minimal region certifies immediately and the site costs a
				// ~degree-sized sim instead of a ball. A source dead in the
				// new run cannot witness its own divergence (it is excluded
				// from the sim), so its live neighborhood joins R in its
				// stead — otherwise a dead source's component could certify
				// vacuously while its neighbors wrongly reuse old outcomes.
				for _, s := range srcList {
					addR(s)
					if !aliveNew[s] {
						growFrom(s)
					}
				}
				preset := func(v int32) (topTwo, bool) {
					if !shellMask[v] {
						return topTwo{}, false
					}
					return pf.lookup(v)
				}
				// fastPass certifies a small component in closed form,
				// mirroring the runner's rounds exactly — snapshot (Jacobi)
				// deliveries, the value-≥1 send gate, the −1 decrement —
				// over the component's live members, with the shell frozen
				// at prior finals. Most damage sites are a single changed
				// edge whose endpoints' states don't move, so this avoids
				// the runner's per-simulation setup (row compaction,
				// frontier, preset seeding) for the common case. Returns
				// false whenever the component must go through the generic
				// simulation: too large, a missing prior final, or a
				// genuine mismatch.
				const fastMax = 4
				fastPass := func(comp []int32) bool {
					var mem [fastMax]int32
					cnt := 0
					for _, v := range comp {
						if aliveNew[v] {
							if cnt == fastMax {
								return false
							}
							mem[cnt] = v
							cnt++
						}
					}
					if cnt == 0 {
						// All members are dead in the new run: nothing to
						// simulate. Sound because every old-alive-new-dead
						// vertex is a divergence source whose live
						// neighborhood was forced into R at region init.
						return true
					}
					var want, prev, curS [fastMax]topTwo
					for i := 0; i < cnt; i++ {
						w, found := pf.lookup(mem[i])
						if !found {
							return false
						}
						want[i] = w
						prev[i].reset()
						prev[i].merge(int(mem[i]), runner.radius[mem[i]])
					}
					memState := func(w int32) *topTwo {
						for i := 0; i < cnt; i++ {
							if mem[i] == w {
								return &prev[i]
							}
						}
						return &prev[0] // unreachable: R-adjacency implies membership
					}
					emitInto := func(dst *topTwo, s *topTwo) {
						if s.c1 != none && s.v1 >= 1 {
							dst.merge(s.c1, s.v1-1)
						}
						if s.c2 != none && s.v2 >= 1 {
							dst.merge(s.c2, s.v2-1)
						}
					}
					for round := 0; round < unionMax; round++ {
						changed := false
						for i := 0; i < cnt; i++ {
							s := prev[i]
							for _, w := range g.Neighbors(int(mem[i])) {
								if !aliveNew[w] {
									continue
								}
								if compMask[w] {
									emitInto(&s, memState(w))
								} else if round == 0 {
									pw, found := pf.lookup(w)
									if !found {
										return false
									}
									emitInto(&s, &pw)
								}
							}
							curS[i] = s
							if s != prev[i] {
								changed = true
							}
						}
						prev = curS
						if !changed {
							break
						}
					}
					for i := 0; i < cnt; i++ {
						if prev[i] != want[i] {
							return false
						}
					}
					// Boundary absorption: the members' final emissions must
					// leave every shell final unchanged. Intermediate values
					// are dominated by the final top-two (property 2), so
					// checking the finals covers everything ever sent.
					for i := 0; i < cnt; i++ {
						for _, w := range g.Neighbors(int(mem[i])) {
							if !aliveNew[w] || compMask[w] {
								continue
							}
							pw, found := pf.lookup(w)
							if !found {
								return false
							}
							check := pw
							emitInto(&check, &prev[i])
							if check != pw {
								return false
							}
						}
					}
					for i := 0; i < cnt; i++ {
						runner.state[mem[i]] = prev[i]
					}
					stats.RegionVertices += cnt
					return true
				}
				maxIter := 64
				if c := 2*unionMax + 16; c > maxIter {
					maxIter = c
				}
				fellBack := false
				var agg phaseResult
				for iter := 0; ; iter++ {
					if len(rList) > regionCap {
						clearMask(rMask, rList)
						clearMask(srcMask, srcList)
						return repairFallback(g, o, stats, fmt.Sprintf("phase %d region %d exceeds cap %d", phase, len(rList), regionCap))
					}
					if iter >= maxIter {
						// Growth is not converging; the damage is effectively
						// global this phase.
						fellBack = true
						break
					}

					seedsBuf, dirtySeeds = dirtySeeds, seedsBuf[:0]
					failList = failList[:0]
					visitedList = visitedList[:0]
					for _, s := range seedsBuf {
						if compMask[s] {
							continue
						}
						// The component of s within R, over the union graph.
						compList = compList[:0]
						cur = cur[:0]
						compMask[s] = true
						compList = append(compList, s)
						cur = append(cur, s)
						for len(cur) > 0 {
							v := cur[len(cur)-1]
							cur = cur[:len(cur)-1]
							for _, w := range g.Neighbors(int(v)) {
								if rMask[w] && !compMask[w] {
									compMask[w] = true
									compList = append(compList, w)
									cur = append(cur, w)
								}
							}
							for _, w := range delAdj[v] {
								if rMask[w] && !compMask[w] {
									compMask[w] = true
									compList = append(compList, w)
									cur = append(cur, w)
								}
							}
						}
						visitedList = append(visitedList, compList...)

						// Draw the members' radii: in incremental-stats
						// phases nothing has filled them yet (re-draws after
						// growth are idempotent — the draw is pure).
						for _, v := range compList {
							if aliveNew[v] {
								runner.radius[v] = phaseRadius(o2.Seed, phase, v, beta)
							}
						}

						if len(compList) <= fastMax && fastPass(compList) {
							continue
						}

						// Sim set: the component's new-alive part plus its
						// one-hop shell of new-alive outside neighbors, frozen
						// at prior finals.
						simList = simList[:0]
						shellList = shellList[:0]
						for _, v := range compList {
							if aliveNew[v] {
								simMask[v] = true
								simList = append(simList, v)
							}
						}
						for _, v := range compList {
							if !aliveNew[v] {
								continue
							}
							for _, w := range g.Neighbors(int(v)) {
								if aliveNew[w] && !rMask[w] && !shellMask[w] {
									shellMask[w] = true
									shellList = append(shellList, w)
									simMask[w] = true
									simList = append(simList, w)
								}
							}
						}
						// The runner does not need simList sorted: merge order
						// independence makes every observable output of the
						// sim a set or a sum, and the delta path derives
						// joins from runner.state directly.
						stats.RegionVertices += len(simList)
						if len(simList) > stats.MaxRegion {
							stats.MaxRegion = len(simList)
						}

						cres := runner.runSparseSeeded(simMask, simList, unionMax, nil, preset)
						agg.rounds += cres.rounds
						agg.messages += cres.messages
						agg.words += cres.words
						if cres.maxMsgWords > agg.maxMsgWords {
							agg.maxMsgWords = cres.maxMsgWords
						}
						// Certificate: every shell vertex and every component
						// vertex adjacent to the shell must converge to the
						// prior run's exact final state; a mismatch means
						// influence crossed the boundary there.
						for _, v := range simList {
							onBoundary := shellMask[v]
							if !onBoundary {
								for _, w := range g.Neighbors(int(v)) {
									if shellMask[w] {
										onBoundary = true
										break
									}
								}
							}
							if !onBoundary {
								continue
							}
							want, found := pf.lookup(v)
							if !found || runner.state[v] != want {
								failList = append(failList, v)
							}
						}
						clearMask(simMask, simList)
						clearMask(shellMask, shellList)
					}
					clearMask(compMask, visitedList)
					if len(failList) == 0 {
						break
					}
					// Grow around exactly the failing vertices. A failing
					// vertex itself re-seeds its component (growth may merge
					// it with a neighboring, already-certified one, which the
					// component walk then re-simulates as a whole).
					for _, f := range failList {
						addR(f)
						dirtySeeds = append(dirtySeeds, f)
						growFrom(f)
					}
				}
				if fellBack {
					clearMask(rMask, rList)
					clearMask(srcMask, srcList)
					return repairFallback(g, o, stats, fmt.Sprintf("phase %d delta certificate never converged", phase))
				}
				res = agg
				simulated = true
				// Every R vertex alive in the new run is trusted; joins are
				// read straight off the certified states.
				for _, v := range rList {
					if aliveNew[v] {
						trustMask[v] = true
						trusted = append(trusted, v)
						regionEver[v] = true
					}
				}
				slices.Sort(trusted)
				for _, v := range trusted {
					if runner.state[v].joins() {
						simJoined = append(simJoined, int(v))
						runner.centers[v] = runner.state[v].c1
					}
				}
				simCenters = runner.centers

			default:
				// Conservative ball bound: BFS to the influence depth from
				// the sources over the union graph, then re-simulate the
				// simRounds-ball of the damage — any path that can carry a
				// value into a damaged vertex lies inside it.
				simRounds := sched.k
				depth := sched.k
				if o2.RadiusMode == RadiusExact {
					simRounds = maxFlNew
					depth = unionMax
				}
				rList = rList[:0]
				cur = cur[:0]
				for _, s := range srcList {
					if unionAlive(s) && !rMask[s] {
						rMask[s] = true
						rList = append(rList, s)
						cur = append(cur, s)
					}
				}
				for d := 0; d < depth && len(cur) > 0; d++ {
					nxt = nxt[:0]
					for _, v := range cur {
						for _, w := range g.Neighbors(int(v)) {
							if unionAlive(w) && !rMask[w] {
								rMask[w] = true
								rList = append(rList, w)
								nxt = append(nxt, w)
							}
						}
						for _, w := range delAdj[v] {
							if unionAlive(w) && !rMask[w] {
								rMask[w] = true
								rList = append(rList, w)
								nxt = append(nxt, w)
							}
						}
					}
					cur, nxt = nxt, cur
				}
				if len(rList) > regionCap {
					clearMask(rMask, rList)
					clearMask(srcMask, srcList)
					return repairFallback(g, o, stats, fmt.Sprintf("phase %d damage %d exceeds cap %d", phase, len(rList), regionCap))
				}

				// Region: the simRounds-ball of the new-alive damage in the
				// new graph.
				simList = simList[:0]
				cur = cur[:0]
				for _, v := range rList {
					if aliveNew[v] && !simMask[v] {
						simMask[v] = true
						simList = append(simList, v)
						cur = append(cur, v)
					}
				}
				for d := 0; d < simRounds && len(cur) > 0; d++ {
					nxt = nxt[:0]
					for _, v := range cur {
						for _, w := range g.Neighbors(int(v)) {
							if aliveNew[w] && !simMask[w] {
								simMask[w] = true
								simList = append(simList, w)
								nxt = append(nxt, w)
							}
						}
					}
					cur, nxt = nxt, cur
				}
				stats.RegionVertices += len(simList)
				if len(simList) > stats.MaxRegion {
					stats.MaxRegion = len(simList)
				}
				if len(simList) > regionCap {
					clearMask(rMask, rList)
					clearMask(simMask, simList)
					clearMask(srcMask, srcList)
					return repairFallback(g, o, stats, fmt.Sprintf("phase %d region %d exceeds cap %d", phase, len(simList), regionCap))
				}
				slices.Sort(simList)
				// Draw the region's radii — in incremental-stats phases the
				// full-graph draw was skipped.
				for _, v := range simList {
					runner.radius[v] = phaseRadius(o2.Seed, phase, v, beta)
				}

				res = runner.runSparse(simMask, simList, simRounds, nil)
				simulated = true
				simJoined, simCenters = res.joined, res.centers
				// Only the damaged (R) vertices' outcomes are exact — the
				// rest of the region is boundary context.
				for _, v := range rList {
					if aliveNew[v] {
						trustMask[v] = true
						trusted = append(trusted, v)
						regionEver[v] = true
					}
				}
				// Recording (overlay construction) needs trusted ascending.
				slices.Sort(trusted)
				clearMask(simMask, simList)
			}

			if simulated {
				dec.Rounds += res.rounds
				dec.Messages += res.messages
				dec.MsgWords += res.words
				if res.maxMsgWords > dec.MaxMsgWords {
					dec.MaxMsgWords = res.maxMsgWords
				}
			}

			// Compose the phase's join set: trusted vertices take the
			// regional simulation's outcome, everything else repeats the
			// prior run. Both inputs are ascending, so a linear merge keeps
			// the order buildClusters (and the from-scratch run) sees. R's
			// old-only vertices (diverged deaths) count as trusted too: the
			// new run settled them in an earlier phase.
			old := oldJoinAt(phase)
			oi, si := 0, 0
			sim := simJoined
			for oi < len(old) || si < len(sim) {
				for oi < len(old) && (trustMask[old[oi]] || rMask[old[oi]]) {
					oi++
				}
				for si < len(sim) && !trustMask[sim[si]] {
					si++
				}
				switch {
				case oi < len(old) && (si >= len(sim) || int(old[oi]) < sim[si]):
					v := int(old[oi])
					joined = append(joined, v)
					centersArr[v] = int(st.center[v])
					oi++
				case si < len(sim):
					v := sim[si]
					joined = append(joined, v)
					centersArr[v] = simCenters[v]
					si++
				}
			}

			// Pin this phase's converged states for the next repair:
			// trusted vertices from the simulation, the rest from the prior
			// snapshot.
			if recordFinals && phase < len(st.phases) {
				prior := &st.phases[phase]
				// Most repaired phases end bit-identical to the prior run:
				// no divergence entered the phase (the alive sets match) and
				// every trusted vertex certified back to its recorded state.
				// Share the prior snapshot wholesale then — including its
				// built index — instead of materializing an equal copy; the
				// clone below is paid only by phases that actually moved.
				same := len(diffList) == 0
				if same {
					for _, v := range trusted {
						if s, found := prior.lookup(v); !found || runner.state[v] != s {
							same = false
							break
						}
					}
				}
				switch {
				case same:
					newState.phases = append(newState.phases, *prior)
				case prior.depth < overlayCap:
					// Record the phase as prior plus a sparse edit set. The
					// only vertices whose view can differ from prior's are
					// trusted ones (every divergence source lands in R, so
					// an alive vertex outside R has a prior final by
					// construction) and diverged deaths.
					ov := phaseFinals{base: prior, depth: prior.depth + 1,
						trunc: truncNew, maxFl: maxFlNew, maxCnt: maxCntNew}
					for _, v := range trusted {
						if s, found := prior.lookup(v); !found || s != runner.state[v] {
							ov.over = append(ov.over, v)
							ov.overSt = append(ov.overSt, runner.state[v])
						}
					}
					for _, v := range diffList {
						if !aliveNew[v] {
							ov.removed = append(ov.removed, v)
						}
					}
					slices.Sort(ov.removed)
					newState.phases = append(newState.phases, ov)
				default:
					// Overlay chain at cap: compute this phase's edit set as
					// usual, then fold it into the newest prior overlay so the
					// chain stays at cap depth without re-materializing the
					// snapshot. Past a sparsity threshold the folded edit set
					// stops paying for itself and a flat snapshot is cheaper
					// to keep and to query.
					var cOver []int32
					var cSt []topTwo
					for _, v := range trusted {
						if s, found := prior.lookup(v); !found || s != runner.state[v] {
							cOver = append(cOver, v)
							cSt = append(cSt, runner.state[v])
						}
					}
					var cRem []int32
					for _, v := range diffList {
						if !aliveNew[v] {
							cRem = append(cRem, v)
						}
					}
					slices.Sort(cRem)
					if len(cOver)+len(cRem)+len(prior.over)+len(prior.removed) <= n/8 {
						ov := phaseFinals{base: prior.base, depth: prior.depth,
							trunc: truncNew, maxFl: maxFlNew, maxCnt: maxCntNew}
						ov.over, ov.overSt, ov.removed = foldOverlay(cOver, cSt, cRem, prior)
						newState.phases = append(newState.phases, ov)
						break
					}
					pf := phaseFinals{alive: slices.Clone(aliveNewList), final: make([]topTwo, len(aliveNewList)),
						trunc: truncNew, maxFl: maxFlNew, maxCnt: maxCntNew}
					for i, v := range aliveNewList {
						if trustMask[v] {
							pf.final[i] = runner.state[v]
						} else if s, found := prior.lookup(v); found {
							pf.final[i] = s
						} else {
							recordFinals = false
							break
						}
					}
					if recordFinals {
						newState.phases = append(newState.phases, pf)
					}
				}
			} else if recordFinals && len(trusted) == len(aliveNewList) {
				pf := phaseFinals{alive: slices.Clone(aliveNewList), final: make([]topTwo, len(aliveNewList)),
					trunc: truncNew, maxFl: maxFlNew, maxCnt: maxCntNew}
				for i, v := range aliveNewList {
					pf.final[i] = runner.state[v]
				}
				newState.phases = append(newState.phases, pf)
			} else if recordFinals {
				recordFinals = false
			}

			clearMask(trustMask, trusted)
			clearMask(rMask, rList)
			trusted = trusted[:0]
		}
		clearMask(srcMask, srcList)

		if len(joined) > 0 {
			if canPatch {
				patchClusters(joined, phase)
			} else {
				dec.buildClusters(g, joined, centersArr, phase, dec.Colors)
			}
			dec.Colors++
			for _, v := range joined {
				newState.joinPhase[v] = int32(phase)
				newState.center[v] = int32(centersArr[v])
				aliveNew[v] = false
			}
			aliveNewCount -= len(joined)
			k := 0
			for _, v := range aliveNewList {
				if aliveNew[v] {
					aliveNewList[k] = v
					k++
				}
			}
			aliveNewList = aliveNewList[:k]
		}
		for _, v := range oldJoinAt(phase) {
			aliveOld[v] = false
		}

		// Rebuild the divergence set: only vertices that just joined in
		// either run, or were already diverged, can be diverged now.
		cand := cur[:0]
		cand = append(cand, diffList...)
		cand = append(cand, oldJoinAt(phase)...)
		for _, v := range joined {
			cand = append(cand, int32(v))
		}
		for _, v := range diffList {
			diffMask[v] = false
		}
		diffList = diffList[:0]
		for _, v := range cand {
			if aliveOld[v] != aliveNew[v] && !diffMask[v] {
				diffMask[v] = true
				diffList = append(diffList, v)
			}
		}
		cur = cand[:0]

		// A changed edge stays relevant only while both endpoints survive
		// in at least one run; death is permanent, so pruning is too.
		k := 0
		for _, c := range chg {
			if unionAlive(c.U) && unionAlive(c.V) {
				chg[k] = c
				k++
			}
		}
		chg = chg[:k]

		dec.PhasesUsed++
		stats.Phases++
	}
	dec.AlivePerPhase = append(dec.AlivePerPhase, aliveNewCount)
	dec.Complete = aliveNewCount == 0
	if canPatch {
		for _, v := range aliveNewList {
			dec.ClusterOf[v] = -1
		}
	}
	if recordFinals {
		newState.phases = newState.phases[:dec.PhasesUsed]
	}
	newState.clusters = dec.Clusters
	newState.clusterOf = dec.ClusterOf

	stats.TotalClusters = len(dec.Clusters)
	for i := range dec.Clusters {
		for _, v := range dec.Clusters[i].Members {
			if regionEver[v] {
				stats.RepairedClusters++
				break
			}
		}
	}
	return dec, newState, stats, nil
}

// phaseRadius re-draws one vertex's exponential radius for a phase — the
// same pure function of (seed, phase, v) drawRadiiSparse evaluates.
func phaseRadius(seed uint64, phase int, v int32, beta float64) float64 {
	rng := randx.Derive(seed, uint64(phase), uint64(v))
	return randx.Exp(rng, beta)
}

// repairFallback abandons incrementality: full recompute with state
// capture, surfaced with the triggering reason in the stats.
func repairFallback(g graph.Interface, o Options, stats RepairStats, reason string) (*Decomposition, *RepairState, RepairStats, error) {
	stats.FellBack = true
	stats.FallbackReason = reason
	dec, st, err := RunRepairable(g, o)
	if err != nil {
		return nil, nil, stats, err
	}
	stats.TotalClusters = len(dec.Clusters)
	stats.RepairedClusters = len(dec.Clusters)
	return dec, st, stats, nil
}

// clearMask resets the listed entries of a scratch mask.
func clearMask(mask []bool, list []int32) {
	for _, v := range list {
		mask[v] = false
	}
}
