package core

import (
	"fmt"
	"sort"

	"netdecomp/internal/graph"
)

// Cluster is one cluster of a network decomposition: a connected component
// of one phase's block W_t.
type Cluster struct {
	// Members are the vertex ids of the cluster, sorted ascending.
	Members []int
	// Center is the broadcast center the members chose. Under Claim 3 of
	// the paper every member of a connected block component chooses the
	// same center; see Decomposition.CenterViolations for the rare
	// truncation-induced exceptions in RadiusCap mode.
	Center int
	// Phase is the 0-based phase that carved this cluster.
	Phase int
	// Color is the compressed color class: the index of the cluster's
	// phase among phases that produced at least one cluster. Clusters of
	// equal color are pairwise non-adjacent.
	Color int
}

// Decomposition is the output of a decomposition run, together with the
// cost metrics of the distributed execution that produced it.
type Decomposition struct {
	// N is the number of vertices of the input graph.
	N int
	// Opts echoes the effective options after defaulting.
	Opts Options
	// K is the effective radius parameter (derived from Lambda for
	// Theorem 3); the strong-diameter target is 2K−2.
	K int
	// Clusters lists the clusters in order of creation.
	Clusters []Cluster
	// ClusterOf maps each vertex to its index in Clusters, or -1 when the
	// run ended with the vertex unassigned (only possible when Complete is
	// false).
	ClusterOf []int
	// Colors is the number of color classes used (non-empty blocks).
	Colors int
	// PhasesUsed counts executed phases (including ones that carved
	// nothing); PhaseBudget is the theorem's allowance.
	PhasesUsed  int
	PhaseBudget int
	// Rounds is the number of synchronous communication rounds consumed.
	Rounds int
	// Messages / MsgWords / MaxMsgWords account CONGEST traffic: total
	// messages, total words, and the largest single message in words.
	Messages    int64
	MsgWords    int64
	MaxMsgWords int
	// Complete reports whether every vertex was clustered within the
	// budget. The theorems guarantee this with probability ≥ 1−3/c
	// (respectively 1−5/c).
	Complete bool
	// TruncationEvents counts radius draws with r_v ≥ k+1 among surviving
	// vertices — the events E_v of Lemma 1, which occur with total
	// probability ≤ 2/c.
	TruncationEvents int
	// CenterViolations counts clusters whose members chose more than one
	// center. Claim 3 proves this is zero in the absence of truncation
	// events; it is always zero in RadiusExact mode.
	CenterViolations int
	// AlivePerPhase records the number of surviving vertices entering each
	// executed phase, followed by the final survivor count. Used by the
	// survival-decay experiments (Claim 6).
	AlivePerPhase []int
	// Trace holds per-phase detail when Options.CaptureTrace was set.
	Trace *Trace
}

// Trace captures per-phase internals for validators and experiments.
type Trace struct {
	// Alive[t][v] reports whether v survived into phase t.
	Alive [][]bool
	// Radius[t][v] is the exponential draw r_v at phase t (0 for dead
	// vertices).
	Radius [][]float64
	// Center[t][v] is the center v chose when it joined W_t, or -1.
	Center [][]int
	// Beta[t] is the exponential rate used at phase t.
	Beta []float64
}

// ColorOf returns the color class of vertex v, or -1 if v is unassigned.
func (d *Decomposition) ColorOf(v int) int {
	ci := d.ClusterOf[v]
	if ci < 0 {
		return -1
	}
	return d.Clusters[ci].Color
}

// CenterOf returns the cluster center of vertex v, or -1 if unassigned.
func (d *Decomposition) CenterOf(v int) int {
	ci := d.ClusterOf[v]
	if ci < 0 {
		return -1
	}
	return d.Clusters[ci].Center
}

// Unassigned returns the vertices that were never clustered, sorted.
func (d *Decomposition) Unassigned() []int {
	var out []int
	for v, ci := range d.ClusterOf {
		if ci < 0 {
			out = append(out, v)
		}
	}
	return out
}

// MaxClusterSize returns the size of the largest cluster (0 if none).
func (d *Decomposition) MaxClusterSize() int {
	max := 0
	for i := range d.Clusters {
		if len(d.Clusters[i].Members) > max {
			max = len(d.Clusters[i].Members)
		}
	}
	return max
}

// SizeSummary describes the cluster-size distribution of a decomposition.
type SizeSummary struct {
	Clusters   int
	Singletons int
	Mean       float64
	Median     int
	Max        int
}

// Sizes returns the cluster-size distribution summary.
func (d *Decomposition) Sizes() SizeSummary {
	s := SizeSummary{Clusters: len(d.Clusters)}
	if s.Clusters == 0 {
		return s
	}
	sizes := make([]int, 0, s.Clusters)
	total := 0
	for i := range d.Clusters {
		sz := len(d.Clusters[i].Members)
		sizes = append(sizes, sz)
		total += sz
		if sz == 1 {
			s.Singletons++
		}
		if sz > s.Max {
			s.Max = sz
		}
	}
	sort.Ints(sizes)
	s.Median = sizes[len(sizes)/2]
	s.Mean = float64(total) / float64(s.Clusters)
	return s
}

// StrongDiameter computes the maximum strong diameter over all clusters
// against the given graph. It returns ok=false if any cluster is
// disconnected in its induced subgraph (infinite strong diameter), which
// cannot happen for decompositions produced by this package.
func (d *Decomposition) StrongDiameter(g graph.Interface) (int, bool) {
	max := 0
	for i := range d.Clusters {
		diam, ok := graph.SubsetStrongDiameter(g, d.Clusters[i].Members)
		if !ok {
			return 0, false
		}
		if diam > max {
			max = diam
		}
	}
	return max, true
}

// WeakDiameter computes the maximum weak diameter over all clusters.
func (d *Decomposition) WeakDiameter(g graph.Interface) (int, bool) {
	max := 0
	for i := range d.Clusters {
		diam, ok := graph.SubsetWeakDiameter(g, d.Clusters[i].Members)
		if !ok {
			return 0, false
		}
		if diam > max {
			max = diam
		}
	}
	return max, true
}

// Supergraph returns the cluster supergraph G(P): one vertex per cluster,
// an edge between two clusters when some original edge joins them.
// Unassigned vertices are ignored.
func (d *Decomposition) Supergraph(g graph.Interface) *graph.Graph {
	b := graph.NewBuilder(len(d.Clusters))
	for u := 0; u < g.N(); u++ {
		cu := d.ClusterOf[u]
		if cu < 0 {
			continue
		}
		for _, w := range g.Neighbors(u) {
			cw := d.ClusterOf[w]
			if cw >= 0 && cu < cw {
				b.AddEdge(cu, cw)
			}
		}
	}
	return b.Build()
}

// String summarizes the decomposition.
func (d *Decomposition) String() string {
	return fmt.Sprintf("decomposition{n=%d clusters=%d colors=%d phases=%d/%d rounds=%d complete=%v}",
		d.N, len(d.Clusters), d.Colors, d.PhasesUsed, d.PhaseBudget, d.Rounds, d.Complete)
}

// buildClusters turns one phase's block into clusters (connected components
// of the block's induced subgraph) and appends them to the decomposition,
// assigning the provided color index. centers[v] holds the center chosen by
// each joined vertex. It returns the number of clusters appended.
func (d *Decomposition) buildClusters(g graph.Interface, joined []int, centers []int, phase, color int) int {
	comps := graph.ComponentsOfSubset(g, joined)
	for _, members := range comps {
		center := centers[members[0]]
		uniform := true
		for _, v := range members[1:] {
			if centers[v] != center {
				uniform = false
			}
		}
		if !uniform {
			d.CenterViolations++
		}
		ci := len(d.Clusters)
		d.Clusters = append(d.Clusters, Cluster{
			Members: members,
			Center:  center,
			Phase:   phase,
			Color:   color,
		})
		for _, v := range members {
			d.ClusterOf[v] = ci
		}
	}
	return len(comps)
}

// sortedCopy returns a sorted copy of xs.
func sortedCopy(xs []int) []int {
	out := make([]int, len(xs))
	copy(out, xs)
	sort.Ints(out)
	return out
}
