// Package core implements the randomized distributed strong-diameter
// network decomposition algorithm of Elkin and Neiman (PODC 2016,
// arXiv:1602.05437), in all three parameter regimes of the paper:
//
//   - Theorem 1: a strong (2k−2, (cn)^{1/k}·ln(cn)) decomposition in
//     k·(cn)^{1/k}·ln(cn) rounds, success probability ≥ 1 − 3/c.
//   - Theorem 2: color count improved to 4k(cn)^{1/k} by a staged schedule
//     of the exponential rate β, in O(k²(cn)^{1/k}) rounds, probability
//     ≥ 1 − 5/c.
//   - Theorem 3: the high-radius regime with at most λ colors and strong
//     diameter 2(cn)^{1/λ}·ln(cn), obtained by inverting the tradeoff.
//
// The algorithm proceeds in phases. In phase t every surviving vertex v
// draws r_v ~ Exp(β) and broadcasts it ⌊r_v⌋ hops into the surviving graph
// G_t; every vertex y compares the shifted values m_i = r_{v_i} −
// d_{G_t}(y, v_i) that reached it and joins the phase's block W_t exactly
// when the largest exceeds the second largest by more than 1. The connected
// components of G_t(W_t) become clusters, all colored with the phase
// number; then W_t is removed and the next phase begins.
//
// Run executes the algorithm as a faithful round-by-round simulation (each
// round every vertex forwards only its top two shifted values — the
// CONGEST discipline of Section 2 of the paper). RunDistributed executes
// the identical node program on the internal/dist message-passing engine;
// both produce the same decomposition for the same Options.Seed.
package core

import (
	"errors"
	"fmt"
	"math"
)

// Variant selects which theorem's parameterization drives the phase
// schedule.
type Variant int

// Supported parameter regimes. Values start at 1 so the zero value is
// detectable and defaults to Theorem1.
const (
	// Theorem1 uses a single exponential rate β = ln(cn)/k for every phase
	// and a budget of ⌈(cn)^{1/k}·ln(cn)⌉ phases.
	Theorem1 Variant = iota + 1
	// Theorem2 uses the staged schedule of Section 2.1: stage i runs
	// ⌈2(cn/eⁱ)^{1/k}⌉ phases at rate βᵢ = ln(cn/eⁱ)/k, improving the
	// color bound to 4k(cn)^{1/k}.
	Theorem2
	// Theorem3 is the high-radius regime of Section 2.2: the caller fixes
	// the color budget λ and the radius parameter is derived as
	// k = ⌈(cn)^{1/λ}·ln(cn)⌉.
	Theorem3
)

// String returns the variant name.
func (v Variant) String() string {
	switch v {
	case Theorem1:
		return "theorem1"
	case Theorem2:
		return "theorem2"
	case Theorem3:
		return "theorem3"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// ParseVariant converts a CLI name into a Variant.
func ParseVariant(s string) (Variant, error) {
	switch s {
	case "theorem1", "t1":
		return Theorem1, nil
	case "theorem2", "t2":
		return Theorem2, nil
	case "theorem3", "t3":
		return Theorem3, nil
	}
	return 0, fmt.Errorf("core: unknown variant %q", s)
}

// RadiusMode controls what happens to the rare broadcasts whose sampled
// radius exceeds the per-phase round budget k (the events E_v of Lemma 1).
type RadiusMode int

const (
	// RadiusCap is the paper's algorithm: each phase runs exactly k rounds,
	// so a broadcast with ⌊r_v⌋ > k is truncated by the round budget. The
	// analysis conditions on no such event; Lemma 1 bounds their total
	// probability by 2/c.
	RadiusCap RadiusMode = iota + 1
	// RadiusExact runs each phase for max_v ⌊r_v⌋ rounds, so no broadcast
	// is ever truncated. The decomposition is then always center-uniform
	// (Claim 3 holds unconditionally) at the price of a data-dependent
	// round count and diameter bound.
	RadiusExact
)

// String returns the mode name.
func (m RadiusMode) String() string {
	switch m {
	case RadiusCap:
		return "cap"
	case RadiusExact:
		return "exact"
	default:
		return fmt.Sprintf("radiusmode(%d)", int(m))
	}
}

// Options configures a decomposition run. The zero value is not directly
// runnable; Run applies the documented defaults first and then validates.
type Options struct {
	// Variant selects the theorem; default Theorem1.
	Variant Variant
	// K is the radius parameter of Theorems 1 and 2 (strong diameter
	// ≤ 2K−2). Default ⌈ln n⌉, which yields the headline strong
	// (O(log n), O(log n)) decomposition. Ignored by Theorem3.
	K int
	// Lambda is the color budget of Theorem 3. Required (≥ 1) when
	// Variant == Theorem3, ignored otherwise.
	Lambda int
	// C is the confidence parameter c: the failure probability is at most
	// 3/c (Theorems 1 and 3) or 5/c (Theorem 2). Default 8. Must exceed 3
	// (respectively 5).
	C float64
	// Seed drives all randomness. Runs with equal options are identical.
	Seed uint64
	// RadiusMode selects truncation semantics; default RadiusCap (the
	// paper's algorithm).
	RadiusMode RadiusMode
	// PhaseBudget overrides the theorem's phase budget when positive.
	PhaseBudget int
	// ForceComplete keeps carving extra phases (at the final β) after the
	// theorem budget until every vertex is clustered. The color count may
	// then exceed the theorem bound; the probability of needing extra
	// phases is at most 1/c. Applications that need a total partition set
	// this.
	ForceComplete bool
	// CaptureTrace records per-phase alive sets, radii and centers in
	// Decomposition.Trace for validators and experiments. Memory cost is
	// O(n · phases).
	CaptureTrace bool
}

// errInvalidOptions tags all option validation failures.
var errInvalidOptions = errors.New("core: invalid options")

// schedule is the resolved per-phase plan derived from Options.
type schedule struct {
	k      int       // rounds per phase and radius cap
	betas  []float64 // exponential rate per phase; len == phase budget
	budget int       // len(betas)
}

// resolve applies defaults and computes the phase schedule for a graph on n
// vertices. It returns the effective options alongside the schedule.
func resolve(n int, o Options) (Options, schedule, error) {
	if o.Variant == 0 {
		o.Variant = Theorem1
	}
	if o.C == 0 {
		o.C = 8
	}
	if o.RadiusMode == 0 {
		o.RadiusMode = RadiusCap
	}
	minC := 3.0
	if o.Variant == Theorem2 {
		minC = 5.0
	}
	if o.C <= minC {
		return o, schedule{}, fmt.Errorf("%w: C=%v must exceed %v for %v", errInvalidOptions, o.C, minC, o.Variant)
	}
	if n == 0 {
		// Trivial: one empty schedule.
		return o, schedule{k: 1}, nil
	}
	cn := o.C * float64(n)
	lncn := math.Log(cn)

	switch o.Variant {
	case Theorem1, Theorem2:
		if o.K == 0 {
			o.K = int(math.Ceil(math.Log(float64(n))))
			if o.K < 1 {
				o.K = 1
			}
		}
		if o.K < 1 {
			return o, schedule{}, fmt.Errorf("%w: K=%d must be at least 1", errInvalidOptions, o.K)
		}
	case Theorem3:
		if o.Lambda < 1 {
			return o, schedule{}, fmt.Errorf("%w: Theorem3 requires Lambda >= 1, got %d", errInvalidOptions, o.Lambda)
		}
	default:
		return o, schedule{}, fmt.Errorf("%w: unknown variant %d", errInvalidOptions, int(o.Variant))
	}

	var s schedule
	switch o.Variant {
	case Theorem1:
		s.k = o.K
		beta := lncn / float64(o.K)
		s.budget = int(math.Ceil(math.Pow(cn, 1/float64(o.K)) * lncn))
		if s.budget < 1 {
			s.budget = 1
		}
		s.betas = make([]float64, s.budget)
		for i := range s.betas {
			s.betas[i] = beta
		}
	case Theorem2:
		s.k = o.K
		stages := int(math.Floor(math.Log(float64(n)))) + 1
		for i := 0; i < stages; i++ {
			cnei := cn / math.Exp(float64(i))
			if cnei <= 1 {
				break
			}
			beta := math.Log(cnei) / float64(o.K)
			phases := int(math.Ceil(2 * math.Pow(cnei, 1/float64(o.K))))
			for p := 0; p < phases; p++ {
				s.betas = append(s.betas, beta)
			}
		}
		s.budget = len(s.betas)
	case Theorem3:
		s.k = int(math.Ceil(math.Pow(cn, 1/float64(o.Lambda)) * lncn))
		if s.k < 1 {
			s.k = 1
		}
		beta := lncn / float64(s.k)
		s.budget = o.Lambda
		s.betas = make([]float64, s.budget)
		for i := range s.betas {
			s.betas[i] = beta
		}
	}
	if o.PhaseBudget > 0 {
		// Truncate or extend (with the final β) to the requested budget.
		last := s.betas[len(s.betas)-1]
		for len(s.betas) < o.PhaseBudget {
			s.betas = append(s.betas, last)
		}
		s.betas = s.betas[:o.PhaseBudget]
		s.budget = o.PhaseBudget
	}
	return o, s, nil
}

// TheoremDiameterBound returns the strong-diameter bound the selected
// theorem promises for these options on an n-vertex graph (2k−2 for
// Theorems 1 and 2, with Theorem 3's derived k).
func TheoremDiameterBound(n int, o Options) (int, error) {
	_, s, err := resolve(n, o)
	if err != nil {
		return 0, err
	}
	d := 2*s.k - 2
	if d < 0 {
		d = 0
	}
	return d, nil
}

// TheoremColorBound returns the color bound promised by the selected
// theorem for an n-vertex graph: (cn)^{1/k}·ln(cn) for Theorem 1,
// 4k(cn)^{1/k} for Theorem 2, λ for Theorem 3.
func TheoremColorBound(n int, o Options) (float64, error) {
	o2, _, err := resolve(n, o)
	if err != nil {
		return 0, err
	}
	cn := o2.C * float64(n)
	switch o2.Variant {
	case Theorem1:
		return math.Pow(cn, 1/float64(o2.K)) * math.Log(cn), nil
	case Theorem2:
		return 4 * float64(o2.K) * math.Pow(cn, 1/float64(o2.K)), nil
	default:
		return float64(o2.Lambda), nil
	}
}

// TheoremRoundBound returns the round bound promised by the selected
// theorem: k·(cn)^{1/k}·ln(cn) for Theorem 1, 4k²(cn)^{1/k} for Theorem 2
// (the constant behind the paper's O(k²(cn)^{1/k})), λ·k for Theorem 3.
func TheoremRoundBound(n int, o Options) (float64, error) {
	_, s, err := resolve(n, o)
	if err != nil {
		return 0, err
	}
	return float64(s.budget) * float64(s.k), nil
}
