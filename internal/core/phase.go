package core

import (
	"math"
	"sort"
	"sync"

	"netdecomp/internal/graph"
	"netdecomp/internal/obs"
	"netdecomp/internal/randx"
)

// none marks an empty top-two slot.
const none = -1

// topTwo is the per-vertex state of the shifted-value broadcast: the two
// largest values m = r_v − d(y, v) seen so far, with their centers.
// Ties (which have probability zero for continuous draws) break toward the
// smaller center id so that every execution order yields the same state.
type topTwo struct {
	c1, c2 int
	v1, v2 float64
}

// reset empties both slots.
func (t *topTwo) reset() {
	t.c1, t.c2 = none, none
	t.v1, t.v2 = 0, 0
}

// beats reports whether candidate (c, m) outranks incumbent (ci, vi).
func beats(m float64, c int, vi float64, ci int) bool {
	if ci == none {
		return true
	}
	return m > vi || (m == vi && c < ci)
}

// merge folds the value m for center c into the top-two state and reports
// whether the state changed. Values for a center already present can only
// be superseded by larger ones (shorter paths), but the merge is written to
// be correct under any arrival order. Because merges only ever improve the
// state and ties break by center id, the final state — and therefore the
// whole phase — is independent of delivery order, which is what lets the
// sharded parallel mode below stay bit-identical to the sequential loop.
func (t *topTwo) merge(c int, m float64) bool {
	switch c {
	case t.c1:
		if m > t.v1 {
			t.v1 = m
			return true
		}
		return false
	case t.c2:
		if m <= t.v2 {
			return false
		}
		t.v2 = m
		if beats(t.v2, t.c2, t.v1, t.c1) {
			t.c1, t.c2 = t.c2, t.c1
			t.v1, t.v2 = t.v2, t.v1
		}
		return true
	}
	if beats(m, c, t.v1, t.c1) {
		t.c2, t.v2 = t.c1, t.v1
		t.c1, t.v1 = c, m
		return true
	}
	if beats(m, c, t.v2, t.c2) {
		t.c2, t.v2 = c, m
		return true
	}
	return false
}

// second returns the paper's m₂: the second-largest value, or 0 when only
// one broadcast reached the vertex ("if s = 1 ... define m₂ = 0").
func (t *topTwo) second() float64 {
	if t.c2 == none {
		return 0
	}
	return t.v2
}

// joins applies the clustering rule: join the block iff m₁ − m₂ > 1.
func (t *topTwo) joins() bool {
	return t.c1 != none && t.v1-t.second() > 1
}

// phaseResult is the outcome of a single phase.
type phaseResult struct {
	joined      []int // vertices that joined the block, ascending
	centers     []int // centers[v] = chosen center for joined v (stale for dead vertices)
	rounds      int
	messages    int64
	words       int64
	maxMsgWords int
	truncations int // draws with r_v >= k+1 (events E_v)
}

// parallelThreshold is the frontier size below which the sharded parallel
// round falls back to the sequential loop: tiny frontiers don't amortize
// the goroutine barrier. The outputs are bit-identical either way, so the
// switch is free to be heuristic (a variable so tests can force the
// parallel path on small graphs).
var parallelThreshold = 2048

// shardScratch is one receiver-shard's private accumulator in the parallel
// round: traffic counters and the shard's slice of the next frontier.
type shardScratch struct {
	msgs, words int64
	maxw        int
	next        []int32
}

// sendMsg is a frontier vertex's frozen broadcast for one round: up to two
// (center, value ≥ 1) entries.
type sendMsg struct {
	k      int32
	c1, c2 int32
	v1, v2 float64
}

// phaseRunner holds reusable scratch for the per-phase simulation so that a
// multi-phase run performs O(1) allocations per phase.
//
// The simulation is frontier-sparse: instead of scanning all n vertices
// every round, it keeps an explicit worklist of the vertices whose top-two
// state changed in the previous round (exactly the vertices the algorithm
// obliges to send) and a per-phase compacted CSR view of the surviving
// graph, so one round costs O(frontier + messages delivered) — the
// activity the paper's analysis charges — rather than O(n).
type phaseRunner struct {
	g graph.Interface
	n int

	radius  []float64 // exponential draws of the current phase
	state   []topTwo
	snap    []topTwo // frozen sender states (valid on frontier entries only)
	dirty   []bool   // already on the next frontier
	centers []int

	frontier []int32 // vertices that must send this round, ascending
	next     []int32

	// Compacted CSR over the surviving graph, rebuilt once per phase: the
	// alive-neighbor filter is paid once instead of on every round's every
	// edge. rowOf[v] indexes rowStart for alive v (stale for dead ones,
	// which never appear on a frontier).
	rowOf    []int32
	rowStart []int64
	cAdj     []int32

	// Optional deterministic parallel mode: receiver-sharded rounds with
	// ascending-id merges, mirroring the dist scheduler's bit-identical
	// contract. Zero values mean sequential.
	parallel bool
	workers  int
	sendBuf  []sendMsg
	shards   []shardScratch

	// Telemetry histograms, set by RunWith when an Exec.Recorder is
	// attached: sender-frontier size of every executed broadcast round, and
	// per phase the number of rounds that carried messages vs. stayed
	// quiet. All nil (and never touched beyond a nil test) with telemetry
	// off.
	obsFrontier    *obs.Histogram
	obsPhaseActive *obs.Histogram
	obsPhaseQuiet  *obs.Histogram
}

// newPhaseRunner allocates scratch for graphs on n vertices.
func newPhaseRunner(g graph.Interface) *phaseRunner {
	n := g.N()
	return &phaseRunner{
		g:        g,
		n:        n,
		radius:   make([]float64, n),
		state:    make([]topTwo, n),
		snap:     make([]topTwo, n),
		dirty:    make([]bool, n),
		centers:  make([]int, n),
		rowOf:    make([]int32, n),
		rowStart: make([]int64, 0, n+1),
	}
}

// row returns alive vertex v's compacted (alive-filtered) adjacency row.
func (p *phaseRunner) row(v int) []int32 {
	ri := p.rowOf[v]
	return p.cAdj[p.rowStart[ri]:p.rowStart[ri+1]]
}

// drawRadii samples r_v ~ Exp(beta) for every alive vertex from its
// per-vertex, per-phase stream. Dead vertices get 0. The draws are a pure
// function of (seed, phase, v), which is what makes the centralized
// simulation, the exact BFS reference and the message-passing execution
// bit-identical.
func drawRadii(seed uint64, phase int, alive []bool, beta float64, into []float64) {
	for v := range into {
		if alive == nil || alive[v] {
			rng := randx.Derive(seed, uint64(phase), uint64(v))
			into[v] = randx.Exp(rng, beta)
		} else {
			into[v] = 0
		}
	}
}

// drawRadiiSparse is drawRadii restricted to the alive vertices: entries of
// dead vertices are left stale and must not be read (RunWith reconstructs
// zeroed trace copies itself).
func drawRadiiSparse(seed uint64, phase int, aliveList []int32, beta float64, into []float64) {
	for _, v := range aliveList {
		rng := randx.Derive(seed, uint64(phase), uint64(v))
		into[v] = randx.Exp(rng, beta)
	}
}

// run executes one phase on the surviving graph: the synchronous top-two
// broadcast for the given number of rounds, then the join rule. alive is
// not modified. radius must already contain the draws for this phase.
//
// It is a compatibility wrapper over runSparse that derives the ascending
// alive worklist from the mask; callers that maintain the worklist across
// phases (RunWith) use runSparse directly.
func (p *phaseRunner) run(alive []bool, rounds int, emit func(msgs, words int64)) phaseResult {
	list := make([]int32, 0, p.n)
	for v := 0; v < p.n; v++ {
		if alive[v] {
			list = append(list, int32(v))
		}
	}
	return p.runSparse(alive, list, rounds, emit)
}

// runSparse is the frontier-sparse phase simulation. aliveList must hold
// exactly the vertices with alive[v] == true, ascending.
//
// Each round, every vertex whose top-two list changed in the previous round
// sends its (up to two) entries with value ≥ 1 to every alive neighbor;
// receivers fold the entries in decremented by one (one more hop). This
// value gating implements exactly the ⌊r_v⌋-ball broadcast: a value
// arriving at distance d from its center is r_v − d ≥ 0 iff d ≤ ⌊r_v⌋.
// The send obligation is tracked as an explicit worklist (the frontier);
// everything a round does is proportional to that frontier and the
// messages it delivers, never to n.
//
// When emit is non-nil it is called once per budgeted broadcast round with
// that round's message/word traffic (zeros for rounds after the broadcast
// went quiet), and one final time for the phase's decision round carrying
// the departure notifications — mirroring the k+1 sub-round structure of
// the engine execution.
func (p *phaseRunner) runSparse(alive []bool, aliveList []int32, rounds int, emit func(msgs, words int64)) phaseResult {
	return p.runSparseSeeded(alive, aliveList, rounds, emit, nil)
}

// runSparseSeeded is runSparse with optional preset initial states: when
// preset returns ok for a listed vertex, that vertex starts the phase from
// the returned top-two state instead of the usual reset-plus-own-radius
// seeding, and broadcasts it from round 0. The repair path uses this to
// freeze a region's boundary at the prior run's final states — a converged
// state re-broadcast from round 0 reaches exactly the vertices its values'
// ⌊·⌋ hop budgets allow, which (absent truncation) is the same set the
// original timed arrivals reached.
func (p *phaseRunner) runSparseSeeded(alive []bool, aliveList []int32, rounds int, emit func(msgs, words int64), preset func(v int32) (topTwo, bool)) phaseResult {
	var res phaseResult
	res.rounds = rounds

	// Per-phase init: reset state, seed every alive vertex onto the round-0
	// frontier, and compact the surviving graph's adjacency (hoisting the
	// alive-neighbor filter out of the round loop).
	p.frontier = p.frontier[:0]
	p.rowStart = p.rowStart[:0]
	p.cAdj = p.cAdj[:0]
	for _, v32 := range aliveList {
		v := int(v32)
		if s, ok := presetState(preset, v32); ok {
			p.state[v] = s
		} else {
			p.state[v].reset()
			p.state[v].merge(v, p.radius[v])
		}
		p.dirty[v] = false
		p.centers[v] = none
		p.frontier = append(p.frontier, v32)
		p.rowOf[v] = int32(len(p.rowStart))
		p.rowStart = append(p.rowStart, int64(len(p.cAdj)))
		for _, w := range p.g.Neighbors(v) {
			if alive[w] {
				p.cAdj = append(p.cAdj, w)
			}
		}
	}
	p.rowStart = append(p.rowStart, int64(len(p.cAdj)))

	emitted := 0
	activeRounds := 0
	for round := 0; round < rounds; round++ {
		if p.obsFrontier != nil {
			p.obsFrontier.Observe(int64(len(p.frontier)))
		}
		// Freeze the sending states so a value moves one hop per round.
		for _, v := range p.frontier {
			p.snap[v] = p.state[v]
		}
		roundMsgs, roundWords := res.messages, res.words
		if p.parallel && p.workers > 1 && len(p.frontier) >= parallelThreshold {
			p.roundParallel(&res)
		} else {
			p.roundSequential(&res)
		}
		// The next frontier is kept in discovery order: top-two merges are
		// order-independent (see merge) and every per-round statistic is a
		// sum or max, so no observable output depends on the iteration
		// order and sorting it would only burn the cycles the worklist
		// just saved. The dirty flags keep it duplicate-free.
		p.frontier, p.next = p.next, p.frontier[:0]
		for _, w := range p.frontier {
			p.dirty[w] = false
		}
		if emit != nil {
			emit(res.messages-roundMsgs, res.words-roundWords)
			emitted++
		}
		if res.messages == roundMsgs {
			// All broadcasts have gone quiet; the remaining rounds would
			// carry no messages. They still count toward the round budget,
			// which res.rounds already reflects.
			break
		}
		activeRounds++
	}
	if emit != nil {
		for ; emitted < rounds; emitted++ {
			emit(0, 0)
		}
	}
	if p.obsPhaseActive != nil {
		p.obsPhaseActive.Observe(int64(activeRounds))
		p.obsPhaseQuiet.Observe(int64(rounds - activeRounds))
	}

	res.joined = res.joined[:0]
	for _, v32 := range aliveList {
		v := int(v32)
		if p.state[v].joins() {
			res.joined = append(res.joined, v)
			p.centers[v] = p.state[v].c1
		}
	}
	res.centers = p.centers

	// Departure notifications: each newly clustered vertex tells its alive
	// neighbors it is leaving G_t (one word each), which is how survivors
	// know the next phase's topology. The compacted row is exactly the
	// alive neighborhood, so its length is the fan-out.
	departMsgs, departWords := res.messages, res.words
	for _, v := range res.joined {
		deg := int64(len(p.row(v)))
		res.messages += deg
		res.words += deg
	}
	if res.maxMsgWords == 0 && len(res.joined) > 0 {
		res.maxMsgWords = 1
	}
	if emit != nil {
		// The decision round of the phase (sub-round k of the engine
		// execution): only departures travel.
		emit(res.messages-departMsgs, res.words-departWords)
	}
	return res
}

// loadSend reads vertex v's frozen broadcast for this round; ok is false
// when nothing meets the value ≥ 1 forwarding gate.
func (p *phaseRunner) loadSend(v int) (m sendMsg, ok bool) {
	s := &p.snap[v]
	if s.c1 != none && s.v1 >= 1 {
		m.c1, m.v1 = int32(s.c1), s.v1
		m.k = 1
	}
	if s.c2 != none && s.v2 >= 1 {
		if m.k == 1 {
			m.c2, m.v2 = int32(s.c2), s.v2
			m.k = 2
		} else {
			m.c1, m.v1 = int32(s.c2), s.v2
			m.k = 1
		}
	}
	return m, m.k > 0
}

// roundSequential delivers one round's frontier broadcasts in ascending
// sender order, collecting the next frontier in discovery order.
func (p *phaseRunner) roundSequential(res *phaseResult) {
	next := p.next
	for _, v32 := range p.frontier {
		v := int(v32)
		m, ok := p.loadSend(v)
		if !ok {
			continue
		}
		words := int(2 * m.k)
		for _, w := range p.row(v) {
			res.messages++
			res.words += int64(words)
			if words > res.maxMsgWords {
				res.maxMsgWords = words
			}
			changed := p.state[w].merge(int(m.c1), m.v1-1)
			if m.k == 2 && p.state[w].merge(int(m.c2), m.v2-1) {
				changed = true
			}
			if changed && !p.dirty[w] {
				p.dirty[w] = true
				next = append(next, w)
			}
		}
	}
	p.next = next
}

// roundParallel is the deterministic parallel round: receivers are
// partitioned into contiguous id ranges (one shard per worker), every
// worker walks the whole frontier in ascending sender order and delivers
// only into its own range (found by binary search in the sorted compacted
// rows). Shards own disjoint receiver state, so there are no write races;
// every shard's work is a pure function of the frozen snapshot, so the
// outcome is independent of scheduling and worker count — and, because
// top-two merges are order-independent, bit-identical to the sequential
// round.
func (p *phaseRunner) roundParallel(res *phaseResult) {
	workers := p.workers
	if p.shards == nil {
		p.shards = make([]shardScratch, workers)
	} else if len(p.shards) < workers {
		p.shards = append(p.shards, make([]shardScratch, workers-len(p.shards))...)
	}
	// Freeze each frontier vertex's outgoing message once, rather than
	// once per shard.
	p.sendBuf = p.sendBuf[:0]
	for _, v32 := range p.frontier {
		m, _ := p.loadSend(int(v32))
		p.sendBuf = append(p.sendBuf, m)
	}

	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			lo := int32(int64(s) * int64(p.n) / int64(workers))
			hi := int32(int64(s+1) * int64(p.n) / int64(workers))
			sh := &p.shards[s]
			sh.msgs, sh.words, sh.maxw = 0, 0, 0
			sh.next = sh.next[:0]
			for fi, v32 := range p.frontier {
				m := p.sendBuf[fi]
				if m.k == 0 {
					continue
				}
				row := p.row(int(v32))
				// Rows are sorted, so a two-compare span check skips the
				// binary searches for senders with no receiver in this
				// shard — the common case on low-degree graphs, where it
				// keeps the per-worker frontier walk near O(frontier).
				if len(row) == 0 || row[len(row)-1] < lo || row[0] >= hi {
					continue
				}
				a := sort.Search(len(row), func(i int) bool { return row[i] >= lo })
				b := sort.Search(len(row), func(i int) bool { return row[i] >= hi })
				if a == b {
					continue
				}
				words := int(2 * m.k)
				if words > sh.maxw {
					sh.maxw = words
				}
				sh.msgs += int64(b - a)
				sh.words += int64(b-a) * int64(words)
				for _, w := range row[a:b] {
					changed := p.state[w].merge(int(m.c1), m.v1-1)
					if m.k == 2 && p.state[w].merge(int(m.c2), m.v2-1) {
						changed = true
					}
					if changed && !p.dirty[w] {
						p.dirty[w] = true
						sh.next = append(sh.next, w)
					}
				}
			}
		}(s)
	}
	wg.Wait()

	next := p.next
	for s := 0; s < workers; s++ {
		sh := &p.shards[s]
		res.messages += sh.msgs
		res.words += sh.words
		if sh.maxw > res.maxMsgWords {
			res.maxMsgWords = sh.maxw
		}
		next = append(next, sh.next...)
	}
	p.next = next
}

// presetState consults an optional preset hook (nil-safe).
func presetState(preset func(v int32) (topTwo, bool), v int32) (topTwo, bool) {
	if preset == nil {
		return topTwo{}, false
	}
	return preset(v)
}

// countTruncations counts alive vertices whose draw meets or exceeds k+1 —
// the events E_v of Lemma 1.
func countTruncations(alive []bool, radius []float64, k int) int {
	t := 0
	for v, r := range radius {
		if alive[v] && r >= float64(k)+1 {
			t++
		}
	}
	return t
}

// countTruncationsSparse is countTruncations over the alive worklist.
func countTruncationsSparse(aliveList []int32, radius []float64, k int) int {
	t := 0
	for _, v := range aliveList {
		if radius[v] >= float64(k)+1 {
			t++
		}
	}
	return t
}

// maxFlooredRadius returns max_v ⌊r_v⌋ over alive vertices (at least 0),
// the exact per-phase round requirement of RadiusExact mode.
func maxFlooredRadius(alive []bool, radius []float64) int {
	max := 0
	for v, r := range radius {
		if alive[v] {
			if fl := int(math.Floor(r)); fl > max {
				max = fl
			}
		}
	}
	return max
}

// maxFlooredRadiusSparse is maxFlooredRadius over the alive worklist.
func maxFlooredRadiusSparse(aliveList []int32, radius []float64) int {
	max := 0
	for _, v := range aliveList {
		if fl := int(math.Floor(radius[v])); fl > max {
			max = fl
		}
	}
	return max
}
