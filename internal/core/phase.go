package core

import (
	"math"

	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

// none marks an empty top-two slot.
const none = -1

// topTwo is the per-vertex state of the shifted-value broadcast: the two
// largest values m = r_v − d(y, v) seen so far, with their centers.
// Ties (which have probability zero for continuous draws) break toward the
// smaller center id so that every execution order yields the same state.
type topTwo struct {
	c1, c2 int
	v1, v2 float64
}

// reset empties both slots.
func (t *topTwo) reset() {
	t.c1, t.c2 = none, none
	t.v1, t.v2 = 0, 0
}

// beats reports whether candidate (c, m) outranks incumbent (ci, vi).
func beats(m float64, c int, vi float64, ci int) bool {
	if ci == none {
		return true
	}
	return m > vi || (m == vi && c < ci)
}

// merge folds the value m for center c into the top-two state and reports
// whether the state changed. Values for a center already present can only
// be superseded by larger ones (shorter paths), but the merge is written to
// be correct under any arrival order.
func (t *topTwo) merge(c int, m float64) bool {
	switch c {
	case t.c1:
		if m > t.v1 {
			t.v1 = m
			return true
		}
		return false
	case t.c2:
		if m <= t.v2 {
			return false
		}
		t.v2 = m
		if beats(t.v2, t.c2, t.v1, t.c1) {
			t.c1, t.c2 = t.c2, t.c1
			t.v1, t.v2 = t.v2, t.v1
		}
		return true
	}
	if beats(m, c, t.v1, t.c1) {
		t.c2, t.v2 = t.c1, t.v1
		t.c1, t.v1 = c, m
		return true
	}
	if beats(m, c, t.v2, t.c2) {
		t.c2, t.v2 = c, m
		return true
	}
	return false
}

// second returns the paper's m₂: the second-largest value, or 0 when only
// one broadcast reached the vertex ("if s = 1 ... define m₂ = 0").
func (t *topTwo) second() float64 {
	if t.c2 == none {
		return 0
	}
	return t.v2
}

// joins applies the clustering rule: join the block iff m₁ − m₂ > 1.
func (t *topTwo) joins() bool {
	return t.c1 != none && t.v1-t.second() > 1
}

// phaseResult is the outcome of a single phase.
type phaseResult struct {
	joined      []int // vertices that joined the block, ascending
	centers     []int // centers[v] = chosen center for joined v, else -1
	rounds      int
	messages    int64
	words       int64
	maxMsgWords int
	truncations int // draws with r_v >= k+1 (events E_v)
}

// phaseRunner holds reusable scratch for the per-phase simulation so that a
// multi-phase run performs O(1) allocations per phase.
type phaseRunner struct {
	g graph.Interface
	n int

	radius  []float64 // exponential draws of the current phase
	state   []topTwo
	snap    []topTwo // frozen copy for synchronous-round semantics
	changed []bool   // state changed last round → must send this round
	dirty   []bool   // scratch: state changed this round
	centers []int
}

// newPhaseRunner allocates scratch for graphs on n vertices.
func newPhaseRunner(g graph.Interface) *phaseRunner {
	n := g.N()
	return &phaseRunner{
		g:       g,
		n:       n,
		radius:  make([]float64, n),
		state:   make([]topTwo, n),
		snap:    make([]topTwo, n),
		changed: make([]bool, n),
		dirty:   make([]bool, n),
		centers: make([]int, n),
	}
}

// drawRadii samples r_v ~ Exp(beta) for every alive vertex from its
// per-vertex, per-phase stream. Dead vertices get 0. The draws are a pure
// function of (seed, phase, v), which is what makes the centralized
// simulation, the exact BFS reference and the message-passing execution
// bit-identical.
func drawRadii(seed uint64, phase int, alive []bool, beta float64, into []float64) {
	for v := range into {
		if alive == nil || alive[v] {
			rng := randx.Derive(seed, uint64(phase), uint64(v))
			into[v] = randx.Exp(rng, beta)
		} else {
			into[v] = 0
		}
	}
}

// run executes one phase on the surviving graph: the synchronous top-two
// broadcast for the given number of rounds, then the join rule. alive is
// not modified. radius must already contain the draws for this phase.
//
// Each round, every vertex whose top-two list changed in the previous round
// sends its (up to two) entries with value ≥ 1 to every alive neighbor;
// receivers fold the entries in decremented by one (one more hop). This
// value gating implements exactly the ⌊r_v⌋-ball broadcast: a value
// arriving at distance d from its center is r_v − d ≥ 0 iff d ≤ ⌊r_v⌋.
//
// When emit is non-nil it is called once per budgeted broadcast round with
// that round's message/word traffic (zeros for rounds after the broadcast
// went quiet), and one final time for the phase's decision round carrying
// the departure notifications — mirroring the k+1 sub-round structure of
// the engine execution.
func (p *phaseRunner) run(alive []bool, rounds int, emit func(msgs, words int64)) phaseResult {
	var res phaseResult
	res.rounds = rounds

	for v := 0; v < p.n; v++ {
		p.state[v].reset()
		p.changed[v] = false
		p.dirty[v] = false
		p.centers[v] = none
		if alive[v] {
			p.state[v].merge(v, p.radius[v])
			p.changed[v] = true
		}
	}

	type entry struct {
		c int
		m float64
	}
	var buf [2]entry
	emitted := 0
	for round := 0; round < rounds; round++ {
		// Freeze the sending state so a value moves one hop per round.
		copy(p.snap, p.state)
		sentAny := false
		roundMsgs, roundWords := res.messages, res.words
		for v := 0; v < p.n; v++ {
			if !alive[v] || !p.changed[v] {
				continue
			}
			s := &p.snap[v]
			k := 0
			if s.c1 != none && s.v1 >= 1 {
				buf[k] = entry{s.c1, s.v1}
				k++
			}
			if s.c2 != none && s.v2 >= 1 {
				buf[k] = entry{s.c2, s.v2}
				k++
			}
			if k == 0 {
				continue
			}
			words := 2 * k
			for _, w := range p.g.Neighbors(v) {
				if !alive[w] {
					continue
				}
				res.messages++
				res.words += int64(words)
				if words > res.maxMsgWords {
					res.maxMsgWords = words
				}
				for i := 0; i < k; i++ {
					if p.state[w].merge(buf[i].c, buf[i].m-1) {
						p.dirty[w] = true
					}
				}
				sentAny = true
			}
		}
		p.changed, p.dirty = p.dirty, p.changed
		for v := range p.dirty {
			p.dirty[v] = false
		}
		if emit != nil {
			emit(res.messages-roundMsgs, res.words-roundWords)
			emitted++
		}
		if !sentAny {
			// All broadcasts have gone quiet; the remaining rounds would
			// carry no messages. They still count toward the round budget,
			// which res.rounds already reflects.
			break
		}
	}
	if emit != nil {
		for ; emitted < rounds; emitted++ {
			emit(0, 0)
		}
	}

	for v := 0; v < p.n; v++ {
		if !alive[v] {
			continue
		}
		if p.state[v].joins() {
			res.joined = append(res.joined, v)
			p.centers[v] = p.state[v].c1
		}
	}
	res.centers = p.centers

	// Departure notifications: each newly clustered vertex tells its alive
	// neighbors it is leaving G_t (one word each), which is how survivors
	// know the next phase's topology.
	departMsgs, departWords := res.messages, res.words
	for _, v := range res.joined {
		for _, w := range p.g.Neighbors(v) {
			if alive[w] {
				res.messages++
				res.words++
			}
		}
	}
	if res.maxMsgWords == 0 && len(res.joined) > 0 {
		res.maxMsgWords = 1
	}
	if emit != nil {
		// The decision round of the phase (sub-round k of the engine
		// execution): only departures travel.
		emit(res.messages-departMsgs, res.words-departWords)
	}
	return res
}

// countTruncations counts alive vertices whose draw meets or exceeds k+1 —
// the events E_v of Lemma 1.
func countTruncations(alive []bool, radius []float64, k int) int {
	t := 0
	for v, r := range radius {
		if alive[v] && r >= float64(k)+1 {
			t++
		}
	}
	return t
}

// maxFlooredRadius returns max_v ⌊r_v⌋ over alive vertices (at least 0),
// the exact per-phase round requirement of RadiusExact mode.
func maxFlooredRadius(alive []bool, radius []float64) int {
	max := 0
	for v, r := range radius {
		if alive[v] {
			if fl := int(math.Floor(r)); fl > max {
				max = fl
			}
		}
	}
	return max
}
