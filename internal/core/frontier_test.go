package core

import (
	"reflect"
	"testing"

	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

// denseRunPhase is the pre-frontier reference loop: the O(n)-per-round
// simulation that scans every vertex each round and filters alive
// neighbors inline. It is kept verbatim as the property-test oracle for
// the frontier-sparse runner — any divergence in joins, centers, traffic
// accounting or the emitted per-round stream is a bug in the worklist
// machinery.
func denseRunPhase(g graph.Interface, alive []bool, radius []float64, rounds int, emit func(msgs, words int64)) phaseResult {
	n := g.N()
	state := make([]topTwo, n)
	snap := make([]topTwo, n)
	changed := make([]bool, n)
	dirty := make([]bool, n)
	centers := make([]int, n)
	var res phaseResult
	res.rounds = rounds
	for v := 0; v < n; v++ {
		state[v].reset()
		centers[v] = none
		if alive[v] {
			state[v].merge(v, radius[v])
			changed[v] = true
		}
	}
	type entry struct {
		c int
		m float64
	}
	var buf [2]entry
	emitted := 0
	for round := 0; round < rounds; round++ {
		copy(snap, state)
		sentAny := false
		roundMsgs, roundWords := res.messages, res.words
		for v := 0; v < n; v++ {
			if !alive[v] || !changed[v] {
				continue
			}
			s := &snap[v]
			k := 0
			if s.c1 != none && s.v1 >= 1 {
				buf[k] = entry{s.c1, s.v1}
				k++
			}
			if s.c2 != none && s.v2 >= 1 {
				buf[k] = entry{s.c2, s.v2}
				k++
			}
			if k == 0 {
				continue
			}
			words := 2 * k
			for _, w := range g.Neighbors(v) {
				if !alive[w] {
					continue
				}
				res.messages++
				res.words += int64(words)
				if words > res.maxMsgWords {
					res.maxMsgWords = words
				}
				for i := 0; i < k; i++ {
					if state[w].merge(buf[i].c, buf[i].m-1) {
						dirty[w] = true
					}
				}
				sentAny = true
			}
		}
		changed, dirty = dirty, changed
		for v := range dirty {
			dirty[v] = false
		}
		if emit != nil {
			emit(res.messages-roundMsgs, res.words-roundWords)
			emitted++
		}
		if !sentAny {
			break
		}
	}
	if emit != nil {
		for ; emitted < rounds; emitted++ {
			emit(0, 0)
		}
	}
	for v := 0; v < n; v++ {
		if !alive[v] {
			continue
		}
		if state[v].joins() {
			res.joined = append(res.joined, v)
			centers[v] = state[v].c1
		}
	}
	res.centers = centers
	departMsgs, departWords := res.messages, res.words
	for _, v := range res.joined {
		for _, w := range g.Neighbors(v) {
			if alive[w] {
				res.messages++
				res.words++
			}
		}
	}
	if res.maxMsgWords == 0 && len(res.joined) > 0 {
		res.maxMsgWords = 1
	}
	if emit != nil {
		emit(res.messages-departMsgs, res.words-departWords)
	}
	return res
}

type emitRow struct{ msgs, words int64 }

// comparePhase asserts that a frontier-sparse result and its emit stream
// match the dense oracle's.
func comparePhase(t *testing.T, label string, got, want phaseResult, gotEmit, wantEmit []emitRow) {
	t.Helper()
	if got.rounds != want.rounds || got.messages != want.messages ||
		got.words != want.words || got.maxMsgWords != want.maxMsgWords {
		t.Fatalf("%s: accounting diverged: got rounds=%d msgs=%d words=%d maxw=%d, want rounds=%d msgs=%d words=%d maxw=%d",
			label, got.rounds, got.messages, got.words, got.maxMsgWords,
			want.rounds, want.messages, want.words, want.maxMsgWords)
	}
	if len(got.joined) != len(want.joined) {
		t.Fatalf("%s: joined %d vertices, want %d", label, len(got.joined), len(want.joined))
	}
	for i, v := range got.joined {
		if v != want.joined[i] {
			t.Fatalf("%s: joined[%d] = %d, want %d", label, i, v, want.joined[i])
		}
		if got.centers[v] != want.centers[v] {
			t.Fatalf("%s: center of %d = %d, want %d", label, v, got.centers[v], want.centers[v])
		}
	}
	if !reflect.DeepEqual(gotEmit, wantEmit) {
		t.Fatalf("%s: emit streams diverged:\n%v\nwant\n%v", label, gotEmit, wantEmit)
	}
}

// TestFrontierSparseMatchesDense is the property test of the worklist
// rebuild: on random graphs, under every kind of alive mask (full, sparse,
// mostly-dead) and across radius caps k, the frontier-sparse phase must
// reproduce the dense loop's joins, centers, traffic totals and per-round
// emit stream exactly.
func TestFrontierSparseMatchesDense(t *testing.T) {
	graphs := []*graph.Graph{
		gen.GnpConnected(randx.New(31), 300, 0.012),
		gen.Grid(17, 17),
		gen.RandomTree(randx.New(32), 220),
		gen.RingOfCliques(12, 6),
		gen.PowerLaw(randx.New(33), 256, 3),
		gen.Star(64),
	}
	aliveFracs := []float64{1.0, 0.7, 0.3, 0.05}
	for gi, g := range graphs {
		runner := newPhaseRunner(g)
		alive := make([]bool, g.N())
		for fi, frac := range aliveFracs {
			rng := randx.New(uint64(gi*97 + fi))
			for v := range alive {
				alive[v] = frac == 1.0 || rng.Float64() < frac
			}
			radius := make([]float64, g.N())
			for _, beta := range []float64{0.5, 1.3} {
				for _, k := range []int{1, 2, 4, 7} {
					drawRadii(uint64(gi*31+k), 0, alive, beta, radius)
					copy(runner.radius, radius)
					var gotEmit, wantEmit []emitRow
					got := runner.run(alive, k, func(m, w int64) { gotEmit = append(gotEmit, emitRow{m, w}) })
					want := denseRunPhase(g, alive, radius, k, func(m, w int64) { wantEmit = append(wantEmit, emitRow{m, w}) })
					comparePhase(t, "sparse", got, want, gotEmit, wantEmit)
				}
			}
		}
	}
}

// TestFrontierParallelBitIdentical pins the deterministic parallel mode:
// with the fallback threshold forced to zero, the receiver-sharded rounds
// must reproduce the dense oracle exactly for every worker count.
func TestFrontierParallelBitIdentical(t *testing.T) {
	defer func(old int) { parallelThreshold = old }(parallelThreshold)
	parallelThreshold = 1

	graphs := []*graph.Graph{
		gen.GnpConnected(randx.New(41), 250, 0.015),
		gen.PowerLaw(randx.New(42), 200, 3),
		gen.Grid(14, 14),
	}
	for gi, g := range graphs {
		alive := make([]bool, g.N())
		rng := randx.New(uint64(gi) + 7)
		for v := range alive {
			alive[v] = rng.Float64() < 0.85
		}
		radius := make([]float64, g.N())
		for _, k := range []int{2, 5} {
			drawRadii(uint64(gi*13+k), 0, alive, 0.9, radius)
			var wantEmit []emitRow
			want := denseRunPhase(g, alive, radius, k, func(m, w int64) { wantEmit = append(wantEmit, emitRow{m, w}) })
			for workers := 1; workers <= 8; workers++ {
				runner := newPhaseRunner(g)
				runner.parallel = true
				runner.workers = workers
				copy(runner.radius, radius)
				var gotEmit []emitRow
				got := runner.run(alive, k, func(m, w int64) { gotEmit = append(gotEmit, emitRow{m, w}) })
				comparePhase(t, "parallel", got, want, gotEmit, wantEmit)
			}
		}
	}
}

// TestRunWithParallelMatchesSequential asserts the end-to-end contract the
// facade documents for WithParallel: a full forced-complete run on the
// parallel simulation equals the sequential run field for field — clusters,
// metrics, trace and all — for every worker count.
func TestRunWithParallelMatchesSequential(t *testing.T) {
	g := gen.GnpConnected(randx.New(51), 3000, 0.003)
	o := Options{K: 5, C: 8, Seed: 13, ForceComplete: true, CaptureTrace: true}
	ref, err := Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	for workers := 1; workers <= 8; workers++ {
		got, err := RunWith(g, o, Exec{Parallel: true, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: parallel simulation diverged from sequential run", workers)
		}
	}
}
