package core

import (
	"math"
	"testing"

	"netdecomp/internal/gen"
	"netdecomp/internal/randx"
)

func TestObservation2CenterProximity(t *testing.T) {
	// Observation 2: if y chose v1 as center at phase t, then
	// d_{G_t}(v1, y) < r_{v1} − 1. Check it on every cluster member using
	// the captured trace (exact mode so no truncation interferes).
	g := gen.GnpConnected(randx.New(80), 180, 0.02)
	dec, err := Run(g, Options{K: 4, C: 8, Seed: 13, RadiusMode: RadiusExact,
		ForceComplete: true, CaptureTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range dec.Clusters {
		alive := dec.Trace.Alive[c.Phase]
		r := dec.Trace.Radius[c.Phase][c.Center]
		dist := g.BFSRestricted(c.Center, alive, -1)
		for _, y := range c.Members {
			if dist[y] < 0 {
				t.Fatalf("phase %d: member %d unreachable from center %d in G_t", c.Phase, y, c.Center)
			}
			if float64(dist[y]) >= r-1 {
				t.Fatalf("phase %d: d(center %d, %d) = %d violates Observation 2 (r = %v)",
					c.Phase, c.Center, y, dist[y], r)
			}
		}
	}
}

func TestTraceCentersMatchClusters(t *testing.T) {
	// The per-vertex centers recorded in the trace must agree with the
	// cluster assignment: every member's traced center at its join phase
	// is the cluster's center (exact mode — Claim 3 uniformity).
	g := gen.Grid(12, 12)
	dec, err := Run(g, Options{K: 3, C: 8, Seed: 7, RadiusMode: RadiusExact,
		ForceComplete: true, CaptureTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	for ci, c := range dec.Clusters {
		for _, y := range c.Members {
			if got := dec.Trace.Center[c.Phase][y]; got != c.Center {
				t.Fatalf("cluster %d: member %d traced center %d, cluster center %d", ci, y, got, c.Center)
			}
		}
	}
}

func TestTheorem2StageStructure(t *testing.T) {
	// Section 2.1: stage i lasts ⌈2(cn/eⁱ)^{1/k}⌉ phases at rate
	// βᵢ = ln(cn/eⁱ)/k. Reconstruct the stages from the resolved schedule
	// and check lengths and rates.
	n := 500
	k := 3
	c := 8.0
	_, s, err := resolve(n, Options{Variant: Theorem2, K: k, C: c})
	if err != nil {
		t.Fatal(err)
	}
	cn := c * float64(n)
	idx := 0
	for i := 0; ; i++ {
		cnei := cn / math.Exp(float64(i))
		if cnei <= 1 || idx >= len(s.betas) {
			break
		}
		wantBeta := math.Log(cnei) / float64(k)
		wantLen := int(math.Ceil(2 * math.Pow(cnei, 1/float64(k))))
		for j := 0; j < wantLen; j++ {
			if idx >= len(s.betas) {
				t.Fatalf("schedule ended mid-stage %d", i)
			}
			if math.Abs(s.betas[idx]-wantBeta) > 1e-12 {
				t.Fatalf("phase %d (stage %d): beta %v, want %v", idx, i, s.betas[idx], wantBeta)
			}
			idx++
		}
		if i > int(math.Floor(math.Log(float64(n)))) {
			break
		}
	}
	if idx != len(s.betas) {
		t.Fatalf("schedule has %d phases, stages account for %d", len(s.betas), idx)
	}
}
