package core

import (
	"context"
	"testing"

	"netdecomp/internal/dist"
	"netdecomp/internal/gen"
	"netdecomp/internal/randx"
)

func TestRunWithObserverMatchesTotals(t *testing.T) {
	// The streamed per-round stats must sum to the decomposition's message
	// and word totals, with monotone round indices.
	g := gen.GnpConnected(randx.New(4), 300, 0.02)
	var rounds []dist.RoundStats
	dec, err := RunWith(g, Options{K: 4, C: 8, Seed: 9, ForceComplete: true}, Exec{
		Observer: func(r dist.RoundStats) { rounds = append(rounds, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	var msgs, words int64
	for i, r := range rounds {
		if r.Round != i {
			t.Fatalf("callback %d carried round index %d", i, r.Round)
		}
		msgs += r.Messages
		words += r.Words
	}
	if msgs != dec.Messages || words != dec.MsgWords {
		t.Fatalf("observer sums %d/%d != totals %d/%d", msgs, words, dec.Messages, dec.MsgWords)
	}
	// k broadcast rounds plus one decision round per executed phase.
	if want := dec.PhasesUsed * (dec.K + 1); len(rounds) != want {
		t.Fatalf("observer saw %d rounds, want %d (phases=%d, k=%d)", len(rounds), want, dec.PhasesUsed, dec.K)
	}
}

func TestRunWithIdenticalToRun(t *testing.T) {
	// Exec plumbing must not perturb the decomposition.
	g := gen.Grid(15, 15)
	o := Options{K: 3, C: 8, Seed: 2, ForceComplete: true}
	a, err := Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWith(g, o, Exec{Observer: func(dist.RoundStats) {}})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() || a.Messages != b.Messages {
		t.Fatalf("RunWith diverged: %v vs %v", a, b)
	}
}

func TestRunWithCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := gen.Grid(10, 10)
	if _, err := RunWith(g, Options{K: 3, C: 8, Seed: 1}, Exec{Ctx: ctx}); err != context.Canceled {
		t.Fatalf("sequential run: err = %v, want context.Canceled", err)
	}
	if _, _, err := RunDistributedWithMetrics(ctx, g, Options{K: 3, C: 8, Seed: 1}, dist.Options{}); err != context.Canceled {
		t.Fatalf("engine run: err = %v, want context.Canceled", err)
	}
}

func TestRunDistributedObserver(t *testing.T) {
	g := gen.Grid(8, 8)
	var seen int
	var msgs int64
	_, metrics, err := RunDistributedWithMetrics(context.Background(), g, Options{K: 3, C: 8, Seed: 5}, dist.Options{
		Observer: func(r dist.RoundStats) { seen++; msgs += r.Messages },
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != metrics.Rounds {
		t.Fatalf("observer saw %d rounds, engine reports %d", seen, metrics.Rounds)
	}
	if msgs != metrics.Messages {
		t.Fatalf("observer message sum %d != engine total %d", msgs, metrics.Messages)
	}
}
