package core

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"netdecomp/internal/dist"
	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

func TestDisconnectedInputGraph(t *testing.T) {
	// Two components plus isolated vertices: phases run on all surviving
	// vertices at once; the decomposition must cover every component.
	b := graph.NewBuilder(60)
	for i := 0; i < 19; i++ {
		b.AddEdge(i, i+1) // path component 0..19
	}
	for i := 20; i < 39; i++ {
		b.AddEdge(i, i+1) // path component 20..39
	}
	// 40..59 isolated
	g := b.Build()
	dec, err := Run(g, Options{K: 3, C: 8, Seed: 5, ForceComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Complete {
		t.Fatal("disconnected graph not fully decomposed")
	}
	checkPartition(t, g, dec)
	// No cluster may span two components.
	comp, _ := g.Components()
	for ci, c := range dec.Clusters {
		for _, v := range c.Members[1:] {
			if comp[v] != comp[c.Members[0]] {
				t.Fatalf("cluster %d spans components", ci)
			}
		}
	}
}

func TestTruncationStressKeepsPartitionValid(t *testing.T) {
	// Force truncation events with a tiny k and adversarially small c
	// (just above the validity threshold): the diameter bound may break,
	// but the partition structure and proper coloring never do.
	g := gen.GnpConnected(randx.New(60), 200, 0.02)
	sawTruncation := false
	for seed := uint64(0); seed < 10; seed++ {
		dec, err := Run(g, Options{K: 2, C: 3.01, Seed: seed, ForceComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		if dec.TruncationEvents > 0 {
			sawTruncation = true
		}
		checkPartition(t, g, dec)
	}
	if !sawTruncation {
		t.Fatal("stress configuration never triggered a truncation event; test is vacuous")
	}
}

func TestStarAndCompleteGraphs(t *testing.T) {
	// Extreme degree distributions.
	for name, g := range map[string]*graph.Graph{
		"star":     gen.Star(64),
		"complete": gen.Complete(32),
	} {
		dec, err := Run(g, Options{K: 3, C: 8, Seed: 2, ForceComplete: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkPartition(t, g, dec)
		if dec.TruncationEvents == 0 {
			if diam, _ := dec.StrongDiameter(g); diam > 4 {
				t.Fatalf("%s: diameter %d > 2k-2", name, diam)
			}
		}
	}
}

func TestTheorem2DistributedParity(t *testing.T) {
	// The staged-β schedule must flow identically through the node
	// program (each node derives the same schedule locally).
	g := gen.GnpConnected(randx.New(61), 150, 0.02)
	o := Options{Variant: Theorem2, K: 3, C: 8, Seed: 9}
	want, err := Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunDistributed(g, o, dist.Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Clusters, got.Clusters) || want.Messages != got.Messages {
		t.Fatal("theorem2 distributed execution diverged from centralized")
	}
}

func TestTheorem3DistributedParity(t *testing.T) {
	g := gen.Grid(10, 10)
	o := Options{Variant: Theorem3, Lambda: 3, C: 8, Seed: 4}
	want, err := Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunDistributed(g, o, dist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Clusters, got.Clusters) {
		t.Fatal("theorem3 distributed execution diverged from centralized")
	}
}

func TestForceCompleteDistributedParity(t *testing.T) {
	g := gen.GnpConnected(randx.New(62), 120, 0.025)
	o := Options{K: 3, C: 8, Seed: 6, PhaseBudget: 3, ForceComplete: true}
	want, err := Run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunDistributed(g, o, dist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Complete || !got.Complete {
		t.Fatal("ForceComplete runs incomplete")
	}
	if !reflect.DeepEqual(want.Clusters, got.Clusters) {
		t.Fatal("ForceComplete distributed execution diverged")
	}
}

// TestQuickRandomOptionsAlwaysValid drives Run with arbitrary (valid)
// parameter combinations and checks the structural invariants on every
// output — the property-based safety net over the whole options space.
func TestQuickRandomOptionsAlwaysValid(t *testing.T) {
	g := gen.GnpConnected(randx.New(63), 120, 0.025)
	f := func(seed uint64, kRaw, cRaw, variantRaw, modeRaw uint8) bool {
		k := int(kRaw%6) + 1
		c := 6 + float64(cRaw%40)
		variant := Variant(int(variantRaw%3) + 1)
		o := Options{
			Variant: variant,
			K:       k,
			Lambda:  int(kRaw%3) + 1,
			C:       c,
			Seed:    seed,
		}
		if modeRaw%2 == 0 {
			o.RadiusMode = RadiusExact
		}
		dec, err := Run(g, o)
		if err != nil {
			return false
		}
		// Structural invariants (mirrors checkPartition without t).
		seen := make([]bool, g.N())
		for _, cl := range dec.Clusters {
			if len(cl.Members) == 0 {
				return false
			}
			for _, v := range cl.Members {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		for _, e := range g.Edges() {
			cu, cv := dec.ClusterOf[e[0]], dec.ClusterOf[e[1]]
			if cu >= 0 && cv >= 0 && cu != cv &&
				dec.Clusters[cu].Color == dec.Clusters[cv].Color {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseBudgetTruncatesAndExtends(t *testing.T) {
	n := 100
	// Truncate below the theorem budget.
	_, s, err := resolve(n, Options{K: 3, C: 8, PhaseBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.budget != 2 || len(s.betas) != 2 {
		t.Fatalf("budget truncation failed: %+v", s)
	}
	// Extend beyond it (padded with the final beta).
	_, s2, err := resolve(n, Options{K: 3, C: 8, PhaseBudget: 500})
	if err != nil {
		t.Fatal(err)
	}
	if s2.budget != 500 || s2.betas[499] != s2.betas[0] {
		t.Fatalf("budget extension failed: budget=%d", s2.budget)
	}
}

func TestRoundsAccountingTheorem1(t *testing.T) {
	// Rounds must be exactly k per executed phase in RadiusCap mode.
	g := gen.GnpConnected(randx.New(64), 150, 0.02)
	dec, err := Run(g, Options{K: 5, C: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Rounds != 5*dec.PhasesUsed {
		t.Fatalf("rounds %d != k*phases %d", dec.Rounds, 5*dec.PhasesUsed)
	}
}

func TestExactModeRoundsDataDependent(t *testing.T) {
	// In RadiusExact mode per-phase rounds equal max ⌊r⌋, so the total is
	// not k*phases in general but must remain positive for non-trivial
	// graphs.
	g := gen.GnpConnected(randx.New(65), 100, 0.03)
	dec, err := Run(g, Options{K: 5, C: 8, Seed: 3, RadiusMode: RadiusExact, ForceComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Complete {
		t.Fatal("incomplete")
	}
	if dec.Rounds < 0 {
		t.Fatal("negative rounds")
	}
}

func TestHeadlineShapeAcrossN(t *testing.T) {
	// Miniature T4: diameters and colors at k=⌈ln n⌉ stay within small
	// multiples of ln n across doubling n.
	for _, n := range []int{128, 256, 512} {
		g := gen.GnpConnected(randx.New(uint64(n)), n, 8/float64(n))
		k := int(math.Ceil(math.Log(float64(n))))
		dec, err := Run(g, Options{K: k, C: 8, Seed: 1, ForceComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		diam, ok := dec.StrongDiameter(g)
		if !ok {
			t.Fatal("disconnected cluster")
		}
		lnN := math.Log(float64(n))
		if float64(diam) > 4*lnN {
			t.Fatalf("n=%d: diameter %d >> ln n", n, diam)
		}
		if float64(dec.Colors) > 8*lnN {
			t.Fatalf("n=%d: colors %d >> ln n", n, dec.Colors)
		}
	}
}

func TestSizesSummary(t *testing.T) {
	g := gen.GnpConnected(randx.New(70), 200, 0.015)
	dec, err := Run(g, Options{K: 4, C: 8, Seed: 1, ForceComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	s := dec.Sizes()
	if s.Clusters != len(dec.Clusters) {
		t.Fatalf("Clusters = %d, want %d", s.Clusters, len(dec.Clusters))
	}
	total := 0.0
	for _, c := range dec.Clusters {
		total += float64(len(c.Members))
	}
	if mean := total / float64(s.Clusters); mean != s.Mean {
		t.Fatalf("Mean = %v, want %v", s.Mean, mean)
	}
	if s.Max < s.Median || s.Median < 1 {
		t.Fatalf("ordering wrong: %+v", s)
	}
	// Empty decomposition summary.
	empty, err := Run(graph.NewBuilder(0).Build(), Options{K: 2, C: 8})
	if err != nil {
		t.Fatal(err)
	}
	if es := empty.Sizes(); es.Clusters != 0 || es.Mean != 0 {
		t.Fatalf("empty summary wrong: %+v", es)
	}
}
