package core

import (
	"context"
	"fmt"
	"sort"

	"netdecomp/internal/dist"
	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

// Msg is the CONGEST wire format of the algorithm. A message is either a
// departure notification ("I joined a cluster, remove me from G_t", one
// word) or up to two (center, shifted value) entries — the top-two
// forwarding rule of Section 2 of the paper, two words per entry.
type Msg struct {
	// Depart marks a departure notification sent when the sender joins a
	// cluster at the end of a phase.
	Depart bool
	// NumEntries is 1 or 2 for broadcast messages.
	NumEntries int
	C1, C2     int32
	V1, V2     float64
}

// Words reports the CONGEST size of the message: every entry is a (center,
// value) pair of two words; departures are a single word. This is the
// "each message consists of O(1) words" guarantee of Theorems 1–3, checked
// by experiment T10.
func (m Msg) Words() int {
	if m.Depart {
		return 1
	}
	return 2 * m.NumEntries
}

var _ dist.WordCounter = Msg{}

// program is the per-node state machine of the decomposition algorithm,
// executed by the internal/dist engine. Every slice is indexed by node;
// Step(node, ...) touches only index node, so the parallel scheduler needs
// no extra synchronization.
type program struct {
	g         graph.Interface
	opts      Options
	sched     schedule
	maxPhases int
	phaseLen  int // k exchange rounds + 1 decision round

	state       []topTwo
	radius      []float64
	joinedPhase []int // -1 while unclustered
	center      []int

	// nbrAlive[nbrOff[v]+i] reports whether v's i-th neighbor is still in
	// the surviving graph: one flat arena aligned with the adjacency rows,
	// so Step(node, ...) writes only node's own window and the parallel
	// scheduler stays race-free.
	nbrOff   []int64
	nbrAlive []bool

	// outBuf[v] is v's reusable outbox, borrowed by the engine until
	// commit (see dist.Program) and recycled on v's next Step.
	outBuf [][]dist.Envelope[Msg]
}

func newProgram(g graph.Interface, o Options, s schedule) *program {
	n := g.N()
	maxPhases := s.budget
	if o.ForceComplete {
		maxPhases = 64*s.budget + 1024
	}
	p := &program{
		g:           g,
		opts:        o,
		sched:       s,
		maxPhases:   maxPhases,
		phaseLen:    s.k + 1,
		state:       make([]topTwo, n),
		radius:      make([]float64, n),
		joinedPhase: make([]int, n),
		center:      make([]int, n),
		nbrOff:      make([]int64, n+1),
		outBuf:      make([][]dist.Envelope[Msg], n),
	}
	for v := 0; v < n; v++ {
		p.joinedPhase[v] = -1
		p.center[v] = none
		p.nbrOff[v+1] = p.nbrOff[v] + int64(g.Degree(v))
	}
	p.nbrAlive = make([]bool, p.nbrOff[n])
	for i := range p.nbrAlive {
		p.nbrAlive[i] = true
	}
	// Carve every node's outbox out of one flat arena with capacity equal
	// to its degree (the exact fan-out of a broadcast or departure step),
	// so no Step ever allocates an outbox.
	arena := make([]dist.Envelope[Msg], p.nbrOff[n])
	for v := 0; v < n; v++ {
		lo, hi := p.nbrOff[v], p.nbrOff[v+1]
		p.outBuf[v] = arena[lo:lo:hi]
	}
	return p
}

// aliveRow returns node's window of the flat neighbor-liveness arena,
// parallel to g.Neighbors(node).
func (p *program) aliveRow(node int) []bool {
	return p.nbrAlive[p.nbrOff[node]:p.nbrOff[node+1]]
}

// markDeparted records that neighbor from left the surviving graph, by
// binary search in node's sorted adjacency row.
func (p *program) markDeparted(node, from int) {
	row := p.g.Neighbors(node)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(from) })
	if i < len(row) && row[i] == int32(from) {
		p.nbrAlive[p.nbrOff[node]+int64(i)] = false
	}
}

// NumNodes implements dist.Program.
func (p *program) NumNodes() int { return p.g.N() }

// beta returns the exponential rate of the given phase, extending the
// schedule with its final rate under ForceComplete.
func (p *program) beta(phase int) float64 {
	if phase < len(p.sched.betas) {
		return p.sched.betas[phase]
	}
	return p.sched.betas[len(p.sched.betas)-1]
}

// sendEntries builds the broadcast fan-out of the node's current top-two
// entries with value ≥ 1 to all live neighbors.
func (p *program) sendEntries(node int, out []dist.Envelope[Msg]) []dist.Envelope[Msg] {
	s := &p.state[node]
	var msg Msg
	if s.c1 != none && s.v1 >= 1 {
		msg.C1, msg.V1 = int32(s.c1), s.v1
		msg.NumEntries = 1
	}
	if s.c2 != none && s.v2 >= 1 {
		if msg.NumEntries == 1 {
			msg.C2, msg.V2 = int32(s.c2), s.v2
			msg.NumEntries = 2
		} else {
			msg.C1, msg.V1 = int32(s.c2), s.v2
			msg.NumEntries = 1
		}
	}
	if msg.NumEntries == 0 {
		return out
	}
	alive := p.aliveRow(node)
	for i, w := range p.g.Neighbors(node) {
		if !alive[i] {
			continue
		}
		out = append(out, dist.Envelope[Msg]{From: node, To: int(w), Payload: msg})
	}
	return out
}

// mergeInbox folds received broadcast entries into the node's state,
// reporting whether anything changed.
func (p *program) mergeInbox(node int, in []dist.Envelope[Msg]) bool {
	changed := false
	for _, env := range in {
		m := env.Payload
		if m.Depart {
			continue
		}
		if m.NumEntries >= 1 && p.state[node].merge(int(m.C1), m.V1-1) {
			changed = true
		}
		if m.NumEntries >= 2 && p.state[node].merge(int(m.C2), m.V2-1) {
			changed = true
		}
	}
	return changed
}

// Step implements dist.Program: the synchronized phase schedule described
// in the package comment. Round r belongs to phase r/(k+1); within a
// phase, sub-round 0 draws the radius and starts the broadcast, sub-rounds
// 1..k-1 forward top-two improvements, and sub-round k applies the join
// rule and emits departures.
func (p *program) Step(node, round int, in []dist.Envelope[Msg]) ([]dist.Envelope[Msg], bool) {
	phase := round / p.phaseLen
	sub := round % p.phaseLen

	if sub == 0 {
		// Departures from the previous phase's joiners arrive now.
		for _, env := range in {
			if env.Payload.Depart {
				p.markDeparted(node, env.From)
			}
		}
		if phase >= p.maxPhases {
			// Budget exhausted; give up unclustered.
			return nil, true
		}
		rng := randx.Derive(p.opts.Seed, uint64(phase), uint64(node))
		p.radius[node] = randx.Exp(rng, p.beta(phase))
		p.state[node].reset()
		p.state[node].merge(node, p.radius[node])
		out := p.sendEntries(node, p.outBuf[node][:0])
		p.outBuf[node] = out
		return out, false
	}

	changed := p.mergeInbox(node, in)

	if sub < p.sched.k {
		if !changed {
			return nil, false
		}
		out := p.sendEntries(node, p.outBuf[node][:0])
		p.outBuf[node] = out
		return out, false
	}

	// Decision sub-round.
	if p.state[node].joins() {
		p.joinedPhase[node] = phase
		p.center[node] = p.state[node].c1
		out := p.outBuf[node][:0]
		alive := p.aliveRow(node)
		for i, w := range p.g.Neighbors(node) {
			if !alive[i] {
				continue
			}
			out = append(out, dist.Envelope[Msg]{From: node, To: int(w), Payload: Msg{Depart: true}})
		}
		p.outBuf[node] = out
		return out, true
	}
	return nil, false
}

// RunDistributed executes the decomposition as a true message-passing
// program on the internal/dist engine (sequential or goroutine-parallel
// per engineOpts) and assembles the resulting Decomposition.
//
// For equal Options (including Seed) it produces exactly the same clusters
// as Run; the integration tests assert this. RadiusExact is not supported
// here because a node cannot locally know the global maximum radius; use
// Run for that mode.
func RunDistributed(g graph.Interface, o Options, engineOpts dist.Options) (*Decomposition, error) {
	dec, _, err := RunDistributedWithMetrics(context.Background(), g, o, engineOpts)
	return dec, err
}

// RunDistributedWithMetrics is RunDistributed exposing the raw engine
// metrics as well (including per-round statistics when
// engineOpts.RecordRounds is set). Cancellation via ctx stops the engine
// at the next round barrier and returns ctx.Err(); per-round observation
// is available through engineOpts.Observer.
func RunDistributedWithMetrics(ctx context.Context, g graph.Interface, o Options, engineOpts dist.Options) (*Decomposition, dist.Metrics, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.N()
	o2, sched, err := resolve(n, o)
	if err != nil {
		return nil, dist.Metrics{}, err
	}
	if o2.RadiusMode == RadiusExact {
		return nil, dist.Metrics{}, fmt.Errorf("core: RadiusExact requires global knowledge and is not implementable as a node program; use Run")
	}
	if o2.CaptureTrace {
		return nil, dist.Metrics{}, fmt.Errorf("core: CaptureTrace is only supported by Run")
	}
	p := newProgram(g, o2, sched)
	if engineOpts.MaxRounds == 0 {
		engineOpts.MaxRounds = (p.maxPhases+1)*p.phaseLen + 4
	}
	metrics, err := dist.Run[Msg](ctx, p, engineOpts)
	if err != nil {
		if ctx.Err() != nil {
			return nil, metrics, ctx.Err()
		}
		return nil, metrics, fmt.Errorf("core: distributed execution failed: %w", err)
	}

	dec := &Decomposition{
		N:           n,
		Opts:        o2,
		K:           sched.k,
		ClusterOf:   make([]int, n),
		PhaseBudget: sched.budget,
		Rounds:      metrics.Rounds,
		Messages:    metrics.Messages,
		MsgWords:    metrics.Words,
		MaxMsgWords: metrics.MaxMessageWords,
	}
	for v := range dec.ClusterOf {
		dec.ClusterOf[v] = -1
	}

	// Group joiners by phase and rebuild clusters in phase order. A
	// complete run executes phases up to the last join; an incomplete one
	// ran the whole budget with the survivors stepping every phase.
	lastPhase := -1
	unjoined := 0
	for v := 0; v < n; v++ {
		if p.joinedPhase[v] > lastPhase {
			lastPhase = p.joinedPhase[v]
		}
		if p.joinedPhase[v] < 0 {
			unjoined++
		}
	}
	phasesExecuted := lastPhase + 1
	if unjoined > 0 && n > 0 {
		phasesExecuted = p.maxPhases
	}
	// Bucket joiners by phase with one counting pass (ascending ids within
	// each bucket, subslices of one backing array) instead of rescanning
	// all n vertices per phase.
	offsets := make([]int, phasesExecuted+1)
	for v := 0; v < n; v++ {
		if ph := p.joinedPhase[v]; ph >= 0 {
			offsets[ph+1]++
		}
	}
	for ph := 0; ph < phasesExecuted; ph++ {
		offsets[ph+1] += offsets[ph]
	}
	joinedAll := make([]int, n-unjoined)
	cursor := make([]int, phasesExecuted)
	copy(cursor, offsets[:phasesExecuted])
	for v := 0; v < n; v++ {
		if ph := p.joinedPhase[v]; ph >= 0 {
			joinedAll[cursor[ph]] = v
			cursor[ph]++
		}
	}
	alive := n
	for phase := 0; phase < phasesExecuted; phase++ {
		joined := joinedAll[offsets[phase]:offsets[phase+1]]
		dec.AlivePerPhase = append(dec.AlivePerPhase, alive)
		if len(joined) > 0 {
			dec.buildClusters(g, joined, p.center, phase, dec.Colors)
			dec.Colors++
			alive -= len(joined)
		}
	}
	dec.AlivePerPhase = append(dec.AlivePerPhase, alive)
	dec.Complete = unjoined == 0
	dec.PhasesUsed = phasesExecuted
	return dec, metrics, nil
}
