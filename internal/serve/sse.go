package serve

// Server-sent events: the streaming half of the decompose API. A
// /v1/decompose/stream request rides the same session path as the
// synchronous endpoint, but attaches a per-job round observer through the
// session's fan-out, so the client watches the execution round-by-round:
//
//	event: round
//	data: {"round":3,"messages":128,"words":256,"active":811}
//
//	event: result
//	data: {...the DecomposeResponse document...}
//
// Cache hits emit no rounds (nothing executed) — just the result event.
// Deduplicated submissions see only the rounds emitted after they
// attached, exactly the session's observer contract.
//
// The observer fires on the execution goroutine inside the engine loop, so
// it must never block on a slow client: rounds pass through a bounded
// channel and are counted-and-dropped when the client cannot keep up
// (serve.sse.dropped_rounds). The result event is always delivered.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"netdecomp/internal/dist"
	"netdecomp/internal/graph"
	"netdecomp/internal/resilience"
)

// sseEventBuffer is the per-client event backlog shared by the decompose
// (one event per round) and pipeline (two events per stage) streams. A
// few thousand slots cover every workload in the repo; past that the
// client is too slow and events drop. A variable so overflow tests can
// shrink it.
var sseEventBuffer = 4096

// roundEvent is the SSE round payload (stable lower-case field order).
type roundEvent struct {
	Round    int   `json:"round"`
	Messages int64 `json:"messages"`
	Words    int64 `json:"words"`
	Active   int   `json:"active"`
}

// startSSE commits the SSE response: headers, 200, first flush. After
// this point errors travel as error events, not status codes.
func startSSE(w http.ResponseWriter, flusher http.Flusher) {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
}

// handleDecomposeStream streams one decomposition over SSE. A warm hit
// answers with just the result event and holds no admission slot; cold
// work rides admission, shedding, and the request deadline like the
// synchronous endpoint. A client that disconnects mid-stream releases
// its slot (and its session waiter) immediately — the execution itself
// keeps running for the cache and any deduplicated co-waiters.
func (s *Server) handleDecomposeStream(w http.ResponseWriter, r *http.Request) {
	var req DecomposeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadBytes)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	g, pl, err := s.resolve(req)
	if err != nil {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.fail(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	start := time.Now()
	if p, hit := s.sess.Peek(pl, g); hit {
		s.cSSEClients.Inc()
		startSSE(w, flusher)
		writeSSE(w, "result", DecomposeResponse{
			Graph:     keyString(graph.Fingerprint(g)),
			Plan:      keyString(pl.PlanKey()),
			Seed:      pl.Seed(),
			Algorithm: pl.Name(),
			CacheHit:  true,
			LatencyNs: time.Since(start).Nanoseconds(),
			Partition: p,
		})
		flusher.Flush()
		return
	}
	if s.shedColdWork(w, resilience.ClassDecompose) {
		return
	}
	release, ok := s.admit(w, r, resilience.ClassDecompose)
	if !ok {
		return
	}
	defer release()
	s.cSSEClients.Inc()
	s.gSSEActive.Add(1)
	defer s.gSSEActive.Add(-1)
	startSSE(w, flusher)

	// The observer runs on the execution goroutine: non-blocking hand-off
	// into a bounded channel, drop-and-count on overflow. The channel is
	// never closed — a deduplicated execution may keep emitting after this
	// waiter resolved, and a send on a closed channel would panic into the
	// (panic-isolated, but still counted) observer quarantine.
	rounds := make(chan dist.RoundStats, sseEventBuffer)
	var dropped atomic.Int64
	observer := func(rs dist.RoundStats) {
		select {
		case rounds <- rs:
		default:
			dropped.Add(1)
			s.cSSEDropped.Inc()
		}
	}

	ctx, cancel := s.gov.Deadline().Context(r.Context(), requestDeadline(r, req.DeadlineMs))
	defer cancel()
	j := s.sess.SubmitObserved(ctx, pl, g, observer)
	done := j.Done()
	for {
		select {
		case rs := <-rounds:
			s.writeSSERound(w, flusher, rs)
			continue
		case <-done:
		case <-ctx.Done():
		}
		break
	}
	// Drain what the execution emitted before completion.
	for {
		select {
		case rs := <-rounds:
			s.writeSSERound(w, flusher, rs)
			continue
		default:
		}
		break
	}
	p, err := j.Wait()
	if err != nil {
		s.countExecErr(r, err)
		writeSSE(w, "error", errorResponse{Error: err.Error()})
		flusher.Flush()
		return
	}
	lat := time.Since(start)
	s.hDecompose.Observe(lat.Nanoseconds())
	writeSSE(w, "result", DecomposeResponse{
		Graph:         keyString(j.Key().Graph),
		Plan:          keyString(j.Key().Plan),
		Seed:          j.Key().Seed,
		Algorithm:     pl.Name(),
		CacheHit:      j.CacheHit(),
		LatencyNs:     lat.Nanoseconds(),
		DroppedRounds: dropped.Load(),
		Partition:     p,
	})
	flusher.Flush()
}

// writeSSERound emits one round event.
func (s *Server) writeSSERound(w http.ResponseWriter, flusher http.Flusher, rs dist.RoundStats) {
	writeSSE(w, "round", roundEvent{Round: rs.Round, Messages: rs.Messages, Words: rs.Words, Active: rs.Active})
	flusher.Flush()
}

// writeSSE frames one event: name line, single data line, blank separator.
func writeSSE(w http.ResponseWriter, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data, _ = json.Marshal(errorResponse{Error: err.Error()})
		event = "error"
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}
