package serve

// The load-generator harness: N concurrent clients replaying a Zipf
// repeat/fresh request mix against a running daemon, the workload shape of
// the ROADMAP's serving story (most traffic re-requests a small hot set,
// a tail asks for fresh work). It drives the real HTTP surface end to end
// — JSON decode included — and reports hit/miss counts plus latency
// quantiles, separating the warm-hit path (the numbers BENCH_serve.json
// records and CI gates) from cold executions.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LoadOptions shapes one load run.
type LoadOptions struct {
	// Clients is the number of concurrent clients (default 8).
	Clients int
	// Requests is the total request count across all clients (default 256).
	Requests int
	// Graph and Plan address the registered workload (fingerprint / plan
	// key hex, as returned by the registration endpoints).
	Graph string
	Plan  string
	// Seeds is the hot-set size: repeat requests draw their seed from
	// [0, Seeds) under a Zipf law, so low seeds dominate (default 16).
	Seeds int
	// ZipfS is the Zipf skew parameter (> 1; default 1.3; larger = hotter
	// head).
	ZipfS float64
	// FreshFraction is the probability a request asks for a brand-new seed
	// instead of the hot set — a guaranteed cold miss (default 0.05).
	FreshFraction float64
	// Seed seeds the generator's own randomness; equal seeds replay the
	// same request sequence per client.
	Seed uint64
	// ChurnFraction is the probability a request posts a mutation batch to
	// the current graph version instead of decomposing (0 = static graph).
	// Mutators serialize on a shared key: each batch addresses the newest
	// fingerprint and swaps it for the returned one, so decomposes chase a
	// moving graph exactly the way the versioned-key API intends — every
	// swap retires the hot set until results for the new version land.
	ChurnFraction float64
	// ChurnBatch is the mutation count per churn batch (default 4).
	ChurnBatch int
	// ChurnN bounds the random endpoints of churn mutations; it should be
	// the addressed graph's vertex count (default 1024, the default
	// workload's).
	ChurnN int
}

// withDefaults fills the zero values.
func (o LoadOptions) withDefaults() LoadOptions {
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Requests <= 0 {
		o.Requests = 256
	}
	if o.Seeds <= 0 {
		o.Seeds = 16
	}
	if o.ZipfS <= 1 {
		o.ZipfS = 1.3
	}
	if o.FreshFraction < 0 || o.FreshFraction >= 1 {
		o.FreshFraction = 0.05
	}
	if o.ChurnBatch <= 0 {
		o.ChurnBatch = 4
	}
	if o.ChurnN <= 0 {
		o.ChurnN = 1024
	}
	return o
}

// LoadReport is the outcome of one load run. All latencies are
// nanoseconds of full client-observed round trips (HTTP + JSON decode).
type LoadReport struct {
	Requests int `json:"requests"`
	Clients  int `json:"clients"`
	// Hits/Misses classify responses by the server's cacheHit flag.
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
	Errors int `json:"errors"`
	// ElapsedNs is the wall-clock span of the whole run; Throughput is
	// requests per second over it.
	ElapsedNs  int64   `json:"elapsedNs"`
	Throughput float64 `json:"throughput"`
	// Mutations counts churn batches applied (ChurnFraction > 0 only);
	// MutateP50Ns/MutateP99Ns quantile their round trips. Stale counts
	// decomposes that 404'd because a concurrent mutation retired the key
	// they addressed — the versioned-key API's intended fail-loud outcome,
	// a client re-resolves and retries rather than reading stale content.
	Stale       int   `json:"stale,omitempty"`
	Mutations   int   `json:"mutations,omitempty"`
	MutateP50Ns int64 `json:"mutateP50Ns,omitempty"`
	MutateP99Ns int64 `json:"mutateP99Ns,omitempty"`
	// P50Ns/P99Ns quantile the full mix; WarmP50Ns/WarmP99Ns quantile only
	// the cache-hit responses — the serving-path numbers CI gates.
	P50Ns     int64 `json:"p50Ns"`
	P99Ns     int64 `json:"p99Ns"`
	WarmP50Ns int64 `json:"warmP50Ns"`
	WarmP99Ns int64 `json:"warmP99Ns"`
}

// String renders the report the way cmd/netdecompd -loadgen prints it.
func (r *LoadReport) String() string {
	s := fmt.Sprintf(
		"loadgen  : %d requests / %d clients in %.2fs (%.0f req/s)\n"+
			"mix      : %d hits, %d misses, %d errors\n"+
			"latency  : p50=%s p99=%s (all) / p50=%s p99=%s (warm hits)",
		r.Requests, r.Clients, float64(r.ElapsedNs)/1e9, r.Throughput,
		r.Hits, r.Misses, r.Errors,
		time.Duration(r.P50Ns), time.Duration(r.P99Ns),
		time.Duration(r.WarmP50Ns), time.Duration(r.WarmP99Ns))
	if r.Mutations > 0 {
		s += fmt.Sprintf("\nchurn    : %d mutation batches (p50=%s p99=%s), %d stale-key rejections",
			r.Mutations, time.Duration(r.MutateP50Ns), time.Duration(r.MutateP99Ns), r.Stale)
	}
	return s
}

// RegisterDefaultWorkload registers the canonical loadgen workload — a
// gnp(n=1024, seed=1) graph and a forced-complete elkin-neiman plan — on
// the daemon at baseURL and returns their keys. Registration is
// idempotent, so re-running the load generator reuses the same entries.
func RegisterDefaultWorkload(ctx context.Context, baseURL string) (graphKey, planKey string, err error) {
	var gi GraphInfo
	if err := postWorkloadJSON(ctx, baseURL+"/v1/graphs", GraphSpec{Family: "gnp", N: 1024, Seed: 1}, &gi); err != nil {
		return "", "", err
	}
	var pi PlanInfo
	if err := postWorkloadJSON(ctx, baseURL+"/v1/plans", PlanSpec{Algorithm: "elkin-neiman", ForceComplete: true}, &pi); err != nil {
		return "", "", err
	}
	return gi.Fingerprint, pi.Plan, nil
}

// postWorkloadJSON is the minimal JSON round trip registration needs.
func postWorkloadJSON(ctx context.Context, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, msg)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// loadSample is one observed request.
type loadSample struct {
	ns    int64
	hit   bool
	err   bool
	mut   bool // a churn mutation batch, not a decompose
	stale bool // decompose 404'd on a key a concurrent mutation retired
}

// churnKey is the mutators' shared view of the newest graph version.
// The lock spans the whole mutate round trip: the versioned-key API
// retires a fingerprint on every effective batch, so concurrent mutators
// would race to address a key the other just retired.
type churnKey struct {
	mu  sync.Mutex
	key string
}

// RunLoad replays the Zipf mix against the daemon at baseURL (e.g.
// "http://127.0.0.1:8080"). The addressed graph and plan must already be
// registered; see LoadOptions.
func RunLoad(ctx context.Context, baseURL string, opt LoadOptions) (*LoadReport, error) {
	opt = opt.withDefaults()
	if opt.Graph == "" || opt.Plan == "" {
		return nil, fmt.Errorf("serve: loadgen needs Graph and Plan keys")
	}
	url := baseURL + "/v1/decompose"
	var (
		next    atomic.Int64 // request ticket dispenser
		freshAt atomic.Uint64
		wg      sync.WaitGroup
	)
	freshAt.Store(1 << 32) // fresh seeds live far above any hot-set seed
	cur := &churnKey{key: opt.Graph}
	samples := make([][]loadSample, opt.Clients)
	client := &http.Client{}
	start := time.Now()
	for c := 0; c < opt.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(opt.Seed, uint64(c)+1))
			zipf := rand.NewZipf(rng, opt.ZipfS, 1, uint64(opt.Seeds-1))
			for int(next.Add(1)) <= opt.Requests {
				if opt.ChurnFraction > 0 && rng.Float64() < opt.ChurnFraction {
					samples[c] = append(samples[c], doMutateRequest(ctx, client, baseURL, cur, opt, rng))
					if ctx.Err() != nil {
						return
					}
					continue
				}
				seed := zipf.Uint64()
				if rng.Float64() < opt.FreshFraction {
					seed = freshAt.Add(1)
				}
				cur.mu.Lock()
				gk := cur.key
				cur.mu.Unlock()
				samples[c] = append(samples[c], doLoadRequest(ctx, client, url, opt, gk, seed))
				if ctx.Err() != nil {
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rep := &LoadReport{Clients: opt.Clients, ElapsedNs: elapsed.Nanoseconds()}
	var all, warm, churn []int64
	for _, cs := range samples {
		for _, sm := range cs {
			rep.Requests++
			switch {
			case sm.err:
				rep.Errors++
			case sm.stale:
				rep.Stale++
			case sm.mut:
				rep.Mutations++
				churn = append(churn, sm.ns)
			case sm.hit:
				rep.Hits++
				warm = append(warm, sm.ns)
			default:
				rep.Misses++
			}
			if !sm.err && !sm.mut {
				all = append(all, sm.ns)
			}
		}
	}
	rep.Throughput = float64(rep.Requests) / elapsed.Seconds()
	rep.P50Ns, rep.P99Ns = quantiles(all)
	rep.WarmP50Ns, rep.WarmP99Ns = quantiles(warm)
	rep.MutateP50Ns, rep.MutateP99Ns = quantiles(churn)
	return rep, nil
}

// doMutateRequest posts one random mutation batch to the newest graph
// version and swaps the shared key for the returned fingerprint. The lock
// spans the round trip (see churnKey); on any error the key is left alone.
func doMutateRequest(ctx context.Context, client *http.Client, baseURL string, cur *churnKey, opt LoadOptions, rng *rand.Rand) loadSample {
	cur.mu.Lock()
	defer cur.mu.Unlock()
	type edge struct {
		U int32 `json:"u"`
		V int32 `json:"v"`
	}
	type entry struct {
		Insert *edge `json:"insert,omitempty"`
		Delete *edge `json:"delete,omitempty"`
	}
	muts := make([]entry, 0, opt.ChurnBatch)
	for len(muts) < opt.ChurnBatch {
		u, v := rng.IntN(opt.ChurnN), rng.IntN(opt.ChurnN)
		if u == v {
			continue
		}
		e := &edge{U: int32(u), V: int32(v)}
		if rng.IntN(2) == 0 {
			muts = append(muts, entry{Insert: e})
		} else {
			muts = append(muts, entry{Delete: e})
		}
	}
	body, _ := json.Marshal(map[string]any{"mutations": muts})
	t0 := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		baseURL+"/v1/graphs/"+cur.key+"/mutate", bytes.NewReader(body))
	if err != nil {
		return loadSample{err: true}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return loadSample{err: true}
	}
	defer resp.Body.Close()
	var mr struct {
		Fingerprint string `json:"fingerprint"`
	}
	decodeErr := json.NewDecoder(resp.Body).Decode(&mr)
	io.Copy(io.Discard, resp.Body)
	ns := time.Since(t0).Nanoseconds()
	if resp.StatusCode != http.StatusOK || decodeErr != nil || mr.Fingerprint == "" {
		return loadSample{ns: ns, err: true}
	}
	cur.key = mr.Fingerprint
	return loadSample{ns: ns, mut: true}
}

// doLoadRequest issues one decompose call and classifies the response.
func doLoadRequest(ctx context.Context, client *http.Client, url string, opt LoadOptions, graph string, seed uint64) loadSample {
	body, _ := json.Marshal(DecomposeRequest{Graph: graph, Plan: opt.Plan, Seed: &seed})
	t0 := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return loadSample{err: true}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return loadSample{err: true}
	}
	defer resp.Body.Close()
	var dr struct {
		CacheHit bool `json:"cacheHit"`
	}
	decodeErr := json.NewDecoder(resp.Body).Decode(&dr)
	io.Copy(io.Discard, resp.Body)
	ns := time.Since(t0).Nanoseconds()
	if resp.StatusCode == http.StatusNotFound {
		return loadSample{ns: ns, stale: true}
	}
	if resp.StatusCode != http.StatusOK || decodeErr != nil {
		return loadSample{ns: ns, err: true}
	}
	return loadSample{ns: ns, hit: dr.CacheHit}
}

// quantiles returns the p50 and p99 of ns (0s when empty).
func quantiles(ns []int64) (p50, p99 int64) {
	if len(ns) == 0 {
		return 0, 0
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(ns)-1))
		return ns[i]
	}
	return at(0.50), at(0.99)
}
