package serve

// The JSON API surface of netdecompd. Every identifier a client handles is
// a 16-hex-digit string: graph fingerprints (graph.Fingerprint), plan keys
// (decomp.Plan.PlanKey). The request/response DTOs here are the wire
// contract documented in DESIGN.md §12; decomp.Partition and session.Stats
// marshal through their stable hand-rolled encoders, so responses are
// byte-diffable.

import (
	"fmt"
	"sort"
	"strconv"

	"netdecomp/internal/decomp"
	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/resilience"
	"netdecomp/internal/session"
)

// familyNames lists the generator families a GraphSpec may name.
func familyNames() []string { return gen.FamilyNames() }

// sortByString orders a slice by a string key — listing endpoints return
// deterministic order so responses are diffable.
func sortByString[T any](xs []T, key func(T) string) {
	sort.Slice(xs, func(i, j int) bool { return key(xs[i]) < key(xs[j]) })
}

// keyString renders a 64-bit identifier the way the API exposes it.
func keyString(k uint64) string { return fmt.Sprintf("%016x", k) }

// parseKey parses a 16-hex-digit identifier (leading zeroes optional).
func parseKey(s string) (uint64, error) {
	k, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("bad key %q: want 64-bit hex", s)
	}
	return k, nil
}

// GraphSpec is a generator-backed graph registration: a gen family plus
// its size and seed. Specs are tiny, deterministic, and persisted verbatim
// in the snapshot, so generator graphs re-register themselves on boot.
type GraphSpec struct {
	Family string `json:"family"`
	N      int    `json:"n"`
	Seed   uint64 `json:"seed"`
}

// Build constructs the spec's graph.
func (sp GraphSpec) Build() (*graph.Graph, error) {
	fam, err := gen.ParseFamily(sp.Family)
	if err != nil {
		return nil, err
	}
	if sp.N < 1 {
		return nil, fmt.Errorf("graph spec: n must be positive, got %d", sp.N)
	}
	return gen.Build(fam, sp.N, sp.Seed)
}

// String renders the spec as the graph's human-readable source label.
func (sp GraphSpec) String() string {
	return fmt.Sprintf("%s(n=%d,seed=%d)", sp.Family, sp.N, sp.Seed)
}

// GraphInfo is the API view of one registered graph.
type GraphInfo struct {
	// Fingerprint is the graph's content digest — the identifier decompose
	// requests address it by.
	Fingerprint string `json:"fingerprint"`
	// N and M are the vertex and edge counts.
	N int `json:"n"`
	M int `json:"m"`
	// Source describes where the graph came from: a generator spec label
	// ("gnp(n=1024,seed=1)") or "upload".
	Source string `json:"source"`
	// Spec is the generator spec when the graph was registered by one.
	// Mutated versions drop it — a spec no longer describes their content.
	Spec *GraphSpec `json:"spec,omitempty"`
	// Version counts the mutation batches between the originally registered
	// graph and this content (0 = as registered); Parent is the fingerprint
	// this version was mutated from.
	Version uint64 `json:"version,omitempty"`
	Parent  string `json:"parent,omitempty"`
}

// MutateResponse is the POST /v1/graphs/{fp}/mutate result: the batch's
// effect and the new versioned key the graph now serves under.
type MutateResponse struct {
	// Previous is the fingerprint the batch addressed (now retired unless
	// the batch was a content no-op); Fingerprint is the mutated content's
	// key — the one subsequent decompose requests must use.
	Previous    string `json:"previous"`
	Fingerprint string `json:"fingerprint"`
	// Version is the new entry's mutation-batch count since registration.
	Version uint64 `json:"version"`
	// N and M are the mutated graph's vertex and edge counts.
	N int `json:"n"`
	M int `json:"m"`
	// Inserted/Deleted/Noops split the batch: effective insertions,
	// effective deletions, and mutations the edge set already satisfied.
	Inserted int `json:"inserted"`
	Deleted  int `json:"deleted"`
	Noops    int `json:"noops"`
	// DeltaSize is the overlay's effective-mutation count over its base CSR
	// (0 when Compacted — the history was just folded in).
	DeltaSize int `json:"deltaSize,omitempty"`
	// Compacted reports the overlay was re-materialized into a flat CSR.
	Compacted bool `json:"compacted,omitempty"`
	// InvalidatedEntries counts session-cache results dropped with the
	// retired fingerprint.
	InvalidatedEntries int `json:"invalidatedEntries"`
}

// PlanSpec is the JSON form of a decomposition configuration — the
// compile-time half of a decompose request, owned by internal/decomp so
// the pipeline spec codec shares the same wire form. Zero-valued fields
// select each algorithm's documented default, exactly like the CLI flags;
// Compile resolves the spec into an immutable decomp.Plan.
type PlanSpec = decomp.PlanSpec

// PlanInfo is the API view of one compiled plan.
type PlanInfo struct {
	// Plan is the PlanKey digest — the identifier decompose requests
	// address the configuration by.
	Plan string `json:"plan"`
	// Algorithm is the registry name the plan executes.
	Algorithm string `json:"algorithm"`
	// Seed is the plan's default seed (a decompose request may override).
	Seed uint64 `json:"seed"`
	// Spec echoes the registered configuration.
	Spec PlanSpec `json:"spec"`
}

// DecomposeRequest addresses one decomposition: a registered graph, a
// compiled plan, and an optional seed overriding the plan's default (the
// third cache-key dimension — sweeps reuse one plan across seeds).
type DecomposeRequest struct {
	Graph string  `json:"graph"`
	Plan  string  `json:"plan"`
	Seed  *uint64 `json:"seed,omitempty"`
	// DeadlineMs requests a server-side execution budget in milliseconds
	// (clamped by the server maximum; 0 = server default). The
	// X-Deadline-Ms header is the equivalent for header-only clients.
	DeadlineMs int64 `json:"deadlineMs,omitempty"`
}

// DecomposeResponse is the served result.
type DecomposeResponse struct {
	// Graph, Plan, Seed echo the fully resolved cache key triple.
	Graph string `json:"graph"`
	Plan  string `json:"plan"`
	Seed  uint64 `json:"seed"`
	// Algorithm is the executing algorithm's registry name.
	Algorithm string `json:"algorithm"`
	// CacheHit reports the request was served from the completed-result
	// cache without any execution.
	CacheHit bool `json:"cacheHit"`
	// LatencyNs is the request's server-side service time.
	LatencyNs int64 `json:"latencyNs"`
	// DroppedRounds is the number of round events this stream dropped on a
	// slow client (streaming endpoint only; always 0 synchronously).
	DroppedRounds int64 `json:"droppedRounds,omitempty"`
	// Partition is the decomposition (stable field order; see
	// internal/decomp/json.go).
	Partition *decomp.Partition `json:"partition"`
}

// StatsResponse is the /v1/stats document.
type StatsResponse struct {
	// Session is the cache/dedup counter snapshot (stable field order).
	Session session.Stats `json:"session"`
	// Graphs and Plans count the registered entries.
	Graphs int `json:"graphs"`
	Plans  int `json:"plans"`
	// SSE reports the streaming subsystem's lifetime counters.
	SSE SSEInfo `json:"sse"`
	// Store describes the persistent result store (nil when disabled).
	Store *StoreInfo `json:"store,omitempty"`
	// Resilience reports admission, shedding, deadline, and fault-injection
	// state.
	Resilience *ResilienceInfo `json:"resilience,omitempty"`
	// Mutations reports the graph-mutation subsystem (nil until the first
	// batch).
	Mutations *MutationInfo `json:"mutations,omitempty"`
}

// MutationInfo is the /v1/stats mutation block.
type MutationInfo struct {
	// Batches counts accepted mutation batches; Applied the effective edge
	// changes; Noops the already-satisfied mutations; Compactions the
	// overlay re-materializations; Invalidated the session-cache entries
	// dropped with retired fingerprints.
	Batches     int64 `json:"batches"`
	Applied     int64 `json:"applied"`
	Noops       int64 `json:"noops"`
	Compactions int64 `json:"compactions"`
	Invalidated int64 `json:"invalidated"`
	// LastPrevious/LastFingerprint echo the most recent key swap.
	LastPrevious    string `json:"lastPrevious,omitempty"`
	LastFingerprint string `json:"lastFingerprint,omitempty"`
}

// ResilienceInfo is the /v1/stats resilience block: the governor's
// admission snapshot (including the degraded flag) plus the serve-layer
// outcome counters, and — when chaos is configured — the injector's
// delivered-fault tallies.
type ResilienceInfo struct {
	Governor resilience.Stats `json:"governor"`
	// Shed counts cold-miss requests rejected while degraded; Timeouts and
	// ClientCancels split the two ways a bounded request dies (504 vs 499);
	// HandlerPanics counts requests answered 500 by the recovery middleware.
	Shed          int64 `json:"shed"`
	Timeouts      int64 `json:"timeouts"`
	ClientCancels int64 `json:"clientCancels"`
	HandlerPanics int64 `json:"handlerPanics"`
	// Injector reports delivered faults when chaos is configured.
	Injector        *resilience.InjectorStats `json:"injector,omitempty"`
	InjectorEnabled bool                      `json:"injectorEnabled,omitempty"`
}

// SSEInfo reports the server-sent-events subsystem: total streams served
// and events dropped on slow clients (rounds on decompose streams, stage
// events on pipeline streams). Per-stream drop counts additionally ride
// each stream's terminal result event.
type SSEInfo struct {
	Clients       int64 `json:"clients"`
	DroppedRounds int64 `json:"droppedRounds"`
	DroppedEvents int64 `json:"droppedEvents"`
}

// StoreInfo reports the persistence state.
type StoreInfo struct {
	// Path is the snapshot file.
	Path string `json:"path"`
	// Restored is the number of cache entries recovered at boot.
	Restored int `json:"restored"`
	// Flushes counts completed snapshot writes; LastFlushEntries is the
	// entry count of the most recent one.
	Flushes          int64  `json:"flushes"`
	LastFlushEntries int    `json:"lastFlushEntries"`
	RecoveryError    string `json:"recoveryError,omitempty"`
}

// errorResponse is the uniform error document.
type errorResponse struct {
	Error string `json:"error"`
}

// rebuildUpload reconstructs an uploaded graph from its persisted flat
// edge list (u,v pairs).
func rebuildUpload(n int, edges []int32) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < len(edges); i += 2 {
		b.AddEdge(int(edges[i]), int(edges[i+1]))
	}
	return b.Build()
}

// flattenEdges extracts a graph's edges as the flat pair list
// rebuildUpload consumes.
func flattenEdges(g graph.Interface) []int32 {
	out := make([]int32, 0, 2*graph.EdgeCount(g))
	for u, v := range graph.EdgeSeq(g) {
		out = append(out, int32(u), int32(v))
	}
	return out
}
