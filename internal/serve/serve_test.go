package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"netdecomp/internal/decomp"
	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/graphio"
	"netdecomp/internal/randx"
)

// newTestServer boots a Server (no store unless path given) on httptest.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return s, ts
}

// postJSON round-trips one JSON request, failing the test on transport
// errors and decoding the response into out when non-nil.
func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp
}

// mustBuild builds a generator graph or fails the test.
func mustBuild(t *testing.T, family string, n int, seed uint64) *graph.Graph {
	t.Helper()
	fam, err := gen.ParseFamily(family)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.Build(fam, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// register registers the standard test workload: a generator graph and a
// forced-complete elkin-neiman plan.
func register(t *testing.T, base string) (graphKey, planKey string) {
	t.Helper()
	var gi GraphInfo
	if resp := postJSON(t, base+"/v1/graphs", GraphSpec{Family: "gnp", N: 256, Seed: 5}, &gi); resp.StatusCode != 200 {
		t.Fatalf("register graph: status %d", resp.StatusCode)
	}
	var pi PlanInfo
	if resp := postJSON(t, base+"/v1/plans", PlanSpec{Algorithm: "elkin-neiman", ForceComplete: true}, &pi); resp.StatusCode != 200 {
		t.Fatalf("register plan: status %d", resp.StatusCode)
	}
	return gi.Fingerprint, pi.Plan
}

func TestHealthAndAlgorithms(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	var h map[string]string
	getJSON(t, ts.URL+"/healthz", &h)
	if h["status"] != "ok" {
		t.Fatalf("healthz: %v", h)
	}
	var algos struct {
		Algorithms []string `json:"algorithms"`
		Families   []string `json:"families"`
	}
	getJSON(t, ts.URL+"/v1/algorithms", &algos)
	if len(algos.Algorithms) == 0 || len(algos.Families) == 0 {
		t.Fatalf("empty discovery document: %+v", algos)
	}
}

func TestRegisterGraphBySpecAndUpload(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	// Spec registration is idempotent and keyed by fingerprint.
	var gi1, gi2 GraphInfo
	postJSON(t, ts.URL+"/v1/graphs", GraphSpec{Family: "grid", N: 64, Seed: 1}, &gi1)
	postJSON(t, ts.URL+"/v1/graphs", GraphSpec{Family: "grid", N: 64, Seed: 1}, &gi2)
	if gi1.Fingerprint != gi2.Fingerprint {
		t.Fatalf("re-registration changed fingerprint: %s vs %s", gi1.Fingerprint, gi2.Fingerprint)
	}
	want := mustBuild(t, "grid", 64, 1)
	if gi1.Fingerprint != fmt.Sprintf("%016x", want.Fingerprint()) {
		t.Fatalf("fingerprint mismatch: %s", gi1.Fingerprint)
	}

	// Upload registration: write an edge list, post it as a plain body.
	g := gen.Gnp(randx.New(2), 64, 0.1)
	var buf bytes.Buffer
	if err := graphio.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/graphs", "text/plain", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var up GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if up.Source != "upload" || up.Fingerprint != fmt.Sprintf("%016x", g.Fingerprint()) {
		t.Fatalf("upload registered wrong: %+v", up)
	}
	if up.N != g.N() || up.M != graph.EdgeCount(g) {
		t.Fatalf("upload size wrong: %+v", up)
	}

	// Malformed upload is a 400, not a panic.
	resp, err = http.Post(ts.URL+"/v1/graphs", "text/plain", strings.NewReader("3 1\n0 99\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed upload: status %d", resp.StatusCode)
	}

	// Listing returns both graphs in deterministic order.
	var list []GraphInfo
	getJSON(t, ts.URL+"/v1/graphs", &list)
	if len(list) != 2 {
		t.Fatalf("want 2 graphs listed, got %d", len(list))
	}
	if list[0].Fingerprint > list[1].Fingerprint {
		t.Fatalf("listing not sorted")
	}
}

func TestRegisterPlanValidatesAndIsIdempotent(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	var pi1, pi2 PlanInfo
	postJSON(t, ts.URL+"/v1/plans", PlanSpec{Algorithm: "mpx", Beta: 0.4}, &pi1)
	postJSON(t, ts.URL+"/v1/plans", PlanSpec{Algorithm: "mpx", Beta: 0.4}, &pi2)
	if pi1.Plan != pi2.Plan {
		t.Fatalf("equivalent specs got different plan keys: %s vs %s", pi1.Plan, pi2.Plan)
	}
	// The key is the content digest decomp computes.
	pl, err := PlanSpec{Algorithm: "mpx", Beta: 0.4}.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if pi1.Plan != fmt.Sprintf("%016x", pl.PlanKey()) {
		t.Fatalf("plan key mismatch: %s", pi1.Plan)
	}
	// Unknown algorithm and invalid config are 400s.
	if resp := postJSON(t, ts.URL+"/v1/plans", PlanSpec{Algorithm: "nope"}, nil); resp.StatusCode != 400 {
		t.Fatalf("unknown algorithm: status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/plans", PlanSpec{Algorithm: "mpx", K: -1}, nil); resp.StatusCode != 400 {
		t.Fatalf("invalid config: status %d", resp.StatusCode)
	}
}

func TestDecomposeColdWarmAndEquivalence(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	gk, pk := register(t, ts.URL)

	var cold DecomposeResponse
	postJSON(t, ts.URL+"/v1/decompose", DecomposeRequest{Graph: gk, Plan: pk}, &cold)
	if cold.CacheHit {
		t.Fatal("first request must be a miss")
	}
	if cold.Partition == nil || !cold.Partition.Complete {
		t.Fatalf("bad partition: %+v", cold.Partition)
	}
	var warm DecomposeResponse
	postJSON(t, ts.URL+"/v1/decompose", DecomposeRequest{Graph: gk, Plan: pk}, &warm)
	if !warm.CacheHit {
		t.Fatal("second request must be a hit")
	}

	// The served partition is bit-identical to a direct library run: the
	// stable JSON documents compare equal.
	g := mustBuild(t, "gnp", 256, 5)
	pl, err := decomp.Compile("elkin-neiman", decomp.WithForceComplete())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := pl.Run(t.Context(), g)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(direct)
	coldJSON, _ := json.Marshal(cold.Partition)
	warmJSON, _ := json.Marshal(warm.Partition)
	if !bytes.Equal(wantJSON, coldJSON) || !bytes.Equal(wantJSON, warmJSON) {
		t.Fatal("served partitions differ from direct execution")
	}

	// Seed override routes to a different cache slot.
	seed := uint64(9)
	var other DecomposeResponse
	postJSON(t, ts.URL+"/v1/decompose", DecomposeRequest{Graph: gk, Plan: pk, Seed: &seed}, &other)
	if other.CacheHit || other.Seed != 9 {
		t.Fatalf("seed override: %+v", other)
	}

	// Unregistered keys are 404s.
	if resp := postJSON(t, ts.URL+"/v1/decompose", DecomposeRequest{Graph: "00000000000000ff", Plan: pk}, nil); resp.StatusCode != 404 {
		t.Fatalf("unknown graph: status %d", resp.StatusCode)
	}

	// Stats reflect the traffic (2 misses, 1 hit) and /metrics exposes it.
	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Session.Hits != 1 || st.Session.Misses != 2 || st.Graphs != 1 || st.Plans != 1 {
		t.Fatalf("stats: %+v", st)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	prom.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"session_hits 1", "session_misses 2", "serve_requests"} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, prom.String())
		}
	}
}

func TestDecomposeStreamSSE(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	gk := registerGraph(t, ts.URL, GraphSpec{Family: "gnp", N: 256, Seed: 5})
	var pi PlanInfo
	postJSON(t, ts.URL+"/v1/plans", PlanSpec{Algorithm: "elkin-neiman/dist", ForceComplete: true}, &pi)

	body, _ := json.Marshal(DecomposeRequest{Graph: gk, Plan: pi.Plan})
	resp, err := http.Post(ts.URL+"/v1/decompose/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	rounds, result := readSSE(t, resp.Body)
	if len(rounds) == 0 {
		t.Fatal("cold engine-backed stream emitted no round events")
	}
	if result == nil || result.CacheHit || result.Partition == nil {
		t.Fatalf("bad result event: %+v", result)
	}
	// Round indices ascend and the count matches the partition's metrics.
	for i := 1; i < len(rounds); i++ {
		if rounds[i].Round <= rounds[i-1].Round {
			t.Fatalf("rounds out of order at %d", i)
		}
	}
	if len(rounds) != result.Partition.Metrics.Rounds {
		t.Fatalf("streamed %d rounds, metrics say %d", len(rounds), result.Partition.Metrics.Rounds)
	}

	// Warm request: no rounds, just the result marked as a hit.
	resp2, err := http.Post(ts.URL+"/v1/decompose/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	rounds2, result2 := readSSE(t, resp2.Body)
	if len(rounds2) != 0 || result2 == nil || !result2.CacheHit {
		t.Fatalf("warm stream: %d rounds, result %+v", len(rounds2), result2)
	}
}

// registerGraph registers one spec and returns its fingerprint key.
func registerGraph(t *testing.T, base string, spec GraphSpec) string {
	t.Helper()
	var gi GraphInfo
	if resp := postJSON(t, base+"/v1/graphs", spec, &gi); resp.StatusCode != 200 {
		t.Fatalf("register graph: status %d", resp.StatusCode)
	}
	return gi.Fingerprint
}

// readSSE parses an SSE stream into round events and the final result.
func readSSE(t *testing.T, r interface{ Read([]byte) (int, error) }) ([]roundEvent, *DecomposeResponse) {
	t.Helper()
	var (
		rounds []roundEvent
		result *DecomposeResponse
		event  string
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "round":
				var re roundEvent
				if err := json.Unmarshal([]byte(data), &re); err != nil {
					t.Fatalf("bad round event %q: %v", data, err)
				}
				rounds = append(rounds, re)
			case "result":
				result = &DecomposeResponse{}
				if err := json.Unmarshal([]byte(data), result); err != nil {
					t.Fatalf("bad result event: %v", err)
				}
			case "error":
				var er errorResponse
				_ = json.Unmarshal([]byte(data), &er)
				t.Fatalf("error event: %s", er.Error)
			}
		}
	}
	return rounds, result
}

func TestLoadGenAgainstServer(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4, CacheSize: 64})
	gk, pk := register(t, ts.URL)
	rep, err := RunLoad(t.Context(), ts.URL, LoadOptions{
		Clients: 4, Requests: 60, Graph: gk, Plan: pk,
		Seeds: 4, FreshFraction: 0.1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("load run had %d errors", rep.Errors)
	}
	if rep.Requests != 60 {
		t.Fatalf("want 60 requests, got %d", rep.Requests)
	}
	if rep.Hits == 0 || rep.Misses == 0 {
		t.Fatalf("zipf mix should produce both hits and misses: %+v", rep)
	}
	if rep.Hits+rep.Misses != rep.Requests {
		t.Fatalf("accounting: %+v", rep)
	}
	if rep.WarmP50Ns <= 0 || rep.WarmP99Ns < rep.WarmP50Ns {
		t.Fatalf("warm quantiles: %+v", rep)
	}
}

// TestServerSharedSessionDedup: the server serves concurrent identical
// requests through one execution (the session's singleflight), visible in
// the dedup counter.
func TestServerSharedSessionDedup(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1})
	gk, pk := register(t, ts.URL)
	// No t.Fatal inside the goroutines (it would leave done starved and
	// hang the receive loop): errors travel through the channel.
	type outcome struct {
		dr  DecomposeResponse
		err error
	}
	done := make(chan outcome, 8)
	body, _ := json.Marshal(DecomposeRequest{Graph: gk, Plan: pk})
	for i := 0; i < 8; i++ {
		go func() {
			var o outcome
			resp, err := http.Post(ts.URL+"/v1/decompose", "application/json", bytes.NewReader(body))
			if err != nil {
				o.err = err
			} else {
				o.err = json.NewDecoder(resp.Body).Decode(&o.dr)
				resp.Body.Close()
			}
			done <- o
		}()
	}
	var first []byte
	for i := 0; i < 8; i++ {
		o := <-done
		if o.err != nil {
			t.Fatal(o.err)
		}
		b, _ := json.Marshal(o.dr.Partition)
		if first == nil {
			first = b
		} else if !bytes.Equal(first, b) {
			t.Fatal("concurrent identical requests served different partitions")
		}
	}
	st := srv.Session().Stats()
	if st.Misses != 1 {
		t.Fatalf("want exactly one execution, got misses=%d (hits=%d dedups=%d)", st.Misses, st.Hits, st.Dedups)
	}
}
