package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// testPipelineSpec is the canonical two-level wire pipeline the endpoint
// tests execute: decompose → recolor → mis plus decompose → spanner.
const testPipelineSpec = `{
  "stages": [
    {"id": "dec", "decompose": {"algorithm": "elkin-neiman", "seed": 9, "forceComplete": true}},
    {"id": "re", "recolor": {}},
    {"id": "mis", "mis": {}},
    {"id": "sp", "spanner": {}}
  ],
  "edges": [
    {"from": "dec", "to": "re"},
    {"from": "re", "to": "mis"},
    {"from": "dec", "to": "sp"}
  ]
}`

// pipelineBody builds a /v1/pipeline request body around the canonical
// spec.
func pipelineBody(t *testing.T, gk string) []byte {
	t.Helper()
	var req PipelineRequest
	if err := json.Unmarshal([]byte(`{"pipeline": `+testPipelineSpec+`}`), &req); err != nil {
		t.Fatal(err)
	}
	req.Graph = gk
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestPipelineEndpoint is the synchronous wire contract: a posted DAG
// executes with the documented order/levels, the re-post serves its
// decompose stage from the session cache, and /v1/stats shows the hits.
func TestPipelineEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	gk := registerGraph(t, ts.URL, GraphSpec{Family: "gnp", N: 256, Seed: 5})
	body := pipelineBody(t, gk)

	post := func() PipelineResponse {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/pipeline", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var pr PipelineResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return pr
	}

	cold := post()
	if cold.Graph != gk {
		t.Errorf("graph echo %q, want %q", cold.Graph, gk)
	}
	wantOrder := []string{"dec", "re", "sp", "mis"}
	if len(cold.Order) != 4 || cold.Order[0] != "dec" || cold.Order[3] != "mis" {
		t.Errorf("order %v, want %v", cold.Order, wantOrder)
	}
	if len(cold.Levels) != 3 {
		t.Errorf("levels %v, want 3 levels", cold.Levels)
	}
	if cold.CacheHits != 0 {
		t.Errorf("cold run: cacheHits %d, want 0", cold.CacheHits)
	}
	stages := map[string]StageResultInfo{}
	for _, si := range cold.Stages {
		stages[si.ID] = si
	}
	if dec := stages["dec"]; dec.Partition == nil || dec.Kind != "decompose" {
		t.Errorf("dec stage missing partition: %+v", dec)
	}
	if mis := stages["mis"]; mis.Size <= 0 {
		t.Errorf("mis stage has no size: %+v", mis)
	}
	if sp := stages["sp"]; sp.Edges <= 0 || sp.Fingerprint == "" {
		t.Errorf("sp stage missing skeleton summary: %+v", sp)
	}

	warm := post()
	if warm.CacheHits != 1 {
		t.Errorf("warm re-post: cacheHits %d, want 1 (the decompose stage)", warm.CacheHits)
	}
	for _, si := range warm.Stages {
		if wantHit := si.ID == "dec"; si.CacheHit != wantHit {
			t.Errorf("warm stage %s: cacheHit %v, want %v", si.ID, si.CacheHit, wantHit)
		}
	}
	if p1, p2 := stages["dec"].Partition, warm.Stages[0].Partition; p1 != nil && p2 != nil {
		d1, _ := json.Marshal(p1)
		d2, _ := json.Marshal(p2)
		if !bytes.Equal(d1, d2) {
			t.Error("warm partition differs from cold partition")
		}
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Session.Hits == 0 {
		t.Errorf("stats after warm pipeline: session hits %d, want > 0", st.Session.Hits)
	}
}

// TestPipelineEndpointErrors pins the failure modes: bad JSON, unknown
// graph, invalid DAGs — all JSON error documents, correct status codes.
func TestPipelineEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	gk := registerGraph(t, ts.URL, GraphSpec{Family: "gnp", N: 64, Seed: 1})
	cases := []struct {
		name string
		body string
		code int
		want string
	}{
		{"bad json", `{`, 400, "decoding"},
		{"bad graph key", `{"graph": "zzz", "pipeline": {"stages": []}}`, 400, "bad key"},
		{"unknown graph", `{"graph": "00000000000000ff", "pipeline": {"stages": [{"id": "a", "spanner": {}}]}}`, 404, "not registered"},
		{"no stages", `{"graph": "` + gk + `", "pipeline": {"stages": []}}`, 400, "no stages"},
		{"no kind", `{"graph": "` + gk + `", "pipeline": {"stages": [{"id": "a"}]}}`, 400, "no kind set"},
		{"typed edge", `{"graph": "` + gk + `", "pipeline": {"stages": [
			{"id": "a", "decompose": {"algorithm": "elkin-neiman"}},
			{"id": "b", "mis": {}}], "edges": [{"from": "a", "to": "b"}]}}`, 400, "cannot consume"},
		{"cycle", `{"graph": "` + gk + `", "pipeline": {"stages": [
			{"id": "a", "decompose": {"algorithm": "elkin-neiman", "forceComplete": true}},
			{"id": "s", "spanner": {}},
			{"id": "b", "decompose": {"algorithm": "elkin-neiman"}},
			{"id": "s2", "spanner": {}}],
			"edges": [{"from": "a", "to": "s"}, {"from": "s", "to": "b"},
			          {"from": "b", "to": "s2"}, {"from": "s2", "to": "b"}]}}`, 400, "cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/pipeline", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.code {
				t.Errorf("status %d, want %d", resp.StatusCode, tc.code)
			}
			var er errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatalf("non-JSON error body: %v", err)
			}
			if !strings.Contains(er.Error, tc.want) {
				t.Errorf("error %q does not mention %q", er.Error, tc.want)
			}
		})
	}
}

// readPipelineSSE parses a pipeline SSE stream.
func readPipelineSSE(t *testing.T, r interface{ Read([]byte) (int, error) }) ([]stageEvent, *PipelineResponse) {
	t.Helper()
	var (
		events []stageEvent
		result *PipelineResponse
		event  string
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "stage":
				var se stageEvent
				if err := json.Unmarshal([]byte(data), &se); err != nil {
					t.Fatalf("bad stage event %q: %v", data, err)
				}
				events = append(events, se)
			case "result":
				result = &PipelineResponse{}
				if err := json.Unmarshal([]byte(data), result); err != nil {
					t.Fatalf("bad result event: %v", err)
				}
			case "error":
				var er errorResponse
				_ = json.Unmarshal([]byte(data), &er)
				t.Fatalf("error event: %s", er.Error)
			}
		}
	}
	return events, result
}

// TestPipelineStreamSSE is the streaming contract plus the satellite drop
// accounting: delivered stage events + the terminal droppedEvents counter
// conserve the total (2 per stage), and the aggregate lands on /v1/stats.
// The buffer is shrunk to zero slots so the conservation law is exercised
// under real drops whenever the client loop falls behind.
func TestPipelineStreamSSE(t *testing.T) {
	old := sseEventBuffer
	sseEventBuffer = 0
	defer func() { sseEventBuffer = old }()

	_, ts := newTestServer(t, Options{Workers: 2})
	gk := registerGraph(t, ts.URL, GraphSpec{Family: "gnp", N: 256, Seed: 5})
	body := pipelineBody(t, gk)

	resp, err := http.Post(ts.URL+"/v1/pipeline/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	events, result := readPipelineSSE(t, resp.Body)
	if result == nil {
		t.Fatal("stream ended without a result event")
	}
	if got, want := int64(len(events))+result.DroppedEvents, int64(2*4); got != want {
		t.Errorf("delivered %d + dropped %d = %d events, want %d (2 per stage)",
			len(events), result.DroppedEvents, got, want)
	}
	for _, ev := range events {
		if ev.Status != "start" && ev.Status != "done" {
			t.Errorf("unexpected stage status %q", ev.Status)
		}
		if ev.Error != "" {
			t.Errorf("stage %s reported error %q", ev.Stage, ev.Error)
		}
	}
	if len(result.Stages) != 4 || result.Stages[0].ID != "dec" {
		t.Errorf("result stages %+v, want 4 starting with dec", result.Stages)
	}

	// The aggregate counter on /v1/stats equals this stream's drops (the
	// only stream so far), and the clients counter moved.
	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.SSE.DroppedEvents != result.DroppedEvents {
		t.Errorf("stats droppedEvents %d != stream's %d", st.SSE.DroppedEvents, result.DroppedEvents)
	}
	if st.SSE.Clients != 1 {
		t.Errorf("stats sse clients %d, want 1", st.SSE.Clients)
	}
}
