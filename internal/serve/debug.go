package serve

// The shared observability mux: /metrics (Prometheus text), /debug/vars
// (expvar JSON) and the live /debug/pprof handlers, mounted identically by
// cmd/netdecomp (-metrics-addr) and cmd/netdecompd (always on, next to the
// API routes). Extracted here so the two binaries cannot drift.

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"sync"
	"sync/atomic"

	"netdecomp/internal/obs"
)

// MountDebug adds the observability routes to mux, serving reg:
//
//	/metrics          Prometheus text exposition (version 0.0.4)
//	/debug/vars       expvar JSON (the registry under the "netdecomp" key)
//	/debug/pprof/...  live pprof: index, cmdline, profile, symbol, trace
func MountDebug(mux *http.ServeMux, reg *obs.Registry) {
	publishExpvar(reg)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
}

// NewDebugMux returns a mux carrying only the observability routes — the
// standalone -metrics-addr listener of cmd/netdecomp.
func NewDebugMux(reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	MountDebug(mux, reg)
	return mux
}

// ListenDebug binds addr and serves the debug mux on it. The caller owns
// the returned server (Close when done); the listener reports the bound
// address, so addr may use port 0.
func ListenDebug(addr string, reg *obs.Registry) (*http.Server, net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("metrics listener %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewDebugMux(reg)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln, nil
}

// expvar.Publish panics on duplicate names, so the process-wide
// "netdecomp" var is published once and indirects through an atomic
// pointer to the most recently mounted registry (tests mount repeatedly in
// one process).
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[obs.Registry]
)

func publishExpvar(reg *obs.Registry) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("netdecomp", expvar.Func(func() any {
			return expvarReg.Load().ExpvarMap()
		}))
	})
}
