package serve

// The pipeline serving endpoints: POST /v1/pipeline executes a typed DAG
// of stages (internal/pipeline) against a registered graph in one request,
// and POST /v1/pipeline/stream streams per-stage start/done events over
// SSE while the DAG executes, ending with the same result document. Every
// decompose stage rides the server's session, so re-posting a pipeline
// after one upstream edit recomputes only the affected subgraph — the
// stage-level CacheHit flags and the session counters on /v1/stats show
// the flip.

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"

	"netdecomp/internal/decomp"
	"netdecomp/internal/graph"
	"netdecomp/internal/pipeline"
	"netdecomp/internal/resilience"
)

// PipelineRequest is the POST /v1/pipeline body: a registered graph
// fingerprint plus an inline pipeline spec. Decompose stages carry their
// PlanSpec inline — the pipeline is self-contained, no prior /v1/plans
// registration needed.
type PipelineRequest struct {
	Graph    string        `json:"graph"`
	Pipeline pipeline.Spec `json:"pipeline"`
	// DeadlineMs requests a server-side execution budget in milliseconds
	// (clamped by the server maximum; 0 = server default). The executor
	// re-checks the budget at every level boundary, so an expired pipeline
	// stops between levels instead of burning workers on a doomed DAG.
	DeadlineMs int64 `json:"deadlineMs,omitempty"`
}

// StageResultInfo is the API view of one completed stage: identity,
// schedule position, cache/latency, and a kind-shaped summary. Decompose
// stages include their full partition (the same stable document
// /v1/decompose serves); derived stages report compact summaries.
type StageResultInfo struct {
	ID        string `json:"id"`
	Kind      string `json:"kind"`
	Level     int    `json:"level"`
	CacheHit  bool   `json:"cacheHit"`
	LatencyNs int64  `json:"latencyNs"`

	// Partition is the decomposition (decompose stages).
	Partition *decomp.Partition `json:"partition,omitempty"`
	// Clusters/Colors summarize a recolor stage's application input.
	Clusters int `json:"clusters,omitempty"`
	Colors   int `json:"colors,omitempty"`
	// Size summarizes MIS (set size) and matching (matched edges).
	Size int `json:"size,omitempty"`
	// NumColors summarizes a coloring stage.
	NumColors int `json:"numColors,omitempty"`
	// Rounds is the distributed round estimate of the app stages.
	Rounds int `json:"rounds,omitempty"`
	// Edges/Pieces/Fingerprint summarize a spanner stage's skeleton.
	Edges       int    `json:"edges,omitempty"`
	Pieces      int    `json:"pieces,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// Sets/Degree/W summarize a cover stage.
	Sets   int `json:"sets,omitempty"`
	Degree int `json:"degree,omitempty"`
	W      int `json:"w,omitempty"`
}

// PipelineResponse is the executed pipeline's result document — the body
// of POST /v1/pipeline and the terminal SSE event of the stream variant.
type PipelineResponse struct {
	Graph string `json:"graph"`
	// Order is the deterministic execution order; Levels the parallel
	// schedule it flattens.
	Order  []string   `json:"order"`
	Levels [][]string `json:"levels"`
	// CacheHits counts stages served from the session cache; LatencyNs is
	// the whole run.
	CacheHits int   `json:"cacheHits"`
	LatencyNs int64 `json:"latencyNs"`
	// Stages holds the per-stage results in execution order.
	Stages []StageResultInfo `json:"stages"`
	// DroppedEvents is the number of stage events this stream dropped on a
	// slow client (stream variant only; the synchronous endpoint always
	// reports 0).
	DroppedEvents int64 `json:"droppedEvents,omitempty"`
}

// stageEvent is the SSE stage payload.
type stageEvent struct {
	Stage     string `json:"stage"`
	Kind      string `json:"kind"`
	Level     int    `json:"level"`
	Status    string `json:"status"`
	CacheHit  bool   `json:"cacheHit,omitempty"`
	LatencyNs int64  `json:"latencyNs,omitempty"`
	Error     string `json:"error,omitempty"`
}

// resolvePipeline decodes, validates and resolves a pipeline request.
func (s *Server) resolvePipeline(w http.ResponseWriter, r *http.Request) (graph.Interface, *pipeline.Pipeline, string, int64, bool) {
	var req PipelineRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding pipeline request: %v", err)
		return nil, nil, "", 0, false
	}
	fp, err := parseKey(req.Graph)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "graph: %v", err)
		return nil, nil, "", 0, false
	}
	s.mu.RLock()
	ge, ok := s.graphs[fp]
	s.mu.RUnlock()
	if !ok {
		s.fail(w, http.StatusNotFound, "graph %s not registered (POST /v1/graphs first)", keyString(fp))
		return nil, nil, "", 0, false
	}
	p, err := req.Pipeline.Build()
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return nil, nil, "", 0, false
	}
	return ge.g, p, keyString(fp), req.DeadlineMs, true
}

// pipelineResponse renders an executed pipeline.
func pipelineResponse(gk string, p *pipeline.Pipeline, res *pipeline.Result, lat time.Duration) PipelineResponse {
	resp := PipelineResponse{
		Graph:     gk,
		Order:     res.Order,
		Levels:    p.Levels(),
		CacheHits: res.CacheHits,
		LatencyNs: lat.Nanoseconds(),
	}
	for _, sr := range res.SortedStages() {
		info := StageResultInfo{
			ID:        sr.ID,
			Kind:      sr.Kind.String(),
			Level:     sr.Level,
			CacheHit:  sr.CacheHit,
			LatencyNs: sr.LatencyNs,
		}
		switch sr.Kind {
		case pipeline.KindPartition:
			info.Partition = sr.Partition
		case pipeline.KindAppInput:
			info.Clusters = len(sr.AppInput.Clusters)
			for _, c := range sr.AppInput.Colors {
				if c+1 > info.Colors {
					info.Colors = c + 1
				}
			}
		case pipeline.KindMIS:
			info.Size = sr.MIS.Size
			info.Rounds = sr.MIS.Rounds
		case pipeline.KindColoring:
			info.NumColors = sr.Coloring.NumColors
			info.Rounds = sr.Coloring.Rounds
		case pipeline.KindMatching:
			info.Size = sr.Matching.Size
			info.Rounds = sr.Matching.Rounds
		case pipeline.KindSpanner:
			info.Edges = sr.Spanner.Edges
			info.Pieces = sr.Spanner.Pieces
			info.Fingerprint = keyString(graph.Fingerprint(sr.Spanner.G))
		case pipeline.KindCover:
			info.Sets = len(sr.Cover.Clusters)
			info.Degree = sr.Cover.Degree
			info.Colors = sr.Cover.Colors
			info.W = sr.Cover.W
		}
		resp.Stages = append(resp.Stages, info)
	}
	return resp
}

// handlePipeline is the synchronous pipeline path: decode, validate,
// execute level-parallel through the session, respond with the full
// per-stage result document.
func (s *Server) handlePipeline(w http.ResponseWriter, r *http.Request) {
	g, p, gk, deadlineMs, ok := s.resolvePipeline(w, r)
	if !ok {
		return
	}
	if s.shedColdWork(w, resilience.ClassPipeline) {
		return
	}
	release, ok := s.admit(w, r, resilience.ClassPipeline)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.gov.Deadline().Context(r.Context(), requestDeadline(r, deadlineMs))
	defer cancel()
	start := time.Now()
	res, err := pipeline.Run(ctx, p, g,
		pipeline.WithSession(s.sess), pipeline.WithRecorder(s.rec))
	if err != nil {
		s.failExec(w, r, err, "pipeline")
		return
	}
	lat := time.Since(start)
	s.hPipeline.Observe(lat.Nanoseconds())
	s.writeJSON(w, http.StatusOK, pipelineResponse(gk, p, res, lat))
}

// handlePipelineStream executes a pipeline while streaming stage
// lifecycle events over SSE:
//
//	event: stage
//	data: {"stage":"dec","kind":"decompose","level":0,"status":"start"}
//
//	event: stage
//	data: {"stage":"dec",...,"status":"done","cacheHit":true,"latencyNs":52000}
//
//	event: result
//	data: {...the PipelineResponse document, droppedEvents included...}
//
// Like the decompose stream, the stage observer must never block the
// executor on a slow client: events pass through a bounded channel and
// are counted-and-dropped on overflow. The per-stream drop count rides
// the terminal result event (droppedEvents) and the aggregate lands in
// serve.sse.dropped_events on /v1/stats.
func (s *Server) handlePipelineStream(w http.ResponseWriter, r *http.Request) {
	g, p, gk, deadlineMs, ok := s.resolvePipeline(w, r)
	if !ok {
		return
	}
	flusher, fok := w.(http.Flusher)
	if !fok {
		s.fail(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	if s.shedColdWork(w, resilience.ClassPipeline) {
		return
	}
	release, aok := s.admit(w, r, resilience.ClassPipeline)
	if !aok {
		return
	}
	defer release()
	s.cSSEClients.Inc()
	s.gSSEActive.Add(1)
	defer s.gSSEActive.Add(-1)
	startSSE(w, flusher)

	// Bounded hand-off: the executor's serialized observer never blocks on
	// the client; overflow is counted per stream and in the aggregate.
	events := make(chan stageEvent, sseEventBuffer)
	var dropped atomic.Int64
	observer := func(ev pipeline.StageEvent) {
		se := stageEvent{
			Stage:     ev.Stage,
			Kind:      ev.Kind.String(),
			Level:     ev.Level,
			Status:    ev.Status.String(),
			CacheHit:  ev.CacheHit,
			LatencyNs: ev.LatencyNs,
		}
		if ev.Err != nil {
			se.Error = ev.Err.Error()
		}
		select {
		case events <- se:
		default:
			dropped.Add(1)
			s.cSSEDroppedEvents.Inc()
		}
	}

	start := time.Now()
	type outcome struct {
		res *pipeline.Result
		err error
	}
	ctx, cancel := s.gov.Deadline().Context(r.Context(), requestDeadline(r, deadlineMs))
	defer cancel()
	done := make(chan outcome, 1)
	go func() {
		res, err := pipeline.Run(ctx, p, g,
			pipeline.WithSession(s.sess), pipeline.WithRecorder(s.rec),
			pipeline.WithObserver(observer))
		done <- outcome{res, err}
	}()

	var out outcome
	for waiting := true; waiting; {
		select {
		case ev := <-events:
			writeSSE(w, "stage", ev)
			flusher.Flush()
		case out = <-done:
			waiting = false
		}
	}
	// Drain what the execution emitted before completing.
	for {
		select {
		case ev := <-events:
			writeSSE(w, "stage", ev)
			flusher.Flush()
			continue
		default:
		}
		break
	}
	if out.err != nil {
		s.countExecErr(r, out.err)
		writeSSE(w, "error", errorResponse{Error: out.err.Error()})
		flusher.Flush()
		return
	}
	lat := time.Since(start)
	s.hPipeline.Observe(lat.Nanoseconds())
	resp := pipelineResponse(gk, p, out.res, lat)
	resp.DroppedEvents = dropped.Load()
	writeSSE(w, "result", resp)
	flusher.Flush()
}
