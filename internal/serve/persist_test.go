package serve

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"netdecomp/internal/graph"
	"netdecomp/internal/graphio"
	"netdecomp/internal/session"
)

// writeUpload renders g in the edge-list text format uploads use.
func writeUpload(t *testing.T, w io.Writer, g *graph.Graph) {
	t.Helper()
	if err := graphio.Write(w, g); err != nil {
		t.Fatal(err)
	}
}

// uploadGraph posts a raw edge-list body and returns the fingerprint key.
func uploadGraph(t *testing.T, base string, body []byte) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/graphs", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}
	var gi GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&gi); err != nil {
		t.Fatal(err)
	}
	return gi.Fingerprint
}

// forgeMetaSnapshot builds a snapshot whose integrity hash is valid but
// whose meta records a graph fingerprint its spec does not rebuild to.
func forgeMetaSnapshot(t *testing.T) []byte {
	t.Helper()
	m := serveMeta{Graphs: []graphRecord{{
		Fingerprint: 0xdeadbeefdeadbeef,
		Source:      "generator",
		Spec:        &GraphSpec{Family: "gnp", N: 128, Seed: 7},
		N:           128,
	}}}
	var meta bytes.Buffer
	if err := gob.NewEncoder(&meta).Encode(m); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := session.WriteSnapshot(&out, session.Snapshot{Meta: meta.Bytes()}); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestRestartServesWarmHits is ISSUE acceptance: fill the cache, snapshot,
// kill the server, boot a fresh one on the same store path, re-request —
// every request is a cache hit (zero recomputes) and every partition is
// bit-identical to its pre-restart answer.
func TestRestartServesWarmHits(t *testing.T) {
	store := filepath.Join(t.TempDir(), "netdecomp.snap")

	type workload struct {
		req  DecomposeRequest
		body []byte // stable JSON of the pre-restart partition
	}
	var work []workload

	// First life: register a generator graph AND an upload, two plans,
	// decompose across several seeds, then flush + close.
	{
		s := New(Options{Workers: 2, StorePath: store})
		ts := httptest.NewServer(s.Handler())
		gk := registerGraph(t, ts.URL, GraphSpec{Family: "gnp", N: 192, Seed: 3})

		g := mustBuild(t, "torus", 49, 0)
		var buf bytes.Buffer
		writeUpload(t, &buf, g)
		uk := uploadGraph(t, ts.URL, buf.Bytes())

		var p1, p2 PlanInfo
		postJSON(t, ts.URL+"/v1/plans", PlanSpec{Algorithm: "elkin-neiman", ForceComplete: true}, &p1)
		postJSON(t, ts.URL+"/v1/plans", PlanSpec{Algorithm: "mpx", Beta: 0.3}, &p2)

		for _, gkey := range []string{gk, uk} {
			for _, pkey := range []string{p1.Plan, p2.Plan} {
				for s := uint64(0); s < 3; s++ {
					seed := s
					req := DecomposeRequest{Graph: gkey, Plan: pkey, Seed: &seed}
					var dr DecomposeResponse
					postJSON(t, ts.URL+"/v1/decompose", req, &dr)
					if dr.CacheHit {
						t.Fatalf("unexpected hit on first life: %+v", req)
					}
					body, _ := json.Marshal(dr.Partition)
					work = append(work, workload{req: req, body: body})
				}
			}
		}
		if n, err := s.Flush(); err != nil || n != len(work) {
			t.Fatalf("flush: n=%d err=%v (want %d)", n, err, len(work))
		}
		ts.Close()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Second life: same store path, fresh process state.
	s2 := New(Options{Workers: 2, StorePath: store})
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Close() }()

	// Registries came back without any re-registration.
	var st StatsResponse
	getJSON(t, ts2.URL+"/v1/stats", &st)
	if st.Graphs != 2 || st.Plans != 2 {
		t.Fatalf("registries not recovered: %+v", st)
	}
	if st.Store == nil || st.Store.Restored != len(work) || st.Store.RecoveryError != "" {
		t.Fatalf("store info: %+v", st.Store)
	}

	// Every pre-restart request is now a warm hit with identical bytes.
	for _, w := range work {
		var dr DecomposeResponse
		postJSON(t, ts2.URL+"/v1/decompose", w.req, &dr)
		if !dr.CacheHit {
			t.Fatalf("post-restart miss for %+v", w.req)
		}
		got, _ := json.Marshal(dr.Partition)
		if !bytes.Equal(got, w.body) {
			t.Fatalf("post-restart partition differs for %+v", w.req)
		}
	}
	getJSON(t, ts2.URL+"/v1/stats", &st)
	if st.Session.Misses != 0 {
		t.Fatalf("restart caused %d recomputes", st.Session.Misses)
	}
	if st.Session.Hits != uint64(len(work)) {
		t.Fatalf("want %d hits, got %d", len(work), st.Session.Hits)
	}
}

// TestCorruptStoreBootsCold: a damaged snapshot is rejected at boot — the
// server starts empty, records the recovery error, and keeps serving.
func TestCorruptStoreBootsCold(t *testing.T) {
	store := filepath.Join(t.TempDir(), "netdecomp.snap")
	{
		s := New(Options{Workers: 2, StorePath: store})
		ts := httptest.NewServer(s.Handler())
		gk, pk := register(t, ts.URL)
		var dr DecomposeResponse
		postJSON(t, ts.URL+"/v1/decompose", DecomposeRequest{Graph: gk, Plan: pk}, &dr)
		ts.Close()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Flip one byte in the middle of the payload.
	raw, err := os.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(store, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := New(Options{Workers: 2, StorePath: store})
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Close() }()

	var st StatsResponse
	getJSON(t, ts2.URL+"/v1/stats", &st)
	if st.Store == nil || st.Store.RecoveryError == "" {
		t.Fatalf("corrupt store not reported: %+v", st.Store)
	}
	if st.Store.Restored != 0 || st.Graphs != 0 || st.Plans != 0 || st.Session.Cached != 0 {
		t.Fatalf("corrupt store must boot cold: %+v", st)
	}
	// The server still works: register and decompose fresh.
	gk, pk := register(t, ts2.URL)
	var dr DecomposeResponse
	postJSON(t, ts2.URL+"/v1/decompose", DecomposeRequest{Graph: gk, Plan: pk}, &dr)
	if dr.CacheHit || dr.Partition == nil {
		t.Fatalf("cold server broken after corrupt recovery: %+v", dr)
	}
	// A later flush overwrites the damaged file with a good one.
	if _, err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	s3 := New(Options{Workers: 2, StorePath: store})
	defer s3.Close()
	if got := s3.Session().Stats().Cached; got != 1 {
		t.Fatalf("re-flushed store should recover 1 entry, got %d", got)
	}
}

// TestManualFlushEndpoint: POST /v1/store/flush persists on demand and
// reports the entry count; without a store it is a 404-free no-op error.
func TestManualFlushEndpoint(t *testing.T) {
	store := filepath.Join(t.TempDir(), "netdecomp.snap")
	s := New(Options{Workers: 2, StorePath: store})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()
	gk, pk := register(t, ts.URL)
	var dr DecomposeResponse
	postJSON(t, ts.URL+"/v1/decompose", DecomposeRequest{Graph: gk, Plan: pk}, &dr)

	var out struct {
		Entries int `json:"entries"`
	}
	if resp := postJSON(t, ts.URL+"/v1/store/flush", struct{}{}, &out); resp.StatusCode != 200 {
		t.Fatalf("flush: status %d", resp.StatusCode)
	}
	if out.Entries != 1 {
		t.Fatalf("flush entries: %d", out.Entries)
	}
	if _, err := os.Stat(store); err != nil {
		t.Fatalf("store file missing after flush: %v", err)
	}

	// Storeless server: the endpoint reports a client error, not a crash.
	s2, ts2 := newTestServer(t, Options{Workers: 1})
	_ = s2
	if resp := postJSON(t, ts2.URL+"/v1/store/flush", struct{}{}, nil); resp.StatusCode == 200 {
		t.Fatal("flush on storeless server should fail")
	}
}

// TestRecoveryDropsTamperedMeta: fingerprint verification — a snapshot
// whose recorded graph cannot be rebuilt to matching bytes is dropped
// entry-by-entry without failing the boot.
func TestRecoveryDropsTamperedMeta(t *testing.T) {
	store := filepath.Join(t.TempDir(), "netdecomp.snap")
	s := New(Options{Workers: 2, StorePath: store})
	ts := httptest.NewServer(s.Handler())
	registerGraph(t, ts.URL, GraphSpec{Family: "gnp", N: 128, Seed: 7})
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Forge the snapshot: same cache (empty), but the graph record claims a
	// fingerprint its spec does not rebuild to. Write it through the real
	// session codec so the integrity hash is valid — only the meta lies.
	forged := forgeMetaSnapshot(t)
	if err := os.WriteFile(store, forged, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := New(Options{Workers: 2, StorePath: store})
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	var st StatsResponse
	getJSON(t, ts2.URL+"/v1/stats", &st)
	if st.Graphs != 0 {
		t.Fatalf("tampered graph record must be dropped, got %d graphs", st.Graphs)
	}
	if st.Store == nil || st.Store.RecoveryError != "" {
		t.Fatalf("meta tampering is per-entry, not a boot failure: %+v", st.Store)
	}
}
