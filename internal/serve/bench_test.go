package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netdecomp/internal/resilience"
)

// benchServer boots a server with a pre-registered gnp graph and
// forced-complete elkin-neiman plan, returning the base URL and keys.
func benchServer(b *testing.B, opts Options) (base, gk, pk string) {
	b.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(func() {
		ts.Close()
		_ = s.Close()
	})
	post := func(path string, body any, out any) {
		data, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			b.Fatal(err)
		}
	}
	var gi GraphInfo
	post("/v1/graphs", GraphSpec{Family: "gnp", N: 1024, Seed: 1}, &gi)
	var pi PlanInfo
	post("/v1/plans", PlanSpec{Algorithm: "elkin-neiman", ForceComplete: true}, &pi)
	benchServers.Store(ts.URL, s)
	return ts.URL, gi.Fingerprint, pi.Plan
}

// BenchmarkServeWarmHit measures the full warm serving path — HTTP round
// trip, cache lookup, partition clone, stable JSON response — the p50/p99
// numbers BENCH_serve.json gates.
func BenchmarkServeWarmHit(b *testing.B) {
	base, gk, pk := benchServer(b, Options{Workers: 2})
	body, _ := json.Marshal(DecomposeRequest{Graph: gk, Plan: pk})
	client := &http.Client{}
	// Prime the cache with the one execution.
	warmupOnce(b, client, base, body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var dr DecomposeResponse
		doBenchRequest(b, client, base, body, &dr)
		if !dr.CacheHit {
			b.Fatal("warm path missed the cache")
		}
	}
}

// BenchmarkServeColdMiss measures the full cold path: every request uses a
// fresh seed, so the engine executes each time (dominated by the
// decomposition itself, reported for scale against the warm path).
func BenchmarkServeColdMiss(b *testing.B) {
	base, gk, pk := benchServer(b, Options{Workers: 2, CacheSize: 4})
	client := &http.Client{}
	var seedAt atomic.Uint64
	seedAt.Store(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := seedAt.Add(1)
		body, _ := json.Marshal(DecomposeRequest{Graph: gk, Plan: pk, Seed: &seed})
		var dr DecomposeResponse
		doBenchRequest(b, client, base, body, &dr)
		if dr.CacheHit {
			b.Fatal("cold path hit the cache")
		}
	}
}

// BenchmarkResilienceWarmHitUnderSaturation measures the warm-hit path
// while the decompose admission gate is fully saturated at 4× capacity —
// the ISSUE's guarantee that cache hits bypass admission entirely, so a
// saturated gate costs them nothing. Saturation is synthetic: the slots
// and queue are held directly through the governor, with overflow
// acquirers parked exactly like queued cold requests.
func BenchmarkResilienceWarmHitUnderSaturation(b *testing.B) {
	const slots = 2
	base, gk, pk := benchServer(b, Options{Workers: 2, Resilience: resilience.Options{
		Decompose: resilience.GateConfig{Slots: slots, Queue: slots},
	}})
	body, _ := json.Marshal(DecomposeRequest{Graph: gk, Plan: pk})
	client := &http.Client{}
	warmupOnce(b, client, base, body)

	// 4× saturation: fill every slot, every queue position, and park
	// twice capacity more in overflow-rejected retry loops.
	s := serverOf(b, base)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 4*slots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				release, err := s.gov.Acquire(ctx, resilience.ClassDecompose)
				if err != nil {
					// A real rejected client backs off before retrying;
					// spinning would just starve the process.
					time.Sleep(200 * time.Microsecond)
					continue
				}
				<-ctx.Done()
				release()
			}
		}()
	}
	defer wg.Wait()
	for s.gov.InFlight() < slots {
		time.Sleep(time.Millisecond)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var dr DecomposeResponse
		doBenchRequest(b, client, base, body, &dr)
		if !dr.CacheHit {
			b.Fatal("warm path missed the cache under saturation")
		}
	}
	b.StopTimer()
	cancel()
}

// benchServers tracks the *Server behind each benchServer base URL so
// saturation benchmarks can reach the governor directly.
var benchServers sync.Map

func serverOf(b *testing.B, base string) *Server {
	b.Helper()
	v, ok := benchServers.Load(base)
	if !ok {
		b.Fatal("unknown bench server")
	}
	return v.(*Server)
}

func warmupOnce(b *testing.B, client *http.Client, base string, body []byte) {
	b.Helper()
	var dr DecomposeResponse
	doBenchRequest(b, client, base, body, &dr)
	if dr.Partition == nil {
		b.Fatal("warmup produced no partition")
	}
}

func doBenchRequest(b *testing.B, client *http.Client, base string, body []byte, out *DecomposeResponse) {
	b.Helper()
	resp, err := client.Post(base+"/v1/decompose", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		b.Fatalf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		b.Fatal(err)
	}
}
