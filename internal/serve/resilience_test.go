package serve

// The serving layer's resilience contracts: admission control (429 +
// Retry-After), load shedding while degraded (warm hits still served),
// graceful drain (/readyz flip, completed-vs-abandoned accounting),
// deadline classification (504 vs 499), handler panic isolation, the SSE
// disconnect slot release, and the snapshot flush retry ladder. The
// chaos acceptance test at the bottom composes all of them under the
// deterministic fault injector.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netdecomp/internal/decomp"
	"netdecomp/internal/graph"
	"netdecomp/internal/resilience"
	"netdecomp/internal/session"
)

// blocker is a registrable decomposer that parks until released (or its
// ctx expires — it is deadline-well-behaved). Registration outlives the
// test, so the blocker is disarmed at test end and acts as a valid
// deterministic decomposer afterwards.
type blocker struct {
	name    string
	started chan struct{} // one buffered signal per run
	release chan struct{}
	armed   atomic.Bool
	runs    atomic.Int64
}

func registerBlocker(t *testing.T, name string) *blocker {
	t.Helper()
	b := &blocker{name: name, started: make(chan struct{}, 64), release: make(chan struct{})}
	b.armed.Store(true)
	t.Cleanup(func() { b.armed.Store(false) })
	decomp.Register(decomp.Func{AlgorithmName: name, Run: b.run})
	return b
}

func onePartition(name string, g graph.Interface) *decomp.Partition {
	members := make([]int, g.N())
	for v := range members {
		members[v] = v
	}
	return &decomp.Partition{
		Algorithm: name,
		N:         g.N(),
		Clusters:  []decomp.Cluster{{Members: members}},
		ClusterOf: make([]int, g.N()),
		Colors:    1,
		Complete:  true,
		Mode:      decomp.StrongDiameter,
	}
}

func (b *blocker) run(ctx context.Context, g graph.Interface, cfg decomp.Config) (*decomp.Partition, error) {
	if !b.armed.Load() {
		return onePartition(b.name, g), nil
	}
	b.runs.Add(1)
	select {
	case b.started <- struct{}{}:
	default:
	}
	select {
	case <-b.release:
		return onePartition(b.name, g), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// registerBlockerWorkload registers a small graph and a plan over the
// blocker algorithm, returning their keys.
func registerBlockerWorkload(t *testing.T, base, algo string) (gk, pk string) {
	t.Helper()
	var gi GraphInfo
	if resp := postJSON(t, base+"/v1/graphs", GraphSpec{Family: "grid", N: 16, Seed: 1}, &gi); resp.StatusCode != 200 {
		t.Fatalf("register graph: status %d", resp.StatusCode)
	}
	var pi PlanInfo
	if resp := postJSON(t, base+"/v1/plans", PlanSpec{Algorithm: algo}, &pi); resp.StatusCode != 200 {
		t.Fatalf("register plan: status %d", resp.StatusCode)
	}
	return gi.Fingerprint, pi.Plan
}

func seedOf(v uint64) *uint64 { return &v }

// waitUntil polls cond for up to 2 seconds.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAdmissionSaturation429 pins the gate semantics on the decompose
// endpoint: one slot admits, one queue position waits, the next request
// is answered 429 with a Retry-After header — and queued work completes
// once the slot frees.
func TestAdmissionSaturation429(t *testing.T) {
	b := registerBlocker(t, "test/serve-blocker-sat")
	s, ts := newTestServer(t, Options{Workers: 4, Resilience: resilience.Options{
		Decompose: resilience.GateConfig{Slots: 1, Queue: 1, RetryAfter: 2 * time.Second},
	}})
	gk, pk := registerBlockerWorkload(t, ts.URL, b.name)

	codes := make(chan int, 2)
	for i := uint64(1); i <= 2; i++ {
		go func(seed uint64) {
			var dr DecomposeResponse
			resp := postJSON(t, ts.URL+"/v1/decompose", DecomposeRequest{Graph: gk, Plan: pk, Seed: seedOf(seed)}, &dr)
			codes <- resp.StatusCode
		}(i)
	}
	<-b.started // the slot holder is executing
	// Wait until the second request holds the single queue position: a
	// probe with an expired context reports ErrSaturated exactly when the
	// queue is full (it can neither admit nor reserve the queue).
	waitUntil(t, "queue occupancy", func() bool {
		expired, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := s.gov.Acquire(expired, resilience.ClassDecompose)
		return errors.Is(err, resilience.ErrSaturated)
	})

	resp := postJSON(t, ts.URL+"/v1/decompose", DecomposeRequest{Graph: gk, Plan: pk, Seed: seedOf(3)}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	if s.cRejected.Value() == 0 {
		t.Fatal("serve.rejected did not count the 429")
	}

	close(b.release)
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("admitted request %d: status %d, want 200", i, code)
		}
	}
}

// TestShedDegradedServesWarm pins graceful degradation: past the shed
// watermark cold misses answer 429, while cache hits — which hold no
// worker — keep serving.
func TestShedDegradedServesWarm(t *testing.T) {
	b := registerBlocker(t, "test/serve-blocker-shed")
	s, ts := newTestServer(t, Options{Workers: 4, Resilience: resilience.Options{
		ShedWatermark: 1,
	}})
	gk, pk := registerBlockerWorkload(t, ts.URL, b.name)
	// Warm one key while healthy.
	var warm PlanInfo
	postJSON(t, ts.URL+"/v1/plans", PlanSpec{Algorithm: "elkin-neiman", ForceComplete: true}, &warm)
	var dr DecomposeResponse
	if resp := postJSON(t, ts.URL+"/v1/decompose", DecomposeRequest{Graph: gk, Plan: warm.Plan}, &dr); resp.StatusCode != 200 {
		t.Fatalf("warming: status %d", resp.StatusCode)
	}

	done := make(chan int, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/v1/decompose", DecomposeRequest{Graph: gk, Plan: pk}, nil)
		done <- resp.StatusCode
	}()
	<-b.started
	waitUntil(t, "degraded flag", s.Degraded)

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Resilience == nil || !st.Resilience.Governor.Degraded {
		t.Fatalf("stats resilience block = %+v, want degraded=true", st.Resilience)
	}

	// Cache hit: still served while degraded.
	var hit DecomposeResponse
	if resp := postJSON(t, ts.URL+"/v1/decompose", DecomposeRequest{Graph: gk, Plan: warm.Plan}, &hit); resp.StatusCode != 200 || !hit.CacheHit {
		t.Fatalf("warm hit while degraded: status %d cacheHit %v, want 200 hit", resp.StatusCode, hit.CacheHit)
	}
	// Cold miss: shed.
	resp := postJSON(t, ts.URL+"/v1/decompose", DecomposeRequest{Graph: gk, Plan: warm.Plan, Seed: seedOf(99)}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("cold miss while degraded: status %d, want 429", resp.StatusCode)
	}
	if s.cShed.Value() != 1 {
		t.Fatalf("serve.shed = %d, want 1", s.cShed.Value())
	}

	close(b.release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("blocked request: status %d, want 200", code)
	}
	waitUntil(t, "recovery", func() bool { return !s.Degraded() })
}

// TestDrainReadyzAndAccounting pins graceful shutdown: StartDrain flips
// /readyz to 503 and rejects new admissions with 503, Drain reports
// completed vs abandoned, and already-admitted work still completes.
func TestDrainReadyzAndAccounting(t *testing.T) {
	b := registerBlocker(t, "test/serve-blocker-drain")
	s, ts := newTestServer(t, Options{Workers: 2})
	gk, pk := registerBlockerWorkload(t, ts.URL, b.name)

	var ready map[string]string
	if resp := getJSON(t, ts.URL+"/readyz", &ready); resp.StatusCode != 200 || ready["status"] != "ready" {
		t.Fatalf("readyz before drain: %d %v", resp.StatusCode, ready)
	}

	done := make(chan int, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/v1/decompose", DecomposeRequest{Graph: gk, Plan: pk}, nil)
		done <- resp.StatusCode
	}()
	<-b.started

	completed, abandoned := s.Drain(50 * time.Millisecond)
	if completed != 0 || abandoned != 1 {
		t.Fatalf("Drain = (%d completed, %d abandoned), want (0, 1)", completed, abandoned)
	}
	if resp := getJSON(t, ts.URL+"/readyz", &ready); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/decompose", DecomposeRequest{Graph: gk, Plan: pk, Seed: seedOf(2)}, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("decompose while draining: %d, want 503", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/graphs", GraphSpec{Family: "gnp", N: 32, Seed: 9}, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("register while draining: %d, want 503", resp.StatusCode)
	}

	// The admitted request still runs to completion.
	close(b.release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d, want 200", code)
	}
	if remaining := s.gov.WaitIdle(2 * time.Second); remaining != 0 {
		t.Fatalf("WaitIdle after release: %d still in flight", remaining)
	}
}

// TestDeadline504 pins server-side budget classification: a request
// whose budget expires — via JSON field, header, or the server default —
// answers 504 and counts in serve.deadline.timeouts.
func TestDeadline504(t *testing.T) {
	b := registerBlocker(t, "test/serve-blocker-deadline")
	s, ts := newTestServer(t, Options{Workers: 2, Resilience: resilience.Options{
		Deadline: resilience.DeadlinePolicy{Default: 10 * time.Second, Max: 10 * time.Second},
	}})
	gk, pk := registerBlockerWorkload(t, ts.URL, b.name)
	defer close(b.release)

	resp := postJSON(t, ts.URL+"/v1/decompose", DecomposeRequest{Graph: gk, Plan: pk, DeadlineMs: 30}, nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("body deadline: status %d, want 504", resp.StatusCode)
	}
	// Header form: a fresh seed (the expired key cached nothing, but a new
	// key proves the path without dedup interplay).
	body := fmt.Sprintf(`{"graph":%q,"plan":%q,"seed":2}`, gk, pk)
	req, _ := http.NewRequest("POST", ts.URL+"/v1/decompose", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Deadline-Ms", "30")
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("header deadline: status %d, want 504", hresp.StatusCode)
	}
	if got := s.cTimeouts.Value(); got != 2 {
		t.Fatalf("serve.deadline.timeouts = %d, want 2", got)
	}
}

// TestClientCancel499 pins the other half of the classification: a
// client that disconnects mid-execution counts as a client cancel, not a
// timeout and not an unexplained 5xx.
func TestClientCancel499(t *testing.T) {
	b := registerBlocker(t, "test/serve-blocker-cancel")
	s, ts := newTestServer(t, Options{Workers: 2})
	gk, pk := registerBlockerWorkload(t, ts.URL, b.name)
	defer close(b.release)

	ctx, cancel := context.WithCancel(context.Background())
	body := fmt.Sprintf(`{"graph":%q,"plan":%q}`, gk, pk)
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/decompose", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	<-b.started
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("cancelled request returned a response, want transport error")
	}
	waitUntil(t, "client-cancel accounting", func() bool { return s.cClientCancels.Value() >= 1 })
	if s.cTimeouts.Value() != 0 {
		t.Fatalf("serve.deadline.timeouts = %d, want 0 (this was a client cancel)", s.cTimeouts.Value())
	}
}

// TestInstrumentPanicRecovery pins the middleware: a panicking handler
// answers 500, counts in serve.handler.panics, and the server keeps
// serving afterwards.
func TestInstrumentPanicRecovery(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	h := s.instrument(func(http.ResponseWriter, *http.Request) { panic("boom") })
	rr := httptest.NewRecorder()
	h(rr, httptest.NewRequest("GET", "/panic", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "panicked") {
		t.Fatalf("panicking handler body = %q, want panic error document", rr.Body.String())
	}
	if s.cPanics.Value() != 1 {
		t.Fatalf("serve.handler.panics = %d, want 1", s.cPanics.Value())
	}
	var hl map[string]string
	if resp := getJSON(t, ts.URL+"/healthz", &hl); resp.StatusCode != 200 {
		t.Fatalf("healthz after panic: %d", resp.StatusCode)
	}
}

// TestSSEDisconnectReleasesSlot pins the streaming satellite: a client
// that disconnects mid-stream releases its admission slot and SSE
// observer immediately — the slot readmits new work while the abandoned
// execution is still running.
func TestSSEDisconnectReleasesSlot(t *testing.T) {
	b := registerBlocker(t, "test/serve-blocker-sse")
	s, ts := newTestServer(t, Options{Workers: 4, Resilience: resilience.Options{
		Decompose: resilience.GateConfig{Slots: 1},
	}})
	gk, pk := registerBlockerWorkload(t, ts.URL, b.name)

	ctx, cancel := context.WithCancel(context.Background())
	body := fmt.Sprintf(`{"graph":%q,"plan":%q}`, gk, pk)
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/decompose/stream", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			_, err = resp.Body.Read(make([]byte, 1)) // block on the stream
			resp.Body.Close()
		}
		errCh <- err
	}()
	<-b.started
	waitUntil(t, "sse stream active", func() bool { return s.gSSEActive.Value() == 1 })
	cancel()
	<-errCh
	// The slot and the stream release while the execution still blocks.
	waitUntil(t, "sse slot release", func() bool {
		return s.gSSEActive.Value() == 0 && s.gov.InFlight() == 0
	})
	if got := b.runs.Load(); got != 1 {
		t.Fatalf("blocker runs = %d, want 1 (execution still owned by the session)", got)
	}
	// The freed slot admits new work immediately.
	done := make(chan int, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/v1/decompose", DecomposeRequest{Graph: gk, Plan: pk, Seed: seedOf(7)}, nil)
		done <- resp.StatusCode
	}()
	waitUntil(t, "readmission", func() bool { return b.runs.Load() == 2 })
	close(b.release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("readmitted request: status %d, want 200", code)
	}
}

// TestFlushRetry pins the snapshot retry ladder: an injected flush fault
// costs a backoff retry, not a lost snapshot; a persistent fault exhausts
// the attempts and surfaces as a flush error.
func TestFlushRetry(t *testing.T) {
	inj := resilience.NewInjector(resilience.InjectorConfig{Seed: 1, FlushErrorRate: 1})
	dir := t.TempDir()
	s, _ := newTestServer(t, Options{
		Workers:    2,
		StorePath:  filepath.Join(dir, "store.snap"),
		Injector:   inj,
		FlushRetry: resilience.Backoff{Attempts: 3, Base: time.Millisecond, Jitter: 0},
	})
	// The sleep seam heals the fault after the first failed attempt: the
	// flush must succeed on attempt two and count one retry.
	s.store.sleep = func(time.Duration) { inj.SetEnabled(false) }
	if _, err := s.Flush(); err != nil {
		t.Fatalf("flush with healing fault: %v", err)
	}
	if got := s.rec.Counter("serve.store.flush_retries").Value(); got != 1 {
		t.Fatalf("flush_retries = %d, want 1", got)
	}
	if got := inj.Stats().FlushErrors; got != 1 {
		t.Fatalf("injected flush errors = %d, want 1", got)
	}

	// A persistent fault exhausts all attempts.
	inj.SetEnabled(true)
	s.store.sleep = func(time.Duration) {}
	if _, err := s.Flush(); err == nil {
		t.Fatal("flush under persistent fault succeeded, want error")
	}
	if got := s.rec.Counter("serve.store.flush_retries").Value(); got != 3 {
		t.Fatalf("flush_retries = %d, want 3 (1 + 2 more)", got)
	}
	if got := s.rec.Counter("serve.store.flush_errors").Value(); got != 1 {
		t.Fatalf("flush_errors = %d, want 1", got)
	}
	inj.SetEnabled(false)
}

// TestChaosAcceptance is the ISSUE's acceptance scenario, scaled to test
// time: prime a warm working set, then run mixed load through an episode
// of injected latency spikes, decomposer errors, panics, and flush
// faults. Warm hits must all succeed; cold misses may succeed, shed
// (429), time out (504), or fail with an *explained* 5xx (the injected
// fault's message); degradation must be observed during the episode and
// must clear after it; and the post-episode snapshot must pass the
// store's integrity verification.
func TestChaosAcceptance(t *testing.T) {
	inj := resilience.NewInjector(resilience.InjectorConfig{
		Seed:           42,
		LatencyRate:    1.0,
		Latency:        20 * time.Millisecond,
		ErrorRate:      0.10,
		PanicRate:      0.10,
		FlushErrorRate: 0.10,
	})
	inj.SetEnabled(false) // prime phase runs clean
	dir := t.TempDir()
	storePath := filepath.Join(dir, "chaos.snap")
	s, ts := newTestServer(t, Options{
		Workers:   4,
		StorePath: storePath,
		Injector:  inj,
		Resilience: resilience.Options{
			Decompose:     resilience.GateConfig{Slots: 4, Queue: 8},
			ShedWatermark: 1,
			Deadline:      resilience.DeadlinePolicy{Default: 5 * time.Second},
		},
		FlushRetry: resilience.Backoff{Attempts: 4, Base: time.Millisecond, Jitter: 0},
	})
	gk, pk := register(t, ts.URL)

	// Prime: warm a working set of 4 seeds.
	const warmSeeds = 4
	for seed := uint64(1); seed <= warmSeeds; seed++ {
		var dr DecomposeResponse
		if resp := postJSON(t, ts.URL+"/v1/decompose", DecomposeRequest{Graph: gk, Plan: pk, Seed: seedOf(seed)}, &dr); resp.StatusCode != 200 {
			t.Fatalf("priming seed %d: status %d", seed, resp.StatusCode)
		}
	}

	// Episode: faults on, mixed warm and cold load.
	inj.SetEnabled(true)
	var (
		sawDegraded atomic.Bool
		violations  atomic.Int64
		wg          sync.WaitGroup
	)
	stopWatch := make(chan struct{})
	go func() {
		for {
			select {
			case <-stopWatch:
				return
			default:
			}
			if s.Degraded() {
				sawDegraded.Store(true)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	const clients, perClient = 8, 8
	var coldSeed atomic.Uint64
	coldSeed.Store(1000)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if c%2 == 0 {
					// Warm traffic: cache hits must survive every fault.
					seed := uint64(1 + (c+i)%warmSeeds)
					var dr DecomposeResponse
					resp := postJSON(t, ts.URL+"/v1/decompose", DecomposeRequest{Graph: gk, Plan: pk, Seed: seedOf(seed)}, &dr)
					if resp.StatusCode != 200 || !dr.CacheHit {
						t.Errorf("warm hit during chaos: status %d cacheHit %v", resp.StatusCode, dr.CacheHit)
						violations.Add(1)
					}
					continue
				}
				// Cold traffic: succeed, shed, time out, or fail explained.
				var errDoc errorResponse
				resp := postJSON(t, ts.URL+"/v1/decompose",
					DecomposeRequest{Graph: gk, Plan: pk, Seed: seedOf(coldSeed.Add(1))}, &errDoc)
				switch resp.StatusCode {
				case http.StatusOK, http.StatusTooManyRequests, http.StatusGatewayTimeout:
				case http.StatusInternalServerError:
					if !strings.Contains(errDoc.Error, "inject") && !strings.Contains(errDoc.Error, "panicked") {
						t.Errorf("unexplained 500 during chaos: %q", errDoc.Error)
						violations.Add(1)
					}
				default:
					t.Errorf("cold request during chaos: unexpected status %d (%q)", resp.StatusCode, errDoc.Error)
					violations.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	close(stopWatch)
	if violations.Load() != 0 {
		t.Fatalf("chaos episode: %d violations", violations.Load())
	}
	if !sawDegraded.Load() {
		t.Fatal("degraded=true never observed during the episode")
	}
	st := inj.Stats()
	if st.Latencies == 0 {
		t.Fatal("no latency faults delivered — the episode did not exercise the injector")
	}

	// Recovery: faults off, load gone — the server must converge.
	inj.SetEnabled(false)
	waitUntil(t, "degraded to clear", func() bool { return !s.Degraded() && s.gov.InFlight() == 0 })
	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Resilience == nil || stats.Resilience.Governor.Degraded {
		t.Fatalf("post-episode stats: %+v, want degraded=false", stats.Resilience)
	}
	if stats.Session.ExecPanics == 0 && st.Panics > 0 {
		t.Fatalf("injected %d panics but session counted none — isolation untested", st.Panics)
	}
	// The snapshot flushes (riding the retry ladder) and verifies.
	n, err := s.Flush()
	if err != nil {
		t.Fatalf("post-episode flush: %v", err)
	}
	if n < warmSeeds {
		t.Fatalf("flushed %d entries, want at least the %d warm keys", n, warmSeeds)
	}
	f, err := os.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := session.ReadSnapshot(f)
	if err != nil {
		t.Fatalf("snapshot failed integrity verification: %v", err)
	}
	if len(snap.Entries) != n {
		t.Fatalf("snapshot holds %d entries, flush reported %d", len(snap.Entries), n)
	}
}
