package serve

// The persistent result store. The session layer owns the file format —
// gob+gzip behind a SHA-256 integrity hash with atomic rename (see
// internal/session/persistence.go) — and this file owns the serving
// daemon's use of it: what else rides in the snapshot, when flushes
// happen, and what recovery does on boot.
//
// The snapshot's opaque Meta blob carries the serve registries, so a
// restart restores the whole serving surface, not just the cache:
//
//   - plan specs recompile (cheap, and PlanKey is content-derived, so the
//     recompiled plan lands on the same key);
//   - generator graphs rebuild from their spec (deterministic in seed);
//   - uploaded graphs rebuild from their persisted flat edge list.
//
// Every rebuilt graph is verified against its recorded fingerprint — an
// entry that rebuilds to different bytes (a generator changed, a partial
// write the hash somehow missed) is dropped, never served.
//
// Flushes happen on a timer (Options.FlushInterval), on demand
// (POST /v1/store/flush), and on Close — so a clean shutdown never loses
// the warm cache, and a crash loses at most one interval.

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
	"netdecomp/internal/resilience"
)

// graphRecord persists one registered graph: the spec for generator
// graphs, the flat edge list for uploads.
type graphRecord struct {
	Fingerprint uint64
	Source      string
	Spec        *GraphSpec
	N           int
	Edges       []int32 // uploads and mutated versions: flat (u,v) pairs
	// Version/Parent carry the mutation lineage of versioned graph keys
	// (see mutate.go); zero values for as-registered graphs.
	Version uint64
	Parent  string
}

// serveMeta is the registry payload carried in Snapshot.Meta.
type serveMeta struct {
	Graphs []graphRecord
	Plans  []PlanSpec
}

// persister drives the store lifecycle for one Server.
type persister struct {
	s        *Server
	path     string
	interval time.Duration
	retry    resilience.Backoff
	rng      *randx.SplitMix64   // backoff jitter source
	sleep    func(time.Duration) // test seam; nil = real sleeping

	mu         sync.Mutex
	flushes    int64
	lastCount  int
	restored   int
	recoveryEr string

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}
}

func newPersister(s *Server, path string, interval time.Duration, retry resilience.Backoff) *persister {
	return &persister{s: s, path: path, interval: interval, retry: retry,
		rng:    randx.New(0),
		stopCh: make(chan struct{}), doneCh: make(chan struct{})}
}

// start launches the periodic flush loop (no-op without an interval).
func (p *persister) start() {
	if p.interval <= 0 {
		close(p.doneCh)
		return
	}
	go func() {
		defer close(p.doneCh)
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if _, err := p.flush(); err != nil {
					p.s.logf("serve: periodic flush: %v", err)
				}
			case <-p.stopCh:
				return
			}
		}
	}()
}

// stop halts the flush loop and writes the final shutdown snapshot.
func (p *persister) stop() error {
	p.stopOnce.Do(func() { close(p.stopCh) })
	<-p.doneCh
	_, err := p.flush()
	return err
}

// flush snapshots the session cache plus the serve registries to disk.
// A failed write retries with exponential backoff and jitter (Options.
// FlushRetry): a transient disk hiccup — or an injected chaos fault —
// costs a delay, not a lost snapshot interval.
func (p *persister) flush() (int, error) {
	meta, err := p.s.encodeMeta()
	if err != nil {
		return 0, err
	}
	var n int
	attempts, err := resilience.Retry(context.Background(), p.retry, p.rng, p.sleep, func() error {
		if inj := p.s.injector; inj != nil {
			if ferr := inj.FlushError(); ferr != nil {
				return ferr
			}
		}
		var werr error
		n, werr = p.s.sess.SnapshotToFile(p.path, meta)
		return werr
	})
	if attempts > 1 {
		p.s.rec.Counter("serve.store.flush_retries").Add(int64(attempts - 1))
	}
	if err != nil {
		p.s.rec.Counter("serve.store.flush_errors").Inc()
		return 0, err
	}
	p.mu.Lock()
	p.flushes++
	p.lastCount = n
	p.mu.Unlock()
	p.s.rec.Counter("serve.store.flushes").Inc()
	p.s.rec.Gauge("serve.store.entries").Set(int64(n))
	return n, nil
}

// recover loads the snapshot on boot: registries first (so recovered
// cache keys have graphs and plans to resolve against), then the cache
// itself via session.SeedCache. Corruption is terminal for the snapshot
// but not the server — log, count, serve cold.
func (p *persister) recover() {
	meta, restored, err := p.s.sess.RecoverFromFile(p.path)
	if err != nil {
		p.s.logf("serve: recovery rejected %s: %v (booting cold)", p.path, err)
		p.s.rec.Counter("serve.store.recovery_errors").Inc()
		p.mu.Lock()
		p.recoveryEr = err.Error()
		p.mu.Unlock()
		return
	}
	p.mu.Lock()
	p.restored = restored
	p.mu.Unlock()
	p.s.rec.Counter("session.restored") // touch so the metric exists even at 0
	if meta != nil {
		if err := p.s.restoreMeta(meta); err != nil {
			p.s.logf("serve: restoring registries: %v", err)
		}
	}
	if restored > 0 || meta != nil {
		p.s.logf("serve: recovered %d cached partitions from %s", restored, p.path)
	}
}

// info reports the store state for /v1/stats.
func (p *persister) info() *StoreInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	return &StoreInfo{
		Path:             p.path,
		Restored:         p.restored,
		Flushes:          p.flushes,
		LastFlushEntries: p.lastCount,
		RecoveryError:    p.recoveryEr,
	}
}

// encodeMeta gobs the current registries.
func (s *Server) encodeMeta() ([]byte, error) {
	s.mu.RLock()
	m := serveMeta{
		Graphs: make([]graphRecord, 0, len(s.graphs)),
		Plans:  make([]PlanSpec, 0, len(s.plans)),
	}
	for fp, e := range s.graphs {
		rec := graphRecord{Fingerprint: fp, Source: e.info.Source, Spec: e.info.Spec, N: e.g.N(),
			Version: e.info.Version, Parent: e.info.Parent}
		if e.info.Spec == nil {
			// Uploads and mutated versions persist by content: the flat edge
			// list is the only faithful record once no spec describes them.
			rec.Edges = flattenEdges(e.g)
		}
		m.Graphs = append(m.Graphs, rec)
	}
	for _, e := range s.plans {
		m.Plans = append(m.Plans, e.info.Spec)
	}
	s.mu.RUnlock()
	// Deterministic order keeps snapshot contents stable for equal state.
	sortByString(m.Graphs, func(r graphRecord) string { return keyString(r.Fingerprint) })
	sortByString(m.Plans, func(sp PlanSpec) string { return fmt.Sprintf("%+v", sp) })
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("serve: encoding registries: %w", err)
	}
	return buf.Bytes(), nil
}

// restoreMeta rebuilds the registries from a recovered snapshot. Each
// entry is independent: one bad record is dropped (logged) without
// poisoning the rest.
func (s *Server) restoreMeta(meta []byte) error {
	var m serveMeta
	if err := gob.NewDecoder(bytes.NewReader(meta)).Decode(&m); err != nil {
		return fmt.Errorf("decoding registries: %w", err)
	}
	for _, rec := range m.Graphs {
		var (
			g   *graph.Graph
			err error
		)
		if rec.Spec != nil {
			g, err = rec.Spec.Build()
		} else {
			g = rebuildUpload(rec.N, rec.Edges)
		}
		if err != nil {
			s.logf("serve: dropping recovered graph %s: %v", keyString(rec.Fingerprint), err)
			continue
		}
		if g.Fingerprint() != rec.Fingerprint {
			s.logf("serve: dropping recovered graph %s: rebuilt fingerprint %s differs",
				keyString(rec.Fingerprint), keyString(g.Fingerprint()))
			s.rec.Counter("serve.store.fingerprint_mismatches").Inc()
			continue
		}
		info := GraphInfo{Fingerprint: keyString(rec.Fingerprint), N: g.N(), M: graph.EdgeCount(g),
			Source: rec.Source, Spec: rec.Spec, Version: rec.Version, Parent: rec.Parent}
		s.mu.Lock()
		s.graphs[rec.Fingerprint] = &graphEntry{g: g, info: info}
		s.mu.Unlock()
	}
	for _, spec := range m.Plans {
		pl, err := spec.Compile()
		if err != nil {
			s.logf("serve: dropping recovered plan %+v: %v", spec, err)
			continue
		}
		info := PlanInfo{Plan: keyString(pl.PlanKey()), Algorithm: pl.Name(), Seed: pl.Seed(), Spec: spec}
		s.mu.Lock()
		s.plans[pl.PlanKey()] = &planEntry{pl: pl, info: info}
		s.mu.Unlock()
	}
	s.mu.RLock()
	s.rec.Gauge("serve.graphs").Set(int64(len(s.graphs)))
	s.rec.Gauge("serve.plans").Set(int64(len(s.plans)))
	s.mu.RUnlock()
	return nil
}
