package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"netdecomp/internal/dyn"
	"netdecomp/internal/randx"
)

// postBatch posts a mutation batch against the graph key and decodes the
// MutateResponse (any status).
func postBatch(t *testing.T, base, graphKey string, b dyn.Batch, out *MutateResponse) *http.Response {
	t.Helper()
	data, err := dyn.EncodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/graphs/"+graphKey+"/mutate", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == 200 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding mutate response: %v", err)
		}
	}
	return resp
}

// decompose posts exactly one decompose request and returns its document
// and status — one request only, so cache hit/miss deltas stay exact.
func decompose(t *testing.T, base, graphKey, planKey string, seed uint64) (DecomposeResponse, int) {
	t.Helper()
	var out DecomposeResponse
	data, err := json.Marshal(DecomposeRequest{Graph: graphKey, Plan: planKey, Seed: &seed})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/decompose", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == 200 {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding decompose response: %v", err)
		}
	}
	return out, resp.StatusCode
}

func TestMutateRoundTrip(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	gk, pk := register(t, ts.URL)

	// Warm the cache on the original content.
	p0, code := decompose(t, ts.URL, gk, pk, 1)
	if code != 200 {
		t.Fatalf("decompose: status %d", code)
	}

	// Mutate: delete one known edge of gnp(n=256,seed=5), insert a fresh one.
	g := mustBuild(t, "gnp", 256, 5)
	u, v := 0, int(g.Neighbors(0)[0])
	var mr MutateResponse
	if resp := postBatch(t, ts.URL, gk, dyn.Batch{
		{Op: dyn.OpDelete, U: int32(u), V: int32(v)},
	}, &mr); resp.StatusCode != 200 {
		t.Fatalf("mutate: status %d", resp.StatusCode)
	}
	if mr.Deleted != 1 || mr.Inserted != 0 || mr.Noops != 0 {
		t.Fatalf("mutate effect: %+v", mr)
	}
	if mr.Fingerprint == mr.Previous {
		t.Fatal("mutation did not flip the fingerprint")
	}
	if mr.Version != 1 {
		t.Fatalf("version = %d, want 1", mr.Version)
	}

	// The old key is retired: decompose and metadata answer 404.
	if _, code := decompose(t, ts.URL, gk, pk, 1); code != http.StatusNotFound {
		t.Fatalf("retired key served status %d, want 404", code)
	}
	if resp := getJSON(t, ts.URL+"/v1/graphs/"+gk, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("retired key metadata status %d, want 404", resp.StatusCode)
	}

	// The new key serves the mutated content — and its partition differs
	// from the pre-mutation one (the deleted edge changed the graph).
	var gi GraphInfo
	if resp := getJSON(t, ts.URL+"/v1/graphs/"+mr.Fingerprint, &gi); resp.StatusCode != 200 {
		t.Fatalf("new key metadata status %d", resp.StatusCode)
	}
	if gi.Version != 1 || gi.Parent != gk {
		t.Fatalf("lineage: %+v", gi)
	}
	p1, code := decompose(t, ts.URL, mr.Fingerprint, pk, 1)
	if code != 200 {
		t.Fatalf("decompose on new key: status %d", code)
	}
	if p1.Graph != mr.Fingerprint {
		t.Fatalf("response graph %s, want %s", p1.Graph, mr.Fingerprint)
	}
	if p1.CacheHit {
		t.Fatal("new content served from cache it was never in")
	}
	if fmt.Sprint(p0.Partition.ClusterOf) == fmt.Sprint(p1.Partition.ClusterOf) &&
		len(p0.Partition.Clusters) == len(p1.Partition.Clusters) &&
		p0.Partition.Colors == p1.Partition.Colors {
		// Not impossible, but with a deleted edge at seed 1 on n=256 the
		// partitions are expected to differ; treat equality as suspicious.
		t.Log("warning: pre- and post-mutation partitions identical")
	}

	// /v1/stats reports the flip.
	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Mutations == nil {
		t.Fatal("stats missing mutation block")
	}
	if stats.Mutations.LastPrevious != gk || stats.Mutations.LastFingerprint != mr.Fingerprint {
		t.Fatalf("stats flip: %+v", stats.Mutations)
	}
	if stats.Mutations.Batches != 1 || stats.Mutations.Applied != 1 {
		t.Fatalf("stats counters: %+v", stats.Mutations)
	}
	_ = s
}

func TestMutateRejectsMalformed(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	gk, _ := register(t, ts.URL)

	// Structurally bad JSON → 400.
	resp, err := http.Post(ts.URL+"/v1/graphs/"+gk+"/mutate", "application/json",
		bytes.NewReader([]byte(`{"mutations":[{}]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed batch: status %d, want 400", resp.StatusCode)
	}
	// Semantically bad (out of range) → 400, nothing swapped.
	if resp := postBatch(t, ts.URL, gk, dyn.Batch{{Op: dyn.OpInsert, U: 0, V: 99999}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range batch: status %d, want 400", resp.StatusCode)
	}
	// Unknown graph → 404.
	if resp := postBatch(t, ts.URL, "00000000deadbeef", dyn.Batch{{Op: dyn.OpInsert, U: 0, V: 1}}, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d, want 404", resp.StatusCode)
	}
	// The graph is still registered under its original key.
	if resp := getJSON(t, ts.URL+"/v1/graphs/"+gk, nil); resp.StatusCode != 200 {
		t.Fatalf("original key gone after rejected batches: %d", resp.StatusCode)
	}
}

func TestMutateNoopBatchKeepsKey(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	gk, _ := register(t, ts.URL)
	g := mustBuild(t, "gnp", 256, 5)
	u, v := int32(0), g.Neighbors(0)[0]
	var mr MutateResponse
	if resp := postBatch(t, ts.URL, gk, dyn.Batch{{Op: dyn.OpInsert, U: u, V: v}}, &mr); resp.StatusCode != 200 {
		t.Fatalf("noop batch: status %d", resp.StatusCode)
	}
	if mr.Noops != 1 || mr.Fingerprint != gk || mr.Version != 0 {
		t.Fatalf("noop batch result: %+v", mr)
	}
	if resp := getJSON(t, ts.URL+"/v1/graphs/"+gk, nil); resp.StatusCode != 200 {
		t.Fatalf("key retired by a noop batch: %d", resp.StatusCode)
	}
}

// TestMutateNeverServesStale is the satellite-3 property test: across a
// churn of mutation batches interleaved with decomposes, a query after a
// mutation never serves a partition computed on older content — pinned by
// the session hit/miss deltas: the first decompose per (content, seed) is
// always a miss, repeats without intervening mutation are always hits.
func TestMutateNeverServesStale(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	gk, pk := register(t, ts.URL)
	rng := randx.New(0xc0ffee)

	key := gk
	for round := 0; round < 6; round++ {
		before := s.Session().Stats()
		seed := uint64(round % 3)
		p1, code := decompose(t, ts.URL, key, pk, seed)
		if code != 200 {
			t.Fatalf("round %d: decompose status %d", round, code)
		}
		mid := s.Session().Stats()
		if mid.Misses != before.Misses+1 {
			t.Fatalf("round %d: fresh content served without a miss (misses %d -> %d)",
				round, before.Misses, mid.Misses)
		}
		// Repeat: must be a cache hit of the same content.
		p2, _ := decompose(t, ts.URL, key, pk, seed)
		after := s.Session().Stats()
		if after.Hits < mid.Hits+1 {
			t.Fatalf("round %d: repeat was not a hit (hits %d -> %d)", round, mid.Hits, after.Hits)
		}
		if after.Misses != mid.Misses {
			t.Fatalf("round %d: repeat re-executed (misses %d -> %d)", round, mid.Misses, after.Misses)
		}
		if fmt.Sprint(p1.Partition.ClusterOf) != fmt.Sprint(p2.Partition.ClusterOf) {
			t.Fatalf("round %d: cache returned a different partition", round)
		}

		// Mutate: flip one random edge (delete if we can name one present,
		// else insert). The new fingerprint becomes the serving key.
		var gi GraphInfo
		getJSON(t, ts.URL+"/v1/graphs/"+key, &gi)
		var mr MutateResponse
		u := int32(rng.Intn(256))
		w := int32(rng.Intn(256))
		if u == w {
			w = (u + 1) % 256
		}
		if resp := postBatch(t, ts.URL, key, dyn.Batch{{Op: dyn.OpInsert, U: u, V: w}}, &mr); resp.StatusCode != 200 {
			t.Fatalf("round %d: mutate status %d", round, resp.StatusCode)
		}
		if mr.Noops == 1 {
			// Edge existed: delete it instead so the content really changes.
			if resp := postBatch(t, ts.URL, key, dyn.Batch{{Op: dyn.OpDelete, U: u, V: w}}, &mr); resp.StatusCode != 200 {
				t.Fatalf("round %d: delete status %d", round, resp.StatusCode)
			}
		}
		if mr.Fingerprint == key {
			t.Fatalf("round %d: mutation kept the key", round)
		}
		// Old-fingerprint entries are unreachable through the API...
		if _, code := decompose(t, ts.URL, key, pk, seed); code != http.StatusNotFound {
			t.Fatalf("round %d: retired key status %d, want 404", round, code)
		}
		key = mr.Fingerprint
	}
}

// TestMutateThroughRestart snapshots mid-churn and verifies the daemon
// comes back serving only the current content version: the mutated graph
// (with lineage), its cached results, and nothing under the retired keys.
func TestMutateThroughRestart(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "nd.snap")

	s1, ts1 := newTestServer(t, Options{Workers: 2, StorePath: store})
	gk, pk := register(t, ts1.URL)

	// Churn: decompose, mutate, decompose on the new key, snapshot.
	if _, code := decompose(t, ts1.URL, gk, pk, 1); code != 200 {
		t.Fatalf("decompose: %d", code)
	}
	g := mustBuild(t, "gnp", 256, 5)
	var mr MutateResponse
	if resp := postBatch(t, ts1.URL, gk, dyn.Batch{
		{Op: dyn.OpDelete, U: 0, V: g.Neighbors(0)[0]},
	}, &mr); resp.StatusCode != 200 {
		t.Fatalf("mutate: %d", resp.StatusCode)
	}
	warm, code := decompose(t, ts1.URL, mr.Fingerprint, pk, 1)
	if code != 200 {
		t.Fatalf("decompose on mutated key: %d", code)
	}
	if _, err := s1.Flush(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(store); err != nil {
		t.Fatal(err)
	}

	// Reboot on the same store.
	s2 := New(Options{Workers: 2, StorePath: store})
	defer s2.Close()
	ts2 := newHTTPServer(t, s2)

	// The mutated version survived with its lineage; the retired key did not.
	var gi GraphInfo
	if resp := getJSON(t, ts2.URL+"/v1/graphs/"+mr.Fingerprint, &gi); resp.StatusCode != 200 {
		t.Fatalf("mutated graph lost across restart: %d", resp.StatusCode)
	}
	if gi.Version != 1 || gi.Parent != gk {
		t.Fatalf("lineage lost across restart: %+v", gi)
	}
	if resp := getJSON(t, ts2.URL+"/v1/graphs/"+gk, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("retired key resurrected: %d", resp.StatusCode)
	}

	// The mutated content's cached result is warm (hit, same partition);
	// nothing under the retired fingerprint can be reached at all.
	before := s2.Session().Stats()
	p, code := decompose(t, ts2.URL, mr.Fingerprint, pk, 1)
	if code != 200 {
		t.Fatalf("post-restart decompose: %d", code)
	}
	after := s2.Session().Stats()
	if !p.CacheHit || after.Hits != before.Hits+1 || after.Misses != before.Misses {
		t.Fatalf("restored result not served warm: hit=%v stats %+v -> %+v", p.CacheHit, before, after)
	}
	if fmt.Sprint(p.Partition.ClusterOf) != fmt.Sprint(warm.Partition.ClusterOf) {
		t.Fatal("restored partition differs from pre-restart result")
	}
	if _, code := decompose(t, ts2.URL, gk, pk, 1); code != http.StatusNotFound {
		t.Fatalf("retired key served after restart: %d", code)
	}
}

// TestMutateCompaction crosses the delta threshold and checks the entry is
// folded flat (Compacted reported, fingerprint still content-true).
func TestMutateCompaction(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	var gi GraphInfo
	// A path graph is easy to reason about and cheap to mutate heavily.
	if resp := postJSON(t, ts.URL+"/v1/graphs", GraphSpec{Family: "path", N: 2048, Seed: 1}, &gi); resp.StatusCode != 200 {
		t.Fatalf("register: %d", resp.StatusCode)
	}
	key := gi.Fingerprint
	// One batch inserting compactDeltaThreshold fresh chords crosses the
	// threshold in a single mutation.
	b := make(dyn.Batch, 0, compactDeltaThreshold)
	for i := 0; i < compactDeltaThreshold; i++ {
		b = append(b, dyn.Mutation{Op: dyn.OpInsert, U: int32(i), V: int32(i + 1024)})
	}
	var mr MutateResponse
	if resp := postBatch(t, ts.URL, key, b, &mr); resp.StatusCode != 200 {
		t.Fatalf("mutate: %d", resp.StatusCode)
	}
	if !mr.Compacted {
		t.Fatalf("expected compaction at delta %d: %+v", compactDeltaThreshold, mr)
	}
	if mr.DeltaSize != 0 {
		t.Fatalf("compacted entry still reports delta %d", mr.DeltaSize)
	}
	if mr.M != 2047+compactDeltaThreshold {
		t.Fatalf("edge count %d", mr.M)
	}
	// The compacted entry serves under its content fingerprint.
	if resp := getJSON(t, ts.URL+"/v1/graphs/"+mr.Fingerprint, nil); resp.StatusCode != 200 {
		t.Fatalf("compacted key not served: %d", resp.StatusCode)
	}
}

// newHTTPServer mounts an existing Server on httptest (the restart test
// builds the Server itself to control Close ordering).
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}
