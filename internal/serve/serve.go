// Package serve is the network front door of the repository: an HTTP/JSON
// daemon over the internal/session serving layer. Clients register graphs
// (by edge-list upload or generator spec, keyed by graph.Fingerprint),
// compile plans (keyed by decomp.PlanKey), and submit decompose requests
// that ride the session cache and singleflight; per-round RoundStats
// stream to clients over SSE through the session's observer fan-out, and
// the telemetry registry is exposed on /metrics next to expvar and pprof.
//
// A Server with a store path is durable: the completed-partition LRU (and
// the graph/plan registries) snapshot to disk periodically and on Close,
// and recover on boot behind an integrity hash — warm hits survive
// restarts (see internal/session/persistence.go and persist.go here).
//
// The API (full anatomy in DESIGN.md §12):
//
//	GET  /healthz                 liveness
//	GET  /v1/algorithms           registry + generator family names
//	POST /v1/graphs               register: JSON GraphSpec or edge-list body
//	GET  /v1/graphs               list registered graphs
//	GET  /v1/graphs/{fp}          one graph's metadata
//	POST /v1/plans                compile a PlanSpec
//	GET  /v1/plans                list compiled plans
//	GET  /v1/plans/{key}          one plan's metadata
//	POST /v1/decompose            execute (or serve cached); JSON result
//	POST /v1/decompose/stream     same, streaming round stats over SSE
//	POST /v1/pipeline             execute a typed stage DAG (internal/pipeline)
//	POST /v1/pipeline/stream      same, streaming per-stage events over SSE
//	GET  /v1/stats                session counters + SSE + store state
//	POST /v1/store/flush          force a snapshot now
//	GET  /metrics                 Prometheus text (plus /debug/vars, /debug/pprof/)
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"netdecomp/internal/decomp"
	"netdecomp/internal/graph"
	"netdecomp/internal/graphio"
	"netdecomp/internal/obs"
	"netdecomp/internal/session"
)

// Options configures a Server.
type Options struct {
	// Workers bounds the session's execution pool (0 = GOMAXPROCS).
	Workers int
	// CacheSize bounds the completed-result LRU (0 = session default 256).
	CacheSize int
	// StorePath enables the persistent result store at this file path.
	StorePath string
	// FlushInterval is the periodic snapshot cadence when StorePath is set
	// (0 = flush only on Close and explicit /v1/store/flush).
	FlushInterval time.Duration
	// Recorder is an externally owned telemetry recorder; nil builds a
	// private metrics registry.
	Recorder *obs.Recorder
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
}

// graphEntry is one registered graph.
type graphEntry struct {
	g    *graph.Graph
	info GraphInfo
}

// planEntry is one compiled plan.
type planEntry struct {
	pl   *decomp.Plan
	info PlanInfo
}

// Server is the HTTP serving daemon: session + registries + persistence.
// Create with New, mount Handler, and Close on shutdown (Close flushes the
// store).
type Server struct {
	sess *session.Session
	rec  *obs.Recorder
	logf func(string, ...any)

	mu     sync.RWMutex
	graphs map[uint64]*graphEntry
	plans  map[uint64]*planEntry

	store *persister // nil when persistence is disabled
	mux   *http.ServeMux

	cRequests         *obs.Counter
	cErrors           *obs.Counter
	cSSEClients       *obs.Counter
	cSSEDropped       *obs.Counter
	cSSEDroppedEvents *obs.Counter
	hRequest          *obs.Histogram
	hDecompose        *obs.Histogram
	hPipeline         *obs.Histogram

	closeOnce sync.Once
	closeErr  error
}

// New builds the server: starts the session, recovers the persistent
// store (when configured), and wires the routes. A corrupt snapshot is
// never fatal — the server logs it, reports it under /v1/stats, and boots
// cold; see persist.go.
func New(opts Options) *Server {
	rec := opts.Recorder
	if rec == nil {
		rec = obs.New(obs.NewRegistry(), nil)
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	sopts := []session.Option{session.WithRecorder(rec)}
	if opts.Workers > 0 {
		sopts = append(sopts, session.WithWorkers(opts.Workers))
	}
	if opts.CacheSize > 0 {
		sopts = append(sopts, session.WithCacheSize(opts.CacheSize))
	}
	s := &Server{
		sess:   session.New(sopts...),
		rec:    rec,
		logf:   logf,
		graphs: map[uint64]*graphEntry{},
		plans:  map[uint64]*planEntry{},
	}
	s.cRequests = rec.Counter("serve.requests")
	s.cErrors = rec.Counter("serve.errors")
	s.cSSEClients = rec.Counter("serve.sse.clients")
	s.cSSEDropped = rec.Counter("serve.sse.dropped_rounds")
	s.cSSEDroppedEvents = rec.Counter("serve.sse.dropped_events")
	s.hRequest = rec.Histogram("serve.request.ns")
	s.hDecompose = rec.Histogram("serve.decompose.ns")
	s.hPipeline = rec.Histogram("serve.pipeline.ns")
	if opts.StorePath != "" {
		s.store = newPersister(s, opts.StorePath, opts.FlushInterval)
		s.store.recover()
		s.store.start()
	}
	s.routes()
	return s
}

// Session exposes the underlying serving session (telemetry, stats).
func (s *Server) Session() *session.Session { return s.sess }

// Registry returns the telemetry registry behind the server's recorder.
func (s *Server) Registry() *obs.Registry { return s.rec.Registry() }

// Close flushes the store (when configured) and shuts the session down.
// Idempotent; the first call's error sticks.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		if s.store != nil {
			s.closeErr = s.store.stop()
		}
		s.sess.Close()
	})
	return s.closeErr
}

// Flush forces a snapshot of the result store now, returning the number
// of entries written. It errors when persistence is disabled.
func (s *Server) Flush() (int, error) {
	if s.store == nil {
		return 0, errors.New("serve: no store configured")
	}
	return s.store.flush()
}

// Handler returns the server's HTTP handler (mount it on any listener).
func (s *Server) Handler() http.Handler { return s.mux }

// routes wires the mux. Method-qualified patterns (Go 1.22 ServeMux) give
// 405s for free.
func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument(s.handleHealth))
	mux.HandleFunc("GET /v1/algorithms", s.instrument(s.handleAlgorithms))
	mux.HandleFunc("POST /v1/graphs", s.instrument(s.handleRegisterGraph))
	mux.HandleFunc("GET /v1/graphs", s.instrument(s.handleListGraphs))
	mux.HandleFunc("GET /v1/graphs/{fp}", s.instrument(s.handleGetGraph))
	mux.HandleFunc("POST /v1/plans", s.instrument(s.handleRegisterPlan))
	mux.HandleFunc("GET /v1/plans", s.instrument(s.handleListPlans))
	mux.HandleFunc("GET /v1/plans/{key}", s.instrument(s.handleGetPlan))
	mux.HandleFunc("POST /v1/decompose", s.instrument(s.handleDecompose))
	mux.HandleFunc("POST /v1/decompose/stream", s.instrument(s.handleDecomposeStream))
	mux.HandleFunc("POST /v1/pipeline", s.instrument(s.handlePipeline))
	mux.HandleFunc("POST /v1/pipeline/stream", s.instrument(s.handlePipelineStream))
	mux.HandleFunc("GET /v1/stats", s.instrument(s.handleStats))
	mux.HandleFunc("POST /v1/store/flush", s.instrument(s.handleStoreFlush))
	MountDebug(mux, s.rec.Registry())
	s.mux = mux
}

// instrument wraps a handler with the request counter and latency
// histogram.
func (s *Server) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.cRequests.Inc()
		h(w, r)
		s.hRequest.Observe(time.Since(start).Nanoseconds())
	}
}

// writeJSON emits one JSON document with status code.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logf("serve: writing response: %v", err)
	}
}

// fail emits the uniform error document.
func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.cErrors.Inc()
	s.writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"algorithms": decomp.Names(),
		"families":   familyNames(),
	})
}

// handleRegisterGraph accepts either a JSON GraphSpec (Content-Type
// application/json) or a raw edge-list body in the graphio interchange
// format. Registration is idempotent: the graph is keyed by its content
// fingerprint, so re-registering returns the existing entry.
func (s *Server) handleRegisterGraph(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxUploadBytes)
	var (
		g    *graph.Graph
		info GraphInfo
	)
	if isJSONRequest(r) {
		var spec GraphSpec
		if err := json.NewDecoder(body).Decode(&spec); err != nil {
			s.fail(w, http.StatusBadRequest, "decoding graph spec: %v", err)
			return
		}
		built, err := spec.Build()
		if err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		g = built
		sp := spec
		info = GraphInfo{Source: spec.String(), Spec: &sp}
	} else {
		parsed, err := graphio.Read(body)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "parsing edge list: %v", err)
			return
		}
		g = parsed
		info = GraphInfo{Source: "upload"}
	}
	info.Fingerprint = keyString(g.Fingerprint())
	info.N = g.N()
	info.M = graph.EdgeCount(g)
	s.mu.Lock()
	if existing, ok := s.graphs[g.Fingerprint()]; ok {
		info = existing.info // idempotent: first registration wins
	} else {
		s.graphs[g.Fingerprint()] = &graphEntry{g: g, info: info}
		s.rec.Gauge("serve.graphs").Set(int64(len(s.graphs)))
	}
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleListGraphs(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	out := make([]GraphInfo, 0, len(s.graphs))
	for _, e := range s.graphs {
		out = append(out, e.info)
	}
	s.mu.RUnlock()
	sortByString(out, func(gi GraphInfo) string { return gi.Fingerprint })
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	fp, err := parseKey(r.PathValue("fp"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.RLock()
	e, ok := s.graphs[fp]
	s.mu.RUnlock()
	if !ok {
		s.fail(w, http.StatusNotFound, "graph %s not registered", keyString(fp))
		return
	}
	s.writeJSON(w, http.StatusOK, e.info)
}

// handleRegisterPlan compiles a PlanSpec. Compilation is the expensive
// validating half of the split API; it happens exactly once per
// configuration — re-registering an equivalent spec returns the existing
// plan (keyed by PlanKey).
func (s *Server) handleRegisterPlan(w http.ResponseWriter, r *http.Request) {
	var spec PlanSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadBytes)).Decode(&spec); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding plan spec: %v", err)
		return
	}
	pl, err := spec.Compile()
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	info := PlanInfo{Plan: keyString(pl.PlanKey()), Algorithm: pl.Name(), Seed: pl.Seed(), Spec: spec}
	s.mu.Lock()
	if existing, ok := s.plans[pl.PlanKey()]; ok {
		info = existing.info
	} else {
		s.plans[pl.PlanKey()] = &planEntry{pl: pl, info: info}
		s.rec.Gauge("serve.plans").Set(int64(len(s.plans)))
	}
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleListPlans(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	out := make([]PlanInfo, 0, len(s.plans))
	for _, e := range s.plans {
		out = append(out, e.info)
	}
	s.mu.RUnlock()
	sortByString(out, func(pi PlanInfo) string { return pi.Plan })
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetPlan(w http.ResponseWriter, r *http.Request) {
	key, err := parseKey(r.PathValue("key"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.RLock()
	e, ok := s.plans[key]
	s.mu.RUnlock()
	if !ok {
		s.fail(w, http.StatusNotFound, "plan %s not registered", keyString(key))
		return
	}
	s.writeJSON(w, http.StatusOK, e.info)
}

// resolve looks up the graph and plan a decompose request addresses and
// applies the seed override.
func (s *Server) resolve(req DecomposeRequest) (*graph.Graph, *decomp.Plan, error) {
	fp, err := parseKey(req.Graph)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: %w", err)
	}
	key, err := parseKey(req.Plan)
	if err != nil {
		return nil, nil, fmt.Errorf("plan: %w", err)
	}
	s.mu.RLock()
	ge, gok := s.graphs[fp]
	pe, pok := s.plans[key]
	s.mu.RUnlock()
	if !gok {
		return nil, nil, fmt.Errorf("graph %s not registered (POST /v1/graphs first)", keyString(fp))
	}
	if !pok {
		return nil, nil, fmt.Errorf("plan %s not registered (POST /v1/plans first)", keyString(key))
	}
	pl := pe.pl
	if req.Seed != nil {
		pl = pl.WithSeed(*req.Seed)
	}
	return ge.g, pl, nil
}

// handleDecompose is the synchronous serving path: resolve, ride the
// session (cache hit, singleflight attach, or fresh execution), respond
// with the stable partition document.
func (s *Server) handleDecompose(w http.ResponseWriter, r *http.Request) {
	var req DecomposeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadBytes)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	g, pl, err := s.resolve(req)
	if err != nil {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}
	start := time.Now()
	j := s.sess.Submit(r.Context(), pl, g)
	p, err := j.Wait()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "decompose: %v", err)
		return
	}
	lat := time.Since(start)
	s.hDecompose.Observe(lat.Nanoseconds())
	s.writeJSON(w, http.StatusOK, DecomposeResponse{
		Graph:     keyString(j.Key().Graph),
		Plan:      keyString(j.Key().Plan),
		Seed:      j.Key().Seed,
		Algorithm: pl.Name(),
		CacheHit:  j.CacheHit(),
		LatencyNs: lat.Nanoseconds(),
		Partition: p,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	ngraphs, nplans := len(s.graphs), len(s.plans)
	s.mu.RUnlock()
	resp := StatsResponse{
		Session: s.sess.Stats(),
		Graphs:  ngraphs,
		Plans:   nplans,
		SSE: SSEInfo{
			Clients:       s.cSSEClients.Value(),
			DroppedRounds: s.cSSEDropped.Value(),
			DroppedEvents: s.cSSEDroppedEvents.Value(),
		},
	}
	if s.store != nil {
		resp.Store = s.store.info()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStoreFlush(w http.ResponseWriter, _ *http.Request) {
	n, err := s.Flush()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "flush: %v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]int{"entries": n})
}

// maxUploadBytes bounds request bodies (edge lists included): 256 MiB
// admits graphs in the tens of millions of edges while keeping one client
// from exhausting memory.
const maxUploadBytes = 256 << 20

// isJSONRequest reports whether the request declared a JSON body.
func isJSONRequest(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	return ct == "application/json" || len(ct) > 16 && ct[:16] == "application/json"
}
