// Package serve is the network front door of the repository: an HTTP/JSON
// daemon over the internal/session serving layer. Clients register graphs
// (by edge-list upload or generator spec, keyed by graph.Fingerprint),
// compile plans (keyed by decomp.PlanKey), and submit decompose requests
// that ride the session cache and singleflight; per-round RoundStats
// stream to clients over SSE through the session's observer fan-out, and
// the telemetry registry is exposed on /metrics next to expvar and pprof.
//
// A Server with a store path is durable: the completed-partition LRU (and
// the graph/plan registries) snapshot to disk periodically and on Close,
// and recover on boot behind an integrity hash — warm hits survive
// restarts (see internal/session/persistence.go and persist.go here).
//
// The API (full anatomy in DESIGN.md §12):
//
//	GET  /healthz                 liveness
//	GET  /v1/algorithms           registry + generator family names
//	POST /v1/graphs               register: JSON GraphSpec or edge-list body
//	GET  /v1/graphs               list registered graphs
//	GET  /v1/graphs/{fp}          one graph's metadata
//	POST /v1/plans                compile a PlanSpec
//	GET  /v1/plans                list compiled plans
//	GET  /v1/plans/{key}          one plan's metadata
//	POST /v1/decompose            execute (or serve cached); JSON result
//	POST /v1/decompose/stream     same, streaming round stats over SSE
//	POST /v1/pipeline             execute a typed stage DAG (internal/pipeline)
//	POST /v1/pipeline/stream      same, streaming per-stage events over SSE
//	GET  /v1/stats                session counters + SSE + store state
//	POST /v1/store/flush          force a snapshot now
//	GET  /metrics                 Prometheus text (plus /debug/vars, /debug/pprof/)
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"netdecomp/internal/decomp"
	"netdecomp/internal/graph"
	"netdecomp/internal/graphio"
	"netdecomp/internal/obs"
	"netdecomp/internal/resilience"
	"netdecomp/internal/session"
)

// Options configures a Server.
type Options struct {
	// Workers bounds the session's execution pool (0 = GOMAXPROCS).
	Workers int
	// CacheSize bounds the completed-result LRU (0 = session default 256).
	CacheSize int
	// StorePath enables the persistent result store at this file path.
	StorePath string
	// FlushInterval is the periodic snapshot cadence when StorePath is set
	// (0 = flush only on Close and explicit /v1/store/flush).
	FlushInterval time.Duration
	// Recorder is an externally owned telemetry recorder; nil builds a
	// private metrics registry.
	Recorder *obs.Recorder
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
	// Resilience configures admission control, load shedding, and request
	// deadlines (see internal/resilience). The zero value disables every
	// limit — the pre-resilience serving behavior.
	Resilience resilience.Options
	// Injector, when set, injects deterministic faults into the session
	// runner and the snapshot writer — the chaos harness's hook.
	Injector *resilience.Injector
	// FlushRetry shapes the snapshot-flush retry ladder (zero = defaults:
	// 3 attempts, 25ms base, exponential with jitter).
	FlushRetry resilience.Backoff
}

// graphEntry is one registered graph. The graph is held behind the
// interface so an entry can be a flat CSR *graph.Graph (registration,
// recovery, post-compaction) or a *dyn.Overlay version produced by the
// mutation endpoint — both immutable once stored.
type graphEntry struct {
	g    graph.Interface
	info GraphInfo
}

// planEntry is one compiled plan.
type planEntry struct {
	pl   *decomp.Plan
	info PlanInfo
}

// Server is the HTTP serving daemon: session + registries + persistence.
// Create with New, mount Handler, and Close on shutdown (Close flushes the
// store).
type Server struct {
	sess *session.Session
	rec  *obs.Recorder
	logf func(string, ...any)

	mu     sync.RWMutex
	graphs map[uint64]*graphEntry
	plans  map[uint64]*planEntry
	// lastMutPrev/lastMutNew record the most recent mutation swap (old and
	// new fingerprint, API form) for /v1/stats — the serve-smoke round trip
	// asserts the flip here. Guarded by mu.
	lastMutPrev string
	lastMutNew  string

	store *persister // nil when persistence is disabled
	mux   *http.ServeMux

	gov      *resilience.Governor
	injector *resilience.Injector // nil without fault injection

	cRequests         *obs.Counter
	cErrors           *obs.Counter
	cSSEClients       *obs.Counter
	cSSEDropped       *obs.Counter
	cSSEDroppedEvents *obs.Counter
	cRejected         *obs.Counter
	cShed             *obs.Counter
	cTimeouts         *obs.Counter
	cClientCancels    *obs.Counter
	cPanics           *obs.Counter
	cMutBatches       *obs.Counter
	cMutApplied       *obs.Counter
	cMutNoops         *obs.Counter
	cMutCompact       *obs.Counter
	cMutInvalid       *obs.Counter
	gSSEActive        *obs.Gauge
	hRequest          *obs.Histogram
	hDecompose        *obs.Histogram
	hPipeline         *obs.Histogram

	closeOnce sync.Once
	closeErr  error
}

// New builds the server: starts the session, recovers the persistent
// store (when configured), and wires the routes. A corrupt snapshot is
// never fatal — the server logs it, reports it under /v1/stats, and boots
// cold; see persist.go.
func New(opts Options) *Server {
	rec := opts.Recorder
	if rec == nil {
		rec = obs.New(obs.NewRegistry(), nil)
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	sopts := []session.Option{session.WithRecorder(rec)}
	if opts.Workers > 0 {
		sopts = append(sopts, session.WithWorkers(opts.Workers))
	}
	if opts.CacheSize > 0 {
		sopts = append(sopts, session.WithCacheSize(opts.CacheSize))
	}
	if opts.Injector != nil {
		// The injector slots in as the session runner, under the cache and
		// dedup machinery — injected faults behave exactly like decomposer
		// faults, which is the point.
		sopts = append(sopts, session.WithRunner(session.Runner(opts.Injector.WrapRunner(nil))))
	}
	s := &Server{
		sess:     session.New(sopts...),
		rec:      rec,
		logf:     logf,
		graphs:   map[uint64]*graphEntry{},
		plans:    map[uint64]*planEntry{},
		gov:      resilience.NewGovernor(opts.Resilience, rec),
		injector: opts.Injector,
	}
	s.cRequests = rec.Counter("serve.requests")
	s.cErrors = rec.Counter("serve.errors")
	s.cSSEClients = rec.Counter("serve.sse.clients")
	s.cSSEDropped = rec.Counter("serve.sse.dropped_rounds")
	s.cSSEDroppedEvents = rec.Counter("serve.sse.dropped_events")
	s.cRejected = rec.Counter("serve.rejected")
	s.cShed = rec.Counter("serve.shed")
	s.cTimeouts = rec.Counter("serve.deadline.timeouts")
	s.cClientCancels = rec.Counter("serve.client_cancels")
	s.cPanics = rec.Counter("serve.handler.panics")
	s.cMutBatches = rec.Counter("serve.mutations.batches")
	s.cMutApplied = rec.Counter("serve.mutations.applied")
	s.cMutNoops = rec.Counter("serve.mutations.noops")
	s.cMutCompact = rec.Counter("serve.mutations.compactions")
	s.cMutInvalid = rec.Counter("serve.mutations.invalidated")
	s.gSSEActive = rec.Gauge("serve.sse.active")
	s.hRequest = rec.Histogram("serve.request.ns")
	s.hDecompose = rec.Histogram("serve.decompose.ns")
	s.hPipeline = rec.Histogram("serve.pipeline.ns")
	if opts.StorePath != "" {
		s.store = newPersister(s, opts.StorePath, opts.FlushInterval, opts.FlushRetry)
		s.store.recover()
		s.store.start()
	}
	s.routes()
	return s
}

// Session exposes the underlying serving session (telemetry, stats).
func (s *Server) Session() *session.Session { return s.sess }

// Registry returns the telemetry registry behind the server's recorder.
func (s *Server) Registry() *obs.Registry { return s.rec.Registry() }

// Close flushes the store (when configured) and shuts the session down.
// Idempotent; the first call's error sticks.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		if s.store != nil {
			s.closeErr = s.store.stop()
		}
		s.sess.Close()
	})
	return s.closeErr
}

// Flush forces a snapshot of the result store now, returning the number
// of entries written. It errors when persistence is disabled.
func (s *Server) Flush() (int, error) {
	if s.store == nil {
		return 0, errors.New("serve: no store configured")
	}
	return s.store.flush()
}

// Handler returns the server's HTTP handler (mount it on any listener).
func (s *Server) Handler() http.Handler { return s.mux }

// Governor exposes the admission authority (drain state, degradation,
// counters) — the daemon's shutdown path and tests drive it directly.
func (s *Server) Governor() *resilience.Governor { return s.gov }

// Injector returns the fault injector, nil when chaos is not configured.
func (s *Server) Injector() *resilience.Injector { return s.injector }

// StartDrain begins graceful shutdown: /readyz flips to 503 and every
// admission — queued waiters included — fails with 503. Already-admitted
// requests run to completion. Idempotent.
func (s *Server) StartDrain() { s.gov.StartDrain() }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.gov.Draining() }

// Degraded reports whether heavy in-flight work has crossed the shed
// watermark (cold-miss work is being rejected; cache hits still serve).
func (s *Server) Degraded() bool { return s.gov.Degraded() }

// Drain performs the graceful-shutdown wait: stop admissions, give
// in-flight requests up to timeout to finish, and report how many
// completed versus how many are being abandoned. Call Close after to
// flush the store.
func (s *Server) Drain(timeout time.Duration) (completed, abandoned int) {
	s.gov.StartDrain()
	start := s.gov.InFlight()
	abandoned = s.gov.WaitIdle(timeout)
	return start - abandoned, abandoned
}

// routes wires the mux. Method-qualified patterns (Go 1.22 ServeMux) give
// 405s for free.
func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument(s.handleHealth))
	mux.HandleFunc("GET /readyz", s.instrument(s.handleReady))
	mux.HandleFunc("GET /v1/algorithms", s.instrument(s.handleAlgorithms))
	mux.HandleFunc("POST /v1/graphs", s.instrument(s.handleRegisterGraph))
	mux.HandleFunc("GET /v1/graphs", s.instrument(s.handleListGraphs))
	mux.HandleFunc("GET /v1/graphs/{fp}", s.instrument(s.handleGetGraph))
	mux.HandleFunc("POST /v1/graphs/{fp}/mutate", s.instrument(s.handleMutateGraph))
	mux.HandleFunc("POST /v1/plans", s.instrument(s.handleRegisterPlan))
	mux.HandleFunc("GET /v1/plans", s.instrument(s.handleListPlans))
	mux.HandleFunc("GET /v1/plans/{key}", s.instrument(s.handleGetPlan))
	mux.HandleFunc("POST /v1/decompose", s.instrument(s.handleDecompose))
	mux.HandleFunc("POST /v1/decompose/stream", s.instrument(s.handleDecomposeStream))
	mux.HandleFunc("POST /v1/pipeline", s.instrument(s.handlePipeline))
	mux.HandleFunc("POST /v1/pipeline/stream", s.instrument(s.handlePipelineStream))
	mux.HandleFunc("GET /v1/stats", s.instrument(s.handleStats))
	mux.HandleFunc("POST /v1/store/flush", s.instrument(s.handleStoreFlush))
	MountDebug(mux, s.rec.Registry())
	s.mux = mux
}

// instrument wraps a handler with the request counter, the latency
// histogram, and panic isolation: a handler that panics — a bug, an
// injected fault that escaped deeper recovery — answers 500 and counts in
// serve.handler.panics instead of killing the connection's goroutine with
// a stack trace and, under http.Server defaults, leaving the client with
// an aborted response. The process keeps serving.
func (s *Server) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.cRequests.Inc()
		defer func() {
			if rec := recover(); rec != nil {
				s.cPanics.Inc()
				s.logf("serve: handler %s %s panicked: %v", r.Method, r.URL.Path, rec)
				s.fail(w, http.StatusInternalServerError, "internal error: handler panicked")
			}
			s.hRequest.Observe(time.Since(start).Nanoseconds())
		}()
		h(w, r)
	}
}

// writeJSON emits one JSON document with status code.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logf("serve: writing response: %v", err)
	}
}

// fail emits the uniform error document.
func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.cErrors.Inc()
	s.writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is the readiness probe: 200 while admitting, 503 once the
// drain began — load balancers stop routing here before the listener
// actually closes. Liveness (/healthz) stays 200 throughout the drain.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.gov.Draining() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// statusClientClosedRequest is nginx's 499: the client abandoned the
// request before the server could answer. Distinct from 504 so operators
// can tell "we were too slow" from "they stopped caring".
const statusClientClosedRequest = 499

// retryAfterSeconds renders a Retry-After header value, minimum 1s.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// admit acquires an admission slot for class c, answering the rejection
// itself when the governor refuses: 429 + Retry-After on saturation, 503
// + Retry-After while draining, 499 when the client gave up queued. On
// true the caller must invoke the returned release when done.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, c resilience.Class) (func(), bool) {
	release, err := s.gov.Acquire(r.Context(), c)
	if err == nil {
		return release, true
	}
	switch {
	case errors.Is(err, resilience.ErrDraining):
		w.Header().Set("Retry-After", retryAfterSeconds(s.gov.RetryAfter(c)))
		s.fail(w, http.StatusServiceUnavailable, "draining: no new %s work admitted", c)
	case errors.Is(err, resilience.ErrSaturated):
		s.cRejected.Inc()
		w.Header().Set("Retry-After", retryAfterSeconds(s.gov.RetryAfter(c)))
		s.fail(w, http.StatusTooManyRequests, "%s admission saturated, retry later", c)
	default: // the client's ctx expired while queued
		s.cClientCancels.Inc()
		s.fail(w, statusClientClosedRequest, "abandoned while queued: %v", err)
	}
	return nil, false
}

// shedColdWork rejects cold-miss work while the server is degraded —
// the request would execute a fresh decomposition and heavy in-flight is
// already past the watermark. Cache hits never reach this check: the
// degraded server keeps serving everything it already knows.
func (s *Server) shedColdWork(w http.ResponseWriter, c resilience.Class) bool {
	if !s.gov.Degraded() {
		return false
	}
	s.cShed.Inc()
	w.Header().Set("Retry-After", retryAfterSeconds(s.gov.RetryAfter(c)))
	s.fail(w, http.StatusTooManyRequests, "degraded: shedding cold %s work (cache hits still served)", c)
	return true
}

// requestDeadline extracts the client's requested budget: the JSON field
// when positive, else the X-Deadline-Ms header. 0 = none requested (the
// server default applies).
func requestDeadline(r *http.Request, bodyMs int64) time.Duration {
	ms := bodyMs
	if ms <= 0 {
		if h := r.Header.Get("X-Deadline-Ms"); h != "" {
			if v, err := strconv.ParseInt(h, 10, 64); err == nil {
				ms = v
			}
		}
	}
	if ms <= 0 {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}

// failExec classifies an execution error into the right status: 504 when
// the server-side budget expired (the client is still there), 499 when
// the client itself went away, 500 otherwise. Each class has its own
// counter so "every 5xx has a cause" stays auditable.
func (s *Server) failExec(w http.ResponseWriter, r *http.Request, err error, what string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded) && r.Context().Err() == nil:
		s.cTimeouts.Inc()
		s.fail(w, http.StatusGatewayTimeout, "%s: deadline exceeded", what)
	case r.Context().Err() != nil:
		s.cClientCancels.Inc()
		s.fail(w, statusClientClosedRequest, "%s: client cancelled: %v", what, err)
	default:
		s.fail(w, http.StatusInternalServerError, "%s: %v", what, err)
	}
}

// countExecErr is failExec's counter half for paths that already
// committed a 200 (SSE streams): classify, count, no status write.
func (s *Server) countExecErr(r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded) && r.Context().Err() == nil:
		s.cTimeouts.Inc()
	case r.Context().Err() != nil:
		s.cClientCancels.Inc()
	}
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"algorithms": decomp.Names(),
		"families":   familyNames(),
	})
}

// handleRegisterGraph accepts either a JSON GraphSpec (Content-Type
// application/json) or a raw edge-list body in the graphio interchange
// format. Registration is idempotent: the graph is keyed by its content
// fingerprint, so re-registering returns the existing entry.
func (s *Server) handleRegisterGraph(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r, resilience.ClassRegister)
	if !ok {
		return
	}
	defer release()
	body := http.MaxBytesReader(w, r.Body, maxUploadBytes)
	var (
		g    *graph.Graph
		info GraphInfo
	)
	if isJSONRequest(r) {
		var spec GraphSpec
		if err := json.NewDecoder(body).Decode(&spec); err != nil {
			s.fail(w, http.StatusBadRequest, "decoding graph spec: %v", err)
			return
		}
		built, err := spec.Build()
		if err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		g = built
		sp := spec
		info = GraphInfo{Source: spec.String(), Spec: &sp}
	} else {
		parsed, err := graphio.Read(body)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "parsing edge list: %v", err)
			return
		}
		g = parsed
		info = GraphInfo{Source: "upload"}
	}
	info.Fingerprint = keyString(g.Fingerprint())
	info.N = g.N()
	info.M = graph.EdgeCount(g)
	s.mu.Lock()
	if existing, ok := s.graphs[g.Fingerprint()]; ok {
		info = existing.info // idempotent: first registration wins
	} else {
		s.graphs[g.Fingerprint()] = &graphEntry{g: g, info: info}
		s.rec.Gauge("serve.graphs").Set(int64(len(s.graphs)))
	}
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleListGraphs(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	out := make([]GraphInfo, 0, len(s.graphs))
	for _, e := range s.graphs {
		out = append(out, e.info)
	}
	s.mu.RUnlock()
	sortByString(out, func(gi GraphInfo) string { return gi.Fingerprint })
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	fp, err := parseKey(r.PathValue("fp"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.RLock()
	e, ok := s.graphs[fp]
	s.mu.RUnlock()
	if !ok {
		s.fail(w, http.StatusNotFound, "graph %s not registered", keyString(fp))
		return
	}
	s.writeJSON(w, http.StatusOK, e.info)
}

// handleRegisterPlan compiles a PlanSpec. Compilation is the expensive
// validating half of the split API; it happens exactly once per
// configuration — re-registering an equivalent spec returns the existing
// plan (keyed by PlanKey).
func (s *Server) handleRegisterPlan(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r, resilience.ClassRegister)
	if !ok {
		return
	}
	defer release()
	var spec PlanSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadBytes)).Decode(&spec); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding plan spec: %v", err)
		return
	}
	pl, err := spec.Compile()
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	info := PlanInfo{Plan: keyString(pl.PlanKey()), Algorithm: pl.Name(), Seed: pl.Seed(), Spec: spec}
	s.mu.Lock()
	if existing, ok := s.plans[pl.PlanKey()]; ok {
		info = existing.info
	} else {
		s.plans[pl.PlanKey()] = &planEntry{pl: pl, info: info}
		s.rec.Gauge("serve.plans").Set(int64(len(s.plans)))
	}
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleListPlans(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	out := make([]PlanInfo, 0, len(s.plans))
	for _, e := range s.plans {
		out = append(out, e.info)
	}
	s.mu.RUnlock()
	sortByString(out, func(pi PlanInfo) string { return pi.Plan })
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetPlan(w http.ResponseWriter, r *http.Request) {
	key, err := parseKey(r.PathValue("key"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.RLock()
	e, ok := s.plans[key]
	s.mu.RUnlock()
	if !ok {
		s.fail(w, http.StatusNotFound, "plan %s not registered", keyString(key))
		return
	}
	s.writeJSON(w, http.StatusOK, e.info)
}

// resolve looks up the graph and plan a decompose request addresses and
// applies the seed override.
func (s *Server) resolve(req DecomposeRequest) (graph.Interface, *decomp.Plan, error) {
	fp, err := parseKey(req.Graph)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: %w", err)
	}
	key, err := parseKey(req.Plan)
	if err != nil {
		return nil, nil, fmt.Errorf("plan: %w", err)
	}
	s.mu.RLock()
	ge, gok := s.graphs[fp]
	pe, pok := s.plans[key]
	s.mu.RUnlock()
	if !gok {
		return nil, nil, fmt.Errorf("graph %s not registered (POST /v1/graphs first)", keyString(fp))
	}
	if !pok {
		return nil, nil, fmt.Errorf("plan %s not registered (POST /v1/plans first)", keyString(key))
	}
	pl := pe.pl
	if req.Seed != nil {
		pl = pl.WithSeed(*req.Seed)
	}
	return ge.g, pl, nil
}

// handleDecompose is the synchronous serving path: resolve, try the
// cache-only read (a warm hit answers without admission — it holds no
// worker and must survive saturation, degradation, and drain alike),
// then shed/admit/deadline-bound the cold execution.
func (s *Server) handleDecompose(w http.ResponseWriter, r *http.Request) {
	var req DecomposeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadBytes)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	g, pl, err := s.resolve(req)
	if err != nil {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}
	start := time.Now()
	if p, ok := s.sess.Peek(pl, g); ok {
		lat := time.Since(start)
		s.hDecompose.Observe(lat.Nanoseconds())
		s.writeJSON(w, http.StatusOK, DecomposeResponse{
			Graph:     keyString(graph.Fingerprint(g)),
			Plan:      keyString(pl.PlanKey()),
			Seed:      pl.Seed(),
			Algorithm: pl.Name(),
			CacheHit:  true,
			LatencyNs: lat.Nanoseconds(),
			Partition: p,
		})
		return
	}
	if s.shedColdWork(w, resilience.ClassDecompose) {
		return
	}
	release, ok := s.admit(w, r, resilience.ClassDecompose)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.gov.Deadline().Context(r.Context(), requestDeadline(r, req.DeadlineMs))
	defer cancel()
	j := s.sess.Submit(ctx, pl, g)
	p, err := j.Wait()
	if err != nil {
		s.failExec(w, r, err, "decompose")
		return
	}
	lat := time.Since(start)
	s.hDecompose.Observe(lat.Nanoseconds())
	s.writeJSON(w, http.StatusOK, DecomposeResponse{
		Graph:     keyString(j.Key().Graph),
		Plan:      keyString(j.Key().Plan),
		Seed:      j.Key().Seed,
		Algorithm: pl.Name(),
		CacheHit:  j.CacheHit(),
		LatencyNs: lat.Nanoseconds(),
		Partition: p,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	ngraphs, nplans := len(s.graphs), len(s.plans)
	lastPrev, lastNew := s.lastMutPrev, s.lastMutNew
	s.mu.RUnlock()
	resp := StatsResponse{
		Session: s.sess.Stats(),
		Graphs:  ngraphs,
		Plans:   nplans,
		SSE: SSEInfo{
			Clients:       s.cSSEClients.Value(),
			DroppedRounds: s.cSSEDropped.Value(),
			DroppedEvents: s.cSSEDroppedEvents.Value(),
		},
	}
	if s.store != nil {
		resp.Store = s.store.info()
	}
	resp.Resilience = s.resilienceInfo()
	if s.cMutBatches.Value() > 0 {
		resp.Mutations = &MutationInfo{
			Batches:         s.cMutBatches.Value(),
			Applied:         s.cMutApplied.Value(),
			Noops:           s.cMutNoops.Value(),
			Compactions:     s.cMutCompact.Value(),
			Invalidated:     s.cMutInvalid.Value(),
			LastPrevious:    lastPrev,
			LastFingerprint: lastNew,
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// resilienceInfo assembles the /v1/stats resilience block.
func (s *Server) resilienceInfo() *ResilienceInfo {
	info := &ResilienceInfo{
		Governor:      s.gov.Snapshot(),
		Shed:          s.cShed.Value(),
		Timeouts:      s.cTimeouts.Value(),
		ClientCancels: s.cClientCancels.Value(),
		HandlerPanics: s.cPanics.Value(),
	}
	if s.injector != nil {
		st := s.injector.Stats()
		info.Injector = &st
		info.InjectorEnabled = s.injector.Enabled()
	}
	return info
}

func (s *Server) handleStoreFlush(w http.ResponseWriter, _ *http.Request) {
	n, err := s.Flush()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "flush: %v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]int{"entries": n})
}

// maxUploadBytes bounds request bodies (edge lists included): 256 MiB
// admits graphs in the tens of millions of edges while keeping one client
// from exhausting memory.
const maxUploadBytes = 256 << 20

// isJSONRequest reports whether the request declared a JSON body.
func isJSONRequest(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	return ct == "application/json" || len(ct) > 16 && ct[:16] == "application/json"
}
