package serve

// The graph mutation endpoint: POST /v1/graphs/{fp}/mutate applies a batch
// of edge insertions/deletions (internal/dyn wire codec) to a registered
// graph and re-keys it under the mutated content's fingerprint.
//
// Graph keys are versioned by content: a mutation retires the old
// fingerprint (the entry is removed and its session-cache results are
// invalidated) and registers the new one, with Version/Parent in GraphInfo
// recording the lineage. Clients follow the returned fingerprint for
// subsequent decompose requests — a request against the retired key
// answers 404, never a stale partition.
//
// Batches against one graph are serialized by optimistic concurrency: the
// overlay is built outside the registry lock, and the swap re-checks that
// the addressed entry is still current — a concurrent mutation of the same
// key answers 409 and the client retries against the new fingerprint.
//
// Past compactDeltaThreshold effective mutations the overlay is folded
// into a flat CSR graph before it is stored, so long mutation histories
// never accumulate behind a serving key.

import (
	"net/http"

	"netdecomp/internal/dyn"
	"netdecomp/internal/graph"
	"netdecomp/internal/resilience"
)

// compactDeltaThreshold is the effective-mutation count past which a
// mutated graph is re-materialized into a flat CSR before serving. Row
// reads through the overlay's patch map cost one hash lookup; a few
// hundred patched rows are noise, unbounded growth is not.
const compactDeltaThreshold = 512

// handleMutateGraph applies one mutation batch to a registered graph.
func (s *Server) handleMutateGraph(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r, resilience.ClassRegister)
	if !ok {
		return
	}
	defer release()
	fp, err := parseKey(r.PathValue("fp"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	batch, err := dyn.DecodeBatch(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.RLock()
	entry, ok := s.graphs[fp]
	s.mu.RUnlock()
	if !ok {
		s.fail(w, http.StatusNotFound, "graph %s not registered", keyString(fp))
		return
	}

	// Apply and fingerprint outside the lock: the entry graph is immutable,
	// and these are the expensive steps.
	next, res, err := dyn.Wrap(entry.g).Apply(batch)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.cMutBatches.Inc()
	s.cMutApplied.Add(int64(res.Inserted + res.Deleted))
	s.cMutNoops.Add(int64(res.Noops))

	resp := MutateResponse{
		Previous: keyString(fp),
		Inserted: res.Inserted,
		Deleted:  res.Deleted,
		Noops:    res.Noops,
	}
	if len(res.Effective) == 0 {
		// Pure no-op batch: the content is unchanged, so the key, the entry,
		// and every cached result stay exactly as they are.
		resp.Fingerprint = keyString(fp)
		resp.Version = entry.info.Version
		resp.N, resp.M = entry.g.N(), graph.EdgeCount(entry.g)
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	var ng graph.Interface = next
	if next.DeltaSize() >= compactDeltaThreshold {
		ng = next.Compact()
		resp.Compacted = true
		s.cMutCompact.Inc()
	} else {
		resp.DeltaSize = next.DeltaSize()
	}
	newFP := graph.Fingerprint(ng)
	resp.Fingerprint = keyString(newFP)
	resp.N, resp.M = ng.N(), graph.EdgeCount(ng)

	s.mu.Lock()
	if cur, ok := s.graphs[fp]; !ok || cur != entry {
		s.mu.Unlock()
		s.fail(w, http.StatusConflict,
			"graph %s was mutated concurrently; re-resolve and retry", keyString(fp))
		return
	}
	if newFP == fp {
		// The batch's effective mutations cancelled out (e.g. insert then
		// delete of the same absent edge): same content, same key, no swap.
		resp.Version = entry.info.Version
		s.mu.Unlock()
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	info := GraphInfo{
		Fingerprint: keyString(newFP),
		N:           resp.N,
		M:           resp.M,
		Source:      entry.info.Source,
		// Spec is dropped: a generator spec no longer describes the mutated
		// content, so the persisted record falls back to the edge list.
		Version: entry.info.Version + 1,
		Parent:  keyString(fp),
	}
	delete(s.graphs, fp)
	s.graphs[newFP] = &graphEntry{g: ng, info: info}
	s.lastMutPrev, s.lastMutNew = keyString(fp), keyString(newFP)
	s.rec.Gauge("serve.graphs").Set(int64(len(s.graphs)))
	s.mu.Unlock()

	// Narrow invalidation: only the retired fingerprint's cached results
	// are dropped — every other graph's entries survive.
	invalidated := s.sess.InvalidateGraph(fp)
	s.cMutInvalid.Add(int64(invalidated))
	resp.Version = info.Version
	resp.InvalidatedEntries = invalidated
	s.writeJSON(w, http.StatusOK, resp)
}
