package decomp

// goldenDigests pins every registry algorithm's exact output (see
// TestGoldenPartitions). Recorded on the pre-CSR adjacency-list graph
// representation; any change here means the decomposition outputs changed.
var goldenDigests = map[string]uint64{
	"ball-carving/gnp300":           0x322358338644356e,
	"elkin-neiman/gnp300":           0x2c534a6385a09786,
	"elkin-neiman/dist/gnp300":      0x2c534a6385a09786,
	"elkin-neiman/theorem1/gnp300":  0x2c534a6385a09786,
	"elkin-neiman/theorem2/gnp300":  0x87b7f20f43157e39,
	"elkin-neiman/theorem3/gnp300":  0x78dc1531b95960f1,
	"linial-saks/gnp300":            0x57e64efaec1d1186,
	"mpx/gnp300":                    0xa89e43ea16dcdb01,
	"mpx/dist/gnp300":               0xa89e43ea16dcdb01,
	"ball-carving/ring128":          0xf00cc956fcdb592f,
	"elkin-neiman/ring128":          0x2a8f1db5f5ee54f3,
	"elkin-neiman/dist/ring128":     0x2a8f1db5f5ee54f3,
	"elkin-neiman/theorem1/ring128": 0x2a8f1db5f5ee54f3,
	"elkin-neiman/theorem2/ring128": 0x96813fb764671bd7,
	"elkin-neiman/theorem3/ring128": 0xfc8c4561d2788721,
	"linial-saks/ring128":           0x500f18faf09e4fc1,
	"mpx/ring128":                   0x18a3bd6b32c78382,
	"mpx/dist/ring128":              0x18a3bd6b32c78382,
	"ball-carving/tree200":          0xf7b389a7280776b0,
	"elkin-neiman/tree200":          0x3b058d069a14ad22,
	"elkin-neiman/dist/tree200":     0x3b058d069a14ad22,
	"elkin-neiman/theorem1/tree200": 0x3b058d069a14ad22,
	"elkin-neiman/theorem2/tree200": 0x3b058d069a14ad22,
	"elkin-neiman/theorem3/tree200": 0x8888c8562cf1c7a1,
	"linial-saks/tree200":           0x1776ac02da8b5d3b,
	"mpx/tree200":                   0xb6437e83a363ead8,
	"mpx/dist/tree200":              0xb6437e83a363ead8,
}
