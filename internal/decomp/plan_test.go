package decomp

import (
	"context"
	"reflect"
	"testing"

	"netdecomp/internal/dist"
	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
)

// TestCompileValidates pins compile-time validation: unknown names and
// structurally nonsensical configurations fail at Compile, not at Run.
func TestCompileValidates(t *testing.T) {
	if _, err := Compile("no-such-algorithm"); err == nil {
		t.Error("unknown name accepted")
	}
	bad := []Option{
		WithK(-1),
		WithLambda(-2),
		WithC(-0.5),
		WithBeta(-0.1),
		WithPhaseBudget(-3),
		WithParallel(-4),
	}
	for i, opt := range bad {
		if _, err := Compile("elkin-neiman", opt); err == nil {
			t.Errorf("bad option %d accepted", i)
		}
	}
	if _, err := CompileDecomposer(nil); err == nil {
		t.Error("nil decomposer accepted")
	}
	if _, err := Compile("elkin-neiman", WithK(5), WithSeed(9)); err != nil {
		t.Errorf("valid compile failed: %v", err)
	}
}

// TestPlanKeyAnatomy pins the digest contract: every semantic field moves
// the key, while seed and observer — the two components deliberately
// outside it — do not.
func TestPlanKeyAnatomy(t *testing.T) {
	base := func() (*Plan, error) { return Compile("elkin-neiman", WithK(3), WithC(8)) }
	pl, err := base()
	if err != nil {
		t.Fatal(err)
	}
	again, err := base()
	if err != nil {
		t.Fatal(err)
	}
	if pl.PlanKey() != again.PlanKey() {
		t.Fatal("equal inputs compiled to different keys")
	}
	variants := map[string]Option{
		"K":             WithK(4),
		"Lambda":        WithLambda(3),
		"C":             WithC(9),
		"Beta":          WithBeta(0.4),
		"ForceComplete": WithForceComplete(),
		"PhaseBudget":   WithPhaseBudget(7),
		"ExactRadius":   WithExactRadius(),
		"Engine":        WithEngine(),
		"Parallel":      WithParallel(2),
	}
	for field, opt := range variants {
		v, err := Compile("elkin-neiman", WithK(3), WithC(8), opt)
		if err != nil {
			t.Fatalf("%s: %v", field, err)
		}
		if v.PlanKey() == pl.PlanKey() {
			t.Errorf("changing %s did not change the plan key", field)
		}
	}
	otherName, err := Compile("linial-saks", WithK(3), WithC(8))
	if err != nil {
		t.Fatal(err)
	}
	if otherName.PlanKey() == pl.PlanKey() {
		t.Error("different algorithm, same key")
	}
	if pl.WithSeed(99).PlanKey() != pl.PlanKey() {
		t.Error("seed moved the plan key; it is keyed separately")
	}
	if pl.WithObserver(func(dist.RoundStats) {}).PlanKey() != pl.PlanKey() {
		t.Error("observer moved the plan key")
	}
	if pl.WithSeed(99).Seed() != 99 || pl.Seed() != 0 {
		t.Error("WithSeed mutated the original plan")
	}
}

// TestPlanRunEqualsDecompose pins the compile/execute split against the
// one-shot entry point for every registered algorithm: identical
// Partitions, field for field.
func TestPlanRunEqualsDecompose(t *testing.T) {
	g, err := gen.Build(gen.FamilyGnp, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, name := range Names() {
		opts := []Option{WithSeed(5), WithForceComplete()}
		direct, err := MustGet(name).Decompose(ctx, g, opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pl, err := Compile(name, opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		viaPlan, err := pl.Run(ctx, g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(direct, viaPlan) {
			t.Errorf("%s: Plan.Run differs from Decompose", name)
		}
	}
}

// planOnly wraps a Decomposer while hiding any DecomposeConfig method, so
// compiled plans over it must take Plan.Run's WithConfig fallback path.
type planOnly struct{ inner Decomposer }

func (p planOnly) Name() string { return p.inner.Name() }
func (p planOnly) Decompose(ctx context.Context, g graph.Interface, opts ...Option) (*Partition, error) {
	return p.inner.Decompose(ctx, g, opts...)
}

// TestPlanRunConfigFallback pins the WithConfig path: a Decomposer that
// does not implement ConfigRunner still executes the compiled Config
// verbatim, producing the same Partition as a direct call.
func TestPlanRunConfigFallback(t *testing.T) {
	g, err := gen.Build(gen.FamilyGnp, 120, 2)
	if err != nil {
		t.Fatal(err)
	}
	opaque := planOnly{inner: MustGet("ball-carving")}
	if _, ok := Decomposer(opaque).(ConfigRunner); ok {
		t.Fatal("test wrapper unexpectedly implements ConfigRunner")
	}
	pl, err := CompileDecomposer(opaque, WithK(4), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Apply([]Option{WithConfig(pl.Config())})
	if cfg.K != 4 || cfg.Seed != 6 {
		t.Fatalf("WithConfig did not carry the compiled Config: %+v", cfg)
	}
	direct, err := MustGet("ball-carving").Decompose(context.Background(), g, WithK(4), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	viaPlan, err := pl.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, viaPlan) {
		t.Error("fallback plan run differs from direct")
	}
}

// TestPartitionClone pins the deep copy: mutating a clone's slices leaves
// the original untouched.
func TestPartitionClone(t *testing.T) {
	g, err := gen.Build(gen.FamilyGnp, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := MustGet("elkin-neiman").Decompose(context.Background(), g,
		WithSeed(2), WithForceComplete())
	if err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	if !reflect.DeepEqual(p, c) {
		t.Fatal("clone not equal to original")
	}
	c.Clusters[0].Members[0] = -999
	c.ClusterOf[0] = -999
	c.Clusters[0].Color = -999
	if p.Clusters[0].Members[0] == -999 || p.ClusterOf[0] == -999 || p.Clusters[0].Color == -999 {
		t.Fatal("mutating the clone corrupted the original")
	}
}
