package decomp

import (
	"netdecomp/internal/dist"
	"netdecomp/internal/obs"
)

// Config is the resolved option set a Decomposer receives. Every algorithm
// reads the fields it understands and ignores the rest, so one option list
// drives any registry name — the head-to-head loops pass identical options
// to every algorithm.
type Config struct {
	// Seed drives all randomness; equal seeds give identical runs.
	Seed uint64
	// K is the radius parameter (Elkin–Neiman Theorems 1–2, Linial–Saks,
	// ball carving). 0 selects each algorithm's documented default
	// (⌈ln n⌉ for the randomized algorithms, ⌈log₂ n⌉ for ball carving).
	K int
	// Lambda is the color budget of Elkin–Neiman Theorem 3; 0 defaults
	// to 2.
	Lambda int
	// C is the confidence parameter of the randomized algorithms; 0
	// defaults to 8.
	C float64
	// Beta is the MPX exponential rate; 0 defaults to 0.3.
	Beta float64
	// ForceComplete keeps carving past the theorem budget until every
	// vertex is clustered (Elkin–Neiman, Linial–Saks; MPX and ball carving
	// are always complete).
	ForceComplete bool
	// PhaseBudget overrides the theorem's phase budget when positive.
	PhaseBudget int
	// ExactRadius selects the RadiusExact truncation mode of the
	// Elkin–Neiman sequential simulation.
	ExactRadius bool
	// Engine executes Elkin–Neiman on the internal/dist message-passing
	// engine instead of the sequential simulation ("elkin-neiman/dist"
	// forces this).
	Engine bool
	// Parallel / Workers select deterministic parallel execution: the
	// goroutine-pool scheduler for engine-backed runs, the
	// receiver-sharded parallel rounds for the sequential Elkin–Neiman
	// simulation. Either way the result is bit-identical to the sequential
	// execution for any worker count. Setting them via WithScheduler also
	// sets Engine; WithParallel leaves the execution path alone.
	Parallel bool
	Workers  int
	// Observer streams per-round traffic statistics as the run executes.
	// Engine-backed algorithms report real engine rounds; the sequential
	// Elkin–Neiman simulation reports its message-accurate equivalent; the
	// purely sequential yardsticks (Linial–Saks, MPX-sequential, ball
	// carving) do not emit callbacks.
	Observer func(dist.RoundStats)
	// Recorder attaches the unified telemetry layer (internal/obs): Plan.Run
	// wraps the execution in a span keyed by PlanKey, observes its latency
	// into the per-algorithm plan.<name>.ns histogram, and hands the
	// algorithm a recorder rooted at that span — the engine and the phase
	// simulation then record rounds, messages, words and frontier sizes
	// into the same registry. Like Observer, the Recorder is an execution
	// side channel: it is excluded from the PlanKey, and nil disables all
	// telemetry at zero cost.
	Recorder *obs.Recorder
}

// Option is a functional option for Decompose.
type Option func(*Config)

// Apply folds the options into a zero Config.
func Apply(opts []Option) Config {
	var c Config
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return c
}

// WithSeed sets the random seed.
func WithSeed(seed uint64) Option { return func(c *Config) { c.Seed = seed } }

// WithK sets the radius parameter.
func WithK(k int) Option { return func(c *Config) { c.K = k } }

// WithLambda sets the Theorem 3 color budget.
func WithLambda(lambda int) Option { return func(c *Config) { c.Lambda = lambda } }

// WithC sets the confidence parameter.
func WithC(cv float64) Option { return func(c *Config) { c.C = cv } }

// WithBeta sets the MPX exponential rate.
func WithBeta(beta float64) Option { return func(c *Config) { c.Beta = beta } }

// WithForceComplete keeps carving until every vertex is clustered.
func WithForceComplete() Option { return func(c *Config) { c.ForceComplete = true } }

// WithPhaseBudget overrides the phase budget.
func WithPhaseBudget(budget int) Option { return func(c *Config) { c.PhaseBudget = budget } }

// WithExactRadius selects the untruncated RadiusExact mode (sequential
// Elkin–Neiman only).
func WithExactRadius() Option { return func(c *Config) { c.ExactRadius = true } }

// WithEngine executes on the message-passing engine (Elkin–Neiman).
func WithEngine() Option { return func(c *Config) { c.Engine = true } }

// WithScheduler selects the engine scheduler: parallel toggles the
// goroutine pool, workers caps its size (0 = GOMAXPROCS). It implies
// WithEngine for algorithms that have both execution paths.
func WithScheduler(parallel bool, workers int) Option {
	return func(c *Config) {
		c.Engine = true
		c.Parallel = parallel
		c.Workers = workers
	}
}

// WithParallel enables deterministic parallel execution on whichever path
// the algorithm runs (engine scheduler or simulation rounds) without
// forcing the engine; workers caps the pool (0 = GOMAXPROCS). Results are
// bit-identical to sequential execution.
func WithParallel(workers int) Option {
	return func(c *Config) {
		c.Parallel = true
		c.Workers = workers
	}
}

// WithObserver streams per-round statistics to fn as the run executes.
func WithObserver(fn func(dist.RoundStats)) Option {
	return func(c *Config) { c.Observer = fn }
}

// WithRecorder attaches a telemetry recorder to the run (see
// Config.Recorder). A nil recorder leaves telemetry disabled.
func WithRecorder(rec *obs.Recorder) Option {
	return func(c *Config) { c.Recorder = rec }
}

// WithConfig replaces the whole Config with an already-resolved one. It is
// how a compiled Plan drives Decomposers that do not implement
// ConfigRunner: the plan's validated Config is carried through the option
// list verbatim. Options appearing after WithConfig still apply on top.
func WithConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}
