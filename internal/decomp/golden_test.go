package decomp

import (
	"context"
	"fmt"
	"hash/fnv"
	"testing"

	"netdecomp/internal/gen"
)

// partitionDigest folds every observable field of a Partition that the
// acceptance contract pins — cluster members, centers, phases, colors, the
// vertex assignment, color count and completeness — into one FNV-1a hash.
// Metrics are deliberately excluded: they describe the execution, not the
// partition.
func partitionDigest(p *Partition) uint64 {
	h := fnv.New64a()
	w := func(x int) {
		var buf [8]byte
		v := uint64(x)
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	w(p.N)
	w(len(p.Clusters))
	for i := range p.Clusters {
		c := &p.Clusters[i]
		w(len(c.Members))
		for _, v := range c.Members {
			w(v)
		}
		w(c.Center)
		w(c.Phase)
		w(c.Color)
	}
	for _, ci := range p.ClusterOf {
		w(ci)
	}
	w(p.Colors)
	if p.Complete {
		w(1)
	} else {
		w(0)
	}
	return h.Sum64()
}

// goldenPartitions pins the exact output of every registered algorithm on
// fixed inputs. These hashes were recorded on the pre-CSR [][]int32 graph
// representation; the CSR redesign must reproduce them bit-for-bit, which
// holds because both store sorted adjacency and every algorithm's traversal
// order is a function of that order alone.
func TestGoldenPartitions(t *testing.T) {
	type input struct {
		name   string
		family gen.Family
		n      int
		seed   uint64
	}
	inputs := []input{
		{"gnp300", gen.FamilyGnp, 300, 1},
		{"ring128", gen.FamilyRingOfCliques, 128, 2},
		{"tree200", gen.FamilyTree, 200, 3},
	}
	want := goldenDigests
	for _, in := range inputs {
		g, err := gen.Build(in.family, in.n, in.seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range Names() {
			d := MustGet(algo)
			p, err := d.Decompose(context.Background(), g,
				WithSeed(7), WithForceComplete())
			if err != nil {
				t.Fatalf("%s on %s: %v", algo, in.name, err)
			}
			key := fmt.Sprintf("%s/%s", algo, in.name)
			got := partitionDigest(p)
			if want[key] != got {
				t.Errorf("%q: %#016x, // digest mismatch, want %#016x", key, got, want[key])
			}
			// The compile/execute split must reproduce the same digests:
			// Compile + Plan.Run is the path Decompose now shims onto, and
			// the session layer serves (internal/session runs the same
			// golden inputs through a warm Session in its own tests).
			pl, err := Compile(algo, WithSeed(7), WithForceComplete())
			if err != nil {
				t.Fatalf("%s on %s: compile: %v", algo, in.name, err)
			}
			pp, err := pl.Run(context.Background(), g)
			if err != nil {
				t.Fatalf("%s on %s: plan run: %v", algo, in.name, err)
			}
			if got := partitionDigest(pp); want[key] != got {
				t.Errorf("%q via Plan.Run: %#016x, want %#016x", key, got, want[key])
			}
		}
	}
}
