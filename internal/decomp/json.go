package decomp

// Stable JSON marshalling for the API surface. encoding/json on a struct
// is already order-stable, but hand-rolling the encoder here makes the
// contract explicit and independent of field reordering in the Go types:
// the serving daemon's responses and the snapshot metadata in tests are
// byte-diffable across builds. Field order is frozen below; floats are
// rendered with strconv's shortest round-trip form ('g', -1), which is
// deterministic across platforms — no exponent/precision drift.
//
// Metrics.PerRound is deliberately omitted: per-round statistics are a
// stream (the SSE endpoint), not part of the stable result document, and
// including them would make response size O(rounds).

import (
	"fmt"
	"strconv"
)

// MarshalJSON renders the mode by name ("strong"/"weak"), matching the
// stable Partition document.
func (m DiameterMode) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, m.String()), nil
}

// UnmarshalJSON accepts the names MarshalJSON emits, so clients (and the
// serving daemon's own tests) can decode the stable document back into the
// Go types.
func (m *DiameterMode) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("decomp: diameter mode %s: %w", data, err)
	}
	switch s {
	case "strong":
		*m = StrongDiameter
	case "weak":
		*m = WeakDiameter
	default:
		return fmt.Errorf("decomp: unknown diameter mode %q", s)
	}
	return nil
}

// jsonBuf is a tiny append-only JSON writer: explicit field order, no
// reflection, no HTML escaping surprises.
type jsonBuf struct {
	b     []byte
	first bool
}

func (j *jsonBuf) open()  { j.b = append(j.b, '{'); j.first = true }
func (j *jsonBuf) close() { j.b = append(j.b, '}') }

func (j *jsonBuf) key(name string) {
	if !j.first {
		j.b = append(j.b, ',')
	}
	j.first = false
	j.b = strconv.AppendQuote(j.b, name)
	j.b = append(j.b, ':')
}

func (j *jsonBuf) str(name, v string) {
	j.key(name)
	j.b = strconv.AppendQuote(j.b, v)
}

func (j *jsonBuf) num(name string, v int64) {
	j.key(name)
	j.b = strconv.AppendInt(j.b, v, 10)
}

func (j *jsonBuf) unum(name string, v uint64) {
	j.key(name)
	j.b = strconv.AppendUint(j.b, v, 10)
}

func (j *jsonBuf) boolean(name string, v bool) {
	j.key(name)
	j.b = strconv.AppendBool(j.b, v)
}

// float renders v in the shortest form that parses back exactly —
// deterministic, no trailing-digit drift between encoders.
func (j *jsonBuf) float(name string, v float64) {
	j.key(name)
	j.b = strconv.AppendFloat(j.b, v, 'g', -1, 64)
}

func (j *jsonBuf) ints(name string, vs []int) {
	j.key(name)
	j.b = append(j.b, '[')
	for i, v := range vs {
		if i > 0 {
			j.b = append(j.b, ',')
		}
		j.b = strconv.AppendInt(j.b, int64(v), 10)
	}
	j.b = append(j.b, ']')
}

// MarshalJSON renders the cluster with frozen field order:
// members, center, phase, color.
func (c Cluster) MarshalJSON() ([]byte, error) {
	var j jsonBuf
	j.open()
	j.ints("members", c.Members)
	j.num("center", int64(c.Center))
	j.num("phase", int64(c.Phase))
	j.num("color", int64(c.Color))
	j.close()
	return j.b, nil
}

// MarshalJSON renders the partition with frozen field order:
// algorithm, n, clusters, clusterOf, colors, phasesUsed, phaseBudget,
// complete, mode, properColors, metrics{rounds, messages, words,
// maxMessageWords}, cutEdges, cutFraction. The document is byte-stable for
// equal partitions across builds and platforms; Metrics.PerRound is not
// included (see the package comment above).
func (p *Partition) MarshalJSON() ([]byte, error) {
	var j jsonBuf
	j.open()
	j.str("algorithm", p.Algorithm)
	j.num("n", int64(p.N))
	j.key("clusters")
	j.b = append(j.b, '[')
	for i := range p.Clusters {
		if i > 0 {
			j.b = append(j.b, ',')
		}
		cb, _ := p.Clusters[i].MarshalJSON()
		j.b = append(j.b, cb...)
	}
	j.b = append(j.b, ']')
	j.ints("clusterOf", p.ClusterOf)
	j.num("colors", int64(p.Colors))
	j.num("phasesUsed", int64(p.PhasesUsed))
	j.num("phaseBudget", int64(p.PhaseBudget))
	j.boolean("complete", p.Complete)
	j.str("mode", p.Mode.String())
	j.boolean("properColors", p.ProperColors)
	j.key("metrics")
	var m jsonBuf
	m.open()
	m.num("rounds", int64(p.Metrics.Rounds))
	m.num("messages", p.Metrics.Messages)
	m.num("words", p.Metrics.Words)
	m.num("maxMessageWords", int64(p.Metrics.MaxMessageWords))
	m.close()
	j.b = append(j.b, m.b...)
	j.num("cutEdges", int64(p.CutEdges))
	j.float("cutFraction", p.CutFraction)
	j.close()
	return j.b, nil
}
