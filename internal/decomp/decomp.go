// Package decomp is the unified decomposition API of the repository: one
// Decomposer interface, one Partition result type, and one string-keyed
// registry covering every clustering algorithm the repo implements —
// Elkin–Neiman in all three theorem regimes (sequential simulation and
// true engine execution), Linial–Saks, Miller–Peng–Xu (sequential and
// engine-backed), and deterministic ball carving.
//
// The point of the paper is that strong-diameter decomposition is a
// drop-in primitive: Elkin–Neiman competes head-to-head with Linial–Saks
// and MPX and then feeds the same downstream consumers (MIS, coloring,
// matching, covers, spanners). This package makes that literal: every
// algorithm is reachable as
//
//	d, _ := decomp.Get("elkin-neiman/theorem2")
//	p, err := d.Decompose(ctx, g, decomp.WithSeed(7), decomp.WithK(5))
//
// and every consumer accepts the resulting *Partition, so head-to-head
// experiments and derived structures are loops over registry names rather
// than per-algorithm glue.
package decomp

import (
	"fmt"

	"netdecomp/internal/baseline"
	"netdecomp/internal/core"
	"netdecomp/internal/dist"
	"netdecomp/internal/graph"
	"netdecomp/internal/verify"
)

// DiameterMode records which diameter notion an algorithm bounds for its
// clusters.
type DiameterMode int

const (
	// StrongDiameter: every cluster is connected in its induced subgraph
	// and the bound applies to induced-subgraph distances (Elkin–Neiman,
	// MPX, ball carving).
	StrongDiameter DiameterMode = iota + 1
	// WeakDiameter: the bound applies to whole-graph distances between
	// cluster members; induced subgraphs may be disconnected
	// (Linial–Saks).
	WeakDiameter
)

// String returns the mode name.
func (m DiameterMode) String() string {
	switch m {
	case StrongDiameter:
		return "strong"
	case WeakDiameter:
		return "weak"
	default:
		return fmt.Sprintf("diametermode(%d)", int(m))
	}
}

// Cluster is one cluster of a Partition.
type Cluster struct {
	// Members are the vertex ids, sorted ascending.
	Members []int
	// Center is the vertex whose broadcast captured the members.
	Center int
	// Phase is the phase that carved the cluster (0 for one-shot
	// partitions).
	Phase int
	// Color is the cluster's color class.
	Color int
}

// Partition is the unified result of any registered decomposition
// algorithm. It subsumes core.Decomposition, baseline.Partition and
// baseline.MPXResult: clusters with colors, a completeness flag, the
// diameter mode the algorithm bounds, and the CONGEST cost metrics of the
// execution that produced it.
//
// Ownership: the Cluster member slices and ClusterOf belong to the
// Partition (the converters below may share them with the producing
// algorithm's own result, never with other Partitions). Consumers that
// retain them beyond a call must copy — apps.FromPartition copies, and the
// session cache hands out Clone()s — and a caller that mutates them
// forfeits every derived structure. Use Clone for an independent copy.
type Partition struct {
	// Algorithm is the registry name of the producing algorithm.
	Algorithm string
	// N is the number of vertices of the input graph.
	N int
	// Clusters lists the clusters in order of creation.
	Clusters []Cluster
	// ClusterOf maps each vertex to its index in Clusters, or -1 when the
	// run ended with the vertex unassigned (only when Complete is false).
	ClusterOf []int
	// Colors is the number of color classes used.
	Colors int
	// PhasesUsed / PhaseBudget describe the phase loop.
	PhasesUsed  int
	PhaseBudget int
	// Complete reports whether every vertex was clustered.
	Complete bool
	// Mode is the diameter notion the algorithm bounds.
	Mode DiameterMode
	// ProperColors reports whether the cluster colors form a proper
	// coloring of the cluster supergraph — true for network decompositions
	// (Elkin–Neiman, Linial–Saks, ball carving), false for low-diameter
	// partitions (MPX, whose single color class is shared by adjacent
	// clusters).
	ProperColors bool
	// Metrics is the CONGEST account of the producing execution. Purely
	// sequential constructions (ball carving) report zero rounds; the
	// engine-backed algorithms report real engine accounting.
	Metrics dist.Metrics
	// CutEdges / CutFraction are the MPX quality measures (zero for other
	// algorithms): the number and fraction of edges with endpoints in
	// different clusters.
	CutEdges    int
	CutFraction float64
}

// Clone returns a deep copy of the partition: the clusters, every member
// slice and the vertex assignment are freshly allocated, so mutating the
// copy (or the original) cannot corrupt the other. The session result
// cache returns clones for exactly this reason.
func (p *Partition) Clone() *Partition {
	cp := *p
	cp.Clusters = make([]Cluster, len(p.Clusters))
	for i := range p.Clusters {
		c := p.Clusters[i]
		c.Members = append([]int(nil), c.Members...)
		cp.Clusters[i] = c
	}
	cp.ClusterOf = append([]int(nil), p.ClusterOf...)
	cp.Metrics.PerRound = append([]dist.RoundStats(nil), p.Metrics.PerRound...)
	return &cp
}

// ColorOf returns the color class of vertex v, or -1 if v is unassigned.
func (p *Partition) ColorOf(v int) int {
	ci := p.ClusterOf[v]
	if ci < 0 {
		return -1
	}
	return p.Clusters[ci].Color
}

// MemberLists returns the clusters as plain member slices, the shape the
// verify package consumes.
func (p *Partition) MemberLists() [][]int {
	out := make([][]int, len(p.Clusters))
	for i := range p.Clusters {
		out[i] = p.Clusters[i].Members
	}
	return out
}

// ClusterColors returns the per-cluster color slice aligned with
// MemberLists.
func (p *Partition) ClusterColors() []int {
	out := make([]int, len(p.Clusters))
	for i := range p.Clusters {
		out[i] = p.Clusters[i].Color
	}
	return out
}

// Unassigned returns the vertices that were never clustered, ascending.
func (p *Partition) Unassigned() []int {
	var out []int
	for v, ci := range p.ClusterOf {
		if ci < 0 {
			out = append(out, v)
		}
	}
	return out
}

// StrongDiameter returns the maximum strong diameter over connected
// clusters and the number of disconnected (infinite-diameter) clusters.
func (p *Partition) StrongDiameter(g graph.Interface) (maxConnected, disconnected int) {
	for i := range p.Clusters {
		d, ok := graph.SubsetStrongDiameter(g, p.Clusters[i].Members)
		if !ok {
			disconnected++
			continue
		}
		if d > maxConnected {
			maxConnected = d
		}
	}
	return maxConnected, disconnected
}

// WeakDiameter returns the maximum weak diameter over all clusters; ok is
// false if some cluster spans two components of g.
func (p *Partition) WeakDiameter(g graph.Interface) (int, bool) {
	max := 0
	for i := range p.Clusters {
		d, ok := graph.SubsetWeakDiameter(g, p.Clusters[i].Members)
		if !ok {
			return 0, false
		}
		if d > max {
			max = d
		}
	}
	return max, true
}

// DisconnectedClusters counts clusters whose induced subgraph is
// disconnected — the quantity that separates weak from strong
// decompositions.
func (p *Partition) DisconnectedClusters(g graph.Interface) int {
	_, disc := p.StrongDiameter(g)
	return disc
}

// Supergraph returns the cluster supergraph G(P): one vertex per cluster,
// an edge between two clusters when some original edge joins them.
// Unassigned vertices are ignored.
func (p *Partition) Supergraph(g graph.Interface) *graph.Graph {
	b := graph.NewBuilder(len(p.Clusters))
	for u := 0; u < g.N(); u++ {
		cu := p.ClusterOf[u]
		if cu < 0 {
			continue
		}
		for _, w := range g.Neighbors(u) {
			cw := p.ClusterOf[w]
			if cw >= 0 && cu < cw {
				b.AddEdge(cu, cw)
			}
		}
	}
	return b.Build()
}

// String summarizes the partition.
func (p *Partition) String() string {
	return fmt.Sprintf("partition{algo=%s n=%d clusters=%d colors=%d mode=%s complete=%v rounds=%d}",
		p.Algorithm, p.N, len(p.Clusters), p.Colors, p.Mode, p.Complete, p.Metrics.Rounds)
}

// Verify validates the partition against its graph with the invariants
// appropriate to its mode: disjoint clusters covering the graph iff
// Complete, connected induced subgraphs iff Mode is StrongDiameter, and a
// proper supergraph coloring iff ProperColors.
func (p *Partition) Verify(g graph.Interface) *verify.Report {
	return verify.Clustering(g, p.MemberLists(), p.ClusterColors(),
		p.Complete, p.Mode == StrongDiameter, p.ProperColors)
}

// FromCore converts an Elkin–Neiman core.Decomposition into the unified
// Partition. Cluster member slices are shared, not copied.
func FromCore(dec *core.Decomposition) *Partition {
	p := &Partition{
		Algorithm:    "elkin-neiman/" + dec.Opts.Variant.String(),
		N:            dec.N,
		Clusters:     make([]Cluster, len(dec.Clusters)),
		ClusterOf:    dec.ClusterOf,
		Colors:       dec.Colors,
		PhasesUsed:   dec.PhasesUsed,
		PhaseBudget:  dec.PhaseBudget,
		Complete:     dec.Complete,
		Mode:         StrongDiameter,
		ProperColors: true,
		Metrics: dist.Metrics{
			Rounds:          dec.Rounds,
			Messages:        dec.Messages,
			Words:           dec.MsgWords,
			MaxMessageWords: dec.MaxMsgWords,
		},
	}
	for i, c := range dec.Clusters {
		p.Clusters[i] = Cluster{Members: c.Members, Center: c.Center, Phase: c.Phase, Color: c.Color}
	}
	return p
}

// FromBaseline converts a baseline.Partition (Linial–Saks, ball carving)
// into the unified Partition under the given diameter mode.
func FromBaseline(algorithm string, bp *baseline.Partition, mode DiameterMode) *Partition {
	p := &Partition{
		Algorithm:    algorithm,
		N:            bp.N,
		Clusters:     make([]Cluster, len(bp.Clusters)),
		ClusterOf:    bp.ClusterOf,
		Colors:       bp.Colors,
		PhasesUsed:   bp.PhasesUsed,
		PhaseBudget:  bp.PhaseBudget,
		Complete:     bp.Complete,
		Mode:         mode,
		ProperColors: true,
		Metrics: dist.Metrics{
			Rounds:   bp.Rounds,
			Messages: bp.Messages,
		},
	}
	for i, c := range bp.Clusters {
		p.Clusters[i] = Cluster{Members: c.Members, Center: c.Center, Phase: c.Phase, Color: c.Color}
	}
	return p
}

// FromMPX converts a baseline.MPXResult into the unified Partition: a
// strong-diameter low-diameter partition whose single color class is not a
// proper supergraph coloring.
func FromMPX(algorithm string, r *baseline.MPXResult) *Partition {
	p := FromBaseline(algorithm, &r.Partition, StrongDiameter)
	p.ProperColors = false
	p.CutEdges = r.CutEdges
	p.CutFraction = r.CutFraction
	return p
}
