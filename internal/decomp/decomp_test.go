package decomp_test

import (
	"context"
	"reflect"
	"testing"

	"netdecomp/internal/baseline"
	"netdecomp/internal/core"
	"netdecomp/internal/decomp"
	"netdecomp/internal/dist"
	"netdecomp/internal/gen"
	"netdecomp/internal/randx"
)

// TestRegistryRoundTrip: every registered algorithm decomposes a small
// graph into a Partition that passes verification under its own mode.
func TestRegistryRoundTrip(t *testing.T) {
	for _, name := range decomp.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			g := gen.GnpConnected(randx.New(11), 160, 0.03)
			d, err := decomp.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			if d.Name() != name {
				t.Fatalf("Get(%q).Name() = %q", name, d.Name())
			}
			p, err := d.Decompose(context.Background(), g,
				decomp.WithSeed(3), decomp.WithForceComplete())
			if err != nil {
				t.Fatal(err)
			}
			if p.Algorithm == "" {
				t.Fatal("partition carries no algorithm name")
			}
			if !p.Complete {
				t.Fatal("ForceComplete partition incomplete")
			}
			if rep := p.Verify(g); !rep.Valid() {
				t.Fatalf("verification failed: %v", rep.Err())
			}
			if p.Mode == decomp.StrongDiameter {
				if _, disc := p.StrongDiameter(g); disc != 0 {
					t.Fatalf("strong-mode partition has %d disconnected clusters", disc)
				}
			}
		})
	}
}

func TestGetUnknownName(t *testing.T) {
	if _, err := decomp.Get("no-such-algorithm"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// TestAdaptersMatchLegacyEntryPoints: the registry path must be
// bit-identical to the per-algorithm entry points it replaces.
func TestAdaptersMatchLegacyEntryPoints(t *testing.T) {
	g := gen.GnpConnected(randx.New(5), 200, 0.025)
	ctx := context.Background()

	dec, err := core.Run(g, core.Options{K: 4, C: 8, Seed: 9, ForceComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := decomp.MustGet("elkin-neiman").Decompose(ctx, g,
		decomp.WithK(4), decomp.WithC(8), decomp.WithSeed(9), decomp.WithForceComplete())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.MemberLists(), decomp.FromCore(dec).MemberLists()) {
		t.Fatal("elkin-neiman adapter diverges from core.Run")
	}
	if p.Metrics.Messages != dec.Messages || p.Metrics.Rounds != dec.Rounds {
		t.Fatal("elkin-neiman adapter metrics diverge")
	}

	ls, err := baseline.LinialSaks(g, baseline.LSOptions{K: 4, C: 8, Seed: 9, ForceComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := decomp.MustGet("linial-saks").Decompose(ctx, g,
		decomp.WithK(4), decomp.WithC(8), decomp.WithSeed(9), decomp.WithForceComplete())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pl.MemberLists(), ls.MemberLists()) {
		t.Fatal("linial-saks adapter diverges from baseline.LinialSaks")
	}

	mp, err := baseline.MPX(g, baseline.MPXOptions{Beta: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	pm, err := decomp.MustGet("mpx").Decompose(ctx, g, decomp.WithBeta(0.3), decomp.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pm.MemberLists(), mp.MemberLists()) {
		t.Fatal("mpx adapter diverges from baseline.MPX")
	}
	if pm.CutEdges != mp.CutEdges {
		t.Fatal("mpx adapter loses cut accounting")
	}

	// The engine-backed MPX must produce the identical partition.
	pmd, err := decomp.MustGet("mpx/dist").Decompose(ctx, g, decomp.WithBeta(0.3), decomp.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pmd.MemberLists(), pm.MemberLists()) {
		t.Fatal("mpx/dist diverges from mpx")
	}
	if pmd.Metrics.Words == 0 || pmd.Metrics.MaxMessageWords != 2 {
		t.Fatalf("mpx/dist engine accounting missing: %+v", pmd.Metrics)
	}

	bc, err := baseline.BallCarving(g, baseline.BCOptions{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := decomp.MustGet("ball-carving").Decompose(ctx, g, decomp.WithK(6))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pb.MemberLists(), bc.MemberLists()) {
		t.Fatal("ball-carving adapter diverges from baseline.BallCarving")
	}
}

// TestEngineAndSimulationAgree: "elkin-neiman" and "elkin-neiman/dist"
// carve the same clusters for equal options.
func TestEngineAndSimulationAgree(t *testing.T) {
	g := gen.Grid(13, 13)
	ctx := context.Background()
	opts := []decomp.Option{decomp.WithK(3), decomp.WithSeed(2)}
	a, err := decomp.MustGet("elkin-neiman").Decompose(ctx, g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := decomp.MustGet("elkin-neiman/dist").Decompose(ctx, g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.MemberLists(), b.MemberLists()) {
		t.Fatal("engine and simulation clusters differ")
	}
	c, err := decomp.MustGet("elkin-neiman").Decompose(ctx, g,
		append(opts, decomp.WithScheduler(true, 4))...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.MemberLists(), c.MemberLists()) {
		t.Fatal("WithScheduler changed the clusters")
	}
}

// TestObserverOrdering: callbacks arrive with strictly increasing round
// indices and sum to the partition's message totals, on both the
// simulation and the engine path.
func TestObserverOrdering(t *testing.T) {
	g := gen.GnpConnected(randx.New(7), 150, 0.04)
	for _, name := range []string{"elkin-neiman", "elkin-neiman/dist", "mpx/dist"} {
		name := name
		t.Run(name, func(t *testing.T) {
			var rounds []dist.RoundStats
			p, err := decomp.MustGet(name).Decompose(context.Background(), g,
				decomp.WithSeed(4), decomp.WithObserver(func(r dist.RoundStats) {
					rounds = append(rounds, r)
				}))
			if err != nil {
				t.Fatal(err)
			}
			if len(rounds) == 0 {
				t.Fatal("observer never called")
			}
			var msgs int64
			for i, r := range rounds {
				if r.Round != i {
					t.Fatalf("callback %d carried round %d", i, r.Round)
				}
				msgs += r.Messages
			}
			if msgs != p.Metrics.Messages {
				t.Fatalf("observer sum %d != metrics total %d", msgs, p.Metrics.Messages)
			}
		})
	}
}

// TestDecomposeCancelled: a cancelled context surfaces as ctx.Err() from
// every registered algorithm.
func TestDecomposeCancelled(t *testing.T) {
	g := gen.Grid(12, 12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range decomp.Names() {
		if _, err := decomp.MustGet(name).Decompose(ctx, g, decomp.WithSeed(1)); err != context.Canceled {
			t.Fatalf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}
