package decomp

// The JSON form of a decomposition configuration. PlanSpec is the wire
// twin of Config: zero-valued fields select each algorithm's documented
// default, exactly like the CLI flags, and the field set mirrors Config
// one-for-one so a spec compiles through WithConfig verbatim — no
// option-by-option translation to drift. Both serving layers speak it:
// netdecompd's POST /v1/plans registers one, and a pipeline spec embeds
// one per decompose stage (internal/pipeline).

import "fmt"

// PlanSpec is the JSON form of a decomposition configuration — the
// compile-time half of a decompose request.
type PlanSpec struct {
	Algorithm     string  `json:"algorithm"`
	K             int     `json:"k,omitempty"`
	Lambda        int     `json:"lambda,omitempty"`
	C             float64 `json:"c,omitempty"`
	Beta          float64 `json:"beta,omitempty"`
	Seed          uint64  `json:"seed,omitempty"`
	ForceComplete bool    `json:"forceComplete,omitempty"`
	PhaseBudget   int     `json:"phaseBudget,omitempty"`
	ExactRadius   bool    `json:"exactRadius,omitempty"`
	Engine        bool    `json:"engine,omitempty"`
	Parallel      bool    `json:"parallel,omitempty"`
	Workers       int     `json:"workers,omitempty"`
}

// Compile resolves the spec into an immutable Plan.
func (sp PlanSpec) Compile() (*Plan, error) {
	if sp.Algorithm == "" {
		return nil, fmt.Errorf("plan spec: algorithm is required (known: %v)", Names())
	}
	return Compile(sp.Algorithm, WithConfig(Config{
		Seed:          sp.Seed,
		K:             sp.K,
		Lambda:        sp.Lambda,
		C:             sp.C,
		Beta:          sp.Beta,
		ForceComplete: sp.ForceComplete,
		PhaseBudget:   sp.PhaseBudget,
		ExactRadius:   sp.ExactRadius,
		Engine:        sp.Engine,
		Parallel:      sp.Parallel,
		Workers:       sp.Workers,
	}))
}
