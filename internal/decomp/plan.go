package decomp

import (
	"context"
	"fmt"
	"math"
	"time"

	"netdecomp/internal/dist"
	"netdecomp/internal/graph"
	"netdecomp/internal/obs"
)

// Plan is the immutable compiled form of one decomposition configuration:
// an algorithm (resolved from the registry or supplied directly) plus a
// fully resolved Config, validated once at compile time. A Plan is built
// once and executed many times — Run is safe for concurrent use, and the
// derived-copy constructors (WithSeed, WithObserver) make seed sweeps and
// per-run observation cheap without recompiling.
//
// PlanKey is the stable content digest of the plan: two plans that would
// execute the same algorithm under the same semantic configuration share a
// key. Together with graph.Fingerprint and the seed it forms the cache key
// triple (fingerprint × plan key × seed) the session layer dedupes and
// caches on; see internal/session.
type Plan struct {
	name string
	d    Decomposer
	cfg  Config
	key  uint64
}

// ConfigRunner is implemented by Decomposers that can execute directly
// from a resolved Config. Plan.Run uses it to skip re-resolving options on
// every execution; Decomposers that do not implement it are driven through
// Decompose with a WithConfig option carrying the compiled Config.
type ConfigRunner interface {
	DecomposeConfig(ctx context.Context, g graph.Interface, cfg Config) (*Partition, error)
}

// Compile resolves name in the registry, folds the options into a Config,
// validates it, and returns the immutable Plan. Compile is the expensive
// half of the split API: everything that can fail before a graph is seen
// fails here, once, and Run never re-validates.
func Compile(name string, opts ...Option) (*Plan, error) {
	d, err := Get(name)
	if err != nil {
		return nil, err
	}
	return CompileDecomposer(d, opts...)
}

// CompileDecomposer compiles a Plan for a Decomposer held directly (an
// unregistered or shadowed implementation); Compile is the registry-name
// form.
func CompileDecomposer(d Decomposer, opts ...Option) (*Plan, error) {
	if d == nil {
		return nil, fmt.Errorf("decomp: compile of nil Decomposer")
	}
	name := d.Name()
	if name == "" {
		return nil, fmt.Errorf("decomp: compile of Decomposer with empty name")
	}
	cfg := Apply(opts)
	if err := validate(name, cfg); err != nil {
		return nil, err
	}
	p := &Plan{name: name, d: d, cfg: cfg}
	p.key = planKey(name, cfg)
	return p, nil
}

// validate rejects structurally nonsensical configurations at compile
// time. Algorithm-specific domain checks (e.g. MPX's β range) stay with
// the algorithms, which see the graph too.
func validate(name string, cfg Config) error {
	switch {
	case cfg.K < 0:
		return fmt.Errorf("decomp: compile %s: K must be non-negative, got %d", name, cfg.K)
	case cfg.Lambda < 0:
		return fmt.Errorf("decomp: compile %s: Lambda must be non-negative, got %d", name, cfg.Lambda)
	case cfg.C < 0:
		return fmt.Errorf("decomp: compile %s: C must be non-negative, got %v", name, cfg.C)
	case cfg.Beta < 0:
		return fmt.Errorf("decomp: compile %s: Beta must be non-negative, got %v", name, cfg.Beta)
	case cfg.PhaseBudget < 0:
		return fmt.Errorf("decomp: compile %s: PhaseBudget must be non-negative, got %d", name, cfg.PhaseBudget)
	case cfg.Workers < 0:
		return fmt.Errorf("decomp: compile %s: Workers must be non-negative, got %d", name, cfg.Workers)
	}
	return nil
}

// planKey digests the algorithm name and every semantic Config field.
// Seed is excluded — the cache key triple carries it separately, so one
// compiled Plan covers a whole seed sweep — and Observer is excluded
// because observation is a side channel of the execution, never part of
// the produced Partition.
func planKey(name string, cfg Config) uint64 {
	const fnvOffset64, fnvPrime64 = 14695981039346656037, 1099511628211
	h := uint64(fnvOffset64)
	word := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= fnvPrime64
			x >>= 8
		}
	}
	word(uint64(len(name)))
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime64
	}
	word(uint64(cfg.K))
	word(uint64(cfg.Lambda))
	word(math.Float64bits(cfg.C))
	word(math.Float64bits(cfg.Beta))
	b := func(v bool) {
		if v {
			word(1)
		} else {
			word(0)
		}
	}
	b(cfg.ForceComplete)
	word(uint64(cfg.PhaseBudget))
	b(cfg.ExactRadius)
	b(cfg.Engine)
	b(cfg.Parallel)
	word(uint64(cfg.Workers))
	return h
}

// Name returns the algorithm name the plan executes.
func (p *Plan) Name() string { return p.name }

// Config returns a copy of the resolved configuration.
func (p *Plan) Config() Config { return p.cfg }

// Seed returns the plan's seed — the third component of the session cache
// key.
func (p *Plan) Seed() uint64 { return p.cfg.Seed }

// PlanKey returns the stable digest of (algorithm name, semantic Config):
// every field except Seed (keyed separately) and Observer (execution side
// channel). Plans compiled from equal inputs in different processes agree.
func (p *Plan) PlanKey() uint64 { return p.key }

// WithSeed returns a copy of the plan running under a different seed. The
// copy shares the PlanKey — seed is deliberately outside the digest — so a
// seed sweep is one compile plus n cheap derivations.
func (p *Plan) WithSeed(seed uint64) *Plan {
	cp := *p
	cp.cfg.Seed = seed
	return &cp
}

// WithObserver returns a copy of the plan streaming per-round statistics
// to fn. Observation never affects the PlanKey: observed and unobserved
// executions of the same plan are interchangeable cache-wise.
func (p *Plan) WithObserver(fn func(dist.RoundStats)) *Plan {
	cp := *p
	cp.cfg.Observer = fn
	return &cp
}

// WithRecorder returns a copy of the plan reporting into the telemetry
// recorder (see Config.Recorder). Like observation, telemetry never
// affects the PlanKey.
func (p *Plan) WithRecorder(rec *obs.Recorder) *Plan {
	cp := *p
	cp.cfg.Recorder = rec
	return &cp
}

// Recorder returns the plan's attached telemetry recorder (nil when
// telemetry is disabled).
func (p *Plan) Recorder() *obs.Recorder { return p.cfg.Recorder }

// Run executes the compiled plan on g. It is the cheap half of the split
// API: no option resolution, no registry lookup, no validation — just the
// algorithm. Run is safe to call concurrently from multiple goroutines.
//
// With a Recorder attached, the execution is wrapped in a span named
// plan/<algorithm> carrying the PlanKey and seed, its wall-clock latency
// lands in the plan.<algorithm>.ns histogram, and the algorithm receives
// a recorder rooted at that span — so engine rounds and phase spans nest
// beneath the plan in the exported trace.
func (p *Plan) Run(ctx context.Context, g graph.Interface) (*Partition, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rec := p.cfg.Recorder
	if rec == nil {
		return p.run(ctx, g, p.cfg)
	}
	rec.Counter("plan.runs").Inc()
	span := rec.Span("plan/"+p.name, obs.KV{K: "plankey", V: int64(p.key)}, obs.KV{K: "seed", V: int64(p.cfg.Seed)})
	cfg := p.cfg
	cfg.Recorder = rec.Under(span)
	start := time.Now()
	part, err := p.run(ctx, g, cfg)
	rec.Histogram("plan." + p.name + ".ns").Observe(time.Since(start).Nanoseconds())
	if err != nil {
		rec.Counter("plan.errors").Inc()
	}
	span.End()
	return part, err
}

// run dispatches to the Decomposer with the given effective Config.
func (p *Plan) run(ctx context.Context, g graph.Interface, cfg Config) (*Partition, error) {
	if cr, ok := p.d.(ConfigRunner); ok {
		return cr.DecomposeConfig(ctx, g, cfg)
	}
	return p.d.Decompose(ctx, g, WithConfig(cfg))
}
