package decomp

import (
	"context"
	"encoding/json"
	"testing"

	"netdecomp/internal/gen"
	"netdecomp/internal/randx"
)

// TestPartitionJSONStable pins the exact document a fixed partition
// marshals to — field order and float rendering are a frozen API contract
// (the serving daemon's responses diff cleanly across builds).
func TestPartitionJSONStable(t *testing.T) {
	p := &Partition{
		Algorithm:    "mpx",
		N:            4,
		Clusters:     []Cluster{{Members: []int{0, 1}, Center: 0, Phase: 0, Color: 0}, {Members: []int{2, 3}, Center: 3, Phase: 1, Color: 0}},
		ClusterOf:    []int{0, 0, 1, 1},
		Colors:       1,
		PhasesUsed:   2,
		PhaseBudget:  3,
		Complete:     true,
		Mode:         StrongDiameter,
		ProperColors: false,
		CutEdges:     1,
		CutFraction:  0.2,
	}
	p.Metrics.Rounds = 7
	p.Metrics.Messages = 41
	p.Metrics.Words = 82
	p.Metrics.MaxMessageWords = 2

	const want = `{"algorithm":"mpx","n":4,` +
		`"clusters":[{"members":[0,1],"center":0,"phase":0,"color":0},{"members":[2,3],"center":3,"phase":1,"color":0}],` +
		`"clusterOf":[0,0,1,1],"colors":1,"phasesUsed":2,"phaseBudget":3,"complete":true,"mode":"strong","properColors":false,` +
		`"metrics":{"rounds":7,"messages":41,"words":82,"maxMessageWords":2},"cutEdges":1,"cutFraction":0.2}`
	got, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatalf("unstable marshal:\n got %s\nwant %s", got, want)
	}
	// Round-trippable by a generic decoder (the document is valid JSON).
	var m map[string]any
	if err := json.Unmarshal(got, &m); err != nil {
		t.Fatalf("document does not parse: %v", err)
	}
	if m["algorithm"] != "mpx" || m["mode"] != "strong" {
		t.Fatalf("decoded document mangled: %v", m)
	}
}

// TestPartitionJSONDeterministic: equal partitions from a real run marshal
// to identical bytes every time, and float fields never drift.
func TestPartitionJSONDeterministic(t *testing.T) {
	g := gen.Gnp(randx.New(3), 128, 0.06)
	d, err := Get("mpx")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := d.Decompose(context.Background(), g, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := d.Decompose(context.Background(), g, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	b1, err := json.Marshal(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(p2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("equal runs marshalled differently:\n%s\n%s", b1, b2)
	}
	b3, _ := json.Marshal(p1.Clone())
	if string(b1) != string(b3) {
		t.Fatalf("clone marshalled differently:\n%s\n%s", b1, b3)
	}
}
