package decomp

import (
	"context"
	"math"

	"netdecomp/internal/baseline"
	"netdecomp/internal/core"
	"netdecomp/internal/dist"
	"netdecomp/internal/graph"
)

// Built-in registrations. "elkin-neiman" is an alias for the Theorem 1
// regime; "elkin-neiman/dist" is Theorem 1 on the message-passing engine
// (any elkin-neiman/* name runs on the engine under WithEngine or
// WithScheduler too). "mpx/dist" is the engine-backed MPX port; "mpx" the
// sequential shifted Dijkstra; "linial-saks" and "ball-carving" the weak-
// diameter and sequential-yardstick baselines.
func init() {
	Register(Func{"elkin-neiman", elkinNeiman(core.Theorem1, false)})
	Register(Func{"elkin-neiman/theorem1", elkinNeiman(core.Theorem1, false)})
	Register(Func{"elkin-neiman/theorem2", elkinNeiman(core.Theorem2, false)})
	Register(Func{"elkin-neiman/theorem3", elkinNeiman(core.Theorem3, false)})
	Register(Func{"elkin-neiman/dist", elkinNeiman(core.Theorem1, true)})
	Register(Func{"linial-saks", linialSaks})
	Register(Func{"mpx", mpxSequential})
	Register(Func{"mpx/dist", mpxEngine})
	Register(Func{"ball-carving", ballCarving})
}

// engineOptions maps the scheduler/observer/telemetry part of a Config
// onto the engine. With a nil Recorder the round recorder stays nil and
// the engine's telemetry path is a single pointer test per round.
func engineOptions(cfg Config) dist.Options {
	return dist.Options{
		Parallel: cfg.Parallel,
		Workers:  cfg.Workers,
		Observer: cfg.Observer,
		Recorder: cfg.Recorder.Rounds(),
	}
}

// coreVariants maps the registry names that execute internal/core to their
// theorem variants. The "/dist" alias is deliberately absent: it pins the
// engine path, which the incremental repair hook below must not claim.
var coreVariants = map[string]core.Variant{
	"elkin-neiman":          core.Theorem1,
	"elkin-neiman/theorem1": core.Theorem1,
	"elkin-neiman/theorem2": core.Theorem2,
	"elkin-neiman/theorem3": core.Theorem3,
}

// coreOptionsFor is the single Config→core.Options mapping, shared by the
// elkinNeiman runner and Plan.CoreOptions so the repair path resolves the
// exact options a from-scratch run would use.
func coreOptionsFor(variant core.Variant, cfg Config) core.Options {
	o := core.Options{
		Variant:       variant,
		K:             cfg.K,
		Lambda:        cfg.Lambda,
		C:             cfg.C,
		Seed:          cfg.Seed,
		PhaseBudget:   cfg.PhaseBudget,
		ForceComplete: cfg.ForceComplete,
	}
	if variant == core.Theorem3 && o.Lambda == 0 {
		o.Lambda = 2
	}
	if cfg.ExactRadius {
		o.RadiusMode = core.RadiusExact
	}
	return o
}

// CoreOptions reports whether the plan executes the sequential
// internal/core simulation and, if so, the exact core.Options a run
// resolves to. Incremental maintenance (internal/dyn) uses it to drive
// core.Repair with the same options a from-scratch Run would use; plans on
// any other path — the engine-pinned "/dist" names, Engine-configured
// specs, the non-Elkin–Neiman algorithms — report false and must be
// recomputed in full on mutation.
func (p *Plan) CoreOptions() (core.Options, bool) {
	variant, ok := coreVariants[p.name]
	if !ok || p.cfg.Engine {
		return core.Options{}, false
	}
	return coreOptionsFor(variant, p.cfg), true
}

// elkinNeiman adapts both core execution paths. forceEngine pins the
// engine path regardless of cfg.Engine (the "/dist" registry name).
func elkinNeiman(variant core.Variant, forceEngine bool) func(context.Context, graph.Interface, Config) (*Partition, error) {
	return func(ctx context.Context, g graph.Interface, cfg Config) (*Partition, error) {
		o := coreOptionsFor(variant, cfg)
		if forceEngine || cfg.Engine {
			dec, metrics, err := core.RunDistributedWithMetrics(ctx, g, o, engineOptions(cfg))
			if err != nil {
				return nil, err
			}
			p := FromCore(dec)
			p.Metrics = metrics
			return p, nil
		}
		dec, err := core.RunWith(g, o, core.Exec{
			Ctx:      ctx,
			Observer: cfg.Observer,
			Parallel: cfg.Parallel,
			Workers:  cfg.Workers,
			Recorder: cfg.Recorder,
		})
		if err != nil {
			return nil, err
		}
		return FromCore(dec), nil
	}
}

func linialSaks(ctx context.Context, g graph.Interface, cfg Config) (*Partition, error) {
	k := cfg.K
	if k == 0 {
		k = defaultLogK(g.N(), 2)
	}
	bp, err := baseline.LinialSaksContext(ctx, g, baseline.LSOptions{
		K:             k,
		C:             cfg.C,
		Seed:          cfg.Seed,
		PhaseBudget:   cfg.PhaseBudget,
		ForceComplete: cfg.ForceComplete,
	})
	if err != nil {
		return nil, err
	}
	return FromBaseline("linial-saks", bp, WeakDiameter), nil
}

func mpxSequential(ctx context.Context, g graph.Interface, cfg Config) (*Partition, error) {
	r, err := baseline.MPXContext(ctx, g, baseline.MPXOptions{Beta: defaultBeta(cfg.Beta), Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return FromMPX("mpx", r), nil
}

func mpxEngine(ctx context.Context, g graph.Interface, cfg Config) (*Partition, error) {
	r, metrics, err := baseline.MPXOnEngine(ctx, g,
		baseline.MPXOptions{Beta: defaultBeta(cfg.Beta), Seed: cfg.Seed}, engineOptions(cfg))
	if err != nil {
		return nil, err
	}
	p := FromMPX("mpx/dist", r)
	p.Metrics = metrics
	return p, nil
}

func ballCarving(ctx context.Context, g graph.Interface, cfg Config) (*Partition, error) {
	k := cfg.K
	if k == 0 {
		// The classic existence bound sits at K = log₂ n rather than ln n.
		k = 1
		if n := g.N(); n > 1 {
			k = int(math.Ceil(math.Log2(float64(n))))
		}
	}
	bp, err := baseline.BallCarvingContext(ctx, g, baseline.BCOptions{K: k})
	if err != nil {
		return nil, err
	}
	return FromBaseline("ball-carving", bp, StrongDiameter), nil
}

// defaultLogK is ⌈ln n⌉ clamped below by min — the headline radius
// parameter shared by the randomized algorithms.
func defaultLogK(n, min int) int {
	k := min
	if n > 1 {
		if ln := int(math.Ceil(math.Log(float64(n)))); ln > k {
			k = ln
		}
	}
	return k
}

// defaultBeta applies the MPX rate default.
func defaultBeta(beta float64) float64 {
	if beta == 0 {
		return 0.3
	}
	return beta
}
