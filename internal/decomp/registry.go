package decomp

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"netdecomp/internal/graph"
)

// Decomposer is the single entry point every algorithm implements: one
// call takes a graph and functional options and returns the unified
// Partition. Implementations must honor ctx between phases or rounds and
// return ctx.Err() when cancelled.
type Decomposer interface {
	// Name is the registry name of the algorithm.
	Name() string
	// Decompose runs the algorithm on g: any read-only graph backend —
	// *graph.Graph, a zero-copy *graph.View, or a custom Interface
	// implementation — is accepted.
	Decompose(ctx context.Context, g graph.Interface, opts ...Option) (*Partition, error)
}

// Func adapts a plain function into a Decomposer.
type Func struct {
	// AlgorithmName is the registry name reported by Name.
	AlgorithmName string
	// Run executes the algorithm on the resolved Config.
	Run func(ctx context.Context, g graph.Interface, cfg Config) (*Partition, error)
}

// Name implements Decomposer.
func (f Func) Name() string { return f.AlgorithmName }

// Decompose implements Decomposer as a thin compile-then-run shim: the
// one-shot call is literally CompileDecomposer followed by Plan.Run, so
// both entry points share one validation and execution path and produce
// bit-identical Partitions.
func (f Func) Decompose(ctx context.Context, g graph.Interface, opts ...Option) (*Partition, error) {
	p, err := CompileDecomposer(f, opts...)
	if err != nil {
		return nil, err
	}
	return p.Run(ctx, g)
}

// DecomposeConfig implements ConfigRunner: it executes directly from a
// resolved Config, the fast path Plan.Run takes.
func (f Func) DecomposeConfig(ctx context.Context, g graph.Interface, cfg Config) (*Partition, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return f.Run(ctx, g, cfg)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Decomposer{}
)

// Register adds d under its Name, replacing any previous registration
// (last registration wins, so applications can shadow built-ins). It
// panics on an empty name.
func Register(d Decomposer) {
	name := d.Name()
	if name == "" {
		panic("decomp: Register with empty name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = d
}

// Get returns the Decomposer registered under name. The error lists the
// known names, so a typo in an experiment config is self-diagnosing.
func Get(name string) (Decomposer, error) {
	registryMu.RLock()
	d, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("decomp: unknown algorithm %q (known: %v)", name, Names())
	}
	return d, nil
}

// MustGet is Get for static names; it panics on an unknown name.
func MustGet(name string) Decomposer {
	d, err := Get(name)
	if err != nil {
		panic(err)
	}
	return d
}

// Names returns every registered name, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
