package decomp_test

import (
	"context"
	"testing"

	"netdecomp/internal/decomp"
	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/obs"
)

// TestPlanRunRecorder pins the plan-level telemetry contract on the
// engine path: Run wraps the execution in a plan span, the engine's
// per-round events nest beneath it, and the registry collects the
// engine.* counters and the per-algorithm latency histogram. It also
// pins that attaching a recorder never perturbs the PlanKey.
func TestPlanRunRecorder(t *testing.T) {
	g := gen.Grid(8, 8)
	reg := obs.NewRegistry()
	trc := obs.NewTracer()
	rec := obs.New(reg, trc)
	pl, err := decomp.Compile("elkin-neiman/dist",
		decomp.WithSeed(3), decomp.WithForceComplete())
	if err != nil {
		t.Fatal(err)
	}
	instrumented := pl.WithRecorder(rec)
	if instrumented.PlanKey() != pl.PlanKey() {
		t.Fatal("WithRecorder changed the PlanKey")
	}
	if _, err := instrumented.Run(context.Background(), g); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("plan.runs").Value(); got != 1 {
		t.Fatalf("plan.runs = %d, want 1", got)
	}
	rounds := reg.Counter("engine.rounds").Value()
	if rounds <= 0 {
		t.Fatalf("engine.rounds = %d, want > 0", rounds)
	}
	if got := reg.Histogram("plan.elkin-neiman/dist.ns").Snapshot().Count; got != 1 {
		t.Fatalf("plan latency histogram count = %d, want 1", got)
	}
	if got := reg.Histogram("engine.round.messages").Snapshot().Count; got != rounds {
		t.Fatalf("engine.round.messages count = %d, want %d", got, rounds)
	}

	evs := trc.Events()
	if len(evs) < 3 || evs[0].Name != "plan/elkin-neiman/dist" || evs[0].Ph != 'B' {
		t.Fatalf("trace must open with the plan span, got %+v", evs[:min(3, len(evs))])
	}
	var roundEvents int64
	for _, e := range evs {
		if e.Name == "round" && e.Ph == 'i' {
			if e.TID != evs[0].TID {
				t.Fatalf("round event off the plan span's thread: %+v", e)
			}
			roundEvents++
		}
	}
	if roundEvents != rounds {
		t.Fatalf("trace carries %d round events, want %d", roundEvents, rounds)
	}
	if last := evs[len(evs)-1]; last.Ph != 'E' || last.Name != "plan/elkin-neiman/dist" {
		t.Fatalf("trace must close with the plan span, got %+v", last)
	}
}

// traceOf runs the plan against a fresh tracer and returns the event
// stream with timestamps normalized to zero — everything about the
// stream except wall-clock time.
func traceOf(t *testing.T, pl *decomp.Plan, g graph.Interface) []obs.Event {
	t.Helper()
	trc := obs.NewTracer()
	if _, err := pl.WithRecorder(obs.New(obs.NewRegistry(), trc)).Run(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	evs := trc.Events()
	for i := range evs {
		evs[i].TS = 0
		// The scheduler choice is a semantic Config field, so the PlanKey
		// differs across the plans under comparison by construction;
		// normalize it like the timestamps.
		for a := 0; a < evs[i].NArgs; a++ {
			if evs[i].Args[a].K == "plankey" {
				evs[i].Args[a].V = 0
			}
		}
	}
	return evs
}

// TestTelemetryDeterminism is the telemetry half of the bit-identical
// scheduler contract: a fixed-seed run emits exactly the same span/event
// stream — names, phases, nesting, per-round argument values — under the
// sequential and parallel schedulers of both execution paths, for any
// worker count. Only timestamps may differ.
func TestTelemetryDeterminism(t *testing.T) {
	// Large enough that the sim's receiver-sharded parallel rounds engage
	// (the frontier starts at n, above the parallel threshold).
	g := gen.Grid(64, 64)
	for _, base := range []struct {
		label string
		opts  []decomp.Option
	}{
		{"sim", nil},
		{"engine", []decomp.Option{decomp.WithEngine()}},
	} {
		opts := append([]decomp.Option{decomp.WithSeed(9), decomp.WithForceComplete()}, base.opts...)
		seqPlan, err := decomp.Compile("elkin-neiman", opts...)
		if err != nil {
			t.Fatal(err)
		}
		want := traceOf(t, seqPlan, g)
		if len(want) == 0 {
			t.Fatalf("%s: sequential run emitted no events", base.label)
		}
		for workers := 1; workers <= 4; workers++ {
			parPlan, err := decomp.Compile("elkin-neiman",
				append(append([]decomp.Option{}, opts...), decomp.WithParallel(workers))...)
			if err != nil {
				t.Fatal(err)
			}
			got := traceOf(t, parPlan, g)
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: %d events, sequential emitted %d",
					base.label, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: event %d differs:\n  par: %+v\n  seq: %+v",
						base.label, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestUnobservedRunHasNoTelemetry is the disabled-path contract at the
// plan level: without a recorder nothing is recorded anywhere.
func TestUnobservedRunHasNoTelemetry(t *testing.T) {
	g := gen.Grid(4, 4)
	pl, err := decomp.Compile("elkin-neiman", decomp.WithSeed(1), decomp.WithForceComplete())
	if err != nil {
		t.Fatal(err)
	}
	if pl.Recorder() != nil {
		t.Fatal("fresh plan must carry no recorder")
	}
	if _, err := pl.Run(context.Background(), g); err != nil {
		t.Fatal(err)
	}
}
