package baseline

import (
	"math"
	"reflect"
	"testing"

	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

func TestMPXDistributedMatchesExact(t *testing.T) {
	// The round-based top-1 forwarding implementation and the heap-based
	// shifted Dijkstra are independent algorithms for the same partition;
	// they must agree on every cluster, cut edge and shift.
	graphs := []*graph.Graph{
		gen.GnpConnected(randx.New(1), 250, 0.015),
		gen.Grid(14, 14),
		gen.RingOfCliques(10, 6),
		gen.RandomTree(randx.New(2), 200),
		gen.Path(64),
	}
	for gi, g := range graphs {
		for seed := uint64(0); seed < 3; seed++ {
			for _, beta := range []float64{0.2, 0.4} {
				exact, err := MPX(g, MPXOptions{Beta: beta, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				distr, err := MPXDistributed(g, MPXOptions{Beta: beta, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(exact.Clusters, distr.Clusters) {
					t.Fatalf("graph %d seed %d beta %v: clusters differ", gi, seed, beta)
				}
				if exact.CutEdges != distr.CutEdges {
					t.Fatalf("graph %d seed %d: cut edges %d vs %d", gi, seed, exact.CutEdges, distr.CutEdges)
				}
				if !reflect.DeepEqual(exact.Delta, distr.Delta) {
					t.Fatalf("graph %d seed %d: shifts differ", gi, seed)
				}
			}
		}
	}
}

func TestMPXDistributedRoundsBounded(t *testing.T) {
	// The broadcast runs only as deep as the largest shift: rounds stay
	// within ceil(max delta) + 1.
	g := gen.GnpConnected(randx.New(3), 300, 0.01)
	res, err := MPXDistributed(g, MPXOptions{Beta: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	maxDelta := 0.0
	for _, d := range res.Delta {
		if d > maxDelta {
			maxDelta = d
		}
	}
	if float64(res.Rounds) > math.Ceil(maxDelta)+1 {
		t.Fatalf("rounds %d exceed ceil(max delta)+1 = %v", res.Rounds, math.Ceil(maxDelta)+1)
	}
}

func TestMPXDistributedValidation(t *testing.T) {
	g := gen.Path(4)
	if _, err := MPXDistributed(g, MPXOptions{Beta: 0}); err == nil {
		t.Fatal("beta=0 accepted")
	}
	empty := graph.NewBuilder(0).Build()
	res, err := MPXDistributed(empty, MPXOptions{Beta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("empty graph result incomplete")
	}
}
