package baseline

import (
	"container/heap"
	"context"
	"math"

	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

// MPXOptions configures the Miller–Peng–Xu partition.
type MPXOptions struct {
	// Beta is the exponential rate: the expected fraction of cut edges is
	// O(Beta) and cluster strong diameters are O(log n / Beta) with high
	// probability. Must lie in (0, 1]; the MPX analysis assumes β ≤ 1/2.
	Beta float64
	// Seed drives the shift draws.
	Seed uint64
}

// MPXResult is the padded partition produced by MPX: a single partition
// (every cluster has color 0 — MPX is a low-diameter partition, not a
// decomposition) plus the quality measures its analysis bounds.
type MPXResult struct {
	Partition
	// Delta are the exponential shifts δ_u.
	Delta []float64
	// CutEdges is the number of edges whose endpoints lie in different
	// clusters, and CutFraction its share of all edges.
	CutEdges    int
	CutFraction float64
}

// MPX computes the Miller–Peng–Xu low-diameter partition of g: every
// vertex u draws a shift δ_u ~ Exp(β), and every vertex y joins the
// cluster of the center u maximizing δ_u − d(u, y) (ties to the smaller
// id). The computation is the standard shifted-start multi-source
// Dijkstra; rounds are counted as ⌈max δ⌉ (the depth of the equivalent
// distributed broadcast) and messages as one per edge traversal.
func MPX(g graph.Interface, o MPXOptions) (*MPXResult, error) {
	return MPXContext(context.Background(), g, o)
}

// MPXContext is MPX with cancellation: the single Dijkstra pass checks ctx
// once up front (the pass itself runs in milliseconds even on large
// graphs, so a finer granularity buys nothing).
func MPXContext(ctx context.Context, g graph.Interface, o MPXOptions) (*MPXResult, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if o.Beta <= 0 || o.Beta > 1 {
		return nil, errBeta(o.Beta)
	}
	n := g.N()
	res := &MPXResult{
		Partition: Partition{N: n, ClusterOf: make([]int, n)},
		Delta:     make([]float64, n),
	}
	for v := range res.ClusterOf {
		res.ClusterOf[v] = -1
	}
	if n == 0 {
		res.Complete = true
		return res, nil
	}
	maxDelta := 0.0
	for v := 0; v < n; v++ {
		rng := randx.Derive(o.Seed, uint64(v))
		res.Delta[v] = randx.Exp(rng, o.Beta)
		if res.Delta[v] > maxDelta {
			maxDelta = res.Delta[v]
		}
	}

	// Multi-source Dijkstra on keys f(y) = d(u, y) − δ_u: every vertex
	// starts as its own source with key −δ_y; the winner at y is the
	// center whose shifted distance is smallest (= shifted value largest).
	// Stale heap entries are skipped lazily by comparing against the
	// current tentative label.
	winner := make([]int, n)
	key := make([]float64, n)
	done := make([]bool, n)
	for v := range winner {
		winner[v] = v
		key[v] = -res.Delta[v]
	}
	pq := make(mpxHeap, 0, n)
	for v := 0; v < n; v++ {
		pq = append(pq, mpxItem{vertex: v, center: v, key: key[v]})
	}
	heap.Init(&pq)
	for pq.Len() > 0 {
		it := heap.Pop(&pq).(mpxItem)
		if done[it.vertex] || it.key != key[it.vertex] || it.center != winner[it.vertex] {
			continue
		}
		done[it.vertex] = true
		for _, w := range g.Neighbors(it.vertex) {
			if done[w] {
				continue
			}
			res.Messages++
			nk := it.key + 1
			if nk < key[w] || (nk == key[w] && it.center < winner[w]) {
				key[w] = nk
				winner[w] = it.center
				heap.Push(&pq, mpxItem{vertex: int(w), center: it.center, key: nk})
			}
		}
	}

	// Group into clusters by winner, ordered by center id.
	byCenter := make(map[int][]int, n/4+1)
	for y := 0; y < n; y++ {
		byCenter[winner[y]] = append(byCenter[winner[y]], y)
	}
	centers := make([]int, 0, len(byCenter))
	for c := range byCenter {
		centers = append(centers, c)
	}
	insertionSortInts(centers)
	for _, c := range centers {
		res.addCluster(byCenter[c], c, 0, 0)
	}
	res.Colors = 1
	res.PhasesUsed = 1
	res.PhaseBudget = 1
	res.Complete = true
	res.Rounds = int(math.Ceil(maxDelta))

	for u, w := range graph.EdgeSeq(g) {
		if winner[u] != winner[w] {
			res.CutEdges++
		}
	}
	if m := graph.EdgeCount(g); m > 0 {
		res.CutFraction = float64(res.CutEdges) / float64(m)
	}
	return res, nil
}

// mpxItem is a priority-queue entry of the shifted Dijkstra.
type mpxItem struct {
	vertex int
	center int
	key    float64
}

// mpxHeap orders items by key, breaking ties toward the smaller center so
// that the partition is deterministic.
type mpxHeap []mpxItem

func (h mpxHeap) Len() int { return len(h) }
func (h mpxHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].center < h[j].center
}
func (h mpxHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mpxHeap) Push(x any)   { *h = append(*h, x.(mpxItem)) }
func (h *mpxHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
