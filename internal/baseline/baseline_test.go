package baseline

import (
	"reflect"
	"testing"
	"testing/quick"

	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

// checkLSPartition verifies the structural invariants of a Linial–Saks
// result: clusters disjoint, ClusterOf consistent, proper coloring of the
// cluster supergraph, weak diameter within 2K-2.
func checkLSPartition(t *testing.T, g *graph.Graph, p *Partition, k int) {
	t.Helper()
	seen := make([]bool, g.N())
	for ci, c := range p.Clusters {
		if len(c.Members) == 0 {
			t.Fatalf("cluster %d empty", ci)
		}
		for _, v := range c.Members {
			if seen[v] {
				t.Fatalf("vertex %d in two clusters", v)
			}
			seen[v] = true
			if p.ClusterOf[v] != ci {
				t.Fatalf("ClusterOf[%d] inconsistent", v)
			}
		}
	}
	if p.Complete {
		for v := 0; v < g.N(); v++ {
			if !seen[v] {
				t.Fatalf("complete partition missing vertex %d", v)
			}
		}
	}
	for _, e := range g.Edges() {
		cu, cv := p.ClusterOf[e[0]], p.ClusterOf[e[1]]
		if cu < 0 || cv < 0 || cu == cv {
			continue
		}
		if p.Clusters[cu].Color == p.Clusters[cv].Color {
			t.Fatalf("edge %v joins clusters of equal color %d", e, p.Clusters[cu].Color)
		}
	}
	if wd, ok := p.WeakDiameter(g); ok && wd > 2*k-2 {
		t.Fatalf("weak diameter %d exceeds 2k-2 = %d", wd, 2*k-2)
	}
}

func TestLinialSaksBasic(t *testing.T) {
	g := gen.GnpConnected(randx.New(1), 300, 0.01)
	p, err := LinialSaks(g, LSOptions{K: 5, C: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkLSPartition(t, g, p, 5)
	if p.PhasesUsed == 0 || len(p.Clusters) == 0 {
		t.Fatalf("degenerate run: %+v", p)
	}
}

func TestLinialSaksDeterministic(t *testing.T) {
	g := gen.Grid(15, 15)
	a, err := LinialSaks(g, LSOptions{K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LinialSaks(g, LSOptions{K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Clusters, b.Clusters) {
		t.Fatal("same seed produced different partitions")
	}
}

func TestLinialSaksForceComplete(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := gen.GnpConnected(randx.New(seed+10), 200, 0.015)
		p, err := LinialSaks(g, LSOptions{K: 4, Seed: seed, ForceComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		if !p.Complete {
			t.Fatalf("seed %d: ForceComplete left survivors", seed)
		}
		checkLSPartition(t, g, p, 4)
	}
}

func TestLinialSaksValidation(t *testing.T) {
	g := gen.Path(5)
	if _, err := LinialSaks(g, LSOptions{K: 1}); err == nil {
		t.Fatal("K=1 accepted")
	}
	if _, err := LinialSaks(g, LSOptions{K: 3, C: 0.5}); err == nil {
		t.Fatal("C<=1 accepted")
	}
}

func TestLinialSaksEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	p, err := LinialSaks(g, LSOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Complete || len(p.Clusters) != 0 {
		t.Fatal("empty graph partition wrong")
	}
}

func TestLinialSaksTightBudgetIncomplete(t *testing.T) {
	g := gen.GnpConnected(randx.New(20), 300, 0.01)
	p, err := LinialSaks(g, LSOptions{K: 4, Seed: 1, PhaseBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Complete {
		t.Skip("single phase happened to exhaust the graph (unlikely)")
	}
	if len(p.Clusters) == 0 {
		t.Fatal("single phase produced nothing at all")
	}
	unassigned := 0
	for _, ci := range p.ClusterOf {
		if ci < 0 {
			unassigned++
		}
	}
	if unassigned == 0 {
		t.Fatal("incomplete run reports no unassigned vertices")
	}
}

func TestLinialSaksColorsArePhases(t *testing.T) {
	g := gen.GnpConnected(randx.New(21), 200, 0.015)
	p, err := LinialSaks(g, LSOptions{K: 4, Seed: 5, ForceComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Colors > p.PhasesUsed {
		t.Fatalf("colors %d exceed phases %d", p.Colors, p.PhasesUsed)
	}
	maxColor := -1
	for _, c := range p.Clusters {
		if c.Color > maxColor {
			maxColor = c.Color
		}
	}
	if maxColor+1 != p.Colors {
		t.Fatalf("Colors=%d but max color used is %d", p.Colors, maxColor)
	}
}

func TestMPXPartitionComplete(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := gen.GnpConnected(randx.New(seed), 300, 0.01)
		res, err := MPX(g, MPXOptions{Beta: 0.3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			t.Fatal("MPX must partition every vertex")
		}
		for v, ci := range res.ClusterOf {
			if ci < 0 {
				t.Fatalf("vertex %d unassigned", v)
			}
		}
		total := 0
		for _, c := range res.Clusters {
			total += len(c.Members)
		}
		if total != g.N() {
			t.Fatalf("cluster sizes sum to %d, want %d", total, g.N())
		}
	}
}

func TestMPXClustersConnected(t *testing.T) {
	// The defining structural property of shifted-exponential clustering:
	// every cluster is connected in its induced subgraph (strong diameter
	// finite). This is what Elkin–Neiman inherit for their blocks.
	graphs := []*graph.Graph{
		gen.GnpConnected(randx.New(30), 250, 0.012),
		gen.Grid(16, 16),
		gen.RingOfCliques(12, 6),
		gen.RandomTree(randx.New(31), 200),
	}
	for gi, g := range graphs {
		for seed := uint64(0); seed < 3; seed++ {
			res, err := MPX(g, MPXOptions{Beta: 0.25, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if d := res.DisconnectedClusters(g); d != 0 {
				t.Fatalf("graph %d seed %d: %d disconnected MPX clusters", gi, seed, d)
			}
		}
	}
}

func TestMPXCentersInOwnCluster(t *testing.T) {
	g := gen.Grid(12, 12)
	res, err := MPX(g, MPXOptions{Beta: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clusters {
		if res.ClusterOf[c.Center] != res.ClusterOf[c.Members[0]] {
			t.Fatalf("center %d not in its own cluster", c.Center)
		}
	}
}

func TestMPXCutFractionScalesWithBeta(t *testing.T) {
	// MPX Theorem: Pr[edge cut] = O(beta). Check the empirical fraction
	// stays within a small constant of beta, and that halving beta
	// roughly halves the cut (monotone shape).
	g := gen.Grid(30, 30)
	avg := func(beta float64) float64 {
		sum := 0.0
		const runs = 10
		for seed := uint64(0); seed < runs; seed++ {
			res, err := MPX(g, MPXOptions{Beta: beta, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.CutFraction
		}
		return sum / runs
	}
	c4, c2 := avg(0.4), avg(0.2)
	if c4 > 4*0.4 {
		t.Fatalf("cut fraction %v at beta 0.4 is not O(beta)", c4)
	}
	if c2 >= c4 {
		t.Fatalf("cut fraction did not decrease with beta: %v -> %v", c4, c2)
	}
}

func TestMPXDeterministic(t *testing.T) {
	g := gen.GnpConnected(randx.New(40), 200, 0.015)
	a, err := MPX(g, MPXOptions{Beta: 0.3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MPX(g, MPXOptions{Beta: 0.3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Clusters, b.Clusters) || a.CutEdges != b.CutEdges {
		t.Fatal("same seed produced different MPX partitions")
	}
}

func TestMPXValidation(t *testing.T) {
	g := gen.Path(4)
	for _, beta := range []float64{0, -1, 1.5} {
		if _, err := MPX(g, MPXOptions{Beta: beta}); err == nil {
			t.Fatalf("beta=%v accepted", beta)
		}
	}
}

func TestMPXEmptyAndSingle(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	res, err := MPX(empty, MPXOptions{Beta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || len(res.Clusters) != 0 {
		t.Fatal("empty MPX wrong")
	}
	single := graph.NewBuilder(1).Build()
	res, err = MPX(single, MPXOptions{Beta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 || res.CutEdges != 0 {
		t.Fatal("single-vertex MPX wrong")
	}
}

func TestPartitionAccessors(t *testing.T) {
	g := gen.Cycle(12)
	p, err := LinialSaks(g, LSOptions{K: 3, Seed: 2, ForceComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	lists := p.MemberLists()
	if len(lists) != len(p.Clusters) {
		t.Fatal("MemberLists length mismatch")
	}
	for v := 0; v < g.N(); v++ {
		if p.ClusterOf[v] >= 0 && p.ColorOf(v) != p.Clusters[p.ClusterOf[v]].Color {
			t.Fatalf("ColorOf(%d) inconsistent", v)
		}
	}
}

func BenchmarkLinialSaks(b *testing.B) {
	g := gen.GnpConnected(randx.New(1), 1024, 0.006)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LinialSaks(g, LSOptions{K: 5, Seed: uint64(i), ForceComplete: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMPX(b *testing.B) {
	g := gen.GnpConnected(randx.New(1), 1024, 0.006)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MPX(g, MPXOptions{Beta: 0.3, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestQuickLinialSaksAlwaysValid: arbitrary seeds and k produce structurally
// valid weak decompositions.
func TestQuickLinialSaksAlwaysValid(t *testing.T) {
	g := gen.GnpConnected(randx.New(90), 120, 0.025)
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%5) + 2
		p, err := LinialSaks(g, LSOptions{K: k, Seed: seed, ForceComplete: true})
		if err != nil || !p.Complete {
			return false
		}
		seen := make([]bool, g.N())
		for _, c := range p.Clusters {
			for _, v := range c.Members {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		for _, e := range g.Edges() {
			cu, cv := p.ClusterOf[e[0]], p.ClusterOf[e[1]]
			if cu != cv && p.Clusters[cu].Color == p.Clusters[cv].Color {
				return false
			}
		}
		wd, ok := p.WeakDiameter(g)
		return ok && wd <= 2*k-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMPXPartitionProperties: arbitrary seeds/betas keep MPX total,
// connected and consistent between implementations.
func TestQuickMPXPartitionProperties(t *testing.T) {
	g := gen.Grid(10, 10)
	f := func(seed uint64, bRaw uint8) bool {
		beta := 0.05 + float64(bRaw%90)/100
		a, err := MPX(g, MPXOptions{Beta: beta, Seed: seed})
		if err != nil {
			return false
		}
		b, err := MPXDistributed(g, MPXOptions{Beta: beta, Seed: seed})
		if err != nil {
			return false
		}
		if a.CutEdges != b.CutEdges || len(a.Clusters) != len(b.Clusters) {
			return false
		}
		return a.DisconnectedClusters(g) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
