package baseline

import (
	"context"
	"fmt"
	"math"
	"sort"

	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

// LSOptions configures the Linial–Saks decomposition.
type LSOptions struct {
	// K is the radius parameter: clusters have weak diameter ≤ 2K−2.
	// Must be at least 2 (at K=1 the capture rule degenerates and no
	// vertex ever joins a block).
	K int
	// C plays the same confidence role as in the Elkin–Neiman options;
	// the phase budget is ⌈(cK·n)^{1/K}·ln(cn)⌉-style. Default 8.
	C float64
	// Seed drives all randomness.
	Seed uint64
	// PhaseBudget overrides the default budget when positive.
	PhaseBudget int
	// ForceComplete keeps carving past the budget until every vertex is
	// clustered.
	ForceComplete bool
}

// LinialSaks runs the randomized weak-diameter network decomposition of
// Linial and Saks on g.
//
// Per phase, every surviving vertex v draws a radius r_v from the
// truncated geometric distribution (Pr[r=j] = (1−p)p^j for j < K−1, with
// the remaining mass p^{K−1} at K−1, p = (cn)^{−1/K}) and broadcasts
// (id_v, r_v) through its r_v-ball in the surviving graph G_t. Every
// vertex y elects the minimum-id vertex v* whose broadcast reached it and
// joins the phase's block iff it is in the strict interior of the winning
// ball (d(y, v*) < r_{v*}). Clusters are the groups with a common elected
// center; they have weak diameter ≤ 2K−2 but — unlike the Elkin–Neiman
// clusters — their induced subgraphs may be disconnected, so their strong
// diameter is unbounded.
//
// Rounds are counted as K−1 per phase (the maximum broadcast depth);
// messages count each broadcast forwarded over each edge of its ball once,
// which is the LS93 accounting of broadcast cost.
func LinialSaks(g graph.Interface, o LSOptions) (*Partition, error) {
	return LinialSaksContext(context.Background(), g, o)
}

// LinialSaksContext is LinialSaks with cancellation: ctx is checked
// between phases and the run returns ctx.Err() when cancelled.
func LinialSaksContext(ctx context.Context, g graph.Interface, o LSOptions) (*Partition, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.N()
	if o.K < 2 {
		return nil, fmt.Errorf("baseline: LinialSaks requires K >= 2, got %d", o.K)
	}
	if o.C == 0 {
		o.C = 8
	}
	if o.C <= 1 {
		return nil, fmt.Errorf("baseline: LinialSaks requires C > 1, got %v", o.C)
	}
	part := &Partition{N: n, ClusterOf: make([]int, n)}
	for v := range part.ClusterOf {
		part.ClusterOf[v] = -1
	}
	if n == 0 {
		part.Complete = true
		return part, nil
	}
	cn := o.C * float64(n)
	p := math.Pow(cn, -1/float64(o.K))
	budget := int(math.Ceil(math.Pow(cn, 1/float64(o.K)) * math.Log(cn)))
	if o.PhaseBudget > 0 {
		budget = o.PhaseBudget
	}
	part.PhaseBudget = budget
	maxPhases := budget
	if o.ForceComplete {
		maxPhases = 64*budget + 1024
	}

	alive := make([]bool, n)
	for v := range alive {
		alive[v] = true
	}
	aliveCount := n

	radius := make([]int, n)
	bestID := make([]int, n)   // elected center per vertex this phase
	bestDist := make([]int, n) // distance to elected center
	bestR := make([]int, n)    // radius of elected center
	dist := make([]int, n)
	stamp := make([]int, n)
	epoch := 0
	queue := make([]int32, 0, n)
	joiners := make([]int, 0, n) // reusable per-phase capture worklist

	for phase := 0; aliveCount > 0; phase++ {
		if phase >= budget && !o.ForceComplete {
			break
		}
		if phase >= maxPhases {
			return nil, fmt.Errorf("baseline: LinialSaks did not exhaust the graph after %d phases", phase)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Draw radii.
		maxR := 0
		for v := 0; v < n; v++ {
			if !alive[v] {
				continue
			}
			rng := randx.Derive(o.Seed, uint64(phase), uint64(v))
			radius[v] = randx.TruncGeom(rng, p, o.K-1)
			if radius[v] > maxR {
				maxR = radius[v]
			}
			bestID[v] = -1
		}
		part.Rounds += o.K - 1

		// Exact candidate election: BFS from every center within its
		// radius, keeping the minimum-id winner at every reached vertex.
		for v := 0; v < n; v++ {
			if !alive[v] {
				continue
			}
			epoch++
			queue = queue[:0]
			dist[v] = 0
			stamp[v] = epoch
			queue = append(queue, int32(v))
			for head := 0; head < len(queue); head++ {
				u := queue[head]
				du := dist[u]
				if bestID[u] == -1 || v < bestID[u] {
					bestID[u] = v
					bestDist[u] = du
					bestR[u] = radius[v]
				}
				if du >= radius[v] {
					continue
				}
				for _, w := range g.Neighbors(int(u)) {
					if stamp[w] == epoch || !alive[w] {
						continue
					}
					stamp[w] = epoch
					dist[w] = du + 1
					queue = append(queue, w)
					part.Messages++
				}
			}
		}

		// Capture rule: join iff strictly interior to the winning ball.
		// The joiners are collected into a reusable worklist, grouped by
		// elected center with one stable sort, and the phase's clusters are
		// carved out of a single exact-size backing array — replacing the
		// per-phase map of growing slices (same deterministic order:
		// centers ascending, members ascending).
		joiners = joiners[:0]
		for y := 0; y < n; y++ {
			if !alive[y] || bestID[y] == -1 {
				continue
			}
			if bestDist[y] < bestR[y] {
				joiners = append(joiners, y)
			}
		}
		if len(joiners) > 0 {
			sort.SliceStable(joiners, func(i, j int) bool { return bestID[joiners[i]] < bestID[joiners[j]] })
			members := make([]int, len(joiners))
			copy(members, joiners)
			for lo := 0; lo < len(members); {
				hi := lo
				c := bestID[members[lo]]
				for hi < len(members) && bestID[members[hi]] == c {
					hi++
				}
				part.addCluster(members[lo:hi:hi], c, phase, part.Colors)
				aliveCount -= hi - lo
				lo = hi
			}
			for _, y := range members {
				alive[y] = false
			}
			part.Colors++
		}
		part.PhasesUsed++
	}
	part.Complete = aliveCount == 0
	return part, nil
}

// insertionSortInts sorts small slices in place.
func insertionSortInts(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
