package baseline

import (
	"context"
	"fmt"
	"math"

	"netdecomp/internal/dist"
	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

// errBeta reports an out-of-range exponential rate.
func errBeta(beta float64) error {
	return fmt.Errorf("baseline: MPX requires 0 < Beta <= 1, got %v", beta)
}

// MPXMsg is the CONGEST wire format of the round-based MPX broadcast: one
// (center, shifted value) pair — top-1 forwarding, which is lossless for a
// partition because only the winner matters (the same argument that makes
// the paper's top-2 rule lossless for the decomposition's two-value
// comparison).
type MPXMsg struct {
	Center int32
	Value  float64
}

// Words reports the CONGEST size: a (center, value) pair of two words.
func (m MPXMsg) Words() int { return 2 }

var _ dist.WordCounter = MPXMsg{}

// mpxProgram is the per-node state machine of the MPX broadcast, executed
// by the internal/dist engine. Every slice is indexed by node; Step(node,
// ...) touches only index node, so the parallel scheduler is safe.
//
// Each node starts with its own shifted value δ_v and repeatedly forwards
// its current best (center, value) pair decremented by one hop, keeping
// only the maximum (ties toward the smaller center id). All waves die out
// after lastRound = max_v ⌊δ_v⌋ rounds — a value must be ≥ 1 to be
// forwarded, so the broadcast from v travels at most ⌊δ_v⌋ hops — and the
// nodes halt there. lastRound is global knowledge distributed to every
// node up front, standing in for the O(log n / β)-round max-aggregation a
// fully local execution would prepend.
type mpxProgram struct {
	g         graph.Interface
	lastRound int

	winner  []int
	value   []float64
	changed []bool
	// outBuf[v] is v's reusable outbox, borrowed by the engine until
	// commit (see dist.Program) and recycled on v's next Step.
	outBuf [][]dist.Envelope[MPXMsg]
}

func newMPXProgram(g graph.Interface, delta []float64) *mpxProgram {
	n := g.N()
	p := &mpxProgram{
		g:       g,
		winner:  make([]int, n),
		value:   make([]float64, n),
		changed: make([]bool, n),
		outBuf:  make([][]dist.Envelope[MPXMsg], n),
	}
	// Carve every node's outbox out of one flat arena with capacity equal
	// to its degree (the exact fan-out of a broadcast step), so the whole
	// run performs no per-Step outbox allocation at all.
	total := 0
	for v := 0; v < n; v++ {
		total += g.Degree(v)
	}
	arena := make([]dist.Envelope[MPXMsg], total)
	off := 0
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		p.outBuf[v] = arena[off : off : off+d]
		off += d
		p.winner[v] = v
		p.value[v] = delta[v]
		p.changed[v] = true
		if fl := int(math.Floor(delta[v])); fl > p.lastRound {
			p.lastRound = fl
		}
	}
	return p
}

// NumNodes implements dist.Program.
func (p *mpxProgram) NumNodes() int { return p.g.N() }

// Step implements dist.Program: merge the neighbors' decremented offers,
// then forward the node's best pair if it improved and can still travel.
func (p *mpxProgram) Step(node, round int, in []dist.Envelope[MPXMsg]) ([]dist.Envelope[MPXMsg], bool) {
	if round > 0 {
		ch := false
		for _, env := range in {
			m := env.Payload
			c := int(m.Center)
			if m.Value > p.value[node] || (m.Value == p.value[node] && c < p.winner[node]) {
				p.value[node] = m.Value
				p.winner[node] = c
				ch = true
			}
		}
		p.changed[node] = ch
	}
	halt := round >= p.lastRound
	if !p.changed[node] || p.value[node] < 1 {
		return nil, halt
	}
	msg := MPXMsg{Center: int32(p.winner[node]), Value: p.value[node] - 1}
	out := p.outBuf[node][:0]
	for _, w := range p.g.Neighbors(node) {
		out = append(out, dist.Envelope[MPXMsg]{From: node, To: int(w), Payload: msg})
	}
	p.outBuf[node] = out
	return out, halt
}

// MPXDistributed computes the same Miller–Peng–Xu partition as MPX, but as
// a true node program on the internal/dist message-passing engine, so its
// rounds, messages and words come from real engine accounting. It must
// agree with MPX exactly on every cluster for the same options; the tests
// assert that.
func MPXDistributed(g graph.Interface, o MPXOptions) (*MPXResult, error) {
	res, _, err := MPXOnEngine(context.Background(), g, o, dist.Options{})
	return res, err
}

// MPXOnEngine is MPXDistributed with full control over the execution: the
// engine options select the scheduler and per-round observation, ctx
// cancels between rounds, and the raw engine metrics are returned
// alongside the partition.
func MPXOnEngine(ctx context.Context, g graph.Interface, o MPXOptions, engineOpts dist.Options) (*MPXResult, dist.Metrics, error) {
	if o.Beta <= 0 || o.Beta > 1 {
		return nil, dist.Metrics{}, errBeta(o.Beta)
	}
	n := g.N()
	res := &MPXResult{
		Partition: Partition{N: n, ClusterOf: make([]int, n)},
		Delta:     make([]float64, n),
	}
	for v := range res.ClusterOf {
		res.ClusterOf[v] = -1
	}
	if n == 0 {
		res.Complete = true
		return res, dist.Metrics{}, nil
	}
	for v := 0; v < n; v++ {
		rng := randx.Derive(o.Seed, uint64(v))
		res.Delta[v] = randx.Exp(rng, o.Beta)
	}

	p := newMPXProgram(g, res.Delta)
	if engineOpts.MaxRounds == 0 {
		engineOpts.MaxRounds = p.lastRound + 2
	}
	metrics, err := dist.Run[MPXMsg](ctx, p, engineOpts)
	if err != nil {
		if ctx != nil && ctx.Err() != nil {
			return nil, metrics, ctx.Err()
		}
		return nil, metrics, fmt.Errorf("baseline: MPX engine execution failed: %w", err)
	}

	// Group vertices into clusters by elected center with one counting
	// pass (winners are vertex ids, so the buckets are dense): members
	// land ascending within each center and the centers are walked
	// ascending, carved out of one backing array — the same two-pass
	// count/fill trick the engine's mailboxes and the core cluster
	// assembly use, replacing a map of growing per-center slices.
	offsets := make([]int, n+1)
	for v := 0; v < n; v++ {
		offsets[p.winner[v]+1]++
	}
	for c := 0; c < n; c++ {
		offsets[c+1] += offsets[c]
	}
	members := make([]int, n)
	cursor := make([]int, n)
	copy(cursor, offsets[:n])
	for v := 0; v < n; v++ {
		members[cursor[p.winner[v]]] = v
		cursor[p.winner[v]]++
	}
	for c := 0; c < n; c++ {
		if lo, hi := offsets[c], offsets[c+1]; lo < hi {
			res.addCluster(members[lo:hi:hi], c, 0, 0)
		}
	}
	res.Colors = 1
	res.PhasesUsed = 1
	res.PhaseBudget = 1
	res.Complete = true
	res.Rounds = metrics.Rounds
	res.Messages = metrics.Messages

	for u, w := range graph.EdgeSeq(g) {
		if p.winner[u] != p.winner[w] {
			res.CutEdges++
		}
	}
	if m := graph.EdgeCount(g); m > 0 {
		res.CutFraction = float64(res.CutEdges) / float64(m)
	}
	return res, metrics, nil
}
