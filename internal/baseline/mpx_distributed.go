package baseline

import (
	"fmt"

	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

// errBeta reports an out-of-range exponential rate.
func errBeta(beta float64) error {
	return fmt.Errorf("baseline: MPX requires 0 < Beta <= 1, got %v", beta)
}

// MPXDistributed computes the same Miller–Peng–Xu partition as MPX, but as
// a synchronous round simulation: every vertex starts with its own shifted
// value δ_y and repeatedly forwards its current best (center, value) pair
// decremented by one hop, keeping only the maximum — top-1 forwarding,
// which is lossless for a partition because only the winner matters (the
// same argument that makes the paper's top-2 rule lossless for the
// decomposition's two-value comparison).
//
// It runs until no message improves any state, counts the rounds and
// messages it used, and must agree with MPX exactly on every cluster for
// the same options; the tests assert that.
func MPXDistributed(g *graph.Graph, o MPXOptions) (*MPXResult, error) {
	if o.Beta <= 0 || o.Beta > 1 {
		return nil, errBeta(o.Beta)
	}
	n := g.N()
	res := &MPXResult{
		Partition: Partition{N: n, ClusterOf: make([]int, n)},
		Delta:     make([]float64, n),
	}
	for v := range res.ClusterOf {
		res.ClusterOf[v] = -1
	}
	if n == 0 {
		res.Complete = true
		return res, nil
	}
	for v := 0; v < n; v++ {
		rng := randx.Derive(o.Seed, uint64(v))
		res.Delta[v] = randx.Exp(rng, o.Beta)
	}

	winner := make([]int, n)
	value := make([]float64, n)
	changed := make([]bool, n)
	dirty := make([]bool, n)
	for v := 0; v < n; v++ {
		winner[v] = v
		value[v] = res.Delta[v]
		changed[v] = true
	}
	snapWinner := make([]int, n)
	snapValue := make([]float64, n)
	for {
		copy(snapWinner, winner)
		copy(snapValue, value)
		sent := false
		for v := 0; v < n; v++ {
			if !changed[v] || snapValue[v] < 1 {
				continue
			}
			m := snapValue[v] - 1
			c := snapWinner[v]
			for _, w := range g.Neighbors(v) {
				res.Messages++
				sent = true
				if m > value[w] || (m == value[w] && c < winner[w]) {
					value[w] = m
					winner[w] = c
					dirty[w] = true
				}
			}
		}
		changed, dirty = dirty, changed
		for v := range dirty {
			dirty[v] = false
		}
		if !sent {
			break
		}
		res.Rounds++
	}

	byCenter := make(map[int][]int, n/4+1)
	for y := 0; y < n; y++ {
		byCenter[winner[y]] = append(byCenter[winner[y]], y)
	}
	centers := make([]int, 0, len(byCenter))
	for c := range byCenter {
		centers = append(centers, c)
	}
	insertionSortInts(centers)
	for _, c := range centers {
		res.addCluster(byCenter[c], c, 0, 0)
	}
	res.Colors = 1
	res.PhasesUsed = 1
	res.PhaseBudget = 1
	res.Complete = true

	for _, e := range g.Edges() {
		if winner[e[0]] != winner[e[1]] {
			res.CutEdges++
		}
	}
	if g.M() > 0 {
		res.CutFraction = float64(res.CutEdges) / float64(g.M())
	}
	return res, nil
}
