// Package baseline implements the two algorithms the paper positions
// itself against and builds upon:
//
//   - Linial–Saks (Combinatorica 1993): the classic randomized weak
//     (O(log n), O(log n)) network decomposition. The paper's headline
//     result is that its strong-diameter analogue is achievable with the
//     same parameters; experiment T5 measures how badly LS93 clusters
//     degrade under the strong-diameter lens.
//   - Miller–Peng–Xu (SPAA 2013): the shifted-exponential "padded
//     partition" whose shifted-shortest-path comparison rule Elkin–Neiman
//     adapt from the PRAM model to distributed network decomposition.
//     Experiment T8 reproduces its cut-fraction and diameter behaviour.
package baseline

import (
	"sort"

	"netdecomp/internal/graph"
)

// Cluster is one cluster of a baseline clustering.
type Cluster struct {
	// Members are the vertex ids, sorted ascending.
	Members []int
	// Center is the vertex whose broadcast captured the members.
	Center int
	// Phase is the phase that carved the cluster (always 0 for MPX).
	Phase int
	// Color is the compressed color class (phase index among non-empty
	// phases for LS93; always 0 for MPX, which is a partition rather than
	// a decomposition).
	Color int
}

// Partition is the result shared by the baseline algorithms.
type Partition struct {
	N         int
	Clusters  []Cluster
	ClusterOf []int // -1 when unassigned
	Colors    int
	// PhasesUsed / PhaseBudget describe the phase loop (LS93).
	PhasesUsed  int
	PhaseBudget int
	// Rounds and Messages account the distributed cost: rounds are the
	// synchronous rounds of the standard distributed implementation, and
	// messages count each broadcast forwarded over each edge once.
	Rounds   int
	Messages int64
	Complete bool
}

// ColorOf returns the color of v's cluster, or -1 when unassigned.
func (p *Partition) ColorOf(v int) int {
	ci := p.ClusterOf[v]
	if ci < 0 {
		return -1
	}
	return p.Clusters[ci].Color
}

// MemberLists returns the clusters as plain member slices, the shape the
// verify package consumes.
func (p *Partition) MemberLists() [][]int {
	out := make([][]int, len(p.Clusters))
	for i := range p.Clusters {
		out[i] = p.Clusters[i].Members
	}
	return out
}

// DisconnectedClusters counts clusters whose induced subgraph is
// disconnected — i.e. clusters with infinite strong diameter. This is the
// quantity that separates weak from strong decompositions.
func (p *Partition) DisconnectedClusters(g graph.Interface) int {
	count := 0
	for i := range p.Clusters {
		if _, ok := graph.SubsetStrongDiameter(g, p.Clusters[i].Members); !ok {
			count++
		}
	}
	return count
}

// StrongDiameter returns the maximum strong diameter over connected
// clusters and the number of disconnected (infinite-diameter) clusters.
func (p *Partition) StrongDiameter(g graph.Interface) (maxConnected int, disconnected int) {
	for i := range p.Clusters {
		d, ok := graph.SubsetStrongDiameter(g, p.Clusters[i].Members)
		if !ok {
			disconnected++
			continue
		}
		if d > maxConnected {
			maxConnected = d
		}
	}
	return maxConnected, disconnected
}

// WeakDiameter returns the maximum weak diameter over all clusters; ok is
// false if some cluster spans two components of g.
func (p *Partition) WeakDiameter(g graph.Interface) (int, bool) {
	max := 0
	for i := range p.Clusters {
		d, ok := graph.SubsetWeakDiameter(g, p.Clusters[i].Members)
		if !ok {
			return 0, false
		}
		if d > max {
			max = d
		}
	}
	return max, true
}

// addCluster appends a cluster, wiring ClusterOf, with members sorted.
func (p *Partition) addCluster(members []int, center, phase, color int) {
	sort.Ints(members)
	ci := len(p.Clusters)
	p.Clusters = append(p.Clusters, Cluster{Members: members, Center: center, Phase: phase, Color: color})
	for _, v := range members {
		p.ClusterOf[v] = ci
	}
}
