package baseline

import (
	"math"
	"reflect"
	"testing"

	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

func TestBallCarvingValidDecomposition(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"gnp":  gen.GnpConnected(randx.New(1), 300, 0.01),
		"grid": gen.Grid(16, 16),
		"tree": gen.RandomTree(randx.New(2), 250),
		"roc":  gen.RingOfCliques(12, 6),
		"path": gen.Path(100),
	}
	for name, g := range graphs {
		k := int(math.Ceil(math.Log2(float64(g.N()))))
		p, err := BallCarving(g, BCOptions{K: k})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !p.Complete {
			t.Fatalf("%s: incomplete", name)
		}
		// Structural validity: disjoint cover + proper coloring.
		seen := make([]bool, g.N())
		for _, c := range p.Clusters {
			for _, v := range c.Members {
				if seen[v] {
					t.Fatalf("%s: vertex %d in two clusters", name, v)
				}
				seen[v] = true
			}
		}
		for _, e := range g.Edges() {
			cu, cv := p.ClusterOf[e[0]], p.ClusterOf[e[1]]
			if cu != cv && p.Clusters[cu].Color == p.Clusters[cv].Color {
				t.Fatalf("%s: same-color adjacent clusters", name)
			}
		}
		// Strong diameter ≤ 2K and clusters connected (balls are
		// connected by construction).
		sd, disc := p.StrongDiameter(g)
		if disc != 0 {
			t.Fatalf("%s: %d disconnected clusters", name, disc)
		}
		if sd > 2*k {
			t.Fatalf("%s: strong diameter %d exceeds 2K = %d", name, sd, 2*k)
		}
		// At K = log2 n the existence bound promises O(log n) colors;
		// allow a generous constant.
		if float64(p.Colors) > 6*math.Log2(float64(g.N()))+4 {
			t.Fatalf("%s: %d colors for n=%d", name, p.Colors, g.N())
		}
	}
}

func TestBallCarvingDeterministic(t *testing.T) {
	g := gen.GnpConnected(randx.New(3), 200, 0.015)
	a, err := BallCarving(g, BCOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BallCarving(g, BCOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Clusters, b.Clusters) {
		t.Fatal("deterministic algorithm produced different outputs")
	}
}

func TestBallCarvingKOne(t *testing.T) {
	// K=1: growth = n, shells almost never sustain that, so clusters are
	// essentially radius-0..1 balls; the decomposition must still be valid.
	g := gen.Cycle(32)
	p, err := BallCarving(g, BCOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Complete {
		t.Fatal("incomplete")
	}
	if sd, disc := p.StrongDiameter(g); disc != 0 || sd > 2 {
		t.Fatalf("K=1 diameter %d (disc %d)", sd, disc)
	}
}

func TestBallCarvingCompleteGraph(t *testing.T) {
	// K_n: the first ball swallows everything at radius ≤ 1.
	g := gen.Complete(20)
	p, err := BallCarving(g, BCOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Clusters) != 1 || p.Colors != 1 {
		t.Fatalf("K20 carved %d clusters, %d colors", len(p.Clusters), p.Colors)
	}
}

func TestBallCarvingValidation(t *testing.T) {
	g := gen.Path(4)
	if _, err := BallCarving(g, BCOptions{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	empty := graph.NewBuilder(0).Build()
	p, err := BallCarving(empty, BCOptions{K: 2})
	if err != nil || !p.Complete {
		t.Fatalf("empty graph: %v %v", p, err)
	}
}

func TestBallCarvingDisconnectedInput(t *testing.T) {
	b := graph.NewBuilder(20)
	for i := 0; i < 9; i++ {
		b.AddEdge(i, i+1)
	}
	for i := 10; i < 19; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.Build()
	p, err := BallCarving(g, BCOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Complete {
		t.Fatal("disconnected input not fully carved")
	}
	if _, disc := p.StrongDiameter(g); disc != 0 {
		t.Fatal("carved cluster spans components")
	}
}

func BenchmarkBallCarving(b *testing.B) {
	g := gen.GnpConnected(randx.New(1), 1024, 0.006)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BallCarving(g, BCOptions{K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}
