package baseline

import (
	"context"
	"fmt"
	"math"

	"netdecomp/internal/graph"
)

// BCOptions configures the deterministic ball-carving decomposition.
type BCOptions struct {
	// K is the tradeoff parameter: clusters have strong diameter ≤ 2K and
	// the number of colors is O(K·n^{1/K}·...) in the worst case — at
	// K = log₂ n the classic (O(log n), O(log n)) existence bound.
	K int
}

// BallCarving computes the classic deterministic *sequential*
// strong-diameter network decomposition by ball growing: in each phase it
// repeatedly picks the smallest unprocessed vertex, grows a ball until the
// next shell would be smaller than a (growth = n^{1/K}) multiplicative
// increase, carves the ball as a cluster of this phase's color, and defers
// the separating shell to later phases.
//
// This is the textbook existence argument for strong (O(log n), O(log n))
// decompositions (each ball can K-fold-grow at most K times before
// exceeding n, so the radius stays ≤ K; at K = log₂ n each phase defers
// fewer vertices than it clusters, so O(log n) phases suffice). The paper's
// contribution is matching it with an efficient *distributed* algorithm —
// this sequential construction is inherently global, so its "Rounds" are
// reported as 0 and it serves purely as the quality yardstick in the
// comparison experiments.
func BallCarving(g graph.Interface, o BCOptions) (*Partition, error) {
	return BallCarvingContext(context.Background(), g, o)
}

// BallCarvingContext is BallCarving with cancellation: ctx is checked
// between phases and the run returns ctx.Err() when cancelled.
func BallCarvingContext(ctx context.Context, g graph.Interface, o BCOptions) (*Partition, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.N()
	if o.K < 1 {
		return nil, fmt.Errorf("baseline: BallCarving requires K >= 1, got %d", o.K)
	}
	part := &Partition{N: n, ClusterOf: make([]int, n)}
	for v := range part.ClusterOf {
		part.ClusterOf[v] = -1
	}
	if n == 0 {
		part.Complete = true
		return part, nil
	}
	// growth = n^{1/K}: keep growing while the ball multiplies by at
	// least this factor per hop.
	growth := math.Pow(float64(n), 1/float64(o.K))

	alive := make([]bool, n) // not yet clustered in ANY phase
	for v := range alive {
		alive[v] = true
	}
	remaining := n
	dist := make([]int, n)
	stamp := make([]int, n)
	epoch := 0
	queue := make([]int32, 0, n)

	maxPhases := 64*n + 64 // far above the O(log n) reality; bug guard
	for phase := 0; remaining > 0; phase++ {
		if phase >= maxPhases {
			return nil, fmt.Errorf("baseline: BallCarving did not terminate after %d phases", phase)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// working[v]: v is available to this phase (alive and not deferred
		// by an earlier ball of this phase).
		working := make([]bool, n)
		for v := 0; v < n; v++ {
			working[v] = alive[v]
		}
		carvedAny := false
		for start := 0; start < n; start++ {
			if !working[start] {
				continue
			}
			// Grow a BFS ball from start inside the working set, keeping
			// per-radius prefix sizes.
			epoch++
			queue = queue[:0]
			dist[start] = 0
			stamp[start] = epoch
			queue = append(queue, int32(start))
			sizeAt := []int{1} // |B(start, r)| cumulative per radius
			for head := 0; head < len(queue); head++ {
				u := queue[head]
				du := dist[u]
				for _, w := range g.Neighbors(int(u)) {
					if stamp[w] == epoch || !working[w] {
						continue
					}
					stamp[w] = epoch
					dist[w] = du + 1
					queue = append(queue, w)
					for len(sizeAt) <= du+1 {
						sizeAt = append(sizeAt, sizeAt[len(sizeAt)-1])
					}
					sizeAt[du+1]++
				}
			}
			// Choose the carving radius: the first r with
			// |B(r+1)| < growth·|B(r)| (must exist with r ≤ K).
			r := len(sizeAt) - 1 // whole component fallback
			for cand := 0; cand+1 < len(sizeAt); cand++ {
				if float64(sizeAt[cand+1]) < growth*float64(sizeAt[cand]) {
					r = cand
					break
				}
			}
			// Carve B(start, r); defer the shell at distance r+1.
			var members []int
			for _, u := range queue {
				ui := int(u)
				switch {
				case dist[u] <= r:
					members = append(members, ui)
					alive[ui] = false
					working[ui] = false
				case dist[u] == r+1:
					working[ui] = false // deferred to a later phase
				}
			}
			part.addCluster(members, start, phase, part.Colors)
			remaining -= len(members)
			carvedAny = true
		}
		if carvedAny {
			part.Colors++
		}
		part.PhasesUsed++
	}
	part.Complete = true
	part.PhaseBudget = part.PhasesUsed
	return part, nil
}
