package apps

import (
	"fmt"

	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

// RandomColoring computes a (Δ+1)-vertex-coloring with the classic
// randomized trial algorithm (the direct baseline for the
// decomposition-based Coloring in experiment T9): every round each
// uncolored vertex proposes a uniformly random color from its remaining
// palette, keeps it if no uncolored neighbor proposed the same color and
// no colored neighbor owns it, and retries otherwise. Terminates in
// O(log n) rounds with high probability.
//
// Rounds are counted as two per iteration (propose, resolve).
func RandomColoring(g graph.Interface, seed uint64) (*ColoringResult, error) {
	n := g.N()
	res := &ColoringResult{Colors: make([]int, n)}
	for v := range res.Colors {
		res.Colors[v] = -1
	}
	palette := graph.MaxDegree(g) + 1
	remaining := n
	proposal := make([]int, n)
	for iter := 0; remaining > 0; iter++ {
		if iter > 8*n+64 {
			return nil, fmt.Errorf("apps: RandomColoring exceeded %d iterations; this indicates a bug", iter)
		}
		// Propose.
		for v := 0; v < n; v++ {
			proposal[v] = -1
			if res.Colors[v] != -1 {
				continue
			}
			rng := randx.Derive(seed, uint64(iter), uint64(v))
			// Sample from the free sub-palette: colors not owned by any
			// colored neighbor. There is always at least one since the
			// palette has Δ+1 entries.
			free := make([]int, 0, palette)
			taken := make(map[int]bool, g.Degree(v))
			for _, w := range g.Neighbors(v) {
				if c := res.Colors[w]; c >= 0 {
					taken[c] = true
				}
			}
			for c := 0; c < palette; c++ {
				if !taken[c] {
					free = append(free, c)
				}
			}
			proposal[v] = free[rng.Intn(len(free))]
		}
		// Resolve in two phases so this round's winners don't invalidate
		// the check: first decide keepers purely from the proposals (on a
		// conflict only the smallest id keeps), then apply.
		keep := make([]bool, 0, n)
		for v := 0; v < n; v++ {
			ok := proposal[v] != -1
			if ok {
				for _, w := range g.Neighbors(v) {
					wi := int(w)
					if proposal[wi] == proposal[v] && wi < v {
						ok = false
						break
					}
				}
			}
			keep = append(keep, ok)
		}
		for v := 0; v < n; v++ {
			if !keep[v] {
				continue
			}
			res.Colors[v] = proposal[v]
			if proposal[v]+1 > res.NumColors {
				res.NumColors = proposal[v] + 1
			}
			remaining--
		}
		res.Rounds += 2
	}
	return res, nil
}
