package apps

import (
	"testing"

	"netdecomp/internal/baseline"
	"netdecomp/internal/core"
	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
	"netdecomp/internal/verify"
)

// decompose produces a complete decomposition input for tests.
func decompose(t *testing.T, g *graph.Graph, seed uint64) Input {
	t.Helper()
	dec, err := core.Run(g, core.Options{K: 4, C: 8, Seed: seed, ForceComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	in, err := FromCore(dec)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

var testGraphs = func() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"gnp":  gen.GnpConnected(randx.New(1), 250, 0.015),
		"grid": gen.Grid(14, 14),
		"tree": gen.RandomTree(randx.New(2), 200),
		"roc":  gen.RingOfCliques(10, 6),
		"path": gen.Path(64),
	}
}()

func TestMISValid(t *testing.T) {
	for name, g := range testGraphs {
		in := decompose(t, g, 7)
		res, err := MIS(g, in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := verify.MIS(g, res.InSet); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Size == 0 && g.N() > 0 {
			t.Fatalf("%s: empty MIS", name)
		}
		if res.Rounds <= 0 {
			t.Fatalf("%s: no rounds accounted", name)
		}
	}
}

func TestMISSizeComparableToGreedy(t *testing.T) {
	g := testGraphs["gnp"]
	in := decompose(t, g, 3)
	res, err := MIS(g, in)
	if err != nil {
		t.Fatal(err)
	}
	greedy := GreedyMIS(g)
	// Both are maximal; sizes must be within a factor related to degrees,
	// but at minimum neither can be empty and each is a valid MIS.
	if err := verify.MIS(g, greedy.InSet); err != nil {
		t.Fatal(err)
	}
	if res.Size*4 < greedy.Size || greedy.Size*4 < res.Size {
		t.Fatalf("suspicious MIS size gap: decomposition %d vs greedy %d", res.Size, greedy.Size)
	}
}

func TestColoringValid(t *testing.T) {
	for name, g := range testGraphs {
		in := decompose(t, g, 11)
		res, err := Coloring(g, in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := verify.Coloring(g, res.Colors, g.MaxDegree()+1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.NumColors > g.MaxDegree()+1 {
			t.Fatalf("%s: %d colors exceed Δ+1 = %d", name, res.NumColors, g.MaxDegree()+1)
		}
	}
}

func TestMatchingValid(t *testing.T) {
	for name, g := range testGraphs {
		in := decompose(t, g, 13)
		res, err := Matching(g, in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := verify.Matching(g, res.Mate); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		greedy := GreedyMatching(g)
		if err := verify.Matching(g, greedy.Mate); err != nil {
			t.Fatalf("%s greedy: %v", name, err)
		}
		// Maximal matchings are 2-approximations of each other.
		if res.Size*2 < greedy.Size || greedy.Size*2 < res.Size {
			t.Fatalf("%s: matching sizes too far apart: %d vs %d", name, res.Size, greedy.Size)
		}
	}
}

func TestAppsOnLinialSaksClusters(t *testing.T) {
	// The framework must also run on weak-diameter (possibly
	// induced-disconnected) clusters, costing weak diameter per cluster.
	g := testGraphs["roc"]
	p, err := baseline.LinialSaks(g, baseline.LSOptions{K: 4, Seed: 5, ForceComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Clusters: p.MemberLists(), Colors: make([]int, len(p.Clusters))}
	for i := range p.Clusters {
		in.Colors[i] = p.Clusters[i].Color
	}
	res, err := MIS(g, in)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.MIS(g, res.InSet); err != nil {
		t.Fatal(err)
	}
}

func TestRoundsTrackDChi(t *testing.T) {
	// The framework's promise: rounds ≈ Σ_color (2·maxDiam + 2) ≤
	// χ·(2D+2). Verify the accounting never exceeds the bound computed
	// from the decomposition itself.
	g := testGraphs["gnp"]
	dec, err := core.Run(g, core.Options{K: 4, C: 8, Seed: 19, ForceComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	in, err := FromCore(dec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MIS(g, in)
	if err != nil {
		t.Fatal(err)
	}
	maxDiam, ok := dec.StrongDiameter(g)
	if !ok {
		t.Fatal("disconnected cluster")
	}
	bound := dec.Colors * (2*maxDiam + 2)
	if res.Rounds > bound {
		t.Fatalf("MIS rounds %d exceed χ(2D+2) = %d", res.Rounds, bound)
	}
}

func TestFromCoreRejectsIncomplete(t *testing.T) {
	g := testGraphs["gnp"]
	dec, err := core.Run(g, core.Options{K: 3, C: 8, Seed: 1, PhaseBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Complete {
		t.Skip("single phase completed the decomposition")
	}
	if _, err := FromCore(dec); err == nil {
		t.Fatal("incomplete decomposition accepted")
	}
}

func TestPlanValidation(t *testing.T) {
	g := gen.Path(4)
	cases := []Input{
		{Clusters: [][]int{{0, 1}}, Colors: []int{0, 1}},          // length mismatch
		{Clusters: [][]int{{0, 1}, {}}, Colors: []int{0, 1}},      // empty cluster
		{Clusters: [][]int{{0, 1}, {1, 2}}, Colors: []int{0, 1}},  // overlap
		{Clusters: [][]int{{0, 1, 9}}, Colors: []int{0}},          // out of range
		{Clusters: [][]int{{0, 1}, {2, 3}}, Colors: []int{0, -2}}, // bad color
		{Clusters: [][]int{{0, 1}}, Colors: []int{0}},             // not covering
	}
	for i, in := range cases {
		if _, err := MIS(g, in); err == nil {
			t.Fatalf("case %d accepted: %+v", i, in)
		}
	}
}

func TestLubyMIS(t *testing.T) {
	for name, g := range testGraphs {
		for seed := uint64(0); seed < 3; seed++ {
			res, err := LubyMIS(g, seed)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := verify.MIS(g, res.InSet); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if res.Rounds <= 0 {
				t.Fatalf("%s: Luby accounted no rounds", name)
			}
		}
	}
}

func TestLubyEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	res, err := LubyMIS(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != 0 || res.Rounds != 0 {
		t.Fatal("empty graph Luby wrong")
	}
}

func TestGreedyReferencesOnCompleteGraph(t *testing.T) {
	g := gen.Complete(10)
	mis := GreedyMIS(g)
	if mis.Size != 1 {
		t.Fatalf("MIS of K10 has size %d", mis.Size)
	}
	m := GreedyMatching(g)
	if m.Size != 5 {
		t.Fatalf("maximal matching of K10 has %d edges, want 5", m.Size)
	}
}

func TestMatchingProposalArbitration(t *testing.T) {
	// Star graphs force many simultaneous proposals to one hub.
	g := gen.Star(32)
	in := decompose(t, g, 23)
	res, err := Matching(g, in)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Matching(g, res.Mate); err != nil {
		t.Fatal(err)
	}
	if res.Size != 1 {
		t.Fatalf("star matching size %d, want 1", res.Size)
	}
}

func BenchmarkMISViaDecomposition(b *testing.B) {
	g := gen.GnpConnected(randx.New(1), 1024, 0.006)
	dec, err := core.Run(g, core.Options{K: 5, C: 8, Seed: 1, ForceComplete: true})
	if err != nil {
		b.Fatal(err)
	}
	in, err := FromCore(dec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MIS(g, in); err != nil {
			b.Fatal(err)
		}
	}
}
