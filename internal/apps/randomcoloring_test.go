package apps

import (
	"testing"

	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
	"netdecomp/internal/verify"
)

func TestRandomColoringValid(t *testing.T) {
	for name, g := range testGraphs {
		for seed := uint64(0); seed < 3; seed++ {
			res, err := RandomColoring(g, seed)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := verify.Coloring(g, res.Colors, g.MaxDegree()+1); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if res.Rounds <= 0 && g.N() > 0 {
				t.Fatalf("%s: no rounds accounted", name)
			}
		}
	}
}

func TestRandomColoringCompleteGraph(t *testing.T) {
	// K_n needs exactly n colors; the palette Δ+1 = n just suffices.
	g := gen.Complete(12)
	res, err := RandomColoring(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Coloring(g, res.Colors, 12); err != nil {
		t.Fatal(err)
	}
	if res.NumColors != 12 {
		t.Fatalf("K12 colored with %d colors", res.NumColors)
	}
}

func TestRandomColoringEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	res, err := RandomColoring(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || res.NumColors != 0 {
		t.Fatal("empty coloring wrong")
	}
}

func TestRandomColoringDeterministic(t *testing.T) {
	g := gen.GnpConnected(randx.New(7), 150, 0.02)
	a, err := RandomColoring(g, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomColoring(g, 9)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Colors {
		if a.Colors[v] != b.Colors[v] {
			t.Fatal("same seed produced different colorings")
		}
	}
}
