package apps

import (
	"fmt"

	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

// LubyMIS computes a maximal independent set with Luby's classic
// randomized algorithm: in every iteration each undecided vertex draws a
// random priority, joins the set when its priority beats all undecided
// neighbors, and removes itself and its neighbors on joining. It finishes
// in O(log n) iterations with high probability and serves as the
// non-decomposition baseline of experiment T9.
//
// Rounds are counted as two per iteration (exchange priorities, exchange
// decisions), the standard CONGEST accounting.
func LubyMIS(g graph.Interface, seed uint64) (*MISResult, error) {
	n := g.N()
	res := &MISResult{InSet: make([]bool, n)}
	undecided := make([]bool, n)
	remaining := n
	for v := range undecided {
		undecided[v] = true
	}
	priority := make([]uint64, n)
	// n iterations is an extreme upper bound; Luby needs O(log n) whp, so
	// exceeding the bound indicates a bug rather than bad luck.
	for iter := 0; remaining > 0; iter++ {
		if iter > 4*n+64 {
			return nil, fmt.Errorf("apps: Luby exceeded %d iterations; this indicates a bug", iter)
		}
		for v := 0; v < n; v++ {
			if undecided[v] {
				priority[v] = randx.Derive(seed, uint64(iter), uint64(v)).Uint64()
			}
		}
		var joiners []int
		for v := 0; v < n; v++ {
			if !undecided[v] {
				continue
			}
			wins := true
			for _, w := range g.Neighbors(v) {
				if !undecided[w] {
					continue
				}
				// Ties (astronomically unlikely) break toward smaller id.
				if priority[w] < priority[v] || (priority[w] == priority[v] && int(w) < v) {
					wins = false
					break
				}
			}
			if wins {
				joiners = append(joiners, v)
			}
		}
		for _, v := range joiners {
			res.InSet[v] = true
			res.Size++
			if undecided[v] {
				undecided[v] = false
				remaining--
			}
			for _, w := range g.Neighbors(v) {
				if undecided[w] {
					undecided[w] = false
					remaining--
				}
			}
		}
		res.Rounds += 2
	}
	return res, nil
}

// GreedyMIS is the sequential first-fit maximal independent set, used by
// tests as an independent correctness reference (it is not a distributed
// algorithm; Rounds is reported as 0).
func GreedyMIS(g graph.Interface) *MISResult {
	res := &MISResult{InSet: make([]bool, g.N())}
	for v := 0; v < g.N(); v++ {
		free := true
		for _, w := range g.Neighbors(v) {
			if res.InSet[w] {
				free = false
				break
			}
		}
		if free {
			res.InSet[v] = true
			res.Size++
		}
	}
	return res
}

// GreedyMatching is the sequential greedy maximal matching reference.
func GreedyMatching(g graph.Interface) *MatchingResult {
	res := &MatchingResult{Mate: make([]int, g.N())}
	for v := range res.Mate {
		res.Mate[v] = -1
	}
	for u, w := range graph.EdgeSeq(g) {
		if res.Mate[u] == -1 && res.Mate[w] == -1 {
			res.Mate[u] = w
			res.Mate[w] = u
			res.Size++
		}
	}
	return res
}
