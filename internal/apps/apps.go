// Package apps implements the symmetry-breaking applications that motivate
// network decomposition in Section 1.1 of the paper: given a (D, χ)
// decomposition with a proper χ-coloring of the cluster supergraph, maximal
// independent set, (Δ+1)-vertex-coloring and maximal matching are solved in
// O(D·χ) distributed rounds by sweeping the color classes — clusters of one
// color are pairwise non-adjacent, so each class is processed in parallel,
// and each cluster is solved by the naive collect/solve/disseminate routine
// in O(D) rounds.
//
// The package also provides Luby's randomized MIS as an
// independent baseline for the application experiments (T9).
package apps

import (
	"fmt"
	"sort"

	"netdecomp/internal/core"
	"netdecomp/internal/decomp"
	"netdecomp/internal/graph"
)

// Input is a complete clustered view of a graph: member lists with a
// per-cluster color forming a proper supergraph coloring. Build one with
// FromPartition (any registered algorithm's output) or FromCore.
type Input struct {
	// Clusters holds the member lists (each sorted ascending).
	Clusters [][]int
	// Colors assigns each cluster its color class.
	Colors []int
}

// FromCore adapts a core.Decomposition (which must be complete — run with
// ForceComplete to guarantee that) into an application input.
//
// Deprecated: use FromPartition with decomp.FromCore, which also accepts
// the other registered algorithms' results.
func FromCore(dec *core.Decomposition) (Input, error) {
	if !dec.Complete {
		return Input{}, fmt.Errorf("apps: decomposition incomplete (%d vertices unassigned); run with ForceComplete", len(dec.Unassigned()))
	}
	in := Input{
		Clusters: make([][]int, len(dec.Clusters)),
		Colors:   make([]int, len(dec.Clusters)),
	}
	for i := range dec.Clusters {
		in.Clusters[i] = dec.Clusters[i].Members
		in.Colors[i] = dec.Clusters[i].Color
	}
	return in, nil
}

// FromPartition adapts any complete unified Partition into an application
// input, so MIS, coloring and matching run on every registered algorithm's
// output.
//
// The returned Input owns its member lists: they are copies, not aliases
// of the Partition's slices, so a caller that later mutates the Partition
// (or the Partition's producer) cannot corrupt a retained Input, and vice
// versa.
//
// The color-class sweep requires a proper supergraph coloring. Partitions
// that do not carry one (MPX, whose single color class is shared by
// adjacent clusters) are recolored greedily: clusters are first-fit
// colored against their supergraph neighbors in creation order — a
// sequential O(m) preprocessing step standing in for the O(Δ_P log n)
// distributed supergraph coloring a fully local execution would run. The
// sweep then costs O(D·χ') for the resulting χ'.
func FromPartition(g graph.Interface, p *decomp.Partition) (Input, error) {
	if !p.Complete {
		return Input{}, fmt.Errorf("apps: partition incomplete (%d vertices unassigned); decompose with WithForceComplete", len(p.Unassigned()))
	}
	in := Input{
		Clusters: make([][]int, len(p.Clusters)),
		Colors:   p.ClusterColors(),
	}
	for i := range p.Clusters {
		in.Clusters[i] = append([]int(nil), p.Clusters[i].Members...)
	}
	if !p.ProperColors {
		in.Colors = greedySupergraphColors(g, p)
	}
	return in, nil
}

// greedySupergraphColors first-fit colors the cluster supergraph in
// cluster creation order, yielding a proper per-cluster coloring for
// partitions that lack one.
func greedySupergraphColors(g graph.Interface, p *decomp.Partition) []int {
	sg := p.Supergraph(g)
	colors := make([]int, sg.N())
	for ci := range colors {
		colors[ci] = -1
	}
	used := make([]bool, sg.N()+1)
	for ci := 0; ci < sg.N(); ci++ {
		for _, nb := range sg.Neighbors(ci) {
			if c := colors[nb]; c >= 0 {
				used[c] = true
			}
		}
		for c := 0; ; c++ {
			if !used[c] {
				colors[ci] = c
				break
			}
		}
		// Un-mark only what was set, keeping the pass linear in
		// supergraph edges.
		for _, nb := range sg.Neighbors(ci) {
			if c := colors[nb]; c >= 0 {
				used[c] = false
			}
		}
	}
	return colors
}

// plan is the color-ordered processing schedule shared by the solvers,
// with the per-color round cost of the collect/solve/disseminate routine.
type plan struct {
	order      [][]int // clusters by color class, ascending colors
	costPerCls [][]int // matching diameter-based cost per cluster
	owner      []int   // vertex -> cluster index
}

// buildPlan validates the input against g and computes the schedule. Every
// vertex must belong to exactly one cluster. The per-cluster cost is the
// cluster's strong diameter when its induced subgraph is connected, and
// its weak diameter otherwise (an LS93-style cluster routes its gather
// through outside vertices).
func buildPlan(g graph.Interface, in Input) (*plan, error) {
	if len(in.Clusters) != len(in.Colors) {
		return nil, fmt.Errorf("apps: %d clusters but %d colors", len(in.Clusters), len(in.Colors))
	}
	p := &plan{owner: make([]int, g.N())}
	for v := range p.owner {
		p.owner[v] = -1
	}
	maxColor := -1
	for ci, members := range in.Clusters {
		if len(members) == 0 {
			return nil, fmt.Errorf("apps: cluster %d is empty", ci)
		}
		for _, v := range members {
			if v < 0 || v >= g.N() {
				return nil, fmt.Errorf("apps: cluster %d holds out-of-range vertex %d", ci, v)
			}
			if p.owner[v] != -1 {
				return nil, fmt.Errorf("apps: vertex %d in clusters %d and %d", v, p.owner[v], ci)
			}
			p.owner[v] = ci
		}
		if in.Colors[ci] < 0 {
			return nil, fmt.Errorf("apps: cluster %d has negative color", ci)
		}
		if in.Colors[ci] > maxColor {
			maxColor = in.Colors[ci]
		}
	}
	for v := range p.owner {
		if p.owner[v] == -1 {
			return nil, fmt.Errorf("apps: vertex %d belongs to no cluster", v)
		}
	}
	p.order = make([][]int, maxColor+1)
	p.costPerCls = make([][]int, maxColor+1)
	for ci, color := range in.Colors {
		p.order[color] = append(p.order[color], ci)
	}
	for color := range p.order {
		sort.Ints(p.order[color])
		p.costPerCls[color] = make([]int, len(p.order[color]))
		for i, ci := range p.order[color] {
			d, ok := graph.SubsetStrongDiameter(g, in.Clusters[ci])
			if !ok {
				d, ok = graph.SubsetWeakDiameter(g, in.Clusters[ci])
				if !ok {
					return nil, fmt.Errorf("apps: cluster %d spans multiple components", ci)
				}
			}
			p.costPerCls[color][i] = d
		}
	}
	return p, nil
}

// colorCost returns the collect/solve/disseminate round cost of one color
// class: clusters of one class run in parallel, so the class costs its
// maximum cluster diameter (up and down) plus a constant.
func (p *plan) colorCost(color int) int {
	max := 0
	for _, d := range p.costPerCls[color] {
		if d > max {
			max = d
		}
	}
	return 2*max + 2
}

// MISResult is a maximal independent set with its distributed cost.
type MISResult struct {
	InSet  []bool
	Size   int
	Rounds int
}

// MIS computes a maximal independent set by sweeping the decomposition's
// color classes: each cluster greedily decides its members consistently
// with all previously decided neighbors. Rounds follow the O(D·χ) account:
// one collect/solve/disseminate per color class.
func MIS(g graph.Interface, in Input) (*MISResult, error) {
	p, err := buildPlan(g, in)
	if err != nil {
		return nil, err
	}
	res := &MISResult{InSet: make([]bool, g.N())}
	decided := make([]bool, g.N())
	for color := range p.order {
		if len(p.order[color]) == 0 {
			continue
		}
		for _, ci := range p.order[color] {
			for _, v := range in.Clusters[ci] {
				free := true
				for _, w := range g.Neighbors(v) {
					if res.InSet[w] {
						free = false
						break
					}
				}
				if free {
					res.InSet[v] = true
					res.Size++
				}
				decided[v] = true
			}
		}
		res.Rounds += p.colorCost(color)
	}
	return res, nil
}

// ColoringResult is a proper vertex coloring with its distributed cost.
type ColoringResult struct {
	Colors    []int
	NumColors int
	Rounds    int
}

// Coloring computes a (Δ+1)-coloring by the same color-class sweep: every
// cluster first-fit colors its members against already-colored neighbors.
func Coloring(g graph.Interface, in Input) (*ColoringResult, error) {
	p, err := buildPlan(g, in)
	if err != nil {
		return nil, err
	}
	res := &ColoringResult{Colors: make([]int, g.N())}
	for v := range res.Colors {
		res.Colors[v] = -1
	}
	maxDeg := graph.MaxDegree(g)
	used := make([]bool, maxDeg+2)
	for color := range p.order {
		if len(p.order[color]) == 0 {
			continue
		}
		for _, ci := range p.order[color] {
			for _, v := range in.Clusters[ci] {
				for i := range used {
					used[i] = false
				}
				for _, w := range g.Neighbors(v) {
					if c := res.Colors[w]; c >= 0 && c < len(used) {
						used[c] = true
					}
				}
				for c := 0; ; c++ {
					if !used[c] {
						res.Colors[v] = c
						if c+1 > res.NumColors {
							res.NumColors = c + 1
						}
						break
					}
				}
			}
		}
		res.Rounds += p.colorCost(color)
	}
	return res, nil
}

// MatchingResult is a maximal matching with its distributed cost.
type MatchingResult struct {
	// Mate[v] is v's partner or -1.
	Mate []int
	// Size is the number of matched edges.
	Size int
	// Rounds is the distributed round estimate; Proposals counts
	// propose/accept sub-iterations summed over color classes.
	Rounds    int
	Proposals int
}

// Matching computes a maximal matching with the color-class sweep plus a
// propose/accept arbitration loop inside each class: free vertices of the
// active clusters propose to their smallest free neighbor that is already
// safe to claim (own cluster or an earlier color class), proposees accept
// the smallest proposer, and losers retry. Arbitration is required because
// two same-color clusters, though never adjacent, can both border the same
// earlier-class vertex.
func Matching(g graph.Interface, in Input) (*MatchingResult, error) {
	p, err := buildPlan(g, in)
	if err != nil {
		return nil, err
	}
	res := &MatchingResult{Mate: make([]int, g.N())}
	for v := range res.Mate {
		res.Mate[v] = -1
	}
	processedColor := make([]int, g.N()) // color class of v's cluster
	for ci, members := range in.Clusters {
		for _, v := range members {
			processedColor[v] = in.Colors[ci]
		}
	}
	for color := range p.order {
		if len(p.order[color]) == 0 {
			continue
		}
		iters := 0
		for {
			// Gather proposals from free members of this class.
			proposals := make(map[int][]int)
			for _, ci := range p.order[color] {
				for _, v := range in.Clusters[ci] {
					if res.Mate[v] != -1 {
						continue
					}
					target := -1
					for _, w := range g.Neighbors(v) {
						wi := int(w)
						if res.Mate[wi] != -1 {
							continue
						}
						// Safe targets: same cluster, or a class already
						// processed (strictly smaller color), or — within
						// the same class — the same cluster only.
						if p.owner[wi] == ci || processedColor[wi] < color {
							if target == -1 || wi < target {
								target = wi
							}
						}
					}
					if target != -1 {
						proposals[target] = append(proposals[target], v)
					}
				}
			}
			if len(proposals) == 0 {
				break
			}
			iters++
			targets := make([]int, 0, len(proposals))
			for w := range proposals {
				targets = append(targets, w)
			}
			sort.Ints(targets)
			for _, w := range targets {
				if res.Mate[w] != -1 {
					continue
				}
				best := -1
				for _, v := range proposals[w] {
					if res.Mate[v] != -1 {
						continue
					}
					if best == -1 || v < best {
						best = v
					}
				}
				if best != -1 {
					res.Mate[w] = best
					res.Mate[best] = w
					res.Size++
				}
			}
		}
		res.Proposals += iters
		cost := p.colorCost(color)
		if iters > 1 {
			cost += (iters - 1) * 2 // extra propose/accept exchanges
		}
		res.Rounds += cost
	}
	return res, nil
}
