package apps_test

import (
	"context"
	"testing"

	"netdecomp/internal/apps"
	"netdecomp/internal/decomp"
	"netdecomp/internal/gen"
	"netdecomp/internal/randx"
	"netdecomp/internal/verify"
)

// TestApplicationsOnEveryRegisteredAlgorithm: MIS, coloring and matching
// must run — and verify maximal/proper — on the Partition of every
// registered algorithm, not just Elkin–Neiman. This is the cross-algorithm
// payoff of the unified API: MPX's single-color partition is recolored by
// FromPartition, Linial–Saks' disconnected clusters are costed by weak
// diameter, and the sweep works unchanged.
func TestApplicationsOnEveryRegisteredAlgorithm(t *testing.T) {
	g := gen.GnpConnected(randx.New(9), 220, 0.03)
	for _, name := range decomp.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := decomp.MustGet(name).Decompose(context.Background(), g,
				decomp.WithSeed(6), decomp.WithForceComplete())
			if err != nil {
				t.Fatal(err)
			}
			in, err := apps.FromPartition(g, p)
			if err != nil {
				t.Fatal(err)
			}
			// The derived input must carry a proper supergraph coloring
			// even when the partition did not.
			if rep := verify.Clustering(g, in.Clusters, in.Colors, true, false, true); !rep.Valid() {
				t.Fatalf("FromPartition input invalid: %v", rep.Err())
			}
			mis, err := apps.MIS(g, in)
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.MIS(g, mis.InSet); err != nil {
				t.Fatal(err)
			}
			col, err := apps.Coloring(g, in)
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.Coloring(g, col.Colors, g.MaxDegree()+1); err != nil {
				t.Fatal(err)
			}
			mat, err := apps.Matching(g, in)
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.Matching(g, mat.Mate); err != nil {
				t.Fatal(err)
			}
			if mis.Rounds <= 0 || col.Rounds <= 0 || mat.Rounds <= 0 {
				t.Fatal("application rounds not accounted")
			}
		})
	}
}

// TestFromPartitionRecolorsMPX pins the recoloring contract: the MPX
// partition arrives with one color class; the derived input must use more
// than one class exactly when adjacent clusters exist, and stay proper.
func TestFromPartitionRecolorsMPX(t *testing.T) {
	g := gen.Grid(12, 12)
	p, err := decomp.MustGet("mpx").Decompose(context.Background(), g,
		decomp.WithBeta(0.4), decomp.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if p.ProperColors {
		t.Fatal("MPX partition claims proper colors")
	}
	in, err := apps.FromPartition(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Clusters) > 1 {
		distinct := map[int]bool{}
		for _, c := range in.Colors {
			distinct[c] = true
		}
		if len(distinct) < 2 {
			t.Fatal("recoloring left adjacent clusters monochromatic")
		}
	}
	if rep := verify.Clustering(g, in.Clusters, in.Colors, true, false, true); !rep.Valid() {
		t.Fatalf("recolored input improper: %v", rep.Err())
	}
}

// TestFromPartitionRejectsIncomplete mirrors the FromCore contract.
func TestFromPartitionRejectsIncomplete(t *testing.T) {
	g := gen.GnpConnected(randx.New(3), 150, 0.02)
	p, err := decomp.MustGet("elkin-neiman").Decompose(context.Background(), g,
		decomp.WithK(3), decomp.WithSeed(1), decomp.WithPhaseBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.Complete {
		t.Skip("single phase completed")
	}
	if _, err := apps.FromPartition(g, p); err == nil {
		t.Fatal("incomplete partition accepted")
	}
}
