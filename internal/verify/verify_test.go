package verify

import (
	"strings"
	"testing"

	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
)

func TestDecompositionValid(t *testing.T) {
	g := gen.Path(6) // 0-1-2-3-4-5
	clusters := [][]int{{0, 1}, {2, 3}, {4, 5}}
	colors := []int{0, 1, 0}
	r := Decomposition(g, clusters, colors, true, true)
	if !r.Valid() {
		t.Fatalf("valid decomposition rejected: %v", r.Errors)
	}
	if r.MaxStrongDiameter != 1 || r.Colors != 2 || r.Coverage != 1 {
		t.Fatalf("report wrong: %+v", r)
	}
	if r.Err() != nil {
		t.Fatal("Err() non-nil on valid report")
	}
}

func TestDecompositionDetectsImproperColoring(t *testing.T) {
	g := gen.Path(4)
	clusters := [][]int{{0, 1}, {2, 3}}
	colors := []int{0, 0} // adjacent clusters, same color
	r := Decomposition(g, clusters, colors, true, true)
	if r.Valid() {
		t.Fatal("improper supergraph coloring accepted")
	}
	if !strings.Contains(r.Err().Error(), "equal color") {
		t.Fatalf("unexpected error: %v", r.Err())
	}
}

func TestDecompositionDetectsOverlap(t *testing.T) {
	g := gen.Path(4)
	r := Decomposition(g, [][]int{{0, 1}, {1, 2, 3}}, []int{0, 1}, true, true)
	if r.Valid() {
		t.Fatal("overlapping clusters accepted")
	}
}

func TestDecompositionDetectsIncomplete(t *testing.T) {
	g := gen.Path(4)
	r := Decomposition(g, [][]int{{0, 1}}, []int{0}, true, true)
	if r.Valid() {
		t.Fatal("incomplete decomposition accepted with requireComplete")
	}
	r = Decomposition(g, [][]int{{0, 1}}, []int{0}, false, true)
	if !r.Valid() {
		t.Fatalf("partial decomposition rejected without requireComplete: %v", r.Errors)
	}
	if r.Coverage != 0.5 {
		t.Fatalf("coverage = %v, want 0.5", r.Coverage)
	}
}

func TestDecompositionDetectsDisconnected(t *testing.T) {
	g := gen.Path(5)
	// {0, 2} is disconnected in the induced subgraph.
	clusters := [][]int{{0, 2}, {1}, {3, 4}}
	colors := []int{0, 1, 2}
	r := Decomposition(g, clusters, colors, true, true)
	if r.Valid() {
		t.Fatal("disconnected cluster accepted with requireConnected")
	}
	r = Decomposition(g, clusters, colors, true, false)
	if !r.Valid() {
		t.Fatalf("weak decomposition rejected: %v", r.Errors)
	}
	if r.DisconnectedClusters != 1 {
		t.Fatalf("DisconnectedClusters = %d, want 1", r.DisconnectedClusters)
	}
	if r.MaxWeakDiameter != 2 {
		t.Fatalf("MaxWeakDiameter = %d, want 2", r.MaxWeakDiameter)
	}
}

func TestDecompositionBadInputs(t *testing.T) {
	g := gen.Path(3)
	if r := Decomposition(g, [][]int{{0}}, []int{0, 1}, true, true); r.Valid() {
		t.Fatal("color/cluster length mismatch accepted")
	}
	if r := Decomposition(g, [][]int{{}}, []int{0}, false, true); r.Valid() {
		t.Fatal("empty cluster accepted")
	}
	if r := Decomposition(g, [][]int{{7}}, []int{0}, false, true); r.Valid() {
		t.Fatal("out-of-range vertex accepted")
	}
}

func TestMISChecker(t *testing.T) {
	g := gen.Path(4)
	if err := MIS(g, []bool{true, false, true, false}); err != nil {
		t.Fatalf("valid MIS rejected: %v", err)
	}
	if err := MIS(g, []bool{true, true, false, true}); err == nil {
		t.Fatal("adjacent members accepted")
	}
	if err := MIS(g, []bool{true, false, false, false}); err == nil {
		t.Fatal("non-maximal set accepted (vertex 2 undominated)")
	}
	if err := MIS(g, []bool{true}); err == nil {
		t.Fatal("wrong-length vector accepted")
	}
}

func TestMISCheckerIsolatedVertices(t *testing.T) {
	g := graph.NewBuilder(3).Build() // no edges
	if err := MIS(g, []bool{true, true, true}); err != nil {
		t.Fatalf("all-isolated MIS rejected: %v", err)
	}
	if err := MIS(g, []bool{true, false, true}); err == nil {
		t.Fatal("isolated vertex excluded from MIS accepted")
	}
}

func TestColoringChecker(t *testing.T) {
	g := gen.Cycle(4)
	if err := Coloring(g, []int{0, 1, 0, 1}, 2); err != nil {
		t.Fatalf("valid 2-coloring rejected: %v", err)
	}
	if err := Coloring(g, []int{0, 1, 0, 0}, 2); err == nil {
		t.Fatal("monochromatic edge accepted")
	}
	if err := Coloring(g, []int{0, 1, 0, 5}, 2); err == nil {
		t.Fatal("color beyond budget accepted")
	}
	if err := Coloring(g, []int{0, 1, 0, -1}, 2); err == nil {
		t.Fatal("uncolored vertex accepted")
	}
	if err := Coloring(g, []int{0, 1, 0, 9}, 0); err != nil {
		t.Fatalf("budget check not skipped for maxColors<=0: %v", err)
	}
}

func TestMatchingChecker(t *testing.T) {
	g := gen.Path(4)
	if err := Matching(g, []int{1, 0, 3, 2}); err != nil {
		t.Fatalf("perfect matching rejected: %v", err)
	}
	if err := Matching(g, []int{-1, 2, 1, -1}); err != nil {
		t.Fatalf("maximal matching rejected: %v", err)
	}
	if err := Matching(g, []int{-1, -1, 3, 2}); err == nil {
		t.Fatal("non-maximal matching accepted (edge 0-1 free)")
	}
	if err := Matching(g, []int{1, 2, 1, -1}); err == nil {
		t.Fatal("asymmetric matching accepted")
	}
	if err := Matching(g, []int{2, -1, 0, -1}); err == nil {
		t.Fatal("non-edge pair accepted")
	}
	if err := Matching(g, []int{0, -1, -1, -1}); err == nil {
		t.Fatal("self-matching accepted")
	}
	if err := Matching(g, []int{9, -1, -1, -1}); err == nil {
		t.Fatal("out-of-range mate accepted")
	}
}

func TestReportErrTruncation(t *testing.T) {
	g := gen.Path(3)
	// Construct many violations: overlapping singletons of one color.
	clusters := [][]int{{0}, {0}, {0}, {0}, {0}, {0}, {0}}
	colors := make([]int, len(clusters))
	r := Decomposition(g, clusters, colors, false, true)
	if r.Valid() {
		t.Fatal("should be invalid")
	}
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "violations") {
		t.Fatalf("Err() = %v", err)
	}
}
