package verify

import (
	"testing"

	"netdecomp/internal/gen"
	"netdecomp/internal/graph"
)

func TestBallIntersectionsPath(t *testing.T) {
	// Path 0..5 split into {0,1,2} and {3,4,5}: radius-1 balls at the
	// boundary touch both clusters, interior balls touch one.
	g := gen.Path(6)
	clusterOf := []int{0, 0, 0, 1, 1, 1}
	max, mean, err := BallIntersections(g, clusterOf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if max != 2 {
		t.Fatalf("max = %d, want 2", max)
	}
	// Vertices 2 and 3 see two clusters, the other four see one.
	want := (4*1 + 2*2) / 6.0
	if mean != want {
		t.Fatalf("mean = %v, want %v", mean, want)
	}
}

func TestBallIntersectionsRadiusZero(t *testing.T) {
	g := gen.Cycle(8)
	clusterOf := make([]int, 8)
	for v := range clusterOf {
		clusterOf[v] = v % 3
	}
	max, mean, err := BallIntersections(g, clusterOf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if max != 1 || mean != 1 {
		t.Fatalf("radius-0 balls must see exactly their own cluster: max=%d mean=%v", max, mean)
	}
}

func TestBallIntersectionsWholeGraph(t *testing.T) {
	// Radius ≥ diameter: every ball sees every cluster (connected graph).
	g := gen.Path(5)
	clusterOf := []int{0, 1, 2, 3, 4}
	max, mean, err := BallIntersections(g, clusterOf, 10)
	if err != nil {
		t.Fatal(err)
	}
	if max != 5 || mean != 5 {
		t.Fatalf("whole-graph balls: max=%d mean=%v, want 5", max, mean)
	}
}

func TestBallIntersectionsErrors(t *testing.T) {
	g := gen.Path(3)
	if _, _, err := BallIntersections(g, []int{0, 0}, 1); err == nil {
		t.Fatal("short clusterOf accepted")
	}
	if _, _, err := BallIntersections(g, []int{0, 0, -1}, 1); err == nil {
		t.Fatal("unassigned vertex accepted")
	}
	if _, _, err := BallIntersections(g, []int{0, 0, 0}, -1); err == nil {
		t.Fatal("negative radius accepted")
	}
	empty := graph.NewBuilder(0).Build()
	if max, mean, err := BallIntersections(empty, nil, 1); err != nil || max != 0 || mean != 0 {
		t.Fatalf("empty graph: %d %v %v", max, mean, err)
	}
}
