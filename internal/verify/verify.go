// Package verify provides algorithm-agnostic validators for everything the
// repository computes: network decompositions (cluster structure, diameter
// bounds, supergraph coloring), maximal independent sets, vertex colorings
// and maximal matchings.
//
// The validators accept plain data (member lists, color slices) rather than
// the producing packages' types, so the same checks apply to the
// Elkin–Neiman decomposition, the Linial–Saks baseline and the MPX
// partition, and tests can cross-validate independent implementations.
package verify

import (
	"fmt"

	"netdecomp/internal/graph"
)

// Infinite is the diameter reported for disconnected clusters.
const Infinite = -1

// Report summarizes the validation of a clustering.
type Report struct {
	// Errors lists every violated invariant; empty means valid.
	Errors []string
	// ClusterCount is the number of clusters checked.
	ClusterCount int
	// AssignedVertices counts vertices inside some cluster; Coverage is
	// their fraction of the graph.
	AssignedVertices int
	Coverage         float64
	// Colors is the number of distinct colors observed.
	Colors int
	// MaxStrongDiameter is the largest induced-subgraph diameter over
	// connected clusters; DisconnectedClusters counts clusters with
	// infinite strong diameter.
	MaxStrongDiameter    int
	DisconnectedClusters int
	// MaxWeakDiameter is the largest whole-graph diameter over clusters
	// (Infinite if some cluster spans two components of g).
	MaxWeakDiameter int
}

// Valid reports whether no invariant was violated.
func (r *Report) Valid() bool { return len(r.Errors) == 0 }

// Err returns nil when valid, otherwise an error joining the first few
// violations.
func (r *Report) Err() error {
	if r.Valid() {
		return nil
	}
	max := len(r.Errors)
	if max > 5 {
		max = 5
	}
	return fmt.Errorf("verify: %d violations, first %d: %v", len(r.Errors), max, r.Errors[:max])
}

// Decomposition validates a clustering of g given as member lists and a
// per-cluster color, checking:
//
//   - clusters are non-empty, within range, and pairwise disjoint;
//   - adjacent vertices in different clusters have different colors (the
//     supergraph G(P) is properly colored);
//   - and it measures strong/weak diameters and coverage.
//
// requireComplete adds a violation when some vertex is unassigned;
// requireConnected adds one per cluster that is disconnected in its
// induced subgraph (mandatory for *strong* decompositions).
func Decomposition(g graph.Interface, clusters [][]int, colors []int, requireComplete, requireConnected bool) *Report {
	return Clustering(g, clusters, colors, requireComplete, requireConnected, true)
}

// Clustering is the fully general validator behind Decomposition: the
// additional requireProperColors flag controls whether adjacent clusters
// of equal color are violations. Low-diameter *partitions* (MPX) carry a
// single color class and are validated with requireProperColors false;
// network *decompositions* require true.
func Clustering(g graph.Interface, clusters [][]int, colors []int, requireComplete, requireConnected, requireProperColors bool) *Report {
	r := &Report{ClusterCount: len(clusters)}
	if len(colors) != len(clusters) {
		r.Errors = append(r.Errors, fmt.Sprintf("got %d colors for %d clusters", len(colors), len(clusters)))
		return r
	}
	owner := make([]int, g.N())
	for v := range owner {
		owner[v] = -1
	}
	colorSet := make(map[int]bool)
	malformed := make([]bool, len(clusters))
	for ci, members := range clusters {
		if len(members) == 0 {
			r.Errors = append(r.Errors, fmt.Sprintf("cluster %d is empty", ci))
			malformed[ci] = true
			continue
		}
		colorSet[colors[ci]] = true
		for _, v := range members {
			if v < 0 || v >= g.N() {
				r.Errors = append(r.Errors, fmt.Sprintf("cluster %d contains out-of-range vertex %d", ci, v))
				malformed[ci] = true
				continue
			}
			if owner[v] != -1 {
				r.Errors = append(r.Errors, fmt.Sprintf("vertex %d in clusters %d and %d", v, owner[v], ci))
				continue
			}
			owner[v] = ci
			r.AssignedVertices++
		}
	}
	r.Colors = len(colorSet)
	if g.N() > 0 {
		r.Coverage = float64(r.AssignedVertices) / float64(g.N())
	} else {
		r.Coverage = 1
	}
	if requireComplete && r.AssignedVertices != g.N() {
		r.Errors = append(r.Errors, fmt.Sprintf("%d vertices unassigned", g.N()-r.AssignedVertices))
	}

	// Proper supergraph coloring.
	if requireProperColors {
		for u, w := range graph.EdgeSeq(g) {
			cu, cv := owner[u], owner[w]
			if cu < 0 || cv < 0 || cu == cv {
				continue
			}
			if colors[cu] == colors[cv] {
				r.Errors = append(r.Errors, fmt.Sprintf("edge {%d,%d} joins clusters %d,%d of equal color %d", u, w, cu, cv, colors[cu]))
			}
		}
	}

	// Diameters (skipped for malformed clusters, which already reported
	// violations above).
	r.MaxWeakDiameter = 0
	for ci, members := range clusters {
		if len(members) == 0 || malformed[ci] {
			continue
		}
		sd, ok := graph.SubsetStrongDiameter(g, members)
		if !ok {
			r.DisconnectedClusters++
			if requireConnected {
				r.Errors = append(r.Errors, fmt.Sprintf("cluster %d disconnected in induced subgraph", ci))
			}
		} else if sd > r.MaxStrongDiameter {
			r.MaxStrongDiameter = sd
		}
		wd, ok := graph.SubsetWeakDiameter(g, members)
		if !ok {
			r.MaxWeakDiameter = Infinite
		} else if r.MaxWeakDiameter != Infinite && wd > r.MaxWeakDiameter {
			r.MaxWeakDiameter = wd
		}
	}
	return r
}

// MIS checks that inSet is a maximal independent set of g: no two set
// members are adjacent, and every non-member has a member neighbor.
func MIS(g graph.Interface, inSet []bool) error {
	if len(inSet) != g.N() {
		return fmt.Errorf("verify: MIS vector has length %d for %d vertices", len(inSet), g.N())
	}
	for u, w := range graph.EdgeSeq(g) {
		if inSet[u] && inSet[w] {
			return fmt.Errorf("verify: MIS contains adjacent vertices %d and %d", u, w)
		}
	}
	for v := 0; v < g.N(); v++ {
		if inSet[v] {
			continue
		}
		dominated := false
		for _, w := range g.Neighbors(v) {
			if inSet[w] {
				dominated = true
				break
			}
		}
		if !dominated {
			return fmt.Errorf("verify: MIS not maximal: vertex %d and its neighborhood are all excluded", v)
		}
	}
	return nil
}

// Coloring checks that colors is a proper vertex coloring of g using
// colors in [0, maxColors); maxColors <= 0 skips the range check.
func Coloring(g graph.Interface, colors []int, maxColors int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("verify: coloring has length %d for %d vertices", len(colors), g.N())
	}
	for v, c := range colors {
		if c < 0 {
			return fmt.Errorf("verify: vertex %d uncolored", v)
		}
		if maxColors > 0 && c >= maxColors {
			return fmt.Errorf("verify: vertex %d uses color %d beyond budget %d", v, c, maxColors)
		}
	}
	for u, w := range graph.EdgeSeq(g) {
		if colors[u] == colors[w] {
			return fmt.Errorf("verify: edge {%d,%d} monochromatic in color %d", u, w, colors[u])
		}
	}
	return nil
}

// Matching checks that mate encodes a maximal matching: mate[v] is v's
// partner or -1, the relation is symmetric, partners are adjacent, and no
// edge has two free endpoints.
func Matching(g graph.Interface, mate []int) error {
	if len(mate) != g.N() {
		return fmt.Errorf("verify: matching has length %d for %d vertices", len(mate), g.N())
	}
	for v, m := range mate {
		if m == -1 {
			continue
		}
		if m < 0 || m >= g.N() {
			return fmt.Errorf("verify: mate[%d] = %d out of range", v, m)
		}
		if m == v {
			return fmt.Errorf("verify: vertex %d matched to itself", v)
		}
		if mate[m] != v {
			return fmt.Errorf("verify: matching asymmetric at %d<->%d", v, m)
		}
		if !graph.HasEdge(g, v, m) {
			return fmt.Errorf("verify: matched pair {%d,%d} is not an edge", v, m)
		}
	}
	for u, w := range graph.EdgeSeq(g) {
		if mate[u] == -1 && mate[w] == -1 {
			return fmt.Errorf("verify: matching not maximal: edge {%d,%d} has both endpoints free", u, w)
		}
	}
	return nil
}
