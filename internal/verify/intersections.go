package verify

import (
	"fmt"

	"netdecomp/internal/graph"
)

// BallIntersections measures how "low-intersecting" a partition is — the
// property behind the paper's remark that network decompositions build
// low-intersecting partitions, which in turn yield universal Steiner trees
// ([BEG15], [BDR+12] in Section 1.1). For every vertex v it counts the
// number of distinct clusters the ball B(v, w) intersects, and returns the
// maximum and mean over all vertices.
//
// clusterOf maps each vertex to its cluster id (every vertex must be
// assigned, ids arbitrary non-negative).
func BallIntersections(g graph.Interface, clusterOf []int, w int) (max int, mean float64, err error) {
	if len(clusterOf) != g.N() {
		return 0, 0, fmt.Errorf("verify: clusterOf has length %d for %d vertices", len(clusterOf), g.N())
	}
	if w < 0 {
		return 0, 0, fmt.Errorf("verify: negative ball radius %d", w)
	}
	for v, ci := range clusterOf {
		if ci < 0 {
			return 0, 0, fmt.Errorf("verify: vertex %d unassigned", v)
		}
	}
	if g.N() == 0 {
		return 0, 0, nil
	}
	total := 0
	seen := make(map[int]struct{}, 8)
	for v := 0; v < g.N(); v++ {
		dist := graph.BFSWithin(g, v, w)
		for k := range seen {
			delete(seen, k)
		}
		for u, d := range dist {
			if d >= 0 {
				seen[clusterOf[u]] = struct{}{}
			}
		}
		if len(seen) > max {
			max = len(seen)
		}
		total += len(seen)
	}
	return max, float64(total) / float64(g.N()), nil
}
