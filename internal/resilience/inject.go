package resilience

// The deterministic fault-injection harness. One Injector holds one
// seeded internal/randx stream and a set of per-fault rates; wrapped
// around the session runner (WrapRunner → session.WithRunner) and the
// snapshot writer (FlushError, consulted by the serve persister) it
// turns a healthy daemon into a misbehaving one on demand:
//
//	latency spikes   a run sleeps Latency before executing
//	errors           a run fails with ErrInjected instead of executing
//	panics           a run panics (the session's isolation converts it
//	                 to a per-key error; the process must survive)
//	flush errors     a snapshot write fails with ErrInjected (the
//	                 persister's retry ladder must absorb it)
//
// Determinism: all draws come from one mutex-guarded SplitMix64, so a
// serialized caller replays the exact fault sequence for a seed. Under
// concurrency the interleaving of draws is scheduler-dependent but the
// marginal rates are not — which is what the chaos acceptance asserts.
//
// The injector is toggled (SetEnabled) rather than rebuilt so a chaos
// episode has crisp edges: prime clean, enable, misbehave, disable,
// verify recovery.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"netdecomp/internal/decomp"
	"netdecomp/internal/graph"
	"netdecomp/internal/randx"
)

// ErrInjected marks a failure manufactured by the harness. Handlers keep
// it in the error chain so "every 5xx has a cause" stays checkable.
var ErrInjected = errors.New("resilience: injected fault")

// InjectorConfig shapes one injector. All rates are probabilities in
// [0, 1]; a zero rate disables that fault.
type InjectorConfig struct {
	// Seed seeds the fault stream; equal seeds replay equal decisions.
	Seed uint64
	// LatencyRate is the probability a run is delayed by Latency.
	LatencyRate float64
	Latency     time.Duration
	// ErrorRate is the probability a run fails with ErrInjected.
	ErrorRate float64
	// PanicRate is the probability a run panics.
	PanicRate float64
	// FlushErrorRate is the probability a snapshot write fails.
	FlushErrorRate float64
}

// InjectorStats counts the faults actually injected.
type InjectorStats struct {
	Latencies   int64 `json:"latencies"`
	Errors      int64 `json:"errors"`
	Panics      int64 `json:"panics"`
	FlushErrors int64 `json:"flushErrors"`
}

// RunFunc is the execution signature the injector wraps — structurally
// identical to session.Runner, so a wrapped runner converts directly.
type RunFunc func(ctx context.Context, pl *decomp.Plan, g graph.Interface) (*decomp.Partition, error)

// Injector injects faults by rate from one seeded stream. Safe for
// concurrent use; starts enabled.
type Injector struct {
	cfg     InjectorConfig
	enabled atomic.Bool
	sleep   func(time.Duration) // test seam; nil = ctx-aware real sleep

	mu  sync.Mutex
	rng *randx.SplitMix64

	latencies   atomic.Int64
	errors      atomic.Int64
	panics      atomic.Int64
	flushErrors atomic.Int64
}

// NewInjector builds an enabled injector over a fresh seeded stream.
func NewInjector(cfg InjectorConfig) *Injector {
	in := &Injector{cfg: cfg, rng: randx.New(cfg.Seed)}
	in.enabled.Store(true)
	return in
}

// SetEnabled toggles injection; a disabled injector is transparent.
func (in *Injector) SetEnabled(on bool) { in.enabled.Store(on) }

// Enabled reports whether faults are being injected.
func (in *Injector) Enabled() bool { return in.enabled.Load() }

// SetSleep replaces the latency-spike sleep (tests); nil restores the
// default ctx-aware sleep.
func (in *Injector) SetSleep(fn func(time.Duration)) { in.sleep = fn }

// Stats returns the lifetime fault counts.
func (in *Injector) Stats() InjectorStats {
	return InjectorStats{
		Latencies:   in.latencies.Load(),
		Errors:      in.errors.Load(),
		Panics:      in.panics.Load(),
		FlushErrors: in.flushErrors.Load(),
	}
}

// draw returns the next uniform [0,1) decision variate.
func (in *Injector) draw() float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64()
}

// WrapRunner returns a runner that injects the configured run faults
// before delegating to next (nil next = Plan.Run). Fault order per run:
// latency spike first (a slow fault is still a fault), then panic, then
// error — each drawn independently.
func (in *Injector) WrapRunner(next RunFunc) RunFunc {
	if next == nil {
		next = func(ctx context.Context, pl *decomp.Plan, g graph.Interface) (*decomp.Partition, error) {
			return pl.Run(ctx, g)
		}
	}
	return func(ctx context.Context, pl *decomp.Plan, g graph.Interface) (*decomp.Partition, error) {
		if in.Enabled() {
			if in.cfg.LatencyRate > 0 && in.cfg.Latency > 0 && in.draw() < in.cfg.LatencyRate {
				in.latencies.Add(1)
				in.pause(ctx, in.cfg.Latency)
			}
			if in.cfg.PanicRate > 0 && in.draw() < in.cfg.PanicRate {
				n := in.panics.Add(1)
				panic(fmt.Sprintf("resilience: injected panic #%d", n))
			}
			if in.cfg.ErrorRate > 0 && in.draw() < in.cfg.ErrorRate {
				n := in.errors.Add(1)
				return nil, fmt.Errorf("%w: decomposer error #%d", ErrInjected, n)
			}
		}
		return next(ctx, pl, g)
	}
}

// FlushError draws the snapshot-write fault: nil, or ErrInjected to make
// this write attempt fail. The serve persister consults it before every
// physical write, inside its retry ladder.
func (in *Injector) FlushError() error {
	if !in.Enabled() || in.cfg.FlushErrorRate <= 0 || in.draw() >= in.cfg.FlushErrorRate {
		return nil
	}
	n := in.flushErrors.Add(1)
	return fmt.Errorf("%w: snapshot write #%d", ErrInjected, n)
}

// pause sleeps d, cut short by ctx when using the real clock.
func (in *Injector) pause(ctx context.Context, d time.Duration) {
	if in.sleep != nil {
		in.sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
