package resilience

// Bounded retry with exponential backoff and deterministic jitter. The
// sleep function and the PRNG are both injectable, so tests (and the
// chaos harness) replay exact schedules with zero wall-clock waiting;
// production callers pass nil for both and get time.Sleep over a
// seed-0 stream.

import (
	"context"
	"time"

	"netdecomp/internal/randx"
)

// Backoff shapes one retry schedule.
type Backoff struct {
	// Attempts is the total number of tries, first included (default 3;
	// 1 means no retry).
	Attempts int
	// Base is the delay before the first retry; each further retry
	// doubles it (default 25ms).
	Base time.Duration
	// Cap bounds any single delay (default 1s).
	Cap time.Duration
	// Jitter is the fraction of each delay randomized: the slept delay
	// is uniform in [d·(1−Jitter), d·(1+Jitter)], capped. 0 keeps the
	// schedule exact; default 0.5.
	Jitter float64
}

// withDefaults fills the zero values.
func (b Backoff) withDefaults() Backoff {
	if b.Attempts <= 0 {
		b.Attempts = 3
	}
	if b.Base <= 0 {
		b.Base = 25 * time.Millisecond
	}
	if b.Cap <= 0 {
		b.Cap = time.Second
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		b.Jitter = 0.5
	}
	return b
}

// delay returns the pre-jitter delay before retry i (1-based).
func (b Backoff) delay(i int) time.Duration {
	d := b.Base
	for ; i > 1 && d < b.Cap; i-- {
		d *= 2
	}
	return min(d, b.Cap)
}

// Retry runs fn until it succeeds, the attempts are spent, or ctx
// expires while backing off. It returns the number of attempts made and
// the last error (nil on success). rng seeds the jitter (nil = a fresh
// seed-0 stream; pass your own for reproducible schedules) and sleep
// replaces time.Sleep (nil = real sleeping).
func Retry(ctx context.Context, b Backoff, rng *randx.SplitMix64, sleep func(time.Duration), fn func() error) (attempts int, err error) {
	b = b.withDefaults()
	if rng == nil {
		rng = randx.New(0)
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	if ctx == nil {
		ctx = context.Background()
	}
	for attempts = 1; ; attempts++ {
		if err = fn(); err == nil || attempts >= b.Attempts {
			return attempts, err
		}
		d := b.delay(attempts)
		if b.Jitter > 0 {
			f := 1 - b.Jitter + 2*b.Jitter*rng.Float64()
			d = min(time.Duration(float64(d)*f), b.Cap)
		}
		sleep(d)
		if cerr := ctx.Err(); cerr != nil {
			return attempts, cerr
		}
	}
}
