// Package resilience is the overload-and-failure story of the serving
// stack: admission control, load shedding, request deadlines, bounded
// retries, and a deterministic fault-injection harness. It owns no HTTP
// and no session state — internal/serve wires its pieces through the
// request path, internal/session takes its wrapped runner, and
// cmd/netdecompd drives the whole ladder under -chaos.
//
// The pieces, bottom up:
//
//   - Gate: a semaphore-bounded admission gate with a bounded FIFO wait
//     queue. A request either holds a slot, waits in the queue, or is
//     rejected immediately (ErrSaturated → 429 + Retry-After upstairs).
//
//   - Governor: one gate per endpoint class (decompose / pipeline /
//     register) plus the degradation ladder: when heavy in-flight work
//     crosses the shed watermark the governor reports Degraded, and the
//     serve layer stops admitting cold-miss work while still serving
//     cache hits (stale-but-authentic snapshot entries included). The
//     governor also coordinates graceful drain: StartDrain stops
//     admissions, WaitIdle bounds how long in-flight work may finish.
//
//   - DeadlinePolicy: per-request budgets (client-requested, defaulted,
//     clamped by a server max) resolved into context deadlines that flow
//     through session jobs and pipeline stages.
//
//   - Retry: bounded exponential backoff with deterministic jitter
//     (seeded internal/randx PRNG, injectable sleep) for transient
//     failures — the snapshot-flush path rides it.
//
//   - Injector: deterministic fault injection (latency spikes, errors,
//     panics, snapshot-write failures, all by rate from one seeded PRNG)
//     wrapped around the session runner and the snapshot writer, so
//     chaos runs are reproducible and the acceptance tests can assert
//     the daemon degrades instead of dying.
package resilience

import (
	"context"
	"errors"
	"sync"
	"time"

	"netdecomp/internal/obs"
)

// ErrSaturated reports an admission gate whose slots and wait queue are
// both full: the request must be rejected now (HTTP 429), with the gate's
// RetryAfter as the back-off hint.
var ErrSaturated = errors.New("resilience: admission gate saturated")

// ErrDraining reports an admission attempt after StartDrain: the process
// is shutting down and accepts no new work (HTTP 503).
var ErrDraining = errors.New("resilience: draining, not admitting work")

// Class names an admission endpoint class. Decompose and Pipeline are the
// heavy classes — they execute decompositions — and count against the
// shed watermark; Register is cheap bookkeeping with its own gate.
type Class int

const (
	ClassDecompose Class = iota
	ClassPipeline
	ClassRegister
	numClasses
)

// String names the class for metrics and logs.
func (c Class) String() string {
	switch c {
	case ClassDecompose:
		return "decompose"
	case ClassPipeline:
		return "pipeline"
	case ClassRegister:
		return "register"
	default:
		return "unknown"
	}
}

// heavy reports whether the class counts against the shed watermark.
func (c Class) heavy() bool { return c == ClassDecompose || c == ClassPipeline }

// Options configures a Governor. The zero value disables every limit:
// unbounded admission, no shedding, no deadlines — exactly the
// pre-resilience serving behavior, so embedding it is always safe.
type Options struct {
	// Decompose, Pipeline and Register configure the per-class admission
	// gates (zero Slots = that class is unlimited).
	Decompose GateConfig
	Pipeline  GateConfig
	Register  GateConfig
	// ShedWatermark is the degradation threshold: when the heavy classes
	// (decompose + pipeline) hold this many admissions, Degraded reports
	// true and the serve layer sheds cold-miss work. 0 never degrades.
	ShedWatermark int
	// Deadline is the per-request budget policy.
	Deadline DeadlinePolicy
}

// Stats is a point-in-time snapshot of the governor counters.
type Stats struct {
	// Degraded and Draining are the current ladder state.
	Degraded bool `json:"degraded"`
	Draining bool `json:"draining"`
	// InFlight is the number of admissions currently held (all classes);
	// HeavyInFlight counts only the watermarked classes.
	InFlight      int `json:"inFlight"`
	HeavyInFlight int `json:"heavyInFlight"`
	// Admitted, Queued and Rejected are lifetime admission outcomes:
	// every Acquire lands in Admitted or Rejected, and Queued counts the
	// admitted ones that waited in a gate queue first.
	Admitted int64 `json:"admitted"`
	Queued   int64 `json:"queued"`
	Rejected int64 `json:"rejected"`
}

// Governor is the admission authority of one serving process: per-class
// gates, the shed watermark, and the drain gate. Safe for concurrent use.
type Governor struct {
	opts  Options
	gates [numClasses]*Gate

	drainCh   chan struct{}
	drainOnce sync.Once

	mu       sync.Mutex
	inflight [numClasses]int
	heavy    int

	cAdmitted *obs.Counter
	cQueued   *obs.Counter
	cRejected *obs.Counter
	gInflight *obs.Gauge
	gDegraded *obs.Gauge
}

// NewGovernor builds a governor. rec may be nil (a private metrics-only
// registry is created); with a recorder the governor reports under the
// resilience.* names beside the serve metrics.
func NewGovernor(opts Options, rec *obs.Recorder) *Governor {
	if rec == nil {
		rec = obs.New(obs.NewRegistry(), nil)
	}
	gv := &Governor{opts: opts, drainCh: make(chan struct{})}
	gv.gates[ClassDecompose] = newGate(opts.Decompose, gv.drainCh)
	gv.gates[ClassPipeline] = newGate(opts.Pipeline, gv.drainCh)
	gv.gates[ClassRegister] = newGate(opts.Register, gv.drainCh)
	gv.cAdmitted = rec.Counter("resilience.admitted")
	gv.cQueued = rec.Counter("resilience.queued")
	gv.cRejected = rec.Counter("resilience.rejected")
	gv.gInflight = rec.Gauge("resilience.inflight")
	gv.gDegraded = rec.Gauge("resilience.degraded")
	return gv
}

// Acquire admits one request of class c: immediately when a slot is free,
// after a bounded FIFO wait when the gate is busy. It returns the release
// function the caller must invoke when the request finishes (idempotent),
// or ErrSaturated (gate and queue full), ErrDraining (after StartDrain),
// or ctx's error (the caller gave up waiting).
func (gv *Governor) Acquire(ctx context.Context, c Class) (release func(), err error) {
	queued, err := gv.gates[c].acquire(ctx)
	if err != nil {
		gv.cRejected.Inc()
		return nil, err
	}
	if queued {
		gv.cQueued.Inc()
	}
	gv.cAdmitted.Inc()
	gv.mu.Lock()
	gv.inflight[c]++
	if c.heavy() {
		gv.heavy++
	}
	gv.publishLocked()
	gv.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			gv.gates[c].release()
			gv.mu.Lock()
			gv.inflight[c]--
			if c.heavy() {
				gv.heavy--
			}
			gv.publishLocked()
			gv.mu.Unlock()
		})
	}, nil
}

// publishLocked refreshes the gauges. Caller holds gv.mu.
func (gv *Governor) publishLocked() {
	total := 0
	for _, n := range gv.inflight {
		total += n
	}
	gv.gInflight.Set(int64(total))
	if gv.degradedLocked() {
		gv.gDegraded.Set(1)
	} else {
		gv.gDegraded.Set(0)
	}
}

// degradedLocked evaluates the watermark. Caller holds gv.mu.
func (gv *Governor) degradedLocked() bool {
	return gv.opts.ShedWatermark > 0 && gv.heavy >= gv.opts.ShedWatermark
}

// Degraded reports whether heavy in-flight work has crossed the shed
// watermark: the serve layer then rejects cold-miss work (429) while
// still serving cache hits.
func (gv *Governor) Degraded() bool {
	gv.mu.Lock()
	defer gv.mu.Unlock()
	return gv.degradedLocked()
}

// InFlight returns the number of admissions currently held, all classes.
func (gv *Governor) InFlight() int {
	gv.mu.Lock()
	defer gv.mu.Unlock()
	total := 0
	for _, n := range gv.inflight {
		total += n
	}
	return total
}

// RetryAfter returns the 429 back-off hint for class c.
func (gv *Governor) RetryAfter(c Class) time.Duration {
	return gv.gates[c].cfg.retryAfter()
}

// Deadline returns the governor's per-request budget policy.
func (gv *Governor) Deadline() DeadlinePolicy { return gv.opts.Deadline }

// StartDrain flips the governor into drain mode: every subsequent (and
// every queued) Acquire fails with ErrDraining, while already-admitted
// work keeps its slots until released. Idempotent.
func (gv *Governor) StartDrain() {
	gv.drainOnce.Do(func() { close(gv.drainCh) })
}

// Draining reports whether StartDrain has been called.
func (gv *Governor) Draining() bool {
	select {
	case <-gv.drainCh:
		return true
	default:
		return false
	}
}

// WaitIdle blocks until every admission is released or timeout passes,
// returning the number still in flight (0 = clean drain). The poll
// cadence is coarse — this runs once, at shutdown.
func (gv *Governor) WaitIdle(timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		n := gv.InFlight()
		if n == 0 || !time.Now().Before(deadline) {
			return n
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Snapshot returns the governor counters.
func (gv *Governor) Snapshot() Stats {
	gv.mu.Lock()
	total := 0
	for _, n := range gv.inflight {
		total += n
	}
	st := Stats{
		Degraded:      gv.degradedLocked(),
		InFlight:      total,
		HeavyInFlight: gv.heavy,
	}
	gv.mu.Unlock()
	st.Draining = gv.Draining()
	st.Admitted = gv.cAdmitted.Value()
	st.Queued = gv.cQueued.Value()
	st.Rejected = gv.cRejected.Value()
	return st
}
