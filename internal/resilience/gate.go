package resilience

// The admission gate: a counting semaphore with a bounded wait queue in
// front of it. Three outcomes, decided in order:
//
//	slot free          → admitted immediately
//	queue has room     → wait (FIFO) for a slot, a drain, or ctx expiry
//	queue full         → ErrSaturated, reject now
//
// The FIFO discipline rides the Go runtime's channel wait queues: blocked
// senders on the slot channel are woken in arrival order, so a queued
// request cannot be starved by later arrivals. The queue bound is what
// turns overload into fast 429s instead of an unbounded pile of waiting
// handlers — the wait a queued request experiences is at most
// Queue/Slots service times, which is exactly the Retry-After hint a
// rejected request should be given.

import (
	"context"
	"time"
)

// GateConfig sizes one admission gate.
type GateConfig struct {
	// Slots is the number of concurrently admitted requests. 0 disables
	// the gate entirely (unlimited admission, drain still honored).
	Slots int
	// Queue is how many requests may wait for a slot beyond the admitted
	// ones; 0 means a busy gate rejects immediately.
	Queue int
	// RetryAfter is the back-off hint returned with rejections
	// (default 1s).
	RetryAfter time.Duration
}

// retryAfter applies the default.
func (c GateConfig) retryAfter() time.Duration {
	if c.RetryAfter <= 0 {
		return time.Second
	}
	return c.RetryAfter
}

// Gate is one class's admission semaphore. Create through NewGovernor.
type Gate struct {
	cfg     GateConfig
	slots   chan struct{} // nil when unlimited
	queue   chan struct{}
	drainCh <-chan struct{}
}

// newGate builds a gate sharing the governor's drain channel.
func newGate(cfg GateConfig, drainCh <-chan struct{}) *Gate {
	g := &Gate{cfg: cfg, drainCh: drainCh}
	if cfg.Slots > 0 {
		g.slots = make(chan struct{}, cfg.Slots)
		if cfg.Queue > 0 {
			g.queue = make(chan struct{}, cfg.Queue)
		}
	}
	return g
}

// acquire takes one slot, reporting whether the caller had to queue.
func (g *Gate) acquire(ctx context.Context) (queued bool, err error) {
	select {
	case <-g.drainCh:
		return false, ErrDraining
	default:
	}
	if g.slots == nil {
		return false, nil
	}
	select {
	case g.slots <- struct{}{}:
		return false, nil
	default:
	}
	if g.queue == nil {
		return false, ErrSaturated
	}
	// Reserve a queue position; a full queue rejects without blocking.
	select {
	case g.queue <- struct{}{}:
	default:
		return false, ErrSaturated
	}
	defer func() { <-g.queue }()
	select {
	case g.slots <- struct{}{}:
		return true, nil
	case <-g.drainCh:
		return true, ErrDraining
	case <-ctx.Done():
		return true, ctx.Err()
	}
}

// release returns one slot.
func (g *Gate) release() {
	if g.slots != nil {
		<-g.slots
	}
}
