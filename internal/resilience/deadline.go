package resilience

// Per-request deadlines. A request's budget is resolved from three
// inputs — what the client asked for, the server default, the server
// max — and becomes a context deadline that flows through the session
// job and every pipeline stage, so a doomed request stops consuming
// workers the moment its budget is spent instead of when its work
// happens to finish.

import (
	"context"
	"time"
)

// DeadlinePolicy resolves per-request execution budgets. The zero value
// imposes no deadline at all.
type DeadlinePolicy struct {
	// Default is the budget applied when the request names none
	// (0 = unlimited unless Max clamps).
	Default time.Duration
	// Max is the server-side clamp: no request may hold a worker longer,
	// whatever it asked for (0 = no clamp).
	Max time.Duration
}

// Resolve returns the effective budget for a request asking for
// `requested` (0 = client named none): the request's own value or the
// default, clamped by the max. 0 means no deadline.
func (p DeadlinePolicy) Resolve(requested time.Duration) time.Duration {
	d := requested
	if d <= 0 {
		d = p.Default
	}
	if p.Max > 0 && (d <= 0 || d > p.Max) {
		d = p.Max
	}
	return d
}

// Context derives the request's execution context: parent bounded by the
// resolved budget (plain cancellation when the budget is unlimited). The
// caller must call cancel.
func (p DeadlinePolicy) Context(parent context.Context, requested time.Duration) (context.Context, context.CancelFunc) {
	if d := p.Resolve(requested); d > 0 {
		return context.WithTimeout(parent, d)
	}
	return context.WithCancel(parent)
}
